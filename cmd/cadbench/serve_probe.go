package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
	"cadcam/internal/serve"
)

// The -serve mode is the wire-protocol load generator: it stands up an
// in-process cadserve server over a real database and drives it with
// thousands of concurrent client sessions running mixed
// read/write/txn/query/snapshot traffic, recording a per-request latency
// histogram (p50/p99/p999), an acknowledgment oracle (every write the
// server acknowledged must be readable afterwards — lost_acks counts
// violations), and the post-drain leak counters (pins, locks, sessions
// must all be zero). The connection fan-out uses the in-process pipe
// transport so the soak is bounded by goroutines, not file descriptors;
// a smaller TCP segment exercises serve.Dial and the stream framing on
// real sockets. CI gates on serve.errors == 0, serve.lost_acks == 0,
// serve.p99_us and the leak counters from the -json output.

// serveReport is the `serve` section of the JSON report.
type serveReport struct {
	Conns    int `json:"conns"`     // pipe-transport sessions in the soak
	TCPConns int `json:"tcp_conns"` // additional sessions over real TCP
	OpsEach  int `json:"ops_each"`  // mixed-op iterations per session

	Requests uint64 `json:"requests"` // client calls issued
	Errors   uint64 `json:"errors"`   // calls that failed unexpectedly
	LostAcks uint64 `json:"lost_acks"`

	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	P999Us    float64 `json:"p999_us"`
	OpsPerSec float64 `json:"ops_per_sec"`

	DrainMs            float64 `json:"drain_ms"`
	SessionsAfterDrain int     `json:"sessions_after_drain"`
	PinsAfterDrain     int64   `json:"pins_after_drain"`
	LocksAfterDrain    int     `json:"locks_after_drain"`
	BusyRejected       uint64  `json:"busy_rejected"`
	PipelineHW         int64   `json:"pipeline_hw"`
}

// serveBenchConfig sizes one -serve run.
type serveBenchConfig struct {
	Conns    int
	TCPConns int
	OpsEach  int
}

func serveBenchDefaults() serveBenchConfig {
	cfg := serveBenchConfig{Conns: 512, TCPConns: 64, OpsEach: 20}
	if v := os.Getenv("CADBENCH_SERVE_CONNS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.Conns = n
		}
	}
	if v := os.Getenv("CADBENCH_SERVE_OPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.OpsEach = n
		}
	}
	return cfg
}

// serveSession is one client's soak body: create an object, hammer it
// with acknowledged writes and reads, fold in transactions, snapshots
// and (on a sampled subset) queries, and verify at the end that the
// last acknowledged write is the value the database serves.
func serveSession(c *serve.Client, id int, cfg serveBenchConfig, rec *serveRecorder) {
	timed := func(op func() error) error {
		t0 := time.Now()
		err := op()
		rec.sample(time.Since(t0))
		return err
	}
	var sur cadcam.Surrogate
	if err := timed(func() (err error) {
		sur, err = c.NewObject(paperschema.TypeGateInterface, "benchgates")
		return err
	}); err != nil {
		rec.fail(err)
		return
	}
	lastAcked := int64(-1)
	for i := 0; i < cfg.OpsEach; i++ {
		v := int64(id)*1000 + int64(i)
		if err := timed(func() error { return c.SetAttr(sur, "Width", domain.Int(v)) }); err != nil {
			rec.fail(err)
			return
		}
		lastAcked = v
		if err := timed(func() error {
			got, err := c.GetAttr(sur, "Width")
			if err == nil && !domain.Int(v).Equal(got) {
				rec.lostAck()
			}
			return err
		}); err != nil {
			rec.fail(err)
			return
		}
		if i%5 == 2 {
			if err := timed(func() error {
				if _, err := c.Begin(); err != nil {
					return err
				}
				if err := c.SetAttr(sur, "Length", domain.Int(v)); err != nil {
					_ = c.Abort()
					return err
				}
				return c.Commit()
			}); err != nil {
				rec.fail(err)
				return
			}
		}
		if i%7 == 3 {
			if err := timed(func() error {
				h, _, err := c.SnapOpen()
				if err != nil {
					return err
				}
				if _, err := c.SnapGet(h, sur, "Width"); err != nil {
					_ = c.SnapClose(h)
					return err
				}
				return c.SnapClose(h)
			}); err != nil {
				rec.fail(err)
				return
			}
		}
		if id%50 == 0 && i%10 == 5 {
			if err := timed(func() error {
				_, err := c.Query("probe", "PinId = 1")
				return err
			}); err != nil {
				rec.fail(err)
				return
			}
		}
	}
	// The acknowledgment oracle: the last acked write must be served.
	got, err := c.GetAttr(sur, "Width")
	if err != nil {
		rec.fail(err)
		return
	}
	if !domain.Int(lastAcked).Equal(got) {
		rec.lostAck()
	}
}

// serveRecorder collects latency samples and failure counts across all
// sessions. The sample slice is pre-sized for the whole run, so the
// append under the mutex is a store, not a reallocation.
type serveRecorder struct {
	mu       sync.Mutex
	samples  []time.Duration
	requests atomic.Uint64
	errors   atomic.Uint64
	lost     atomic.Uint64
}

func (r *serveRecorder) sample(d time.Duration) {
	r.requests.Add(1)
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

func (r *serveRecorder) fail(error) { r.errors.Add(1) }
func (r *serveRecorder) lostAck()   { r.lost.Add(1) }

func (r *serveRecorder) percentiles() (p50, p99, p999 float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(r.samples)-1))
		return float64(r.samples[idx].Nanoseconds()) / 1000
	}
	return at(0.50), at(0.99), at(0.999)
}

// serveProbes runs the wire-protocol load generator and fills the
// `serve` section of the report.
func serveProbes(report *jsonReport, cfg serveBenchConfig) error {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.DefineClass("benchgates", paperschema.TypeGateInterface); err != nil {
		return err
	}
	if err := db.DefineClass("probe", paperschema.TypePin); err != nil {
		return err
	}
	for i := 0; i < 16; i++ {
		pin, err := db.NewObject(paperschema.TypePin, "probe")
		if err != nil {
			return err
		}
		if err := db.SetAttr(pin, "PinId", cadcam.Int(int64(i%2))); err != nil {
			return err
		}
	}

	srv, err := serve.New(serve.Config{DB: db, MaxSessions: cfg.Conns + cfg.TCPConns + 16})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)

	rec := &serveRecorder{samples: make([]time.Duration, 0, (cfg.Conns+cfg.TCPConns)*(cfg.OpsEach*2+4))}
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := serve.DialConn(srv.Pipe(), serve.DialOptions{User: "bench"})
			if err != nil {
				rec.fail(err)
				return
			}
			defer c.Close()
			serveSession(c, g, cfg, rec)
		}(g)
	}
	for g := 0; g < cfg.TCPConns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := serve.Dial(l.Addr().String(), serve.DialOptions{User: "bench-tcp"})
			if err != nil {
				rec.fail(err)
				return
			}
			defer c.Close()
			serveSession(c, cfg.Conns+g, cfg, rec)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	d0 := time.Now()
	if err := srv.Shutdown(30 * time.Second); err != nil {
		return fmt.Errorf("serve drain: %w", err)
	}
	drainMs := float64(time.Since(d0).Microseconds()) / 1000

	p50, p99, p999 := rec.percentiles()
	st := srv.Stats()
	lt := db.Txns().LockTableStats()
	report.Serve = &serveReport{
		Conns:              cfg.Conns,
		TCPConns:           cfg.TCPConns,
		OpsEach:            cfg.OpsEach,
		Requests:           rec.requests.Load(),
		Errors:             rec.errors.Load(),
		LostAcks:           rec.lost.Load(),
		P50Us:              p50,
		P99Us:              p99,
		P999Us:             p999,
		OpsPerSec:          float64(rec.requests.Load()) / elapsed.Seconds(),
		DrainMs:            drainMs,
		SessionsAfterDrain: st.Sessions,
		PinsAfterDrain:     db.Stats().MVCC.Pins,
		LocksAfterDrain:    lt.Objects + lt.Granted + lt.Queued,
		BusyRejected:       st.BusyRejected,
		PipelineHW:         st.PipelineHW,
	}
	return nil
}

// runServeBench is the `cadbench -serve` entry point: the load
// generator alone, at soak scale by default (10k pipe connections plus
// a TCP segment), with either a human summary or the JSON report.
func runServeBench(jsonOut bool, conns, opsEach int) error {
	cfg := serveBenchDefaults()
	cfg.Conns = 10000
	cfg.TCPConns = 256
	if v := os.Getenv("CADBENCH_SERVE_CONNS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.Conns = n
		}
	}
	if conns > 0 {
		cfg.Conns = conns
	}
	if opsEach > 0 {
		cfg.OpsEach = opsEach
	}
	var report jsonReport
	if err := serveProbes(&report, cfg); err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&report)
	}
	s := report.Serve
	fmt.Printf("serve soak: %d pipe conns + %d tcp conns, %d mixed ops each\n", s.Conns, s.TCPConns, s.OpsEach)
	row("requests", fmt.Sprintf("%d (%.0f ops/sec)", s.Requests, s.OpsPerSec))
	row("errors", fmt.Sprintf("%d", s.Errors))
	row("lost acks", fmt.Sprintf("%d", s.LostAcks))
	row("latency p50/p99/p999", fmt.Sprintf("%.1f / %.1f / %.1f µs", s.P50Us, s.P99Us, s.P999Us))
	row("drain", fmt.Sprintf("%.1f ms", s.DrainMs))
	row("leaks after drain", fmt.Sprintf("sessions=%d pins=%d locks=%d",
		s.SessionsAfterDrain, s.PinsAfterDrain, s.LocksAfterDrain))
	if s.Errors > 0 || s.LostAcks > 0 || s.SessionsAfterDrain != 0 || s.PinsAfterDrain != 0 || s.LocksAfterDrain != 0 {
		return fmt.Errorf("serve soak failed: errors=%d lost_acks=%d leaks=%d/%d/%d",
			s.Errors, s.LostAcks, s.SessionsAfterDrain, s.PinsAfterDrain, s.LocksAfterDrain)
	}
	return nil
}
