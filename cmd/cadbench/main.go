// Command cadbench regenerates every experiment row of EXPERIMENTS.md:
// one experiment per exhibit of the paper (figures, worked examples and
// the §6 requirements), each verifying the paper's qualitative claim and
// measuring this implementation's behaviour.
//
// Usage:
//
//	cadbench            # run all experiments
//	cadbench -exp E7    # run one experiment
//	cadbench -list      # list experiments
//	cadbench -json      # machine-readable smoke run + read-path probes
//	cadbench -serve     # wire-protocol soak: 10k sessions of mixed traffic
package main

import (
	"flag"
	"fmt"
	"os"
)

// experiment is one EXPERIMENTS.md generator.
type experiment struct {
	id    string
	title string
	run   func() error
}

var experiments = []experiment{
	{"E1", "Figure 1: flip-flop as a complex/composite object", runE1},
	{"E2", "Figure 2: interface/implementation with value inheritance", runE2},
	{"E3", "§4.2: abstraction hierarchy depth", runE3},
	{"E4", "Figures 3+4: component closure of a composite", runE4},
	{"E5", "§4: tailored permeability (SomeOf_Gate)", runE5},
	{"E6", "Figure 5: steel construction at scale", runE6},
	{"E7", "§2: copy import vs view inheritance", runE7},
	{"E8", "§6: version selection policies", runE8},
	{"E9", "§6: lock inheritance", runE9},
	{"E10", "§6: expansion locking with access control", runE10},
	{"E11", "§3: DDL corpus", runE11},
	{"E12", "durability: journal replay and checkpoints", runE12},
}

func main() {
	expFlag := flag.String("exp", "", "run a single experiment (e.g. E7)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "suppress experiment output, print a JSON report")
	serveSoak := flag.Bool("serve", false, "run the wire-protocol load generator (10k sessions by default)")
	serveConns := flag.Int("serve-conns", 0, "pipe-transport connection count for -serve (0 = 10000 or $CADBENCH_SERVE_CONNS)")
	serveOps := flag.Int("serve-ops", 0, "mixed-op iterations per -serve session (0 = 20 or $CADBENCH_SERVE_OPS)")
	flag.Parse()

	if *serveSoak {
		if err := runServeBench(*jsonOut, *serveConns, *serveOps); err != nil {
			fmt.Fprintf(os.Stderr, "cadbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := runJSON(*expFlag); err != nil {
			fmt.Fprintf(os.Stderr, "cadbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	ran := 0
	for _, e := range experiments {
		if *expFlag != "" && e.id != *expFlag {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

// row prints one aligned table row.
func row(cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-14v", c)
	}
	fmt.Println()
}
