package main

import (
	"fmt"
	"time"

	"cadcam"
	"cadcam/internal/bench"
	"cadcam/internal/inherit"
	"cadcam/internal/paperschema"
)

// runE1 reproduces Figure 1 at parametric scale: a composite gate built
// from elementary components and cross-level wires, with the paper's pin
// constraints checked over the whole database.
func runE1() error {
	fmt.Println("claim: complex objects hold subobjects and cross-level wires; constraints hold")
	row("subgates", "objects", "wires", "build", "check", "violations")
	for _, nSub := range []int{2, 8, 32, 128} {
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		start := time.Now()
		ff, err := bench.BuildFlipFlop(db, nSub)
		if err != nil {
			return err
		}
		build := time.Since(start)
		start = time.Now()
		violations := db.CheckAll()
		check := time.Since(start)
		row(nSub, db.Store().Len(), len(ff.Wires), build.Round(time.Microsecond),
			check.Round(time.Microsecond), len(violations))
		if len(violations) != 0 {
			return fmt.Errorf("unexpected violations: %v", violations)
		}
		db.Close()
	}
	// A wire to a foreign pin must be rejected by the where restriction.
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		return err
	}
	foreign, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		return err
	}
	foreignPins, _ := db.Members(foreign, "Pins")
	ownPins, _ := db.Members(ff.Impl, "Pins")
	_, err = db.RelateIn(ff.Impl, "Wires", cadcam.Participants{
		"Pin1": cadcam.RefOf(ownPins[0]),
		"Pin2": cadcam.RefOf(foreignPins[0]),
	})
	fmt.Printf("foreign wire rejected: %v\n", err != nil)
	if err == nil {
		return fmt.Errorf("where restriction failed to reject a foreign wire")
	}
	return nil
}

// runE2 verifies Figure 2: implementations inherit the interface's
// values by view — a transmitter update is instantly visible in every
// inheritor, write protection holds, and the binding bookkeeping counts
// the change.
func runE2() error {
	fmt.Println("claim: transmitter updates are instantly visible in all inheritors; inherited data is read-only")
	row("inheritors", "stale-after-update", "write-protected", "flagged", "read-direct", "read-inherited")
	for _, n := range []int{1, 16, 256} {
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		iface, err := bench.Interface(db, 2, 1, 4, 2)
		if err != nil {
			return err
		}
		impls := make([]cadcam.Surrogate, n)
		for i := range impls {
			impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
			if err != nil {
				return err
			}
			if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
				return err
			}
			impls[i] = impl
		}
		if err := db.SetAttr(iface, "Length", cadcam.Int(9)); err != nil {
			return err
		}
		stale := 0
		for _, impl := range impls {
			v, err := db.GetAttr(impl, "Length")
			if err != nil {
				return err
			}
			if !v.Equal(cadcam.Int(9)) {
				stale++
			}
		}
		protected := false
		if err := db.SetAttr(impls[0], "Length", cadcam.Int(1)); err != nil {
			protected = true
		}
		flagged := len(db.PendingAdaptations())

		directT := readLatency(db, iface, "Length")
		inheritedT := readLatency(db, impls[0], "Length")
		row(n, stale, protected, flagged, directT, inheritedT)
		if stale != 0 || !protected || flagged != n {
			return fmt.Errorf("view semantics violated: stale=%d protected=%v flagged=%d", stale, protected, flagged)
		}
		db.Close()
	}
	return nil
}

// runE3 sweeps abstraction-hierarchy depth: resolution cost grows
// linearly with the number of hops, the paper's "as subtle as desired"
// hierarchies staying cheap.
func runE3() error {
	fmt.Println("claim: interfaces generalize to abstraction hierarchies of any depth")
	row("depth", "leaf-read", "value-ok", "ancestors")
	var stats cadcam.DBStats
	for _, depth := range []int{1, 2, 4, 8, 16, 32, 64} {
		cat, err := bench.ChainCatalog(depth)
		if err != nil {
			return err
		}
		db, err := cadcam.OpenMemory(cat)
		if err != nil {
			return err
		}
		chain, err := bench.BuildChain(db, depth)
		if err != nil {
			return err
		}
		leaf := chain[len(chain)-1]
		v, err := db.GetAttr(leaf, "X")
		if err != nil {
			return err
		}
		lat := readLatency(db, leaf, "X")
		anc := db.Ancestors(leaf)
		row(depth, lat, v.Equal(cadcam.Int(42)), len(anc))
		if !v.Equal(cadcam.Int(42)) || len(anc) != depth {
			return fmt.Errorf("depth %d: value=%s ancestors=%d", depth, v, len(anc))
		}
		stats = db.Stats()
		db.Close()
	}
	fmt.Printf("route cache at depth 64: hits=%d misses=%d invalidations=%d epoch=%d\n",
		stats.Hits, stats.Misses, stats.Invalidations, stats.Epoch)
	return nil
}

// runE4 reproduces Figures 3 and 4: one relationship type serves as both
// interface edge and component edge, and the component closure grows with
// the number of components.
func runE4() error {
	fmt.Println("claim: the same inheritance relationship models interface and component edges")
	row("subgates", "portions", "expansion", "closure-time")
	for _, nSub := range []int{2, 8, 32} {
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		ff, err := bench.BuildFlipFlop(db, nSub)
		if err != nil {
			return err
		}
		start := time.Now()
		portions, err := db.VisibleComponents(ff.Impl)
		if err != nil {
			return err
		}
		dur := time.Since(start)
		exp, err := db.Expand(ff.Impl)
		if err != nil {
			return err
		}
		row(nSub, len(portions), exp.Size(), dur.Round(time.Microsecond))
		// Figure 4: the same rel type appears in the interface role (on
		// the implementation) and the component role (on subgates).
		ifaceEdge, _ := db.BindingOf(ff.Impl, paperschema.RelAllOfGateInterface)
		compEdge, _ := db.BindingOf(ff.SubGates[0], paperschema.RelAllOfGateInterface)
		if ifaceEdge == nil || compEdge == nil {
			return fmt.Errorf("dual-role bindings missing")
		}
		db.Close()
	}
	return nil
}

// runE5 verifies §4's permeability tailoring: SomeOf_Gate exports
// TimeBehavior past the interface while Function stays private, and the
// tailored view transfers less data than a full copy of the transmitter.
func runE5() error {
	fmt.Println("claim: permeability can be tailored per relationship (SomeOf_Gate)")
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		return err
	}
	user, err := db.NewObject(paperschema.TypeTimedComposite, "")
	if err != nil {
		return err
	}
	if _, err := db.Bind(paperschema.RelSomeOfGate, user, ff.Impl); err != nil {
		return err
	}
	visible := func(attr string) bool {
		_, err := db.GetAttr(user, attr)
		return err == nil
	}
	row("attr", "visible-via-SomeOf_Gate")
	for _, attr := range []string{"Length", "Width", "TimeBehavior", "Pins", "Function", "SimSlot"} {
		if attr == "Pins" {
			pins, err := db.Members(user, "Pins")
			row(attr, err == nil && len(pins) > 0)
			continue
		}
		row(attr, visible(attr))
	}
	if visible("Function") {
		return fmt.Errorf("Function leaked through SomeOf_Gate")
	}
	if !visible("TimeBehavior") {
		return fmt.Errorf("TimeBehavior not exported by SomeOf_Gate")
	}
	// Space: the tailored import is smaller than the interface's full
	// import once the implementation carries more private data.
	full, err := inherit.ImportCopy(db.Store(), paperschema.RelSomeOfGate, ff.Impl)
	if err != nil {
		return err
	}
	ifaceCopy, err := inherit.ImportCopy(db.Store(), paperschema.RelAllOfGateInterface, ff.Iface)
	if err != nil {
		return err
	}
	fmt.Printf("copied bytes: SomeOf_Gate(impl)=%d AllOf_GateInterface(iface)=%d\n",
		full.Bytes, ifaceCopy.Bytes)
	return nil
}

// runE6 scales Figure 5: structures with many screwings, all ScrewingType
// constraints checked, and the shared-part update detected everywhere.
func runE6() error {
	fmt.Println("claim: relationship objects with internal components model assemblies; constraints catch bad parts")
	row("screwings", "objects", "build", "check-all", "violations-after-break")
	for _, n := range []int{1, 10, 100} {
		db, err := bench.Steel()
		if err != nil {
			return err
		}
		start := time.Now()
		st, err := bench.BuildStructure(db, n)
		if err != nil {
			return err
		}
		build := time.Since(start)
		start = time.Now()
		violations := db.CheckAll()
		checkDur := time.Since(start)
		if len(violations) != 0 {
			return fmt.Errorf("clean structure violates: %v", violations[0])
		}
		// Breaking the shared bolt breaks every screwing that uses it.
		if err := db.SetAttr(st.Bolt, "Diameter", cadcam.Int(99)); err != nil {
			return err
		}
		broken := db.CheckAll()
		row(n, db.Store().Len(), build.Round(time.Microsecond),
			checkDur.Round(time.Microsecond), len(broken))
		if len(broken) != n {
			return fmt.Errorf("expected %d violations, got %d", n, len(broken))
		}
		db.Close()
	}
	return nil
}

// readLatency measures the average GetAttr latency over a few thousand
// reads.
func readLatency(db *cadcam.Database, sur cadcam.Surrogate, attr string) time.Duration {
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := db.GetAttr(sur, attr); err != nil {
			return 0
		}
	}
	return time.Since(start) / iters
}
