package main

// queryProbes measures the indexed query layer for the -json smoke run:
// a selective indexed probe versus the naive interpreted full scan over
// the same extent (index_speedup is the CI-gated headline), a selectivity
// sweep over the index, and the SetAttr cost of index maintenance — both
// on the indexed attribute (the price of the index) and on unindexed
// attributes (which must stay at the no-index baseline; CI compares this
// against the shards probe).

import (
	"fmt"
	"time"

	"cadcam"
	"cadcam/internal/expr"
	"cadcam/internal/paperschema"
	"cadcam/internal/query"
)

// queryReport is the `query` section of the JSON report.
type queryReport struct {
	Objects int `json:"objects"`
	// Matches of the 1%-selective headline predicate (Width = 7).
	Matches int `json:"matches"`
	// PlanMode is the access path the planner chose for the headline
	// predicate; CI asserts it is "index scan".
	PlanMode string `json:"plan_mode"`
	// IndexNsPerOp / ScanNsPerOp time the headline predicate through the
	// planner (index probe + residual) and through the naive interpreted
	// full scan; IndexSpeedup is their ratio.
	IndexNsPerOp float64 `json:"index_ns_per_op"`
	ScanNsPerOp  float64 `json:"scan_ns_per_op"`
	IndexSpeedup float64 `json:"index_speedup"`
	// SelectivityNsPerOp sweeps indexed query latency by match fraction.
	SelectivityNsPerOp map[string]float64 `json:"selectivity_ns_per_op"`
	// SetAttr*NsPerOp measure single-writer SetAttr on a class member for
	// an indexed attribute versus an unindexed one; MaintenanceOverhead is
	// their ratio (the marginal cost of keeping the index current).
	SetAttrIndexedNsPerOp   float64 `json:"setattr_indexed_ns_per_op"`
	SetAttrUnindexedNsPerOp float64 `json:"setattr_unindexed_ns_per_op"`
	MaintenanceOverhead     float64 `json:"maintenance_overhead"`
	// SetAttrUnindexed8wNsPerOp is the 8-writer SetAttr latency on objects
	// outside any indexed class while indexes exist in the store: the
	// write path's index hook must stay an atomic load + nil check, so CI
	// asserts this stays within noise of shards.setattr_8w_ns_per_op.
	SetAttrUnindexed8wNsPerOp float64 `json:"setattr_unindexed_8w_ns_per_op"`
}

func queryProbes(report *jsonReport) error {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		return err
	}
	defer db.Close()
	const objects = 20000
	if err := db.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		return err
	}
	gates := make([]cadcam.Surrogate, objects)
	for i := range gates {
		if gates[i], err = db.NewObject(paperschema.TypeSimpleGate, "gates"); err != nil {
			return err
		}
		// Width = i % 100: a point predicate matches 1% of the extent.
		if err := db.SetAttr(gates[i], "Width", cadcam.Int(int64(i%100))); err != nil {
			return err
		}
	}
	if err := db.CreateIndex("gates_w", "gates", "Width"); err != nil {
		return err
	}
	qr := &queryReport{Objects: objects, SelectivityNsPerOp: map[string]float64{}}

	const headline = "Width = 7"
	plan, err := db.Plan("gates", headline)
	if err != nil {
		return err
	}
	qr.PlanMode = plan.Mode.String()
	matches, err := db.Query("gates", headline)
	if err != nil {
		return err
	}
	qr.Matches = len(matches)

	// Best-of-rounds, alternating sides, so transient load cannot fake a
	// speedup (same discipline as the shards probe).
	src := query.ForStore(db.Store())
	where, err := expr.Parse(headline)
	if err != nil {
		return err
	}
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	timeOne := func(n int, op func() error) (float64, error) {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(n), nil
	}
	for r := 0; r < 5; r++ {
		v, err := timeOne(3, func() error {
			_, err := query.Naive(src, "gates", where)
			return err
		})
		if err != nil {
			return fmt.Errorf("probe query scan: %w", err)
		}
		qr.ScanNsPerOp = best(qr.ScanNsPerOp, v)
		v, err = timeOne(30, func() error {
			_, err := db.Query("gates", headline)
			return err
		})
		if err != nil {
			return fmt.Errorf("probe query index: %w", err)
		}
		qr.IndexNsPerOp = best(qr.IndexNsPerOp, v)
	}
	if qr.IndexNsPerOp > 0 {
		qr.IndexSpeedup = qr.ScanNsPerOp / qr.IndexNsPerOp
	}

	for label, pred := range map[string]string{
		"sel_1pct":  "Width = 7",
		"sel_10pct": "Width < 10",
		"sel_50pct": "Width < 50",
	} {
		v, err := timeOne(10, func() error {
			_, err := db.Query("gates", pred)
			return err
		})
		if err != nil {
			return fmt.Errorf("probe query %s: %w", label, err)
		}
		qr.SelectivityNsPerOp[label] = v
	}

	// Maintenance: SetAttr on the indexed attribute vs an unindexed one,
	// on the same class members.
	const writes = 20000
	for r := 0; r < 3; r++ {
		v, err := timeOne(writes, func() error {
			g := gates[r%objects]
			return db.SetAttr(g, "Length", cadcam.Int(int64(r)))
		})
		if err != nil {
			return fmt.Errorf("probe setattr unindexed: %w", err)
		}
		qr.SetAttrUnindexedNsPerOp = best(qr.SetAttrUnindexedNsPerOp, v)
		v, err = timeOne(writes, func() error {
			g := gates[r%objects]
			return db.SetAttr(g, "Width", cadcam.Int(int64(r%100)))
		})
		if err != nil {
			return fmt.Errorf("probe setattr indexed: %w", err)
		}
		qr.SetAttrIndexedNsPerOp = best(qr.SetAttrIndexedNsPerOp, v)
	}
	if qr.SetAttrUnindexedNsPerOp > 0 {
		qr.MaintenanceOverhead = qr.SetAttrIndexedNsPerOp / qr.SetAttrUnindexedNsPerOp
	}

	// The (f) guard: 8 writers on plain pin objects — no class, no index
	// over anything they touch — while the gates index exists in the
	// store. This is the exact shards-probe workload; CI compares them.
	pins := make([]cadcam.Surrogate, 8)
	for i := range pins {
		if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
			return err
		}
	}
	round := func(opsEach int) (float64, error) {
		errs := make(chan error, len(pins))
		t0 := time.Now()
		for w := range pins {
			go func(w int) {
				for i := 0; i < opsEach; i++ {
					if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(w)
		}
		for range pins {
			if err := <-errs; err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(len(pins)*opsEach), nil
	}
	for r := 0; r < 5; r++ {
		v, err := round(8000)
		if err != nil {
			return fmt.Errorf("probe setattr 8w unindexed: %w", err)
		}
		qr.SetAttrUnindexed8wNsPerOp = best(qr.SetAttrUnindexed8wNsPerOp, v)
	}

	report.Query = qr
	return nil
}
