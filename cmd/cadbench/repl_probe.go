package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"cadcam"
	"cadcam/internal/paperschema"
	"cadcam/internal/wal"
)

// replProbes measures WAL-shipped replication on a real on-disk primary:
// cold catch-up throughput of a fresh follower over the journal chain,
// lag behaviour while tailing a live writer, a checkpoint-manifest
// resync (the path a follower takes when the journal below the newest
// checkpoint was garbage-collected), and the divergence oracle — every
// follower's export must be byte-identical to the primary's. CI gates on
// catchup_ops_per_sec > 0, divergence_detected == 0 and a bounded
// final_lag.

// replReport is the `repl` section of the JSON report.
type replReport struct {
	// Cold catch-up: records a fresh follower applied from the existing
	// chain and the rate it applied them at.
	CatchupRecords   uint64  `json:"catchup_records"`
	CatchupMs        float64 `json:"catchup_ms"`
	CatchupOpsPerSec float64 `json:"catchup_ops_per_sec"`
	// Live tail: lag observed while the primary kept writing, and after
	// the final catch-up wait (must be 0).
	TailRecords uint64 `json:"tail_records"`
	MaxLag      uint64 `json:"max_lag"`
	FinalLag    uint64 `json:"final_lag"`
	// Resync: checkpoint-manifest resyncs taken by a follower attached
	// after the journal below the checkpoint was garbage-collected.
	Resyncs uint64 `json:"resyncs"`
	// DivergenceDetected is 1 if any follower export differed from the
	// primary's byte-for-byte, else 0.
	DivergenceDetected int `json:"divergence_detected"`
}

func replProbes(report *jsonReport) error {
	dir, err := os.MkdirTemp("", "cadbench-repl-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Acknowledged-durable writes (SyncEvery 1) so every record is in the
	// on-disk chain before the follower attaches; eight writers coalesce
	// into shared group-commit batches exactly like the durable probe.
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		return err
	}
	defer db.Close()

	pin, err := db.NewObject(paperschema.TypePin, "")
	if err != nil {
		return err
	}
	const writers, opsEach = 8, 250
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			for i := 0; i < opsEach; i++ {
				if err := db.SetAttr(pin, "PinId", cadcam.Int(int64(i%64))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			return fmt.Errorf("probe repl primary write: %w", err)
		}
	}

	diverged := func(f *cadcam.Follower) bool {
		st, vs, _ := f.Repl().Export()
		got := wal.EncodeSnapshot(st, vs)
		want := wal.EncodeSnapshot(db.Store().Export(), db.Versions().Export())
		return !bytes.Equal(got, want)
	}

	rr := &replReport{}

	// Cold catch-up over the journal chain.
	t0 := time.Now()
	f, err := db.AttachFollower(cadcam.FollowerOptions{})
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.WaitCaughtUp(30 * time.Second); err != nil {
		return fmt.Errorf("probe repl catch-up: %w", err)
	}
	elapsed := time.Since(t0)
	rr.CatchupRecords = f.Repl().Applied()
	rr.CatchupMs = float64(elapsed.Microseconds()) / 1000
	if s := elapsed.Seconds(); s > 0 {
		rr.CatchupOpsPerSec = float64(rr.CatchupRecords) / s
	}

	// Live tail: keep writing and sample the follower's lag.
	const tailOps = 300
	for i := 0; i < tailOps; i++ {
		if err := db.SetAttr(pin, "PinId", cadcam.Int(int64(i%64))); err != nil {
			return fmt.Errorf("probe repl tail write: %w", err)
		}
		if i%25 == 0 {
			if lag := f.Lag(); lag > rr.MaxLag {
				rr.MaxLag = lag
			}
		}
	}
	rr.TailRecords = tailOps
	if err := f.WaitCaughtUp(30 * time.Second); err != nil {
		return fmt.Errorf("probe repl tail catch-up: %w", err)
	}
	rr.FinalLag = f.Lag()
	if diverged(f) {
		rr.DivergenceDetected = 1
	}

	// Checkpoint-manifest resync: GC the journal below a fresh
	// checkpoint, then attach a second follower whose start position no
	// longer exists in the chain.
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("probe repl checkpoint: %w", err)
	}
	f2, err := db.AttachFollower(cadcam.FollowerOptions{})
	if err != nil {
		return err
	}
	defer f2.Close()
	if err := f2.WaitCaughtUp(30 * time.Second); err != nil {
		return fmt.Errorf("probe repl resync catch-up: %w", err)
	}
	rr.Resyncs = f2.Stats().Resyncs
	if diverged(f2) {
		rr.DivergenceDetected = 1
	}

	report.Repl = rr
	return nil
}
