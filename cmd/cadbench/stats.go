package main

import "cadcam"

// cacheReport is the resolution-cache section of the -json report.
type cacheReport struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Invalidations uint64  `json:"invalidations"`
	Epoch         uint64  `json:"epoch"`
	Routes        uint64  `json:"routes"`
	HitRate       float64 `json:"hit_rate"`
}

// fillCacheReport records the resolution-cache counters of the database the
// micro probes just exercised.
func fillCacheReport(report *jsonReport, db *cadcam.Database) {
	st := db.Stats()
	c := &cacheReport{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Invalidations: st.Invalidations,
		Epoch:         st.Epoch,
		Routes:        st.Routes,
	}
	if total := st.Hits + st.Misses; total > 0 {
		c.HitRate = float64(st.Hits) / float64(total)
	}
	report.Cache = c
}
