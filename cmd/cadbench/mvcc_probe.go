package main

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cadcam"
	"cadcam/internal/bench"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// mvccReport is the `mvcc` section of the JSON report: the cost of MVCC
// snapshot reads, the writer throughput kept while a continuous closure
// scan holds a pin, the sweeper's bookkeeping, and the determinism check
// (a pinned export must equal a serial replay of the journal truncated
// at the pin sequence).
type mvccReport struct {
	Pins        int64  `json:"pins"`         // live pins after the probes (must drain to 0)
	Taken       uint64 `json:"taken"`        // snapshots pinned across the scan probe
	GCRuns      uint64 `json:"gc_runs"`      // sweeps completed
	GCReclaimed uint64 `json:"gc_reclaimed"` // version nodes + dead objects freed
	// ExtraVersions is the non-head chain-node gauge after the last sweep
	// (0 = every slot back to a single live version).
	ExtraVersions uint64 `json:"extra_versions"`

	LiveReadNsPerOp     float64 `json:"live_read_ns_per_op"`
	SnapshotReadNsPerOp float64 `json:"snapshot_read_ns_per_op"`

	WriterNsPerOpBaseline float64 `json:"writer_ns_per_op_baseline"`
	WriterNsPerOpWithScan float64 `json:"writer_ns_per_op_with_scan"`
	// WriterOpsDuringScan counts writer operations completed while the
	// scanner held pins; ScansCompleted counts full-store closure scans.
	WriterOpsDuringScan int64 `json:"writer_ops_during_scan"`
	ScansCompleted      int64 `json:"scans_completed"`
	// ScanRatio = baseline ns/op ÷ with-scan ns/op: the fraction of
	// no-reader throughput writers keep under a continuous scan.
	ScanRatio float64 `json:"scan_ratio"`

	// ExportIdentical reports the MVCC determinism oracle: a snapshot
	// pinned mid-workload exported byte-identically to a serial replay of
	// the journal truncated at the pin sequence.
	ExportIdentical bool `json:"export_identical"`
}

func mvccProbes(report *jsonReport) error {
	rep := &mvccReport{}
	if err := mvccReadProbe(rep); err != nil {
		return err
	}
	if err := mvccScanProbe(rep); err != nil {
		return err
	}
	if err := mvccExportProbe(rep); err != nil {
		return err
	}
	report.MVCC = rep
	return nil
}

// mvccReadProbe compares a live inherited read with the same read through
// a pinned snapshot (the slow path: no route memoization at the pin).
func mvccReadProbe(rep *mvccReport) error {
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		return err
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		return err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		return err
	}
	if _, err := db.GetAttr(impl, "Length"); err != nil { // warm the route
		return err
	}
	const n = 200000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := db.GetAttr(impl, "Length"); err != nil {
			return fmt.Errorf("probe mvcc live read: %w", err)
		}
	}
	rep.LiveReadNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(n)

	v := db.SnapshotView()
	defer v.Release()
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if _, err := v.GetAttr(impl, "Length"); err != nil {
			return fmt.Errorf("probe mvcc snapshot read: %w", err)
		}
	}
	rep.SnapshotReadNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(n)
	return nil
}

// mvccScanProbe measures 8-writer SetAttr latency with no readers, then
// with one continuous full-store closure scanner pinning snapshots, on
// the same database. Rounds alternate is unnecessary here: each side
// keeps its best of several rounds so transient load cannot fake a stall.
func mvccScanProbe(rep *mvccReport) error {
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	if _, err := bench.BuildFlipFlop(db, 8); err != nil {
		return err
	}
	const writers = 8
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
			return err
		}
	}

	var during atomic.Int64
	round := func(opsEach int, count bool) (float64, error) {
		errs := make(chan error, writers)
		t0 := time.Now()
		for w := 0; w < writers; w++ {
			go func(w int) {
				for i := 0; i < opsEach; i++ {
					if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
						errs <- err
						return
					}
				}
				if count {
					during.Add(int64(opsEach))
				}
				errs <- nil
			}(w)
		}
		for w := 0; w < writers; w++ {
			if err := <-errs; err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(writers*opsEach), nil
	}
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}

	const opsEach = 4000
	const rounds = 5
	var baseline float64
	for r := 0; r < rounds; r++ {
		v, err := round(opsEach, false)
		if err != nil {
			return fmt.Errorf("probe mvcc baseline: %w", err)
		}
		baseline = best(baseline, v)
	}

	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	var scans atomic.Int64
	var scanErr error
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := db.SnapshotView()
			for _, sur := range v.Surrogates() {
				if _, err := v.VisibleComponents(sur); err != nil {
					scanErr = fmt.Errorf("probe mvcc scan at seq %d: %w", v.Seq(), err)
					v.Release()
					return
				}
			}
			v.Release()
			scans.Add(1)
		}
	}()
	var withScan float64
	for r := 0; r < rounds; r++ {
		v, err := round(opsEach, true)
		if err != nil {
			close(stop)
			return fmt.Errorf("probe mvcc with-scan: %w", err)
		}
		withScan = best(withScan, v)
	}
	close(stop)
	scanWG.Wait()
	if scanErr != nil {
		return scanErr
	}

	st := db.Stats().MVCC
	rep.Pins = st.Pins
	rep.Taken = st.Taken
	rep.GCRuns = st.GCRuns
	rep.GCReclaimed = st.Reclaimed
	rep.ExtraVersions = st.ExtraVersions
	rep.WriterNsPerOpBaseline = baseline
	rep.WriterNsPerOpWithScan = withScan
	rep.WriterOpsDuringScan = during.Load()
	rep.ScansCompleted = scans.Load()
	if withScan > 0 {
		rep.ScanRatio = baseline / withScan
	}
	return nil
}

// mvccExportProbe runs the determinism oracle on a real on-disk
// database: pin a snapshot in the middle of a concurrent workload,
// export it, then replay the journal serially truncated at the pin
// sequence and byte-compare the two states.
func mvccExportProbe(rep *mvccReport) error {
	dir, err := os.MkdirTemp("", "cadbench-mvcc-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		return err
	}
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		db.Close()
		return err
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		db.Close()
		return err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		db.Close()
		return err
	}

	var wg sync.WaitGroup
	wg.Add(2)
	var werr error
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			_ = db.SetAttr(iface, "Length", cadcam.Int(int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sur, err := db.NewObject(paperschema.TypeGateInterface, "")
			if err != nil {
				werr = err
				return
			}
			_ = db.SetAttr(sur, "Width", cadcam.Int(int64(i)))
		}
	}()
	time.Sleep(2 * time.Millisecond)
	sn := db.Store().Snapshot()
	seq := sn.Seq()
	pinned := sn.Export()
	sn.Release()
	wg.Wait()
	if werr != nil {
		db.Close()
		return werr
	}
	if err := db.Close(); err != nil {
		return err
	}

	sc, err := cadcam.ScanJournal(dir)
	if err != nil {
		return err
	}
	var kept [][]byte
	for _, rec := range sc.Records {
		op, err := oplog.Decode(rec)
		if err != nil {
			return err
		}
		if op.Seq > 0 && op.Seq <= seq {
			kept = append(kept, rec)
		}
	}
	fresh, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		return err
	}
	vm := version.NewManager(fresh)
	if err := wal.Replay(kept, fresh, vm); err != nil {
		return err
	}
	rep.ExportIdentical = bytes.Equal(
		wal.EncodeSnapshot(pinned, vm.Export()),
		wal.EncodeSnapshot(fresh.Export(), vm.Export()))
	if !rep.ExportIdentical {
		return fmt.Errorf("probe mvcc export: pinned snapshot at seq %d differs from truncated replay", seq)
	}
	return nil
}
