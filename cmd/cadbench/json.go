package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cadcam"
	"cadcam/internal/bench"
	"cadcam/internal/paperschema"
)

// The -json mode is the machine-readable smoke run used by CI and by the
// BENCH_*.json perf-trajectory files: it executes every experiment with
// human output suppressed, records pass/fail and wall time, and appends a
// set of micro probes over the hot read paths so successive PRs can be
// compared number-to-number.

type jsonExperiment struct {
	ID    string  `json:"id"`
	Title string  `json:"title"`
	OK    bool    `json:"ok"`
	Ms    float64 `json:"ms"`
	Error string  `json:"error,omitempty"`
}

type jsonReport struct {
	Experiments  []jsonExperiment   `json:"experiments"`
	MicroNsPerOp map[string]float64 `json:"micro_ns_per_op"`
	Cache        *cacheReport       `json:"cache,omitempty"`
	// WAL is the group-commit pipeline's counters from the durable-write
	// probe run (batch histogram, fsyncs, stall time).
	WAL *cadcam.WALStats `json:"wal,omitempty"`
	// Shards is the sharded-store probe: in-memory multi-writer SetAttr
	// latency at the default shard count versus a single shard (the
	// pre-shard store's global lock, approximately).
	Shards *shardsReport `json:"shards,omitempty"`
	// Checkpoint is the incremental-checkpoint probe: encoded work of a
	// full checkpoint versus a 1-dirty-shard incremental one, plus
	// recovery timings. BytesRatio is deterministic (encoded bytes, not
	// wall time), so CI can assert on it.
	Checkpoint *checkpointReport `json:"checkpoint,omitempty"`
	// MVCC is the snapshot-read probe: read costs at a pin, writer
	// throughput under a continuous closure scan, sweeper counters and
	// the pinned-export determinism check (see mvcc_probe.go).
	MVCC *mvccReport `json:"mvcc,omitempty"`
	// Query is the indexed-query probe: planner-vs-naive-scan speedup,
	// selectivity sweep and index maintenance overhead (see
	// query_probe.go). CI gates on index_speedup and the unindexed
	// SetAttr guard.
	Query *queryReport `json:"query,omitempty"`
	// Repl is the replication probe: follower catch-up throughput, live
	// tail lag, checkpoint-manifest resync and the export divergence
	// oracle (see repl_probe.go). CI gates on catchup_ops_per_sec,
	// divergence_detected and final_lag.
	Repl *replReport `json:"repl,omitempty"`
	// Serve is the wire-protocol probe: concurrent sessions of mixed
	// traffic through an in-process cadserve server, latency percentiles,
	// the lost-ack oracle and post-drain leak counters (see
	// serve_probe.go). CI gates on errors, lost_acks, p99_us and the
	// *_after_drain counters; the dedicated soak job scales conns to 10k
	// via `cadbench -serve`.
	Serve *serveReport `json:"serve,omitempty"`
}

// checkpointReport is the `checkpoint` section of the JSON report.
type checkpointReport struct {
	Shards int `json:"shards"`
	// Full* is the first checkpoint of the probe store (every shard
	// dirty); Incremental* is the following checkpoint after touching a
	// single object.
	FullSegments        uint64 `json:"full_segments"`
	FullBytes           uint64 `json:"full_bytes"`
	IncrementalSegments uint64 `json:"incremental_segments"`
	IncrementalBytes    uint64 `json:"incremental_bytes"`
	// BytesRatio = FullBytes / IncrementalBytes: how much cheaper the
	// 1-dirty-shard checkpoint is in encoded+written bytes.
	BytesRatio float64 `json:"bytes_ratio"`
	// Recovery timings of reopening the probe directory: serial decode
	// vs the default worker pool (wall time; informational on 1-CPU
	// machines).
	RecoveryColdSerialMs float64 `json:"recovery_cold_serial_ms"`
	RecoveryColdMs       float64 `json:"recovery_cold_ms"`
	RecoveryReplayOps    int     `json:"recovery_replay_ops"`
	RecoveryWorkers      int     `json:"recovery_workers"`
}

// shardsReport is the `shards` section of the JSON report.
type shardsReport struct {
	DefaultShards     int     `json:"default_shards"`
	SetAttr1wNsPerOp  float64 `json:"setattr_1w_ns_per_op"`
	SetAttr8wNsPerOp  float64 `json:"setattr_8w_ns_per_op"`
	SetAttr8w1ShardNs float64 `json:"setattr_8w_1shard_ns_per_op"`
	// MultiWriterSpeedup is per-op durable-write latency with one writer
	// over per-op latency with eight: the end-to-end multi-writer win from
	// writers acquiring only their own shard and coalescing into one
	// group-commit batch. Defined on the durable path because the
	// in-memory shard comparison above is meaningless on a single-CPU
	// machine (no lock is ever contended), while fsync amortization shows
	// the concurrency win on any hardware.
	MultiWriterSpeedup float64 `json:"multi_writer_speedup"`
}

// runJSON executes the experiments (optionally filtered) and prints one
// JSON document on stdout. It returns an error if any experiment failed.
func runJSON(expFilter string) error {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer devnull.Close()

	report := jsonReport{MicroNsPerOp: map[string]float64{}}
	failed := 0
	old := os.Stdout
	os.Stdout = devnull
	for _, e := range experiments {
		if expFilter != "" && e.id != expFilter {
			continue
		}
		t0 := time.Now()
		runErr := e.run()
		row := jsonExperiment{
			ID:    e.id,
			Title: e.title,
			OK:    runErr == nil,
			Ms:    float64(time.Since(t0).Microseconds()) / 1000,
		}
		if runErr != nil {
			row.Error = runErr.Error()
			failed++
		}
		report.Experiments = append(report.Experiments, row)
	}
	os.Stdout = old
	if expFilter != "" && len(report.Experiments) == 0 {
		return fmt.Errorf("unknown experiment %q", expFilter)
	}

	if err := microProbes(&report); err != nil {
		return err
	}
	if err := durableWriteProbes(&report); err != nil {
		return err
	}
	if err := shardProbes(&report); err != nil {
		return err
	}
	if err := checkpointProbes(&report); err != nil {
		return err
	}
	if err := mvccProbes(&report); err != nil {
		return err
	}
	if err := queryProbes(&report); err != nil {
		return err
	}
	if err := replProbes(&report); err != nil {
		return err
	}
	if err := serveProbes(&report, serveBenchDefaults()); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

// probe times one read-path operation over n iterations.
func probe(report *jsonReport, name string, n int, op func() error) error {
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return fmt.Errorf("probe %s: %w", name, err)
		}
	}
	report.MicroNsPerOp[name] = float64(time.Since(t0).Nanoseconds()) / float64(n)
	return nil
}

// microProbes measures the hot read paths the EXPERIMENTS.md perf rows
// track: direct reads, one-hop inherited reads, deep-chain reads and the
// inherited-subclass (Members) path.
func microProbes(report *jsonReport) error {
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		return err
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		return err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		return err
	}
	const n = 200000
	if err := probe(report, "direct_read", n, func() error {
		_, err := db.GetAttr(iface, "Length")
		return err
	}); err != nil {
		return err
	}
	if err := probe(report, "inherited_read_1hop", n, func() error {
		_, err := db.GetAttr(impl, "Length")
		return err
	}); err != nil {
		return err
	}
	if err := probe(report, "inherited_members", n, func() error {
		_, err := db.Members(impl, "Pins")
		return err
	}); err != nil {
		return err
	}

	for _, depth := range []int{4, 16} {
		cat, err := bench.ChainCatalog(depth)
		if err != nil {
			return err
		}
		cdb, err := cadcam.OpenMemory(cat)
		if err != nil {
			return err
		}
		chain, err := bench.BuildChain(cdb, depth)
		if err != nil {
			cdb.Close()
			return err
		}
		leaf := chain[len(chain)-1]
		if err := probe(report, fmt.Sprintf("chain_read_depth%d", depth), n/2, func() error {
			_, err := cdb.GetAttr(leaf, "X")
			return err
		}); err != nil {
			cdb.Close()
			return err
		}
		cdb.Close()
	}
	fillCacheReport(report, db)
	return nil
}

// durableWriteProbes measures the fsync-acknowledged write path on a real
// on-disk database: single-writer latency (the group-commit floor) and
// 8-writer throughput (the coalescing win), then snapshots the WAL
// pipeline counters into the report.
func durableWriteProbes(report *jsonReport) error {
	dir, err := os.MkdirTemp("", "cadbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		return err
	}
	defer db.Close()

	measure := func(writers, opsEach int) (float64, error) {
		pins := make([]cadcam.Surrogate, writers)
		for i := range pins {
			if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
				return 0, err
			}
		}
		errs := make(chan error, writers)
		t0 := time.Now()
		for w := 0; w < writers; w++ {
			go func(w int) {
				for i := 0; i < opsEach; i++ {
					if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(w)
		}
		for w := 0; w < writers; w++ {
			if err := <-errs; err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(writers*opsEach), nil
	}

	oneW, err := measure(1, 300)
	if err != nil {
		return fmt.Errorf("probe durable_write_1w: %w", err)
	}
	report.MicroNsPerOp["durable_write_1w_ns_per_op"] = oneW
	eightW, err := measure(8, 300)
	if err != nil {
		return fmt.Errorf("probe durable_write: %w", err)
	}
	report.MicroNsPerOp["durable_write_ns_per_op"] = eightW

	w := db.Stats().WAL
	report.WAL = &w
	return nil
}

// shardProbes measures in-memory multi-writer SetAttr on the sharded
// store. Each configuration gets its own database with per-writer
// objects; rounds alternate between the 1-shard and default-shard stores
// and each side keeps its best round, so transient machine load cannot
// fake (or hide) a speedup.
func shardProbes(report *jsonReport) error {
	setAttrRound := func(db *cadcam.Database, pins []cadcam.Surrogate, opsEach int) (float64, error) {
		writers := len(pins)
		errs := make(chan error, writers)
		t0 := time.Now()
		for w := 0; w < writers; w++ {
			go func(w int) {
				for i := 0; i < opsEach; i++ {
					if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(w)
		}
		for w := 0; w < writers; w++ {
			if err := <-errs; err != nil {
				return 0, err
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(writers*opsEach), nil
	}
	open := func(shards, writers int) (*cadcam.Database, []cadcam.Surrogate, error) {
		db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Shards: shards})
		if err != nil {
			return nil, nil, err
		}
		pins := make([]cadcam.Surrogate, writers)
		for i := range pins {
			if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
				db.Close()
				return nil, nil, err
			}
		}
		return db, pins, nil
	}

	const opsEach = 8000
	const rounds = 5
	sharded, shardedPins, err := open(0, 8)
	if err != nil {
		return err
	}
	defer sharded.Close()
	single, singlePins, err := open(1, 8)
	if err != nil {
		return err
	}
	defer single.Close()

	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	var best8w, best1shard float64
	for r := 0; r < rounds; r++ {
		v, err := setAttrRound(single, singlePins, opsEach)
		if err != nil {
			return fmt.Errorf("probe shards=1: %w", err)
		}
		best1shard = best(best1shard, v)
		v, err = setAttrRound(sharded, shardedPins, opsEach)
		if err != nil {
			return fmt.Errorf("probe shards=default: %w", err)
		}
		best8w = best(best8w, v)
	}
	oneW, err := setAttrRound(sharded, shardedPins[:1], opsEach)
	if err != nil {
		return fmt.Errorf("probe shards 1w: %w", err)
	}

	speedup := 0.0
	if d8 := report.MicroNsPerOp["durable_write_ns_per_op"]; d8 > 0 {
		speedup = report.MicroNsPerOp["durable_write_1w_ns_per_op"] / d8
	}
	report.Shards = &shardsReport{
		DefaultShards:      sharded.Stats().Shards,
		SetAttr1wNsPerOp:   oneW,
		SetAttr8wNsPerOp:   best8w,
		SetAttr8w1ShardNs:  best1shard,
		MultiWriterSpeedup: speedup,
	}
	return nil
}

// checkpointProbes measures the incremental checkpoint on a real on-disk
// database: a full checkpoint of a store spread over every shard, an
// incremental checkpoint after dirtying a single shard, and the recovery
// time of reopening the result serially vs with the default worker pool.
func checkpointProbes(report *jsonReport) error {
	dir, err := os.MkdirTemp("", "cadbench-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		return err
	}
	const objects = 4096
	pins := make([]cadcam.Surrogate, objects)
	for i := range pins {
		if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
			db.Close()
			return err
		}
		if err := db.SetAttr(pins[i], "PinId", cadcam.Int(int64(i%64))); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return err
	}
	full := db.Stats().Checkpoint
	if err := db.SetAttr(pins[0], "PinId", cadcam.Int(1)); err != nil {
		db.Close()
		return err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return err
	}
	incr := db.Stats().Checkpoint
	shards := db.Store().Shards()
	if err := db.Close(); err != nil {
		return err
	}

	reopen := func(workers int) (float64, cadcam.RecoveryStats, error) {
		t0 := time.Now()
		rdb, err := cadcam.Open(paperschema.MustGates(),
			cadcam.Options{Dir: dir, SyncEvery: -1, RecoveryWorkers: workers})
		if err != nil {
			return 0, cadcam.RecoveryStats{}, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		rec := rdb.Stats().Recovery
		return ms, rec, rdb.Close()
	}
	serialMs, _, err := reopen(1)
	if err != nil {
		return fmt.Errorf("probe checkpoint reopen serial: %w", err)
	}
	coldMs, rec, err := reopen(0)
	if err != nil {
		return fmt.Errorf("probe checkpoint reopen: %w", err)
	}

	cp := &checkpointReport{
		Shards:               shards,
		FullSegments:         full.SegmentsWritten,
		FullBytes:            full.BytesEncoded,
		IncrementalSegments:  incr.SegmentsWritten - full.SegmentsWritten,
		IncrementalBytes:     incr.BytesEncoded - full.BytesEncoded,
		RecoveryColdSerialMs: serialMs,
		RecoveryColdMs:       coldMs,
		RecoveryReplayOps:    rec.ReplayOps,
		RecoveryWorkers:      rec.Workers,
	}
	if cp.IncrementalBytes > 0 {
		cp.BytesRatio = float64(cp.FullBytes) / float64(cp.IncrementalBytes)
	}
	report.Checkpoint = cp
	return nil
}
