package main

import (
	"fmt"
	"time"

	"cadcam"
	"cadcam/internal/paperschema"
	"cadcam/internal/sim"
	"cadcam/internal/version"
)

func init() {
	experiments = append(experiments, experiment{
		"E13", "extension: time simulation over version-selected components", runE13,
	})
}

// runE13 exercises the application §4 motivates for tailored permeability:
// a half-adder composite simulated with component behaviours chosen by
// the version manager — released gates vs. an experimental fast
// alternative — demonstrating that version selection changes the timing
// the simulator reports.
func runE13() error {
	fmt.Println("claim: TimeBehavior exists for time simulation (§4); selection policies change the timing")
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		return err
	}
	defer db.Close()

	mkIface := func(nIn, nOut int) (cadcam.Surrogate, error) {
		root, err := db.NewObject(paperschema.TypeGateInterfaceI, "")
		if err != nil {
			return 0, err
		}
		id := int64(1)
		add := func(dir string) error {
			pin, err := db.NewSubobject(root, "Pins")
			if err != nil {
				return err
			}
			if err := db.SetAttr(pin, "InOut", cadcam.Sym(dir)); err != nil {
				return err
			}
			if err := db.SetAttr(pin, "PinId", cadcam.Int(id)); err != nil {
				return err
			}
			id++
			return nil
		}
		for i := 0; i < nIn; i++ {
			if err := add("IN"); err != nil {
				return 0, err
			}
		}
		for i := 0; i < nOut; i++ {
			if err := add("OUT"); err != nil {
				return 0, err
			}
		}
		iface, err := db.NewObject(paperschema.TypeGateInterface, "")
		if err != nil {
			return 0, err
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, root); err != nil {
			return 0, err
		}
		return iface, nil
	}

	// Component designs: XOR and AND, two versions each.
	usage := map[cadcam.Surrogate]string{}
	for _, fn := range []string{"XOR", "AND"} {
		iface, err := mkIface(2, 1)
		if err != nil {
			return err
		}
		if err := db.DefineDesign(fn, iface); err != nil {
			return err
		}
		for alt, delay := range map[string]int64{"released": 6, "fast": 2} {
			impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
			if err != nil {
				return err
			}
			if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
				return err
			}
			table, err := sim.Table(fn, 2)
			if err != nil {
				return err
			}
			if err := db.SetAttr(impl, "Function", table); err != nil {
				return err
			}
			if err := db.SetAttr(impl, "TimeBehavior", cadcam.Int(delay)); err != nil {
				return err
			}
			if _, err := db.AddVersion(fn, impl, nil, alt); err != nil {
				return err
			}
			if alt == "released" {
				if err := db.SetStatus(impl, cadcam.StatusReleased); err != nil {
					return err
				}
				if err := db.SetDefault(fn, impl); err != nil {
					return err
				}
			}
		}
		_ = usage
	}

	// The half-adder composite.
	haIface, err := mkIface(2, 2)
	if err != nil {
		return err
	}
	ha, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		return err
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, ha, haIface); err != nil {
		return err
	}
	var gatePins [][]cadcam.Surrogate
	for _, fn := range []string{"XOR", "AND"} {
		u, err := mkIface(2, 1)
		if err != nil {
			return err
		}
		sg, err := db.NewSubobject(ha, "SubGates")
		if err != nil {
			return err
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, sg, u); err != nil {
			return err
		}
		usage[u] = fn
		pins, err := db.Members(sg, "Pins")
		if err != nil {
			return err
		}
		gatePins = append(gatePins, pins)
	}
	ext, err := db.Members(ha, "Pins")
	if err != nil {
		return err
	}
	for _, pair := range [][2]cadcam.Surrogate{
		{ext[0], gatePins[0][0]}, {ext[0], gatePins[1][0]},
		{ext[1], gatePins[0][1]}, {ext[1], gatePins[1][1]},
		{gatePins[0][2], ext[2]}, {gatePins[1][2], ext[3]},
	} {
		if _, err := db.RelateIn(ha, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(pair[0]), "Pin2": cadcam.RefOf(pair[1]),
		}); err != nil {
			return err
		}
	}

	env := version.NewEnvironment("fast-build")
	for _, fn := range []string{"XOR", "AND"} {
		vs, _ := db.Versions().Versions(fn)
		for _, v := range vs {
			if v.Alternative == "fast" {
				env.Choose(fn, v.Object)
			}
		}
	}

	row("selection", "correct-table", "critical-path", "compile+run")
	for _, mode := range []struct {
		label string
		ref   func(design string) cadcam.GenericRef
		env   *cadcam.Environment
	}{
		{"bottom-up (released)", func(d string) cadcam.GenericRef {
			return cadcam.GenericRef{Design: d, Policy: cadcam.SelectDefault}
		}, nil},
		{"environment (fast)", func(d string) cadcam.GenericRef {
			return cadcam.GenericRef{Design: d, Policy: cadcam.SelectEnvironment}
		}, env},
	} {
		resolver := func(iface cadcam.Surrogate) (cadcam.Surrogate, error) {
			return db.Resolve(mode.ref(usage[iface]), mode.env)
		}
		start := time.Now()
		circuit, err := sim.Compile(db.Store(), ha, resolver)
		if err != nil {
			return err
		}
		tt, err := circuit.TruthTable()
		if err != nil {
			return err
		}
		dur := time.Since(start)
		correct := tt[0][0] == false && tt[1][0] == true && tt[2][0] == true && tt[3][0] == false &&
			tt[3][1] == true && tt[0][1] == false
		res, err := circuit.Eval([]bool{true, true})
		if err != nil {
			return err
		}
		row(mode.label, correct, res.Delay, dur.Round(time.Microsecond))
		if !correct {
			return fmt.Errorf("half-adder truth table wrong under %s", mode.label)
		}
	}
	return nil
}
