package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cadcam"
	"cadcam/internal/bench"
	"cadcam/internal/ddl"
	"cadcam/internal/expr"
	"cadcam/internal/inherit"
	"cadcam/internal/paperschema"
	"cadcam/internal/txn"
	"cadcam/internal/version"
)

// runE7 executes the §2 comparison the inheritance relationship exists to
// win: copying a component into the composite goes stale silently, while
// the view (binding) stays current and notifies.
func runE7() error {
	fmt.Println("claim: copies go stale unnoticed; views are always current and notify (§2)")
	row("inheritors", "updates", "stale-copies", "stale-views", "copy-bytes", "notified")
	for _, n := range []int{10, 100} {
		const updates = 10
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		iface, err := bench.Interface(db, 2, 1, 4, 2)
		if err != nil {
			return err
		}
		// Copy-import design: each "composite" takes a private copy.
		copies := make([]*inherit.CopyImport, n)
		copyBytes := 0
		for i := range copies {
			ci, err := inherit.ImportCopy(db.Store(), paperschema.RelAllOfGateInterface, iface)
			if err != nil {
				return err
			}
			copies[i] = ci
			copyBytes += ci.Bytes
		}
		// View design: each composite binds.
		views := make([]cadcam.Surrogate, n)
		for i := range views {
			impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
			if err != nil {
				return err
			}
			if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
				return err
			}
			views[i] = impl
		}
		for u := 0; u < updates; u++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(10+u))); err != nil {
				return err
			}
		}
		staleCopies, staleViews := 0, 0
		for _, ci := range copies {
			stale, err := ci.Stale(db.Store())
			if err != nil {
				return err
			}
			if stale {
				staleCopies++
			}
		}
		for _, impl := range views {
			v, err := db.GetAttr(impl, "Length")
			if err != nil {
				return err
			}
			if !v.Equal(cadcam.Int(19)) {
				staleViews++
			}
		}
		notified := len(db.PendingAdaptations())
		row(n, updates, staleCopies, staleViews, copyBytes, notified)
		if staleCopies != n || staleViews != 0 || notified != n {
			return fmt.Errorf("copy-vs-view shape violated: copies=%d views=%d notified=%d",
				staleCopies, staleViews, notified)
		}
		db.Close()
	}
	return nil
}

// runE8 exercises the three §6 selection policies over growing version
// sets.
func runE8() error {
	fmt.Println("claim: generic relationships defer version choice to assembly time (3 policies)")
	row("versions", "bottom-up", "top-down", "environment", "picked(q)")
	for _, n := range []int{10, 100, 1000} {
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		impls, err := bench.VersionSet(db, n)
		if err != nil {
			return err
		}
		timeIt := func(f func() (cadcam.Surrogate, error)) (time.Duration, cadcam.Surrogate, error) {
			const iters = 200
			var got cadcam.Surrogate
			start := time.Now()
			for i := 0; i < iters; i++ {
				var err error
				got, err = f()
				if err != nil {
					return 0, 0, err
				}
			}
			return time.Since(start) / iters, got, nil
		}
		bu, pickedBU, err := timeIt(func() (cadcam.Surrogate, error) {
			return db.Resolve(cadcam.GenericRef{Design: "D", Policy: cadcam.SelectDefault}, nil)
		})
		if err != nil {
			return err
		}
		q := expr.MustParse("Status = released and TimeBehavior <= 12")
		td, pickedTD, err := timeIt(func() (cadcam.Surrogate, error) {
			return db.Resolve(cadcam.GenericRef{Design: "D", Policy: cadcam.SelectQuery, Query: q}, nil)
		})
		if err != nil {
			return err
		}
		env := version.NewEnvironment("bench")
		env.Choose("D", impls[0])
		ev, pickedEnv, err := timeIt(func() (cadcam.Surrogate, error) {
			return db.Resolve(cadcam.GenericRef{Design: "D", Policy: cadcam.SelectEnvironment}, env)
		})
		if err != nil {
			return err
		}
		row(n, bu, td, ev, pickedTD)
		if pickedBU == 0 || pickedEnv != impls[0] {
			return fmt.Errorf("selection picked wrong versions")
		}
		db.Close()
	}
	return nil
}

// runE9 verifies §6's lock inheritance: the reader of inherited data
// blocks a writer of the *visible* transmitter portion but not a writer
// of an invisible portion.
func runE9() error {
	fmt.Println("claim: reading inherited data locks the visible portion of the transmitter (§6)")
	db, err := bench.Gates()
	if err != nil {
		return err
	}
	defer db.Close()
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		return err
	}
	reader := db.Begin("")
	if _, err := reader.GetAttr(ff.Impl, "Length"); err != nil {
		return err
	}
	held := reader.HeldLocks()

	visible := db.Begin("")
	visibleBlocked := make(chan error, 1)
	go func() { visibleBlocked <- visible.SetAttr(ff.Iface, "Length", cadcam.Int(9)) }()
	var visibleWasBlocked bool
	select {
	case <-visibleBlocked:
	case <-time.After(100 * time.Millisecond):
		visibleWasBlocked = true
	}

	invisible := db.Begin("")
	start := time.Now()
	errInvisible := invisible.SetAttr(ff.Impl, "Function", cadcam.NewMatrix(1, 1, cadcam.Bool(true)))
	invisibleDur := time.Since(start)
	if err := invisible.Commit(); err != nil {
		return err
	}

	if err := reader.Commit(); err != nil {
		return err
	}
	if err := <-visibleBlocked; err != nil {
		return err
	}
	if err := visible.Commit(); err != nil {
		return err
	}

	row("chain-locks", "visible-writer-blocked", "invisible-writer-ok", "invisible-latency")
	row(len(held), visibleWasBlocked, errInvisible == nil, invisibleDur.Round(time.Microsecond))
	if !visibleWasBlocked || errInvisible != nil || len(held) < 2 {
		return fmt.Errorf("lock inheritance shape violated")
	}
	return nil
}

// runE10 locks whole expansions, with the access-control manager capping
// the mode on shared standard cells.
func runE10() error {
	fmt.Println("claim: complex operations lock component hierarchies; standard cells stay read-locked (§6)")
	row("subgates", "own-X", "portions", "capped-to-S", "lock-time")
	for _, nSub := range []int{2, 8, 32} {
		db, err := bench.Gates()
		if err != nil {
			return err
		}
		ff, err := bench.BuildFlipFlop(db, nSub)
		if err != nil {
			return err
		}
		// The component interface hierarchy is a standard cell.
		db.Access().Grant("designer", ff.CompIface, txn.RightRead)
		root := db.TransmitterOf(ff.CompIface, paperschema.RelAllOfGateInterfaceI)
		db.Access().Grant("designer", root, txn.RightRead)

		tx := db.Begin("designer")
		start := time.Now()
		el, err := tx.LockExpansion(ff.Impl, txn.X)
		if err != nil {
			return err
		}
		dur := time.Since(start)
		capped := 0
		for _, p := range el.Portions {
			if p.Mode == txn.S {
				capped++
			}
		}
		row(nSub, len(el.Own), len(el.Portions), capped, dur.Round(time.Microsecond))
		if capped == 0 {
			return fmt.Errorf("access control failed to cap any portion")
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		db.Close()
	}
	return nil
}

// runE11 parses the paper's complete DDL corpus.
func runE11() error {
	fmt.Println("claim: every type definition printed in the paper is expressible and validates")
	start := time.Now()
	cat, err := ddl.ParsePaperCorpus()
	if err != nil {
		return err
	}
	dur := time.Since(start)
	row("obj-types", "rel-types", "inher-rels", "parse+validate")
	row(len(cat.ObjectTypeNames()), len(cat.RelTypeNames()), len(cat.InherRelTypeNames()),
		dur.Round(time.Microsecond))
	return nil
}

// runE12 measures durability: journal replay after a plain reopen and
// after a checkpoint, plus survival of a torn journal tail.
func runE12() error {
	fmt.Println("claim: the journal + snapshot layer recovers the exact pre-crash state")
	row("ops", "journal-replay", "post-checkpoint", "state-ok")
	for _, n := range []int{1000, 10000} {
		dir, err := os.MkdirTemp("", "cadbench-e12-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
		if err != nil {
			return err
		}
		iface, err := bench.Interface(db, 2, 1, 4, 2)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i))); err != nil {
				return err
			}
		}
		if err := db.Close(); err != nil {
			return err
		}
		start := time.Now()
		db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
		if err != nil {
			return err
		}
		replay := time.Since(start)
		v, err := db2.GetAttr(iface, "Length")
		if err != nil {
			return err
		}
		stateOK := v.Equal(cadcam.Int(int64(n - 1)))
		if err := db2.Checkpoint(); err != nil {
			return err
		}
		if err := db2.Close(); err != nil {
			return err
		}
		start = time.Now()
		db3, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
		if err != nil {
			return err
		}
		snap := time.Since(start)
		v, _ = db3.GetAttr(iface, "Length")
		stateOK = stateOK && v.Equal(cadcam.Int(int64(n-1)))
		if err := db3.Close(); err != nil {
			return err
		}
		row(n, replay.Round(time.Microsecond), snap.Round(time.Microsecond), stateOK)
		if !stateOK {
			return errors.New("recovered state diverged")
		}
	}
	// Torn-tail survival: chop bytes off the journal.
	dir, err := os.MkdirTemp("", "cadbench-e12t-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		return err
	}
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	walPath := filepath.Join(dir, "wal-00000000.log")
	info, err := os.Stat(walPath)
	if err != nil {
		return err
	}
	if err := os.Truncate(walPath, info.Size()-4); err != nil {
		return err
	}
	db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		return err
	}
	defer db2.Close()
	fmt.Printf("torn-tail recovery: opened with %d objects (last op dropped: %v)\n",
		db2.Store().Len(), !db2.Exists(iface) || func() bool {
			v, _ := db2.GetAttr(iface, "Width")
			return !v.Equal(cadcam.Int(2))
		}())
	return nil
}
