package main

import "testing"

// The experiment harness is what regenerates EXPERIMENTS.md; run the fast
// experiments as tests so regressions in any claim fail CI, not just the
// manual harness. (E1/E6/E12 run larger sweeps and are covered by the
// equivalent Benchmarks and integration tests.)
func TestFastExperiments(t *testing.T) {
	for _, e := range experiments {
		switch e.id {
		case "E2", "E4", "E5", "E9", "E11", "E13":
			t.Run(e.id, func(t *testing.T) {
				if err := e.run(); err != nil {
					t.Fatalf("%s (%s): %v", e.id, e.title, err)
				}
			})
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
	}
	for _, want := range []string{"E1", "E7", "E12", "E13"} {
		if !seen[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}
