package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "schema.ddl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidSchema(t *testing.T) {
	path := writeTemp(t, `
		domain IO = (IN, OUT);
		obj-type P = attributes: D: IO; end P;
	`)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 object types") {
		t.Errorf("summary: %q", out.String())
	}
}

func TestRunDescribe(t *testing.T) {
	path := writeTemp(t, `
		obj-type A = attributes: X: integer; end A;
		inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X; end R;
		obj-type B = inheritor-in: R; end B;
	`)
	var out, errOut strings.Builder
	if code := run([]string{"-describe", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"obj-type B", "inherited from A via R", "inher-rel-type R: A -> object"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("describe output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMultipleFiles(t *testing.T) {
	p1 := writeTemp(t, "domain IO = (IN, OUT);")
	p2 := writeTemp(t, "obj-type P = attributes: D: IO; end P;")
	var out, errOut strings.Builder
	if code := run([]string{"-q", p1, p2}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("-q should suppress output, got %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	// No arguments.
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	// Missing file.
	if code := run([]string{"/does/not/exist.ddl"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	// Syntax error.
	bad := writeTemp(t, "obj-type = ;")
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("syntax error: exit %d", code)
	}
	// Semantic error across files: duplicate type.
	p1 := writeTemp(t, "obj-type A = end A;")
	p2 := writeTemp(t, "obj-type A = end A;")
	if code := run([]string{p1, p2}, &out, &errOut); code != 1 {
		t.Errorf("duplicate type: exit %d", code)
	}
	// Validation error (unknown transmitter).
	p3 := writeTemp(t, "inher-rel-type R = transmitter: object-of-type Ghost; inheritor: object; inheriting: X; end R;")
	if code := run([]string{p3}, &out, &errOut); code != 1 {
		t.Errorf("validation error: exit %d", code)
	}
	// Bad flag.
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func TestRunPaperCorpus(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"../../internal/ddl/testdata/paper.ddl"}, &out, &errOut); code != 0 {
		t.Fatalf("paper corpus: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "20 object types") {
		t.Errorf("summary: %q", out.String())
	}
}
