// Command caddl parses schema files written in the paper's DDL, validates
// them and reports the resulting catalog — including the *effective*
// types after type-level inheritance.
//
// Usage:
//
//	caddl [-describe] [-q] file.ddl...
//
// Exit status 0 if every file validates, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cadcam/internal/ddl"
	"cadcam/internal/schema"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("caddl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	describe := fs.Bool("describe", false, "print effective types (attributes with inheritance provenance)")
	quiet := fs.Bool("q", false, "suppress the summary; only report errors")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: caddl [-describe] [-q] file.ddl...")
		return 2
	}
	cat := schema.NewCatalog()
	ok := true
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "caddl: %v\n", err)
			ok = false
			continue
		}
		if err := ddl.ParseInto(string(src), cat); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	if err := cat.Validate(); err != nil {
		fmt.Fprintf(stderr, "caddl: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "catalog: %d object types, %d relationship types, %d inheritance relationships\n",
			len(cat.ObjectTypeNames()), len(cat.RelTypeNames()), len(cat.InherRelTypeNames()))
	}
	if *describe {
		for _, name := range cat.ObjectTypeNames() {
			e, _ := cat.Effective(name)
			fmt.Fprintln(stdout, e.Describe())
		}
		for _, name := range cat.InherRelTypeNames() {
			r, _ := cat.InherRelType(name)
			inheritor := r.Inheritor
			if inheritor == "" {
				inheritor = "object"
			}
			fmt.Fprintf(stdout, "inher-rel-type %s: %s -> %s, inheriting %v\n",
				name, r.Transmitter, inheritor, r.Inheriting)
		}
	}
	return 0
}
