// Command cadtorture soaks the crash-recovery path: it runs the full
// crash matrix (kill the workload at every registered failpoint, reopen,
// compare against the model oracle) plus journal tail fuzzing, round
// after round with fresh seeds, until interrupted or a divergence is
// found. Any failure prints the seed and failpoint spec needed to
// reproduce it deterministically.
//
// Usage:
//
//	cadtorture                     # soak forever from a random-ish seed
//	cadtorture -rounds 5 -seed 7   # bounded, deterministic
//	cadtorture -artifacts /tmp/ct  # keep failing directories
//	cadtorture -only '^repl/'      # replication rounds only
//
// The binary re-executes itself as the workload child; the CADCAM_CRASH_CFG
// environment variable marks worker mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"time"

	"cadcam/internal/crash"
	"cadcam/internal/fault"
)

func main() {
	if code, isWorker := runWorker(); isWorker {
		os.Exit(code)
	}

	seed := flag.Int64("seed", time.Now().UnixNano()%1_000_000_000, "base workload seed")
	rounds := flag.Int("rounds", 0, "matrix+fuzz rounds to run (0 = forever)")
	writers := flag.Int("writers", 4, "concurrent writers per workload")
	ops := flag.Int("ops", 400, "operation attempts per writer")
	longReaders := flag.Int("longreaders", 1, "continuous snapshot closure scanners per workload (0 = off)")
	fuzz := flag.Int("fuzz", 16, "tail-fuzz variants per round")
	artifacts := flag.String("artifacts", "", "directory that keeps failing rounds' evidence")
	only := flag.String("only", "", "regexp restricting matrix rounds to matching failpoints (e.g. ^repl/)")
	verbose := flag.Bool("v", false, "log every round")
	flag.Parse()

	var filter *regexp.Regexp
	if *only != "" {
		var err error
		if filter, err = regexp.Compile(*only); err != nil {
			fatal(fmt.Errorf("bad -only pattern: %w", err))
		}
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	for round := 0; *rounds == 0 || round < *rounds; round++ {
		base, err := os.MkdirTemp("", "cadtorture-")
		if err != nil {
			fatal(err)
		}
		d := &crash.Driver{
			BaseDir:     base,
			Seed:        *seed + int64(round)*1_000_003,
			Writers:     *writers,
			Ops:         *ops,
			LongReaders: *longReaders,
			Command: func() *exec.Cmd {
				exe, err := os.Executable()
				if err != nil {
					exe = os.Args[0]
				}
				return exec.Command(exe)
			},
			Logf:        logf,
			ArtifactDir: *artifacts,
			Filter:      filter,
		}
		start := time.Now()
		if err := d.RunMatrix(); err != nil {
			fmt.Fprintf(os.Stderr, "cadtorture: DIVERGENCE in round %d (base seed %d):\n%v\n", round, d.Seed, err)
			os.Exit(1)
		}
		if err := d.RunTailFuzz(*fuzz); err != nil {
			fmt.Fprintf(os.Stderr, "cadtorture: DIVERGENCE in round %d tail fuzz (base seed %d):\n%v\n", round, d.Seed, err)
			os.Exit(1)
		}
		fmt.Printf("cadtorture: round %d ok (seed %d, %v)\n", round, d.Seed, time.Since(start).Round(time.Millisecond))
		_ = os.RemoveAll(base)
	}
}

// runWorker handles worker mode: when the crash config is in the
// environment this process is a workload child of the driver.
func runWorker() (code int, isWorker bool) {
	cfg, ok, err := crash.LoadConfigEnv()
	if err != nil {
		fatal(err)
	}
	if !ok {
		return 0, false
	}
	if cfg.Dir == "" || !filepath.IsAbs(cfg.Dir) {
		fatal(fmt.Errorf("cadtorture worker: bad dir %q", cfg.Dir))
	}
	if err := crash.RunWorkload(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cadtorture worker: %v\n", err)
		return 1, true
	}
	fmt.Printf("%s %d\n", crash.FiredMarker, fault.TotalHits())
	return 0, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cadtorture:", err)
	os.Exit(1)
}
