// Command cadserve serves a cadcam database to many concurrent clients
// over the binary wire protocol in internal/serve: per-connection
// sessions own their transactions and pinned snapshots, requests
// pipeline with ordered responses, admission control sheds write load
// when the journal stalls, and SIGTERM drains gracefully — stop
// accepting, finish in-flight requests, abort session transactions,
// release pins.
//
// Usage:
//
//	cadserve -addr :7411 -dir data [-schema schema.ddl] [-auth token]
//	cadserve -addr :7412 -follow primary-data        # read-only replica
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cadcam"
	"cadcam/internal/ddl"
	"cadcam/internal/paperschema"
	"cadcam/internal/schema"
	"cadcam/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "cadserve:", err)
		os.Exit(1)
	}
}

// run is the testable server body. When ready is non-nil it receives the
// bound listener address once the server is accepting.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("cadserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	dir := fs.String("dir", "", "persistence directory (empty = in-memory)")
	schemaPath := fs.String("schema", "", "DDL schema file (empty = built-in paper schema)")
	follow := fs.String("follow", "", "serve a read-only replica of this primary directory")
	auth := fs.String("auth", "", "require this token on Hello")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
	maxSessions := fs.Int("max-sessions", 0, "session cap (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir != "" && *follow != "" {
		return errors.New("-dir and -follow are mutually exclusive")
	}

	cat, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}

	cfg := serve.Config{
		AuthToken:   *auth,
		MaxSessions: *maxSessions,
		Logf:        log.Printf,
	}
	if *follow != "" {
		fol, err := cadcam.OpenFollower(cat, *follow, cadcam.FollowerOptions{})
		if err != nil {
			return err
		}
		defer fol.Close()
		cfg.Follower = fol
	} else {
		db, err := cadcam.Open(cat, cadcam.Options{Dir: *dir})
		if err != nil {
			return err
		}
		defer db.Close()
		cfg.DB = db
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("cadserve: listening on %s", l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()

	select {
	case sig := <-sigs:
		log.Printf("cadserve: %v: draining (budget %s)", sig, *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			return err
		}
		return <-errCh
	case err := <-errCh:
		// Accept loop died on its own; still tear sessions down.
		srv.Shutdown(*drainTimeout)
		return err
	}
}

// loadSchema parses the DDL file, or falls back to the built-in paper
// schema when none is given.
func loadSchema(path string) (*schema.Catalog, error) {
	if path == "" {
		return paperschema.MustGates(), nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ddl.Parse(string(src))
}
