// Command cadshell is a small interactive shell over a cadcam database:
// load a DDL schema, create objects and bindings, inspect inheritance and
// run constraint-language queries.
//
// Usage:
//
//	cadshell [-dir data] schema.ddl
//
// Type "help" at the prompt for the command list.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cadcam"
	"cadcam/internal/ddl"
	"cadcam/internal/expr"
)

func main() {
	dir := flag.String("dir", "", "persistence directory (empty = in-memory)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cadshell [-dir data] schema.ddl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadshell:", err)
		os.Exit(1)
	}
	cat, err := ddl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadshell:", err)
		os.Exit(1)
	}
	db, err := cadcam.Open(cat, cadcam.Options{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadshell:", err)
		os.Exit(1)
	}
	defer db.Close()
	fmt.Printf("loaded %d object types; type 'help' for commands\n", len(cat.ObjectTypeNames()))

	sh := &shell{db: db, out: os.Stdout}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("cad> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			if err := sh.exec(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("cad> ")
	}
}

type shell struct {
	db  *cadcam.Database
	out io.Writer
}

const helpText = `commands:
  types                       list object types
  classes                     list database-level classes
  class  <name> [elemtype]    define a class
  new    <type> [class]       create an object
  sub    <parent> <subclass>  create a subobject
  relsub <rel> <subclass>     create a subobject of a relationship
  set    <sur> <attr> <expr>  set an attribute (expr: 4, "s", IN, ...)
  get    <sur> <attr>         read an attribute
  members <sur> <name>        list a subclass
  bind   <rel> <inh> <trans>  create an inheritance binding
  unbind <rel> <inh>          remove a binding
  ack    <rel> <inh>          acknowledge an adaptation
  relate <reltype> r=s ...    create a relationship (role=surrogate)
  relatein <owner> <subrel> r=s ...
  del    <sur>                delete (cascading)
  check  [sur]                check constraints (all if no sur)
  expand <sur>                print the expansion tree
  pending                     list pending adaptations
  eval   <sur> <expr>         evaluate against an object
  evalc  <expr>               evaluate against the classes
  index  <name> <class> <attr>  create a secondary index
  unindex <name>              drop a secondary index
  indexes                     list secondary indexes
  query  <class> [predicate]  list class members matching a predicate
  explain <class> [predicate] show the access plan a query would use
  quit`

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, helpText)
	case "types":
		for _, n := range s.db.Catalog().ObjectTypeNames() {
			fmt.Fprintln(s.out, " ", n)
		}
	case "classes":
		for _, n := range s.db.Store().ClassNames() {
			members, _ := s.db.Class(n)
			fmt.Fprintf(s.out, "  %s (%d members)\n", n, len(members))
		}
	case "class":
		if len(args) < 1 {
			return fmt.Errorf("usage: class <name> [elemtype]")
		}
		elem := ""
		if len(args) > 1 {
			elem = args[1]
		}
		return s.db.DefineClass(args[0], elem)
	case "new":
		if len(args) < 1 {
			return fmt.Errorf("usage: new <type> [class]")
		}
		cls := ""
		if len(args) > 1 {
			cls = args[1]
		}
		sur, err := s.db.NewObject(args[0], cls)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", sur)
	case "sub", "relsub":
		if len(args) != 2 {
			return fmt.Errorf("usage: %s <parent> <subclass>", cmd)
		}
		parent, err := parseSur(args[0])
		if err != nil {
			return err
		}
		var sur cadcam.Surrogate
		if cmd == "sub" {
			sur, err = s.db.NewSubobject(parent, args[1])
		} else {
			sur, err = s.db.NewRelSubobject(parent, args[1])
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", sur)
	case "set":
		if len(args) < 3 {
			return fmt.Errorf("usage: set <sur> <attr> <expr>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		v, err := parseValue(strings.Join(args[2:], " "))
		if err != nil {
			return err
		}
		return s.db.SetAttr(sur, args[1], v)
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <sur> <attr>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		v, err := s.db.GetAttr(sur, args[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", v)
	case "members":
		if len(args) != 2 {
			return fmt.Errorf("usage: members <sur> <name>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		members, err := s.db.Members(sur, args[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", members)
	case "bind":
		if len(args) != 3 {
			return fmt.Errorf("usage: bind <rel> <inheritor> <transmitter>")
		}
		inh, err := parseSur(args[1])
		if err != nil {
			return err
		}
		trans, err := parseSur(args[2])
		if err != nil {
			return err
		}
		bsur, err := s.db.Bind(args[0], inh, trans)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, "  binding", bsur)
	case "unbind", "ack":
		if len(args) != 2 {
			return fmt.Errorf("usage: %s <rel> <inheritor>", cmd)
		}
		inh, err := parseSur(args[1])
		if err != nil {
			return err
		}
		if cmd == "unbind" {
			return s.db.Unbind(args[0], inh)
		}
		return s.db.Acknowledge(args[0], inh)
	case "relate", "relatein":
		return s.relate(cmd, args)
	case "del":
		if len(args) != 1 {
			return fmt.Errorf("usage: del <sur>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		return s.db.Delete(sur)
	case "check":
		var violations []cadcam.ConstraintViolation
		if len(args) == 1 {
			sur, err := parseSur(args[0])
			if err != nil {
				return err
			}
			violations, err = s.db.CheckConstraints(sur)
			if err != nil {
				return err
			}
		} else {
			violations = s.db.CheckAll()
		}
		if len(violations) == 0 {
			fmt.Fprintln(s.out, "  ok")
		}
		for _, v := range violations {
			fmt.Fprintln(s.out, " ", v.String())
		}
	case "expand":
		if len(args) != 1 {
			return fmt.Errorf("usage: expand <sur>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		exp, err := s.db.Expand(sur)
		if err != nil {
			return err
		}
		printExpansion(s.out, exp, "  ")
	case "pending":
		for _, a := range s.db.PendingAdaptations() {
			fmt.Fprintf(s.out, "  %v must adapt to %v via %s (%d updates)\n",
				a.Inheritor, a.Transmitter, a.Rel, a.Updates)
		}
	case "eval":
		if len(args) < 2 {
			return fmt.Errorf("usage: eval <sur> <expr>")
		}
		sur, err := parseSur(args[0])
		if err != nil {
			return err
		}
		v, err := s.db.Eval(sur, strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", v)
	case "evalc":
		if len(args) < 1 {
			return fmt.Errorf("usage: evalc <expr>")
		}
		v, err := s.db.EvalClass(strings.Join(args, " "))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, " ", v)
	case "index":
		if len(args) != 3 {
			return fmt.Errorf("usage: index <name> <class> <attr>")
		}
		return s.db.CreateIndex(args[0], args[1], args[2])
	case "unindex":
		if len(args) != 1 {
			return fmt.Errorf("usage: unindex <name>")
		}
		return s.db.DropIndex(args[0])
	case "indexes":
		for _, d := range s.db.Indexes() {
			fmt.Fprintf(s.out, "  %s: %s.%s\n", d.Name, d.ClassName, d.AttrName)
		}
	case "query":
		if len(args) < 1 {
			return fmt.Errorf("usage: query <class> [predicate]")
		}
		surs, err := s.db.Query(args[0], strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		for _, sur := range surs {
			fmt.Fprintln(s.out, " ", sur)
		}
		fmt.Fprintf(s.out, "  (%d match(es))\n", len(surs))
	case "explain":
		if len(args) < 1 {
			return fmt.Errorf("usage: explain <class> [predicate]")
		}
		text, err := s.db.Explain(args[0], strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, "  "+strings.ReplaceAll(strings.TrimRight(text, "\n"), "\n", "\n  ")+"\n")
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

func (s *shell) relate(cmd string, args []string) error {
	min := 1
	if cmd == "relatein" {
		min = 2
	}
	if len(args) < min {
		return fmt.Errorf("usage: %s ... role=surrogate ...", cmd)
	}
	parts := cadcam.Participants{}
	for _, kv := range args[min:] {
		role, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("participant %q: want role=surrogate", kv)
		}
		sur, err := parseSur(val)
		if err != nil {
			return err
		}
		parts[role] = cadcam.RefOf(sur)
	}
	var sur cadcam.Surrogate
	var err error
	if cmd == "relate" {
		sur, err = s.db.Relate(args[0], parts)
	} else {
		var owner cadcam.Surrogate
		owner, err = parseSur(args[0])
		if err != nil {
			return err
		}
		sur, err = s.db.RelateIn(owner, args[1], parts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, " ", sur)
	return nil
}

// parseSur accepts "7" or "@7".
func parseSur(s string) (cadcam.Surrogate, error) {
	s = strings.TrimPrefix(s, "@")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad surrogate %q", s)
	}
	return cadcam.Surrogate(n), nil
}

// parseValue evaluates a literal expression with no names in scope, so
// "4", "2+2", `"text"`, "true" and enum symbols like IN all work.
func parseValue(src string) (cadcam.Value, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.EvalValue(e, expr.NewMapEnv())
}

func printExpansion(out io.Writer, e *cadcam.Expansion, indent string) {
	label := e.Rel
	if label == "" {
		label = "root"
	}
	fmt.Fprintf(out, "%s%v (%s) via %s\n", indent, e.Object, e.Type, label)
	for _, c := range e.Children {
		printExpansion(out, c, indent+"  ")
	}
}
