package main

import (
	"io"
	"strings"
	"testing"

	"cadcam"
	"cadcam/internal/paperschema"
)

func testShell(t *testing.T) *shell {
	t.Helper()
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return &shell{db: db, out: io.Discard}
}

func run(t *testing.T, sh *shell, lines ...string) {
	t.Helper()
	for _, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("exec %q: %v", line, err)
		}
	}
}

func TestShellWorkflow(t *testing.T) {
	sh := testShell(t)
	run(t, sh,
		"help",
		"types",
		"class Roots GateInterface_I",
		"classes",
		"new GateInterface_I Roots", // @1
		"sub 1 Pins",                // @2
		"set 2 InOut IN",
		"set 2 PinId 1",
		"get 2 InOut",
		"new GateInterface", // @3
		"bind AllOf_GateInterface_I 3 1",
		"set 3 Length 2+2",
		"members 3 Pins",
		"new GateImplementation", // @5
		"bind AllOf_GateInterface 5 3",
		"get 5 Length",
		"eval 5 Length = 4",
		"evalc count(Roots) = 1",
		"expand 5",
		"pending",
		"ack AllOf_GateInterface 5",
		"check 5",
		"check",
		"unbind AllOf_GateInterface 5",
		"del 5",
	)
}

func TestShellRelate(t *testing.T) {
	sh := testShell(t)
	run(t, sh,
		"new GateInterface_I", // @1
		"sub 1 Pins",          // @2
		"sub 1 Pins",          // @3
		"set 2 InOut IN",
		"set 3 InOut OUT",
		"relate WireType Pin1=2 Pin2=3",
	)
}

func TestShellErrors(t *testing.T) {
	sh := testShell(t)
	bad := []string{
		"bogus",
		"new",
		"new Ghost",
		"sub x Pins",
		"sub 999 Pins",
		"set 1",
		"get 1",
		"get 999 X",
		"members 1",
		"bind R 1",
		"bind R x 1",
		"del nope",
		"del 0",
		"relate WireType Pin1",
		"relate WireType Pin1=abc",
		"eval 1",
		"eval x count(P)",
		"evalc",
		"expand 999",
		"class",
		"relsub 1",
		"unbind R one",
		"set 1 X count(",
	}
	for _, line := range bad {
		if err := sh.exec(line); err == nil {
			t.Errorf("exec %q: expected error", line)
		}
	}
}

func TestParseSur(t *testing.T) {
	if got, err := parseSur("@7"); err != nil || got != 7 {
		t.Errorf("parseSur(@7) = %v, %v", got, err)
	}
	if got, err := parseSur("12"); err != nil || got != 12 {
		t.Errorf("parseSur(12) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "@"} {
		if _, err := parseSur(bad); err == nil {
			t.Errorf("parseSur(%q) should fail", bad)
		}
	}
}

func TestParseValue(t *testing.T) {
	cases := map[string]string{
		"4":       "4",
		"2+3":     "5",
		`"hagen"`: `"hagen"`,
		"true":    "true",
		"IN":      "IN",
		"1.5":     "1.5",
	}
	for src, want := range cases {
		v, err := parseValue(src)
		if err != nil {
			t.Errorf("parseValue(%q): %v", src, err)
			continue
		}
		if v.String() != want {
			t.Errorf("parseValue(%q) = %s, want %s", src, v, want)
		}
	}
	if _, err := parseValue("count("); err == nil {
		t.Error("bad value expression accepted")
	}
}

func TestHelpMentionsEveryCommand(t *testing.T) {
	for _, cmd := range []string{
		"types", "classes", "class", "new", "sub", "relsub", "set", "get",
		"members", "bind", "unbind", "ack", "relate", "relatein", "del",
		"check", "expand", "pending", "eval", "evalc", "quit",
	} {
		if !strings.Contains(helpText, cmd) {
			t.Errorf("help does not mention %q", cmd)
		}
	}
}
