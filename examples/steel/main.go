// Steel reproduces §5/Figure 5: weight-carrying structures assembled from
// plates and girders by screwings whose bolt and nut live inside the
// relationship and inherit from a shared part catalog.
package main

import (
	"fmt"
	"log"

	"cadcam"
	"cadcam/internal/paperschema"
)

func main() {
	db, err := cadcam.OpenMemory(paperschema.MustSteel())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// ---- the part catalog: shared standard parts ----------------------
	bolt := must(db.NewObject(paperschema.TypeBolt, ""))
	check(db.SetAttr(bolt, "Length", cadcam.Int(40)))
	check(db.SetAttr(bolt, "Diameter", cadcam.Int(8)))
	nut := must(db.NewObject(paperschema.TypeNut, ""))
	check(db.SetAttr(nut, "Length", cadcam.Int(10)))
	check(db.SetAttr(nut, "Diameter", cadcam.Int(8)))

	// ---- interfaces of the girder and plate designs -------------------
	girderIf := must(db.NewObject(paperschema.TypeGirderInterface, ""))
	check(db.SetAttr(girderIf, "Length", cadcam.Int(500)))
	check(db.SetAttr(girderIf, "Height", cadcam.Int(20)))
	check(db.SetAttr(girderIf, "Width", cadcam.Int(10)))
	gBore := must(db.NewSubobject(girderIf, "Bores"))
	check(db.SetAttr(gBore, "Diameter", cadcam.Int(10)))
	check(db.SetAttr(gBore, "Length", cadcam.Int(20)))

	plateIf := must(db.NewObject(paperschema.TypePlateInterface, ""))
	check(db.SetAttr(plateIf, "Thickness", cadcam.Int(10)))
	check(db.SetAttr(plateIf, "Area",
		cadcam.NewRec("Length", cadcam.Int(200), "Width", cadcam.Int(100))))
	pBore := must(db.NewSubobject(plateIf, "Bores"))
	check(db.SetAttr(pBore, "Diameter", cadcam.Int(10)))
	check(db.SetAttr(pBore, "Length", cadcam.Int(10)))

	// ---- the structure with girder/plate components -------------------
	structure := must(db.NewObject(paperschema.TypeStructure, ""))
	check(db.SetAttr(structure, "Designer", cadcam.Str("Pegels")))
	check(db.SetAttr(structure, "Description", cadcam.Str("weight carrying structure")))

	girder := must(db.NewSubobject(structure, "Girders"))
	mustSur(db.Bind(paperschema.RelAllOfGirderIf, girder, girderIf))
	plate := must(db.NewSubobject(structure, "Plates"))
	mustSur(db.Bind(paperschema.RelAllOfPlateIf, plate, plateIf))
	fmt.Printf("structure %v: girder sees Length=%s (inherited), plate Thickness=%s\n",
		structure, attr(db, girder, "Length"), attr(db, plate, "Thickness"))

	// ---- the screwing: a relationship with internal components --------
	gBores := members(db, girder, "Bores")
	pBores := members(db, plate, "Bores")
	screw, err := db.RelateIn(structure, "Screwings", cadcam.Participants{
		"Bores": cadcam.NewSet(cadcam.RefOf(gBores[0]), cadcam.RefOf(pBores[0])),
	})
	check(err)
	check(db.SetAttr(screw, "Strength", cadcam.Int(7)))

	sb := must(db.NewRelSubobject(screw, "Bolt"))
	mustSur(db.Bind(paperschema.RelAllOfBoltType, sb, bolt))
	sn := must(db.NewRelSubobject(screw, "Nut"))
	mustSur(db.Bind(paperschema.RelAllOfNutType, sn, nut))
	fmt.Printf("screwing %v assembled: bolt %s long, nut %s, through bores %s+%s\n",
		screw, attr(db, sb, "Length"), attr(db, sn, "Length"),
		attr(db, gBores[0], "Length"), attr(db, pBores[0], "Length"))

	// The ScrewingType constraints hold: one bolt, one nut, diameters
	// agree, bolt fits the bores, lengths add up (40 = 10 + 20 + 10).
	if v, err := db.CheckConstraints(screw); err != nil || len(v) != 0 {
		log.Fatalf("screwing constraints: %v %v", v, err)
	}
	fmt.Println("the paper's screwing constraints hold")

	// ---- updating a shared part ----------------------------------------
	// Making the bolt thinner than its nut breaks every screwing using it.
	check(db.SetAttr(bolt, "Diameter", cadcam.Int(6)))
	if v, _ := db.CheckConstraints(screw); len(v) == 1 {
		fmt.Println("after thinning the shared bolt, the screwing violates:", v[0].Src)
	}
	check(db.SetAttr(bolt, "Diameter", cadcam.Int(8)))

	// The part is protected against deletion while in use.
	if err := db.Delete(bolt); err != nil {
		fmt.Println("deleting a part in use is restricted:", err)
	}

	// ---- the structure's own where restriction -------------------------
	foreignIf := must(db.NewObject(paperschema.TypeGirderInterface, ""))
	check(db.SetAttr(foreignIf, "Length", cadcam.Int(100)))
	check(db.SetAttr(foreignIf, "Height", cadcam.Int(10)))
	check(db.SetAttr(foreignIf, "Width", cadcam.Int(10)))
	fBore := must(db.NewSubobject(foreignIf, "Bores"))
	check(db.SetAttr(fBore, "Diameter", cadcam.Int(12)))
	if _, err := db.RelateIn(structure, "Screwings", cadcam.Participants{
		"Bores": cadcam.NewSet(cadcam.RefOf(fBore)),
	}); err != nil {
		fmt.Println("screwing a foreign bore rejected:", err)
	}

	if v := db.CheckAll(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	fmt.Println("all constraints hold across the model")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustSur(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func members(db *cadcam.Database, sur cadcam.Surrogate, name string) []cadcam.Surrogate {
	m, err := db.Members(sur, name)
	check(err)
	return m
}

func attr(db *cadcam.Database, sur cadcam.Surrogate, name string) cadcam.Value {
	v, err := db.GetAttr(sur, name)
	check(err)
	return v
}
