// Quickstart: define a schema in the paper's DDL, store a gate interface
// and an implementation, and watch value inheritance at work.
package main

import (
	"fmt"
	"log"

	"cadcam"
	"cadcam/internal/ddl"
)

const schemaText = `
domain IO = (IN, OUT);

obj-type PinType =
   attributes:
      InOut: IO;
      PinId: integer;
end PinType;

obj-type GateInterface =
   attributes:
      Length, Width: integer;
   types-of-subclasses:
      Pins: PinType;
   constraints:
      count (Pins) = 2 where Pins.InOut = IN;
      count (Pins) = 1 where Pins.InOut = OUT;
end GateInterface;

inher-rel-type AllOf_GateInterface =
   transmitter: object-of-type GateInterface;
   inheritor:   object;
   inheriting:  Length, Width, Pins;
end AllOf_GateInterface;

obj-type GateImplementation =
   inheritor-in: AllOf_GateInterface;
   attributes:
      Function: matrix-of boolean;
end GateImplementation;
`

func main() {
	cat, err := ddl.Parse(schemaText)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cadcam.OpenMemory(cat)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The interface: the external image of a NAND gate.
	iface, err := db.NewObject("GateInterface", "")
	check(err)
	check(db.SetAttr(iface, "Length", cadcam.Int(4)))
	check(db.SetAttr(iface, "Width", cadcam.Int(2)))
	for i, dir := range []string{"IN", "IN", "OUT"} {
		pin, err := db.NewSubobject(iface, "Pins")
		check(err)
		check(db.SetAttr(pin, "InOut", cadcam.Sym(dir)))
		check(db.SetAttr(pin, "PinId", cadcam.Int(int64(i+1))))
	}
	if v := db.CheckAll(); len(v) != 0 {
		log.Fatalf("constraint violations: %v", v)
	}
	fmt.Println("interface:", iface, "pins pass the paper's pin-count constraints")

	// The implementation inherits the interface's data — by view, not by
	// copy.
	impl, err := db.NewObject("GateImplementation", "")
	check(err)
	_, err = db.Bind("AllOf_GateInterface", impl, iface)
	check(err)

	length, err := db.GetAttr(impl, "Length")
	check(err)
	pins, err := db.Members(impl, "Pins")
	check(err)
	fmt.Printf("implementation %v inherits Length=%s and %d pins\n", impl, length, len(pins))

	// Inherited data is write-protected in the inheritor...
	if err := db.SetAttr(impl, "Length", cadcam.Int(99)); err != nil {
		fmt.Println("write protection:", err)
	}
	// ...and transmitter updates are instantly visible.
	check(db.SetAttr(iface, "Length", cadcam.Int(8)))
	length, err = db.GetAttr(impl, "Length")
	check(err)
	fmt.Println("after interface update, implementation sees Length =", length)

	// The binding's bookkeeping tells the designer an adaptation may be
	// needed.
	for _, a := range db.PendingAdaptations() {
		fmt.Printf("pending adaptation: inheritor %v must adapt to %v (%d updates)\n",
			a.Inheritor, a.Transmitter, a.Updates)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
