// Versioning demonstrates §6: a design object with a derivation graph and
// an alternative branch, status classification, and the three selection
// policies for generic component relationships — top-down (query),
// bottom-up (default version) and environment-based.
package main

import (
	"fmt"
	"log"

	"cadcam"
	"cadcam/internal/expr"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
)

func main() {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One interface, three implementations (= versions of the design).
	root := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	iface := must(db.NewObject(paperschema.TypeGateInterface, ""))
	mustSur(db.Bind(paperschema.RelAllOfGateInterfaceI, iface, root))
	check(db.SetAttr(iface, "Length", cadcam.Int(4)))

	newImpl := func(timing int64) cadcam.Surrogate {
		impl := must(db.NewObject(paperschema.TypeGateImplementation, ""))
		mustSur(db.Bind(paperschema.RelAllOfGateInterface, impl, iface))
		check(db.SetAttr(impl, "TimeBehavior", cadcam.Int(timing)))
		return impl
	}
	check(db.DefineDesign("NAND", iface))
	v1, v2, v3 := newImpl(12), newImpl(9), newImpl(15)
	mustInfo(db.AddVersion("NAND", v1, nil, ""))
	mustInfo(db.AddVersion("NAND", v2, []cadcam.Surrogate{v1}, ""))
	mustInfo(db.AddVersion("NAND", v3, []cadcam.Surrogate{v1}, "lowpower"))
	check(db.SetStatus(v1, cadcam.StatusReleased))
	check(db.SetStatus(v2, cadcam.StatusStable))
	check(db.SetDefault("NAND", v2))

	fmt.Println("design NAND:")
	infos, _ := db.Versions().Versions("NAND")
	for _, info := range infos {
		branch := info.Alternative
		if branch == "" {
			branch = "main"
		}
		fmt.Printf("  v%d %v on %s, status %s, derived from %v\n",
			info.No, info.Object, branch, info.Status, info.DerivedFrom)
	}
	alts, _ := db.Versions().Alternatives("NAND")
	fmt.Printf("alternatives: main=%d lowpower=%d\n", len(alts[""]), len(alts["lowpower"]))

	// ---- bottom-up: the design supplies its default --------------------
	got, err := db.Resolve(cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectDefault}, nil)
	check(err)
	fmt.Printf("bottom-up selection -> v2 (%v)\n", got)

	// ---- top-down: the composite states what it needs -------------------
	q := expr.MustParse("Status = released and TimeBehavior <= 12")
	got, err = db.Resolve(cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectQuery, Query: q}, nil)
	check(err)
	fmt.Printf("top-down selection (released, fast) -> v1 (%v)\n", got)

	// ---- environment: the project decides -------------------------------
	env := version.NewEnvironment("lowpower-build")
	env.Choose("NAND", v3)
	got, err = db.Resolve(cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectEnvironment}, env)
	check(err)
	fmt.Printf("environment selection -> v3 (%v)\n", got)

	// A generic component reference materializes at assembly time.
	user := must(db.NewObject(paperschema.TypeTimedComposite, ""))
	chosen, _, err := db.BindResolved(paperschema.RelSomeOfGate, user,
		cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectDefault}, nil)
	check(err)
	tb, _ := db.GetAttr(user, "TimeBehavior")
	fmt.Printf("composite %v bound to %v at assembly time; reads TimeBehavior=%s\n",
		user, chosen, tb)

	// Freezing a released version makes it immutable.
	check(db.SetStatus(v1, cadcam.StatusFrozen))
	if err := db.SetAttr(v1, "TimeBehavior", cadcam.Int(1)); err != nil {
		fmt.Println("frozen version is write-protected:", err)
	}

	// Derivation history.
	anc, _ := db.Versions().DerivationAncestors(v2)
	succ, _ := db.Versions().Successors(v1)
	fmt.Printf("v2 derives from %v; v1's successors: %v\n", anc, succ)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustSur(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustInfo(info *cadcam.VersionInfo, err error) *cadcam.VersionInfo {
	check(err)
	return info
}
