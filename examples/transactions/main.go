// Transactions demonstrates §6: lock inheritance in the reverse direction
// of data inheritance, expansion locking with access-control capping on
// shared standard cells, deadlock detection, and long design transactions
// via checkout/checkin workspaces.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"cadcam"
	"cadcam/internal/paperschema"
	"cadcam/internal/txn"
)

func main() {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A composite: standard-cell interface -> implementation -> user.
	root := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	pin := must(db.NewSubobject(root, "Pins"))
	check(db.SetAttr(pin, "InOut", cadcam.Sym("IN")))
	iface := must(db.NewObject(paperschema.TypeGateInterface, ""))
	mustSur(db.Bind(paperschema.RelAllOfGateInterfaceI, iface, root))
	check(db.SetAttr(iface, "Length", cadcam.Int(4)))
	impl := must(db.NewObject(paperschema.TypeGateImplementation, ""))
	mustSur(db.Bind(paperschema.RelAllOfGateInterface, impl, iface))
	user := must(db.NewObject(paperschema.TypeTimedComposite, ""))
	mustSur(db.Bind(paperschema.RelSomeOfGate, user, impl))

	// ---- lock inheritance ------------------------------------------------
	// Reading the composite's inherited Length read-locks the whole
	// resolution chain: user, impl, iface.
	reader := db.Begin("alice")
	if _, err := reader.GetAttr(user, "Length"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice read user.Length; locks held:", fmtLocks(reader.HeldLocks()))

	// bob's write to the *visible* portion of the interface blocks...
	blocked := make(chan error, 1)
	bob := db.Begin("bob")
	go func() { blocked <- bob.SetAttr(iface, "Length", cadcam.Int(9)) }()
	select {
	case <-blocked:
		log.Fatal("bob should have blocked")
	case <-time.After(100 * time.Millisecond):
		fmt.Println("bob's write to the visible interface portion blocks (lock inheritance)")
	}
	// ...while a write to an invisible portion sails through.
	carol := db.Begin("carol")
	if err := carol.SetAttr(impl, "Function", cadcam.NewMatrix(1, 1, cadcam.Bool(true))); err != nil {
		log.Fatal(err)
	}
	check(carol.Commit())
	fmt.Println("carol's write to the invisible Function portion proceeds")

	check(reader.Commit())
	if err := <-blocked; err != nil {
		log.Fatal(err)
	}
	check(bob.Commit())
	fmt.Println("after alice commits, bob's write completes")

	// ---- expansion locking with access control ---------------------------
	// The interface hierarchy is a standard cell: designers may read it
	// but not update it.
	db.Access().Grant("designer", iface, txn.RightRead)
	db.Access().Grant("designer", root, txn.RightRead)
	tx := db.Begin("designer")
	el, err := tx.LockExpansion(user, txn.X)
	check(err)
	fmt.Println("expansion locked for update; portion modes after access capping:")
	for _, p := range el.Portions {
		fmt.Printf("  %v via %s -> %s\n", p.Object, p.Rel, p.Mode)
	}
	check(tx.Commit())

	// ---- deadlock detection ----------------------------------------------
	a := must(db.NewObject(paperschema.TypePin, ""))
	b := must(db.NewObject(paperschema.TypePin, ""))
	t1, t2 := db.Begin(""), db.Begin("")
	check(t1.SetAttr(a, "PinId", cadcam.Int(1)))
	check(t2.SetAttr(b, "PinId", cadcam.Int(2)))
	t1done := make(chan error, 1)
	go func() { t1done <- t1.SetAttr(b, "PinId", cadcam.Int(3)) }()
	time.Sleep(50 * time.Millisecond)
	if err := t2.SetAttr(a, "PinId", cadcam.Int(4)); errors.Is(err, txn.ErrDeadlock) {
		fmt.Println("deadlock detected, victim chosen:", err)
	}
	check(t2.Abort())
	check(<-t1done)
	check(t1.Commit())

	// ---- long design transaction: checkout/checkin ------------------------
	// (alice has full rights on the interface; designer was capped above.)
	ws := db.NewWorkspace("alice")
	check(ws.Checkout(iface))
	check(ws.Set(iface, "Width", cadcam.Int(3)))
	v, _ := ws.Get(iface, "Width")
	live, _ := db.GetAttr(iface, "Width")
	fmt.Printf("workspace sees Width=%s while the database still has %s\n", v, live)
	check(ws.Checkin())
	live, _ = db.GetAttr(iface, "Width")
	fmt.Println("after checkin, the database has Width =", live)

	// A conflicting concurrent change is detected at checkin.
	ws2 := db.NewWorkspace("alice")
	check(ws2.Checkout(iface))
	check(ws2.Set(iface, "Width", cadcam.Int(7)))
	check(db.SetAttr(iface, "Width", cadcam.Int(5))) // someone else
	if err := ws2.Checkin(); errors.Is(err, txn.ErrCheckinConflict) {
		fmt.Println("conflicting checkin rejected:", err)
	}
	ws2.Revert()

	// ---- conflict identification via relationships -------------------------
	pcs := txn.PotentialConflicts(db.Store(),
		[]cadcam.Surrogate{impl}, []cadcam.Surrogate{iface})
	fmt.Printf("potential conflicts between write sets {impl} and {iface}: %d\n", len(pcs))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustSur(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func fmtLocks(m map[cadcam.Surrogate]txn.Mode) string {
	return fmt.Sprintf("%d objects", len(m))
}
