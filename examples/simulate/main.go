// Simulate ties the model together the way §4 motivates: a half-adder
// composite is compiled to a logic circuit whose component behaviours
// (truth table + TimeBehavior) come from the *version manager's*
// selection policies — the same design simulated once with released
// standard gates and once with an experimental low-latency alternative,
// chosen by environment.
package main

import (
	"fmt"
	"log"

	"cadcam"
	"cadcam/internal/paperschema"
	"cadcam/internal/sim"
	"cadcam/internal/version"
)

func main() {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// ---- component designs with two implementation versions each ------
	// Each logic function is a design object: v1 released (slow), v2 an
	// experimental low-latency alternative.
	behaviors := map[string]cadcam.Surrogate{} // design name -> usage iface
	for _, fn := range []string{"XOR", "AND"} {
		iface := makeInterface(db, 2, 1)
		check(db.DefineDesign(fn, iface))
		behaviors[fn] = iface
		for v, delay := range map[string]int64{"released": 6, "fast": 2} {
			impl := must(db.NewObject(paperschema.TypeGateImplementation, ""))
			mustSur(db.Bind(paperschema.RelAllOfGateInterface, impl, iface))
			table, err := sim.Table(fn, 2)
			check(err)
			check(db.SetAttr(impl, "Function", table))
			check(db.SetAttr(impl, "TimeBehavior", cadcam.Int(delay)))
			info, err := db.AddVersion(fn, impl, nil, v)
			check(err)
			if v == "released" {
				check(db.SetStatus(impl, cadcam.StatusReleased))
				check(db.SetDefault(fn, impl))
			}
			_ = info
		}
	}

	// ---- the half-adder composite --------------------------------------
	ha := must(db.NewObject(paperschema.TypeGateImplementation, ""))
	haIface := makeInterface(db, 2, 2)
	mustSur(db.Bind(paperschema.RelAllOfGateInterface, ha, haIface))

	// Two components with their own usage interfaces (distinct pins).
	usage := map[cadcam.Surrogate]string{} // usage iface -> design name
	var gatePins [][]cadcam.Surrogate
	for _, fn := range []string{"XOR", "AND"} {
		u := makeInterface(db, 2, 1)
		sg := must(db.NewSubobject(ha, "SubGates"))
		mustSur(db.Bind(paperschema.RelAllOfGateInterface, sg, u))
		usage[u] = fn
		pins, err := db.Members(sg, "Pins")
		check(err)
		gatePins = append(gatePins, pins)
	}
	ext, err := db.Members(ha, "Pins")
	check(err)
	wire := func(a, b cadcam.Surrogate) {
		_, err := db.RelateIn(ha, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(a), "Pin2": cadcam.RefOf(b),
		})
		check(err)
	}
	wire(ext[0], gatePins[0][0]) // a -> XOR
	wire(ext[0], gatePins[1][0]) // a -> AND
	wire(ext[1], gatePins[0][1]) // b -> XOR
	wire(ext[1], gatePins[1][1]) // b -> AND
	wire(gatePins[0][2], ext[2]) // sum
	wire(gatePins[1][2], ext[3]) // carry

	// ---- resolver = version selection -----------------------------------
	simulate := func(label string, ref func(design string) cadcam.GenericRef, env *cadcam.Environment) {
		resolver := func(iface cadcam.Surrogate) (cadcam.Surrogate, error) {
			design, ok := usage[iface]
			if !ok {
				return 0, fmt.Errorf("unknown usage interface %v", iface)
			}
			return db.Resolve(ref(design), env)
		}
		circuit, err := sim.Compile(db.Store(), ha, resolver)
		check(err)
		fmt.Printf("%s:\n  a b | sum carry (delay)\n", label)
		for _, in := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			res, err := circuit.Eval([]bool{in[0], in[1]})
			check(err)
			fmt.Printf("  %d %d |  %d    %d    (%d)\n",
				b2i(in[0]), b2i(in[1]), b2i(res.Outputs[0]), b2i(res.Outputs[1]), res.Delay)
		}
	}

	// Bottom-up: the released defaults.
	simulate("with released gates (bottom-up selection)", func(d string) cadcam.GenericRef {
		return cadcam.GenericRef{Design: d, Policy: cadcam.SelectDefault}
	}, nil)

	// Environment: the experimental low-latency build.
	env := version.NewEnvironment("fast-build")
	for u, d := range usage {
		_ = u
		vs, _ := db.Versions().Versions(d)
		for _, v := range vs {
			if v.Alternative == "fast" {
				env.Choose(d, v.Object)
			}
		}
	}
	simulate("with experimental fast gates (environment selection)", func(d string) cadcam.GenericRef {
		return cadcam.GenericRef{Design: d, Policy: cadcam.SelectEnvironment}
	}, env)
}

func makeInterface(db *cadcam.Database, nIn, nOut int) cadcam.Surrogate {
	root := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	id := int64(1)
	for i := 0; i < nIn; i++ {
		pin := must(db.NewSubobject(root, "Pins"))
		check(db.SetAttr(pin, "InOut", cadcam.Sym("IN")))
		check(db.SetAttr(pin, "PinId", cadcam.Int(id)))
		id++
	}
	for i := 0; i < nOut; i++ {
		pin := must(db.NewSubobject(root, "Pins"))
		check(db.SetAttr(pin, "InOut", cadcam.Sym("OUT")))
		check(db.SetAttr(pin, "PinId", cadcam.Int(id)))
		id++
	}
	iface := must(db.NewObject(paperschema.TypeGateInterface, ""))
	mustSur(db.Bind(paperschema.RelAllOfGateInterfaceI, iface, root))
	return iface
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustSur(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
