// Chipdesign walks through Figures 1-4 of the paper: an interface
// hierarchy (GateInterface_I -> GateInterface), a flip-flop
// GateImplementation whose SubGates are components bound to a NAND
// interface, wires across nesting levels, tailored permeability
// (SomeOf_Gate), and the adaptation bookkeeping when an interface
// changes under its users.
package main

import (
	"fmt"
	"log"

	"cadcam"
	"cadcam/internal/paperschema"
)

func main() {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// ---- §4.2: the interface hierarchy -------------------------------
	// The hierarchy root holds what all NAND variants share: the pins.
	nandRoot := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	for i, dir := range []string{"IN", "IN", "OUT"} {
		pin := must(db.NewSubobject(nandRoot, "Pins"))
		check(db.SetAttr(pin, "InOut", cadcam.Sym(dir)))
		check(db.SetAttr(pin, "PinId", cadcam.Int(int64(i+1))))
	}
	// An interface version adds the expansion (Length x Width).
	nandIface := must(db.NewObject(paperschema.TypeGateInterface, ""))
	mustB(db.Bind(paperschema.RelAllOfGateInterfaceI, nandIface, nandRoot))
	check(db.SetAttr(nandIface, "Length", cadcam.Int(4)))
	check(db.SetAttr(nandIface, "Width", cadcam.Int(2)))
	fmt.Printf("NAND interface %v inherits %d pins from hierarchy root %v\n",
		nandIface, lenOf(db, nandIface, "Pins"), nandRoot)

	// The flip-flop's own interface: S, R in; Q, notQ out.
	ffRoot := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	for i, dir := range []string{"IN", "IN", "OUT", "OUT"} {
		pin := must(db.NewSubobject(ffRoot, "Pins"))
		check(db.SetAttr(pin, "InOut", cadcam.Sym(dir)))
		check(db.SetAttr(pin, "PinId", cadcam.Int(int64(i+1))))
	}
	ffIface := must(db.NewObject(paperschema.TypeGateInterface, ""))
	mustB(db.Bind(paperschema.RelAllOfGateInterfaceI, ffIface, ffRoot))
	check(db.SetAttr(ffIface, "Length", cadcam.Int(10)))
	check(db.SetAttr(ffIface, "Width", cadcam.Int(6)))

	// ---- Figure 1: the flip-flop as a composite object ---------------
	ff := must(db.NewObject(paperschema.TypeGateImplementation, ""))
	mustB(db.Bind(paperschema.RelAllOfGateInterface, ff, ffIface))
	check(db.SetAttr(ff, "TimeBehavior", cadcam.Int(12)))

	var subGates []cadcam.Surrogate
	for i := 0; i < 2; i++ {
		sg := must(db.NewSubobject(ff, "SubGates"))
		mustB(db.Bind(paperschema.RelAllOfGateInterface, sg, nandIface))
		check(db.SetAttr(sg, "GateLocation",
			cadcam.NewRec("X", cadcam.Int(int64(i*5)), "Y", cadcam.Int(0))))
		subGates = append(subGates, sg)
	}
	fmt.Printf("flip-flop %v: %d external pins (via its interface), 2 NAND components\n",
		ff, lenOf(db, ff, "Pins"))

	// Wires connect external pins to component pins and cross-couple the
	// NANDs — relationships across nesting levels (Figure 1).
	ffPins := members(db, ff, "Pins")
	sg0 := members(db, subGates[0], "Pins")
	sg1 := members(db, subGates[1], "Pins")
	wire := func(a, b cadcam.Surrogate) {
		_, err := db.RelateIn(ff, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(a),
			"Pin2": cadcam.RefOf(b),
		})
		check(err)
	}
	wire(ffPins[0], sg0[0]) // S  -> NAND0.in1
	wire(ffPins[1], sg1[0]) // R  -> NAND1.in1
	wire(sg0[2], ffPins[2]) // NAND0.out -> Q
	wire(sg1[2], ffPins[3]) // NAND1.out -> notQ
	fmt.Printf("wired %d connections; where-restriction admitted them all\n",
		lenOf(db, ff, "Wires"))

	// A wire to a foreign pin is rejected by the where restriction.
	if _, err := db.RelateIn(ff, "Wires", cadcam.Participants{
		"Pin1": cadcam.RefOf(ffPins[0]),
		"Pin2": cadcam.RefOf(nandRootPin(db, nandRoot)),
	}); err == nil {
		log.Fatal("foreign wire should have been rejected")
	} else {
		fmt.Println("foreign wire rejected:", err)
	}

	// ---- Figure 3/4: the component closure ----------------------------
	portions, err := db.VisibleComponents(ff)
	check(err)
	fmt.Printf("component closure of the flip-flop: %d visible portions\n", len(portions))
	for _, p := range portions {
		fmt.Printf("  %v via %s exposes %v\n", p.Object, p.Rel, p.Members)
	}
	exp, err := db.Expand(ff)
	check(err)
	fmt.Printf("expansion tree: %d nodes, leaves: %v\n", exp.Size(), exp.Leaves())

	// ---- §4 end: tailored permeability --------------------------------
	// A timing simulator needs TimeBehavior, which the interface doesn't
	// export; SomeOf_Gate lets it inherit from the implementation.
	sim := must(db.NewObject(paperschema.TypeTimedComposite, ""))
	mustB(db.Bind(paperschema.RelSomeOfGate, sim, ff))
	tb, err := db.GetAttr(sim, "TimeBehavior")
	check(err)
	fmt.Printf("simulator %v sees TimeBehavior=%s through SomeOf_Gate", sim, tb)
	if _, err := db.GetAttr(sim, "Function"); err != nil {
		fmt.Println(" (Function stays hidden)")
	}

	// ---- §2: change notification ---------------------------------------
	check(db.SetAttr(nandIface, "Length", cadcam.Int(5)))
	fmt.Println("after the NAND interface changed:")
	for _, a := range db.PendingAdaptations() {
		fmt.Printf("  inheritor %v should adapt to %v via %s\n", a.Inheritor, a.Transmitter, a.Rel)
	}

	if v := db.CheckAll(); len(v) != 0 {
		log.Fatalf("constraint violations: %v", v)
	}
	fmt.Println("all local integrity constraints hold")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func mustB(sur cadcam.Surrogate, err error) cadcam.Surrogate {
	check(err)
	return sur
}

func members(db *cadcam.Database, sur cadcam.Surrogate, name string) []cadcam.Surrogate {
	m, err := db.Members(sur, name)
	check(err)
	return m
}

func lenOf(db *cadcam.Database, sur cadcam.Surrogate, name string) int {
	return len(members(db, sur, name))
}

func nandRootPin(db *cadcam.Database, root cadcam.Surrogate) cadcam.Surrogate {
	// A pin of an unrelated *hierarchy* object can't be wired into the
	// flip-flop — grab one to demonstrate the rejection. Use a fresh
	// foreign interface so the pin is truly foreign.
	foreign := must(db.NewObject(paperschema.TypeGateInterfaceI, ""))
	pin := must(db.NewSubobject(foreign, "Pins"))
	check(db.SetAttr(pin, "InOut", cadcam.Sym("IN")))
	return pin
}
