package cadcam_test

// Tests for the incremental checkpoint: per-shard segment skipping
// (verified through the Stats counters), segment reuse across restarts,
// sticky failure reporting, and a multi-writer torture loop whose
// reopened state must byte-compare against the model oracle.

import (
	"testing"

	"cadcam"

	"cadcam/internal/crash"
	"cadcam/internal/fault"
	"cadcam/internal/paperschema"
)

// seedPins creates n standalone pins, enough to populate every shard
// (surrogates are assigned sequentially and sharded by modulo).
func seedPins(t testing.TB, db *cadcam.Database, n int) []cadcam.Surrogate {
	t.Helper()
	surs := make([]cadcam.Surrogate, n)
	for i := range surs {
		sur, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		surs[i] = sur
	}
	return surs
}

// TestIncrementalCheckpointStats is the headline acceptance check: a
// store with one dirty shard re-encodes exactly that shard's segment.
func TestIncrementalCheckpointStats(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	shards := db.Store().Shards()
	surs := seedPins(t, db, 2*shards)

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Checkpoint
	if int(st.SegmentsWritten) != shards || st.SegmentsSkipped != 0 {
		t.Fatalf("first checkpoint wrote %d/skipped %d segments, want %d/0",
			st.SegmentsWritten, st.SegmentsSkipped, shards)
	}

	// Touch one object: exactly one shard is dirty relative to the
	// baseline, so the second checkpoint encodes one segment.
	if err := db.SetAttr(surs[0], "PinId", cadcam.Int(42)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2 := db.Stats().Checkpoint
	if w := st2.SegmentsWritten - st.SegmentsWritten; w != 1 {
		t.Errorf("1-dirty-shard checkpoint wrote %d segments, want 1", w)
	}
	if s := st2.SegmentsSkipped - st.SegmentsSkipped; int(s) != shards-1 {
		t.Errorf("1-dirty-shard checkpoint skipped %d segments, want %d", s, shards-1)
	}
	if st2.BytesEncoded >= st.BytesEncoded*2 {
		t.Errorf("incremental checkpoint encoded %d bytes vs %d for the full one",
			st2.BytesEncoded-st.BytesEncoded, st.BytesEncoded)
	}
}

// TestCheckpointSegmentReuseAcrossReopen: recovery restores the
// manifest's segment table, so a reopened, untouched store checkpoints
// without encoding anything — and a reopened store whose journal tail
// touched one shard re-encodes only that shard.
func TestCheckpointSegmentReuseAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	shards := db.Store().Shards()
	surs := seedPins(t, db, 2*shards)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One post-checkpoint write: the journal tail replayed on reopen
	// dirties exactly one shard.
	if err := db.SetAttr(surs[0], "PinId", cadcam.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Stats().Recovery.ReplayOps; got != 1 {
		t.Fatalf("reopen replayed %d ops, want 1", got)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db2.Stats().Checkpoint
	if st.SegmentsWritten != 1 || int(st.SegmentsSkipped) != shards-1 {
		t.Errorf("post-reopen checkpoint wrote %d/skipped %d, want 1/%d",
			st.SegmentsWritten, st.SegmentsSkipped, shards-1)
	}

	// Nothing changed since: the next checkpoint reuses every segment.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2 := db2.Stats().Checkpoint
	if w := st2.SegmentsWritten - st.SegmentsWritten; w != 0 {
		t.Errorf("clean checkpoint wrote %d segments, want 0", w)
	}
	// And the reopened-from-reused-segments state still reads back.
	if v, _ := db2.GetAttr(surs[0], "PinId"); !v.Equal(cadcam.Int(7)) {
		t.Errorf("PinId = %v after reuse checkpoint, want 7", v)
	}
}

// TestCheckpointFailureSticky: a failed checkpoint (injected at the
// manifest swap) is recorded in the stats and surfaced by CheckpointErr
// until a later checkpoint succeeds — never silently swallowed.
func TestCheckpointFailureSticky(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedPins(t, db, 4)

	if err := fault.Arm("db/manifest-swap=error(injected swap failure)@1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded despite injected manifest-swap failure")
	}
	st := db.Stats().Checkpoint
	if st.Failures != 1 || st.LastError == "" {
		t.Errorf("failure not recorded: %+v", st)
	}
	if db.CheckpointErr() == nil {
		t.Error("CheckpointErr not sticky after failed checkpoint")
	}
	// The database stays consistent and durable on the journal chain.
	if _, err := db.NewObject(paperschema.TypePin, ""); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after failure: %v", err)
	}
	if db.CheckpointErr() != nil {
		t.Error("CheckpointErr not cleared by successful checkpoint")
	}
	if st := db.Stats().Checkpoint; st.LastError != "" {
		t.Errorf("LastError not cleared: %+v", st)
	}
}

// TestCheckpointTortureVsOracle hammers checkpoints under concurrent
// writers (writer 0 checkpoints every 10 of its ops), then byte-compares
// the reopened store against the model oracle replayed from the
// checkpoint state plus the journal chain.
func TestCheckpointTortureVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("torture loop; skipped in -short")
	}
	dir := t.TempDir()
	cfg := crash.Config{
		Dir:             dir,
		AckDir:          t.TempDir(),
		Seed:            424242,
		Writers:         8,
		Ops:             400,
		CheckpointEvery: 10,
	}
	if err := crash.RunWorkload(cfg); err != nil {
		t.Fatal(err)
	}
	// Checkpointed ops legitimately leave the journal; the byte-compare
	// against the oracle is the real check.
	if err := crash.Verify(dir, cfg.AckDir, crash.VerifyOptions{AckCheck: false}); err != nil {
		t.Fatal(err)
	}
}
