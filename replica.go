package cadcam

import (
	"errors"
	"time"

	"cadcam/internal/object"
	"cadcam/internal/repl"
	"cadcam/internal/schema"
)

// ---- read replicas ----
//
// A persistent database can ship its journal to any number of read
// replicas: a primary-side shipper tails the sealed group-commit
// batches (the same frames recovery replays, read strictly read-only)
// and streams them to follower stores that serve MVCC snapshot views at
// their applied sequence. Replication is crash-consistent by
// construction — a follower's state is always the primary's serial
// replay truncated at a batch boundary — and every transport fault is
// either retried (with capped exponential backoff) or healed by a
// resync from the primary's newest checkpoint. See internal/repl.

// ErrMaxLag identifies a bounded-staleness rejection from
// SnapshotViewWithin: the replica is further behind than the caller
// allows. The error is explicit — a lagging follower never silently
// serves stale data as fresh.
var ErrMaxLag = repl.ErrMaxLag

// FollowerOptions tunes a read replica.
type FollowerOptions struct {
	// Shards is the replica store's shard count (0: store default).
	Shards int
	// Workers bounds replay/import parallelism (0: GOMAXPROCS).
	Workers int
	// DeletePolicy must match the primary's delete policy; AttachFollower
	// fills it from the primary's options automatically.
	DeletePolicy object.DeletePolicy
	// Backoff shapes the reconnect schedule (zero: 5ms doubling to 1s,
	// retrying forever).
	Backoff repl.BackoffConfig
}

// Follower is a read replica: a store continuously replayed from a
// primary's journal stream, serving consistent snapshot views at its
// applied sequence. It never writes — all mutation methods live only on
// Database.
type Follower struct {
	f *repl.Follower
}

// Shipper returns the database's journal shipper, creating it on first
// use. Only persistent databases can ship. The shipper itself is
// passive; each follower connection runs its own session goroutine.
func (db *Database) Shipper() (*repl.Shipper, error) {
	if db.dir == "" {
		return nil, errors.New("cadcam: in-memory database has no journal to ship")
	}
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.shipper == nil {
		db.shipper = repl.NewShipper(db.dir, repl.ShipperConfig{})
	}
	return db.shipper, nil
}

// AttachFollower starts a read replica fed by this database's shipper
// over an in-process connection. The replica inherits the primary's
// delete policy (and shard count, unless overridden) so replay
// semantics match exactly.
func (db *Database) AttachFollower(opts FollowerOptions) (*Follower, error) {
	s, err := db.Shipper()
	if err != nil {
		return nil, err
	}
	opts.DeletePolicy = db.opts.DeletePolicy
	if opts.Shards == 0 {
		opts.Shards = db.opts.Shards
	}
	return newFollower(db.cat, s.Dialer(), opts)
}

// OpenFollower starts a read replica of the database directory at
// primaryDir without opening the primary itself — the cross-process
// shape, where the primary runs elsewhere and this process only reads.
// The catalog and delete policy must match the primary's.
func OpenFollower(cat *schema.Catalog, primaryDir string, opts FollowerOptions) (*Follower, error) {
	s := repl.NewShipper(primaryDir, repl.ShipperConfig{})
	return newFollower(cat, s.Dialer(), opts)
}

func newFollower(cat *schema.Catalog, dial repl.Dialer, opts FollowerOptions) (*Follower, error) {
	f, err := repl.NewFollower(repl.FollowerConfig{
		Catalog:      cat,
		Dial:         dial,
		Shards:       opts.Shards,
		Workers:      opts.Workers,
		DeletePolicy: opts.DeletePolicy,
		Backoff:      opts.Backoff,
	})
	if err != nil {
		return nil, err
	}
	return &Follower{f: f}, nil
}

// SnapshotView pins a consistent view of the replica at its applied
// sequence, regardless of how far behind the primary it is. Errors only
// when replication is broken (sticky error pending resync or terminal).
func (f *Follower) SnapshotView() (*SnapshotView, error) {
	snap, err := f.f.View()
	if err != nil {
		return nil, err
	}
	return &SnapshotView{snap: snap}, nil
}

// SnapshotViewWithin pins a view only if the replica is at most maxLag
// records behind the shipped stream; otherwise it returns a *LagError
// (errors.Is ErrMaxLag) naming the actual lag.
func (f *Follower) SnapshotViewWithin(maxLag uint64) (*SnapshotView, error) {
	snap, err := f.f.ViewWithin(maxLag)
	if err != nil {
		return nil, err
	}
	return &SnapshotView{snap: snap}, nil
}

// Lag returns how many records the replica is behind the newest state
// the shipper has reported.
func (f *Follower) Lag() uint64 { return f.f.Stats().Lag }

// Stats returns the replica's replication counters.
func (f *Follower) Stats() repl.FollowerStats { return f.f.Stats() }

// Err returns the replica's sticky replication error: nil while
// healthy, a typed *repl.Error while broken (a pending resync clears
// it; an exhausted retry deadline does not).
func (f *Follower) Err() error { return f.f.Err() }

// WaitCaughtUp blocks until the replica has applied everything the
// shipper reports sealed, or the timeout expires.
func (f *Follower) WaitCaughtUp(timeout time.Duration) error { return f.f.WaitCaughtUp(timeout) }

// Repl exposes the underlying replication follower (for tools and the
// crash-matrix oracle).
func (f *Follower) Repl() *repl.Follower { return f.f }

// Close stops the replica's replication loop. Views already pinned
// remain valid until released.
func (f *Follower) Close() error { return f.f.Close() }

// ---- health ----

// HealthStats is the database's single health probe: every sticky error
// state surfaced in one place. OK is true iff all three are empty.
type HealthStats struct {
	OK bool `json:"ok"`
	// WALErr: the group-commit pipeline's sticky error. Fatal —
	// durability is compromised and mutations fail fast.
	WALErr string `json:"wal_err,omitempty"`
	// CheckpointErr: the last checkpoint failure (clears when a later
	// checkpoint succeeds). Degraded — journal compaction is stalled but
	// the database is consistent and durable.
	CheckpointErr string `json:"checkpoint_err,omitempty"`
	// ReplErr: the last session-fatal replication shipping error.
	// Degraded — followers reconnect and resync, but someone should know.
	ReplErr string `json:"repl_err,omitempty"`
}

// ReplErr reports the most recent session-fatal error of the database's
// shipper, nil when replication was never used or every session ended
// cleanly.
func (db *Database) ReplErr() error {
	db.replMu.Lock()
	s := db.shipper
	db.replMu.Unlock()
	if s == nil {
		return nil
	}
	return s.Err()
}

// Health returns the combined sticky error state — WAL, checkpoint and
// replication — as one probe.
func (db *Database) Health() HealthStats {
	h := HealthStats{OK: true}
	if err := db.Err(); err != nil {
		h.OK = false
		h.WALErr = err.Error()
	}
	if err := db.CheckpointErr(); err != nil {
		h.OK = false
		h.CheckpointErr = err.Error()
	}
	if err := db.ReplErr(); err != nil {
		h.OK = false
		h.ReplErr = err.Error()
	}
	return h
}
