package cadcam_test

// Tests for the sharded object store: cross-shard mutation races,
// snapshot consistency under concurrent writers, deterministic journal
// replay, hook reentrancy and per-shard statistics. Run with -race.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"cadcam"

	"cadcam/internal/object"
	"cadcam/internal/paperschema"
	"cadcam/internal/wal"
)

// TestCrossShardBindVsDelete races Bind/Acknowledge/Unbind cycles (which
// take every shard lock) against Delete/NewObject churn and chain reads
// on other shards. Surrogates are dense and sharded by modulo, so the
// workers' objects are spread across all shards.
func TestCrossShardBindVsDelete(t *testing.T) {
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const binders = 4
	type pair struct{ iface, impl cadcam.Surrogate }
	pairs := make([]pair, binders)
	for i := range pairs {
		iface, err := db.NewObject(paperschema.TypeGateInterface, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = pair{iface, impl}
	}

	const rounds = 100
	var wg sync.WaitGroup
	errs := make(chan error, 4*binders)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < binders; w++ {
		p := pairs[w]
		// Binder: bind, read through the fresh chain, acknowledge, unbind.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := db.Bind(paperschema.RelAllOfGateInterface, p.impl, p.iface); err != nil {
					fail(err)
					return
				}
				if v, err := db.GetAttr(p.impl, "Length"); err != nil || cadcam.IsNull(v) {
					fail(err)
					return
				}
				if err := db.Acknowledge(paperschema.RelAllOfGateInterface, p.impl); err != nil {
					fail(err)
					return
				}
				if err := db.Unbind(paperschema.RelAllOfGateInterface, p.impl); err != nil {
					fail(err)
					return
				}
			}
		}()
		// Deleter: create-and-delete churn on its own pins, which lands on
		// rotating shards and triggers the cross-shard delete cascade.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pin, err := db.NewObject(paperschema.TypePin, "")
				if err != nil {
					fail(err)
					return
				}
				if err := db.SetAttr(pin, "PinId", cadcam.Int(int64(r))); err != nil {
					fail(err)
					return
				}
				if err := db.Delete(pin); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("worker error: %v", err)
	}
	if bad := db.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("store inconsistent: %v", bad)
	}
}

// TestConcurrentSetAttrVsExport snapshots the store while eight writers
// mutate their own objects. Every export must be internally consistent:
// encodable, and re-importable into a store that passes invariant checks.
func TestConcurrentSetAttrVsExport(t *testing.T) {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers = 8
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		pins[i] = pin
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		st := db.Store().Export()
		if len(wal.EncodeSnapshot(st, db.Versions().Export())) == 0 {
			t.Error("empty snapshot")
		}
		probe, err := object.NewStoreShards(paperschema.MustGates(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := probe.Import(st); err != nil {
			t.Fatalf("export %d not importable: %v", i, err)
		}
		if bad := probe.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("export %d inconsistent: %v", i, bad)
		}
	}
	close(stop)
	wg.Wait()
}

// TestJournalReplayDeterminism8Writers runs eight concurrent writers
// against a journaled database — attribute updates interleaved with
// Bind/Acknowledge/Unbind cycles so sequence numbers from different
// shards interleave in the journal — then byte-compares the snapshot of
// the live store with the snapshot of a store recovered by replay.
func TestJournalReplayDeterminism8Writers(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 50
	type pair struct{ iface, impl, pin cadcam.Surrogate }
	ws := make([]pair, workers)
	for i := range ws {
		iface, err := db.NewObject(paperschema.TypeGateInterface, "")
		if err != nil {
			t.Fatal(err)
		}
		impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
		if err != nil {
			t.Fatal(err)
		}
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = pair{iface, impl, pin}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := ws[w]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := db.SetAttr(p.pin, "PinId", cadcam.Int(int64(w*rounds+r))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, err := db.Bind(paperschema.RelAllOfGateInterface, p.impl, p.iface); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Transmitter update while bound: bumps the binding's
				// update counter and last-update sequence.
				if err := db.SetAttr(p.iface, "Length", cadcam.Int(int64(r))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := db.Acknowledge(paperschema.RelAllOfGateInterface, p.impl); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Leave the final binding of even workers in place so the
				// exported state also covers live bindings.
				if r+1 < rounds || w%2 == 1 {
					if err := db.Unbind(paperschema.RelAllOfGateInterface, p.impl); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	live := wal.EncodeSnapshot(db.Store().Export(), db.Versions().Export())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different shard count: replay must still reproduce the
	// exact logical state — snapshots are shard-agnostic.
	db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	recovered := wal.EncodeSnapshot(db2.Store().Export(), db2.Versions().Export())
	if !bytes.Equal(live, recovered) {
		t.Fatalf("replay diverged: live snapshot %d bytes, recovered %d bytes", len(live), len(recovered))
	}
	if bad := db2.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("recovered store inconsistent: %v", bad)
	}
}

// TestUpdateHookReentrancy registers an update hook that reads back
// through the database. Hooks dispatch after the mutation's shard locks
// are released, so the re-entrant reads must neither deadlock nor see the
// pre-update value, and events must arrive in sequence order.
func TestUpdateHookReentrancy(t *testing.T) {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	iface, err := db.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seqs []uint64
	var got []cadcam.Value
	db.OnTransmitterUpdate(func(ev object.UpdateEvent) {
		// Re-entrant reads: a single-shard read on the transmitter's shard
		// and an inherited read that walks the chain across shards. Before
		// the hook dispatch moved out of the critical section, either of
		// these deadlocked against the in-flight SetAttr.
		v, err := db.GetAttr(iface, "Length")
		if err != nil {
			t.Errorf("hook GetAttr(transmitter): %v", err)
		}
		if _, err := db.GetAttr(impl, "Length"); err != nil {
			t.Errorf("hook GetAttr(inheritor): %v", err)
		}
		mu.Lock()
		seqs = append(seqs, ev.Seq)
		got = append(got, v)
		mu.Unlock()
	})

	const updates = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < updates; i++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i+1))); err != nil {
				t.Errorf("SetAttr: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: hook dispatch blocked SetAttr")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != updates {
		t.Fatalf("hook fired %d times, want %d", len(seqs), updates)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Errorf("events out of sequence order: %v", seqs)
			break
		}
	}
	// Dispatch runs after the mutation is visible, so every hook must have
	// observed some committed value, never the pre-update null.
	for i, v := range got {
		if cadcam.IsNull(v) {
			t.Fatalf("hook %d read null transmitter value", i)
		}
	}
}

// TestStatsPerShard checks that the per-shard statistics are present,
// cover the configured shard count, and sum to the aggregates.
func TestStatsPerShard(t *testing.T) {
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 10
	iface, _ := db.NewObject(paperschema.TypeGateInterface, "")
	if err := db.SetAttr(iface, "Length", cadcam.Int(7)); err != nil {
		t.Fatal(err)
	}
	impls := make([]cadcam.Surrogate, n)
	for i := range impls {
		impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
			t.Fatal(err)
		}
		impls[i] = impl
	}
	// Generate route-cache traffic: first read misses, later reads hit.
	for round := 0; round < 3; round++ {
		for _, impl := range impls {
			if _, err := db.GetAttr(impl, "Length"); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := db.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("Shards = %d, len(PerShard) = %d, want 4", st.Shards, len(st.PerShard))
	}
	var hits, misses, inval, epoch, routes uint64
	objects := 0
	for i, p := range st.PerShard {
		if p.Shard != i {
			t.Errorf("PerShard[%d].Shard = %d", i, p.Shard)
		}
		hits += p.Hits
		misses += p.Misses
		inval += p.Invalidations
		epoch += p.Epoch
		routes += p.Routes
		objects += p.Objects
	}
	if hits != st.Hits || misses != st.Misses || inval != st.Invalidations ||
		epoch != st.Epoch || routes != st.Routes {
		t.Errorf("per-shard sums (h=%d m=%d i=%d e=%d r=%d) != aggregates (h=%d m=%d i=%d e=%d r=%d)",
			hits, misses, inval, epoch, routes,
			st.Hits, st.Misses, st.Invalidations, st.Epoch, st.Routes)
	}
	// 1 interface + n impls + n bindings.
	if want := 1 + 2*n; objects != want {
		t.Errorf("per-shard object counts sum to %d, want %d", objects, want)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected cache traffic, got hits=%d misses=%d", st.Hits, st.Misses)
	}
}
