package cadcam

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cadcam/internal/object"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
)

func memDB(t *testing.T) *Database {
	t.Helper()
	db, err := OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func diskDB(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := Open(paperschema.MustGates(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// buildGateScene creates the standard rig through the public API and
// returns the surrogates.
func buildGateScene(t *testing.T, db *Database) (rootI, iface, impl Surrogate) {
	t.Helper()
	must := func(sur Surrogate, err error) Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	if err := db.DefineClass("Roots", paperschema.TypeGateInterfaceI); err != nil {
		t.Fatal(err)
	}
	rootI = must(db.NewObject(paperschema.TypeGateInterfaceI, "Roots"))
	for i := 0; i < 3; i++ {
		pin := must(db.NewSubobject(rootI, "Pins"))
		dir := "IN"
		if i == 2 {
			dir = "OUT"
		}
		if err := db.SetAttr(pin, "InOut", Sym(dir)); err != nil {
			t.Fatal(err)
		}
	}
	iface = must(db.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Length", Int(4)); err != nil {
		t.Fatal(err)
	}
	impl = must(db.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(impl, "TimeBehavior", Int(7)); err != nil {
		t.Fatal(err)
	}
	return rootI, iface, impl
}

func TestInMemoryBasics(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	_, iface, impl := buildGateScene(t, db)

	// Inherited read through the facade.
	v, err := db.GetAttr(impl, "Length")
	if err != nil || !v.Equal(Int(4)) {
		t.Errorf("GetAttr = %v, %v", v, err)
	}
	pins, err := db.Members(impl, "Pins")
	if err != nil || len(pins) != 3 {
		t.Errorf("Members = %v, %v", pins, err)
	}
	// Query API.
	q, err := db.Eval(impl, "count(Pins) = 3 and Length = 4")
	if err != nil || !q.Equal(Bool(true)) {
		t.Errorf("Eval = %v, %v", q, err)
	}
	qc, err := db.EvalClass("count(Roots) = 1")
	if err != nil || !qc.Equal(Bool(true)) {
		t.Errorf("EvalClass = %v, %v", qc, err)
	}
	if _, err := db.Eval(impl, "count("); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := db.EvalClass("count("); err == nil {
		t.Error("bad class query should fail")
	}
	// Inheritance utilities.
	if anc := db.Ancestors(impl); len(anc) != 2 || anc[0] != iface {
		t.Errorf("Ancestors = %v", anc)
	}
	if desc := db.Descendants(iface); len(desc) != 1 || desc[0] != impl {
		t.Errorf("Descendants = %v", desc)
	}
	exp, err := db.Expand(impl)
	if err != nil || exp.Size() < 3 {
		t.Errorf("Expand = %v, %v", exp, err)
	}
	if _, err := db.VisibleComponents(impl); err != nil {
		t.Errorf("VisibleComponents: %v", err)
	}
	// Adaptation flow.
	if err := db.SetAttr(iface, "Width", Int(2)); err != nil {
		t.Fatal(err)
	}
	if p := db.PendingAdaptations(); len(p) != 1 {
		t.Errorf("pending = %v", p)
	}
	if err := db.Acknowledge(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if p := db.PendingAdaptations(); len(p) != 0 {
		t.Errorf("pending after ack = %v", p)
	}
	// Binding accessors.
	if b, ok := db.BindingOf(impl, paperschema.RelAllOfGateInterface); !ok || b.Transmitter != iface {
		t.Error("BindingOf failed")
	}
	if tr := db.TransmitterOf(impl, paperschema.RelAllOfGateInterface); tr != iface {
		t.Error("TransmitterOf failed")
	}
	// Constraint checks.
	if v := db.CheckAll(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if _, err := db.CheckConstraints(impl); err != nil {
		t.Errorf("CheckConstraints: %v", err)
	}
	// Unbind and delete.
	if err := db.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(impl); err != nil {
		t.Fatal(err)
	}
	if db.Exists(impl) {
		t.Error("deleted object lingers")
	}
	if tn, _ := db.TypeOf(iface); tn != paperschema.TypeGateInterface {
		t.Errorf("TypeOf = %q", tn)
	}
	if err := db.Err(); err != nil {
		t.Errorf("journal error on in-memory db: %v", err)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	// Experiment E12: everything survives close/reopen via the journal.
	dir := t.TempDir()
	db := diskDB(t, dir)
	rootI, iface, impl := buildGateScene(t, db)
	if err := db.DefineDesign("NAND", iface); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVersion("NAND", impl, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := db.SetDefault("NAND", impl); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStatus(impl, StatusReleased); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := diskDB(t, dir)
	defer db2.Close()
	// Same surrogates, same values, same bindings.
	if v, err := db2.GetAttr(impl, "Length"); err != nil || !v.Equal(Int(4)) {
		t.Errorf("recovered inherited read = %v, %v", v, err)
	}
	pins, _ := db2.Members(rootI, "Pins")
	if len(pins) != 3 {
		t.Errorf("recovered pins = %v", pins)
	}
	members, _ := db2.Class("Roots")
	if len(members) != 1 || members[0] != rootI {
		t.Errorf("recovered class = %v", members)
	}
	// Version state survived.
	got, err := db2.Resolve(GenericRef{Design: "NAND", Policy: SelectDefault}, nil)
	if err != nil || got != impl {
		t.Errorf("recovered default = %v, %v", got, err)
	}
	if info, ok := db2.Versions().InfoOf(impl); !ok || info.Status != StatusReleased {
		t.Error("recovered status wrong")
	}
	// New work continues with non-colliding surrogates.
	fresh, err := db2.NewObject(paperschema.TypePin, "")
	if err != nil {
		t.Fatal(err)
	}
	if fresh <= impl {
		t.Errorf("surrogate reuse: %v <= %v", fresh, impl)
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	rootI, iface, impl := buildGateScene(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint ops land in the new epoch's journal.
	if err := db.SetAttr(iface, "Width", Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one manifest, one segment per shard (first checkpoint
	// encodes everything) and one wal file remain; no legacy snapshots.
	entries, _ := os.ReadDir(dir)
	var snaps, wals, mfs, segs int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".snap":
			snaps++
		case ".log":
			wals++
		case ".mf":
			mfs++
		case ".seg":
			segs++
		}
	}
	if snaps != 0 || wals != 1 || mfs != 1 || segs != db.Store().Shards() {
		t.Errorf("files after checkpoint: %d snaps, %d wals, %d manifests, %d segments",
			snaps, wals, mfs, segs)
	}

	db2 := diskDB(t, dir)
	defer db2.Close()
	if v, _ := db2.GetAttr(impl, "Width"); !v.Equal(Int(9)) {
		t.Errorf("post-checkpoint op lost: %v", v)
	}
	if v, _ := db2.GetAttr(impl, "Length"); !v.Equal(Int(4)) {
		t.Errorf("snapshot state lost: %v", v)
	}
	pins, _ := db2.Members(rootI, "Pins")
	if len(pins) != 3 {
		t.Error("snapshot pins lost")
	}
}

func TestCrashSimulationTornJournal(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, _ := buildGateScene(t, db)
	if err := db.SetAttr(iface, "Width", Int(5)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the journal tail (simulated crash mid-append).
	walPath := filepath.Join(dir, "wal-00000000.log")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	// The torn op (the Width write) is gone; everything before survives.
	if v, _ := db2.GetAttr(iface, "Width"); !v.Equal(NullValue) {
		t.Errorf("torn write should be lost, got %v", v)
	}
	if v, _ := db2.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Errorf("earlier writes must survive, got %v", v)
	}
}

func TestTxnCompensationInJournal(t *testing.T) {
	// An aborted transaction's compensation ops are journaled, so
	// recovery reproduces the post-abort state.
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, _ := buildGateScene(t, db)
	tx := db.Begin("")
	if err := tx.SetAttr(iface, "Length", Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	if v, _ := db2.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Errorf("aborted write leaked into recovery: %v", v)
	}
}

func TestFrozenVersionWriteProtection(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	_, iface, impl := buildGateScene(t, db)
	if err := db.DefineDesign("NAND", iface); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVersion("NAND", impl, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStatus(impl, StatusFrozen); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(impl, "TimeBehavior", Int(1)); !errors.Is(err, ErrFrozenVersion) {
		t.Errorf("frozen write: %v", err)
	}
	if err := db.Delete(impl); !errors.Is(err, ErrFrozenVersion) {
		t.Errorf("frozen delete: %v", err)
	}
	if err := db.Unbind(paperschema.RelAllOfGateInterface, impl); !errors.Is(err, ErrFrozenVersion) {
		t.Errorf("frozen unbind: %v", err)
	}
	// Transactions hit the same guard.
	tx := db.Begin("")
	if err := tx.SetAttr(impl, "TimeBehavior", Int(2)); !errors.Is(err, ErrFrozenVersion) {
		t.Errorf("frozen write in txn: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Other objects stay writable.
	if err := db.SetAttr(iface, "Width", Int(3)); err != nil {
		t.Errorf("unfrozen write: %v", err)
	}
}

func TestVersionOpsDurable(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, impl := buildGateScene(t, db)
	if err := db.DefineDesign("NAND", iface); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVersion("NAND", impl, nil, "lowpower"); err != nil {
		t.Fatal(err)
	}
	// Deleting the version object after registration: recovery must
	// tolerate the journal order (lenient version replay).
	if err := db.Delete(impl); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	if db2.Exists(impl) {
		t.Error("deleted version object recovered")
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(paperschema.MustGates(), Options{Dir: dir, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := db.NewObject(paperschema.TypePin, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// At least one auto-checkpoint happened: a manifest exists.
	entries, _ := os.ReadDir(dir)
	found := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".mf" {
			found = true
		}
	}
	if !found {
		t.Error("no checkpoint manifest after auto-checkpoint threshold")
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	if got := db2.Store().Len(); got != 25 {
		t.Errorf("recovered %d objects, want 25", got)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, _ := buildGateScene(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Width", Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest: recovery falls back to epoch 0... which was
	// garbage-collected by the checkpoint, so the database opens empty
	// rather than with corrupt state. (Full state loss requires both
	// checkpoint AND journal loss; verify the open at least succeeds and
	// is consistent.)
	snapPath := filepath.Join(dir, ManifestFilename(1))
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(paperschema.MustGates(), Options{Dir: dir})
	if err != nil {
		// Replaying the newer journal against the empty fallback state
		// may legitimately fail; either behaviour (error or empty open)
		// is acceptable, silent corruption is not.
		return
	}
	defer db2.Close()
	if db2.Exists(iface) {
		if v, _ := db2.GetAttr(iface, "Width"); !v.Equal(Int(7)) {
			t.Error("recovered inconsistent state from corrupt snapshot")
		}
	}
}

func TestOpenRejectsInvalidCatalog(t *testing.T) {
	cat := paperschema.MustGates()
	if _, err := Open(cat, Options{}); err != nil {
		t.Fatalf("valid catalog rejected: %v", err)
	}
}

func TestDeletePolicyOption(t *testing.T) {
	db, err := Open(paperschema.MustGates(), Options{DeletePolicy: object.DeleteUnbind})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, iface, impl := buildGateScene(t, db)
	if err := db.Delete(iface); err != nil {
		t.Fatalf("unbind policy should allow transmitter delete: %v", err)
	}
	if v, _ := db.GetAttr(impl, "Length"); !v.Equal(NullValue) {
		t.Error("detached inheritor should read null")
	}
}

func TestWorkspaceThroughFacade(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	_, iface, _ := buildGateScene(t, db)
	ws := db.NewWorkspace("designer")
	if err := ws.Checkout(iface); err != nil {
		t.Fatal(err)
	}
	if err := ws.Set(iface, "Length", Int(11)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Checkin(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.GetAttr(iface, "Length"); !v.Equal(Int(11)) {
		t.Errorf("workspace checkin lost: %v", v)
	}
}

func TestGenericReferenceThroughFacade(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	_, iface, impl := buildGateScene(t, db)
	if err := db.DefineDesign("NAND", iface); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVersion("NAND", impl, nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := db.SetDefault("NAND", impl); err != nil {
		t.Fatal(err)
	}
	user, err := db.NewObject(paperschema.TypeTimedComposite, "")
	if err != nil {
		t.Fatal(err)
	}
	chosen, _, err := db.BindResolved(paperschema.RelSomeOfGate, user,
		GenericRef{Design: "NAND", Policy: SelectDefault}, nil)
	if err != nil || chosen != impl {
		t.Fatalf("BindResolved = %v, %v", chosen, err)
	}
	if v, _ := db.GetAttr(user, "TimeBehavior"); !v.Equal(Int(7)) {
		t.Errorf("resolved component read = %v", v)
	}
	// Environment-based selection via the facade.
	env := version.NewEnvironment("sim")
	env.Choose("NAND", impl)
	got, err := db.Resolve(GenericRef{Design: "NAND", Policy: SelectEnvironment}, env)
	if err != nil || got != impl {
		t.Errorf("Resolve(env) = %v, %v", got, err)
	}
}

func TestValueConstructors(t *testing.T) {
	if !Int(3).Equal(Real(3)) {
		t.Error("Int/Real equality")
	}
	r := NewRec("X", Int(1))
	if !r.(interface{ Get(string) Value }).Get("X").Equal(Int(1)) {
		t.Error("NewRec")
	}
	if NewList(Int(1)).Kind().String() != "list-of" {
		t.Error("NewList kind")
	}
	if NewSet(Int(1), Int(1)).(interface{ Len() int }).Len() != 1 {
		t.Error("NewSet dedupe")
	}
	m := NewMatrix(1, 1, Bool(true))
	if m.Kind().String() != "matrix-of" {
		t.Error("NewMatrix kind")
	}
	if RefOf(5) != Ref(5) {
		t.Error("RefOf")
	}
	if Str("a").Equal(Sym("a")) {
		t.Error("Str vs Sym must differ")
	}
}
