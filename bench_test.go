package cadcam_test

// One benchmark per EXPERIMENTS.md experiment, mirroring cmd/cadbench:
//
//	go test -bench=. -benchmem
//
// The BenchmarkEn names match the experiment ids in DESIGN.md §4.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"cadcam"

	"cadcam/internal/bench"
	"cadcam/internal/ddl"
	"cadcam/internal/expr"
	"cadcam/internal/inherit"
	"cadcam/internal/paperschema"
	"cadcam/internal/query"
	"cadcam/internal/sim"
	"cadcam/internal/txn"
	"cadcam/internal/version"
)

func benchDB(b *testing.B) *cadcam.Database {
	b.Helper()
	db, err := bench.Gates()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkE1_FlipFlopConstruction builds the Figure-1 composite.
func BenchmarkE1_FlipFlopConstruction(b *testing.B) {
	for _, nSub := range []int{2, 16} {
		b.Run(fmt.Sprintf("subgates=%d", nSub), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := bench.Gates()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.BuildFlipFlop(db, nSub); err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
	}
}

// BenchmarkE1_ConstraintCheck checks all constraints of a built scene.
func BenchmarkE1_ConstraintCheck(b *testing.B) {
	db := benchDB(b)
	if _, err := bench.BuildFlipFlop(db, 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := db.CheckAll(); len(v) != 0 {
			b.Fatal("violations")
		}
	}
}

// BenchmarkE2_InheritedRead compares a direct attribute read with a
// one-hop inherited read (the price of view semantics).
func BenchmarkE2_InheritedRead(b *testing.B) {
	db := benchDB(b)
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GetAttr(iface, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inherited-1hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GetAttr(impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2_InheritedReadParallel drives inherited reads from many
// goroutines at once: after the first resolution the route is memoized
// and the hit path takes no lock, so throughput should scale with
// readers instead of serializing on the store mutex.
func BenchmarkE2_InheritedReadParallel(b *testing.B) {
	db := benchDB(b)
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		b.Fatal(err)
	}
	// Warm the route cache so the measured loop is all hit path.
	if _, err := db.GetAttr(impl, "Length"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.GetAttr(impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2_TransmitterUpdate measures an interface update fanning out
// to n bound implementations (binding bookkeeping + hooks).
func BenchmarkE2_TransmitterUpdate(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("inheritors=%d", n), func(b *testing.B) {
			db := benchDB(b)
			iface, err := bench.Interface(db, 2, 1, 4, 2)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_HierarchyDepth reads through value-inheritance chains of
// growing depth.
func BenchmarkE3_HierarchyDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cat, err := bench.ChainCatalog(depth)
			if err != nil {
				b.Fatal(err)
			}
			db, err := cadcam.OpenMemory(cat)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			chain, err := bench.BuildChain(db, depth)
			if err != nil {
				b.Fatal(err)
			}
			leaf := chain[len(chain)-1]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.GetAttr(leaf, "X"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4_ComponentClosure computes the visible-component closure of
// a composite.
func BenchmarkE4_ComponentClosure(b *testing.B) {
	for _, nSub := range []int{2, 32} {
		b.Run(fmt.Sprintf("subgates=%d", nSub), func(b *testing.B) {
			db := benchDB(b)
			ff, err := bench.BuildFlipFlop(db, nSub)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.VisibleComponents(ff.Impl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_Permeability reads through the tailored SomeOf_Gate view.
func BenchmarkE5_Permeability(b *testing.B) {
	db := benchDB(b)
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		b.Fatal(err)
	}
	user, err := db.NewObject(paperschema.TypeTimedComposite, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelSomeOfGate, user, ff.Impl); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.GetAttr(user, "TimeBehavior"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_PermeabilityParallel reads the tailored view concurrently;
// like the E2 parallel variant this exercises the lock-free route-hit
// path, here through a SomeOf (partial-permeability) binding.
func BenchmarkE5_PermeabilityParallel(b *testing.B) {
	db := benchDB(b)
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		b.Fatal(err)
	}
	user, err := db.NewObject(paperschema.TypeTimedComposite, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelSomeOfGate, user, ff.Impl); err != nil {
		b.Fatal(err)
	}
	if _, err := db.GetAttr(user, "TimeBehavior"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.GetAttr(user, "TimeBehavior"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6_SteelConstraints checks the ScrewingType constraint family
// over a structure with 100 screwings.
func BenchmarkE6_SteelConstraints(b *testing.B) {
	db, err := bench.Steel()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := bench.BuildStructure(db, 100); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := db.CheckAll(); len(v) != 0 {
			b.Fatal("violations")
		}
	}
}

// BenchmarkE7_CopyVsView compares refreshing a materialized copy with an
// always-current view read.
func BenchmarkE7_CopyVsView(b *testing.B) {
	db := benchDB(b)
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		b.Fatal(err)
	}
	b.Run("copy-import", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inherit.ImportCopy(db.Store(), paperschema.RelAllOfGateInterface, iface); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("copy-staleness-check", func(b *testing.B) {
		ci, err := inherit.ImportCopy(db.Store(), paperschema.RelAllOfGateInterface, iface)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ci.Stale(db.Store()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("view-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GetAttr(impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_Selection resolves generic references under the three §6
// policies over 100 versions.
func BenchmarkE8_Selection(b *testing.B) {
	db := benchDB(b)
	impls, err := bench.VersionSet(db, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bottom-up", func(b *testing.B) {
		ref := cadcam.GenericRef{Design: "D", Policy: cadcam.SelectDefault}
		for i := 0; i < b.N; i++ {
			if _, err := db.Resolve(ref, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("top-down", func(b *testing.B) {
		ref := cadcam.GenericRef{Design: "D", Policy: cadcam.SelectQuery,
			Query: expr.MustParse("Status = released and TimeBehavior <= 12")}
		for i := 0; i < b.N; i++ {
			if _, err := db.Resolve(ref, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("environment", func(b *testing.B) {
		env := version.NewEnvironment("bench")
		env.Choose("D", impls[0])
		ref := cadcam.GenericRef{Design: "D", Policy: cadcam.SelectEnvironment}
		for i := 0; i < b.N; i++ {
			if _, err := db.Resolve(ref, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9_LockInheritance measures a transactional read of inherited
// data (locks the whole resolution chain) against a plain read.
func BenchmarkE9_LockInheritance(b *testing.B) {
	db := benchDB(b)
	ff, err := bench.BuildFlipFlop(db, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GetAttr(ff.Impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("txn-read-chain-locked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx := db.Begin("")
			if _, err := tx.GetAttr(ff.Impl, "Length"); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10_Expansion locks a whole component hierarchy per iteration.
func BenchmarkE10_Expansion(b *testing.B) {
	for _, nSub := range []int{2, 32} {
		b.Run(fmt.Sprintf("subgates=%d", nSub), func(b *testing.B) {
			db := benchDB(b)
			ff, err := bench.BuildFlipFlop(db, nSub)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin("")
				if _, err := tx.LockExpansion(ff.Impl, txn.S); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_DDLParse parses the paper's full schema corpus.
func BenchmarkE11_DDLParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ddl.ParsePaperCorpus(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_Recovery journals 1000 ops, then measures reopen time
// (journal replay) and checkpointed reopen (snapshot load).
func BenchmarkE12_Recovery(b *testing.B) {
	setup := func(b *testing.B, checkpoint bool) string {
		b.Helper()
		dir, err := os.MkdirTemp("", "cadcam-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(dir) })
		db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		iface, err := bench.Interface(db, 2, 1, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	b.Run("journal-replay", func(b *testing.B) {
		dir := setup(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
	})
	b.Run("snapshot-load", func(b *testing.B) {
		dir := setup(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
	})
}

// BenchmarkJournalAppend measures the journaling overhead per mutation
// (fsync disabled, isolating the encoding + append path).
func BenchmarkJournalAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "cadcam-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.SetAttr(iface, "Width", cadcam.Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDurableWrite measures durable (fsync-acknowledged) write
// throughput with the given number of concurrent writers, each mutating
// its own object so writers contend only on the journal, not on data.
func benchDurableWrite(b *testing.B, writers int) {
	dir, err := os.MkdirTemp("", "cadcam-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			b.Fatal(err)
		}
		pins[i] = pin
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	reportWALMetrics(b, db)
}

// BenchmarkDurableWrite1Writers is the single-writer durable latency floor.
func BenchmarkDurableWrite1Writers(b *testing.B) { benchDurableWrite(b, 1) }

// BenchmarkDurableWrite8Writers measures group-commit coalescing at
// moderate concurrency.
func BenchmarkDurableWrite8Writers(b *testing.B) { benchDurableWrite(b, 8) }

// BenchmarkDurableWrite64Writers measures coalescing under heavy fan-in.
func BenchmarkDurableWrite64Writers(b *testing.B) { benchDurableWrite(b, 64) }

// benchConcurrentSetAttr measures in-memory SetAttr throughput with the
// given number of concurrent writers on a store with the given shard
// count, each writer mutating its own object so the contention measured
// is shard-lock contention, not data conflicts.
func benchConcurrentSetAttr(b *testing.B, writers, shards int) {
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			b.Fatal(err)
		}
		pins[i] = pin
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkConcurrentSetAttr1Writers is the uncontended single-writer
// floor on the default shard count.
func BenchmarkConcurrentSetAttr1Writers(b *testing.B) { benchConcurrentSetAttr(b, 1, 0) }

// BenchmarkConcurrentSetAttr8Writers measures moderate multi-writer
// contention on the default shard count.
func BenchmarkConcurrentSetAttr8Writers(b *testing.B) { benchConcurrentSetAttr(b, 8, 0) }

// BenchmarkConcurrentSetAttr64Writers measures heavy fan-in on the
// default shard count.
func BenchmarkConcurrentSetAttr64Writers(b *testing.B) { benchConcurrentSetAttr(b, 64, 0) }

// BenchmarkConcurrentSetAttrShards sweeps the shard count at fixed
// 8-writer concurrency; shards=1 approximates the pre-shard store with
// one global lock.
func BenchmarkConcurrentSetAttrShards(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchConcurrentSetAttr(b, 8, shards)
		})
	}
}

// BenchmarkE13_Simulate compiles and fully evaluates a half-adder circuit
// per iteration (the E13 extension workload).
func BenchmarkE13_Simulate(b *testing.B) {
	db := benchDB(b)
	// One behavior implementation per component, each on its own usage
	// interface so pins stay distinct.
	mk := func(fn string, delay int64) (usage cadcam.Surrogate) {
		var err error
		usage, err = bench.Interface(db, 2, 1, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, usage); err != nil {
			b.Fatal(err)
		}
		table, err := sim.Table(fn, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.SetAttr(impl, "Function", table); err != nil {
			b.Fatal(err)
		}
		if err := db.SetAttr(impl, "TimeBehavior", cadcam.Int(delay)); err != nil {
			b.Fatal(err)
		}
		return usage
	}
	xorU, andU := mk("XOR", 4), mk("AND", 2)
	haIface, err := bench.Interface(db, 2, 2, 10, 6)
	if err != nil {
		b.Fatal(err)
	}
	ha, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, ha, haIface); err != nil {
		b.Fatal(err)
	}
	var gatePins [][]cadcam.Surrogate
	for _, u := range []cadcam.Surrogate{xorU, andU} {
		sg, err := db.NewSubobject(ha, "SubGates")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Bind(paperschema.RelAllOfGateInterface, sg, u); err != nil {
			b.Fatal(err)
		}
		pins, err := db.Members(sg, "Pins")
		if err != nil {
			b.Fatal(err)
		}
		gatePins = append(gatePins, pins)
	}
	ext, err := db.Members(ha, "Pins")
	if err != nil {
		b.Fatal(err)
	}
	for _, pair := range [][2]cadcam.Surrogate{
		{ext[0], gatePins[0][0]}, {ext[0], gatePins[1][0]},
		{ext[1], gatePins[0][1]}, {ext[1], gatePins[1][1]},
		{gatePins[0][2], ext[2]}, {gatePins[1][2], ext[3]},
	} {
		if _, err := db.RelateIn(ha, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(pair[0]), "Pin2": cadcam.RefOf(pair[1]),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		circuit, err := sim.Compile(db.Store(), ha, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := circuit.TruthTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// reportWALMetrics attaches journal-pipeline counters to a benchmark.
// (No-op before the group-commit pipeline existed; see git history.)
func reportWALMetrics(b *testing.B, db *cadcam.Database) {
	b.Helper()
	reportWALStats(b, db)
}

// envObjects sizes the recovery benchmarks (CADCAM_RECOVERY_OBJECTS
// overrides; EXPERIMENTS.md E15 runs 1_000_000).
func envObjects(def int) int {
	if s := os.Getenv("CADCAM_RECOVERY_OBJECTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// buildRecoveryDir populates a database directory with n attributed pins
// spread over every shard, checkpoints it, and optionally appends a
// journal tail of extra attribute writes (tail ops replay on open).
func buildRecoveryDir(b *testing.B, n, tail int) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "cadcam-recovery-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	surs := make([]cadcam.Surrogate, n)
	for i := 0; i < n; i++ {
		sur, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			b.Fatal(err)
		}
		if err := db.SetAttr(sur, "PinId", cadcam.Int(int64(i%64))); err != nil {
			b.Fatal(err)
		}
		surs[i] = sur
	}
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tail; i++ {
		if err := db.SetAttr(surs[i%n], "PinId", cadcam.Int(int64(i%64))); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// reopen times one full recovery of dir with the given worker count and
// reports the recovery counters of the last open.
func reopen(b *testing.B, dir string, workers int) {
	b.Helper()
	var rec cadcam.RecoveryStats
	for i := 0; i < b.N; i++ {
		db, err := cadcam.Open(paperschema.MustGates(),
			cadcam.Options{Dir: dir, SyncEvery: -1, RecoveryWorkers: workers})
		if err != nil {
			b.Fatal(err)
		}
		rec = db.Stats().Recovery
		db.Close()
	}
	b.ReportMetric(float64(rec.DecodeNs)/1e6, "decode-ms")
	b.ReportMetric(float64(rec.ReplayNs)/1e6, "replay-ms")
	b.ReportMetric(float64(rec.ReplayOps), "replay-ops")
}

// BenchmarkRecoveryCold reopens a fully checkpointed store (empty
// journal): the cost is segment decode plus parallel import, so the
// worker sweep isolates the sharded-recovery speedup.
func BenchmarkRecoveryCold(b *testing.B) {
	dir := buildRecoveryDir(b, envObjects(100_000), 0)
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			reopen(b, dir, w)
		})
	}
}

// BenchmarkRecoveryIncremental reopens a checkpointed store with a
// journal tail of 10% extra attribute writes, exercising segment decode
// plus the shard-partitioned parallel tail replay.
func BenchmarkRecoveryIncremental(b *testing.B) {
	n := envObjects(100_000)
	dir := buildRecoveryDir(b, n, n/10)
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			reopen(b, dir, w)
		})
	}
}

// mvccBenchDB builds the writers-during-scan fixture: a flip-flop scene
// for the scanner to walk plus one private pin object per writer.
func mvccBenchDB(b *testing.B, writers int) (*cadcam.Database, []cadcam.Surrogate) {
	b.Helper()
	db := benchDB(b)
	if _, err := bench.BuildFlipFlop(db, 8); err != nil {
		b.Fatal(err)
	}
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		var err error
		if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
			b.Fatal(err)
		}
	}
	return db, pins
}

// mvccWriters runs b.N SetAttr operations split over the pin objects'
// writers and reports ns/op.
func mvccWriters(b *testing.B, db *cadcam.Database, pins []cadcam.Surrogate) {
	per := b.N/len(pins) + 1
	var wg sync.WaitGroup
	for w := range pins {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkMVCC_SnapshotRead compares an inherited read on the live
// store (memoized route, lock-free hit path) with the same read through
// a pinned snapshot (version-chain traversal at the pin sequence).
func BenchmarkMVCC_SnapshotRead(b *testing.B) {
	db := benchDB(b)
	iface, err := bench.Interface(db, 2, 1, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		b.Fatal(err)
	}
	if _, err := db.GetAttr(impl, "Length"); err != nil {
		b.Fatal(err)
	}
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GetAttr(impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		v := db.SnapshotView()
		defer v.Release()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.GetAttr(impl, "Length"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWritersDuringScan measures 8-writer SetAttr latency with
// no readers (baseline) and with one continuous full-store closure scan
// pinning snapshots in a loop (with-scan). The MVCC design goal is the
// two sub-benchmarks staying within ~15% of each other: long scans never
// take the locks writers contend on.
func BenchmarkWritersDuringScan(b *testing.B) {
	const writers = 8
	b.Run("baseline", func(b *testing.B) {
		db, pins := mvccBenchDB(b, writers)
		b.ResetTimer()
		mvccWriters(b, db, pins)
	})
	b.Run("with-scan", func(b *testing.B) {
		db, pins := mvccBenchDB(b, writers)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := db.SnapshotView()
				for _, sur := range v.Surrogates() {
					if _, err := v.VisibleComponents(sur); err != nil {
						b.Error(err)
						v.Release()
						return
					}
				}
				v.Release()
			}
		}()
		b.ResetTimer()
		mvccWriters(b, db, pins)
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// ---- E17: indexed queries ----

// envQueryObjects sizes the query benchmarks (CADCAM_QUERY_OBJECTS
// overrides; EXPERIMENTS.md E17 runs 1_000_000).
func envQueryObjects(def int) int {
	if s := os.Getenv("CADCAM_QUERY_OBJECTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// buildQueryDB fills a "gates" class with n SimpleGates, Width = i %
// 1000 (a point predicate matches 0.1% of the extent), and indexes
// Width.
func buildQueryDB(tb testing.TB, n int) *cadcam.Database {
	tb.Helper()
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	if err := db.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g, err := db.NewObject(paperschema.TypeSimpleGate, "gates")
		if err != nil {
			tb.Fatal(err)
		}
		if err := db.SetAttr(g, "Width", cadcam.Int(int64(i%1000))); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.CreateIndex("gates_w", "gates", "Width"); err != nil {
		tb.Fatal(err)
	}
	return db
}

// BenchmarkE17_QueryIndexed times the selective indexed query; compare
// against BenchmarkE17_QueryFullScan at the same CADCAM_QUERY_OBJECTS.
func BenchmarkE17_QueryIndexed(b *testing.B) {
	db := buildQueryDB(b, envQueryObjects(100_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("gates", "Width = 7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17_QueryFullScan is the naive interpreted full scan over the
// same extent and predicate (the planner's differential oracle).
func BenchmarkE17_QueryFullScan(b *testing.B) {
	db := buildQueryDB(b, envQueryObjects(100_000))
	where, err := expr.Parse("Width = 7")
	if err != nil {
		b.Fatal(err)
	}
	src := query.ForStore(db.Store())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Naive(src, "gates", where); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentSetAttrIndexesPresent8Writers is the satellite
// guard for the index write hook: 8 writers on unindexed attributes of
// plain objects while a populated index exists in the store. Compare
// against BenchmarkConcurrentSetAttr8Writers — the numbers must match,
// because the hook on this path is one atomic load and a nil check.
func BenchmarkConcurrentSetAttrIndexesPresent8Writers(b *testing.B) {
	db := buildQueryDB(b, 10_000)
	const writers = 8
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			b.Fatal(err)
		}
		pins[i] = pin
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// TestQueryIndexSpeedupLarge is the E17 acceptance check at scale: with
// CADCAM_QUERY_OBJECTS set (CI uses 1_000_000), the selective indexed
// query must be at least 10x faster than the naive full scan. Skipped
// without the env var — building the fixture is too heavy for the
// ordinary suite.
func TestQueryIndexSpeedupLarge(t *testing.T) {
	n := envQueryObjects(0)
	if n == 0 {
		t.Skip("set CADCAM_QUERY_OBJECTS to run (CI uses 1000000)")
	}
	db := buildQueryDB(t, n)
	where, err := expr.Parse("Width = 7")
	if err != nil {
		t.Fatal(err)
	}
	src := query.ForStore(db.Store())

	timeOne := func(rounds int, op func() error) float64 {
		best := 0.0
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			if err := op(); err != nil {
				t.Fatal(err)
			}
			if v := float64(time.Since(t0).Nanoseconds()); best == 0 || v < best {
				best = v
			}
		}
		return best
	}
	scanNs := timeOne(3, func() error {
		_, err := query.Naive(src, "gates", where)
		return err
	})
	indexNs := timeOne(20, func() error {
		_, err := db.Query("gates", "Width = 7")
		return err
	})
	speedup := scanNs / indexNs
	t.Logf("objects=%d scan=%.2fms index=%.2fms speedup=%.1fx",
		n, scanNs/1e6, indexNs/1e6, speedup)
	if speedup < 10 {
		t.Errorf("index speedup = %.1fx, want >= 10x", speedup)
	}
	// Both paths agree on the answer, element for element.
	fast, err := db.Query("gates", "Width = 7")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := query.Naive(src, "gates", where)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("planner %d matches, oracle %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, fast[i], slow[i])
		}
	}
}
