module cadcam

go 1.22
