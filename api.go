package cadcam

import (
	"strings"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/inherit"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/query"
	"cadcam/internal/repl"
	"cadcam/internal/schema"
	"cadcam/internal/storage"
	"cadcam/internal/txn"
	"cadcam/internal/version"
)

// Re-exported core types, so applications program against package cadcam
// alone.
type (
	// Surrogate is the system-wide object identifier.
	Surrogate = domain.Surrogate
	// Value is an attribute value.
	Value = domain.Value
	// Ref references an object by surrogate.
	Ref = domain.Ref
	// Participants assigns relationship roles.
	Participants = object.Participants
	// Binding is an inheritance relationship instance.
	Binding = object.Binding
	// UpdateEvent reports a permeable transmitter change.
	UpdateEvent = object.UpdateEvent
	// ConstraintViolation reports a failed integrity constraint.
	ConstraintViolation = object.ConstraintViolation
	// Txn is a strict two-phase transaction.
	Txn = txn.Txn
	// Workspace is a long-transaction private workspace.
	Workspace = txn.Workspace
	// GenericRef is a version-unresolved component reference.
	GenericRef = version.GenericRef
	// Environment guides environment-based version selection.
	Environment = version.Environment
	// VersionInfo describes a registered version.
	VersionInfo = version.Info
	// Expansion is a materialized component tree.
	Expansion = inherit.Expansion
	// Portion is the visible part of a component.
	Portion = inherit.Portion
	// Adaptation is a pending inheritor adaptation.
	Adaptation = inherit.Adaptation
	// IndexDef describes a secondary attribute index.
	IndexDef = object.IndexDef
	// QueryPlan is a costed access path chosen by the query planner.
	QueryPlan = query.Plan
)

// Value constructors, re-exported from the domain layer.
var (
	// NullValue is the distinguished absent value.
	NullValue = domain.NullValue
)

// Int builds an integer value.
func Int(v int64) Value { return domain.Int(v) }

// Real builds a real value.
func Real(v float64) Value { return domain.Rl(v) }

// Str builds a string value.
func Str(v string) Value { return domain.Str(v) }

// Bool builds a boolean value.
func Bool(v bool) Value { return domain.Bool(v) }

// Sym builds an enumeration symbol.
func Sym(v string) Value { return domain.Sym(v) }

// IsNull reports whether v is nil or the null value.
func IsNull(v Value) bool { return domain.IsNull(v) }

// NewRec builds a record value from name/value pairs.
func NewRec(pairs ...any) Value { return domain.NewRec(pairs...) }

// NewList builds a list value.
func NewList(elems ...Value) Value { return domain.NewList(elems...) }

// NewSet builds a set value.
func NewSet(elems ...Value) Value { return domain.NewSet(elems...) }

// NewMatrix builds a rows×cols matrix value from row-major cells.
func NewMatrix(rows, cols int, cells ...Value) Value {
	return domain.NewMatrix(rows, cols, cells...)
}

// RefOf builds an object reference value.
func RefOf(sur Surrogate) Value { return domain.Ref(sur) }

// Version statuses and selection policies, re-exported.
const (
	StatusInWork   = version.StatusInWork
	StatusStable   = version.StatusStable
	StatusReleased = version.StatusReleased
	StatusFrozen   = version.StatusFrozen

	SelectDefault     = version.SelectDefault
	SelectQuery       = version.SelectQuery
	SelectEnvironment = version.SelectEnvironment
)

// Delete policies, re-exported.
const (
	DeleteRestrict = object.DeleteRestrict
	DeleteUnbind   = object.DeleteUnbind
)

// ---- component accessors ----

// Catalog returns the schema catalog.
func (db *Database) Catalog() *schema.Catalog { return db.cat }

// Store returns the object store. Mutations through it are journaled like
// facade mutations.
func (db *Database) Store() *object.Store { return db.store }

// Versions returns the version manager for read access; use the Database
// methods for durable version mutations.
func (db *Database) Versions() *version.Manager { return db.versions }

// Txns returns the transaction manager.
func (db *Database) Txns() *txn.Manager { return db.txns }

// Access returns the access-control manager.
func (db *Database) Access() *txn.AccessControl { return db.txns.Access() }

// Begin starts a strict two-phase transaction for a user ("" = anonymous
// full-rights user).
func (db *Database) Begin(user string) *Txn { return db.txns.Begin(user) }

// NewWorkspace opens a private design workspace (long transaction).
func (db *Database) NewWorkspace(user string) *Workspace { return db.txns.NewWorkspace(user) }

// ---- object operations (journaled via the store) ----
//
// Every mutating method follows the same protocol: fail fast if the
// journal pipeline is poisoned (durability is already lost — see Err),
// mutate the store (which enqueues the journal record under its own
// lock, fixing the replay order), then wait outside all locks for the
// group-commit batch carrying the record to reach disk.

// DefineClass creates a database-level class.
func (db *Database) DefineClass(name, elemType string) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.DefineClass(name, elemType))
}

// NewObject creates a top-level object, optionally in a class.
func (db *Database) NewObject(typeName, className string) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.NewObject(typeName, className)
	return sur, db.afterWrite(err)
}

// NewSubobject creates a subobject in a local subclass.
func (db *Database) NewSubobject(parent Surrogate, subclass string) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.NewSubobject(parent, subclass)
	return sur, db.afterWrite(err)
}

// NewRelSubobject creates a subobject of a relationship object.
func (db *Database) NewRelSubobject(rel Surrogate, subclass string) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.NewRelSubobject(rel, subclass)
	return sur, db.afterWrite(err)
}

// SetAttr writes an attribute (write-protected if inherited or frozen).
func (db *Database) SetAttr(sur Surrogate, name string, v Value) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.SetAttr(sur, name, v))
}

// GetAttr reads an attribute with view-semantics inheritance resolution.
func (db *Database) GetAttr(sur Surrogate, name string) (Value, error) {
	return db.store.GetAttr(sur, name)
}

// Members lists a local subclass (following inheritance).
func (db *Database) Members(sur Surrogate, name string) ([]Surrogate, error) {
	return db.store.Members(sur, name)
}

// Relate creates a top-level relationship object.
func (db *Database) Relate(relType string, parts Participants) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.Relate(relType, parts)
	return sur, db.afterWrite(err)
}

// RelateIn creates a relationship in a local relationship subclass,
// checking its where restriction.
func (db *Database) RelateIn(owner Surrogate, subrel string, parts Participants) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.RelateIn(owner, subrel, parts)
	return sur, db.afterWrite(err)
}

// Participant reads a relationship role.
func (db *Database) Participant(rel Surrogate, role string) (Value, error) {
	return db.store.Participant(rel, role)
}

// Bind makes inheritor inherit (values of) the transmitter's permeable
// members under the named inheritance relationship type.
func (db *Database) Bind(relType string, inheritor, transmitter Surrogate) (Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, err
	}
	sur, err := db.store.Bind(relType, inheritor, transmitter)
	return sur, db.afterWrite(err)
}

// Unbind removes the inheritor's binding (type-level inheritance stays).
func (db *Database) Unbind(relType string, inheritor Surrogate) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.Unbind(relType, inheritor))
}

// Acknowledge marks the inheritor as adapted to the latest transmitter
// change.
func (db *Database) Acknowledge(relType string, inheritor Surrogate) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.Acknowledge(relType, inheritor))
}

// Delete removes an object with full cascade semantics.
func (db *Database) Delete(sur Surrogate) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.Delete(sur))
}

// Exists reports whether a surrogate is live.
func (db *Database) Exists(sur Surrogate) bool { return db.store.Exists(sur) }

// TypeOf returns an object's type name.
func (db *Database) TypeOf(sur Surrogate) (string, error) { return db.store.TypeOf(sur) }

// Class lists a database-level class extent.
func (db *Database) Class(name string) ([]Surrogate, error) { return db.store.Class(name) }

// CheckConstraints evaluates one object's local integrity constraints.
func (db *Database) CheckConstraints(sur Surrogate) ([]ConstraintViolation, error) {
	return db.store.CheckConstraints(sur)
}

// CheckAll evaluates every object's constraints.
func (db *Database) CheckAll() []ConstraintViolation { return db.store.CheckAll() }

// OnTransmitterUpdate registers an update hook (the paper's trigger
// mechanism hook).
func (db *Database) OnTransmitterUpdate(h object.UpdateHook) {
	db.store.OnTransmitterUpdate(h)
}

// BindingOf returns the inheritor's binding under a relationship type.
func (db *Database) BindingOf(inheritor Surrogate, relType string) (*Binding, bool) {
	return db.store.BindingOf(inheritor, relType)
}

// TransmitterOf resolves an inheritor's transmitter, or 0.
func (db *Database) TransmitterOf(inheritor Surrogate, relType string) Surrogate {
	return db.store.TransmitterOf(inheritor, relType)
}

// StoreStats reports the store's resolution-cache counters and structure
// epoch.
type StoreStats = object.StoreStats

// WALStats reports the group-commit journal pipeline's counters: batch
// size histogram, fsyncs, queued records and durability stall time. All
// zero for an in-memory database.
type WALStats = storage.GroupStats

// ReplStats reports the journal shipper's replication counters.
type ReplStats = repl.ShipperStats

// DBStats combines the store's resolution-cache counters with the WAL
// pipeline counters, the checkpoint/recovery counters, the replication
// shipper's counters, and the combined sticky-error health probe.
type DBStats struct {
	StoreStats
	WAL WALStats `json:"wal"`
	// Checkpoint counts incremental-checkpoint work since Open; Recovery
	// describes what the last Open replayed. Both zero in-memory.
	Checkpoint CheckpointStats `json:"checkpoint"`
	Recovery   RecoveryStats   `json:"recovery"`
	// Repl is nil until the database ships its journal to a follower.
	Repl *ReplStats `json:"repl,omitempty"`
	// Health folds every sticky error state — WAL pipeline, checkpoint,
	// replication — into one probe, so callers need not know which
	// subsystem to ask.
	Health HealthStats `json:"health"`
}

// Stats returns resolution-cache hit/miss/invalidation counters, the
// current structure epoch, the WAL group-commit counters, the
// checkpoint/recovery counters, replication counters (when shipping),
// and the sticky-error health probe.
func (db *Database) Stats() DBStats {
	st := DBStats{StoreStats: db.store.Stats()}
	if db.committer != nil {
		st.WAL = db.committer.Stats()
	}
	db.statMu.Lock()
	st.Checkpoint = db.ckptStats
	st.Recovery = db.recStats
	db.statMu.Unlock()
	db.replMu.Lock()
	if db.shipper != nil {
		rs := db.shipper.Stats()
		st.Repl = &rs
	}
	db.replMu.Unlock()
	st.Health = db.Health()
	return st
}

// ---- inheritance utilities ----

// Ancestors lists the abstraction hierarchy above an object.
func (db *Database) Ancestors(sur Surrogate) []Surrogate {
	return inherit.Ancestors(db.store, sur)
}

// Descendants lists every object inheriting (transitively) from sur.
func (db *Database) Descendants(sur Surrogate) []Surrogate {
	return inherit.Descendants(db.store, sur)
}

// PendingAdaptations reports bindings whose inheritors have not adapted
// to transmitter changes.
func (db *Database) PendingAdaptations() []Adaptation {
	return inherit.PendingAdaptations(db.store)
}

// Expand materializes the component tree of a composite object.
func (db *Database) Expand(root Surrogate) (*Expansion, error) {
	return inherit.Expand(db.store, root)
}

// VisibleComponents computes the component closure (the portions lock
// inheritance protects).
func (db *Database) VisibleComponents(root Surrogate) ([]Portion, error) {
	return inherit.VisibleComponents(db.store, root)
}

// ---- snapshot reads ----

// SnapshotView is a pinned, read-only view of the database at one
// sequence point. Every method resolves against MVCC version chains,
// lock-free and without ever blocking writers: a long scan over a view
// observes the exact state at its pin while mutations proceed at full
// speed. Views are refcount-pinned — call Release when done so the
// version sweeper can reclaim the chain nodes retained for the pin.
type SnapshotView struct {
	snap *object.Snapshot
}

// SnapshotView pins the current sequence point and returns a consistent
// view of it. The pin itself briefly takes the store's shard read locks
// (the same order writers use), so it lands between operations.
func (db *Database) SnapshotView() *SnapshotView {
	return &SnapshotView{snap: db.store.Snapshot()}
}

// Seq returns the pinned sequence point.
func (v *SnapshotView) Seq() uint64 { return v.snap.Seq() }

// Release unpins the view. The view must not be used afterwards.
func (v *SnapshotView) Release() { v.snap.Release() }

// Snapshot exposes the underlying store snapshot (for store-level APIs).
func (v *SnapshotView) Snapshot() *object.Snapshot { return v.snap }

// Exists reports whether the surrogate was live at the pin.
func (v *SnapshotView) Exists(sur Surrogate) bool { return v.snap.Exists(sur) }

// TypeOf returns the type name of an object visible at the pin.
func (v *SnapshotView) TypeOf(sur Surrogate) (string, error) { return v.snap.TypeOf(sur) }

// GetAttr reads an attribute at the pin with full view-semantics
// inheritance resolution.
func (v *SnapshotView) GetAttr(sur Surrogate, name string) (Value, error) {
	return v.snap.GetAttr(sur, name)
}

// Members lists a local subclass at the pin (following inheritance).
func (v *SnapshotView) Members(sur Surrogate, name string) ([]Surrogate, error) {
	return v.snap.Members(sur, name)
}

// Class lists a database-level class extent at the pin.
func (v *SnapshotView) Class(name string) ([]Surrogate, error) { return v.snap.Class(name) }

// ClassNames lists the database-level classes that existed at the pin.
func (v *SnapshotView) ClassNames() []string { return v.snap.ClassNames() }

// Surrogates lists every object visible at the pin, ascending.
func (v *SnapshotView) Surrogates() []Surrogate { return v.snap.Surrogates() }

// Ancestors lists the abstraction hierarchy above an object at the pin.
func (v *SnapshotView) Ancestors(sur Surrogate) []Surrogate {
	return inherit.Ancestors(v.snap, sur)
}

// Descendants lists every object inheriting from sur at the pin.
func (v *SnapshotView) Descendants(sur Surrogate) []Surrogate {
	return inherit.Descendants(v.snap, sur)
}

// PendingAdaptations reports the adaptations pending at the pin.
func (v *SnapshotView) PendingAdaptations() []Adaptation {
	return inherit.PendingAdaptations(v.snap)
}

// Expand materializes the component tree of a composite at the pin.
func (v *SnapshotView) Expand(root Surrogate) (*Expansion, error) {
	return inherit.Expand(v.snap, root)
}

// VisibleComponents computes the component closure at the pin.
func (v *SnapshotView) VisibleComponents(root Surrogate) ([]Portion, error) {
	return inherit.VisibleComponents(v.snap, root)
}

// ---- queries ----

// Eval evaluates a constraint-language expression against one object,
// e.g. db.Eval(gate, "count(Pins) = 3").
func (db *Database) Eval(sur Surrogate, src string) (Value, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.EvalValue(e, db.store.Env(sur))
}

// EvalClass evaluates an expression over the database-level classes,
// e.g. db.EvalClass("count(Gates) where Gates.Length > 4").
func (db *Database) EvalClass(src string) (Value, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.EvalValue(e, db.store.ClassEnv())
}

// ---- indexed queries ----

// CreateIndex builds a secondary index over one attribute of a class's
// members, maintained through every mutation path (attribute writes,
// inherited-value updates, bind/unbind, class churn, cascade deletes).
// The definition is journaled; the entries are rebuilt on recovery.
func (db *Database) CreateIndex(name, className, attrName string) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.CreateIndex(name, className, attrName))
}

// DropIndex removes a secondary index. Snapshot views pinned before the
// drop can still plan over it.
func (db *Database) DropIndex(name string) error {
	if err := db.Err(); err != nil {
		return err
	}
	return db.afterWrite(db.store.DropIndex(name))
}

// Indexes lists the live secondary-index definitions, sorted by name.
func (db *Database) Indexes() []IndexDef { return db.store.Indexes() }

// Query returns the members of a database-level class satisfying a
// constraint-language predicate, e.g. db.Query("plates", "Width > 4 and
// Material = \"steel\""). The planner uses a secondary index when one
// matches a sargable conjunct; results are sorted by surrogate. An empty
// predicate lists the whole extent. Rows on which the predicate cannot
// be evaluated do not match.
func (db *Database) Query(className, where string) ([]Surrogate, error) {
	out, _, err := query.Run(query.ForStore(db.store), className, where)
	return out, err
}

// Plan builds (without running) the access plan Query would use.
func (db *Database) Plan(className, where string) (*QueryPlan, error) {
	_, p, err := planOnly(query.ForStore(db.store), className, where)
	return p, err
}

// Explain renders the access plan Query would choose, with estimates and
// rejected alternatives.
func (db *Database) Explain(className, where string) (string, error) {
	p, err := db.Plan(className, where)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// planOnly parses and plans without executing.
func planOnly(src query.Source, className, where string) ([]Surrogate, *QueryPlan, error) {
	var e expr.Expr
	if strings.TrimSpace(where) != "" {
		parsed, err := expr.Parse(where)
		if err != nil {
			return nil, nil, err
		}
		e = parsed
	}
	p, err := query.Build(src, className, e)
	return nil, p, err
}

// Query is the snapshot form: it runs entirely against the pin's
// sequence point — extents, attribute values and index probes — so the
// result is consistent no matter what writers do concurrently, and
// identical to what Database.Query returned at the pin.
func (v *SnapshotView) Query(className, where string) ([]Surrogate, error) {
	out, _, err := query.Run(query.ForSnapshot(v.snap), className, where)
	return out, err
}

// Explain renders the plan a snapshot query would use (only indexes
// maintained across the pin's sequence point are eligible).
func (v *SnapshotView) Explain(className, where string) (string, error) {
	_, p, err := planOnly(query.ForSnapshot(v.snap), className, where)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Indexes lists the index definitions usable at the pin.
func (v *SnapshotView) Indexes() []IndexDef { return v.snap.Indexes() }

// ---- version operations (journaled under db.mu) ----
//
// Version ops enqueue their record under db.mu (their serialization
// lock) and wait for durability after releasing it, like facade store
// mutations do with the store lock.

// DefineDesign registers a design object, optionally anchored to an
// interface object.
func (db *Database) DefineDesign(name string, iface Surrogate) error {
	if err := db.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	if _, err := db.versions.DefineDesign(name, iface); err != nil {
		db.mu.Unlock()
		return err
	}
	db.appendOp(&oplog.Op{Kind: oplog.KindDefineDesign, Name: name, Sur: iface})
	db.mu.Unlock()
	return db.afterWrite(nil)
}

// AddVersion registers obj as a version of a design.
func (db *Database) AddVersion(design string, obj Surrogate, derivedFrom []Surrogate, alternative string) (*VersionInfo, error) {
	if err := db.Err(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	info, err := db.versions.AddVersion(design, obj, derivedFrom, alternative)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	db.appendOp(&oplog.Op{Kind: oplog.KindAddVersion, Name: design, Sur: obj, Surs: derivedFrom, Name2: alternative})
	db.mu.Unlock()
	return info, db.afterWrite(nil)
}

// SetStatus reclassifies a version; freezing makes the object read-only.
func (db *Database) SetStatus(obj Surrogate, st version.Status) error {
	if err := db.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	if err := db.versions.SetStatus(obj, st); err != nil {
		db.mu.Unlock()
		return err
	}
	db.appendOp(&oplog.Op{Kind: oplog.KindSetStatus, Sur: obj, Name: string(st)})
	db.mu.Unlock()
	return db.afterWrite(nil)
}

// SetDefault selects a design's default version (bottom-up selection).
func (db *Database) SetDefault(design string, obj Surrogate) error {
	if err := db.Err(); err != nil {
		return err
	}
	db.mu.Lock()
	if err := db.versions.SetDefault(design, obj); err != nil {
		db.mu.Unlock()
		return err
	}
	db.appendOp(&oplog.Op{Kind: oplog.KindSetDefault, Name: design, Sur: obj})
	db.mu.Unlock()
	return db.afterWrite(nil)
}

// Resolve selects a concrete version for a generic reference.
func (db *Database) Resolve(ref GenericRef, env *Environment) (Surrogate, error) {
	return db.versions.Resolve(ref, env)
}

// BindResolved resolves a generic component reference and binds the
// inheritor to the chosen version.
func (db *Database) BindResolved(relType string, inheritor Surrogate, ref GenericRef, env *Environment) (Surrogate, Surrogate, error) {
	if err := db.Err(); err != nil {
		return 0, 0, err
	}
	chosen, bsur, err := db.versions.BindResolved(relType, inheritor, ref, env)
	return chosen, bsur, db.afterWrite(err)
}
