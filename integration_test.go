package cadcam_test

// An end-to-end "life of a design" walk across every subsystem: schema
// from the paper's DDL corpus, interface hierarchy, composite
// construction under transactions, versioning with selection, constraint
// checking, a logic simulation, a checkpoint, a simulated crash, and
// recovery — asserting the recovered database behaves identically.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cadcam"
	"cadcam/internal/ddl"
	"cadcam/internal/sim"
	"cadcam/internal/txn"
)

func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	cat, err := ddl.ParsePaperCorpus()
	if err != nil {
		t.Fatal(err)
	}
	db, err := cadcam.Open(cat, cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	must := func(sur cadcam.Surrogate, err error) cadcam.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	set := func(sur cadcam.Surrogate, attr string, v cadcam.Value) {
		t.Helper()
		if err := db.SetAttr(sur, attr, v); err != nil {
			t.Fatal(err)
		}
	}

	// ---- 1. design objects: a NAND with two implementation versions ----
	mkIface := func(nIn, nOut int) cadcam.Surrogate {
		root := must(db.NewObject("GateInterface_I", ""))
		id := int64(1)
		for i := 0; i < nIn+nOut; i++ {
			pin := must(db.NewSubobject(root, "Pins"))
			dir := "IN"
			if i >= nIn {
				dir = "OUT"
			}
			set(pin, "InOut", cadcam.Sym(dir))
			set(pin, "PinId", cadcam.Int(id))
			id++
		}
		iface := must(db.NewObject("GateInterface", ""))
		must(db.Bind("AllOf_GateInterface_I", iface, root))
		set(iface, "Length", cadcam.Int(4))
		set(iface, "Width", cadcam.Int(2))
		return iface
	}
	nandIface := mkIface(2, 1)
	if err := db.DefineDesign("NAND", nandIface); err != nil {
		t.Fatal(err)
	}
	table, err := sim.Table("NAND", 2)
	if err != nil {
		t.Fatal(err)
	}
	mkImpl := func(delay int64) cadcam.Surrogate {
		impl := must(db.NewObject("GateImplementation", ""))
		must(db.Bind("AllOf_GateInterface", impl, nandIface))
		set(impl, "Function", table)
		set(impl, "TimeBehavior", cadcam.Int(delay))
		return impl
	}
	v1, v2 := mkImpl(6), mkImpl(2)
	if _, err := db.AddVersion("NAND", v1, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVersion("NAND", v2, []cadcam.Surrogate{v1}, "fast"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStatus(v1, cadcam.StatusReleased); err != nil {
		t.Fatal(err)
	}
	if err := db.SetDefault("NAND", v1); err != nil {
		t.Fatal(err)
	}

	// ---- 2. a composite built inside a transaction ----------------------
	usage := mkIface(2, 1) // per-usage interface for the single component
	tx := db.Begin("designer")
	inverter, err := tx.NewObject("GateImplementation", "")
	if err != nil {
		t.Fatal(err)
	}
	invIface := mkIface(1, 1)
	if _, err := tx.Bind("AllOf_GateInterface", inverter, invIface); err != nil {
		t.Fatal(err)
	}
	sg, err := tx.NewSubobject(inverter, "SubGates")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Bind("AllOf_GateInterface", sg, usage); err != nil {
		t.Fatal(err)
	}
	extPins, err := tx.Members(inverter, "Pins")
	if err != nil {
		t.Fatal(err)
	}
	sgPins, err := tx.Members(sg, "Pins")
	if err != nil {
		t.Fatal(err)
	}
	// in -> both NAND inputs; NAND out -> out: a NOT gate.
	for _, pair := range [][2]cadcam.Surrogate{
		{extPins[0], sgPins[0]}, {extPins[0], sgPins[1]}, {sgPins[2], extPins[1]},
	} {
		if _, err := tx.RelateIn(inverter, "Wires", cadcam.Participants{
			"Pin1": cadcam.RefOf(pair[0]), "Pin2": cadcam.RefOf(pair[1]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// ---- 3. simulate with both versions ---------------------------------
	simulate := func(behavior cadcam.Surrogate) int64 {
		t.Helper()
		circuit, err := sim.Compile(db.Store(), inverter,
			func(cadcam.Surrogate) (cadcam.Surrogate, error) { return behavior, nil })
		if err != nil {
			t.Fatal(err)
		}
		res, err := circuit.Eval([]bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] {
			t.Fatal("NOT(1) should be 0")
		}
		return res.Delay
	}
	released, err := db.Resolve(cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectDefault}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := simulate(released); d != 6 {
		t.Errorf("released delay = %d", d)
	}
	if d := simulate(v2); d != 2 {
		t.Errorf("fast delay = %d", d)
	}

	// ---- 4. constraints and access control --------------------------------
	if v := db.CheckAll(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	db.Access().Grant("intern", nandIface, txn.RightRead)
	internTx := db.Begin("intern")
	if err := internTx.SetAttr(nandIface, "Length", cadcam.Int(9)); !errors.Is(err, txn.ErrLockAccess) {
		t.Errorf("intern write: %v", err)
	}
	if err := internTx.Abort(); err != nil {
		t.Fatal(err)
	}

	// ---- 5. checkpoint, more work, crash, recover --------------------------
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	set(nandIface, "Length", cadcam.Int(5)) // post-checkpoint journaled op
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the journal tail to simulate a crash mid-write of a later op.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			p := filepath.Join(dir, e.Name())
			if info, err := os.Stat(p); err == nil && info.Size() > 0 {
				_ = os.Truncate(p, info.Size()-1)
			}
		}
	}
	cat2, err := ddl.ParsePaperCorpus()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := cadcam.Open(cat2, cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	// The recovered database: structure, versions, inheritance, simulation.
	if got, err := db2.Resolve(cadcam.GenericRef{Design: "NAND", Policy: cadcam.SelectDefault}, nil); err != nil || got != v1 {
		t.Errorf("recovered default = %v, %v", got, err)
	}
	if v, _ := db2.GetAttr(sg, "Length"); !v.Equal(cadcam.Int(4)) {
		t.Errorf("recovered inherited read = %v", v)
	}
	circuit, err := sim.Compile(db2.Store(), inverter,
		func(cadcam.Surrogate) (cadcam.Surrogate, error) { return v1, nil })
	if err != nil {
		t.Fatal(err)
	}
	res, err := circuit.Eval([]bool{false})
	if err != nil || !res.Outputs[0] {
		t.Errorf("recovered simulation: %v, %v", res, err)
	}
	if bad := db2.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("recovered store inconsistent: %v", bad)
	}
	if v := db2.CheckAll(); len(v) != 0 {
		t.Errorf("recovered violations: %v", v)
	}
}
