package cadcam

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// TestSnapshotExportMatchesTruncatedReplay is the MVCC determinism
// oracle: a snapshot pinned at sequence S in the middle of a concurrent
// (failure-free) workload must export byte-for-byte the state that a
// serial replay of the journal truncated at S produces.
func TestSnapshotExportMatchesTruncatedReplay(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, impl := buildGateScene(t, db)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			_ = db.SetAttr(iface, "Length", Int(int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			_ = db.SetAttr(impl, "TimeBehavior", Int(int64(i)))
			if i%10 == 0 {
				_ = db.Acknowledge(paperschema.RelAllOfGateInterface, impl)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			sur, err := db.NewObject(paperschema.TypeGateInterface, "")
			if err != nil {
				t.Errorf("NewObject: %v", err)
				return
			}
			_ = db.SetAttr(sur, "Width", Int(int64(i)))
		}
	}()

	time.Sleep(5 * time.Millisecond)
	sn := db.Store().Snapshot()
	S := sn.Seq()
	pinned := sn.Export()
	sn.Release()
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the journal at S: keep exactly the sequenced ops at or
	// below the pin (cross-shard appends may be out of order in the log;
	// the per-op sequence is the truncation criterion, not file order).
	sc, err := ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Store != nil {
		t.Fatal("unexpected checkpoint in fresh directory")
	}
	var kept [][]byte
	for _, rec := range sc.Records {
		op, err := oplog.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		if op.Seq > 0 && op.Seq <= S {
			kept = append(kept, rec)
		}
	}

	fresh, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	vm := version.NewManager(fresh)
	if err := wal.Replay(kept, fresh, vm); err != nil {
		t.Fatal(err)
	}
	replayed := fresh.Export()

	a := wal.EncodeSnapshot(pinned, vm.Export())
	b := wal.EncodeSnapshot(replayed, vm.Export())
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot export at seq %d differs from truncated serial replay:\nsnapshot: %+v\nreplayed: %+v", S, pinned, replayed)
	}
}

// TestSnapshotViewPinnedTraversals pins a SnapshotView and checks the
// high-level traversals stay at the pin while the live database moves.
func TestSnapshotViewPinnedTraversals(t *testing.T) {
	db := memDB(t)
	rootI, iface, impl := buildGateScene(t, db)

	// One permeable update leaves impl with a pending adaptation.
	if err := db.SetAttr(iface, "Length", Int(5)); err != nil {
		t.Fatal(err)
	}
	wantPortions, err := db.VisibleComponents(impl)
	if err != nil {
		t.Fatal(err)
	}
	wantExp, err := db.Expand(impl)
	if err != nil {
		t.Fatal(err)
	}
	wantAnc := db.Ancestors(impl)
	wantPending := db.PendingAdaptations()
	if len(wantPending) == 0 {
		t.Fatal("expected a pending adaptation before the pin")
	}

	v := db.SnapshotView()
	defer v.Release()

	// Move the live database: acknowledge, unbind, mutate, create.
	if err := db.Acknowledge(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if err := db.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Length", Int(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewObject(paperschema.TypeGateInterface, ""); err != nil {
		t.Fatal(err)
	}

	if got, err := v.VisibleComponents(impl); err != nil || !reflect.DeepEqual(got, wantPortions) {
		t.Errorf("pinned VisibleComponents = %+v, %v; want %+v", got, err, wantPortions)
	}
	if got, err := v.Expand(impl); err != nil || !reflect.DeepEqual(got, wantExp) {
		t.Errorf("pinned Expand differs: %+v, %v", got, err)
	}
	if got := v.Ancestors(impl); !reflect.DeepEqual(got, wantAnc) {
		t.Errorf("pinned Ancestors = %v, want %v", got, wantAnc)
	}
	if got := v.PendingAdaptations(); !reflect.DeepEqual(got, wantPending) {
		t.Errorf("pinned PendingAdaptations = %+v, want %+v", got, wantPending)
	}
	if got := db.PendingAdaptations(); len(got) != 0 {
		t.Errorf("live PendingAdaptations = %+v, want none", got)
	}
	if got, _ := v.GetAttr(impl, "Length"); !got.Equal(Int(5)) {
		t.Errorf("pinned inherited Length = %s, want 5", got)
	}
	if got, _ := v.Members(rootI, "Pins"); len(got) != 3 {
		t.Errorf("pinned Pins = %v, want 3", got)
	}
	if v.Seq() == 0 {
		t.Error("pinned Seq = 0")
	}
}

// TestCheckpointLockHoldStat checks satellite telemetry: a checkpoint
// records how long it held the store-exclusive lock, and the hold covers
// only the journal rotation (the export happens on the MVCC snapshot).
func TestCheckpointLockHoldStat(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	buildGateScene(t, db)

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Checkpoint
	if st.LockHoldNs <= 0 {
		t.Fatalf("LockHoldNs = %d, want > 0", st.LockHoldNs)
	}
	if st.MaxLockHoldNs < st.LockHoldNs {
		t.Fatalf("MaxLockHoldNs = %d < LockHoldNs = %d", st.MaxLockHoldNs, st.LockHoldNs)
	}
	if st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", st.Checkpoints)
	}
}

// TestCheckpointUnderWritersRecovers checkpoints in the middle of a
// concurrent write storm (exercising the snapshot-pinned export path)
// and verifies the recovered state is byte-identical to the live state.
func TestCheckpointUnderWritersRecovers(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	_, iface, impl := buildGateScene(t, db)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = db.SetAttr(iface, "Length", Int(int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = db.SetAttr(impl, "TimeBehavior", Int(int64(i)))
		}
	}()
	for i := 0; i < 3; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	before := db.Store().Export()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	after := db2.Store().Export()

	vs := version.NewManager(db2.Store()).Export()
	if !bytes.Equal(wal.EncodeSnapshot(before, vs), wal.EncodeSnapshot(after, vs)) {
		t.Fatal("recovered state differs from pre-close state")
	}
	if bad := db2.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants after recovery: %v", bad)
	}
}
