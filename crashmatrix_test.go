package cadcam_test

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"testing"

	"cadcam/internal/crash"
	"cadcam/internal/fault"
)

// The crash matrix re-executes this test binary as its worker process:
// TestCrashMatrixWorker picks up the workload config and failpoint spec
// from the environment, runs the multi-writer workload against a real
// on-disk database, and either dies at the armed failpoint (exit-kind,
// process status 86) or finishes and reports how often the point fired
// (error-kind). The driver then reopens the directory and verifies the
// recovered state byte-for-byte against the model oracle.

// TestCrashMatrixWorker is the child-process body. Without the config
// environment it is skipped, so a plain `go test` ignores it.
func TestCrashMatrixWorker(t *testing.T) {
	cfg, ok, err := crash.LoadConfigEnv()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("not a crash-matrix worker (no " + crash.EnvConfig + ")")
	}
	if err := crash.RunWorkload(cfg); err != nil {
		t.Fatalf("workload: %v", err)
	}
	// Reaching this line means no exit-kind crash happened; tell the
	// driver whether the armed failpoint fired as an error.
	fmt.Printf("%s %d\n", crash.FiredMarker, fault.TotalHits())
}

func newDriver(t *testing.T) *crash.Driver {
	t.Helper()
	seed := int64(1989)
	if s := os.Getenv("CADCAM_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CADCAM_CRASH_SEED: %v", err)
		}
		seed = n
	}
	return &crash.Driver{
		BaseDir:     t.TempDir(),
		Seed:        seed,
		Writers:     4,
		Ops:         250,
		LongReaders: 1,
		Command: func() *exec.Cmd {
			return exec.Command(os.Args[0], "-test.run=^TestCrashMatrixWorker$", "-test.v")
		},
		Logf:        t.Logf,
		ArtifactDir: os.Getenv("CRASHMATRIX_ARTIFACTS"),
	}
}

// TestCrashMatrix kills a workload at every registered failpoint (first
// and seventh hit, plus an injected-error flavor where the site has a
// real error path) and verifies every surviving directory. Failures
// print the seed and spec needed to reproduce.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns worker processes; skipped in -short")
	}
	d := newDriver(t)
	if err := d.RunMatrix(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixRepl runs only the replication rounds of the matrix:
// the workload executes with a live follower attached (which must stay
// byte-identical to the primary), replication failpoints tear, drop and
// truncate the stream mid-run, and after recovery the divergence oracle
// replays the surviving directory through fresh followers — in full and
// truncated at a batch boundary. CI runs this job separately so a
// replication regression is named as such, not buried in the full sweep.
func TestCrashMatrixRepl(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns worker processes; skipped in -short")
	}
	d := newDriver(t)
	d.Filter = regexp.MustCompile(`^repl/`)
	if err := d.RunMatrix(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixServe runs only the wire-protocol rounds of the matrix:
// every writer's mutations travel through an in-process cadserve session
// (framing, pipelining, the durability→ack gap), the run ends with a
// graceful drain over deliberately abandoned transactions, and the kill
// schedule targets the serve failpoints — dying after an op is durable
// but before its response, and mid-drain while aborts reclaim session
// state. Verification is the same oracle as every other round: recovered
// bytes equal the model replay, and every acked op is in the journal.
func TestCrashMatrixServe(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns worker processes; skipped in -short")
	}
	d := newDriver(t)
	d.Filter = regexp.MustCompile(`^serve/`)
	if err := d.RunMatrix(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashTailFuzz attacks byte offsets of the journal of a clean run:
// clipped tails must recover to the oracle's prefix state, flipped bytes
// must be rejected cleanly or survive — never panic, never diverge.
func TestCrashTailFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("tail fuzz runs many recoveries; skipped in -short")
	}
	d := newDriver(t)
	rounds := 12
	if s := os.Getenv("CADCAM_TAILFUZZ_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CADCAM_TAILFUZZ_ROUNDS: %v", err)
		}
		rounds = n
	}
	if err := d.RunTailFuzz(rounds); err != nil {
		t.Fatal(err)
	}
}
