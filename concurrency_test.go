package cadcam_test

import (
	"sync"
	"testing"

	"cadcam"
	"cadcam/internal/paperschema"
)

// TestConcurrentMutationsDuringCheckpoints hammers the database with
// journaled mutations from several goroutines while checkpoints rotate
// the journal concurrently; afterwards a reopen must reproduce the exact
// final state.
func TestConcurrentMutationsDuringCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const opsPerWorker = 200
	pins := make([]cadcam.Surrogate, workers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		pins[i] = pin
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Interleaved checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := db.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	want := make([]cadcam.Value, workers)
	for i, pin := range pins {
		want[i], _ = db.GetAttr(pin, "PinId")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i, pin := range pins {
		got, err := db2.GetAttr(pin, "PinId")
		if err != nil || !got.Equal(want[i]) {
			t.Errorf("pin %d: recovered %v, want %v (%v)", i, got, want[i], err)
		}
	}
	if bad := db2.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("recovered store inconsistent: %v", bad)
	}
}

// TestConcurrentReadersAndJournaledWriters mixes store-level readers with
// facade writers; view-semantics reads must never observe torn state.
func TestConcurrentReadersAndJournaledWriters(t *testing.T) {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rootI, _ := db.NewObject(paperschema.TypeGateInterfaceI, "")
	iface, _ := db.NewObject(paperschema.TypeGateInterface, "")
	if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	impl, _ := db.NewObject(paperschema.TypeGateImplementation, "")
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Reads resolve through the binding while the transmitter
				// is concurrently updated; any internal inconsistency
				// would surface as an error (or a race-report under
				// -race).
				if _, err := db.GetAttr(impl, "Length"); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i*2))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
}

// TestConcurrentReadsDuringRebinding races lock-free route-cached reads
// against Bind/Unbind structure changes. Every read must observe either
// the bound state (the transmitter's value / membership) or the unbound
// state (Null / empty) — never an error and never a route left over from
// a previous binding epoch.
func TestConcurrentReadsDuringRebinding(t *testing.T) {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rootI, err := db.NewObject(paperschema.TypeGateInterfaceI, "")
	if err != nil {
		t.Fatal(err)
	}
	const nPins = 3
	for i := 0; i < nPins; i++ {
		if _, err := db.NewSubobject(rootI, "Pins"); err != nil {
			t.Fatal(err)
		}
	}
	iface, err := db.NewObject(paperschema.TypeGateInterface, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Length", cadcam.Int(9)); err != nil {
		t.Fatal(err)
	}
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := db.GetAttr(impl, "Length")
				if err != nil {
					t.Errorf("GetAttr: %v", err)
					return
				}
				if !cadcam.IsNull(v) && !v.Equal(cadcam.Int(9)) {
					t.Errorf("stale inherited read: %v", v)
					return
				}
				pins, err := db.Members(impl, "Pins")
				if err != nil {
					t.Errorf("Members: %v", err)
					return
				}
				if len(pins) != 0 && len(pins) != nPins {
					t.Errorf("torn membership read: %d pins", len(pins))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			if err := db.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
				t.Errorf("unbind: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()

	// Quiesced final state: rebind, warm the route, then mutate the
	// transmitter — the update must be visible through the cached route
	// (routes memoize the resolution path, never the value).
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetAttr(impl, "Length"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(iface, "Length", cadcam.Int(42)); err != nil {
		t.Fatal(err)
	}
	v, err := db.GetAttr(impl, "Length")
	if err != nil || !v.Equal(cadcam.Int(42)) {
		t.Fatalf("update invisible through cached route: %v (%v)", v, err)
	}
	pins, err := db.Members(impl, "Pins")
	if err != nil || len(pins) != nPins {
		t.Fatalf("membership after rebinding: %d pins (%v)", len(pins), err)
	}
	if err := db.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.GetAttr(impl, "Length"); !cadcam.IsNull(v) {
		t.Fatalf("route survived unbind: %v", v)
	}
}

// TestConcurrentReadsDuringTransmitterDelete races inherited reads
// against the deletion of the transmitter itself (DeleteUnbind policy:
// the inheritor is detached). Reads must see the live value or Null,
// and after the delete the route must be gone for good.
func TestConcurrentReadsDuringTransmitterDelete(t *testing.T) {
	db, err := cadcam.Open(paperschema.MustGates(),
		cadcam.Options{DeletePolicy: cadcam.DeleteUnbind})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	impl, err := db.NewObject(paperschema.TypeGateImplementation, "")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := db.GetAttr(impl, "Length")
				if err != nil {
					t.Errorf("GetAttr: %v", err)
					return
				}
				if !cadcam.IsNull(v) && !v.Equal(cadcam.Int(7)) {
					t.Errorf("read through deleted transmitter: %v", v)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			iface, err := db.NewObject(paperschema.TypeGateInterface, "")
			if err != nil {
				t.Errorf("new transmitter: %v", err)
				return
			}
			if err := db.SetAttr(iface, "Length", cadcam.Int(7)); err != nil {
				t.Errorf("set: %v", err)
				return
			}
			if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			if err := db.Delete(iface); err != nil {
				t.Errorf("delete transmitter: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()

	if v, err := db.GetAttr(impl, "Length"); err != nil || !cadcam.IsNull(v) {
		t.Fatalf("after transmitter delete: %v (%v)", v, err)
	}
	if bad := db.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("store inconsistent: %v", bad)
	}
}
