package cadcam_test

import (
	"sync"
	"testing"

	"cadcam"
	"cadcam/internal/paperschema"
)

// TestConcurrentMutationsDuringCheckpoints hammers the database with
// journaled mutations from several goroutines while checkpoints rotate
// the journal concurrently; afterwards a reopen must reproduce the exact
// final state.
func TestConcurrentMutationsDuringCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const opsPerWorker = 200
	pins := make([]cadcam.Surrogate, workers)
	for i := range pins {
		pin, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		pins[i] = pin
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Interleaved checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := db.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	want := make([]cadcam.Value, workers)
	for i, pin := range pins {
		want[i], _ = db.GetAttr(pin, "PinId")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i, pin := range pins {
		got, err := db2.GetAttr(pin, "PinId")
		if err != nil || !got.Equal(want[i]) {
			t.Errorf("pin %d: recovered %v, want %v (%v)", i, got, want[i], err)
		}
	}
	if bad := db2.Store().CheckInvariants(); len(bad) != 0 {
		t.Fatalf("recovered store inconsistent: %v", bad)
	}
}

// TestConcurrentReadersAndJournaledWriters mixes store-level readers with
// facade writers; view-semantics reads must never observe torn state.
func TestConcurrentReadersAndJournaledWriters(t *testing.T) {
	db, err := cadcam.OpenMemory(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rootI, _ := db.NewObject(paperschema.TypeGateInterfaceI, "")
	iface, _ := db.NewObject(paperschema.TypeGateInterface, "")
	if _, err := db.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	impl, _ := db.NewObject(paperschema.TypeGateImplementation, "")
	if _, err := db.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Reads resolve through the binding while the transmitter
				// is concurrently updated; any internal inconsistency
				// would surface as an error (or a race-report under
				// -race).
				if _, err := db.GetAttr(impl, "Length"); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			if err := db.SetAttr(iface, "Length", cadcam.Int(int64(i*2))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
}
