package cadcam

import (
	"errors"
	"testing"
	"time"

	"cadcam/internal/fault"
	"cadcam/internal/paperschema"
)

// TestAttachFollower: a replica attached through the facade tracks the
// primary and serves reads with the view API, including inheritance
// resolution.
func TestAttachFollower(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	_, iface, impl := buildGateScene(t, db)

	f, err := db.AttachFollower(FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	view, err := f.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	if v, err := view.GetAttr(iface, "Length"); err != nil || !v.Equal(Int(4)) {
		t.Fatalf("replica GetAttr(Length) = %v, %v", v, err)
	}
	// Inherited read through the implementation's binding.
	if v, err := view.GetAttr(impl, "Length"); err != nil || !v.Equal(Int(4)) {
		t.Fatalf("replica inherited GetAttr = %v, %v", v, err)
	}

	// A write after the pin is invisible to the pinned view but visible
	// to a fresh bounded-staleness view.
	if err := db.SetAttr(iface, "Length", Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if v, _ := view.GetAttr(iface, "Length"); !v.Equal(Int(4)) {
		t.Fatalf("pinned view moved: Length = %v", v)
	}
	fresh, err := f.SnapshotViewWithin(0)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	if v, _ := fresh.GetAttr(iface, "Length"); !v.Equal(Int(9)) {
		t.Fatalf("fresh view stale: Length = %v", v)
	}
	if f.Lag() != 0 {
		t.Fatalf("lag after catch-up: %d", f.Lag())
	}

	// Stats surface the shipper on the primary side.
	if st := db.Stats(); st.Repl == nil || st.Repl.BatchesShipped == 0 {
		t.Fatalf("Stats().Repl = %+v", st.Repl)
	}
}

// TestShipperRequiresDisk: an in-memory database has no journal chain
// to ship.
func TestShipperRequiresDisk(t *testing.T) {
	db := memDB(t)
	defer db.Close()
	if _, err := db.Shipper(); err == nil {
		t.Fatal("in-memory Shipper() succeeded")
	}
	if _, err := db.AttachFollower(FollowerOptions{}); err == nil {
		t.Fatal("in-memory AttachFollower() succeeded")
	}
}

// TestOpenFollowerCrossProcessShape: a follower opened against the
// directory alone (no Database handle) converges too — the shape a
// separate reader process uses.
func TestOpenFollowerCrossProcessShape(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	_, iface, _ := buildGateScene(t, db)

	f, err := OpenFollower(paperschema.MustGates(), dir, FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	view, err := f.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	if v, err := view.GetAttr(iface, "Length"); err != nil || !v.Equal(Int(4)) {
		t.Fatalf("cross-process replica read = %v, %v", v, err)
	}
}

// TestHealthProbe: the single health probe surfaces each sticky error
// class — checkpoint, WAL, replication — and recovers when they clear.
func TestHealthProbe(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	_, iface, _ := buildGateScene(t, db)

	if h := db.Health(); !h.OK {
		t.Fatalf("healthy database reports %+v", h)
	}
	if st := db.Stats(); !st.Health.OK {
		t.Fatalf("Stats().Health = %+v", st.Health)
	}

	// Checkpoint failure: sticky, degraded, clears on the next success.
	if err := fault.Arm("db/manifest-swap=error(injected swap failure)@1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint should have failed")
	}
	h := db.Health()
	if h.OK || h.CheckpointErr == "" {
		t.Fatalf("failed checkpoint not surfaced: %+v", h)
	}
	if st := db.Stats(); st.Health.CheckpointErr == "" {
		t.Fatalf("Stats().Health missed checkpoint error: %+v", st.Health)
	}
	fault.Reset()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); !h.OK || h.CheckpointErr != "" {
		t.Fatalf("checkpoint error did not clear: %+v", h)
	}

	// Replication shipping failure: degraded, reported via ReplErr.
	if err := fault.Arm("repl/conn-drop=error(injected conn drop)@1"); err != nil {
		t.Fatal(err)
	}
	f, err := db.AttachFollower(FollowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.OK == true || h.ReplErr == "" {
		t.Fatalf("shipping failure not surfaced: %+v", h)
	}
	fault.Reset()

	// WAL pipeline failure: fatal.
	boom := errors.New("disk on fire")
	db.committer.Fail(boom)
	h = db.Health()
	if h.OK || h.WALErr == "" {
		t.Fatalf("WAL poison not surfaced: %+v", h)
	}
	_ = iface
}
