package cadcam_test

import (
	"sync"
	"testing"

	"cadcam"
	"cadcam/internal/paperschema"
)

// reportWALStats attaches the group-commit pipeline counters to a
// benchmark run: fsyncs per journaled record (the coalescing headline —
// < 1 means group commit amortized the disk), mean batch size, and the
// largest batch observed.
func reportWALStats(b *testing.B, db *cadcam.Database) {
	w := db.Stats().WAL
	if w.Records == 0 {
		return
	}
	b.ReportMetric(float64(w.Syncs)/float64(w.Records), "fsyncs/op")
	b.ReportMetric(float64(w.Records)/float64(w.Batches), "recs/batch")
	b.ReportMetric(float64(w.MaxBatch), "max-batch")
}

// TestWALGroupCommitRegression asserts the group-commit pipeline
// actually coalesces under concurrency: with 8 durable writers the WAL
// must average strictly less than one fsync per acknowledged record and
// strictly more than one record per batch. A regression that serializes
// writers (one sync each) fails both assertions.
func TestWALGroupCommitRegression(t *testing.T) {
	dir := t.TempDir()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers, opsEach = 8, 150
	pins := make([]cadcam.Surrogate, writers)
	for i := range pins {
		if pins[i], err = db.NewObject(paperschema.TypePin, ""); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				if err := db.SetAttr(pins[w], "PinId", cadcam.Int(int64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := db.Stats().WAL
	if s.Records == 0 || s.Batches == 0 || s.Syncs == 0 {
		t.Fatalf("no pipeline activity recorded: %+v", s)
	}
	fsyncsPerOp := float64(s.Syncs) / float64(s.Records)
	recsPerBatch := float64(s.Records) / float64(s.Batches)
	t.Logf("records=%d batches=%d syncs=%d fsyncs/op=%.3f recs/batch=%.2f max-batch=%d",
		s.Records, s.Batches, s.Syncs, fsyncsPerOp, recsPerBatch, s.MaxBatch)
	if fsyncsPerOp >= 1 {
		t.Errorf("fsyncs/op = %.3f, want < 1 (group commit is not amortizing the disk)", fsyncsPerOp)
	}
	if recsPerBatch <= 1 {
		t.Errorf("recs/batch = %.2f, want > 1 (writers are not coalescing)", recsPerBatch)
	}
	if s.MaxBatch < 2 {
		t.Errorf("max-batch = %d, want >= 2", s.MaxBatch)
	}
}
