package cadcam_test

import (
	"testing"

	"cadcam"
)

// reportWALStats attaches the group-commit pipeline counters to a
// benchmark run: fsyncs per journaled record (the coalescing headline —
// < 1 means group commit amortized the disk), mean batch size, and the
// largest batch observed.
func reportWALStats(b *testing.B, db *cadcam.Database) {
	w := db.Stats().WAL
	if w.Records == 0 {
		return
	}
	b.ReportMetric(float64(w.Syncs)/float64(w.Records), "fsyncs/op")
	b.ReportMetric(float64(w.Records)/float64(w.Batches), "recs/batch")
	b.ReportMetric(float64(w.MaxBatch), "max-batch")
}
