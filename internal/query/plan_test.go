package query

import (
	"strings"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

func gateStore(t *testing.T) *object.Store {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mk(t *testing.T, s *object.Store, typ, cls string) domain.Surrogate {
	t.Helper()
	sur, err := s.NewObject(typ, cls)
	if err != nil {
		t.Fatal(err)
	}
	return sur
}

func setA(t *testing.T, s *object.Store, sur domain.Surrogate, attr string, v domain.Value) {
	t.Helper()
	if err := s.SetAttr(sur, attr, v); err != nil {
		t.Fatalf("SetAttr(%v, %s): %v", sur, attr, err)
	}
}

// gatesFixture builds a "gates" class of n SimpleGates with Width = i%5
// and Function cycling AND/OR, plus an index on Width.
func gatesFixture(t *testing.T, n int) (*object.Store, []domain.Surrogate) {
	t.Helper()
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	fns := []string{"AND", "OR"}
	var gs []domain.Surrogate
	for i := 0; i < n; i++ {
		g := mk(t, s, paperschema.TypeSimpleGate, "gates")
		setA(t, s, g, "Width", domain.Int(int64(i%5)))
		setA(t, s, g, "Function", domain.Sym(fns[i%2]))
		gs = append(gs, g)
	}
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	return s, gs
}

func mustParse(t *testing.T, src string) expr.Expr {
	t.Helper()
	e, err := expr.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func runBoth(t *testing.T, src Source, cls, where string) ([]domain.Surrogate, *Plan) {
	t.Helper()
	got, plan, err := Run(src, cls, where)
	if err != nil {
		t.Fatalf("Run(%q): %v", where, err)
	}
	var e expr.Expr
	if strings.TrimSpace(where) != "" {
		e = mustParse(t, where)
	}
	want, err := Naive(src, cls, e)
	if err != nil {
		t.Fatalf("Naive(%q): %v", where, err)
	}
	if len(got) != len(want) {
		t.Fatalf("Run(%q) = %v, Naive = %v [plan: %s]", where, got, want, plan.Mode)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Run(%q)[%d] = %v, Naive = %v [plan: %s]", where, i, got[i], want[i], plan.Mode)
		}
	}
	return got, plan
}

func TestPlanModeSelection(t *testing.T) {
	s, _ := gatesFixture(t, 20)
	src := ForStore(s)

	cases := []struct {
		where string
		mode  Mode
	}{
		{"", FullScan},                          // whole extent
		{"Width = 2", IndexScan},                // sargable, indexed
		{"2 = Width", IndexScan},                // literal on the left
		{"Width >= 3 and Function = AND", IndexScan}, // conjunct picks the index
		{"Length = 2", RouteProbe},              // single root, unindexed
		{"Width = Length", FullScan},            // path ⋈ path: two roots, not sargable
		{"Function = AND", FullScan},            // enum symbol is a path, not a literal
	}
	for _, c := range cases {
		_, plan := runBoth(t, src, "gates", c.where)
		if plan.Mode != c.mode {
			t.Errorf("where %q: mode = %s, want %s", c.where, plan.Mode, c.mode)
		}
	}
}

func TestPlanPicksMostSelectiveSarg(t *testing.T) {
	s, gs := gatesFixture(t, 20)
	if err := s.CreateIndex("gates_l", "gates", "Length"); err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		setA(t, s, g, "Length", domain.Int(int64(i))) // unique: point probe yields 1
	}
	src := ForStore(s)
	_, plan := runBoth(t, src, "gates", "Width = 2 and Length = 7")
	if plan.Mode != IndexScan || plan.Index != "gates_l" {
		t.Fatalf("plan = %s via %q, want index scan via gates_l", plan.Mode, plan.Index)
	}
	if plan.EstCandidates != 1 {
		t.Fatalf("EstCandidates = %d, want 1", plan.EstCandidates)
	}
}

func TestPlanRangeAndResidual(t *testing.T) {
	s, _ := gatesFixture(t, 25)
	src := ForStore(s)
	// Strict bound widens to an inclusive probe; the residual re-cuts it.
	got, plan := runBoth(t, src, "gates", "Width > 2 and Function = OR")
	if plan.Mode != IndexScan {
		t.Fatalf("mode = %s", plan.Mode)
	}
	for _, sur := range got {
		w, err := s.GetAttr(sur, "Width")
		if err != nil || w.(domain.Int) <= 2 {
			t.Fatalf("%v: Width = %v (err %v)", sur, w, err)
		}
	}
	if len(got) == 0 {
		t.Fatal("no matches")
	}
}

func TestPlanUnknownClass(t *testing.T) {
	s, _ := gatesFixture(t, 1)
	if _, _, err := Run(ForStore(s), "nope", ""); err == nil {
		t.Fatal("want error for unknown class")
	}
}

func TestPlanErrorRowsDoNotMatch(t *testing.T) {
	s, gs := gatesFixture(t, 6)
	// Null out Width on one row: the predicate errors there and the row
	// must simply not match, on every access path.
	setA(t, s, gs[0], "Width", domain.NullValue)
	src := ForStore(s)
	for _, where := range []string{"Width >= 0", "Length >= 0 or Width >= 0", ""} {
		runBoth(t, src, "gates", where)
	}
}

func TestPlanOnSnapshotAndDegrade(t *testing.T) {
	s, gs := gatesFixture(t, 12)
	src := ForStore(s)
	plan, err := Build(src, "gates", mustParse(t, "Width = 2"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != IndexScan {
		t.Fatalf("mode = %s", plan.Mode)
	}
	want, err := plan.Run(src)
	if err != nil {
		t.Fatal(err)
	}

	// The same plan runs against a pinned snapshot and agrees.
	sn := s.Snapshot()
	defer sn.Release()
	snSrc := ForSnapshot(sn)
	got, err := plan.Run(snSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot run = %v, store run = %v", got, want)
	}

	// Mutations after the pin are invisible to the snapshot run...
	setA(t, s, gs[2], "Width", domain.Int(2))
	got2, err := plan.Run(snSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want) {
		t.Fatalf("snapshot run moved after pin: %v", got2)
	}

	// ...and after DropIndex the plan degrades to a scan, still correct.
	if err := s.DropIndex("gates_w"); err != nil {
		t.Fatal(err)
	}
	got3, err := plan.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(src, "gates", plan.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != len(naive) {
		t.Fatalf("degraded run = %v, naive = %v", got3, naive)
	}
}

func TestPlanInheritedValuesThroughIndex(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("impls", paperschema.TypeGateImplementation); err != nil {
		t.Fatal(err)
	}
	iface := mk(t, s, paperschema.TypeGateInterface, "")
	setA(t, s, iface, "Length", domain.Int(8))
	var impls []domain.Surrogate
	for i := 0; i < 4; i++ {
		im := mk(t, s, paperschema.TypeGateImplementation, "impls")
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, im, iface); err != nil {
			t.Fatal(err)
		}
		impls = append(impls, im)
	}
	if err := s.CreateIndex("impls_len", "impls", "Length"); err != nil {
		t.Fatal(err)
	}
	src := ForStore(s)
	got, plan := runBoth(t, src, "impls", "Length = 8")
	if plan.Mode != IndexScan {
		t.Fatalf("mode = %s", plan.Mode)
	}
	if len(got) != len(impls) {
		t.Fatalf("inherited match = %v, want all %d impls", got, len(impls))
	}
	// Route probe over the same inherited attribute, sans index.
	if err := s.DropIndex("impls_len"); err != nil {
		t.Fatal(err)
	}
	got2, plan2 := runBoth(t, src, "impls", "Length = 8")
	if plan2.Mode != RouteProbe {
		t.Fatalf("mode = %s, want route-cache probe", plan2.Mode)
	}
	if len(got2) != len(impls) {
		t.Fatalf("route probe = %v", got2)
	}
}

func TestExplainText(t *testing.T) {
	s, _ := gatesFixture(t, 10)
	src := ForStore(s)

	plan, err := Build(src, "gates", mustParse(t, "Width = 2"))
	if err != nil {
		t.Fatal(err)
	}
	text := plan.Explain()
	for _, want := range []string{"index scan", `"gates_w"`, `"Width"`, "[2, 2]", "residual"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain %q missing %q", text, want)
		}
	}

	plan, err = Build(src, "gates", mustParse(t, "Length = 2"))
	if err != nil {
		t.Fatal(err)
	}
	if text := plan.Explain(); !strings.Contains(text, "route-cache probe") {
		t.Errorf("explain %q missing route-cache probe", text)
	}

	plan, err = Build(src, "gates", nil)
	if err != nil {
		t.Fatal(err)
	}
	if text := plan.Explain(); !strings.Contains(text, "class-member scan") {
		t.Errorf("explain %q missing class-member scan", text)
	}
}
