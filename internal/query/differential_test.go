package query

// Differential harness: random workloads interleaving mutations, index
// churn and queries, with every planner execution checked element for
// element against the naive interpreted full scan — on the live store and
// on a pinned snapshot. Runs in the ordinary test suite, so CI executes
// it on every push.

import (
	"fmt"
	"math/rand"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

// diffDriver mutates a store of SimpleGates ("gates") and
// GateImplementations bound to interfaces ("impls"); errors from
// rejected operations are fine.
type diffDriver struct {
	rng    *rand.Rand
	s      *object.Store
	gates  []domain.Surrogate
	impls  []domain.Surrogate
	ifaces []domain.Surrogate
}

func newDiffDriver(t *testing.T, seed int64) *diffDriver {
	t.Helper()
	s := gateStore(t)
	for _, def := range [][2]string{{"gates", paperschema.TypeSimpleGate}, {"impls", paperschema.TypeGateImplementation}} {
		if err := s.DefineClass(def[0], def[1]); err != nil {
			t.Fatal(err)
		}
	}
	return &diffDriver{rng: rand.New(rand.NewSource(seed)), s: s}
}

func (d *diffDriver) pick(pool []domain.Surrogate) domain.Surrogate {
	if len(pool) == 0 {
		return 0
	}
	return pool[d.rng.Intn(len(pool))]
}

// val makes a random attribute value; occasionally null (which unindexes),
// never NaN (unindexable by design, and NaN breaks oracle comparisons).
func (d *diffDriver) val() domain.Value {
	switch d.rng.Intn(4) {
	case 0:
		return domain.NullValue
	case 1:
		return domain.Rl(float64(d.rng.Intn(40)) / 2)
	default:
		return domain.Int(int64(d.rng.Intn(20)))
	}
}

func (d *diffDriver) step() {
	switch d.rng.Intn(12) {
	case 0:
		if g, err := d.s.NewObject(paperschema.TypeSimpleGate, "gates"); err == nil {
			d.gates = append(d.gates, g)
		}
	case 1:
		if im, err := d.s.NewObject(paperschema.TypeGateImplementation, "impls"); err == nil {
			d.impls = append(d.impls, im)
		}
	case 2:
		if f, err := d.s.NewObject(paperschema.TypeGateInterface, ""); err == nil {
			d.ifaces = append(d.ifaces, f)
		}
	case 3, 4:
		attr := []string{"Width", "Length"}[d.rng.Intn(2)]
		_ = d.s.SetAttr(d.pick(d.gates), attr, d.val())
	case 5:
		// Transmitter write: propagates to bound impls through the notifier.
		attr := []string{"Width", "Length"}[d.rng.Intn(2)]
		_ = d.s.SetAttr(d.pick(d.ifaces), attr, d.val())
	case 6:
		_, _ = d.s.Bind(paperschema.RelAllOfGateInterface, d.pick(d.impls), d.pick(d.ifaces))
	case 7:
		_ = d.s.Unbind(paperschema.RelAllOfGateInterface, d.pick(d.impls))
	case 8:
		pool := [][]domain.Surrogate{d.gates, d.impls, d.ifaces}[d.rng.Intn(3)]
		_ = d.s.Delete(d.pick(pool))
	case 9:
		cls := []string{"gates", "impls"}[d.rng.Intn(2)]
		attr := []string{"Width", "Length"}[d.rng.Intn(2)]
		_ = d.s.CreateIndex(fmt.Sprintf("ix_%s_%s", cls, attr), cls, attr)
	case 10:
		cls := []string{"gates", "impls"}[d.rng.Intn(2)]
		attr := []string{"Width", "Length"}[d.rng.Intn(2)]
		_ = d.s.DropIndex(fmt.Sprintf("ix_%s_%s", cls, attr))
	default:
		_ = d.s.SetAttr(d.pick(d.gates), "Function", domain.Sym([]string{"AND", "OR", "NAND"}[d.rng.Intn(3)]))
	}
}

// predicate generates a random query predicate from a fixed grammar:
// comparisons over Width/Length/Function with and/or/not mixtures.
func (d *diffDriver) predicate() string {
	attr := func() string { return []string{"Width", "Length"}[d.rng.Intn(2)] }
	cmp := func() string {
		ops := []string{"=", "<", "<=", ">", ">="}
		switch d.rng.Intn(4) {
		case 0: // literal on the left
			return fmt.Sprintf("%d %s %s", d.rng.Intn(20), ops[d.rng.Intn(len(ops))], attr())
		case 1: // real literal
			return fmt.Sprintf("%s %s %.1f", attr(), ops[d.rng.Intn(len(ops))], float64(d.rng.Intn(40))/2)
		case 2: // path vs path (never sargable)
			return "Width " + ops[d.rng.Intn(len(ops))] + " Length"
		default:
			return fmt.Sprintf("%s %s %d", attr(), ops[d.rng.Intn(len(ops))], d.rng.Intn(20))
		}
	}
	switch d.rng.Intn(4) {
	case 0:
		return cmp()
	case 1:
		return cmp() + " and " + cmp()
	case 2:
		return cmp() + " or " + cmp()
	default:
		return "not (" + cmp() + ")"
	}
}

// checkOne runs a single predicate through the planner and the oracle on
// one source and compares element for element.
func checkOne(t *testing.T, src Source, cls, where string, seed int64, step int) {
	t.Helper()
	got, plan, err := Run(src, cls, where)
	if err != nil {
		t.Fatalf("seed %d step %d: Run(%q, %q): %v", seed, step, cls, where, err)
	}
	e, err := expr.Parse(where)
	if err != nil {
		t.Fatalf("seed %d: parse %q: %v", seed, where, err)
	}
	want, err := Naive(src, cls, e)
	if err != nil {
		t.Fatalf("seed %d: Naive(%q, %q): %v", seed, cls, where, err)
	}
	if len(got) != len(want) {
		t.Fatalf("seed %d step %d: %q over %q via %s: planner %v, oracle %v",
			seed, step, where, cls, plan.Mode, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d step %d: %q over %q via %s: planner[%d]=%v, oracle=%v",
				seed, step, where, cls, plan.Mode, i, got[i], want[i])
		}
	}
}

func TestDifferentialPlannerVsNaive(t *testing.T) {
	for _, seed := range []int64{2, 13, 101, 1989} {
		d := newDiffDriver(t, seed)
		for i := 0; i < 300; i++ {
			d.step()
			if i%25 != 0 {
				continue
			}
			src := ForStore(d.s)
			sn := d.s.Snapshot()
			snSrc := ForSnapshot(sn)
			for q := 0; q < 6; q++ {
				where := d.predicate()
				cls := []string{"gates", "impls"}[d.rng.Intn(2)]
				checkOne(t, src, cls, where, seed, i)
				checkOne(t, snSrc, cls, where, seed, i)
			}
			sn.Release()
		}
		if bad := d.s.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("seed %d: store inconsistent after workload: %v", seed, bad)
		}
	}
}

// TestDifferentialSnapshotStability pins one snapshot, keeps mutating,
// and asserts the pinned query answer never moves while the live one
// tracks the naive oracle.
func TestDifferentialSnapshotStability(t *testing.T) {
	d := newDiffDriver(t, 7)
	for i := 0; i < 120; i++ {
		d.step()
	}
	sn := d.s.Snapshot()
	defer sn.Release()
	snSrc := ForSnapshot(sn)
	const where = "Width >= 5 and Width <= 12"
	pinned, _, err := Run(snSrc, "gates", where)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		d.step()
		if i%20 != 0 {
			continue
		}
		again, _, err := Run(snSrc, "gates", where)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(pinned) {
			t.Fatalf("step %d: pinned answer moved: %v -> %v", i, pinned, again)
		}
		for j := range again {
			if again[j] != pinned[j] {
				t.Fatalf("step %d: pinned answer moved at %d", i, j)
			}
		}
		checkOne(t, ForStore(d.s), "gates", where, 7, i)
	}
}
