package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
)

// Mode identifies the access path a plan uses.
type Mode int

// Access paths, cheapest-first when applicable.
const (
	// FullScan evaluates the predicate on every class member.
	FullScan Mode = iota
	// IndexScan probes a secondary index for candidates, then re-applies
	// the full predicate to each (bounds are widened to a superset).
	IndexScan
	// RouteProbe groups members by the inheritance-chain owner of the
	// predicate's single attribute and evaluates once per distinct owner.
	RouteProbe
)

func (m Mode) String() string {
	switch m {
	case IndexScan:
		return "index scan"
	case RouteProbe:
		return "route-cache probe"
	}
	return "class-member scan"
}

// Plan is a costed access path for one query. Build it once, run it
// against the same source (or an equivalent one: a plan built on the
// store runs on a snapshot and vice versa — Run degrades to a scan if
// the chosen index is not usable there).
type Plan struct {
	Class string
	Where expr.Expr // nil lists the whole extent

	Mode  Mode
	Index string       // IndexScan: chosen index name
	Attr  string       // IndexScan / RouteProbe: the attribute driving the path
	Lo    domain.Value // IndexScan: inclusive lower bound, nil = open
	Hi    domain.Value // IndexScan: inclusive upper bound, nil = open

	EstCandidates int // IndexScan: estimated candidates; else extent size
	ClassSize     int

	pred  *expr.Compiled
	notes []string
}

func (p *Plan) note(format string, args ...any) {
	p.notes = append(p.notes, fmt.Sprintf(format, args...))
}

// sarg is one sargable conjunct: attr ⋈ literal with ⋈ a comparison,
// normalized to an inclusive [lo, hi] range. Strict bounds are widened
// (the residual predicate re-cuts them), which also absolves the index's
// float64 key collapse from producing false negatives on huge integers.
type sarg struct {
	attr string
	op   string
	lo   domain.Value
	hi   domain.Value
}

// conjuncts flattens the top-level and-tree.
func conjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(expr.Bin); ok && b.Op == "and" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// sargOf extracts a sargable range from one conjunct: a comparison
// between a bare single-segment attribute path and a literal, either way
// round. Bare symbols (Status = ACTIVE) parse as paths, not literals,
// and a name can resolve as an attribute on some members — treating it
// as a symbol constant could miss rows, so only true literals qualify.
func sargOf(e expr.Expr) *sarg {
	b, ok := e.(expr.Bin)
	if !ok {
		return nil
	}
	op := b.Op
	var attr string
	var v domain.Value
	if p, pok := b.L.(expr.Path); pok && len(p.Segs) == 1 {
		l, lok := b.R.(expr.Lit)
		if !lok {
			return nil
		}
		attr, v = p.Segs[0], l.V
	} else if p, pok := b.R.(expr.Path); pok && len(p.Segs) == 1 {
		l, lok := b.L.(expr.Lit)
		if !lok {
			return nil
		}
		attr, v = p.Segs[0], l.V
		op = flip(op)
	} else {
		return nil
	}
	if !indexableLit(v) {
		return nil
	}
	switch op {
	case "=":
		return &sarg{attr: attr, op: op, lo: v, hi: v}
	case "<", "<=":
		return &sarg{attr: attr, op: op, hi: v}
	case ">", ">=":
		return &sarg{attr: attr, op: op, lo: v}
	}
	return nil
}

// flip mirrors a comparison when the literal is on the left
// (4 < Width ≡ Width > 4).
func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// indexableLit reports whether a literal can serve as an index bound:
// the scalar kinds the index keys on. NaN is rejected (it compares equal
// to nothing the index can find).
func indexableLit(v domain.Value) bool {
	switch x := v.(type) {
	case domain.Int, domain.Str, domain.Bool, domain.Sym:
		return true
	case domain.Rl:
		return !math.IsNaN(float64(x))
	}
	return false
}

// Build plans a query over className. It prefers an index probe on the
// most selective sargable conjunct, falls back to the route-cache probe
// for single-attribute predicates on sources that resolve inheritance
// chains, and otherwise scans the extent.
func Build(src Source, className string, where expr.Expr) (*Plan, error) {
	size := src.ClassSize(className)
	if size < 0 {
		return nil, fmt.Errorf("query: no class %q", className)
	}
	p := &Plan{Class: className, Where: where, Mode: FullScan, ClassSize: size, EstCandidates: size}
	if where == nil {
		return p, nil
	}
	p.pred = expr.Compile(where)

	idxByAttr := make(map[string]object.IndexDef)
	for _, d := range src.Indexes() {
		if d.ClassName == className {
			idxByAttr[d.AttrName] = d
		}
	}
	var best *sarg
	bestEst := -1
	var bestIdx object.IndexDef
	for _, c := range conjuncts(where) {
		sg := sargOf(c)
		if sg == nil {
			continue
		}
		d, ok := idxByAttr[sg.attr]
		if !ok {
			p.note("conjunct %s is sargable but attribute %q has no index", c, sg.attr)
			continue
		}
		est := src.IndexEstimate(className, sg.attr, sg.lo, sg.hi)
		if est < 0 {
			continue
		}
		if bestEst < 0 || est < bestEst {
			best, bestEst, bestIdx = sg, est, d
		} else {
			p.note("index %q on %q estimated %d candidates, beaten", d.Name, sg.attr, est)
		}
	}
	if best != nil {
		p.Mode = IndexScan
		p.Index = bestIdx.Name
		p.Attr = best.attr
		p.Lo, p.Hi = best.lo, best.hi
		p.EstCandidates = bestEst
		return p, nil
	}

	if roots := expr.Roots(where); len(roots) == 1 {
		if _, ok := src.(ChainSource); ok {
			for r := range roots {
				p.Attr = r
			}
			p.Mode = RouteProbe
			return p, nil
		}
		p.note("single-attribute predicate, but source resolves no inheritance chains")
	}
	return p, nil
}

// Run executes the plan. Rows whose predicate cannot be evaluated
// (unknown names, type-mismatched comparisons, nulls reaching a
// comparison) do not match — the same folding constraints use. Results
// are sorted ascending by surrogate.
func (p *Plan) Run(src Source) ([]domain.Surrogate, error) {
	if p.Mode == IndexScan {
		if cands, ok := src.IndexProbe(p.Class, p.Attr, p.Lo, p.Hi); ok {
			return p.filter(src, cands), nil
		}
		// The index was dropped (or never covered this source's sequence
		// point): degrade to a scan rather than fail.
	}
	members, err := src.ClassMembers(p.Class)
	if err != nil {
		return nil, err
	}
	if p.Where == nil {
		out := append([]domain.Surrogate(nil), members...)
		sortSurs(out)
		return out, nil
	}
	if p.Mode == RouteProbe {
		if cs, ok := src.(ChainSource); ok {
			return p.routeProbe(src, cs, members), nil
		}
	}
	return p.filter(src, members), nil
}

func (p *Plan) filter(src Source, surs []domain.Surrogate) []domain.Surrogate {
	out := make([]domain.Surrogate, 0, len(surs))
	for _, sur := range surs {
		if ok, err := p.pred.EvalBool(src.Env(sur)); err == nil && ok {
			out = append(out, sur)
		}
	}
	sortSurs(out)
	return out
}

// routeProbe evaluates the single-attribute predicate once per distinct
// inheritance-chain owner: members inheriting the attribute from the
// same transmitter share its value, so they share the verdict. Members
// owning the attribute locally are their own chain end and evaluate
// individually — the worst case is a scan plus a cached chain walk per
// row, the best case one evaluation per transmitter.
func (p *Plan) routeProbe(src Source, cs ChainSource, members []domain.Surrogate) []domain.Surrogate {
	verdict := make(map[domain.Surrogate]bool)
	out := make([]domain.Surrogate, 0, len(members))
	for _, m := range members {
		owner, ok := cs.ChainOwner(m, p.Attr)
		if !ok || owner == 0 {
			owner = m
		}
		v, seen := verdict[owner]
		if !seen {
			got, err := p.pred.EvalBool(src.Env(owner))
			v = err == nil && got
			verdict[owner] = v
		}
		if v {
			out = append(out, m)
		}
	}
	sortSurs(out)
	return out
}

func sortSurs(s []domain.Surrogate) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Explain renders the plan, its estimates and the alternatives the
// planner rejected.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query over class %q", p.Class)
	if p.Where != nil {
		fmt.Fprintf(&b, " where %s", p.Where)
	}
	fmt.Fprintf(&b, " (%d members)\n", p.ClassSize)
	switch p.Mode {
	case IndexScan:
		fmt.Fprintf(&b, "-> index scan via %q on attribute %q, range %s, est. %d candidate(s) of %d\n",
			p.Index, p.Attr, rangeStr(p.Lo, p.Hi), p.EstCandidates, p.ClassSize)
		b.WriteString("   residual: full predicate re-applied to each candidate\n")
	case RouteProbe:
		fmt.Fprintf(&b, "-> route-cache probe on attribute %q: group %d member(s) by inheritance-chain owner, evaluate once per owner\n",
			p.Attr, p.ClassSize)
	default:
		fmt.Fprintf(&b, "-> class-member scan: evaluate predicate on all %d member(s)\n", p.ClassSize)
	}
	for _, n := range p.notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

func rangeStr(lo, hi domain.Value) string {
	l, h := "..", ".."
	if lo != nil {
		l = lo.String()
	}
	if hi != nil {
		h = hi.String()
	}
	return "[" + l + ", " + h + "]"
}

// Run parses, plans and executes a query in one call, returning the
// matches and the plan (for EXPLAIN-after-the-fact). An empty predicate
// lists the whole extent.
func Run(src Source, className, where string) ([]domain.Surrogate, *Plan, error) {
	var e expr.Expr
	if strings.TrimSpace(where) != "" {
		parsed, err := expr.Parse(where)
		if err != nil {
			return nil, nil, err
		}
		e = parsed
	}
	p, err := Build(src, className, e)
	if err != nil {
		return nil, nil, err
	}
	out, err := p.Run(src)
	return out, p, err
}

// Naive is the planner's differential oracle: it interprets the
// predicate (no compilation, no index, no route grouping) over every
// class member. Run must agree with it element for element on any
// source.
func Naive(src Source, className string, where expr.Expr) ([]domain.Surrogate, error) {
	members, err := src.ClassMembers(className)
	if err != nil {
		return nil, err
	}
	out := make([]domain.Surrogate, 0, len(members))
	for _, m := range members {
		if where == nil {
			out = append(out, m)
			continue
		}
		if ok, err := expr.EvalBool(where, src.Env(m)); err == nil && ok {
			out = append(out, m)
		}
	}
	sortSurs(out)
	return out, nil
}
