// Package query plans and executes predicate queries over database-level
// class extents. A query is a class name plus a constraint-language
// predicate; the planner chooses between a secondary-index probe, an
// adaptive route-cache probe and a plain class-member scan, and EXPLAIN
// renders the choice with its cost estimates.
package query

import (
	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/object"
)

// Source abstracts the two things a query can run against: the live
// store and a pinned snapshot. Both expose class extents, per-object
// expression environments and the index probes the planner costs with.
type Source interface {
	// ClassMembers returns the extent of a database-level class.
	ClassMembers(name string) ([]domain.Surrogate, error)
	// ClassSize returns the extent size, or -1 if no such class.
	ClassSize(name string) int
	// Env returns an expr.Env evaluating names against one object.
	Env(sur domain.Surrogate) expr.Env
	// Indexes lists the secondary-index definitions usable here.
	Indexes() []object.IndexDef
	// IndexProbe returns candidate members whose indexed attribute lies
	// in [lo, hi] (nil = open; bounds inclusive). Candidates are a
	// superset of the true matches; the runner re-applies the predicate.
	IndexProbe(className, attrName string, lo, hi domain.Value) ([]domain.Surrogate, bool)
	// IndexEstimate counts candidates in range, or -1 if no usable index.
	IndexEstimate(className, attrName string, lo, hi domain.Value) int
}

// ChainSource is the optional interface behind the route-cache probe: it
// resolves which object actually owns the value an attribute resolves to
// on a member (the end of its inheritance chain). Members sharing an
// owner share the value, so a predicate over that one attribute needs
// evaluating only once per distinct owner.
type ChainSource interface {
	ChainOwner(sur domain.Surrogate, member string) (domain.Surrogate, bool)
}

// ---- live store ----

type storeSource struct{ s *object.Store }

// ForStore adapts the live store as a query source. The adapter holds no
// locks across rows: every row evaluation takes (and releases) its
// object's shard read lock, so concurrent writers are never blocked for
// the duration of a query.
func ForStore(s *object.Store) Source { return storeSource{s: s} }

func (x storeSource) ClassMembers(name string) ([]domain.Surrogate, error) { return x.s.Class(name) }
func (x storeSource) ClassSize(name string) int                            { return x.s.ClassSize(name) }
func (x storeSource) Env(sur domain.Surrogate) expr.Env                    { return x.s.Env(sur) }
func (x storeSource) Indexes() []object.IndexDef                           { return x.s.Indexes() }

func (x storeSource) IndexProbe(className, attrName string, lo, hi domain.Value) ([]domain.Surrogate, bool) {
	return x.s.IndexProbe(className, attrName, lo, hi)
}

func (x storeSource) IndexEstimate(className, attrName string, lo, hi domain.Value) int {
	return x.s.IndexEstimate(className, attrName, lo, hi)
}

func (x storeSource) ChainOwner(sur domain.Surrogate, member string) (domain.Surrogate, bool) {
	chain, err := x.s.ResolveChain(sur, member)
	if err != nil || len(chain) == 0 {
		return 0, false
	}
	return chain[len(chain)-1], true
}

// ---- pinned snapshot ----

type snapSource struct{ sn *object.Snapshot }

// ForSnapshot adapts a pinned snapshot as a query source: extents,
// attribute values and index probes are all served as of the pin's
// sequence point, so a query sees one consistent state no matter how
// long it runs or what writers do meanwhile.
func ForSnapshot(sn *object.Snapshot) Source { return snapSource{sn: sn} }

func (x snapSource) ClassMembers(name string) ([]domain.Surrogate, error) { return x.sn.Class(name) }

func (x snapSource) ClassSize(name string) int {
	ms, err := x.sn.Class(name)
	if err != nil {
		return -1
	}
	return len(ms)
}

func (x snapSource) Env(sur domain.Surrogate) expr.Env { return snapEnv{sn: x.sn, sur: sur} }
func (x snapSource) Indexes() []object.IndexDef        { return x.sn.Indexes() }

func (x snapSource) IndexProbe(className, attrName string, lo, hi domain.Value) ([]domain.Surrogate, bool) {
	return x.sn.IndexProbe(className, attrName, lo, hi)
}

func (x snapSource) IndexEstimate(className, attrName string, lo, hi domain.Value) int {
	return x.sn.IndexEstimate(className, attrName, lo, hi)
}

// snapEnv implements expr.Env over a pinned snapshot, mirroring the
// store's env: attributes resolve with inheritance as of the pin,
// collections resolve local subclasses and set/list attributes.
type snapEnv struct {
	sn  *object.Snapshot
	sur domain.Surrogate
}

func (e snapEnv) Lookup(name string) (domain.Value, bool) {
	v, err := e.sn.GetAttr(e.sur, name)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (e snapEnv) Collection(name string) ([]domain.Value, bool) {
	if ms, err := e.sn.Members(e.sur, name); err == nil {
		out := make([]domain.Value, len(ms))
		for i, m := range ms {
			out[i] = domain.Ref(m)
		}
		return out, true
	}
	if v, err := e.sn.GetAttr(e.sur, name); err == nil {
		switch x := v.(type) {
		case *domain.Set:
			return x.Elems(), true
		case *domain.List:
			return x.Elems(), true
		}
	}
	return nil, false
}

func (e snapEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	return snapEnv{sn: e.sn, sur: domain.Surrogate(ref)}.Lookup(attr)
}

func (e snapEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	return snapEnv{sn: e.sn, sur: domain.Surrogate(ref)}.Collection(name)
}
