package repl

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cadcam/internal/fault"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// ShipperConfig tunes a primary-side shipper. Poll is the idle interval
// between chain scans when the follower is caught up (default 2ms);
// Clock is for tests.
type ShipperConfig struct {
	Poll  time.Duration
	Clock Clock
}

// ShipperStats counts one shipper's traffic across all follower
// sessions.
type ShipperStats struct {
	Conns          uint64 `json:"conns"`
	BatchesShipped uint64 `json:"batches_shipped"`
	RecordsShipped uint64 `json:"records_shipped"`
	Snapshots      uint64 `json:"snapshots"`
	Heartbeats     uint64 `json:"heartbeats"`
	SendErrors     uint64 `json:"send_errors"`
	LastError      string `json:"last_error,omitempty"`
}

// Shipper tails a database directory's journal chain and streams sealed
// batches to followers. It reads strictly through the chain's shared
// frame reader and never writes, so it is safe to run against a live
// primary appending to and checkpointing the same directory. One
// shipper serves any number of concurrent follower sessions.
type Shipper struct {
	dir   string
	poll  time.Duration
	clock Clock

	mu    sync.Mutex
	stats ShipperStats
	err   error // last session-fatal error (clean follower hang-ups excluded)
}

// NewShipper builds a shipper over a database directory.
func NewShipper(dir string, cfg ShipperConfig) *Shipper {
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	return &Shipper{dir: dir, poll: cfg.Poll, clock: cfg.Clock}
}

// Dir returns the directory the shipper tails.
func (s *Shipper) Dir() string { return s.dir }

// Stats returns a snapshot of the shipper's counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dial opens an in-process connection served by this shipper — the
// same-process transport. The returned Conn is the follower's end.
func (s *Shipper) Dial() (Conn, error) {
	client, server := Pipe()
	go s.Serve(server)
	return client, nil
}

// Dialer returns Dial as a Dialer for FollowerConfig.
func (s *Shipper) Dialer() Dialer { return s.Dial }

// Serve runs one follower session on conn until the connection closes
// or fails: handshake, optional checkpoint resync, then stream sealed
// batches as the chain grows, heartbeating when idle. Blocks; run it in
// a goroutine per connection (Dial does).
func (s *Shipper) Serve(conn Conn) error {
	defer conn.Close()
	s.mu.Lock()
	s.stats.Conns++
	s.mu.Unlock()

	b, err := conn.Recv()
	if err != nil {
		if isClosed(err) {
			return nil
		}
		return s.fail("handshake", err)
	}
	hello, err := DecodeFrame(b)
	if err != nil || hello.Kind != KindHello {
		if err == nil {
			err = ErrFrame
		}
		return s.fail("handshake", err)
	}

	pos := wal.ChainPos{Epoch: hello.Epoch, Offset: hello.Offset}
	seq := hello.Seq // stream seq of the last record the follower applied
	resync := hello.Flags&FlagResync != 0
	if !resync && !s.validPos(pos) {
		resync = true
	}

	for {
		// Evaluated once per chain scan, so a countdown can force the
		// resync path at any depth into the stream, not just at Hello.
		if err := fpResyncGap.Hit(); err != nil {
			resync = true
		}
		if resync {
			if err := s.sendResync(conn, &pos, &seq); err != nil {
				if errors.Is(err, wal.ErrChainGap) {
					continue // checkpoint raced a GC; reload and retry
				}
				if isClosed(err) {
					return nil
				}
				return s.fail("resync", err)
			}
			resync = false
		}
		frames, npos, err := wal.TailFrames(s.dir, pos)
		if errors.Is(err, wal.ErrChainGap) {
			resync = true
			continue
		}
		if err != nil {
			return s.fail("ship", err)
		}
		// Sealed as of this scan: lets the follower measure its lag
		// while still mid-catch-up.
		sealed := seq
		for _, fr := range frames {
			sealed += uint64(len(fr.Records))
		}
		for _, fr := range frames {
			recs := fr.Records
			n := uint64(len(recs))
			if a := fpSendPartial.Fire(); a != nil {
				// Ship only half the batch but advance the stream
				// sequence by the full count — the loss the CRC cannot
				// see, caught by the follower's seq-gap check.
				recs = recs[:len(recs)/2]
				if a.Kind == fault.KindExit {
					out := Frame{Kind: KindBatch, Epoch: fr.Epoch, Offset: fr.Offset,
						End: fr.End, Seq: seq + 1, Sealed: sealed, Records: recs}
					s.send(conn, &out)
					fault.Crash(*a)
				}
			}
			out := Frame{Kind: KindBatch, Epoch: fr.Epoch, Offset: fr.Offset,
				End: fr.End, Seq: seq + 1, Sealed: sealed, Records: recs}
			if err := s.send(conn, &out); err != nil {
				if isClosed(err) {
					return nil
				}
				return s.fail("ship", err)
			}
			seq += n
			s.mu.Lock()
			s.stats.BatchesShipped++
			s.stats.RecordsShipped += uint64(len(recs))
			s.mu.Unlock()
		}
		pos = npos
		if len(frames) == 0 {
			hb := Frame{Kind: KindHeartbeat, Seq: seq, Sealed: seq}
			if err := s.send(conn, &hb); err != nil {
				if isClosed(err) {
					return nil
				}
				return s.fail("ship", err)
			}
			s.mu.Lock()
			s.stats.Heartbeats++
			s.mu.Unlock()
			s.clock.Sleep(s.poll)
		}
	}
}

// validPos reports whether the follower's resume position still exists
// in the chain; a vanished epoch or an offset beyond the file means the
// position was garbage-collected or the directory rebuilt.
func (s *Shipper) validPos(pos wal.ChainPos) bool {
	st, err := os.Stat(filepath.Join(s.dir, wal.WALFilename(pos.Epoch)))
	if err != nil {
		return pos.Epoch == 0 && pos.Offset == 0 // fresh primary, fresh follower
	}
	return st.Size() >= pos.Offset
}

// sendResync ships the newest checkpoint state (or a reset for a
// never-checkpointed primary) and rebases the session to replay the
// chain from that checkpoint's epoch with a fresh stream sequence.
func (s *Shipper) sendResync(conn Conn, pos *wal.ChainPos, seq *uint64) error {
	ds, err := wal.LoadDirState(s.dir, 0, false)
	if err != nil {
		return err
	}
	var fr Frame
	if ds.Store == nil {
		fr = Frame{Kind: KindReset}
		*pos = wal.ChainPos{}
	} else {
		vs := ds.Versions
		if vs == nil {
			vs = &version.ManagerState{}
		}
		fr = Frame{Kind: KindSnapshot, Epoch: ds.StateEpoch, Blob: wal.EncodeSnapshot(ds.Store, vs)}
		*pos = wal.ChainPos{Epoch: ds.StateEpoch}
	}
	*seq = 0
	if err := s.send(conn, &fr); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Snapshots++
	s.mu.Unlock()
	return nil
}

// send pushes one frame through the connection, with the torn-write and
// connection-drop failpoints on the edge.
func (s *Shipper) send(conn Conn, fr *Frame) error {
	if err := fpConnDrop.Hit(); err != nil {
		conn.Close()
		return err
	}
	b := fr.Encode()
	if a := fpSendTorn.Fire(); a != nil {
		conn.Send(b[:len(b)*2/3])
		if a.Kind == fault.KindExit {
			fault.Crash(*a)
		}
		if a.Err != nil {
			return a.Err
		}
		return errors.New("repl: torn send")
	}
	return conn.Send(b)
}

// fail records a session-fatal error in the stats and returns it typed.
func (s *Shipper) fail(op string, err error) error {
	e := &Error{Op: op, Err: err}
	s.mu.Lock()
	s.stats.SendErrors++
	s.stats.LastError = e.Error()
	s.err = e
	s.mu.Unlock()
	return e
}

// Err returns the most recent session-fatal shipping error (typed
// *Error), nil when every session has ended cleanly. A failed session
// does not stop the shipper — followers reconnect and recover — so this
// is a health signal, not a terminal state.
func (s *Shipper) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
