package repl

import (
	"errors"
	"testing"
	"time"
)

// fakeClock advances only when slept on, making the retry schedule
// fully deterministic.
type fakeClock struct {
	now   time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time { return c.now }
func (c *fakeClock) Sleep(d time.Duration) {
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
}

// TestBackoffSchedule: delays double from Base, each jittered into
// [nominal/2, nominal], and stop growing at Cap.
func TestBackoffSchedule(t *testing.T) {
	clock := newFakeClock()
	b := NewBackoff(BackoffConfig{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 1}, clock)
	nominals := []time.Duration{10, 20, 40, 80, 80, 80} // ms
	for i, nom := range nominals {
		d, err := b.Next()
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		nomd := nom * time.Millisecond
		if d < nomd/2 || d > nomd {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i, d, nomd/2, nomd)
		}
	}
}

// TestBackoffJitterBounds: jitter stays in [d/2, d] and actually varies.
func TestBackoffJitterBounds(t *testing.T) {
	clock := newFakeClock()
	b := NewBackoff(BackoffConfig{Base: 100 * time.Millisecond, Cap: 100 * time.Millisecond, Seed: 7}, clock)
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("draw %d: %v outside [50ms, 100ms]", i, d)
		}
		seen[d] = true
		b.Reset()
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct delays in 200 draws", len(seen))
	}
}

// TestBackoffDeadline: continuous failure past the deadline yields
// ErrDeadline; the very first failure never does.
func TestBackoffDeadline(t *testing.T) {
	clock := newFakeClock()
	b := NewBackoff(BackoffConfig{Base: 10 * time.Millisecond, Cap: time.Second, Deadline: 100 * time.Millisecond, Seed: 3}, clock)
	if _, err := b.Next(); err != nil {
		t.Fatalf("first failure must not trip the deadline: %v", err)
	}
	clock.Sleep(99 * time.Millisecond)
	if _, err := b.Next(); err != nil {
		t.Fatalf("inside deadline: %v", err)
	}
	clock.Sleep(2 * time.Millisecond) // 101ms since first failure
	if _, err := b.Next(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("past deadline: got %v, want ErrDeadline", err)
	}
}

// TestBackoffResetOnSuccess: a success returns the schedule to the base
// delay and rearms the deadline clock.
func TestBackoffResetOnSuccess(t *testing.T) {
	clock := newFakeClock()
	b := NewBackoff(BackoffConfig{Base: 10 * time.Millisecond, Cap: time.Second, Deadline: 50 * time.Millisecond, Seed: 5}, clock)
	for i := 0; i < 3; i++ {
		if _, err := b.Next(); err != nil {
			t.Fatal(err)
		}
	}
	clock.Sleep(49 * time.Millisecond)
	b.Reset()
	clock.Sleep(10 * time.Second) // long healthy stretch; deadline must not fire
	d, err := b.Next()
	if err != nil {
		t.Fatalf("deadline not rearmed by Reset: %v", err)
	}
	if d > 10*time.Millisecond {
		t.Errorf("post-reset delay %v, want back at base (<= 10ms)", d)
	}
	// And it escalates again from there.
	d2, err := b.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d2 > 20*time.Millisecond || d2 < 10*time.Millisecond {
		t.Errorf("second post-reset delay %v, want (10ms, 20ms]", d2)
	}
}

// TestBackoffSleepUsesClock: Sleep waits out exactly the delays Next
// produces, on the injected clock.
func TestBackoffSleepUsesClock(t *testing.T) {
	clock := newFakeClock()
	b := NewBackoff(BackoffConfig{Base: 8 * time.Millisecond, Cap: 8 * time.Millisecond, Seed: 2}, clock)
	for i := 0; i < 4; i++ {
		if err := b.Sleep(); err != nil {
			t.Fatal(err)
		}
	}
	if len(clock.slept) != 4 {
		t.Fatalf("slept %d times, want 4", len(clock.slept))
	}
	for i, d := range clock.slept {
		if d < 4*time.Millisecond || d > 8*time.Millisecond {
			t.Errorf("sleep %d: %v outside [4ms, 8ms]", i, d)
		}
	}
}

// TestBackoffDefaults: zero config gets the documented defaults and a
// cap below base is raised to base.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(BackoffConfig{Seed: 9}, newFakeClock())
	if b.cfg.Base != DefaultBackoffBase || b.cfg.Cap != DefaultBackoffCap {
		t.Errorf("defaults: base %v cap %v", b.cfg.Base, b.cfg.Cap)
	}
	b2 := NewBackoff(BackoffConfig{Base: time.Second, Cap: time.Millisecond, Seed: 9}, newFakeClock())
	if b2.cfg.Cap != time.Second {
		t.Errorf("cap below base not raised: %v", b2.cfg.Cap)
	}
}
