package repl

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func sampleFrames() []*Frame {
	return []*Frame{
		{Kind: KindHello, Epoch: 3, Offset: 4096, Seq: 17},
		{Kind: KindHello, Flags: FlagResync},
		{Kind: KindBatch, Epoch: 2, Offset: 128, End: 512, Seq: 9, Sealed: 40,
			Records: [][]byte{[]byte("alpha"), {}, []byte("gamma")}},
		{Kind: KindSnapshot, Epoch: 5, Blob: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: KindReset},
		{Kind: KindHeartbeat, Seq: 99, Sealed: 99},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		got, err := DecodeFrame(f.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if got.Kind != f.Kind || got.Flags != f.Flags || got.Epoch != f.Epoch ||
			got.Offset != f.Offset || got.End != f.End || got.Seq != f.Seq || got.Sealed != f.Sealed {
			t.Errorf("header mismatch: %+v vs %+v", got, f)
		}
		if len(got.Records) != len(f.Records) {
			t.Fatalf("record count %d vs %d", len(got.Records), len(f.Records))
		}
		for i := range f.Records {
			if !bytes.Equal(got.Records[i], f.Records[i]) {
				t.Errorf("record %d mismatch", i)
			}
		}
		if !bytes.Equal(got.Blob, f.Blob) {
			t.Errorf("blob mismatch")
		}
	}
}

// TestFrameDecodeRejectsCorruption: any single flipped byte must fail
// the CRC — a torn or damaged transport write can never be applied.
func TestFrameDecodeRejectsCorruption(t *testing.T) {
	b := (&Frame{Kind: KindBatch, Seq: 1, Sealed: 2,
		Records: [][]byte{[]byte("payload-one"), []byte("payload-two")}}).Encode()
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x40
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeFrame(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeFrame(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	// Trailing garbage past the declared length is also a framing error.
	if _, err := DecodeFrame(append(append([]byte(nil), b...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestFrameDecodeBoundsRecordCount: a frame whose CRC is valid but
// whose record count is absurd must be rejected before allocation.
func TestFrameDecodeBoundsRecordCount(t *testing.T) {
	payload := []byte{KindBatch, 0}
	for i := 0; i < 5; i++ {
		payload = binary.AppendUvarint(payload, 0)
	}
	payload = binary.AppendUvarint(payload, maxFrameRecords+1)
	b := frame(payload)
	if _, err := DecodeFrame(b); err == nil {
		t.Fatal("absurd record count accepted")
	}
}

// frame wraps a payload in a valid CRC header (for adversarial tests
// where the payload itself is the attack).
func frame(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func TestFrameUnknownKind(t *testing.T) {
	payload := []byte{9, 0}
	for i := 0; i < 5; i++ {
		payload = binary.AppendUvarint(payload, 0)
	}
	payload = binary.AppendUvarint(payload, 0)
	payload = binary.AppendUvarint(payload, 0)
	if _, err := DecodeFrame(frame(payload)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// FuzzReplFrameDecode: the decoder must never panic, and anything it
// accepts must re-encode to a decodable, identical frame.
func FuzzReplFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(fr.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xF5, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		again, err := DecodeFrame(fr.Encode())
		if err != nil {
			t.Fatalf("accepted frame does not round-trip: %v", err)
		}
		if again.Kind != fr.Kind || again.Seq != fr.Seq || len(again.Records) != len(fr.Records) ||
			!bytes.Equal(again.Blob, fr.Blob) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", again, fr)
		}
	})
}
