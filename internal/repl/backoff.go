package repl

import (
	"errors"
	"math/rand"
	"time"
)

// Clock abstracts time so the retry schedule is testable against a fake
// clock; production code uses the real one.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// ErrDeadline reports that retries have failed continuously for longer
// than the configured deadline; the caller gives up rather than
// retrying forever.
var ErrDeadline = errors.New("repl: retry deadline exceeded")

// BackoffConfig shapes the retry schedule: delays start at Base, double
// each consecutive failure, and cap at Cap, each jittered uniformly
// into [d/2, d] so a fleet of followers does not reconnect in
// lockstep. Deadline bounds how long continuous failure is tolerated,
// measured from the first failure since the last Reset; zero retries
// forever. Seed fixes the jitter stream for deterministic tests.
type BackoffConfig struct {
	Base     time.Duration
	Cap      time.Duration
	Deadline time.Duration
	Seed     int64
}

// DefaultBackoff is the schedule used when a config leaves Base/Cap
// zero: 5ms doubling to a 1s cap.
const (
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffCap  = time.Second
)

// Backoff produces the retry delays. Not safe for concurrent use; each
// retry loop owns one.
type Backoff struct {
	cfg     BackoffConfig
	clock   Clock
	rng     *rand.Rand
	attempt int
	started bool
	start   time.Time
}

// NewBackoff builds a schedule from cfg, filling zero fields with the
// defaults. A nil clock means the real one.
func NewBackoff(cfg BackoffConfig, clock Clock) *Backoff {
	if cfg.Base <= 0 {
		cfg.Base = DefaultBackoffBase
	}
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultBackoffCap
	}
	if cfg.Cap < cfg.Base {
		cfg.Cap = cfg.Base
	}
	if clock == nil {
		clock = realClock{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{cfg: cfg, clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next attempt, or
// ErrDeadline once continuous failure has outlived the deadline. The
// first call after a Reset starts the deadline clock and always
// returns a delay — a single failure never trips the deadline.
func (b *Backoff) Next() (time.Duration, error) {
	now := b.clock.Now()
	if !b.started {
		b.started = true
		b.start = now
	} else if b.cfg.Deadline > 0 && now.Sub(b.start) >= b.cfg.Deadline {
		return 0, ErrDeadline
	}
	d := b.cfg.Cap
	if shift := uint(b.attempt); shift < 30 {
		if base := b.cfg.Base << shift; base < b.cfg.Cap {
			d = base
		}
	}
	b.attempt++
	// Jitter into [d/2, d].
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1)), nil
}

// Sleep waits out the next delay on the backoff's clock.
func (b *Backoff) Sleep() error {
	d, err := b.Next()
	if err != nil {
		return err
	}
	b.clock.Sleep(d)
	return nil
}

// Reset reports success: the schedule returns to the base delay and the
// deadline clock rearms.
func (b *Backoff) Reset() {
	b.attempt = 0
	b.started = false
}
