package repl

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame kinds. Hello opens a session (follower → shipper, carrying the
// resume position); everything else flows shipper → follower.
const (
	KindHello     byte = 1 // follower's resume position and applied seq
	KindBatch     byte = 2 // one sealed journal frame's records
	KindSnapshot  byte = 3 // full checkpoint state (resync)
	KindReset     byte = 4 // resync of a primary with no checkpoint: start empty
	KindHeartbeat byte = 5 // idle keep-alive carrying the sealed seq
)

// FlagResync on a Hello asks the shipper to ignore the position and
// start over from its newest checkpoint.
const FlagResync byte = 1

// frameHeader is the CRC frame header every message carries — the same
// 4-byte length + 4-byte CRC32-IEEE layout as the on-disk journal, so a
// torn or corrupted transport write is detected exactly like a torn
// journal tail.
const frameHeader = 8

// maxFrameRecords bounds the record count a decoder will allocate for,
// keeping a corrupt or adversarial length field from ballooning memory.
const maxFrameRecords = 1 << 20

// ErrFrame reports a transport message that failed CRC or structural
// validation.
var ErrFrame = errors.New("repl: corrupt frame")

// Frame is one replication message.
//
// For a Batch, Epoch/Offset/End locate the sealed journal frame in the
// primary's chain (the follower resumes from End), Seq is the stream
// sequence of the batch's first record — the follower's applied count
// plus one when nothing was lost — and Sealed is the stream sequence of
// the newest record the shipper has scanned, so the follower can
// measure its lag mid-catch-up. A Hello reuses Epoch/Offset/Seq as the
// resume position and applied count. A Snapshot carries the encoded
// checkpoint state in Blob with Epoch naming the checkpoint epoch.
type Frame struct {
	Kind    byte
	Flags   byte
	Epoch   uint64
	Offset  int64
	End     int64
	Seq     uint64
	Sealed  uint64
	Records [][]byte
	Blob    []byte
}

// Encode serializes the frame: CRC header, then
// kind flags uvarint(epoch offset end seq sealed)
// uvarint(count){uvarint(len) bytes}* uvarint(bloblen) blob.
func (f *Frame) Encode() []byte {
	payload := make([]byte, 0, 64+len(f.Blob))
	payload = append(payload, f.Kind, f.Flags)
	payload = binary.AppendUvarint(payload, f.Epoch)
	payload = binary.AppendUvarint(payload, uint64(f.Offset))
	payload = binary.AppendUvarint(payload, uint64(f.End))
	payload = binary.AppendUvarint(payload, f.Seq)
	payload = binary.AppendUvarint(payload, f.Sealed)
	payload = binary.AppendUvarint(payload, uint64(len(f.Records)))
	for _, r := range f.Records {
		payload = binary.AppendUvarint(payload, uint64(len(r)))
		payload = append(payload, r...)
	}
	payload = binary.AppendUvarint(payload, uint64(len(f.Blob)))
	payload = append(payload, f.Blob...)

	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeFrame parses and CRC-checks one encoded frame. Any truncation,
// checksum mismatch, length overrun or unknown kind yields ErrFrame —
// the receiver drops the connection and resumes from its last applied
// position instead of guessing.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < frameHeader {
		return nil, ErrFrame
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if uint64(length) != uint64(len(b)-frameHeader) {
		return nil, ErrFrame
	}
	payload := b[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrFrame
	}
	if len(payload) < 2 {
		return nil, ErrFrame
	}
	f := &Frame{Kind: payload[0], Flags: payload[1]}
	if f.Kind < KindHello || f.Kind > KindHeartbeat {
		return nil, ErrFrame
	}
	d := payload[2:]
	var fields [5]uint64
	for i := range fields {
		v, n := binary.Uvarint(d)
		if n <= 0 {
			return nil, ErrFrame
		}
		fields[i], d = v, d[n:]
	}
	f.Epoch, f.Seq, f.Sealed = fields[0], fields[3], fields[4]
	f.Offset, f.End = int64(fields[1]), int64(fields[2])
	if f.Offset < 0 || f.End < 0 {
		return nil, ErrFrame
	}
	count, n := binary.Uvarint(d)
	if n <= 0 || count > maxFrameRecords || count > uint64(len(d)) {
		return nil, ErrFrame
	}
	d = d[n:]
	if count > 0 {
		f.Records = make([][]byte, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		rl, n := binary.Uvarint(d)
		if n <= 0 || rl > uint64(len(d)-n) {
			return nil, ErrFrame
		}
		f.Records = append(f.Records, d[n:n+int(rl)])
		d = d[n+int(rl):]
	}
	bl, n := binary.Uvarint(d)
	if n <= 0 || bl != uint64(len(d)-n) {
		return nil, ErrFrame
	}
	if bl > 0 {
		f.Blob = d[n:]
	}
	return f, nil
}
