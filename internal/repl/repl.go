// Package repl ships the primary's write-ahead journal to read replicas.
//
// A primary-side Shipper tails the sealed group-commit frames of a
// database directory (via the same chain reader recovery uses, so both
// always agree on batch boundaries) and streams them over a pluggable
// Conn transport. A follower-side Follower replays the stream into a
// read-only store with the recovery replayer and serves MVCC snapshots
// at its applied sequence.
//
// Every transport edge is defended: frames carry the journal's CRC
// framing, so torn or bit-flipped messages are detected and the
// follower reconnects rather than applying garbage; stream sequence
// numbers catch dropped, duplicated and reordered batches — duplicates
// and overlaps are skipped idempotently, gaps force a resynchronization
// from the primary's newest checkpoint manifest; connection failures
// retry under capped exponential backoff with jitter and an optional
// deadline. Reads are bounded-staleness: ViewWithin returns an explicit
// lag error instead of a silently stale snapshot.
package repl

import (
	"errors"
	"fmt"

	"cadcam/internal/fault"
)

// Failpoints covering the replication path, armed via CADCAM_FAILPOINTS
// like every other point in the system:
//
//	repl/send-torn      – ship only a prefix of an encoded frame, then
//	                      crash or error (a torn network write)
//	repl/send-partial   – drop the tail records of a batch while
//	                      advancing the stream sequence (a lost datagram
//	                      the framing alone cannot see)
//	repl/conn-drop      – fail the connection before a send
//	repl/applier-crash  – crash or fail the follower mid-batch, after
//	                      replaying only half the records
//	repl/resync-gap     – force the shipper down the checkpoint-resync
//	                      path as if the follower's position was GC'd
var (
	fpSendTorn     = fault.New("repl/send-torn")
	fpSendPartial  = fault.New("repl/send-partial")
	fpConnDrop     = fault.New("repl/conn-drop")
	fpApplierCrash = fault.New("repl/applier-crash")
	fpResyncGap    = fault.New("repl/resync-gap")
)

// Error is the typed error every replication failure wraps: Op names
// the stage ("dial", "handshake", "recv", "decode", "apply", "resync",
// "ship") and Err the cause.
type Error struct {
	Op  string
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("repl: %s: %v", e.Op, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// ErrMaxLag is the base error of LagError; errors.Is(err, ErrMaxLag)
// identifies a bounded-staleness rejection.
var ErrMaxLag = errors.New("repl: replica lag exceeds bound")

// LagError reports that a follower is further behind the primary than
// the caller's staleness bound allows.
type LagError struct {
	Lag    uint64 // records behind the shipped stream
	MaxLag uint64 // the caller's bound
}

func (e *LagError) Error() string {
	return fmt.Sprintf("repl: replica %d records behind (bound %d)", e.Lag, e.MaxLag)
}
func (e *LagError) Unwrap() error { return ErrMaxLag }

// ErrStreamGap reports records missing from the replication stream; the
// follower resynchronizes from a checkpoint rather than serving a
// diverged state.
var ErrStreamGap = errors.New("repl: stream sequence gap")
