package repl

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cadcam/internal/fault"
	"cadcam/internal/object"
	"cadcam/internal/schema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// FollowerConfig configures a read replica.
type FollowerConfig struct {
	Catalog      *schema.Catalog
	Dial         Dialer
	Shards       int                 // store shards (0: store default)
	Workers      int                 // replay/import parallelism (0: GOMAXPROCS)
	DeletePolicy object.DeletePolicy // must match the primary's
	Backoff      BackoffConfig       // reconnect schedule
	Clock        Clock               // test clock; nil means real time

	// PauseAfter stops applying once the applied record count reaches
	// it (batch-granular) — the divergence oracle's truncation hook.
	PauseAfter uint64
	// OnBatch, when set, observes each applied batch's new count.
	OnBatch func(applied uint64)
}

// FollowerStats is a follower's health and traffic snapshot.
type FollowerStats struct {
	Connects      uint64 `json:"connects"`
	Applied       uint64 `json:"applied"`
	Sealed        uint64 `json:"sealed"`
	Lag           uint64 `json:"lag"`
	Batches       uint64 `json:"batches"`
	Dups          uint64 `json:"dups"`
	Overlaps      uint64 `json:"overlaps"`
	Gaps          uint64 `json:"gaps"`
	CorruptFrames uint64 `json:"corrupt_frames"`
	Resyncs       uint64 `json:"resyncs"`
	Retries       uint64 `json:"retries"`
	Epoch         uint64 `json:"epoch"`
	LastError     string `json:"last_error,omitempty"`
}

// errPaused stops the session loop once PauseAfter is reached.
var errPaused = errors.New("repl: follower paused")

// Follower replays a shipper's stream into a read-only store and serves
// MVCC snapshots at its applied sequence. It dials, handshakes with its
// resume position, applies batches idempotently (duplicates and
// overlaps skipped, gaps forcing a checkpoint resync), and reconnects
// under backoff on any failure. A follower never writes to the
// primary's directory.
type Follower struct {
	cfg     FollowerConfig
	clock   Clock
	workers int

	mu         sync.Mutex
	store      *object.Store
	vm         *version.Manager
	pos        wal.ChainPos
	applied    uint64 // stream seq of the last applied record
	sealed     uint64 // newest stream seq the shipper reported
	caughtUp   bool
	needResync bool
	err        error // sticky; cleared by a successful resync
	stats      FollowerStats

	connMu sync.Mutex
	conn   Conn

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewFollower builds a follower with an empty store and starts its
// replication loop.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Dial == nil {
		return nil, errors.New("repl: follower needs a dialer")
	}
	store, err := object.NewStoreShards(cfg.Catalog, cfg.Shards)
	if err != nil {
		return nil, err
	}
	store.SetDeletePolicy(cfg.DeletePolicy)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	f := &Follower{
		cfg:     cfg,
		clock:   clock,
		workers: workers,
		store:   store,
		vm:      version.NewManager(store),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go f.run()
	return f, nil
}

// run is the reconnect loop: each session failure sleeps out the
// backoff schedule; exhausting the deadline parks the follower with a
// sticky error rather than spinning forever.
func (f *Follower) run() {
	defer close(f.done)
	bo := NewBackoff(f.cfg.Backoff, f.clock)
	for {
		if f.stopped() {
			return
		}
		err := f.session(bo)
		if err == nil || f.stopped() {
			return
		}
		f.mu.Lock()
		f.stats.Retries++
		f.stats.LastError = err.Error()
		f.mu.Unlock()
		d, berr := bo.Next()
		if berr != nil {
			f.mu.Lock()
			f.err = &Error{Op: "dial", Err: berr}
			f.stats.LastError = f.err.Error()
			f.mu.Unlock()
			return
		}
		f.clock.Sleep(d)
	}
}

// session runs one connection: dial, hello, then apply frames until the
// stream fails or the follower stops. The backoff resets after every
// successfully handled frame, so only consecutive failures escalate.
func (f *Follower) session(bo *Backoff) error {
	conn, err := f.cfg.Dial()
	if err != nil {
		return &Error{Op: "dial", Err: err}
	}
	f.connMu.Lock()
	f.conn = conn
	f.connMu.Unlock()
	defer conn.Close()

	f.mu.Lock()
	f.stats.Connects++
	hello := Frame{Kind: KindHello, Epoch: f.pos.Epoch, Offset: f.pos.Offset, Seq: f.applied}
	if f.needResync {
		hello.Flags |= FlagResync
	}
	f.mu.Unlock()
	if err := conn.Send(hello.Encode()); err != nil {
		return &Error{Op: "handshake", Err: err}
	}
	for {
		if f.stopped() {
			return nil
		}
		b, err := conn.Recv()
		if err != nil {
			if f.stopped() {
				return nil
			}
			return &Error{Op: "recv", Err: err}
		}
		fr, err := DecodeFrame(b)
		if err != nil {
			f.mu.Lock()
			f.stats.CorruptFrames++
			f.mu.Unlock()
			return &Error{Op: "decode", Err: err}
		}
		if err := f.handle(fr); err != nil {
			if errors.Is(err, errPaused) {
				<-f.stop
				return nil
			}
			return err
		}
		bo.Reset()
	}
}

func (f *Follower) handle(fr *Frame) error {
	switch fr.Kind {
	case KindBatch:
		return f.applyBatch(fr)
	case KindSnapshot, KindReset:
		return f.resync(fr)
	case KindHeartbeat:
		f.mu.Lock()
		defer f.mu.Unlock()
		if fr.Sealed > f.applied {
			// The shipper believes it sent records we never applied: a
			// loss the batch seq check could not catch because no later
			// batch followed. Resync.
			f.stats.Gaps++
			f.needResync = true
			f.err = &Error{Op: "apply", Err: ErrStreamGap}
			return f.err
		}
		f.sealed = fr.Sealed
		f.caughtUp = true
		return nil
	default:
		return &Error{Op: "decode", Err: fmt.Errorf("unexpected frame kind %d", fr.Kind)}
	}
}

// applyBatch replays one batch. Sequencing rules: a batch entirely at
// or below the applied seq is a duplicate (skipped); one overlapping it
// replays only the unseen suffix; one starting past applied+1 is a gap
// — records were lost, so the follower flags itself for resync rather
// than apply a diverged suffix.
func (f *Follower) applyBatch(fr *Frame) error {
	f.mu.Lock()
	applied, err := f.applyBatchLocked(fr)
	f.mu.Unlock()
	if err == nil && applied > 0 && f.cfg.OnBatch != nil {
		f.cfg.OnBatch(applied)
	}
	return err
}

// applyBatchLocked does the sequencing and replay under f.mu; it
// returns the new applied count when the batch advanced the replica.
func (f *Follower) applyBatchLocked(fr *Frame) (uint64, error) {
	if f.cfg.PauseAfter > 0 && f.applied >= f.cfg.PauseAfter {
		return 0, errPaused
	}
	n := uint64(len(fr.Records))
	expect := f.applied + 1
	switch {
	case fr.Seq > expect:
		f.stats.Gaps++
		f.needResync = true
		f.err = &Error{Op: "apply", Err: fmt.Errorf("%w: batch seq %d, expected %d", ErrStreamGap, fr.Seq, expect)}
		return 0, f.err
	case fr.Seq+n <= expect:
		f.stats.Dups++
		return 0, nil
	default:
		skip := expect - fr.Seq
		if skip > 0 {
			f.stats.Overlaps++
		}
		recs := fr.Records[skip:]
		if a := fpApplierCrash.Fire(); a != nil {
			// Apply half the batch, then die: the restarted (or
			// recovered) follower must resync and converge anyway.
			half := recs[:len(recs)/2]
			if err := wal.ReplayN(half, f.store, f.vm, 1); err == nil {
				f.applied += uint64(len(half))
			}
			if a.Kind == fault.KindExit {
				fault.Crash(*a)
			}
			f.needResync = true
			f.err = &Error{Op: "apply", Err: a.Err}
			return 0, f.err
		}
		if err := wal.ReplayN(recs, f.store, f.vm, f.workers); err != nil {
			f.err = &Error{Op: "apply", Err: err}
			return 0, f.err
		}
		f.applied = fr.Seq + n - 1
		f.pos = wal.ChainPos{Epoch: fr.Epoch, Offset: fr.End}
		if fr.Sealed > f.sealed {
			f.sealed = fr.Sealed
		}
		f.caughtUp = f.applied >= f.sealed
		f.stats.Batches++
		f.stats.Applied = f.applied
		return f.applied, nil
	}
}

// resync replaces the store with the shipped checkpoint state (or an
// empty store for a reset) and rebases the stream. Snapshots already
// handed to readers stay pinned to the old store — they remain
// consistent, just stale.
func (f *Follower) resync(fr *Frame) error {
	store, err := object.NewStoreShards(f.cfg.Catalog, f.cfg.Shards)
	if err != nil {
		return &Error{Op: "resync", Err: err}
	}
	store.SetDeletePolicy(f.cfg.DeletePolicy)
	vm := version.NewManager(store)
	if fr.Kind == KindSnapshot {
		st, vs, err := wal.DecodeSnapshotState(fr.Blob)
		if err != nil {
			f.mu.Lock()
			f.stats.CorruptFrames++
			f.mu.Unlock()
			return &Error{Op: "resync", Err: err}
		}
		if err := store.ImportParallel(st, f.workers); err != nil {
			return &Error{Op: "resync", Err: err}
		}
		if vs != nil {
			if err := vm.Import(vs); err != nil {
				return &Error{Op: "resync", Err: err}
			}
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.store, f.vm = store, vm
	f.pos = wal.ChainPos{Epoch: fr.Epoch}
	f.applied, f.sealed = 0, 0
	f.caughtUp = false
	f.needResync = false
	f.err = nil // a fresh base state clears the sticky failure
	f.stats.Resyncs++
	f.stats.Applied = 0
	return nil
}

// View returns an MVCC snapshot of the replica regardless of lag, or
// the sticky error if replication is broken.
func (f *Follower) View() (*object.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	return f.store.Snapshot(), nil
}

// ViewWithin returns a snapshot only when the replica is at most maxLag
// records behind the shipped stream; otherwise a LagError. Staleness is
// always explicit — a broken or lagging follower errors, it never
// silently serves old data as fresh.
func (f *Follower) ViewWithin(maxLag uint64) (*object.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	var lag uint64
	if f.sealed > f.applied {
		lag = f.sealed - f.applied
	}
	if lag > maxLag {
		return nil, &LagError{Lag: lag, MaxLag: maxLag}
	}
	return f.store.Snapshot(), nil
}

// Export returns deep copies of the replica's state and its applied
// record count, batch-atomically — the divergence oracle's input.
func (f *Follower) Export() (*object.StoreState, *version.ManagerState, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.store.Export(), f.vm.Export(), f.applied
}

// Applied returns the stream seq of the last applied record.
func (f *Follower) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Err returns the sticky replication error, nil while healthy.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Stats returns the follower's counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Applied = f.applied
	st.Sealed = f.sealed
	if f.sealed > f.applied {
		st.Lag = f.sealed - f.applied
	}
	st.Epoch = f.pos.Epoch
	if f.err != nil {
		st.LastError = f.err.Error()
	}
	return st
}

// WaitCaughtUp blocks until the follower has applied everything the
// shipper reports sealed, or the timeout expires. The caught-up flag is
// cleared on entry, so the wait always observes a heartbeat or batch
// that arrived after the call — writes committed on the primary just
// before the call cannot satisfy it with a stale flag.
func (f *Follower) WaitCaughtUp(timeout time.Duration) error {
	f.mu.Lock()
	f.caughtUp = false
	f.mu.Unlock()
	deadline := f.clock.Now().Add(timeout)
	for {
		f.mu.Lock()
		ok := f.caughtUp
		f.mu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-f.done:
			// The loop parked (deadline exhausted or stopped): its
			// sticky error is terminal, no resync will clear it.
			if err := f.Err(); err != nil {
				return err
			}
			return errors.New("repl: follower stopped")
		default:
		}
		if f.clock.Now().After(deadline) {
			st := f.Stats()
			return fmt.Errorf("repl: not caught up after %v (applied %d, sealed %d, last error %q)",
				timeout, st.Applied, st.Sealed, st.LastError)
		}
		f.clock.Sleep(time.Millisecond)
	}
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// Close stops the replication loop and waits for it to exit.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()
	<-f.done
	return nil
}
