package repl_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	cadcam "cadcam"
	"cadcam/internal/fault"
	"cadcam/internal/paperschema"
	"cadcam/internal/repl"
	"cadcam/internal/wal"
)

// primary opens a disk database for the replication tests.
func primary(t *testing.T, dir string) *cadcam.Database {
	t.Helper()
	db, err := cadcam.Open(paperschema.MustGates(), cadcam.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// writePins commits n pin objects with attributes and returns the last
// surrogate.
func writePins(t *testing.T, db *cadcam.Database, n int) cadcam.Surrogate {
	t.Helper()
	var last cadcam.Surrogate
	for i := 0; i < n; i++ {
		sur, err := db.NewObject(paperschema.TypePin, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(sur, "PinId", cadcam.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		last = sur
	}
	return last
}

// exportEqual byte-compares the primary's live state against the
// follower's replica — the in-process divergence oracle.
func exportEqual(t *testing.T, db *cadcam.Database, f *repl.Follower) {
	t.Helper()
	st, vs, applied := f.Export()
	want := wal.EncodeSnapshot(db.Store().Export(), db.Versions().Export())
	got := wal.EncodeSnapshot(st, vs)
	if !bytes.Equal(got, want) {
		t.Fatalf("replica diverged from primary at applied seq %d (%d vs %d bytes)",
			applied, len(got), len(want))
	}
}

// follow attaches a follower to a shipper over the in-process pipe.
func follow(t *testing.T, s *repl.Shipper, cfg repl.FollowerConfig) *repl.Follower {
	t.Helper()
	cfg.Catalog = paperschema.MustGates()
	if cfg.Dial == nil {
		cfg.Dial = s.Dialer()
	}
	f, err := repl.NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestReplicateLiveDatabase: a follower attached to a live primary
// catches up, tracks further writes, and never diverges.
func TestReplicateLiveDatabase(t *testing.T) {
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 40)

	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)

	// The replica serves reads at its applied sequence.
	view, err := f.View()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	if got := f.Stats(); got.Applied == 0 || got.Lag != 0 {
		t.Fatalf("stats after catch-up: %+v", got)
	}

	// More writes while the session stays up: the incremental tail.
	writePins(t, db, 40)
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	if got := s.Stats(); got.BatchesShipped == 0 || got.RecordsShipped == 0 {
		t.Fatalf("shipper stats: %+v", got)
	}
}

// TestReplicateOverStream: the same convergence through the
// process-style byte-stream transport.
func TestReplicateOverStream(t *testing.T) {
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 25)

	s := repl.NewShipper(dir, repl.ShipperConfig{})
	dial := func() (repl.Conn, error) {
		client, server := net.Pipe()
		go s.Serve(repl.StreamConn(server))
		return repl.StreamConn(client), nil
	}
	f := follow(t, s, repl.FollowerConfig{Dial: dial})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
}

// TestBoundedStaleness: a lagging replica refuses reads beyond the
// staleness bound with an explicit, typed error — never silently stale.
func TestBoundedStaleness(t *testing.T) {
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 20) // 40 records, written before the follower attaches

	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{PauseAfter: 2})
	// Wait for the pause to take hold.
	deadline := time.Now().Add(5 * time.Second)
	for f.Applied() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached pause point: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := f.Stats()
	if st.Sealed <= st.Applied {
		t.Fatalf("paused follower should observe a sealed horizon ahead: %+v", st)
	}
	if _, err := f.ViewWithin(0); !errors.Is(err, repl.ErrMaxLag) {
		t.Fatalf("ViewWithin(0) = %v, want ErrMaxLag", err)
	}
	var lagErr *repl.LagError
	if _, err := f.ViewWithin(1); !errors.As(err, &lagErr) {
		t.Fatalf("ViewWithin(1) = %v, want *LagError", err)
	} else if lagErr.Lag == 0 || lagErr.MaxLag != 1 {
		t.Fatalf("lag error fields: %+v", lagErr)
	}
	if view, err := f.ViewWithin(st.Sealed); err != nil {
		t.Fatalf("generous bound rejected: %v", err)
	} else {
		view.Release()
	}
	if view, err := f.View(); err != nil {
		t.Fatalf("unbounded view rejected: %v", err)
	} else {
		view.Release()
	}
}

// TestResyncAfterCheckpointGC: a follower whose position predates a
// checkpoint's journal GC resynchronizes from the manifest and still
// converges byte-identically.
func TestResyncAfterCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 30)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writePins(t, db, 10)

	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	if got := f.Stats(); got.Resyncs == 0 {
		t.Fatalf("fresh follower behind a GC'd journal must resync: %+v", got)
	}
	if got := s.Stats(); got.Snapshots == 0 {
		t.Fatalf("shipper never shipped a checkpoint: %+v", got)
	}
}

// TestTornSendRetries: a torn transport write is caught by the frame
// CRC; the follower reconnects and resumes from its applied position.
func TestTornSendRetries(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 15)

	if err := fault.Arm("repl/send-torn=error(injected torn send)@4"); err != nil {
		t.Fatal(err)
	}
	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{Backoff: repl.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond}})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	st := f.Stats()
	if st.CorruptFrames == 0 {
		t.Fatalf("torn frame never detected: %+v", st)
	}
	if st.Connects < 2 {
		t.Fatalf("follower never reconnected: %+v", st)
	}
	if fault.Hits("repl/send-torn") == 0 {
		t.Fatal("failpoint never fired")
	}
}

// TestPartialBatchGapResyncs: records silently dropped from a batch
// (sequence advanced, payload short) are caught by the seq-gap check
// and healed by a resync — the replica converges anyway.
func TestPartialBatchGapResyncs(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 12)

	if err := fault.Arm("repl/send-partial=error(injected partial batch)@3"); err != nil {
		t.Fatal(err)
	}
	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{Backoff: repl.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond}})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	st := f.Stats()
	if st.Gaps == 0 {
		t.Fatalf("dropped records never detected as a gap: %+v", st)
	}
	if st.Resyncs == 0 {
		t.Fatalf("gap did not trigger a resync: %+v", st)
	}
}

// TestConnDropReconnects: a dropped connection is retried under backoff
// and the session resumes where it left off.
func TestConnDropReconnects(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 15)

	if err := fault.Arm("repl/conn-drop=error(injected conn drop)@5"); err != nil {
		t.Fatal(err)
	}
	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{Backoff: repl.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond}})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	st := f.Stats()
	if st.Connects < 2 || st.Retries == 0 {
		t.Fatalf("connection drop not retried: %+v", st)
	}
}

// TestApplierFaultResyncs: a follower that fails mid-batch (half the
// records applied) flags itself broken — reads error rather than serve
// a torn state — then resyncs and converges.
func TestApplierFaultResyncs(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 10)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writePins(t, db, 10)

	if err := fault.Arm("repl/applier-crash=error(injected applier fault)@6"); err != nil {
		t.Fatal(err)
	}
	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{Backoff: repl.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond}})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	if got := f.Stats(); got.Resyncs == 0 {
		t.Fatalf("applier fault did not force a resync: %+v", got)
	}
	if f.Err() != nil {
		t.Fatalf("sticky error survived a successful resync: %v", f.Err())
	}
}

// TestForcedResyncPath: the resync-gap failpoint pushes the session
// down the checkpoint-resync path even with an intact chain.
func TestForcedResyncPath(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 8)

	if err := fault.Arm("repl/resync-gap=error(injected gap)@1"); err != nil {
		t.Fatal(err)
	}
	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f)
	if got := f.Stats(); got.Resyncs == 0 {
		t.Fatalf("forced resync never happened: %+v", got)
	}
}

// TestDialDeadlineParksFollower: when the primary is unreachable past
// the backoff deadline, the follower parks with a sticky typed error
// instead of retrying forever, and reads fail loudly.
func TestDialDeadlineParksFollower(t *testing.T) {
	boom := fmt.Errorf("primary unreachable")
	dialFails := func() (repl.Conn, error) { return nil, boom }
	f, err := repl.NewFollower(repl.FollowerConfig{
		Catalog: paperschema.MustGates(),
		Dial:    dialFails,
		Backoff: repl.BackoffConfig{Base: time.Millisecond, Cap: 2 * time.Millisecond, Deadline: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("follower never gave up: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(f.Err(), repl.ErrDeadline) {
		t.Fatalf("sticky error = %v, want ErrDeadline", f.Err())
	}
	var re *repl.Error
	if !errors.As(f.Err(), &re) || re.Op != "dial" {
		t.Fatalf("sticky error not typed: %v", f.Err())
	}
	if _, err := f.View(); err == nil {
		t.Fatal("parked follower served a read")
	}
}

// TestFollowerRestartResumes: a follower closed and rebuilt from
// scratch (its state is in-memory only) converges again — the primary
// having checkpointed in between, via resync.
func TestFollowerRestartResumes(t *testing.T) {
	dir := t.TempDir()
	db := primary(t, dir)
	defer db.Close()
	writePins(t, db, 10)

	s := repl.NewShipper(dir, repl.ShipperConfig{})
	f := follow(t, s, repl.FollowerConfig{})
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writePins(t, db, 10)

	f2 := follow(t, s, repl.FollowerConfig{})
	if err := f2.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	exportEqual(t, db, f2)
}
