package repl

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
)

// Conn is the message transport between a shipper and a follower: an
// ordered, message-framed, bidirectional channel. Implementations need
// not be reliable — every failure mode short of silent corruption of a
// CRC-valid frame is recovered above this layer.
type Conn interface {
	Send(b []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Dialer opens a fresh connection to a shipper; the follower redials
// through it on every retry.
type Dialer func() (Conn, error)

// pipeConn is an in-process Conn pair for same-process replication and
// tests. Either end's Close terminates both directions; a receiver
// drains messages already in flight before observing EOF.
type pipeConn struct {
	send chan []byte
	recv chan []byte
	done chan struct{}
	once *sync.Once
}

// Pipe returns the two ends of an in-process connection.
func Pipe() (Conn, Conn) {
	a := make(chan []byte, 16)
	b := make(chan []byte, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	return &pipeConn{send: a, recv: b, done: done, once: once},
		&pipeConn{send: b, recv: a, done: done, once: once}
}

func (p *pipeConn) Send(b []byte) error {
	msg := append([]byte(nil), b...)
	select {
	case <-p.done:
		return io.ErrClosedPipe
	default:
	}
	select {
	case p.send <- msg:
		return nil
	case <-p.done:
		return io.ErrClosedPipe
	}
}

func (p *pipeConn) Recv() ([]byte, error) {
	select {
	case b := <-p.recv:
		return b, nil
	case <-p.done:
		select {
		case b := <-p.recv:
			return b, nil
		default:
			return nil, io.EOF
		}
	}
}

func (p *pipeConn) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// maxStreamMessage bounds the length prefix a stream conn will trust,
// so a corrupted or hostile peer cannot make it allocate unbounded
// memory. Generous enough for a full checkpoint snapshot frame.
const maxStreamMessage = 1 << 30

// streamConn frames messages over any byte stream (a TCP connection, a
// unix socket, a pair of pipes) with a 4-byte little-endian length
// prefix. Frame integrity still comes from the CRC inside each message.
type streamConn struct {
	rw io.ReadWriteCloser
	wm sync.Mutex
	rm sync.Mutex
}

// StreamConn wraps a byte stream as a message Conn — the process-to-
// process transport.
func StreamConn(rw io.ReadWriteCloser) Conn { return &streamConn{rw: rw} }

func (s *streamConn) Send(b []byte) error {
	s.wm.Lock()
	defer s.wm.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := s.rw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := s.rw.Write(b)
	return err
}

func (s *streamConn) Recv() ([]byte, error) {
	s.rm.Lock()
	defer s.rm.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(s.rw, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxStreamMessage {
		return nil, ErrFrame
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.rw, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (s *streamConn) Close() error { return s.rw.Close() }

// isClosed reports errors that mean the peer hung up cleanly rather
// than a fault worth recording.
func isClosed(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed)
}
