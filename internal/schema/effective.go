package schema

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
)

// EffAttr is one attribute of an effective type: either owned by the type
// itself (Via == "") or contributed at the type level by an inheritance
// relationship (Via names the inher-rel-type, Source the transmitter type
// that owns the attribute — possibly reached through a chain of
// inheritance relationships, the paper's interface *hierarchies*).
type EffAttr struct {
	Attribute
	Via    string
	Source string
}

// Inherited reports whether the attribute was contributed by inheritance.
func (a *EffAttr) Inherited() bool { return a.Via != "" }

// EffSubclass is one subclass of an effective type, with the same Via /
// Source convention as EffAttr.
type EffSubclass struct {
	Subclass
	Via    string
	Source string
}

// Inherited reports whether the subclass was contributed by inheritance.
func (s *EffSubclass) Inherited() bool { return s.Via != "" }

// EffectiveType is the full structure of an object type after type-level
// inheritance: its own attributes and subclasses plus everything permeable
// through its inheritor-in declarations, transitively.
type EffectiveType struct {
	Type       *ObjectType
	Attrs      []EffAttr
	Subclasses []EffSubclass

	attrIdx map[string]int
	subIdx  map[string]int
}

// Attr resolves an attribute by name.
func (e *EffectiveType) Attr(name string) (*EffAttr, bool) {
	i, ok := e.attrIdx[name]
	if !ok {
		return nil, false
	}
	return &e.Attrs[i], true
}

// SubclassByName resolves a subclass by name.
func (e *EffectiveType) SubclassByName(name string) (*EffSubclass, bool) {
	i, ok := e.subIdx[name]
	if !ok {
		return nil, false
	}
	return &e.Subclasses[i], true
}

// Validate checks every registered type and computes effective types.
// After a successful Validate the catalog is immutable and safe for
// concurrent reads.
func (c *Catalog) Validate() error {
	if c.validated {
		return nil
	}
	// 1. Inheritance relationship types: transmitter/inheritor resolve.
	for _, name := range c.InherRelTypeNames() {
		r := c.inherRels[name]
		if _, ok := c.objTypes[r.Transmitter]; !ok {
			return errf(name, "transmitter type %q not declared", r.Transmitter)
		}
		if r.Inheritor != "" {
			if _, ok := c.objTypes[r.Inheritor]; !ok {
				return errf(name, "inheritor type %q not declared", r.Inheritor)
			}
		}
		if err := checkAttrs(c, name, r.Attributes); err != nil {
			return err
		}
	}
	// 2. Object types: structural checks.
	for _, name := range c.ObjectTypeNames() {
		if err := c.checkObjectType(c.objTypes[name]); err != nil {
			return err
		}
	}
	// 3. Relationship types.
	for _, name := range c.RelTypeNames() {
		if err := c.checkRelType(c.relTypes[name]); err != nil {
			return err
		}
	}
	// 4. Effective types (detects type-level inheritance cycles and
	// verifies every inheriting-clause entry and name clashes).
	c.effective = make(map[string]*EffectiveType, len(c.objTypes))
	for _, name := range c.ObjectTypeNames() {
		if _, err := c.effectiveOf(name, nil); err != nil {
			return err
		}
	}
	// 5. Inheritor type restrictions: if an inher-rel restricts the
	// inheritor type, every type declaring inheritor-in that rel must be
	// exactly that type (the paper specifies the inheritor type, not a
	// subtype lattice).
	for _, name := range c.ObjectTypeNames() {
		t := c.objTypes[name]
		for _, rn := range t.InheritorIn {
			r := c.inherRels[rn]
			if r.Inheritor != "" && r.Inheritor != t.Name {
				return errf(t.Name, "inheritor-in %s requires inheritor type %q", rn, r.Inheritor)
			}
		}
	}
	c.buildRelIndexes()
	c.validated = true
	return nil
}

func (c *Catalog) checkObjectType(t *ObjectType) error {
	if err := checkAttrs(c, t.Name, t.Attributes); err != nil {
		return err
	}
	seen := make(map[string]string) // name -> what declared it
	for _, a := range t.Attributes {
		seen[a.Name] = "attribute"
	}
	for _, s := range t.Subclasses {
		if prev, dup := seen[s.Name]; dup {
			return errf(t.Name, "subclass %q clashes with %s of the same name", s.Name, prev)
		}
		seen[s.Name] = "subclass"
		if s.ElemType == "" {
			return errf(t.Name, "subclass %q has no member type", s.Name)
		}
		if _, ok := c.objTypes[s.ElemType]; !ok {
			return errf(t.Name, "subclass %q: member type %q not declared", s.Name, s.ElemType)
		}
	}
	for _, sr := range t.SubRels {
		if prev, dup := seen[sr.Name]; dup {
			return errf(t.Name, "sub-relationship %q clashes with %s of the same name", sr.Name, prev)
		}
		seen[sr.Name] = "sub-relationship"
		if _, ok := c.relTypes[sr.RelType]; !ok {
			return errf(t.Name, "sub-relationship %q: relationship type %q not declared", sr.Name, sr.RelType)
		}
	}
	for _, rn := range t.InheritorIn {
		if _, ok := c.inherRels[rn]; !ok {
			return errf(t.Name, "inheritor-in names unknown inheritance relationship %q", rn)
		}
	}
	return nil
}

func (c *Catalog) checkRelType(t *RelType) error {
	if err := checkAttrs(c, t.Name, t.Attributes); err != nil {
		return err
	}
	seen := make(map[string]bool)
	for _, p := range t.Participants {
		if p.Name == "" {
			return errf(t.Name, "participant needs a role name")
		}
		if seen[p.Name] {
			return errf(t.Name, "duplicate participant role %q", p.Name)
		}
		seen[p.Name] = true
		if p.Type != "" {
			if _, ok := c.objTypes[p.Type]; !ok {
				return errf(t.Name, "participant %q: object type %q not declared", p.Name, p.Type)
			}
		}
	}
	for _, a := range t.Attributes {
		if seen[a.Name] {
			return errf(t.Name, "attribute %q clashes with a participant role", a.Name)
		}
		seen[a.Name] = true
	}
	for _, s := range t.Subclasses {
		if seen[s.Name] {
			return errf(t.Name, "subclass %q clashes with an earlier name", s.Name)
		}
		seen[s.Name] = true
		if s.ElemType == "" {
			return errf(t.Name, "subclass %q has no member type", s.Name)
		}
		if _, ok := c.objTypes[s.ElemType]; !ok {
			return errf(t.Name, "subclass %q: member type %q not declared", s.Name, s.ElemType)
		}
	}
	return nil
}

func checkAttrs(c *Catalog, where string, attrs []Attribute) error {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return errf(where, "attribute needs a name")
		}
		if a.Name == "Surrogate" {
			return errf(where, "attribute name %q is reserved", a.Name)
		}
		if seen[a.Name] {
			return errf(where, "duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if a.Domain == nil {
			return errf(where, "attribute %q has nil domain", a.Name)
		}
		if ot := a.Domain.ObjectType(); ot != "" && a.Domain.Kind() == domain.KindSurrogate {
			if _, ok := c.objTypes[ot]; !ok {
				return errf(where, "attribute %q references undeclared object type %q", a.Name, ot)
			}
		}
	}
	return nil
}

// Effective returns the effective type of an object type. The catalog
// must be validated.
func (c *Catalog) Effective(name string) (*EffectiveType, bool) {
	e, ok := c.effective[name]
	return e, ok
}

// effectiveOf computes (and memoizes) the effective type, detecting cycles
// through the visiting stack.
func (c *Catalog) effectiveOf(name string, visiting []string) (*EffectiveType, error) {
	if e, ok := c.effective[name]; ok {
		return e, nil
	}
	for _, v := range visiting {
		if v == name {
			return nil, errf(name, "type-level inheritance cycle: %v", append(visiting, name))
		}
	}
	t := c.objTypes[name]
	e := &EffectiveType{
		Type:    t,
		attrIdx: make(map[string]int),
		subIdx:  make(map[string]int),
	}
	for _, a := range t.Attributes {
		e.attrIdx[a.Name] = len(e.Attrs)
		e.Attrs = append(e.Attrs, EffAttr{Attribute: a})
	}
	for _, s := range t.Subclasses {
		e.subIdx[s.Name] = len(e.Subclasses)
		e.Subclasses = append(e.Subclasses, EffSubclass{Subclass: s})
	}
	for _, rn := range t.InheritorIn {
		r := c.inherRels[rn]
		te, err := c.effectiveOf(r.Transmitter, append(visiting, name))
		if err != nil {
			return nil, err
		}
		for _, inh := range r.Inheriting {
			switch {
			case hasAttr(te, inh):
				a, _ := te.Attr(inh)
				if _, dup := e.attrIdx[inh]; dup {
					return nil, errf(name, "inherited attribute %q (via %s) clashes with an existing member", inh, rn)
				}
				if _, dup := e.subIdx[inh]; dup {
					return nil, errf(name, "inherited attribute %q (via %s) clashes with a subclass", inh, rn)
				}
				src := a.Source
				if src == "" {
					src = r.Transmitter
				}
				e.attrIdx[inh] = len(e.Attrs)
				e.Attrs = append(e.Attrs, EffAttr{Attribute: a.Attribute, Via: rn, Source: src})
			case hasSubclass(te, inh):
				s, _ := te.SubclassByName(inh)
				if _, dup := e.subIdx[inh]; dup {
					return nil, errf(name, "inherited subclass %q (via %s) clashes with an existing member", inh, rn)
				}
				if _, dup := e.attrIdx[inh]; dup {
					return nil, errf(name, "inherited subclass %q (via %s) clashes with an attribute", inh, rn)
				}
				src := s.Source
				if src == "" {
					src = r.Transmitter
				}
				e.subIdx[inh] = len(e.Subclasses)
				e.Subclasses = append(e.Subclasses, EffSubclass{Subclass: s.Subclass, Via: rn, Source: src})
			default:
				return nil, errf(rn, "inheriting clause names %q, which transmitter %q has neither as attribute nor subclass", inh, r.Transmitter)
			}
		}
	}
	c.effective[name] = e
	return e, nil
}

func hasAttr(e *EffectiveType, name string) bool {
	_, ok := e.Attr(name)
	return ok
}

func hasSubclass(e *EffectiveType, name string) bool {
	_, ok := e.SubclassByName(name)
	return ok
}

// Describe renders a human-readable summary of the effective type; the
// caddl tool uses it for its report output.
func (e *EffectiveType) Describe() string {
	var out string
	out += fmt.Sprintf("obj-type %s\n", e.Type.Name)
	for _, a := range e.Attrs {
		tag := ""
		if a.Inherited() {
			tag = fmt.Sprintf("  [inherited from %s via %s]", a.Source, a.Via)
		}
		out += fmt.Sprintf("  attr %s: %s%s\n", a.Name, a.Domain, tag)
	}
	for _, s := range e.Subclasses {
		tag := ""
		if s.Inherited() {
			tag = fmt.Sprintf("  [inherited from %s via %s]", s.Source, s.Via)
		}
		out += fmt.Sprintf("  subclass %s: %s%s\n", s.Name, s.ElemType, tag)
	}
	names := make([]string, 0, len(e.Type.SubRels))
	for _, sr := range e.Type.SubRels {
		names = append(names, fmt.Sprintf("  subrel %s: %s\n", sr.Name, sr.RelType))
	}
	sort.Strings(names)
	for _, n := range names {
		out += n
	}
	return out
}
