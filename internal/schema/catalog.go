package schema

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
)

// Catalog holds every declared domain and type and, after Validate, the
// computed effective types. A Catalog is built single-threaded and becomes
// safe for concurrent reads once validated.
type Catalog struct {
	domains   map[string]*domain.Domain
	objTypes  map[string]*ObjectType
	relTypes  map[string]*RelType
	inherRels map[string]*InherRelType
	effective map[string]*EffectiveType
	validated bool

	// Computed by Validate: O(1) lookup tables over the relationship-type
	// declarations, so the store's hot read paths never scan declaration
	// slices. relAttrs covers both relationship and inheritance
	// relationship types; relRoles and relMembers cover relationship types.
	relAttrs   map[string]map[string]*Attribute
	relRoles   map[string]map[string]bool
	relMembers map[string]map[string]bool
}

// Error is a schema definition error.
type Error struct {
	Where string // type or domain name
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("schema: %s: %s", e.Where, e.Msg) }

func errf(where, format string, args ...any) error {
	return &Error{Where: where, Msg: fmt.Sprintf(format, args...)}
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		domains:   make(map[string]*domain.Domain),
		objTypes:  make(map[string]*ObjectType),
		relTypes:  make(map[string]*RelType),
		inherRels: make(map[string]*InherRelType),
	}
}

// AddDomain registers a named domain ("domain Point = ...").
func (c *Catalog) AddDomain(d *domain.Domain) error {
	if c.validated {
		return errf(d.Name(), "catalog already validated")
	}
	if d.Name() == "" {
		return errf("<anonymous>", "domain needs a name to be registered")
	}
	if _, dup := c.domains[d.Name()]; dup {
		return errf(d.Name(), "duplicate domain")
	}
	c.domains[d.Name()] = d
	return nil
}

// Domain resolves a registered domain by name.
func (c *Catalog) Domain(name string) (*domain.Domain, bool) {
	d, ok := c.domains[name]
	return d, ok
}

// AddObjectType registers an object type and recursively registers the
// inline member types of its subclasses under "Owner.Subclass".
func (c *Catalog) AddObjectType(t *ObjectType) error {
	if c.validated {
		return errf(t.Name, "catalog already validated")
	}
	if t.Name == "" {
		return errf("<anonymous>", "object type needs a name")
	}
	if c.nameTaken(t.Name) {
		return errf(t.Name, "duplicate type name")
	}
	c.objTypes[t.Name] = t
	return c.registerInline(t.Name, t.Subclasses)
}

// AddRelType registers a relationship type (and inline subclass types).
func (c *Catalog) AddRelType(t *RelType) error {
	if c.validated {
		return errf(t.Name, "catalog already validated")
	}
	if t.Name == "" {
		return errf("<anonymous>", "relationship type needs a name")
	}
	if c.nameTaken(t.Name) {
		return errf(t.Name, "duplicate type name")
	}
	if len(t.Participants) == 0 {
		return errf(t.Name, "relationship type needs at least one participant")
	}
	c.relTypes[t.Name] = t
	return c.registerInline(t.Name, t.Subclasses)
}

// AddInherRelType registers an inheritance relationship type.
func (c *Catalog) AddInherRelType(t *InherRelType) error {
	if c.validated {
		return errf(t.Name, "catalog already validated")
	}
	if t.Name == "" {
		return errf("<anonymous>", "inheritance relationship type needs a name")
	}
	if c.nameTaken(t.Name) {
		return errf(t.Name, "duplicate type name")
	}
	if t.Transmitter == "" {
		return errf(t.Name, "transmitter type is required")
	}
	if len(t.Inheriting) == 0 {
		return errf(t.Name, "inheriting clause must name at least one attribute or subclass")
	}
	c.inherRels[t.Name] = t
	return nil
}

func (c *Catalog) registerInline(owner string, subs []Subclass) error {
	for i := range subs {
		s := &subs[i]
		if s.Inline == nil {
			continue
		}
		inline := s.Inline
		if inline.Name == "" {
			inline.Name = owner + "." + s.Name
		}
		inline.Anonymous = true
		if c.nameTaken(inline.Name) {
			return errf(inline.Name, "duplicate inline type name")
		}
		c.objTypes[inline.Name] = inline
		s.ElemType = inline.Name
		if err := c.registerInline(inline.Name, inline.Subclasses); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) nameTaken(name string) bool {
	if _, ok := c.objTypes[name]; ok {
		return true
	}
	if _, ok := c.relTypes[name]; ok {
		return true
	}
	_, ok := c.inherRels[name]
	return ok
}

// ObjectType resolves an object type by name.
func (c *Catalog) ObjectType(name string) (*ObjectType, bool) {
	t, ok := c.objTypes[name]
	return t, ok
}

// RelType resolves a relationship type by name.
func (c *Catalog) RelType(name string) (*RelType, bool) {
	t, ok := c.relTypes[name]
	return t, ok
}

// InherRelType resolves an inheritance relationship type by name.
func (c *Catalog) InherRelType(name string) (*InherRelType, bool) {
	t, ok := c.inherRels[name]
	return t, ok
}

// ObjectTypeNames returns all object type names, sorted, including inline
// (anonymous) member types.
func (c *Catalog) ObjectTypeNames() []string {
	names := make([]string, 0, len(c.objTypes))
	for n := range c.objTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RelTypeNames returns all relationship type names, sorted.
func (c *Catalog) RelTypeNames() []string {
	names := make([]string, 0, len(c.relTypes))
	for n := range c.relTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InherRelTypeNames returns all inheritance relationship type names, sorted.
func (c *Catalog) InherRelTypeNames() []string {
	names := make([]string, 0, len(c.inherRels))
	for n := range c.inherRels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validated reports whether Validate has succeeded.
func (c *Catalog) Validated() bool { return c.validated }

// buildRelIndexes precomputes the per-relationship-type name tables; called
// at the end of Validate, after which the catalog is immutable.
func (c *Catalog) buildRelIndexes() {
	c.relAttrs = make(map[string]map[string]*Attribute, len(c.relTypes)+len(c.inherRels))
	c.relRoles = make(map[string]map[string]bool, len(c.relTypes))
	c.relMembers = make(map[string]map[string]bool, len(c.relTypes))
	index := func(name string, attrs []Attribute) {
		m := make(map[string]*Attribute, len(attrs))
		for i := range attrs {
			m[attrs[i].Name] = &attrs[i]
		}
		c.relAttrs[name] = m
	}
	for name, t := range c.relTypes {
		index(name, t.Attributes)
		roles := make(map[string]bool, len(t.Participants))
		for _, p := range t.Participants {
			roles[p.Name] = true
		}
		c.relRoles[name] = roles
		members := make(map[string]bool, len(t.Subclasses)+len(t.SubRels))
		for _, sc := range t.Subclasses {
			members[sc.Name] = true
		}
		for _, sr := range t.SubRels {
			members[sr.Name] = true
		}
		c.relMembers[name] = members
	}
	for name, t := range c.inherRels {
		index(name, t.Attributes)
	}
}

// RelAttr resolves a declared attribute of a relationship or inheritance
// relationship type in O(1). The catalog must be validated.
func (c *Catalog) RelAttr(typeName, attr string) (*Attribute, bool) {
	a, ok := c.relAttrs[typeName][attr]
	return a, ok
}

// RelRole reports whether a relationship type declares the participant
// role. The catalog must be validated.
func (c *Catalog) RelRole(typeName, role string) bool {
	return c.relRoles[typeName][role]
}

// RelMemberName reports whether a relationship type declares a subclass or
// sub-relationship of that name. The catalog must be validated.
func (c *Catalog) RelMemberName(typeName, member string) bool {
	return c.relMembers[typeName][member]
}
