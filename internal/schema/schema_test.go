package schema

import (
	"strings"
	"testing"

	"cadcam/internal/domain"
)

// gateCatalog builds the paper's chip-design schema (§3, §4) by hand.
func gateCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	point := domain.Record("Point", domain.Field{Name: "X", Dom: domain.Integer()}, domain.Field{Name: "Y", Dom: domain.Integer()})
	io := domain.Enum("IO", "IN", "OUT")
	if err := c.AddDomain(point); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDomain(io); err != nil {
		t.Fatal(err)
	}

	mustAddObj := func(o *ObjectType) {
		t.Helper()
		if err := c.AddObjectType(o); err != nil {
			t.Fatal(err)
		}
	}

	mustAddObj(&ObjectType{
		Name: "PinType",
		Attributes: []Attribute{
			{Name: "InOut", Domain: io},
			{Name: "PinLocation", Domain: point},
		},
	})
	if err := c.AddRelType(&RelType{
		Name: "WireType",
		Participants: []Participant{
			{Name: "Pin1", Type: "PinType"},
			{Name: "Pin2", Type: "PinType"},
		},
		Attributes: []Attribute{{Name: "Corners", Domain: domain.ListOf(point)}},
	}); err != nil {
		t.Fatal(err)
	}
	mustAddObj(&ObjectType{
		Name: "ElementaryGate",
		Attributes: []Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
			{Name: "Function", Domain: domain.Enum("GateFn", "AND", "OR", "NAND", "NOR")},
			{Name: "GatePosition", Domain: point},
		},
		Subclasses: []Subclass{{Name: "Pins", ElemType: "PinType"}},
		Constraints: []Constraint{
			MustConstraint("count (Pins) = 2 where Pins.InOut = IN"),
			MustConstraint("count (Pins) = 1 where Pins.InOut = OUT"),
		},
	})
	mustAddObj(&ObjectType{
		Name: "GateInterface",
		Attributes: []Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
		},
		Subclasses: []Subclass{{Name: "Pins", ElemType: "PinType"}},
	})
	if err := c.AddInherRelType(&InherRelType{
		Name:        "AllOf_GateInterface",
		Transmitter: "GateInterface",
		Inheriting:  []string{"Length", "Width", "Pins"},
	}); err != nil {
		t.Fatal(err)
	}
	mustAddObj(&ObjectType{
		Name:        "GateImplementation",
		InheritorIn: []string{"AllOf_GateInterface"},
		Attributes: []Attribute{
			{Name: "Function", Domain: domain.MatrixOf(domain.Boolean())},
		},
		Subclasses: []Subclass{
			{Name: "SubGates", Inline: &ObjectType{
				InheritorIn: []string{"AllOf_GateInterface"},
				Attributes:  []Attribute{{Name: "GateLocation", Domain: point}},
			}},
		},
		SubRels: []SubRel{{
			Name:    "Wires",
			RelType: "WireType",
			Where:   constraintPtr(MustConstraint("(Wires.Pin1 in Pins or Wires.Pin1 in SubGates.Pins) and (Wires.Pin2 in Pins or Wires.Pin2 in SubGates.Pins)")),
		}},
	})
	return c
}

func constraintPtr(c Constraint) *Constraint { return &c }

func TestCatalogValidateGateSchema(t *testing.T) {
	c := gateCatalog(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !c.Validated() {
		t.Error("catalog should report validated")
	}
	// Validate is idempotent.
	if err := c.Validate(); err != nil {
		t.Fatalf("second Validate: %v", err)
	}
}

func TestEffectiveTypeLevelInheritance(t *testing.T) {
	c := gateCatalog(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Effective("GateImplementation")
	if !ok {
		t.Fatal("effective type missing")
	}
	// Own attribute.
	fn, ok := e.Attr("Function")
	if !ok || fn.Inherited() {
		t.Error("Function should be an own attribute")
	}
	// Inherited attributes.
	for _, name := range []string{"Length", "Width"} {
		a, ok := e.Attr(name)
		if !ok {
			t.Fatalf("attribute %s missing from effective type", name)
		}
		if !a.Inherited() || a.Via != "AllOf_GateInterface" || a.Source != "GateInterface" {
			t.Errorf("%s: via=%q source=%q", name, a.Via, a.Source)
		}
	}
	// Inherited subclass.
	pins, ok := e.SubclassByName("Pins")
	if !ok || !pins.Inherited() || pins.ElemType != "PinType" {
		t.Errorf("Pins subclass: %+v ok=%v", pins, ok)
	}
	// Own subclass from inline type.
	sg, ok := e.SubclassByName("SubGates")
	if !ok || sg.Inherited() {
		t.Fatal("SubGates should be an own subclass")
	}
	if sg.ElemType != "GateImplementation.SubGates" {
		t.Errorf("inline member type = %q", sg.ElemType)
	}
	inline, ok := c.ObjectType("GateImplementation.SubGates")
	if !ok || !inline.Anonymous {
		t.Fatal("inline type should be registered as anonymous")
	}
	// Inline member type inherits the interface too (component role).
	ie, ok := c.Effective("GateImplementation.SubGates")
	if !ok {
		t.Fatal("inline effective type missing")
	}
	if _, ok := ie.Attr("Length"); !ok {
		t.Error("inline type should inherit Length")
	}
	if _, ok := ie.Attr("GateLocation"); !ok {
		t.Error("inline type should own GateLocation")
	}
}

func TestInterfaceHierarchy(t *testing.T) {
	// §4.2: GateInterface_I --AllOf_GateInterface_I--> GateInterface
	// --AllOf_GateInterface--> implementations. Pins flows two levels.
	c := NewCatalog()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddObjectType(&ObjectType{Name: "PinType", Attributes: []Attribute{{Name: "InOut", Domain: domain.Enum("IO", "IN", "OUT")}}}))
	must(c.AddObjectType(&ObjectType{
		Name:       "GateInterface_I",
		Subclasses: []Subclass{{Name: "Pins", ElemType: "PinType"}},
	}))
	must(c.AddInherRelType(&InherRelType{Name: "AllOf_GateInterface_I", Transmitter: "GateInterface_I", Inheriting: []string{"Pins"}}))
	must(c.AddObjectType(&ObjectType{
		Name:        "GateInterface",
		InheritorIn: []string{"AllOf_GateInterface_I"},
		Attributes: []Attribute{
			{Name: "Length", Domain: domain.Integer()},
			{Name: "Width", Domain: domain.Integer()},
		},
	}))
	// AllOf_GateInterface forwards Pins although GateInterface only
	// inherits it — the inheriting clause resolves against the
	// transmitter's *effective* type.
	must(c.AddInherRelType(&InherRelType{Name: "AllOf_GateInterface", Transmitter: "GateInterface", Inheriting: []string{"Length", "Width", "Pins"}}))
	must(c.AddObjectType(&ObjectType{
		Name:        "GateImplementation",
		InheritorIn: []string{"AllOf_GateInterface"},
	}))
	must(c.Validate())

	e, _ := c.Effective("GateImplementation")
	pins, ok := e.SubclassByName("Pins")
	if !ok {
		t.Fatal("Pins should flow through the hierarchy")
	}
	if pins.Source != "GateInterface_I" {
		t.Errorf("Pins source = %q, want original owner GateInterface_I", pins.Source)
	}
	if pins.Via != "AllOf_GateInterface" {
		t.Errorf("Pins via = %q, want the relationship it arrived through", pins.Via)
	}
}

func TestValidationErrors(t *testing.T) {
	point := domain.Record("Point", domain.Field{Name: "X", Dom: domain.Integer()})
	cases := []struct {
		name  string
		build func(c *Catalog) error
		want  string
	}{
		{"unknown transmitter", func(c *Catalog) error {
			_ = c.AddInherRelType(&InherRelType{Name: "R", Transmitter: "Ghost", Inheriting: []string{"X"}})
			return c.Validate()
		}, "transmitter type"},
		{"unknown inheritor restriction", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			_ = c.AddInherRelType(&InherRelType{Name: "R", Transmitter: "A", Inheritor: "Ghost", Inheriting: []string{"X"}})
			return c.Validate()
		}, "inheritor type"},
		{"inheriting names nothing", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			_ = c.AddInherRelType(&InherRelType{Name: "R", Transmitter: "A", Inheriting: []string{"Nope"}})
			_ = c.AddObjectType(&ObjectType{Name: "B", InheritorIn: []string{"R"}})
			return c.Validate()
		}, "neither as attribute nor subclass"},
		{"inheritor-in unknown rel", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "B", InheritorIn: []string{"Ghost"}})
			return c.Validate()
		}, "unknown inheritance relationship"},
		{"wrong restricted inheritor", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			_ = c.AddObjectType(&ObjectType{Name: "B"})
			_ = c.AddInherRelType(&InherRelType{Name: "R", Transmitter: "A", Inheritor: "B", Inheriting: []string{"X"}})
			_ = c.AddObjectType(&ObjectType{Name: "C", InheritorIn: []string{"R"}})
			return c.Validate()
		}, "requires inheritor type"},
		{"name clash own vs inherited", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			_ = c.AddInherRelType(&InherRelType{Name: "R", Transmitter: "A", Inheriting: []string{"X"}})
			_ = c.AddObjectType(&ObjectType{Name: "B", InheritorIn: []string{"R"}, Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			return c.Validate()
		}, "clashes"},
		{"inheritance cycle", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", InheritorIn: []string{"RB"}, Attributes: []Attribute{{Name: "X", Domain: domain.Integer()}}})
			_ = c.AddObjectType(&ObjectType{Name: "B", InheritorIn: []string{"RA"}, Attributes: []Attribute{{Name: "Y", Domain: domain.Integer()}}})
			_ = c.AddInherRelType(&InherRelType{Name: "RA", Transmitter: "A", Inheriting: []string{"X"}})
			_ = c.AddInherRelType(&InherRelType{Name: "RB", Transmitter: "B", Inheriting: []string{"Y"}})
			return c.Validate()
		}, "cycle"},
		{"subclass unknown member type", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Subclasses: []Subclass{{Name: "S", ElemType: "Ghost"}}})
			return c.Validate()
		}, "not declared"},
		{"subrel unknown rel type", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", SubRels: []SubRel{{Name: "S", RelType: "Ghost"}}})
			return c.Validate()
		}, "not declared"},
		{"duplicate attribute", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{
				{Name: "X", Domain: domain.Integer()}, {Name: "X", Domain: domain.Integer()}}})
			return c.Validate()
		}, "duplicate attribute"},
		{"reserved attribute", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "Surrogate", Domain: domain.Integer()}}})
			return c.Validate()
		}, "reserved"},
		{"nil attribute domain", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X"}}})
			return c.Validate()
		}, "nil domain"},
		{"attr references undeclared object type", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "X", Domain: domain.ObjectRef("Ghost")}}})
			return c.Validate()
		}, "undeclared object type"},
		{"participant undeclared type", func(c *Catalog) error {
			_ = c.AddRelType(&RelType{Name: "R", Participants: []Participant{{Name: "P", Type: "Ghost"}}})
			return c.Validate()
		}, "not declared"},
		{"duplicate participant", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A"})
			_ = c.AddRelType(&RelType{Name: "R", Participants: []Participant{{Name: "P", Type: "A"}, {Name: "P", Type: "A"}}})
			return c.Validate()
		}, "duplicate participant"},
		{"point helper in use", func(c *Catalog) error {
			_ = c.AddObjectType(&ObjectType{Name: "A", Attributes: []Attribute{{Name: "P", Domain: point}, {Name: "P", Domain: point}}})
			return c.Validate()
		}, "duplicate attribute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCatalog()
			err := tc.build(c)
			if err == nil {
				t.Fatalf("expected validation error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestRegistrationErrors(t *testing.T) {
	c := NewCatalog()
	if err := c.AddObjectType(&ObjectType{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddObjectType(&ObjectType{Name: "A"}); err == nil {
		t.Error("duplicate object type accepted")
	}
	if err := c.AddRelType(&RelType{Name: "A", Participants: []Participant{{Name: "x"}}}); err == nil {
		t.Error("rel type clashing with object type accepted")
	}
	if err := c.AddRelType(&RelType{Name: "R"}); err == nil {
		t.Error("rel type without participants accepted")
	}
	if err := c.AddInherRelType(&InherRelType{Name: "I"}); err == nil {
		t.Error("inher rel without transmitter accepted")
	}
	if err := c.AddInherRelType(&InherRelType{Name: "I", Transmitter: "A"}); err == nil {
		t.Error("inher rel without inheriting clause accepted")
	}
	if err := c.AddObjectType(&ObjectType{}); err == nil {
		t.Error("unnamed object type accepted")
	}
	if err := c.AddDomain(domain.Enum("", "X").Named("")); err == nil {
		t.Error("unnamed domain accepted")
	}
	if err := c.AddDomain(domain.Enum("E", "X")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDomain(domain.Enum("E", "Y")); err == nil {
		t.Error("duplicate domain accepted")
	}
	if d, ok := c.Domain("E"); !ok || d.SymbolIndex("X") != 0 {
		t.Error("domain lookup failed")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutation after validation is refused.
	if err := c.AddObjectType(&ObjectType{Name: "Late"}); err == nil {
		t.Error("mutation after Validate accepted")
	}
	if err := c.AddRelType(&RelType{Name: "LateR", Participants: []Participant{{Name: "x"}}}); err == nil {
		t.Error("rel mutation after Validate accepted")
	}
	if err := c.AddInherRelType(&InherRelType{Name: "LateI", Transmitter: "A", Inheriting: []string{"x"}}); err == nil {
		t.Error("inher mutation after Validate accepted")
	}
	if err := c.AddDomain(domain.Enum("LateD", "X")); err == nil {
		t.Error("domain mutation after Validate accepted")
	}
}

func TestInheritsClause(t *testing.T) {
	r := &InherRelType{Name: "R", Transmitter: "T", Inheriting: []string{"Length", "Pins"}}
	if !r.Inherits("Length") || !r.Inherits("Pins") {
		t.Error("declared names should be permeable")
	}
	if r.Inherits("TimeBehavior") {
		t.Error("undeclared names should not be permeable")
	}
}

func TestDescribe(t *testing.T) {
	c := gateCatalog(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Effective("GateImplementation")
	d := e.Describe()
	for _, want := range []string{"GateImplementation", "Length", "inherited from GateInterface", "SubGates", "subrel Wires"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestTypeNameListings(t *testing.T) {
	c := gateCatalog(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	obj := c.ObjectTypeNames()
	if len(obj) < 5 {
		t.Errorf("object types = %v", obj)
	}
	if got := c.RelTypeNames(); len(got) != 1 || got[0] != "WireType" {
		t.Errorf("rel types = %v", got)
	}
	if got := c.InherRelTypeNames(); len(got) != 1 || got[0] != "AllOf_GateInterface" {
		t.Errorf("inher rel types = %v", got)
	}
}
