// Package schema implements the type catalog of the object model:
// object types, relationship types and inheritance-relationship types
// (§3 and §4.1 of the paper), including validation and the computation of
// *effective* types — the attribute/subclass structure an object type has
// after type-level inheritance through every `inheritor-in` declaration.
package schema

import (
	"cadcam/internal/domain"
	"cadcam/internal/expr"
)

// Attribute declares a named, typed attribute of an object or
// relationship type.
type Attribute struct {
	Name   string
	Domain *domain.Domain
}

// Constraint is a local integrity constraint: the parsed expression plus
// its source text for diagnostics.
type Constraint struct {
	Src string
	E   expr.Expr
}

// NewConstraint parses src into a Constraint; it is the normal way
// constraints enter a type definition.
func NewConstraint(src string) (Constraint, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return Constraint{}, err
	}
	return Constraint{Src: src, E: e}, nil
}

// MustConstraint is NewConstraint for statically known-good sources.
func MustConstraint(src string) Constraint {
	c, err := NewConstraint(src)
	if err != nil {
		panic(err)
	}
	return c
}

// Subclass declares a local object subclass of a complex object or
// relationship type ("types-of-subclasses:"). Members are subobjects that
// live and die with the owning object.
//
// Exactly one of ElemType and Inline is set. Inline captures the paper's
// implicitly declared member types, e.g. the SubGates subclass of
// GateImplementation, whose members carry a GateLocation attribute and are
// inheritors in AllOf_GateInterface:
//
//	types-of-subclasses:
//	   SubGates:
//	      inheritor-in:   AllOf_GateInterface;
//	      attributes:     GateLocation: Point;
type Subclass struct {
	Name     string
	ElemType string      // named member type
	Inline   *ObjectType // anonymous member type; registered as Owner.Name
}

// SubRel declares a local relationship subclass
// ("types-of-subrels:"), optionally restricted by a where clause such as
//
//	Wires: WireType
//	   where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and ...
//
// The where expression is checked for every relationship object created in
// the subclass; inside it the participant roles of the relationship type
// resolve against the relationship object, and subclass names against the
// owning complex object.
type SubRel struct {
	Name    string
	RelType string
	Where   *Constraint // nil = unrestricted
}

// ObjectType declares an object type (§3). The zero value is not valid;
// fill the fields and register the type with a Catalog.
type ObjectType struct {
	Name string
	// Anonymous marks inline member types generated for subclasses.
	Anonymous bool
	// InheritorIn lists the inheritance-relationship types this type is an
	// inheritor in (§4.1 "inheritor-in:"). Order is significant only for
	// deterministic error messages.
	InheritorIn []string
	Attributes  []Attribute
	Subclasses  []Subclass
	SubRels     []SubRel
	Constraints []Constraint
}

// Participant declares one role of a relationship type ("relates:").
// SetOf marks multi-valued roles such as
//
//	relates: Bores: set-of object-of-type BoreType;
type Participant struct {
	Name  string
	Type  string // required object type, "" = any object
	SetOf bool
}

// RelType declares a relationship type (§3). Relationship objects may
// carry attributes, local subclasses (the bolt and nut *inside* a
// ScrewingType relationship) and constraints, exactly like objects.
type RelType struct {
	Name         string
	Participants []Participant
	Attributes   []Attribute
	Subclasses   []Subclass
	SubRels      []SubRel
	Constraints  []Constraint
}

// InherRelType declares an inheritance relationship type (§4.1):
//
//	inher-rel-type AllOf_GateInterface =
//	   transmitter: object-of-type GateInterface;
//	   inheritor:   object;
//	   inheriting:  Length, Width, Pins;
//	end;
//
// Transmitter is required. An empty Inheritor admits objects of any type.
// Inheriting lists the attributes and subclasses of the transmitter's
// *effective* type that are permeable. Each concrete binding is itself a
// relationship object which may carry the declared attributes.
type InherRelType struct {
	Name        string
	Transmitter string
	Inheritor   string // "" = any object type
	Inheriting  []string
	Attributes  []Attribute
	Constraints []Constraint
}

// Inherits reports whether name is listed in the permeability clause.
func (r *InherRelType) Inherits(name string) bool {
	for _, n := range r.Inheriting {
		if n == name {
			return true
		}
	}
	return false
}

func (t *ObjectType) attribute(name string) *Attribute {
	for i := range t.Attributes {
		if t.Attributes[i].Name == name {
			return &t.Attributes[i]
		}
	}
	return nil
}

func (t *ObjectType) subclass(name string) *Subclass {
	for i := range t.Subclasses {
		if t.Subclasses[i].Name == name {
			return &t.Subclasses[i]
		}
	}
	return nil
}

func (t *ObjectType) subRel(name string) *SubRel {
	for i := range t.SubRels {
		if t.SubRels[i].Name == name {
			return &t.SubRels[i]
		}
	}
	return nil
}
