package domain

import (
	"errors"
	"fmt"
)

// ErrIncomparable is returned by Compare for values with no defined order.
var ErrIncomparable = errors.New("domain: values are not comparable")

// Compare orders two values: -1, 0 or +1. Integers and reals compare
// numerically with each other; strings lexically; booleans false < true;
// enum symbols lexically (the constraint language never relies on
// declaration order). Structured values and references only support
// equality, so Compare fails for them unless they are equal.
func Compare(a, b Value) (int, error) {
	if IsNull(a) || IsNull(b) {
		return 0, fmt.Errorf("%w: null operand", ErrIncomparable)
	}
	switch x := a.(type) {
	case Int:
		switch y := b.(type) {
		case Int:
			return cmpInt(int64(x), int64(y)), nil
		case Rl:
			return cmpFloat(float64(x), float64(y)), nil
		}
	case Rl:
		switch y := b.(type) {
		case Int:
			return cmpFloat(float64(x), float64(y)), nil
		case Rl:
			return cmpFloat(float64(x), float64(y)), nil
		}
	case Str:
		if y, ok := b.(Str); ok {
			return cmpStr(string(x), string(y)), nil
		}
	case Sym:
		if y, ok := b.(Sym); ok {
			return cmpStr(string(x), string(y)), nil
		}
	case Bool:
		if y, ok := b.(Bool); ok {
			xb, yb := 0, 0
			if x {
				xb = 1
			}
			if y {
				yb = 1
			}
			return cmpInt(int64(xb), int64(yb)), nil
		}
	}
	if a.Equal(b) {
		return 0, nil
	}
	return 0, fmt.Errorf("%w: %s (%s) vs %s (%s)", ErrIncomparable, a, a.Kind(), b, b.Kind())
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// AsFloat converts a numeric value to float64.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Rl:
		return float64(x), true
	}
	return 0, false
}

// AsInt converts an integer value to int64.
func AsInt(v Value) (int64, bool) {
	x, ok := v.(Int)
	return int64(x), ok
}

// Truth interprets a value as a condition: booleans are themselves, null
// is false; everything else is an error in the constraint language, which
// the caller reports.
func Truth(v Value) (bool, bool) {
	if IsNull(v) {
		return false, true
	}
	b, ok := v.(Bool)
	return bool(b), ok
}

// Arith applies an arithmetic operator (+, -, *, /) to two numeric values,
// producing Int when both operands are Int (with / truncating), else Rl.
func Arith(op byte, a, b Value) (Value, error) {
	ai, aok := a.(Int)
	bi, bok := b.(Int)
	if aok && bok {
		switch op {
		case '+':
			return ai + bi, nil
		case '-':
			return ai - bi, nil
		case '*':
			return ai * bi, nil
		case '/':
			if bi == 0 {
				return nil, errors.New("domain: integer division by zero")
			}
			return ai / bi, nil
		}
		return nil, fmt.Errorf("domain: unknown operator %q", op)
	}
	af, aok := AsFloat(a)
	bf, bok := AsFloat(b)
	if !aok || !bok {
		return nil, fmt.Errorf("domain: arithmetic on non-numeric operands %s, %s", a, b)
	}
	switch op {
	case '+':
		return Rl(af + bf), nil
	case '-':
		return Rl(af - bf), nil
	case '*':
		return Rl(af * bf), nil
	case '/':
		if bf == 0 {
			return nil, errors.New("domain: division by zero")
		}
		return Rl(af / bf), nil
	}
	return nil, fmt.Errorf("domain: unknown operator %q", op)
}
