package domain

import (
	"strings"
	"testing"
)

func TestValidateScalars(t *testing.T) {
	ok := []struct {
		d *Domain
		v Value
	}{
		{Integer(), Int(5)},
		{Real(), Rl(1.5)},
		{Real(), Int(3)}, // integers are admissible reals
		{String_(), Str("x")},
		{Boolean(), Bool(false)},
		{Enum("IO", "IN", "OUT"), Sym("IN")},
		{Integer(), NullValue}, // null conforms to everything
		{Integer(), nil},
	}
	for _, c := range ok {
		if err := c.d.Validate(c.v); err != nil {
			t.Errorf("Validate(%s, %v): %v", c.d, c.v, err)
		}
	}
	bad := []struct {
		d *Domain
		v Value
	}{
		{Integer(), Rl(1.5)},
		{Integer(), Str("5")},
		{Real(), Str("1.5")},
		{String_(), Int(1)},
		{Boolean(), Int(0)},
		{Enum("IO", "IN", "OUT"), Sym("SIDEWAYS")},
		{Enum("IO", "IN", "OUT"), Str("IN")},
	}
	for _, c := range bad {
		if err := c.d.Validate(c.v); err == nil {
			t.Errorf("Validate(%s, %s): expected error", c.d, c.v)
		}
	}
}

func TestValidateStructured(t *testing.T) {
	point := Record("Point", Field{"X", Integer()}, Field{"Y", Integer()})
	if err := point.Validate(NewRec("X", Int(1), "Y", Int(2))); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := point.Validate(NewRec("X", Int(1), "Z", Int(2))); err == nil {
		t.Error("undeclared field accepted")
	}
	if err := point.Validate(NewRec("X", Str("a"))); err == nil {
		t.Error("wrong field domain accepted")
	}
	// Partial records are fine: unset fields are null.
	if err := point.Validate(NewRec("X", Int(1))); err != nil {
		t.Errorf("partial record rejected: %v", err)
	}

	pins := SetOf(Record("Pin", Field{"PinId", Integer()}, Field{"InOut", Enum("IO", "IN", "OUT")}))
	good := NewSet(NewRec("PinId", Int(1), "InOut", Sym("IN")), NewRec("PinId", Int(2), "InOut", Sym("OUT")))
	if err := pins.Validate(good); err != nil {
		t.Errorf("valid pin set rejected: %v", err)
	}
	badSet := NewSet(NewRec("PinId", Str("one")))
	if err := pins.Validate(badSet); err == nil {
		t.Error("bad pin set accepted")
	}

	corners := ListOf(point)
	if err := corners.Validate(NewList(NewRec("X", Int(0), "Y", Int(0)))); err != nil {
		t.Errorf("valid corner list rejected: %v", err)
	}
	if err := corners.Validate(NewList(Int(7))); err == nil {
		t.Error("non-record corner accepted")
	}
	if err := corners.Validate(NewSet()); err == nil {
		t.Error("set where list expected accepted")
	}

	truth := MatrixOf(Boolean())
	if err := truth.Validate(NewMatrix(2, 1, Bool(true), Bool(false))); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	if err := truth.Validate(NewMatrix(1, 1, Int(1))); err == nil {
		t.Error("integer cell in boolean matrix accepted")
	}
}

func TestValidateObjectRef(t *testing.T) {
	d := ObjectRef("PinType")
	if err := d.Validate(Ref(12)); err != nil {
		t.Errorf("ref rejected: %v", err)
	}
	if err := d.Validate(Int(12)); err == nil {
		t.Error("non-ref accepted for object domain")
	}
}

func TestValidationErrorMessage(t *testing.T) {
	point := Record("Point", Field{"X", Integer()}, Field{"Y", Integer()})
	corners := ListOf(point)
	err := corners.Validate(NewList(NewRec("X", Str("bad"))))
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "[0]") || !strings.Contains(msg, "X") {
		t.Errorf("error should locate the failure, got %q", msg)
	}
}
