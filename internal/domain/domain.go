// Package domain implements the value and type system of the object model
// described in "Complex and Composite Objects in CAD/CAM Databases"
// (Wilkes, Klahold, Schlageter, 1988/89), section 3:
//
//	Attribute values belong to a particular domain. Domains may be simple
//	(integer, string, etc.) or structured (using constructors as record,
//	list-of, set-of, etc.).
//
// A Domain describes the set of admissible values; a Value is a concrete
// attribute value. Domains are immutable after construction and safe for
// concurrent use.
package domain

import (
	"fmt"
	"strings"
)

// Kind enumerates the built-in domain constructors of the object model.
type Kind uint8

const (
	KindInvalid   Kind = iota
	KindInteger        // 64-bit signed integer
	KindReal           // IEEE-754 double
	KindString         // character string
	KindBoolean        // truth value
	KindEnum           // named enumeration domain, e.g. domain I/O = (IN, OUT)
	KindRecord         // record constructor, e.g. domain Point = (X, Y: integer)
	KindList           // list-of constructor (ordered, duplicates allowed)
	KindSet            // set-of constructor (unordered, duplicates collapsed)
	KindMatrix         // matrix-of constructor, e.g. Function: matrix-of boolean
	KindSurrogate      // reference to an object by its system-wide surrogate
	KindNull           // the kind of the distinguished null value
)

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindInteger:
		return "integer"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindBoolean:
		return "boolean"
	case KindEnum:
		return "enum"
	case KindRecord:
		return "record"
	case KindList:
		return "list-of"
	case KindSet:
		return "set-of"
	case KindMatrix:
		return "matrix-of"
	case KindSurrogate:
		return "object"
	case KindNull:
		return "null"
	default:
		return "invalid"
	}
}

// Field is one named component of a record domain.
type Field struct {
	Name string
	Dom  *Domain
}

// Domain describes the set of values an attribute may take. The zero value
// is invalid; use the constructor functions.
type Domain struct {
	name    string // optional user-declared name ("" for anonymous)
	kind    Kind
	symbols []string // KindEnum: declared symbols in declaration order
	fields  []Field  // KindRecord
	elem    *Domain  // KindList, KindSet, KindMatrix
	objType string   // KindSurrogate: required object type name ("" = any object)
}

var (
	integerDom = &Domain{kind: KindInteger}
	realDom    = &Domain{kind: KindReal}
	stringDom  = &Domain{kind: KindString}
	booleanDom = &Domain{kind: KindBoolean}
	anyObjDom  = &Domain{kind: KindSurrogate}
)

// Integer returns the built-in integer domain.
func Integer() *Domain { return integerDom }

// Real returns the built-in real domain.
func Real() *Domain { return realDom }

// String_ returns the built-in string domain. (Named with a trailing
// underscore because Domain has a String method.)
func String_() *Domain { return stringDom }

// Boolean returns the built-in boolean domain.
func Boolean() *Domain { return booleanDom }

// Enum constructs a named enumeration domain such as
//
//	domain I/O = (IN, OUT);
//
// It panics if no symbols are given or a symbol repeats, since domains are
// always constructed from validated schema definitions.
func Enum(name string, symbols ...string) *Domain {
	if len(symbols) == 0 {
		panic("domain: enum needs at least one symbol")
	}
	seen := make(map[string]bool, len(symbols))
	for _, s := range symbols {
		if seen[s] {
			panic(fmt.Sprintf("domain: duplicate enum symbol %q", s))
		}
		seen[s] = true
	}
	return &Domain{name: name, kind: KindEnum, symbols: append([]string(nil), symbols...)}
}

// Record constructs a record domain such as
//
//	domain Point = (X, Y: integer);
//
// Field names must be unique.
func Record(name string, fields ...Field) *Domain {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Dom == nil {
			panic(fmt.Sprintf("domain: record field %q has nil domain", f.Name))
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("domain: duplicate record field %q", f.Name))
		}
		seen[f.Name] = true
	}
	return &Domain{name: name, kind: KindRecord, fields: append([]Field(nil), fields...)}
}

// ListOf constructs a list-of domain.
func ListOf(elem *Domain) *Domain { return &Domain{kind: KindList, elem: elem} }

// SetOf constructs a set-of domain.
func SetOf(elem *Domain) *Domain { return &Domain{kind: KindSet, elem: elem} }

// MatrixOf constructs a matrix-of domain.
func MatrixOf(elem *Domain) *Domain { return &Domain{kind: KindMatrix, elem: elem} }

// ObjectRef constructs a surrogate domain restricted to objects of the
// named type; an empty name admits objects of any type (the paper's
// "<name>: object").
func ObjectRef(objType string) *Domain {
	if objType == "" {
		return anyObjDom
	}
	return &Domain{kind: KindSurrogate, objType: objType}
}

// Named returns a copy of d carrying a user-declared domain name, as in
// "domain AreaDom = record: ...".
func (d *Domain) Named(name string) *Domain {
	c := *d
	c.name = name
	return &c
}

// Name reports the user-declared name, or "" for anonymous domains.
func (d *Domain) Name() string { return d.name }

// Kind reports the domain constructor.
func (d *Domain) Kind() Kind { return d.kind }

// Symbols returns the declared symbols of an enum domain, in order.
func (d *Domain) Symbols() []string { return d.symbols }

// SymbolIndex reports the declaration position of an enum symbol, or -1.
func (d *Domain) SymbolIndex(sym string) int {
	for i, s := range d.symbols {
		if s == sym {
			return i
		}
	}
	return -1
}

// Fields returns the fields of a record domain.
func (d *Domain) Fields() []Field { return d.fields }

// FieldDomain returns the domain of the named record field, or nil.
func (d *Domain) FieldDomain(name string) *Domain {
	for _, f := range d.fields {
		if f.Name == name {
			return f.Dom
		}
	}
	return nil
}

// Elem returns the element domain of a list/set/matrix domain.
func (d *Domain) Elem() *Domain { return d.elem }

// ObjectType returns the required object type of a surrogate domain
// ("" = any object).
func (d *Domain) ObjectType() string { return d.objType }

// String renders the domain in DDL-like syntax.
func (d *Domain) String() string {
	if d == nil {
		return "<nil>"
	}
	if d.name != "" {
		return d.name
	}
	switch d.kind {
	case KindEnum:
		return "(" + strings.Join(d.symbols, ", ") + ")"
	case KindRecord:
		var b strings.Builder
		b.WriteString("record (")
		for i, f := range d.fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %s", f.Name, f.Dom)
		}
		b.WriteString(")")
		return b.String()
	case KindList:
		return "list-of " + d.elem.String()
	case KindSet:
		return "set-of " + d.elem.String()
	case KindMatrix:
		return "matrix-of " + d.elem.String()
	case KindSurrogate:
		if d.objType != "" {
			return "object-of-type " + d.objType
		}
		return "object"
	default:
		return d.kind.String()
	}
}

// Same reports structural equality of two domains (names are ignored so a
// named alias matches its definition).
func Same(a, b *Domain) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindEnum:
		if len(a.symbols) != len(b.symbols) {
			return false
		}
		for i := range a.symbols {
			if a.symbols[i] != b.symbols[i] {
				return false
			}
		}
		return true
	case KindRecord:
		if len(a.fields) != len(b.fields) {
			return false
		}
		for i := range a.fields {
			if a.fields[i].Name != b.fields[i].Name || !Same(a.fields[i].Dom, b.fields[i].Dom) {
				return false
			}
		}
		return true
	case KindList, KindSet, KindMatrix:
		return Same(a.elem, b.elem)
	case KindSurrogate:
		return a.objType == b.objType
	default:
		return true
	}
}
