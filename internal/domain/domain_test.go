package domain

import (
	"strings"
	"testing"
)

func TestBuiltinDomains(t *testing.T) {
	cases := []struct {
		dom  *Domain
		kind Kind
		str  string
	}{
		{Integer(), KindInteger, "integer"},
		{Real(), KindReal, "real"},
		{String_(), KindString, "string"},
		{Boolean(), KindBoolean, "boolean"},
	}
	for _, c := range cases {
		if c.dom.Kind() != c.kind {
			t.Errorf("kind of %s = %v, want %v", c.str, c.dom.Kind(), c.kind)
		}
		if c.dom.String() != c.str {
			t.Errorf("String() = %q, want %q", c.dom.String(), c.str)
		}
	}
}

func TestEnumDomain(t *testing.T) {
	io := Enum("I/O", "IN", "OUT")
	if io.Name() != "I/O" {
		t.Errorf("name = %q", io.Name())
	}
	if got := io.SymbolIndex("OUT"); got != 1 {
		t.Errorf("SymbolIndex(OUT) = %d, want 1", got)
	}
	if got := io.SymbolIndex("INOUT"); got != -1 {
		t.Errorf("SymbolIndex(INOUT) = %d, want -1", got)
	}
	if len(io.Symbols()) != 2 {
		t.Errorf("symbols = %v", io.Symbols())
	}
}

func TestEnumDomainPanics(t *testing.T) {
	mustPanic(t, "empty enum", func() { Enum("E") })
	mustPanic(t, "duplicate symbol", func() { Enum("E", "A", "A") })
}

func TestRecordDomain(t *testing.T) {
	point := Record("Point", Field{"X", Integer()}, Field{"Y", Integer()})
	if point.FieldDomain("X") != Integer() {
		t.Error("field X should be integer")
	}
	if point.FieldDomain("Z") != nil {
		t.Error("field Z should be absent")
	}
	if len(point.Fields()) != 2 {
		t.Errorf("fields = %v", point.Fields())
	}
}

func TestRecordDomainPanics(t *testing.T) {
	mustPanic(t, "nil field domain", func() { Record("R", Field{"X", nil}) })
	mustPanic(t, "duplicate field", func() {
		Record("R", Field{"X", Integer()}, Field{"X", Real()})
	})
}

func TestConstructorDomains(t *testing.T) {
	l := ListOf(Integer())
	if l.Kind() != KindList || l.Elem() != Integer() {
		t.Errorf("list-of integer malformed: %s", l)
	}
	s := SetOf(Record("Pin", Field{"PinId", Integer()}))
	if s.Kind() != KindSet || s.Elem().Kind() != KindRecord {
		t.Errorf("set-of record malformed: %s", s)
	}
	m := MatrixOf(Boolean())
	if m.String() != "matrix-of boolean" {
		t.Errorf("matrix String = %q", m.String())
	}
}

func TestObjectRefDomain(t *testing.T) {
	anyRef := ObjectRef("")
	if anyRef.ObjectType() != "" || anyRef.String() != "object" {
		t.Errorf("any-object domain malformed: %s", anyRef)
	}
	pin := ObjectRef("PinType")
	if pin.ObjectType() != "PinType" {
		t.Errorf("ObjectType = %q", pin.ObjectType())
	}
	if pin.String() != "object-of-type PinType" {
		t.Errorf("String = %q", pin.String())
	}
}

func TestDomainSame(t *testing.T) {
	p1 := Record("Point", Field{"X", Integer()}, Field{"Y", Integer()})
	p2 := Record("Punkt", Field{"X", Integer()}, Field{"Y", Integer()})
	if !Same(p1, p2) {
		t.Error("structurally equal records with different names should be Same")
	}
	p3 := Record("Point", Field{"X", Integer()}, Field{"Y", Real()})
	if Same(p1, p3) {
		t.Error("records with different field domains should not be Same")
	}
	if !Same(ListOf(Integer()), ListOf(Integer())) {
		t.Error("equal list domains should be Same")
	}
	if Same(ListOf(Integer()), SetOf(Integer())) {
		t.Error("list and set should differ")
	}
	if Same(nil, Integer()) || !Same(nil, nil) {
		t.Error("nil handling wrong")
	}
	if Same(ObjectRef("A"), ObjectRef("B")) {
		t.Error("object refs of different types should differ")
	}
	if !Same(Enum("a", "X", "Y"), Enum("b", "X", "Y")) {
		t.Error("equal enums should be Same")
	}
	if Same(Enum("a", "X", "Y"), Enum("a", "Y", "X")) {
		t.Error("enum symbol order is significant")
	}
}

func TestNamedDomain(t *testing.T) {
	d := ListOf(Integer()).Named("Trace")
	if d.Name() != "Trace" || d.String() != "Trace" {
		t.Errorf("named domain: name=%q str=%q", d.Name(), d.String())
	}
	if !Same(d, ListOf(Integer())) {
		t.Error("naming must not change structure")
	}
}

func TestDomainStringRendering(t *testing.T) {
	point := Record("", Field{"X", Integer()}, Field{"Y", Integer()})
	want := "record (X: integer; Y: integer)"
	if point.String() != want {
		t.Errorf("record String = %q, want %q", point.String(), want)
	}
	e := Enum("", "IN", "OUT")
	if e.String() != "(IN, OUT)" {
		t.Errorf("enum String = %q", e.String())
	}
	var nilDom *Domain
	if nilDom.String() != "<nil>" {
		t.Errorf("nil String = %q", nilDom.String())
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSurrogateString(t *testing.T) {
	if got := Surrogate(42).String(); got != "@42" {
		t.Errorf("surrogate string = %q", got)
	}
}

func TestKindString(t *testing.T) {
	for k := KindInvalid; k <= KindNull; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if !strings.Contains(Kind(200).String(), "invalid") {
		t.Error("unknown kind should render as invalid")
	}
}
