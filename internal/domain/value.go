package domain

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Surrogate is the system-wide object identifier the model gives every
// object automatically ("any object has an attribute called surrogate
// which allows a system-wide identification", §3). Zero is never a valid
// surrogate.
type Surrogate uint64

// String renders the surrogate in the form used throughout logs and tests.
func (s Surrogate) String() string { return "@" + strconv.FormatUint(uint64(s), 10) }

// Value is a concrete attribute value. Values are immutable by convention:
// all mutating helpers return fresh values, so a Value may be shared
// between the store, transactions and inheritors without copying.
type Value interface {
	// Kind reports the value's domain constructor.
	Kind() Kind
	// String renders the value for diagnostics and the shell.
	String() string
	// Equal reports deep equality with another value.
	Equal(Value) bool
	// Copy returns a deep copy. Scalars return themselves.
	Copy() Value
}

// ---- scalar values ----

// Int is an integer value.
type Int int64

func (v Int) Kind() Kind     { return KindInteger }
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }
func (v Int) Copy() Value    { return v }
func (v Int) Equal(o Value) bool {
	switch w := o.(type) {
	case Int:
		return v == w
	case Rl:
		return float64(v) == float64(w)
	}
	return false
}

// Rl is a real (floating point) value.
type Rl float64

func (v Rl) Kind() Kind     { return KindReal }
func (v Rl) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }
func (v Rl) Copy() Value    { return v }
func (v Rl) Equal(o Value) bool {
	switch w := o.(type) {
	case Rl:
		return v == w
	case Int:
		return float64(v) == float64(w)
	}
	return false
}

// Str is a string value.
type Str string

func (v Str) Kind() Kind     { return KindString }
func (v Str) String() string { return strconv.Quote(string(v)) }
func (v Str) Copy() Value    { return v }
func (v Str) Equal(o Value) bool {
	w, ok := o.(Str)
	return ok && v == w
}

// Bool is a boolean value.
type Bool bool

func (v Bool) Kind() Kind     { return KindBoolean }
func (v Bool) String() string { return strconv.FormatBool(bool(v)) }
func (v Bool) Copy() Value    { return v }
func (v Bool) Equal(o Value) bool {
	w, ok := o.(Bool)
	return ok && v == w
}

// Sym is an enumeration symbol such as IN, OUT, AND, NOR.
type Sym string

func (v Sym) Kind() Kind     { return KindEnum }
func (v Sym) String() string { return string(v) }
func (v Sym) Copy() Value    { return v }
func (v Sym) Equal(o Value) bool {
	w, ok := o.(Sym)
	return ok && v == w
}

// Ref is a reference to an object by surrogate.
type Ref Surrogate

func (v Ref) Kind() Kind     { return KindSurrogate }
func (v Ref) String() string { return Surrogate(v).String() }
func (v Ref) Copy() Value    { return v }
func (v Ref) Equal(o Value) bool {
	w, ok := o.(Ref)
	return ok && v == w
}

// Null is the distinguished absent value. Unset attributes and inherited
// attributes of an unbound inheritor read as Null.
type nullValue struct{}

// NullValue is the single null value.
var NullValue Value = nullValue{}

func (nullValue) Kind() Kind     { return KindNull }
func (nullValue) String() string { return "null" }
func (nullValue) Copy() Value    { return NullValue }
func (nullValue) Equal(o Value) bool {
	_, ok := o.(nullValue)
	return ok
}

// IsNull reports whether v is nil or the null value.
func IsNull(v Value) bool {
	if v == nil {
		return true
	}
	_, ok := v.(nullValue)
	return ok
}

// ---- structured values ----

// Rec is a record value with ordered fields.
type Rec struct {
	names []string
	vals  []Value
}

// NewRec builds a record value; pairs must alternate field name, value.
func NewRec(pairs ...any) *Rec {
	if len(pairs)%2 != 0 {
		panic("domain: NewRec needs name/value pairs")
	}
	r := &Rec{}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("domain: NewRec field name must be a string")
		}
		val, ok := pairs[i+1].(Value)
		if !ok {
			panic(fmt.Sprintf("domain: NewRec field %q value must be a Value", name))
		}
		r.names = append(r.names, name)
		r.vals = append(r.vals, val)
	}
	return r
}

func (r *Rec) Kind() Kind { return KindRecord }

// Len reports the number of fields.
func (r *Rec) Len() int { return len(r.names) }

// FieldName returns the i-th field name.
func (r *Rec) FieldName(i int) string { return r.names[i] }

// FieldValue returns the i-th field value.
func (r *Rec) FieldValue(i int) Value { return r.vals[i] }

// Get returns the named field's value, or Null if absent.
func (r *Rec) Get(name string) Value {
	for i, n := range r.names {
		if n == name {
			return r.vals[i]
		}
	}
	return NullValue
}

// With returns a copy of the record with the named field set.
func (r *Rec) With(name string, v Value) *Rec {
	c := r.Copy().(*Rec)
	for i, n := range c.names {
		if n == name {
			c.vals[i] = v
			return c
		}
	}
	c.names = append(c.names, name)
	c.vals = append(c.vals, v)
	return c
}

func (r *Rec) String() string {
	var b strings.Builder
	b.WriteString("(")
	for i := range r.names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", r.names[i], r.vals[i])
	}
	b.WriteString(")")
	return b.String()
}

func (r *Rec) Copy() Value {
	c := &Rec{names: append([]string(nil), r.names...), vals: make([]Value, len(r.vals))}
	for i, v := range r.vals {
		c.vals[i] = v.Copy()
	}
	return c
}

func (r *Rec) Equal(o Value) bool {
	w, ok := o.(*Rec)
	if !ok || len(r.names) != len(w.names) {
		return false
	}
	for i := range r.names {
		if r.names[i] != w.names[i] || !r.vals[i].Equal(w.vals[i]) {
			return false
		}
	}
	return true
}

// List is an ordered sequence of values.
type List struct {
	elems []Value
}

// NewList builds a list value.
func NewList(elems ...Value) *List { return &List{elems: append([]Value(nil), elems...)} }

func (l *List) Kind() Kind     { return KindList }
func (l *List) Len() int       { return len(l.elems) }
func (l *List) At(i int) Value { return l.elems[i] }

// Elems returns the backing slice; callers must not mutate it.
func (l *List) Elems() []Value { return l.elems }

// Append returns a new list with v appended.
func (l *List) Append(v Value) *List {
	return &List{elems: append(append([]Value(nil), l.elems...), v)}
}

func (l *List) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, v := range l.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString("]")
	return b.String()
}

func (l *List) Copy() Value {
	c := &List{elems: make([]Value, len(l.elems))}
	for i, v := range l.elems {
		c.elems[i] = v.Copy()
	}
	return c
}

func (l *List) Equal(o Value) bool {
	w, ok := o.(*List)
	if !ok || len(l.elems) != len(w.elems) {
		return false
	}
	for i := range l.elems {
		if !l.elems[i].Equal(w.elems[i]) {
			return false
		}
	}
	return true
}

// Set is an unordered collection of distinct values. Membership is decided
// by Equal; sets in CAD schemas are small (pins, bores), so the linear
// representation is deliberate.
type Set struct {
	elems []Value
}

// NewSet builds a set value, collapsing duplicates.
func NewSet(elems ...Value) *Set {
	s := &Set{}
	for _, v := range elems {
		s.add(v)
	}
	return s
}

func (s *Set) add(v Value) {
	for _, e := range s.elems {
		if e.Equal(v) {
			return
		}
	}
	s.elems = append(s.elems, v)
}

func (s *Set) Kind() Kind { return KindSet }
func (s *Set) Len() int   { return len(s.elems) }

// Elems returns the members in insertion order; callers must not mutate it.
func (s *Set) Elems() []Value { return s.elems }

// Contains reports membership by deep equality.
func (s *Set) Contains(v Value) bool {
	for _, e := range s.elems {
		if e.Equal(v) {
			return true
		}
	}
	return false
}

// With returns a new set including v.
func (s *Set) With(v Value) *Set {
	c := &Set{elems: append([]Value(nil), s.elems...)}
	c.add(v)
	return c
}

// Without returns a new set excluding v.
func (s *Set) Without(v Value) *Set {
	c := &Set{}
	for _, e := range s.elems {
		if !e.Equal(v) {
			c.elems = append(c.elems, e)
		}
	}
	return c
}

func (s *Set) String() string {
	parts := make([]string, len(s.elems))
	for i, v := range s.elems {
		parts[i] = v.String()
	}
	// Canonical rendering, so log output is stable across insertion orders.
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

func (s *Set) Copy() Value {
	c := &Set{elems: make([]Value, len(s.elems))}
	for i, v := range s.elems {
		c.elems[i] = v.Copy()
	}
	return c
}

func (s *Set) Equal(o Value) bool {
	w, ok := o.(*Set)
	if !ok || len(s.elems) != len(w.elems) {
		return false
	}
	for _, v := range s.elems {
		if !w.Contains(v) {
			return false
		}
	}
	return true
}

// Matrix is a dense rows×cols matrix, e.g. "Function: matrix-of boolean"
// describing a gate's truth table.
type Matrix struct {
	rows, cols int
	cells      []Value
}

// NewMatrix builds a matrix from row-major cells; len(cells) must equal
// rows*cols.
func NewMatrix(rows, cols int, cells ...Value) *Matrix {
	if rows < 0 || cols < 0 || len(cells) != rows*cols {
		panic(fmt.Sprintf("domain: matrix %dx%d needs %d cells, got %d", rows, cols, rows*cols, len(cells)))
	}
	return &Matrix{rows: rows, cols: cols, cells: append([]Value(nil), cells...)}
}

func (m *Matrix) Kind() Kind { return KindMatrix }

// Rows reports the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the cell at (row, col).
func (m *Matrix) At(r, c int) Value { return m.cells[r*m.cols+c] }

func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("[")
	for r := 0; r < m.rows; r++ {
		if r > 0 {
			b.WriteString("; ")
		}
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				b.WriteString(" ")
			}
			b.WriteString(m.At(r, c).String())
		}
	}
	b.WriteString("]")
	return b.String()
}

func (m *Matrix) Copy() Value {
	c := &Matrix{rows: m.rows, cols: m.cols, cells: make([]Value, len(m.cells))}
	for i, v := range m.cells {
		c.cells[i] = v.Copy()
	}
	return c
}

func (m *Matrix) Equal(o Value) bool {
	w, ok := o.(*Matrix)
	if !ok || m.rows != w.rows || m.cols != w.cols {
		return false
	}
	for i := range m.cells {
		if !m.cells[i].Equal(w.cells[i]) {
			return false
		}
	}
	return true
}
