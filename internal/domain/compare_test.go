package domain

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Rl(1.5), -1},
		{Rl(2.5), Int(2), 1},
		{Rl(2), Rl(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Sym("AND"), Sym("OR"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%s, %s): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparable(t *testing.T) {
	bad := [][2]Value{
		{Int(1), Str("1")},
		{Bool(true), Int(1)},
		{NullValue, Int(1)},
		{Int(1), NullValue},
		{NewList(Int(1)), NewList(Int(2))},
	}
	for _, c := range bad {
		if _, err := Compare(c[0], c[1]); !errors.Is(err, ErrIncomparable) {
			t.Errorf("Compare(%s, %s): want ErrIncomparable, got %v", c[0], c[1], err)
		}
	}
	// Equal structured values compare as 0 even without an order.
	if got, err := Compare(NewList(Int(1)), NewList(Int(1))); err != nil || got != 0 {
		t.Errorf("equal lists: got %d, %v", got, err)
	}
}

func TestConversions(t *testing.T) {
	if f, ok := AsFloat(Int(3)); !ok || f != 3 {
		t.Error("AsFloat(Int) wrong")
	}
	if f, ok := AsFloat(Rl(2.5)); !ok || f != 2.5 {
		t.Error("AsFloat(Rl) wrong")
	}
	if _, ok := AsFloat(Str("x")); ok {
		t.Error("AsFloat(Str) should fail")
	}
	if n, ok := AsInt(Int(-4)); !ok || n != -4 {
		t.Error("AsInt wrong")
	}
	if _, ok := AsInt(Rl(4)); ok {
		t.Error("AsInt(Rl) should fail")
	}
}

func TestTruth(t *testing.T) {
	if b, ok := Truth(Bool(true)); !ok || !b {
		t.Error("Truth(true)")
	}
	if b, ok := Truth(NullValue); !ok || b {
		t.Error("Truth(null) should be valid false")
	}
	if _, ok := Truth(Int(1)); ok {
		t.Error("Truth(Int) should be invalid")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   byte
		a, b Value
		want Value
	}{
		{'+', Int(2), Int(3), Int(5)},
		{'-', Int(2), Int(3), Int(-1)},
		{'*', Int(4), Int(3), Int(12)},
		{'/', Int(7), Int(2), Int(3)}, // integer division truncates
		{'+', Int(1), Rl(0.5), Rl(1.5)},
		{'*', Rl(2.5), Int(2), Rl(5)},
		{'/', Rl(5), Rl(2), Rl(2.5)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("Arith(%c, %s, %s): %v", c.op, c.a, c.b, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Arith(%c, %s, %s) = %s, want %s", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := Arith('/', Int(1), Int(0)); err == nil {
		t.Error("integer division by zero should fail")
	}
	if _, err := Arith('/', Rl(1), Rl(0)); err == nil {
		t.Error("real division by zero should fail")
	}
	if _, err := Arith('+', Str("a"), Int(1)); err == nil {
		t.Error("arith on string should fail")
	}
	if _, err := Arith('%', Int(1), Int(1)); err == nil {
		t.Error("unknown operator should fail")
	}
}

type numValue struct{ V Value }

func (numValue) Generate(r *rand.Rand, _ int) reflect.Value {
	var v Value
	if r.Intn(2) == 0 {
		v = Int(r.Int63n(2000) - 1000)
	} else {
		v = Rl((r.Float64() - 0.5) * 2000)
	}
	return reflect.ValueOf(numValue{V: v})
}

// Property: Compare is antisymmetric on numbers.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b numValue) bool {
		x, err1 := Compare(a.V, b.V)
		y, err2 := Compare(b.V, a.V)
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive on numbers.
func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c numValue) bool {
		ab, _ := Compare(a.V, b.V)
		bc, _ := Compare(b.V, c.V)
		ac, _ := Compare(a.V, c.V)
		if ab <= 0 && bc <= 0 {
			return ac <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addition commutes (within float tolerance, exact for ints).
func TestQuickArithCommutative(t *testing.T) {
	f := func(a, b numValue) bool {
		x, err1 := Arith('+', a.V, b.V)
		y, err2 := Arith('+', b.V, a.V)
		return err1 == nil && err2 == nil && x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
