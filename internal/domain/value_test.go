package domain

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarValues(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInteger, "42"},
		{Int(-7), KindInteger, "-7"},
		{Rl(2.5), KindReal, "2.5"},
		{Str("hagen"), KindString, `"hagen"`},
		{Bool(true), KindBoolean, "true"},
		{Sym("NAND"), KindEnum, "NAND"},
		{Ref(9), KindSurrogate, "@9"},
		{NullValue, KindNull, "null"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.str, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
		if !c.v.Equal(c.v.Copy()) {
			t.Errorf("%s: value must equal its copy", c.str)
		}
	}
}

func TestNumericCrossEquality(t *testing.T) {
	if !Int(3).Equal(Rl(3)) || !Rl(3).Equal(Int(3)) {
		t.Error("3 (int) and 3.0 (real) should be equal")
	}
	if Int(3).Equal(Rl(3.5)) {
		t.Error("3 != 3.5")
	}
	if Int(1).Equal(Str("1")) {
		t.Error("int and string are never equal")
	}
	if Sym("A").Equal(Str("A")) {
		t.Error("symbol and string are never equal")
	}
}

func TestIsNull(t *testing.T) {
	if !IsNull(nil) || !IsNull(NullValue) {
		t.Error("nil and NullValue are null")
	}
	if IsNull(Int(0)) || IsNull(Str("")) {
		t.Error("zero values are not null")
	}
}

func TestRecValue(t *testing.T) {
	p := NewRec("X", Int(1), "Y", Int(2))
	if p.Len() != 2 || !p.Get("X").Equal(Int(1)) || !p.Get("Y").Equal(Int(2)) {
		t.Fatalf("record malformed: %s", p)
	}
	if !IsNull(p.Get("Z")) {
		t.Error("absent field should read null")
	}
	q := p.With("Y", Int(5))
	if !p.Get("Y").Equal(Int(2)) {
		t.Error("With must not mutate the receiver")
	}
	if !q.Get("Y").Equal(Int(5)) {
		t.Error("With must set the field on the copy")
	}
	r := p.With("Z", Int(9))
	if !r.Get("Z").Equal(Int(9)) {
		t.Error("With must append a new field")
	}
	if p.String() != "(X: 1, Y: 2)" {
		t.Errorf("record String = %q", p.String())
	}
	if p.FieldName(0) != "X" || !p.FieldValue(1).Equal(Int(2)) {
		t.Error("positional accessors wrong")
	}
}

func TestRecPanics(t *testing.T) {
	mustPanic(t, "odd pairs", func() { NewRec("X") })
	mustPanic(t, "non-string name", func() { NewRec(1, Int(1)) })
	mustPanic(t, "non-value", func() { NewRec("X", 17) })
}

func TestListValue(t *testing.T) {
	l := NewList(Int(1), Int(2))
	l2 := l.Append(Int(3))
	if l.Len() != 2 || l2.Len() != 3 {
		t.Fatalf("append must not mutate: %s %s", l, l2)
	}
	if !l2.At(2).Equal(Int(3)) {
		t.Error("appended element missing")
	}
	if l.Equal(l2) {
		t.Error("lists of different length are unequal")
	}
	if !l.Equal(NewList(Int(1), Int(2))) {
		t.Error("structurally equal lists should be equal")
	}
	if l.Equal(NewList(Int(2), Int(1))) {
		t.Error("list order is significant")
	}
	if l.String() != "[1, 2]" {
		t.Errorf("list String = %q", l.String())
	}
}

func TestSetValue(t *testing.T) {
	s := NewSet(Int(1), Int(2), Int(1))
	if s.Len() != 2 {
		t.Fatalf("duplicates must collapse: %s", s)
	}
	if !s.Contains(Int(2)) || s.Contains(Int(3)) {
		t.Error("membership wrong")
	}
	s2 := s.With(Int(3))
	if s.Len() != 2 || s2.Len() != 3 {
		t.Error("With must not mutate")
	}
	s3 := s2.Without(Int(1))
	if s3.Contains(Int(1)) || s3.Len() != 2 {
		t.Error("Without wrong")
	}
	if !NewSet(Int(1), Int(2)).Equal(NewSet(Int(2), Int(1))) {
		t.Error("set equality must ignore order")
	}
	if NewSet(Int(1)).Equal(NewSet(Int(2))) {
		t.Error("different sets must be unequal")
	}
	if got := NewSet(Int(2), Int(1)).String(); got != "{1, 2}" {
		t.Errorf("set String should be canonical, got %q", got)
	}
}

func TestMatrixValue(t *testing.T) {
	m := NewMatrix(2, 2, Bool(false), Bool(true), Bool(true), Bool(false))
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("shape wrong")
	}
	if !m.At(0, 1).Equal(Bool(true)) || !m.At(1, 0).Equal(Bool(true)) {
		t.Error("cell addressing wrong")
	}
	if !m.Equal(m.Copy()) {
		t.Error("matrix must equal its copy")
	}
	if m.Equal(NewMatrix(1, 4, Bool(false), Bool(true), Bool(true), Bool(false))) {
		t.Error("matrices of different shape must be unequal")
	}
	if m.String() != "[false true; true false]" {
		t.Errorf("matrix String = %q", m.String())
	}
	mustPanic(t, "bad cell count", func() { NewMatrix(2, 2, Bool(true)) })
}

func TestDeepCopyIsolation(t *testing.T) {
	inner := NewRec("A", Int(1))
	l := NewList(inner)
	c := l.Copy().(*List)
	// Mutating a copy's record via With produces new values, so the only
	// way to observe sharing is pointer identity.
	if c.At(0) == l.At(0) {
		t.Error("Copy must deep-copy structured elements")
	}
	if !c.Equal(l) {
		t.Error("copy must be equal")
	}
}

// genValue builds a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Int(r.Int63n(1000) - 500)
		case 1:
			return Rl(r.Float64() * 100)
		case 2:
			return Str(string(rune('a' + r.Intn(26))))
		case 3:
			return Bool(r.Intn(2) == 0)
		default:
			return Sym([]string{"IN", "OUT", "AND", "OR"}[r.Intn(4)])
		}
	}
	switch r.Intn(8) {
	case 0:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return NewList(elems...)
	case 1:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return NewSet(elems...)
	case 2:
		return NewRec("X", genValue(r, depth-1), "Y", genValue(r, depth-1))
	case 3:
		return NewMatrix(1, 2, genValue(r, depth-1), genValue(r, depth-1))
	default:
		return genValue(r, 0)
	}
}

type anyValue struct{ V Value }

func (anyValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(anyValue{V: genValue(r, 3)})
}

// Property: Copy is always Equal to the original.
func TestQuickCopyEqual(t *testing.T) {
	f := func(a anyValue) bool { return a.V.Equal(a.V.Copy()) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is symmetric.
func TestQuickEqualSymmetric(t *testing.T) {
	f := func(a, b anyValue) bool { return a.V.Equal(b.V) == b.V.Equal(a.V) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sets never contain duplicates, regardless of construction order.
func TestQuickSetNoDuplicates(t *testing.T) {
	f := func(a, b, c anyValue) bool {
		s := NewSet(a.V, b.V, c.V, a.V, c.V)
		elems := s.Elems()
		for i := range elems {
			for j := i + 1; j < len(elems); j++ {
				if elems[i].Equal(elems[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set With/Without round-trips membership.
func TestQuickSetWithWithout(t *testing.T) {
	f := func(a, b anyValue) bool {
		s := NewSet(a.V)
		s2 := s.With(b.V)
		if !s2.Contains(b.V) {
			return false
		}
		s3 := s2.Without(b.V)
		return !s3.Contains(b.V) || a.V.Equal(b.V) == false && s3.Contains(b.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
