package domain

import "fmt"

// ValidationError describes a value that does not conform to a domain.
type ValidationError struct {
	Dom  *Domain
	Val  Value
	Path string // location within a structured value, "" at the root
	Msg  string
}

func (e *ValidationError) Error() string {
	loc := ""
	if e.Path != "" {
		loc = " at " + e.Path
	}
	return fmt.Sprintf("domain: value %s does not conform to %s%s: %s", e.Val, e.Dom, loc, e.Msg)
}

// Validate checks that v conforms to d. Null conforms to every domain
// (attributes are nullable; local constraints restrict further).
func (d *Domain) Validate(v Value) error {
	return d.validate(v, "")
}

func (d *Domain) validate(v Value, path string) error {
	if IsNull(v) {
		return nil
	}
	fail := func(msg string) error {
		return &ValidationError{Dom: d, Val: v, Path: path, Msg: msg}
	}
	switch d.kind {
	case KindInteger:
		if _, ok := v.(Int); !ok {
			return fail("want integer")
		}
	case KindReal:
		switch v.(type) {
		case Rl, Int: // integers are admissible real values
		default:
			return fail("want real")
		}
	case KindString:
		if _, ok := v.(Str); !ok {
			return fail("want string")
		}
	case KindBoolean:
		if _, ok := v.(Bool); !ok {
			return fail("want boolean")
		}
	case KindEnum:
		s, ok := v.(Sym)
		if !ok {
			return fail("want enum symbol")
		}
		if d.SymbolIndex(string(s)) < 0 {
			return fail(fmt.Sprintf("symbol %s not declared in %s", s, d))
		}
	case KindRecord:
		r, ok := v.(*Rec)
		if !ok {
			return fail("want record")
		}
		for i := 0; i < r.Len(); i++ {
			fd := d.FieldDomain(r.FieldName(i))
			if fd == nil {
				return fail(fmt.Sprintf("field %q not declared", r.FieldName(i)))
			}
			if err := fd.validate(r.FieldValue(i), join(path, r.FieldName(i))); err != nil {
				return err
			}
		}
	case KindList:
		l, ok := v.(*List)
		if !ok {
			return fail("want list")
		}
		for i, e := range l.Elems() {
			if err := d.elem.validate(e, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case KindSet:
		s, ok := v.(*Set)
		if !ok {
			return fail("want set")
		}
		for i, e := range s.Elems() {
			if err := d.elem.validate(e, fmt.Sprintf("%s{%d}", path, i)); err != nil {
				return err
			}
		}
	case KindMatrix:
		m, ok := v.(*Matrix)
		if !ok {
			return fail("want matrix")
		}
		for r := 0; r < m.Rows(); r++ {
			for c := 0; c < m.Cols(); c++ {
				if err := d.elem.validate(m.At(r, c), fmt.Sprintf("%s[%d,%d]", path, r, c)); err != nil {
					return err
				}
			}
		}
	case KindSurrogate:
		if _, ok := v.(Ref); !ok {
			return fail("want object reference")
		}
		// Type conformance of the referenced object is checked by the
		// object store, which knows the referent's type.
	default:
		return fail("invalid domain")
	}
	return nil
}

func join(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}
