package expr

import (
	"fmt"

	"cadcam/internal/domain"
)

// EvalError reports an evaluation failure with the offending expression.
type EvalError struct {
	E   Expr
	Msg string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: cannot evaluate %s: %s", e.E, e.Msg)
}

// EvalValue evaluates e against env and returns its value.
func EvalValue(e Expr, env Env) (domain.Value, error) {
	ctx := &evalCtx{env: env}
	return ctx.eval(e)
}

// EvalBool evaluates e as a condition (the form constraints take).
// A null result counts as false, matching three-valued logic folded to
// "constraint not satisfied".
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := EvalValue(e, env)
	if err != nil {
		return false, err
	}
	b, ok := domain.Truth(v)
	if !ok {
		return false, &EvalError{e, fmt.Sprintf("non-boolean result %s", v)}
	}
	return b, nil
}

type activeFilter struct {
	roots  map[string]bool
	filter Expr
}

type evalCtx struct {
	env     Env
	filters []activeFilter
}

func (c *evalCtx) withEnv(env Env) *evalCtx {
	return &evalCtx{env: env, filters: c.filters}
}

func (c *evalCtx) eval(e Expr) (domain.Value, error) {
	switch n := e.(type) {
	case Lit:
		return n.V, nil
	case Path:
		return c.evalPath(n)
	case Neg:
		v, err := c.eval(n.X)
		if err != nil {
			return nil, err
		}
		return domain.Arith('-', domain.Int(0), v)
	case Not:
		v, err := c.eval(n.X)
		if err != nil {
			return nil, err
		}
		b, ok := domain.Truth(v)
		if !ok {
			return nil, &EvalError{e, "not applied to non-boolean"}
		}
		return domain.Bool(!b), nil
	case Bin:
		return c.evalBin(n)
	case Count:
		items, err := c.collection(n.P)
		if err != nil {
			return nil, err
		}
		return domain.Int(len(items)), nil
	case Sum:
		return c.evalSum(n)
	case ForAll:
		return c.evalQuant(n.Binders, n.Body, true)
	case Exists:
		return c.evalQuant(n.Binders, n.Body, false)
	case Where:
		f := activeFilter{roots: Roots(n.Filter), filter: n.Filter}
		sub := &evalCtx{env: c.env, filters: append(append([]activeFilter(nil), c.filters...), f)}
		return sub.eval(n.Body)
	}
	return nil, &EvalError{e, "unknown expression node"}
}

func (c *evalCtx) evalBin(n Bin) (domain.Value, error) {
	switch n.Op {
	case "and", "or":
		lv, err := c.eval(n.L)
		if err != nil {
			return nil, err
		}
		lb, ok := domain.Truth(lv)
		if !ok {
			return nil, &EvalError{n, fmt.Sprintf("%s on non-boolean %s", n.Op, lv)}
		}
		if n.Op == "and" && !lb {
			return domain.Bool(false), nil
		}
		if n.Op == "or" && lb {
			return domain.Bool(true), nil
		}
		rv, err := c.eval(n.R)
		if err != nil {
			return nil, err
		}
		rb, ok := domain.Truth(rv)
		if !ok {
			return nil, &EvalError{n, fmt.Sprintf("%s on non-boolean %s", n.Op, rv)}
		}
		return domain.Bool(rb), nil
	case "in":
		return c.evalIn(n)
	case "+", "-", "*", "/":
		lv, err := c.eval(n.L)
		if err != nil {
			return nil, err
		}
		rv, err := c.eval(n.R)
		if err != nil {
			return nil, err
		}
		v, err := domain.Arith(n.Op[0], lv, rv)
		if err != nil {
			return nil, &EvalError{n, err.Error()}
		}
		return v, nil
	case "=", "!=":
		lv, err := c.eval(n.L)
		if err != nil {
			return nil, err
		}
		rv, err := c.eval(n.R)
		if err != nil {
			return nil, err
		}
		eq := lv.Equal(rv)
		if domain.IsNull(lv) && domain.IsNull(rv) {
			eq = true
		}
		if n.Op == "!=" {
			eq = !eq
		}
		return domain.Bool(eq), nil
	case "<", "<=", ">", ">=":
		lv, err := c.eval(n.L)
		if err != nil {
			return nil, err
		}
		rv, err := c.eval(n.R)
		if err != nil {
			return nil, err
		}
		cmp, err := domain.Compare(lv, rv)
		if err != nil {
			return nil, &EvalError{n, err.Error()}
		}
		var b bool
		switch n.Op {
		case "<":
			b = cmp < 0
		case "<=":
			b = cmp <= 0
		case ">":
			b = cmp > 0
		case ">=":
			b = cmp >= 0
		}
		return domain.Bool(b), nil
	}
	return nil, &EvalError{n, fmt.Sprintf("unknown operator %q", n.Op)}
}

// evalIn implements membership: the right side is preferably a collection
// path ("Wire.Pin1 in SubGates.Pins"); otherwise a set/list value.
func (c *evalCtx) evalIn(n Bin) (domain.Value, error) {
	lv, err := c.eval(n.L)
	if err != nil {
		return nil, err
	}
	var items []domain.Value
	if p, ok := n.R.(Path); ok {
		items, err = c.collection(p)
		if err != nil {
			return nil, err
		}
	} else {
		rv, err := c.eval(n.R)
		if err != nil {
			return nil, err
		}
		var ok bool
		items, ok = elems(rv)
		if !ok {
			return nil, &EvalError{n, "right operand of in is not a collection"}
		}
	}
	for _, it := range items {
		if it.Equal(lv) {
			return domain.Bool(true), nil
		}
	}
	return domain.Bool(false), nil
}

func (c *evalCtx) evalSum(n Sum) (domain.Value, error) {
	items, err := c.collection(n.P)
	if err != nil {
		return nil, err
	}
	var acc domain.Value = domain.Int(0)
	for _, it := range items {
		if domain.IsNull(it) {
			continue
		}
		acc, err = domain.Arith('+', acc, it)
		if err != nil {
			return nil, &EvalError{n, err.Error()}
		}
	}
	return acc, nil
}

func (c *evalCtx) evalQuant(binders []Binder, body Expr, forAll bool) (domain.Value, error) {
	return c.quantLoop(binders, body, forAll, c.env)
}

func (c *evalCtx) quantLoop(binders []Binder, body Expr, forAll bool, env Env) (domain.Value, error) {
	if len(binders) == 0 {
		v, err := c.withEnv(env).eval(body)
		if err != nil {
			return nil, err
		}
		b, ok := domain.Truth(v)
		if !ok {
			return nil, &EvalError{body, "quantifier body is not boolean"}
		}
		return domain.Bool(b), nil
	}
	b0 := binders[0]
	items, err := c.withEnv(env).collection(b0.P)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		sub := &bindEnv{base: env, name: b0.Var, val: it}
		v, err := c.quantLoop(binders[1:], body, forAll, sub)
		if err != nil {
			return nil, err
		}
		hold := bool(v.(domain.Bool))
		if forAll && !hold {
			return domain.Bool(false), nil
		}
		if !forAll && hold {
			return domain.Bool(true), nil
		}
	}
	return domain.Bool(forAll), nil
}

// evalPath resolves a dotted path as a single value. An unresolvable
// single-segment identifier denotes an enum symbol (IN, NAND, ...), which
// is how symbols appear as bare names in the paper's constraints.
func (c *evalCtx) evalPath(p Path) (domain.Value, error) {
	cur, ok := c.env.Lookup(p.Segs[0])
	if !ok {
		if len(p.Segs) == 1 {
			return domain.Sym(p.Segs[0]), nil
		}
		return nil, &EvalError{p, fmt.Sprintf("unknown name %q", p.Segs[0])}
	}
	for _, seg := range p.Segs[1:] {
		next, err := c.field(cur, seg, p)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (c *evalCtx) field(v domain.Value, name string, p Path) (domain.Value, error) {
	switch x := v.(type) {
	case *domain.Rec:
		return x.Get(name), nil
	case domain.Ref:
		if av, ok := c.env.AttrOf(x, name); ok {
			return av, nil
		}
		return nil, &EvalError{p, fmt.Sprintf("object %s has no attribute %q", x, name)}
	}
	if domain.IsNull(v) {
		return domain.NullValue, nil
	}
	return nil, &EvalError{p, fmt.Sprintf("cannot select %q from %s", name, v)}
}

// collection resolves a path in collection context: the root names a
// subclass extent or a set/list attribute; each further segment flat-maps
// over the members (subclass of an object member, record field, attribute
// of an object member). Active `where` filters restrict the root scan.
func (c *evalCtx) collection(p Path) ([]domain.Value, error) {
	items, ok := c.env.Collection(p.Segs[0])
	if !ok {
		if v, vok := c.env.Lookup(p.Segs[0]); vok {
			if items, ok = elems(v); !ok {
				// A single object reference navigates as a one-member
				// collection, so "for b in p.Bores" works when p is a
				// quantified variable bound to an object.
				if ref, isRef := v.(domain.Ref); isRef && len(p.Segs) > 1 {
					items, ok = []domain.Value{ref}, true
				}
			}
		}
		if !ok {
			return nil, &EvalError{p, fmt.Sprintf("unknown collection %q", p.Segs[0])}
		}
	}
	items, err := c.applyFilters(p.Segs[0], items)
	if err != nil {
		return nil, err
	}
	for _, seg := range p.Segs[1:] {
		var next []domain.Value
		for _, it := range items {
			if ref, isRef := it.(domain.Ref); isRef {
				if sub, ok := c.env.CollectionOf(ref, seg); ok {
					next = append(next, sub...)
					continue
				}
			}
			v, err := c.field(it, seg, p)
			if err != nil {
				return nil, err
			}
			if sub, ok := elems(v); ok {
				next = append(next, sub...)
			} else {
				next = append(next, v)
			}
		}
		items = next
	}
	return items, nil
}

func (c *evalCtx) applyFilters(root string, items []domain.Value) ([]domain.Value, error) {
	for _, f := range c.filters {
		if !f.roots[root] {
			continue
		}
		var kept []domain.Value
		for _, it := range items {
			sub := &bindEnv{base: c.env, name: root, val: it}
			// Filters nested in filters are not re-applied: evaluate the
			// filter body with a filter-free context.
			v, err := (&evalCtx{env: sub}).eval(f.filter)
			if err != nil {
				return nil, err
			}
			b, ok := domain.Truth(v)
			if !ok {
				return nil, &EvalError{f.filter, "where filter is not boolean"}
			}
			if b {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}
