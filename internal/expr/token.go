// Package expr implements the constraint and query expression language the
// paper uses in local integrity constraints, relationship restrictions and
// version selection queries, e.g.
//
//	count (Pins) = 2 where Pins.InOut = IN
//	Length < 100*Height*Width
//	for (s in Bolt, n in Nut): s.Diameter = n.Diameter
//	s.Length = n.Length + sum (Bores.Length)
//	Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins
//
// Expressions are parsed once at schema-definition time and evaluated
// against objects through the Env interface, which the object store
// implements.
package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokPunct // single/double char punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("expr: %s at %d:%d", e.Msg, line, col)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex scans src into tokens. Identifiers may contain letters, digits,
// underscores and (to match the paper's names like I/O) an embedded slash
// is not supported — the DDL maps such names to identifiers beforehand.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, &SyntaxError{l.src, l.pos, "unterminated comment"}
			}
			l.pos += end + 4
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9':
			start := l.pos
			kind := tokInt
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				kind = tokReal
				l.pos++
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
			l.toks = append(l.toks, token{kind, l.src[start:l.pos], start})
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++ // skip the escaped character
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, &SyntaxError{l.src, start, "unterminated string"}
			}
			l.pos++
			text, err := strconv.Unquote(l.src[start:l.pos])
			if err != nil {
				return nil, &SyntaxError{l.src, start, "bad string literal: " + err.Error()}
			}
			l.toks = append(l.toks, token{tokString, text, start})
		default:
			start := l.pos
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>":
				l.toks = append(l.toks, token{tokPunct, two, start})
				l.pos += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', ':', ';', '=', '<', '>', '+', '-', '*', '/', '#':
				l.toks = append(l.toks, token{tokPunct, string(c), start})
				l.pos++
			default:
				return nil, &SyntaxError{l.src, l.pos, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
