package expr

import (
	"fmt"
	"strconv"

	"cadcam/internal/domain"
)

// Parse parses a single expression, which may carry a trailing
// `where` filter (the paper's constraint form).
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse for statically known-good expressions; it panics on
// error and is intended for tests and built-in schemas.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokIdent) && t.text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Src: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// where := or [ "where" or ]
func (p *parser) parseWhere() (Expr, error) {
	body, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("where") {
		filter, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		return Where{Body: body, Filter: filter}, nil
	}
	return body, nil
}

// or := and { "or" and }
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "or", L: l, R: r}
	}
	return l, nil
}

// and := not { "and" not }
func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "and", L: l, R: r}
	}
	return l, nil
}

// not := "not" not | cmp
func (p *parser) parseNot() (Expr, error) {
	if p.accept("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	return p.parseCmp()
}

// cmp := add [ ("=" | "!=" | "<>" | "<" | "<=" | ">" | ">=" | "in") add ]
func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op string
	switch {
	case t.kind == tokPunct:
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			op = t.text
		}
	case t.kind == tokIdent && t.text == "in":
		op = "in"
	}
	if op == "" {
		return l, nil
	}
	p.next()
	if op == "<>" {
		op = "!="
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return Bin{Op: op, L: l, R: r}, nil
}

// add := mul { ("+"|"-") mul }
func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: "+", L: l, R: r}
		case p.accept("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

// mul := unary { ("*"|"/") unary }
func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: "*", L: l, R: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

// unary := "-" unary | "#" ident "in" path | primary
func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{X: x}, nil
	}
	if p.accept("#") {
		// The paper's "#s in Bolt" counts the members of Bolt.
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected variable after #")
		}
		p.next() // the variable name is documentation only
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return Count{P: path}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return Lit{V: domain.Int(n)}, nil
	case tokReal:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad real %q", t.text)
		}
		return Lit{V: domain.Rl(f)}, nil
	case tokString:
		p.next()
		return Lit{V: domain.Str(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return Lit{V: domain.Bool(true)}, nil
		case "false":
			p.next()
			return Lit{V: domain.Bool(false)}, nil
		case "null":
			p.next()
			return Lit{V: domain.NullValue}, nil
		case "count", "sum":
			p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if t.text == "count" {
				return Count{P: path}, nil
			}
			return Sum{P: path}, nil
		case "for", "forall", "exists":
			return p.parseQuant(t.text)
		default:
			return p.parsePathExpr()
		}
	}
	return nil, p.errf("unexpected %q", t.text)
}

// parseQuant parses "for (v in C, w in D): body" or "for v in C: body".
func (p *parser) parseQuant(kw string) (Expr, error) {
	p.next() // kw
	var binders []Binder
	paren := p.accept("(")
	for {
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected quantified variable")
		}
		v := p.next().text
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		binders = append(binders, Binder{Var: v, P: path})
		if !p.accept(",") {
			break
		}
	}
	if paren {
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	// The quantifier body extends over and/or but stops at a top-level
	// `where`, which belongs to the constraint as a whole.
	body, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if kw == "exists" {
		return Exists{Binders: binders, Body: body}, nil
	}
	return ForAll{Binders: binders, Body: body}, nil
}

func (p *parser) parsePathExpr() (Expr, error) {
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	return path, nil
}

func (p *parser) parsePath() (Path, error) {
	if p.peek().kind != tokIdent {
		return Path{}, p.errf("expected identifier, found %q", p.peek().text)
	}
	segs := []string{p.next().text}
	for p.accept(".") {
		if p.peek().kind != tokIdent {
			return Path{}, p.errf("expected identifier after '.'")
		}
		segs = append(segs, p.next().text)
	}
	return Path{Segs: segs}, nil
}
