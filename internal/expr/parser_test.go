package expr

import (
	"strings"
	"testing"
)

func TestParseRendering(t *testing.T) {
	// Round-trip through String() for representative paper expressions.
	cases := []struct {
		src  string
		want string
	}{
		{"1 + 2 * 3", "(1 + (2 * 3))"},
		{"(1 + 2) * 3", "((1 + 2) * 3)"},
		{"Length < 100*Height*Width", "(Length < ((100 * Height) * Width))"},
		{"count (Pins) = 2 where Pins.InOut = IN", "(count(Pins) = 2) where (Pins.InOut = IN)"},
		{"#s in Bolt = 1", "(count(Bolt) = 1)"},
		{"s.Length = n.Length + sum (Bores.Length)", "(s.Length = (n.Length + sum(Bores.Length)))"},
		{"Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins", "((Wire.Pin1 in Pins) or (Wire.Pin1 in SubGates.Pins))"},
		{"for (s in Bolt, n in Nut): s.Diameter = n.Diameter", "(for (s in Bolt, n in Nut): (s.Diameter = n.Diameter))"},
		{"for b in Bores: s.Diameter <= b.Diameter", "(for (b in Bores): (s.Diameter <= b.Diameter))"},
		{"exists v in Versions: v.State = released", "(exists (v in Versions): (v.State = released))"},
		{"not a and b", "((not a) and b)"},
		{"a or b and c", "(a or (b and c))"},
		{"-x + 1", "(-x + 1)"},
		{"a != b", "(a != b)"},
		{"a <> b", "(a != b)"},
		{"x = null", "(x = null)"},
		{"done = true or done = false", "((done = true) or (done = false))"},
		{`Name = "girder"`, `(Name = "girder")`},
		{"1.5 * w", "(1.5 * w)"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"count(",
		"count(1)",
		"(1 + 2",
		"for x: y",
		"for x in : y",
		"for (x in C: y",
		"a .",
		"# in C",
		"1 2",
		`"unterminated`,
		"a ? b",
		"/* unterminated",
		"sum()",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("a +\n?")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:1") {
		t.Errorf("error should carry line:col, got %q", err.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("count(")
}

func TestRoots(t *testing.T) {
	e := MustParse("Wire.Pin1 in Pins or count(SubGates.Pins) > 0")
	roots := Roots(e)
	for _, want := range []string{"Wire", "Pins", "SubGates"} {
		if !roots[want] {
			t.Errorf("missing root %q in %v", want, roots)
		}
	}
	if len(roots) != 3 {
		t.Errorf("roots = %v", roots)
	}
}

func TestParseCommentAndWhitespace(t *testing.T) {
	e, err := Parse("/* expansion bound */ Length < 100 * Height\t* Width")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !strings.Contains(e.String(), "Length") {
		t.Errorf("unexpected AST %s", e)
	}
}
