package expr

import "cadcam/internal/domain"

// Env resolves names during evaluation. The object store implements Env on
// top of an object (attributes and local subclasses); tests use MapEnv.
//
// Names resolve in two roles: as a single value (attribute, quantified
// variable) or as a collection (subclass extent, or a set-/list-valued
// attribute). A name may be resolvable in both roles; collection context
// decides.
type Env interface {
	// Lookup resolves a bare name to a value.
	Lookup(name string) (domain.Value, bool)
	// Collection resolves a bare name to the members of a collection.
	// Object members are represented as domain.Ref values.
	Collection(name string) ([]domain.Value, bool)
	// AttrOf resolves an attribute on a referenced object.
	AttrOf(ref domain.Ref, attr string) (domain.Value, bool)
	// CollectionOf resolves a local subclass (or collection-valued
	// attribute) on a referenced object.
	CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool)
}

// MapEnv is a simple Env over Go maps, used in tests and as the base for
// binding quantified variables.
type MapEnv struct {
	Vals  map[string]domain.Value
	Colls map[string][]domain.Value
	// Objs maps surrogate -> attribute map, for AttrOf.
	Objs map[domain.Surrogate]map[string]domain.Value
	// ObjColls maps surrogate -> subclass name -> members.
	ObjColls map[domain.Surrogate]map[string][]domain.Value
}

// NewMapEnv returns an empty MapEnv.
func NewMapEnv() *MapEnv {
	return &MapEnv{
		Vals:     make(map[string]domain.Value),
		Colls:    make(map[string][]domain.Value),
		Objs:     make(map[domain.Surrogate]map[string]domain.Value),
		ObjColls: make(map[domain.Surrogate]map[string][]domain.Value),
	}
}

// Lookup implements Env.
func (m *MapEnv) Lookup(name string) (domain.Value, bool) {
	v, ok := m.Vals[name]
	return v, ok
}

// Collection implements Env.
func (m *MapEnv) Collection(name string) ([]domain.Value, bool) {
	c, ok := m.Colls[name]
	return c, ok
}

// AttrOf implements Env.
func (m *MapEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	o, ok := m.Objs[domain.Surrogate(ref)]
	if !ok {
		return nil, false
	}
	v, ok := o[attr]
	return v, ok
}

// CollectionOf implements Env.
func (m *MapEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	o, ok := m.ObjColls[domain.Surrogate(ref)]
	if !ok {
		return nil, false
	}
	c, ok := o[name]
	return c, ok
}

// bindEnv layers quantifier variable bindings over a base Env. A bound
// variable shadows base names in both roles: as a value, and — when the
// bound value is a set or list — as a collection.
type bindEnv struct {
	base Env
	name string
	val  domain.Value
}

func (b *bindEnv) Lookup(name string) (domain.Value, bool) {
	if name == b.name {
		return b.val, true
	}
	return b.base.Lookup(name)
}

func (b *bindEnv) Collection(name string) ([]domain.Value, bool) {
	if name == b.name {
		if items, ok := elems(b.val); ok {
			return items, true
		}
		return nil, false
	}
	return b.base.Collection(name)
}

func (b *bindEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	return b.base.AttrOf(ref, attr)
}

func (b *bindEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	return b.base.CollectionOf(ref, name)
}

// elems exposes set and list values as collections.
func elems(v domain.Value) ([]domain.Value, bool) {
	switch c := v.(type) {
	case *domain.Set:
		return c.Elems(), true
	case *domain.List:
		return c.Elems(), true
	}
	return nil, false
}
