package expr

import (
	"strings"

	"cadcam/internal/domain"
)

// Expr is a parsed expression node. Expressions are immutable after
// parsing and safe for concurrent evaluation.
type Expr interface {
	// String renders the expression in source-like syntax.
	String() string
	// roots appends the root identifiers of all paths in the expression;
	// used by `where` filters to decide which collections they restrict.
	roots(set map[string]bool)
}

// Lit is a literal value (integer, real, string, boolean, null, or an enum
// symbol produced by name resolution at evaluation time).
type Lit struct{ V domain.Value }

func (l Lit) String() string        { return l.V.String() }
func (l Lit) roots(map[string]bool) {}

// Path is a dotted identifier path such as Length, Pins.InOut or
// Wire.Pin1. A single-segment path is a bare identifier.
type Path struct{ Segs []string }

func (p Path) String() string          { return strings.Join(p.Segs, ".") }
func (p Path) roots(s map[string]bool) { s[p.Segs[0]] = true }

// Root returns the first segment.
func (p Path) Root() string { return p.Segs[0] }

// Bin is a binary operation. Op is one of:
// "or" "and" "=" "!=" "<" "<=" ">" ">=" "in" "+" "-" "*" "/".
type Bin struct {
	Op   string
	L, R Expr
}

func (b Bin) String() string { return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")" }
func (b Bin) roots(s map[string]bool) {
	b.L.roots(s)
	b.R.roots(s)
}

// Not is logical negation.
type Not struct{ X Expr }

func (n Not) String() string          { return "(not " + n.X.String() + ")" }
func (n Not) roots(s map[string]bool) { n.X.roots(s) }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

func (n Neg) String() string          { return "-" + n.X.String() }
func (n Neg) roots(s map[string]bool) { n.X.roots(s) }

// Count counts the members of a collection path, e.g. count(Pins) or
// count(SubGates.Pins). The paper's "#s in Bolt" form desugars to
// Count{Path{Bolt}}. An active `where` filter whose paths are rooted at
// the collection's root restricts the counted members.
type Count struct{ P Path }

func (c Count) String() string          { return "count(" + c.P.String() + ")" }
func (c Count) roots(s map[string]bool) { c.P.roots(s) }

// Sum adds the numeric values reached by a collection path, e.g.
// sum(Bores.Length).
type Sum struct{ P Path }

func (c Sum) String() string          { return "sum(" + c.P.String() + ")" }
func (c Sum) roots(s map[string]bool) { c.P.roots(s) }

// Binder introduces a quantified variable ranging over a collection.
type Binder struct {
	Var string
	P   Path
}

// ForAll is universal quantification over the cross product of its
// binders, e.g. for (s in Bolt, n in Nut): s.Diameter = n.Diameter.
type ForAll struct {
	Binders []Binder
	Body    Expr
}

func (f ForAll) String() string { return quantString("for", f.Binders, f.Body) }
func (f ForAll) roots(s map[string]bool) {
	for _, b := range f.Binders {
		b.P.roots(s)
	}
	f.Body.roots(s)
}

// Exists is existential quantification with the same shape as ForAll.
type Exists struct {
	Binders []Binder
	Body    Expr
}

func (f Exists) String() string { return quantString("exists", f.Binders, f.Body) }
func (f Exists) roots(s map[string]bool) {
	for _, b := range f.Binders {
		b.P.roots(s)
	}
	f.Body.roots(s)
}

func quantString(kw string, binders []Binder, body Expr) string {
	var b strings.Builder
	b.WriteString("(" + kw + " (")
	for i, bd := range binders {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.Var + " in " + bd.P.String())
	}
	b.WriteString("): " + body.String() + ")")
	return b.String()
}

// Where evaluates Body with Filter restricting every collection scan whose
// root identifier appears in Filter, reproducing the paper's
//
//	count (Pins) = 2 where Pins.InOut = IN
//
// where the filter is evaluated per member with the collection root bound
// to the member.
type Where struct {
	Body   Expr
	Filter Expr
}

func (w Where) String() string { return w.Body.String() + " where " + w.Filter.String() }
func (w Where) roots(s map[string]bool) {
	w.Body.roots(s)
	w.Filter.roots(s)
}

// Roots returns the set of root identifiers referenced by e.
func Roots(e Expr) map[string]bool {
	s := make(map[string]bool)
	e.roots(s)
	return s
}
