package expr

import (
	"strings"
	"testing"

	"cadcam/internal/domain"
)

// simpleGateEnv models the paper's SimpleGate: Pins is a set-of-record
// attribute, Length/Width integers, Function an enum.
func simpleGateEnv() *MapEnv {
	env := NewMapEnv()
	env.Vals["Length"] = domain.Int(4)
	env.Vals["Width"] = domain.Int(2)
	env.Vals["Function"] = domain.Sym("NAND")
	pins := domain.NewSet(
		domain.NewRec("PinId", domain.Int(1), "InOut", domain.Sym("IN")),
		domain.NewRec("PinId", domain.Int(2), "InOut", domain.Sym("IN")),
		domain.NewRec("PinId", domain.Int(3), "InOut", domain.Sym("OUT")),
	)
	env.Vals["Pins"] = pins
	return env
}

func evalBool(t *testing.T, src string, env Env) bool {
	t.Helper()
	b, err := EvalBool(MustParse(src), env)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", src, err)
	}
	return b
}

func evalVal(t *testing.T, src string, env Env) domain.Value {
	t.Helper()
	v, err := EvalValue(MustParse(src), env)
	if err != nil {
		t.Fatalf("EvalValue(%q): %v", src, err)
	}
	return v
}

func TestArithmeticEval(t *testing.T) {
	env := NewMapEnv()
	env.Vals["x"] = domain.Int(10)
	cases := []struct {
		src  string
		want domain.Value
	}{
		{"1 + 2 * 3", domain.Int(7)},
		{"(1 + 2) * 3", domain.Int(9)},
		{"x / 4", domain.Int(2)},
		{"x / 4.0", domain.Rl(2.5)},
		{"-x + 1", domain.Int(-9)},
		{"x - 1 - 2", domain.Int(7)},
	}
	for _, c := range cases {
		if got := evalVal(t, c.src, env); !got.Equal(c.want) {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := simpleGateEnv()
	trueCases := []string{
		"Length < 100*Length*Width",
		"Length = 4",
		"Length != 5",
		"Length <> 5",
		"Length >= 4 and Width <= 2",
		"Length > 100 or Width = 2",
		"not (Length > 100)",
		"Function = NAND",
		"Function != AND",
		"true",
		"not false",
	}
	for _, src := range trueCases {
		if !evalBool(t, src, env) {
			t.Errorf("%q should hold", src)
		}
	}
	falseCases := []string{
		"Length > 100",
		"Function = AND",
		"false",
	}
	for _, src := range falseCases {
		if evalBool(t, src, env) {
			t.Errorf("%q should not hold", src)
		}
	}
}

func TestPaperPinConstraints(t *testing.T) {
	env := simpleGateEnv()
	// The two constraints of SimpleGate, verbatim from the paper (§3).
	if !evalBool(t, "count (Pins) = 2 where Pins.InOut = IN", env) {
		t.Error("IN-pin constraint should hold")
	}
	if !evalBool(t, "count (Pins) = 1 where Pins.InOut = OUT", env) {
		t.Error("OUT-pin constraint should hold")
	}
	if evalBool(t, "count (Pins) = 2 where Pins.InOut = OUT", env) {
		t.Error("wrong count should fail")
	}
	// Unfiltered count sees all three pins.
	if got := evalVal(t, "count(Pins)", env); !got.Equal(domain.Int(3)) {
		t.Errorf("count(Pins) = %s", got)
	}
}

func TestCountOverObjectCollection(t *testing.T) {
	env := NewMapEnv()
	env.Colls["Bolt"] = []domain.Value{domain.Ref(1)}
	env.Colls["Nut"] = []domain.Value{domain.Ref(2)}
	env.Objs[1] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(40)}
	env.Objs[2] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(10)}

	if !evalBool(t, "#s in Bolt = 1", env) {
		t.Error("#s in Bolt = 1 should hold")
	}
	if !evalBool(t, "#n in Nut = 1", env) {
		t.Error("#n in Nut = 1 should hold")
	}
	if !evalBool(t, "for (s in Bolt, n in Nut): s.Diameter = n.Diameter", env) {
		t.Error("diameter agreement should hold")
	}
	env.Objs[2]["Diameter"] = domain.Int(6)
	if evalBool(t, "for (s in Bolt, n in Nut): s.Diameter = n.Diameter", env) {
		t.Error("diameter mismatch should fail")
	}
}

func TestScrewingConstraint(t *testing.T) {
	// s.Length = n.Length + sum(Bores.Length) from ScrewingType (§5).
	env := NewMapEnv()
	env.Colls["Bolt"] = []domain.Value{domain.Ref(1)}
	env.Colls["Nut"] = []domain.Value{domain.Ref(2)}
	env.Colls["Bores"] = []domain.Value{domain.Ref(3), domain.Ref(4)}
	env.Objs[1] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(40)}
	env.Objs[2] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(10)}
	env.Objs[3] = map[string]domain.Value{"Diameter": domain.Int(9), "Length": domain.Int(20)}
	env.Objs[4] = map[string]domain.Value{"Diameter": domain.Int(10), "Length": domain.Int(10)}

	full := "for (s in Bolt, n in Nut): s.Diameter = n.Diameter and " +
		"(for b in Bores: s.Diameter <= b.Diameter) and " +
		"s.Length = n.Length + sum(Bores.Length)"
	if !evalBool(t, full, env) {
		t.Error("screwing constraint should hold")
	}
	env.Objs[3]["Diameter"] = domain.Int(7) // bore narrower than bolt
	if evalBool(t, full, env) {
		t.Error("bolt wider than bore should fail")
	}
}

func TestMembershipOverNestedCollections(t *testing.T) {
	// Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins (§3).
	env := NewMapEnv()
	env.Vals["Wire"] = domain.Ref(100)
	env.Objs[100] = map[string]domain.Value{"Pin1": domain.Ref(10), "Pin2": domain.Ref(21)}
	env.Colls["Pins"] = []domain.Value{domain.Ref(10), domain.Ref(11)}
	env.Colls["SubGates"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
	env.ObjColls[1] = map[string][]domain.Value{"Pins": {domain.Ref(20), domain.Ref(21)}}
	env.ObjColls[2] = map[string][]domain.Value{"Pins": {domain.Ref(22)}}

	check := "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and " +
		"(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)"
	if !evalBool(t, check, env) {
		t.Error("wire endpoints should be admissible")
	}
	env.Objs[100]["Pin2"] = domain.Ref(99) // dangling pin
	if evalBool(t, check, env) {
		t.Error("dangling endpoint should fail")
	}
}

func TestMembershipInSetValue(t *testing.T) {
	env := NewMapEnv()
	env.Vals["Tags"] = domain.NewSet(domain.Str("a"), domain.Str("b"))
	if !evalBool(t, `"a" in Tags`, env) {
		t.Error("string membership in set attribute should hold")
	}
	if evalBool(t, `"z" in Tags`, env) {
		t.Error("non-member should fail")
	}
}

func TestQuantifiers(t *testing.T) {
	env := NewMapEnv()
	env.Colls["Bores"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
	env.Objs[1] = map[string]domain.Value{"Diameter": domain.Int(9)}
	env.Objs[2] = map[string]domain.Value{"Diameter": domain.Int(12)}

	if !evalBool(t, "for b in Bores: b.Diameter >= 9", env) {
		t.Error("forall should hold")
	}
	if evalBool(t, "for b in Bores: b.Diameter >= 10", env) {
		t.Error("forall should fail")
	}
	if !evalBool(t, "exists b in Bores: b.Diameter = 12", env) {
		t.Error("exists should hold")
	}
	if evalBool(t, "exists b in Bores: b.Diameter = 5", env) {
		t.Error("exists should fail")
	}
	// Empty range: forall vacuously true, exists false.
	env.Colls["Empty"] = nil
	if !evalBool(t, "for e in Empty: false", env) {
		t.Error("forall over empty should be vacuously true")
	}
	if evalBool(t, "exists e in Empty: true", env) {
		t.Error("exists over empty should be false")
	}
}

func TestQuantifierOverBoundCollection(t *testing.T) {
	// A quantified variable holding a set can itself be ranged over.
	env := NewMapEnv()
	env.Colls["Plates"] = []domain.Value{domain.Ref(1)}
	env.Objs[1] = map[string]domain.Value{
		"Bores": domain.NewSet(domain.Int(8), domain.Int(10)),
	}
	if !evalBool(t, "for p in Plates: (for b in p.Bores: b >= 8)", env) {
		t.Error("nested quantification over attribute set should hold")
	}
}

func TestSumSemantics(t *testing.T) {
	env := NewMapEnv()
	env.Colls["Bores"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
	env.Objs[1] = map[string]domain.Value{"Length": domain.Int(20)}
	env.Objs[2] = map[string]domain.Value{"Length": domain.Int(10)}
	if got := evalVal(t, "sum(Bores.Length)", env); !got.Equal(domain.Int(30)) {
		t.Errorf("sum = %s", got)
	}
	env.Colls["None"] = nil
	if got := evalVal(t, "sum(None)", env); !got.Equal(domain.Int(0)) {
		t.Errorf("empty sum = %s, want 0", got)
	}
	// Null members are skipped.
	env.Objs[2]["Length"] = domain.NullValue
	if got := evalVal(t, "sum(Bores.Length)", env); !got.Equal(domain.Int(20)) {
		t.Errorf("sum with null = %s, want 20", got)
	}
}

func TestNullSemantics(t *testing.T) {
	env := NewMapEnv()
	env.Vals["x"] = domain.NullValue
	if !evalBool(t, "x = null", env) {
		t.Error("null = null should hold")
	}
	if evalBool(t, "x != null", env) {
		t.Error("null != null should fail")
	}
	// Ordered comparison with null errors.
	if _, err := EvalBool(MustParse("x < 3"), env); err == nil {
		t.Error("ordered comparison with null should error")
	}
	// Selecting a field from null yields null.
	if !evalBool(t, "x.Anything = null", env) {
		t.Error("field of null should be null")
	}
}

func TestEvalErrors(t *testing.T) {
	env := simpleGateEnv()
	bad := []string{
		"count(Nowhere)",
		"sum(Nowhere)",
		"Length and true",
		"not Length",
		"Length + Function",
		"UnknownRoot.Field = 1",
		"Length.Field = 1",
		"1 in Length",
		"for p in Length: true",
		"Length < UNKNOWN_SYMBOL", // symbol vs int incomparable
	}
	for _, src := range bad {
		if _, err := EvalBool(MustParse(src), env); err == nil {
			t.Errorf("%q should fail to evaluate", src)
		}
	}
}

func TestUnknownIdentifierBecomesSymbol(t *testing.T) {
	env := NewMapEnv()
	env.Vals["f"] = domain.Sym("NOR")
	if !evalBool(t, "f = NOR", env) {
		t.Error("bare NOR should resolve to a symbol literal")
	}
	if evalBool(t, "f = NAND", env) {
		t.Error("f is not NAND")
	}
}

func TestWhereFilterOnObjectCollection(t *testing.T) {
	env := NewMapEnv()
	env.Colls["Versions"] = []domain.Value{domain.Ref(1), domain.Ref(2), domain.Ref(3)}
	env.Objs[1] = map[string]domain.Value{"State": domain.Sym("released")}
	env.Objs[2] = map[string]domain.Value{"State": domain.Sym("in_work")}
	env.Objs[3] = map[string]domain.Value{"State": domain.Sym("released")}
	if got := evalVal(t, "count(Versions) where Versions.State = released", env); !got.Equal(domain.Int(2)) {
		t.Errorf("filtered count = %s, want 2", got)
	}
}

func TestWhereFilterLeavesOtherRootsAlone(t *testing.T) {
	env := simpleGateEnv()
	env.Colls["Wires"] = []domain.Value{domain.Ref(1)}
	env.Objs[1] = map[string]domain.Value{}
	// Filter mentions Pins only; Wires scan is unrestricted.
	src := "count(Pins) + count(Wires) = 3 where Pins.InOut = IN"
	if !evalBool(t, src, env) {
		t.Errorf("%q should hold (2 filtered pins + 1 wire)", src)
	}
}

func TestEvalErrorMessage(t *testing.T) {
	env := NewMapEnv()
	_, err := EvalBool(MustParse("count(Missing) = 0"), env)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "Missing") {
		t.Errorf("error should name the collection: %v", err)
	}
}

func TestNonBooleanConstraint(t *testing.T) {
	env := NewMapEnv()
	env.Vals["x"] = domain.Int(1)
	if _, err := EvalBool(MustParse("x + 1"), env); err == nil {
		t.Error("non-boolean constraint should error")
	}
}
