package expr

import (
	"testing"

	"cadcam/internal/domain"
)

// FuzzParse ensures the expression parser never panics and that accepted
// expressions re-parse from their own rendering (print/parse stability).
func FuzzParse(f *testing.F) {
	f.Add("count (Pins) = 2 where Pins.InOut = IN")
	f.Add("for (s in Bolt, n in Nut): s.Diameter = n.Diameter")
	f.Add("s.Length = n.Length + sum (Bores.Length)")
	f.Add("#s in Bolt = 1")
	f.Add("not a and (b or c) <> d")
	f.Add(`x = "string" or y = 1.5`)
	f.Add("-x * (y / z)")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if got := e2.String(); got != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, got)
		}
	})
}

// FuzzCompile is the compiled-evaluation differential oracle: for every
// parseable expression, the closure chain from Compile must agree with
// the interpreter on value and on error (presence and text). The corpus
// seeds the query grammar forms the planner emits.
func FuzzCompile(f *testing.F) {
	f.Add("delay < 5")
	f.Add("delay = 3 and Function = NAND")
	f.Add("Length >= 4 or Width <= 2")
	f.Add("count (Pins) = 2 where Pins.InOut = IN")
	f.Add("for p in Pins: p.PinId >= 0")
	f.Add("exists p in Pins: p.InOut = OUT")
	f.Add("sum (Pins.PinId) > 3")
	f.Add("label = \"g1\" and delay != null")
	f.Add("1 in Pins.PinId")
	f.Add("-x * (y / z)")
	f.Add("#s in Pins = 3")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		env := NewMapEnv()
		env.Vals["Length"] = domain.Int(4)
		env.Vals["Width"] = domain.Int(2)
		env.Vals["Function"] = domain.Sym("NAND")
		env.Vals["delay"] = domain.Rl(3)
		env.Vals["label"] = domain.Str("g1")
		env.Colls["Pins"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
		env.Objs[1] = map[string]domain.Value{"PinId": domain.Int(1), "InOut": domain.Sym("IN")}
		env.Objs[2] = map[string]domain.Value{"PinId": domain.Int(2), "InOut": domain.Sym("OUT")}
		iv, ierr := EvalValue(e, env)
		cv, cerr := Compile(e).Eval(env)
		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("%q: interpreted err=%v, compiled err=%v", src, ierr, cerr)
		}
		if ierr != nil {
			if ierr.Error() != cerr.Error() {
				t.Fatalf("%q: error text diverges: %v vs %v", src, ierr, cerr)
			}
			return
		}
		if !iv.Equal(cv) || !cv.Equal(iv) {
			t.Fatalf("%q: interpreted %s, compiled %s", src, iv, cv)
		}
	})
}

// FuzzEval evaluates fuzzer-chosen expressions against a fixed
// environment: errors are fine, panics are not.
func FuzzEval(f *testing.F) {
	f.Add("count(Pins) + Length * 2")
	f.Add("for p in Pins: p.PinId >= 0")
	f.Add("exists p in Pins: p.InOut = OUT")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		env := NewMapEnv()
		env.Vals["Length"] = domain.Int(4)
		env.Colls["Pins"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
		env.Objs[1] = map[string]domain.Value{"PinId": domain.Int(1), "InOut": domain.Sym("IN")}
		env.Objs[2] = map[string]domain.Value{"PinId": domain.Int(2), "InOut": domain.Sym("OUT")}
		_, _ = EvalValue(e, env)
	})
}
