package expr

import (
	"testing"

	"cadcam/internal/domain"
)

// FuzzParse ensures the expression parser never panics and that accepted
// expressions re-parse from their own rendering (print/parse stability).
func FuzzParse(f *testing.F) {
	f.Add("count (Pins) = 2 where Pins.InOut = IN")
	f.Add("for (s in Bolt, n in Nut): s.Diameter = n.Diameter")
	f.Add("s.Length = n.Length + sum (Bores.Length)")
	f.Add("#s in Bolt = 1")
	f.Add("not a and (b or c) <> d")
	f.Add(`x = "string" or y = 1.5`)
	f.Add("-x * (y / z)")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if got := e2.String(); got != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, got)
		}
	})
}

// FuzzEval evaluates fuzzer-chosen expressions against a fixed
// environment: errors are fine, panics are not.
func FuzzEval(f *testing.F) {
	f.Add("count(Pins) + Length * 2")
	f.Add("for p in Pins: p.PinId >= 0")
	f.Add("exists p in Pins: p.InOut = OUT")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		env := NewMapEnv()
		env.Vals["Length"] = domain.Int(4)
		env.Colls["Pins"] = []domain.Value{domain.Ref(1), domain.Ref(2)}
		env.Objs[1] = map[string]domain.Value{"PinId": domain.Int(1), "InOut": domain.Sym("IN")}
		env.Objs[2] = map[string]domain.Value{"PinId": domain.Int(2), "InOut": domain.Sym("OUT")}
		_, _ = EvalValue(e, env)
	})
}
