package expr

import (
	"fmt"

	"cadcam/internal/domain"
)

// Closure compilation: Compile walks the AST once and returns a chain of
// closures, so repeated evaluation (the planner evaluates one predicate
// against thousands of candidate rows) does no per-row AST type switch,
// no per-row Roots() map allocation for `where` filters, and no operator
// string dispatch. The interpreter in eval.go stays as the differential
// oracle: Compile must agree with it on value AND error for every
// expression (FuzzCompile and the query differential harness enforce
// this), so each compiled closure mirrors the corresponding eval case
// exactly, including error construction.

// thunk is a compiled expression: evaluate under a context.
type thunk func(c cctx) (domain.Value, error)

// colThunk is a compiled path in collection context.
type colThunk func(c cctx) ([]domain.Value, error)

// cfilter is a compiled active `where` filter: the filter body compiled,
// plus its root set (computed once at compile time — the interpreter
// recomputes Roots() per evaluation).
type cfilter struct {
	roots  map[string]bool
	filter thunk
	src    Expr
}

// cctx is the runtime context of a compiled evaluation; it mirrors
// evalCtx with compiled filters.
type cctx struct {
	env     Env
	filters []cfilter
}

// Compiled is a closure-compiled expression, safe for concurrent use.
type Compiled struct {
	src  Expr
	run  thunk
	bool func(env Env) (bool, error)
}

// Compile compiles e into a closure chain. Compilation never fails:
// malformed nodes compile to closures returning the interpreter's exact
// evaluation error.
func Compile(e Expr) *Compiled {
	p := &Compiled{src: e, run: compile(e)}
	p.bool = func(env Env) (bool, error) {
		v, err := p.Eval(env)
		if err != nil {
			return false, err
		}
		b, ok := domain.Truth(v)
		if !ok {
			return false, &EvalError{e, fmt.Sprintf("non-boolean result %s", v)}
		}
		return b, nil
	}
	return p
}

// Expr returns the source AST.
func (p *Compiled) Expr() Expr { return p.src }

// Eval evaluates the compiled expression against env; it is the compiled
// counterpart of EvalValue.
func (p *Compiled) Eval(env Env) (domain.Value, error) {
	return p.run(cctx{env: env})
}

// EvalBool evaluates as a condition with EvalBool's exact semantics.
func (p *Compiled) EvalBool(env Env) (bool, error) { return p.bool(env) }

func compile(e Expr) thunk {
	switch n := e.(type) {
	case Lit:
		v := n.V
		return func(cctx) (domain.Value, error) { return v, nil }
	case Path:
		return compilePath(n)
	case Neg:
		x := compile(n.X)
		return func(c cctx) (domain.Value, error) {
			v, err := x(c)
			if err != nil {
				return nil, err
			}
			return domain.Arith('-', domain.Int(0), v)
		}
	case Not:
		x := compile(n.X)
		return func(c cctx) (domain.Value, error) {
			v, err := x(c)
			if err != nil {
				return nil, err
			}
			b, ok := domain.Truth(v)
			if !ok {
				return nil, &EvalError{e, "not applied to non-boolean"}
			}
			return domain.Bool(!b), nil
		}
	case Bin:
		return compileBin(n)
	case Count:
		col := compileCollection(n.P)
		return func(c cctx) (domain.Value, error) {
			items, err := col(c)
			if err != nil {
				return nil, err
			}
			return domain.Int(len(items)), nil
		}
	case Sum:
		col := compileCollection(n.P)
		return func(c cctx) (domain.Value, error) {
			items, err := col(c)
			if err != nil {
				return nil, err
			}
			var acc domain.Value = domain.Int(0)
			for _, it := range items {
				if domain.IsNull(it) {
					continue
				}
				var aerr error
				acc, aerr = domain.Arith('+', acc, it)
				if aerr != nil {
					return nil, &EvalError{n, aerr.Error()}
				}
			}
			return acc, nil
		}
	case ForAll:
		return compileQuant(n.Binders, n.Body, true)
	case Exists:
		return compileQuant(n.Binders, n.Body, false)
	case Where:
		f := cfilter{roots: Roots(n.Filter), filter: compile(n.Filter), src: n.Filter}
		body := compile(n.Body)
		return func(c cctx) (domain.Value, error) {
			sub := cctx{env: c.env, filters: append(append([]cfilter(nil), c.filters...), f)}
			return body(sub)
		}
	}
	return func(cctx) (domain.Value, error) {
		return nil, &EvalError{e, "unknown expression node"}
	}
}

func compileBin(n Bin) thunk {
	switch n.Op {
	case "and", "or":
		l, r := compile(n.L), compile(n.R)
		and := n.Op == "and"
		op := n.Op
		return func(c cctx) (domain.Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			lb, ok := domain.Truth(lv)
			if !ok {
				return nil, &EvalError{n, fmt.Sprintf("%s on non-boolean %s", op, lv)}
			}
			if and && !lb {
				return domain.Bool(false), nil
			}
			if !and && lb {
				return domain.Bool(true), nil
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			rb, ok := domain.Truth(rv)
			if !ok {
				return nil, &EvalError{n, fmt.Sprintf("%s on non-boolean %s", op, rv)}
			}
			return domain.Bool(rb), nil
		}
	case "in":
		return compileIn(n)
	case "+", "-", "*", "/":
		l, r := compile(n.L), compile(n.R)
		op := n.Op[0]
		return func(c cctx) (domain.Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			v, aerr := domain.Arith(op, lv, rv)
			if aerr != nil {
				return nil, &EvalError{n, aerr.Error()}
			}
			return v, nil
		}
	case "=", "!=":
		l, r := compile(n.L), compile(n.R)
		neq := n.Op == "!="
		return func(c cctx) (domain.Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			eq := lv.Equal(rv)
			if domain.IsNull(lv) && domain.IsNull(rv) {
				eq = true
			}
			if neq {
				eq = !eq
			}
			return domain.Bool(eq), nil
		}
	case "<", "<=", ">", ">=":
		l, r := compile(n.L), compile(n.R)
		op := n.Op
		return func(c cctx) (domain.Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			cmp, cerr := domain.Compare(lv, rv)
			if cerr != nil {
				return nil, &EvalError{n, cerr.Error()}
			}
			var b bool
			switch op {
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return domain.Bool(b), nil
		}
	}
	return func(cctx) (domain.Value, error) {
		return nil, &EvalError{n, fmt.Sprintf("unknown operator %q", n.Op)}
	}
}

func compileIn(n Bin) thunk {
	l := compile(n.L)
	if p, ok := n.R.(Path); ok {
		col := compileCollection(p)
		return func(c cctx) (domain.Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			items, err := col(c)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				if it.Equal(lv) {
					return domain.Bool(true), nil
				}
			}
			return domain.Bool(false), nil
		}
	}
	r := compile(n.R)
	return func(c cctx) (domain.Value, error) {
		lv, err := l(c)
		if err != nil {
			return nil, err
		}
		rv, err := r(c)
		if err != nil {
			return nil, err
		}
		items, ok := elems(rv)
		if !ok {
			return nil, &EvalError{n, "right operand of in is not a collection"}
		}
		for _, it := range items {
			if it.Equal(lv) {
				return domain.Bool(true), nil
			}
		}
		return domain.Bool(false), nil
	}
}

func compileQuant(binders []Binder, body Expr, forAll bool) thunk {
	type cbinder struct {
		name string
		col  colThunk
	}
	cbs := make([]cbinder, len(binders))
	for i, b := range binders {
		cbs[i] = cbinder{name: b.Var, col: compileCollection(b.P)}
	}
	cbody := compile(body)
	var loop func(c cctx, i int, env Env) (domain.Value, error)
	loop = func(c cctx, i int, env Env) (domain.Value, error) {
		if i == len(cbs) {
			v, err := cbody(cctx{env: env, filters: c.filters})
			if err != nil {
				return nil, err
			}
			b, ok := domain.Truth(v)
			if !ok {
				return nil, &EvalError{body, "quantifier body is not boolean"}
			}
			return domain.Bool(b), nil
		}
		items, err := cbs[i].col(cctx{env: env, filters: c.filters})
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			sub := &bindEnv{base: env, name: cbs[i].name, val: it}
			v, err := loop(c, i+1, sub)
			if err != nil {
				return nil, err
			}
			hold := bool(v.(domain.Bool))
			if forAll && !hold {
				return domain.Bool(false), nil
			}
			if !forAll && hold {
				return domain.Bool(true), nil
			}
		}
		return domain.Bool(forAll), nil
	}
	return func(c cctx) (domain.Value, error) { return loop(c, 0, c.env) }
}

func compilePath(p Path) thunk {
	root := p.Segs[0]
	if len(p.Segs) == 1 {
		sym := domain.Sym(root)
		return func(c cctx) (domain.Value, error) {
			if v, ok := c.env.Lookup(root); ok {
				return v, nil
			}
			return sym, nil
		}
	}
	rest := p.Segs[1:]
	return func(c cctx) (domain.Value, error) {
		cur, ok := c.env.Lookup(root)
		if !ok {
			return nil, &EvalError{p, fmt.Sprintf("unknown name %q", root)}
		}
		for _, seg := range rest {
			next, err := cfield(c, cur, seg, p)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		return cur, nil
	}
}

// cfield mirrors evalCtx.field for compiled paths.
func cfield(c cctx, v domain.Value, name string, p Path) (domain.Value, error) {
	switch x := v.(type) {
	case *domain.Rec:
		return x.Get(name), nil
	case domain.Ref:
		if av, ok := c.env.AttrOf(x, name); ok {
			return av, nil
		}
		return nil, &EvalError{p, fmt.Sprintf("object %s has no attribute %q", x, name)}
	}
	if domain.IsNull(v) {
		return domain.NullValue, nil
	}
	return nil, &EvalError{p, fmt.Sprintf("cannot select %q from %s", name, v)}
}

func compileCollection(p Path) colThunk {
	root := p.Segs[0]
	rest := p.Segs[1:]
	multi := len(p.Segs) > 1
	return func(c cctx) ([]domain.Value, error) {
		items, ok := c.env.Collection(root)
		if !ok {
			if v, vok := c.env.Lookup(root); vok {
				if items, ok = elems(v); !ok {
					if ref, isRef := v.(domain.Ref); isRef && multi {
						items, ok = []domain.Value{ref}, true
					}
				}
			}
			if !ok {
				return nil, &EvalError{p, fmt.Sprintf("unknown collection %q", root)}
			}
		}
		items, err := applyCFilters(c, root, items)
		if err != nil {
			return nil, err
		}
		for _, seg := range rest {
			var next []domain.Value
			for _, it := range items {
				if ref, isRef := it.(domain.Ref); isRef {
					if sub, ok := c.env.CollectionOf(ref, seg); ok {
						next = append(next, sub...)
						continue
					}
				}
				v, err := cfield(c, it, seg, p)
				if err != nil {
					return nil, err
				}
				if sub, ok := elems(v); ok {
					next = append(next, sub...)
				} else {
					next = append(next, v)
				}
			}
			items = next
		}
		return items, nil
	}
}

// applyCFilters mirrors evalCtx.applyFilters: filters nested in filters
// are not re-applied, so the filter body runs with a filter-free context.
func applyCFilters(c cctx, root string, items []domain.Value) ([]domain.Value, error) {
	for _, f := range c.filters {
		if !f.roots[root] {
			continue
		}
		var kept []domain.Value
		for _, it := range items {
			sub := &bindEnv{base: c.env, name: root, val: it}
			v, err := f.filter(cctx{env: sub})
			if err != nil {
				return nil, err
			}
			b, ok := domain.Truth(v)
			if !ok {
				return nil, &EvalError{f.src, "where filter is not boolean"}
			}
			if b {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}
