package expr

import (
	"testing"

	"cadcam/internal/domain"
)

// assertAgree evaluates src both interpreted and compiled against env and
// fails unless value and error presence/text agree — the compiled chain
// must be indistinguishable from the oracle.
func assertAgree(t *testing.T, src string, env Env) {
	t.Helper()
	e := MustParse(src)
	iv, ierr := EvalValue(e, env)
	cv, cerr := Compile(e).Eval(env)
	if (ierr == nil) != (cerr == nil) {
		t.Fatalf("%q: interpreted err=%v, compiled err=%v", src, ierr, cerr)
	}
	if ierr != nil {
		if ierr.Error() != cerr.Error() {
			t.Fatalf("%q: error text diverges:\n  interpreted: %v\n  compiled:    %v", src, ierr, cerr)
		}
		return
	}
	if !iv.Equal(cv) || !cv.Equal(iv) {
		t.Fatalf("%q: interpreted %s, compiled %s", src, iv, cv)
	}
}

func TestCompileAgreesWithInterpreter(t *testing.T) {
	env := simpleGateEnv()
	env.Colls["Bolt"] = []domain.Value{domain.Ref(1)}
	env.Colls["Nut"] = []domain.Value{domain.Ref(2)}
	env.Objs[1] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(40)}
	env.Objs[2] = map[string]domain.Value{"Diameter": domain.Int(8), "Length": domain.Int(10)}
	env.Vals["delay"] = domain.Rl(3.5)
	env.Vals["label"] = domain.Str("g1")
	env.Vals["nothing"] = domain.NullValue

	cases := []string{
		// Values, arithmetic, comparison.
		"1 + 2 * 3",
		"Length / 4.0",
		"-Length + 1",
		"Length = 4",
		"delay < 5",
		"delay >= 3.5 and delay <= 3.5",
		"Length != 5 or false",
		"Function = NAND",
		"label = \"g1\"",
		"nothing = null",
		"nothing != 3",
		// Null and error paths.
		"Length / 0",
		"delay < label",
		"not Length",
		"true and 3",
		"Length.foo",
		"unknownname",
		"unknown.path",
		// Collections, quantifiers, filters — the paper's constraint forms.
		"count (Pins) = 2 where Pins.InOut = IN",
		"count (Pins) = 1 where Pins.InOut = OUT",
		"count(Pins)",
		"sum (Pins.PinId)",
		"for p in Pins: p.PinId >= 0",
		"exists p in Pins: p.InOut = OUT",
		"for (s in Bolt, n in Nut): s.Diameter = n.Diameter",
		"for (s in Bolt, n in Nut): s.Length > n.Length",
		"exists s in Bolt: s.Length in Nut.Length",
		"1 in Pins.PinId",
		"9 in Pins.PinId",
		"#s in Bolt = 1",
		"IN in Pins.InOut",
		"count (Pins) = 3 where Pins.PinId > 0",
		"sum (Pins.PinId) where Pins.InOut = IN",
	}
	for _, src := range cases {
		assertAgree(t, src, env)
	}
}

// TestCompileBoolMatchesEvalBool checks the condition folding (null =>
// false, non-boolean => error) matches EvalBool.
func TestCompileBoolMatchesEvalBool(t *testing.T) {
	env := simpleGateEnv()
	for _, src := range []string{"Length = 4", "Length", "count(Pins) > 2", "Pins"} {
		e := MustParse(src)
		ib, ierr := EvalBool(e, env)
		cb, cerr := Compile(e).EvalBool(env)
		if ib != cb || (ierr == nil) != (cerr == nil) {
			t.Fatalf("%q: EvalBool %v/%v, compiled %v/%v", src, ib, ierr, cb, cerr)
		}
		if ierr != nil && ierr.Error() != cerr.Error() {
			t.Fatalf("%q: error text diverges: %v vs %v", src, ierr, cerr)
		}
	}
}

// TestCompileReuse evaluates one compiled predicate against many
// environments (the planner's usage pattern) and checks independence.
func TestCompileReuse(t *testing.T) {
	p := Compile(MustParse("delay < 5 and delay >= 0"))
	for i := 0; i < 10; i++ {
		env := NewMapEnv()
		env.Vals["delay"] = domain.Int(int64(i))
		got, err := p.EvalBool(env)
		if err != nil {
			t.Fatalf("delay=%d: %v", i, err)
		}
		if want := i < 5; got != want {
			t.Fatalf("delay=%d: got %v, want %v", i, got, want)
		}
	}
}

// TestCompileWhereFilterScope ensures compiled nested-filter semantics
// match the interpreter: filters do not re-apply inside filter bodies.
func TestCompileWhereFilterScope(t *testing.T) {
	env := simpleGateEnv()
	assertAgree(t, "count (Pins) = 3 where Pins.PinId > 0 and Pins.InOut != HUH", env)
	assertAgree(t, "count (Pins) + count(Pins) = 4 where Pins.InOut = IN", env)
}

func BenchmarkInterpretPredicate(b *testing.B) {
	e := MustParse("delay < 5 and Function = NAND")
	env := simpleGateEnv()
	env.Vals["delay"] = domain.Int(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBool(e, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledPredicate(b *testing.B) {
	p := Compile(MustParse("delay < 5 and Function = NAND"))
	env := simpleGateEnv()
	env.Vals["delay"] = domain.Int(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.EvalBool(env); err != nil {
			b.Fatal(err)
		}
	}
}
