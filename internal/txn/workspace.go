package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cadcam/internal/domain"
)

// ErrCheckinConflict reports that an object changed in the database while
// checked out.
var ErrCheckinConflict = errors.New("txn: object changed since checkout")

// Workspace is a private design workspace for long (design) transactions:
// objects are checked out as snapshots, edited locally for any length of
// time without holding database locks, and checked back in atomically
// with optimistic validation — the engineering-transaction style the
// paper cites ([KLMP84], [KSUW85]).
type Workspace struct {
	mgr  *Manager
	user string

	mu      sync.Mutex
	entries map[domain.Surrogate]*wsEntry
}

type wsEntry struct {
	seqAtCheckout uint64
	edits         map[string]domain.Value
}

// NewWorkspace creates an empty workspace for a user.
func (m *Manager) NewWorkspace(user string) *Workspace {
	return &Workspace{mgr: m, user: user, entries: make(map[domain.Surrogate]*wsEntry)}
}

// Checkout snapshots an object into the workspace. No database locks are
// held afterwards; conflicting concurrent updates are detected at
// checkin.
func (w *Workspace) Checkout(sur domain.Surrogate) error {
	seq, err := w.mgr.store.ModSeq(sur)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.entries[sur]; dup {
		return fmt.Errorf("txn: %s already checked out", sur)
	}
	w.entries[sur] = &wsEntry{seqAtCheckout: seq, edits: make(map[string]domain.Value)}
	return nil
}

// CheckoutAt snapshots several objects into the workspace at one
// consistent sequence point: an MVCC pin freezes the store-wide state,
// so every recorded checkout sequence belongs to the same moment and a
// later checkin validates the whole set against that moment instead of
// a ragged collection of per-object instants. Nothing is checked out on
// error.
func (w *Workspace) CheckoutAt(surs ...domain.Surrogate) error {
	sn := w.mgr.store.Snapshot()
	defer sn.Release()
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs := make([]uint64, len(surs))
	for i, sur := range surs {
		if _, dup := w.entries[sur]; dup {
			return fmt.Errorf("txn: %s already checked out", sur)
		}
		seq, err := sn.ModSeq(sur)
		if err != nil {
			return err
		}
		seqs[i] = seq
	}
	for i, sur := range surs {
		w.entries[sur] = &wsEntry{seqAtCheckout: seqs[i], edits: make(map[string]domain.Value)}
	}
	return nil
}

// Set records a local edit of a checked-out object.
func (w *Workspace) Set(sur domain.Surrogate, attr string, v domain.Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[sur]
	if !ok {
		return fmt.Errorf("txn: %s is not checked out", sur)
	}
	e.edits[attr] = v
	return nil
}

// Get reads through the workspace: local edits win, otherwise the live
// database value.
func (w *Workspace) Get(sur domain.Surrogate, attr string) (domain.Value, error) {
	w.mu.Lock()
	if e, ok := w.entries[sur]; ok {
		if v, edited := e.edits[attr]; edited {
			w.mu.Unlock()
			return v, nil
		}
	}
	w.mu.Unlock()
	return w.mgr.store.GetAttr(sur, attr)
}

// Checkin validates that no checked-out object changed underneath the
// workspace, then applies all edits in one short transaction. On success
// the workspace is emptied; on conflict nothing is written and the
// workspace keeps its state for inspection or Revert.
func (w *Workspace) Checkin() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	surs := make([]domain.Surrogate, 0, len(w.entries))
	for sur := range w.entries {
		surs = append(surs, sur)
	}
	sort.Slice(surs, func(i, j int) bool { return surs[i] < surs[j] })

	t := w.mgr.Begin(w.user)
	abort := func(err error) error {
		_ = t.Abort()
		return err
	}
	for _, sur := range surs {
		e := w.entries[sur]
		// Lock first, then validate: the short transaction makes the
		// validate-and-write atomic.
		if err := t.lock(sur, X, nil); err != nil {
			return abort(err)
		}
		seq, err := w.mgr.store.ModSeq(sur)
		if err != nil {
			return abort(err)
		}
		if seq != e.seqAtCheckout {
			return abort(fmt.Errorf("%w: %s (checked out at seq %d, now %d)",
				ErrCheckinConflict, sur, e.seqAtCheckout, seq))
		}
	}
	for _, sur := range surs {
		e := w.entries[sur]
		attrs := make([]string, 0, len(e.edits))
		for a := range e.edits {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			if err := t.SetAttr(sur, a, e.edits[a]); err != nil {
				return abort(err)
			}
		}
	}
	if err := t.Commit(); err != nil {
		return err
	}
	w.entries = make(map[domain.Surrogate]*wsEntry)
	return nil
}

// Revert drops all checkouts and local edits.
func (w *Workspace) Revert() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries = make(map[domain.Surrogate]*wsEntry)
}

// CheckedOut lists the checked-out objects, sorted.
func (w *Workspace) CheckedOut() []domain.Surrogate {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]domain.Surrogate, 0, len(w.entries))
	for sur := range w.entries {
		out = append(out, sur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
