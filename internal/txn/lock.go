// Package txn implements the transaction facilities §6 of the paper asks
// of a CAD/CAM database:
//
//   - a lock manager with shared/exclusive and intention modes whose lock
//     unit can be a *portion* of an object (a named attribute set), so
//     that lock inheritance can protect exactly "the parts of the
//     component which are visible in the composite object";
//   - lock inheritance in the reverse direction of data inheritance:
//     reading inherited data through a composite read-locks the visible
//     portion of the transmitter;
//   - complex operations that lock whole component hierarchies
//     ("expansion" locking), consulting an access-control manager that
//     caps implicitly acquired lock modes on heavily shared standard
//     parts;
//   - strict two-phase transactions with undo, deadlock detection, and
//     long (design) transactions via checkout/checkin workspaces.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cadcam/internal/domain"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes. IS/IX are object-level intention modes used when locking
// composites hierarchically; S/X may carry a portion (attribute set).
const (
	IS Mode = iota + 1
	IX
	S
	X
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Errors returned by lock acquisition.
var (
	ErrDeadlock   = errors.New("txn: deadlock detected")
	ErrTxnDone    = errors.New("txn: transaction is not active")
	ErrLockAccess = errors.New("txn: access control denies the requested mode")
)

// portion is the locked part of an object: nil means the whole object.
type portion map[string]bool

func newPortion(members []string) portion {
	if members == nil {
		return nil
	}
	p := make(portion, len(members))
	for _, m := range members {
		p[m] = true
	}
	return p
}

func (p portion) whole() bool { return p == nil }

func (p portion) overlaps(q portion) bool {
	if p.whole() || q.whole() {
		return true
	}
	for m := range p {
		if q[m] {
			return true
		}
	}
	return false
}

func (p portion) String() string {
	if p.whole() {
		return "*"
	}
	names := make([]string, 0, len(p))
	for m := range p {
		names = append(names, m)
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

// request is one lock request, granted or queued.
type request struct {
	txn     *Txn
	mode    Mode
	portion portion
	granted bool
	ready   chan struct{}
}

// compatible reports whether two requests can be granted together.
// Intention modes conflict only with whole-object S/X of other
// transactions; S and X conflict when their portions overlap.
func compatible(a, b *request) bool {
	if a.txn == b.txn {
		return true
	}
	x, y := a, b
	if x.mode > y.mode {
		x, y = y, x
	}
	switch {
	case x.mode == IS && y.mode == IS, x.mode == IS && y.mode == IX, x.mode == IX && y.mode == IX:
		return true
	case x.mode == IS && y.mode == S:
		return true
	case x.mode == IS && y.mode == X:
		return !y.portion.whole()
	case x.mode == IX && y.mode == S, x.mode == IX && y.mode == X:
		return !y.portion.whole()
	case x.mode == S && y.mode == S:
		return true
	case x.mode == S && y.mode == X, x.mode == X && y.mode == X:
		return !x.portion.overlaps(y.portion)
	default:
		return false
	}
}

// covers reports whether an already granted request subsumes a new one,
// so re-acquisition is a no-op.
func covers(held, want *request) bool {
	if held.mode == want.mode || (held.mode == X && want.mode == S) ||
		(held.mode == X && want.mode == IX) || (held.mode == X && want.mode == IS) ||
		(held.mode == S && want.mode == IS) || (held.mode == IX && want.mode == IS) {
		if held.portion.whole() {
			return true
		}
		if want.portion.whole() {
			return false
		}
		for m := range want.portion {
			if !held.portion[m] {
				return false
			}
		}
		return true
	}
	return false
}

// objLock is the lock table entry for one object.
type objLock struct {
	granted []*request
	queue   []*request
}

// lockStripes is the number of lock-table partitions. Like the store's
// shards, requests for different objects mostly touch different stripes,
// so concurrent transactions contend on the lock manager only when their
// surrogates hash together.
const lockStripes = 16

// lockStripe is one partition of the lock table.
type lockStripe struct {
	mu   sync.Mutex
	objs map[domain.Surrogate]*objLock
	_    [64]byte // keep stripes on separate cache lines
}

// lockManager serializes access to objects for the transaction manager.
// The lock table is striped by surrogate; the waits-for graph is global
// and guarded by wfMu, a leaf lock acquired (if at all) while holding one
// stripe lock. Never take a stripe lock while holding wfMu.
type lockManager struct {
	stripes  [lockStripes]lockStripe
	wfMu     sync.Mutex
	waitsFor map[uint64]map[uint64]bool // txn id -> ids it waits for
}

func newLockManager() *lockManager {
	lm := &lockManager{waitsFor: make(map[uint64]map[uint64]bool)}
	for i := range lm.stripes {
		lm.stripes[i].objs = make(map[domain.Surrogate]*objLock)
	}
	return lm
}

func (lm *lockManager) stripeFor(sur domain.Surrogate) *lockStripe {
	return &lm.stripes[uint64(sur)%lockStripes]
}

// acquire blocks until the lock is granted or a deadlock is detected (in
// which case the requester is chosen as the victim).
func (lm *lockManager) acquire(t *Txn, sur domain.Surrogate, mode Mode, members []string) error {
	req := &request{txn: t, mode: mode, portion: newPortion(members), ready: make(chan struct{})}

	st := lm.stripeFor(sur)
	st.mu.Lock()
	ol := st.objs[sur]
	if ol == nil {
		ol = &objLock{}
		st.objs[sur] = ol
	}
	// Re-acquisition: an equal or stronger lock is already held.
	for _, g := range ol.granted {
		if g.txn == t && covers(g, req) {
			st.mu.Unlock()
			return nil
		}
	}
	if lm.grantableLocked(ol, req) {
		req.granted = true
		ol.granted = append(ol.granted, req)
		t.addLock(sur, req)
		st.mu.Unlock()
		return nil
	}
	// Queue and check for deadlock before waiting. Edge insertion and the
	// cycle check are atomic under wfMu, so of two transactions closing a
	// cycle on different stripes, whichever inserts second sees it.
	blockers := lm.blockersLocked(ol, req)
	lm.wfMu.Lock()
	w := lm.waitsFor[t.id]
	if w == nil {
		w = make(map[uint64]bool)
		lm.waitsFor[t.id] = w
	}
	for _, b := range blockers {
		w[b] = true
	}
	if lm.cycleLocked(t.id, t.id, map[uint64]bool{}) {
		delete(lm.waitsFor, t.id)
		lm.wfMu.Unlock()
		st.mu.Unlock()
		return fmt.Errorf("%w: %s %s on %s", ErrDeadlock, mode, req.portion, sur)
	}
	lm.wfMu.Unlock()
	ol.queue = append(ol.queue, req)
	st.mu.Unlock()

	<-req.ready
	return nil
}

// grantableLocked checks compatibility against granted requests and, for
// fairness, against earlier queued requests of other transactions.
func (lm *lockManager) grantableLocked(ol *objLock, req *request) bool {
	for _, g := range ol.granted {
		if !compatible(g, req) {
			return false
		}
	}
	for _, q := range ol.queue {
		if q.txn != req.txn && !compatible(q, req) {
			return false
		}
	}
	return true
}

func (lm *lockManager) blockersLocked(ol *objLock, req *request) []uint64 {
	var out []uint64
	for _, g := range ol.granted {
		if !compatible(g, req) {
			out = append(out, g.txn.id)
		}
	}
	for _, q := range ol.queue {
		if q.txn != req.txn && !compatible(q, req) {
			out = append(out, q.txn.id)
		}
	}
	return out
}

// cycleLocked reports whether `from` can reach `target` in the waits-for
// graph.
func (lm *lockManager) cycleLocked(from, target uint64, seen map[uint64]bool) bool {
	for next := range lm.waitsFor[from] {
		if next == target {
			return true
		}
		if !seen[next] {
			seen[next] = true
			if lm.cycleLocked(next, target, seen) {
				return true
			}
		}
	}
	return false
}

// releaseAll frees every lock of a transaction and promotes waiters. The
// transaction is finished, so nothing adds to t.locked concurrently; the
// snapshot is taken under t.lockMu before any stripe lock (the two are
// never held together from this path).
func (lm *lockManager) releaseAll(t *Txn) {
	lm.wfMu.Lock()
	delete(lm.waitsFor, t.id)
	lm.wfMu.Unlock()
	t.lockMu.Lock()
	surs := make([]domain.Surrogate, 0, len(t.locked))
	for sur := range t.locked {
		surs = append(surs, sur)
	}
	t.lockMu.Unlock()
	// Visit each stripe once.
	byStripe := make(map[*lockStripe][]domain.Surrogate, lockStripes)
	for _, sur := range surs {
		st := lm.stripeFor(sur)
		byStripe[st] = append(byStripe[st], sur)
	}
	for st, group := range byStripe {
		st.mu.Lock()
		for _, sur := range group {
			ol := st.objs[sur]
			if ol == nil {
				continue
			}
			kept := ol.granted[:0]
			for _, g := range ol.granted {
				if g.txn != t {
					kept = append(kept, g)
				}
			}
			ol.granted = kept
			lm.promoteLocked(sur, ol)
			if len(ol.granted) == 0 && len(ol.queue) == 0 {
				delete(st.objs, sur)
			}
		}
		st.mu.Unlock()
	}
}

// promoteLocked grants queued requests FIFO while they stay compatible.
func (lm *lockManager) promoteLocked(sur domain.Surrogate, ol *objLock) {
	var remaining []*request
	for i, q := range ol.queue {
		grantable := true
		for _, g := range ol.granted {
			if !compatible(g, q) {
				grantable = false
				break
			}
		}
		// Preserve FIFO order: a request behind an ungrantable one of a
		// different transaction stays queued unless compatible with it.
		if grantable {
			for _, earlier := range ol.queue[:i] {
				if !earlier.granted && earlier.txn != q.txn && !compatible(earlier, q) {
					grantable = false
					break
				}
			}
		}
		if grantable {
			q.granted = true
			ol.granted = append(ol.granted, q)
			q.txn.addLock(sur, q)
			lm.wfMu.Lock()
			delete(lm.waitsFor, q.txn.id)
			lm.wfMu.Unlock()
			close(q.ready)
		} else {
			remaining = append(remaining, q)
		}
	}
	ol.queue = remaining
}

// LockTableStats counts the lock table's live state. Entries are removed
// when their last request releases, so a system in which every
// transaction has committed or aborted must report all zeros — anything
// else is a leaked lock.
type LockTableStats struct {
	Objects int // surrogates with a live lock-table entry
	Granted int // granted requests across all entries
	Queued  int // waiting requests across all entries
	Waiters int // transactions present in the waits-for graph
}

// LockTableStats snapshots the lock table, stripe by stripe.
func (m *Manager) LockTableStats() LockTableStats {
	var s LockTableStats
	lm := m.locks
	for i := range lm.stripes {
		st := &lm.stripes[i]
		st.mu.Lock()
		s.Objects += len(st.objs)
		for _, ol := range st.objs {
			s.Granted += len(ol.granted)
			s.Queued += len(ol.queue)
		}
		st.mu.Unlock()
	}
	lm.wfMu.Lock()
	s.Waiters = len(lm.waitsFor)
	lm.wfMu.Unlock()
	return s
}
