package txn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// TestConcurrentTransactionsStress runs many goroutines doing random
// transactional work against a shared composite scene. Deadlocks must be
// detected (never hang), aborted work must leave no trace, and the store
// must stay internally consistent throughout.
func TestConcurrentTransactionsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := gateManager(t)
	s := m.store

	// Shared scene: a few interfaces with implementations, plus a pool of
	// free-standing pins the writers fight over.
	var ifaces, impls, pins []domain.Surrogate
	for i := 0; i < 4; i++ {
		rootI, _ := s.NewObject(paperschema.TypeGateInterfaceI, "")
		iface, _ := s.NewObject(paperschema.TypeGateInterface, "")
		if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
			t.Fatal(err)
		}
		if err := s.SetAttr(iface, "Length", domain.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		impl, _ := s.NewObject(paperschema.TypeGateImplementation, "")
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
			t.Fatal(err)
		}
		ifaces = append(ifaces, iface)
		impls = append(impls, impl)
	}
	for i := 0; i < 16; i++ {
		pin, _ := s.NewObject(paperschema.TypePin, "")
		pins = append(pins, pin)
	}

	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				tx := m.Begin("")
				ok := true
				for op := 0; op < 3 && ok; op++ {
					var err error
					switch rng.Intn(4) {
					case 0: // write a random pin
						err = tx.SetAttr(pins[rng.Intn(len(pins))], "PinId", domain.Int(rng.Int63n(100)))
					case 1: // read through the inheritance chain
						_, err = tx.GetAttr(impls[rng.Intn(len(impls))], "Length")
					case 2: // write a random interface (visible portion)
						err = tx.SetAttr(ifaces[rng.Intn(len(ifaces))], "Width", domain.Int(rng.Int63n(100)))
					case 3: // read a subclass through the chain
						_, err = tx.Members(impls[rng.Intn(len(impls))], "Pins")
					}
					if err != nil {
						if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTxnDone) {
							errs <- err
						}
						ok = false
					}
				}
				if ok {
					if rng.Intn(8) == 0 { // occasional voluntary abort
						_ = tx.Abort()
					} else if err := tx.Commit(); err != nil && !errors.Is(err, ErrTxnDone) {
						errs <- err
					}
				} else {
					_ = tx.Abort()
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("worker error: %v", err)
	}
	if bad := s.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("store inconsistent after stress: %v", bad)
	}
	// No locks may remain.
	remaining := 0
	for i := range m.locks.stripes {
		st := &m.locks.stripes[i]
		st.mu.Lock()
		remaining += len(st.objs)
		st.mu.Unlock()
	}
	if remaining != 0 {
		t.Errorf("%d lock table entries leaked", remaining)
	}
}

// TestSerializability2Writers verifies no lost updates: two transactions
// increment the same attribute under X locks; the final value reflects
// both.
func TestSerializability2Writers(t *testing.T) {
	m := gateManager(t)
	pin, _ := m.store.NewObject(paperschema.TypePin, "")
	if err := m.store.SetAttr(pin, "PinId", domain.Int(0)); err != nil {
		t.Fatal(err)
	}
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for { // retry on deadlock
					tx := m.Begin("")
					v, err := tx.GetAttr(pin, "PinId")
					if err == nil {
						n, _ := domain.AsInt(v)
						err = tx.SetAttr(pin, "PinId", domain.Int(n+1))
					}
					if err == nil {
						if err = tx.Commit(); err == nil {
							break
						}
					} else {
						_ = tx.Abort()
					}
					if !errors.Is(err, ErrDeadlock) && err != nil {
						panic(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := m.store.GetAttr(pin, "PinId")
	if !v.Equal(domain.Int(2 * perWorker)) {
		t.Errorf("lost updates: final = %s, want %d", v, 2*perWorker)
	}
}
