package txn

import (
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/inherit"
)

// ExpansionLock reports what LockExpansion acquired: the composite's own
// subtree and the visible portions of each component, with the mode
// actually granted after access-control capping.
type ExpansionLock struct {
	Root     domain.Surrogate
	Own      []domain.Surrogate // root + subobjects, locked in the full mode
	Portions []PortionLock
}

// PortionLock is one component portion with the effective lock mode.
type PortionLock struct {
	Object  domain.Surrogate
	Rel     string
	Members []string
	Mode    Mode // requested mode after the access-control cap
}

// LockExpansion is the complex operation §6 describes: lock a composite
// object together with its whole component hierarchy ("expansion"). The
// composite's own subtree is locked in the requested mode; each
// component's *visible portion* is locked in the requested mode capped by
// the user's rights on that component — so heavily shared standard parts
// come out read-locked even inside an update expansion.
func (t *Txn) LockExpansion(root domain.Surrogate, mode Mode) (*ExpansionLock, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	out := &ExpansionLock{Root: root}

	// 1. The composite and its own subobject tree.
	exp, err := inherit.Expand(t.mgr.store, root)
	if err != nil {
		return nil, err
	}
	own := ownSubtree(exp)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	for _, sur := range own {
		if err := t.lock(sur, mode, nil); err != nil {
			return nil, err
		}
	}
	out.Own = own

	// 2. The visible portions of every component, transitively.
	portions, err := inherit.VisibleComponents(t.mgr.store, root)
	if err != nil {
		return nil, err
	}
	for _, p := range portions {
		capped := t.mgr.access.CapMode(t.user, p.Object, mode)
		if err := t.lock(p.Object, capped, p.Members); err != nil {
			return nil, err
		}
		out.Portions = append(out.Portions, PortionLock{
			Object:  p.Object,
			Rel:     p.Rel,
			Members: p.Members,
			Mode:    capped,
		})
	}
	return out, nil
}

// ownSubtree collects the nodes of an expansion reachable without
// crossing a binding edge: the composite object and its own subobjects,
// recursively.
func ownSubtree(e *inherit.Expansion) []domain.Surrogate {
	out := []domain.Surrogate{e.Object}
	for _, c := range e.Children {
		if len(c.Rel) > 4 && c.Rel[:4] == "sub:" {
			out = append(out, ownSubtree(c)...)
		}
	}
	return out
}
