package txn

import (
	"sync"

	"cadcam/internal/domain"
)

// Right is an access right on an object.
type Right uint8

// Rights, ordered by strength.
const (
	RightNone Right = iota
	RightRead
	RightUpdate
)

// AccessControl is the access-control manager §6 requires the lock
// manager to consult: implicit locks taken by complex operations must not
// allow more than the user's rights admit. Heavily shared standard
// objects (bolts, nuts, VLSI standard cells) are typically readable but
// not updatable by normal users, so expansion locking takes only read
// locks on them.
type AccessControl struct {
	mu sync.RWMutex
	// perObject rights per user; fall back to perUser default, then the
	// global default (RightUpdate).
	perObject map[string]map[domain.Surrogate]Right
	perUser   map[string]Right
}

// NewAccessControl creates a manager granting everyone full update rights
// until configured otherwise.
func NewAccessControl() *AccessControl {
	return &AccessControl{
		perObject: make(map[string]map[domain.Surrogate]Right),
		perUser:   make(map[string]Right),
	}
}

// Grant sets a user's right on one object. The empty user name configures
// the right every user gets on that object unless overridden.
func (a *AccessControl) Grant(user string, sur domain.Surrogate, r Right) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.perObject[user]
	if m == nil {
		m = make(map[domain.Surrogate]Right)
		a.perObject[user] = m
	}
	m[sur] = r
}

// GrantDefault sets a user's default right for objects without a
// per-object entry.
func (a *AccessControl) GrantDefault(user string, r Right) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.perUser[user] = r
}

// RightOf resolves the effective right of a user on an object.
func (a *AccessControl) RightOf(user string, sur domain.Surrogate) Right {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if m, ok := a.perObject[user]; ok {
		if r, ok := m[sur]; ok {
			return r
		}
	}
	if m, ok := a.perObject[""]; ok {
		if r, ok := m[sur]; ok {
			return r
		}
	}
	if r, ok := a.perUser[user]; ok {
		return r
	}
	return RightUpdate
}

// MayUpdate reports whether the user may update the object.
func (a *AccessControl) MayUpdate(user string, sur domain.Surrogate) bool {
	return a.RightOf(user, sur) >= RightUpdate
}

// MayRead reports whether the user may read the object.
func (a *AccessControl) MayRead(user string, sur domain.Surrogate) bool {
	return a.RightOf(user, sur) >= RightRead
}

// CapMode limits a requested lock mode to what the user's rights admit:
// an X (or IX) request on a read-only object is capped to S (or IS) —
// the paper's "only these parts of the standard cells are locked in
// read-mode". Requests on unreadable objects are left untouched here;
// the explicit operation fails its access check instead.
func (a *AccessControl) CapMode(user string, sur domain.Surrogate, mode Mode) Mode {
	if mode != X && mode != IX {
		return mode
	}
	if a.MayUpdate(user, sur) {
		return mode
	}
	if mode == X {
		return S
	}
	return IS
}
