package txn

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func TestWorkspaceCheckoutCheckin(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypeGateInterfaceI, "")
	pin, _ := m.store.NewSubobject(sur, "Pins")
	if err := m.store.SetAttr(pin, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}

	ws := m.NewWorkspace("designer")
	if err := ws.Checkout(pin); err != nil {
		t.Fatal(err)
	}
	if got := ws.CheckedOut(); len(got) != 1 || got[0] != pin {
		t.Errorf("checked out = %v", got)
	}
	if err := ws.Checkout(pin); err == nil {
		t.Error("double checkout accepted")
	}
	if err := ws.Checkout(9999); err == nil {
		t.Error("checkout of missing object accepted")
	}

	// Local edits are visible through the workspace only.
	if err := ws.Set(pin, "PinId", intVal(42)); err != nil {
		t.Fatal(err)
	}
	if v, _ := ws.Get(pin, "PinId"); !v.Equal(intVal(42)) {
		t.Errorf("workspace read = %s", v)
	}
	if v, _ := m.store.GetAttr(pin, "PinId"); !v.Equal(intVal(1)) {
		t.Errorf("database must be untouched before checkin, got %s", v)
	}
	// Unedited attributes read through to the database.
	if v, _ := ws.Get(pin, "InOut"); !domain.IsNull(v) {
		t.Errorf("read-through = %s", v)
	}
	if err := ws.Set(9999, "X", intVal(1)); err == nil {
		t.Error("edit of non-checked-out object accepted")
	}

	if err := ws.Checkin(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.store.GetAttr(pin, "PinId"); !v.Equal(intVal(42)) {
		t.Errorf("checkin must publish edits, got %s", v)
	}
	if len(ws.CheckedOut()) != 0 {
		t.Error("workspace should be empty after checkin")
	}
}

func TestWorkspaceCheckinConflict(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	ws := m.NewWorkspace("a")
	if err := ws.Checkout(sur); err != nil {
		t.Fatal(err)
	}
	if err := ws.Set(sur, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	// A concurrent change lands in the database.
	if err := m.store.SetAttr(sur, "PinId", intVal(7)); err != nil {
		t.Fatal(err)
	}
	err := ws.Checkin()
	if !errors.Is(err, ErrCheckinConflict) {
		t.Fatalf("checkin should conflict, got %v", err)
	}
	// Nothing was written; the workspace still holds the edits.
	if v, _ := m.store.GetAttr(sur, "PinId"); !v.Equal(intVal(7)) {
		t.Errorf("conflicting checkin must not write, got %s", v)
	}
	if len(ws.CheckedOut()) != 1 {
		t.Error("workspace should keep state after conflict")
	}
	ws.Revert()
	if len(ws.CheckedOut()) != 0 {
		t.Error("revert should clear the workspace")
	}
}

func TestWorkspaceParallelDesigners(t *testing.T) {
	// Two designers check out disjoint objects: both checkins succeed.
	m := gateManager(t)
	a, _ := m.store.NewObject(paperschema.TypePin, "")
	b, _ := m.store.NewObject(paperschema.TypePin, "")
	wa, wb := m.NewWorkspace("a"), m.NewWorkspace("b")
	if err := wa.Checkout(a); err != nil {
		t.Fatal(err)
	}
	if err := wb.Checkout(b); err != nil {
		t.Fatal(err)
	}
	if err := wa.Set(a, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := wb.Set(b, "PinId", intVal(2)); err != nil {
		t.Fatal(err)
	}
	if err := wa.Checkin(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Checkin(); err != nil {
		t.Fatal(err)
	}
	va, _ := m.store.GetAttr(a, "PinId")
	vb, _ := m.store.GetAttr(b, "PinId")
	if !va.Equal(intVal(1)) || !vb.Equal(intVal(2)) {
		t.Errorf("published values = %s, %s", va, vb)
	}
}

func TestPotentialConflicts(t *testing.T) {
	// §6: relationships identify potential conflicts between transactions.
	m := gateManager(t)
	_, iface, impl, user := buildComposite(t, m)

	// impl and iface are related by a binding: write sets {impl} and
	// {iface} potentially conflict.
	pcs := PotentialConflicts(m.store, []domain.Surrogate{impl}, []domain.Surrogate{iface})
	if len(pcs) != 1 || pcs[0].A != impl || pcs[0].B != iface {
		t.Errorf("conflicts = %+v", pcs)
	}
	// user relates to impl through SomeOf_Gate.
	pcs = PotentialConflicts(m.store, []domain.Surrogate{user}, []domain.Surrogate{impl})
	if len(pcs) != 1 {
		t.Errorf("user/impl conflicts = %+v", pcs)
	}
	// Same object in both sets is a direct conflict.
	pcs = PotentialConflicts(m.store, []domain.Surrogate{impl}, []domain.Surrogate{impl})
	if len(pcs) == 0 {
		t.Error("shared object should conflict")
	}
	// Unrelated objects don't conflict.
	lone, _ := m.store.NewObject(paperschema.TypePin, "")
	pcs = PotentialConflicts(m.store, []domain.Surrogate{lone}, []domain.Surrogate{iface})
	if len(pcs) != 0 {
		t.Errorf("unrelated conflicts = %+v", pcs)
	}
}

func TestRelatedObjects(t *testing.T) {
	m := gateManager(t)
	s := m.store
	rootI, _ := s.NewObject(paperschema.TypeGateInterfaceI, "")
	p1, _ := s.NewSubobject(rootI, "Pins")
	p2, _ := s.NewSubobject(rootI, "Pins")
	w, err := s.Relate(paperschema.TypeWire, map[string]domain.Value{
		"Pin1": domain.Ref(p1), "Pin2": domain.Ref(p2),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	rel := RelatedObjects(s, p1)
	// p1 relates to p2 (co-participant) and rootI (parent).
	want := map[domain.Surrogate]bool{p2: true, rootI: true}
	if len(rel) != 2 {
		t.Fatalf("related = %v", rel)
	}
	for _, r := range rel {
		if !want[r] {
			t.Errorf("unexpected relation %v", r)
		}
	}
}

func TestWorkspaceCheckoutAt(t *testing.T) {
	m := gateManager(t)
	a, _ := m.store.NewObject(paperschema.TypePin, "")
	b, _ := m.store.NewObject(paperschema.TypePin, "")

	ws := m.NewWorkspace("designer")
	if err := ws.CheckoutAt(a, b); err != nil {
		t.Fatal(err)
	}
	if got := ws.CheckedOut(); len(got) != 2 {
		t.Fatalf("checked out = %v", got)
	}
	// A write after the pinned checkout conflicts the whole set.
	if err := m.store.SetAttr(b, "PinId", intVal(7)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Set(a, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Checkin(); !errors.Is(err, ErrCheckinConflict) {
		t.Fatalf("checkin should conflict, got %v", err)
	}
	ws.Revert()

	// A clean pinned checkout of both commits.
	if err := ws.CheckoutAt(a, b); err != nil {
		t.Fatal(err)
	}
	if err := ws.Set(a, "PinId", intVal(3)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Set(b, "PinId", intVal(4)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Checkin(); err != nil {
		t.Fatal(err)
	}
	va, _ := m.store.GetAttr(a, "PinId")
	vb, _ := m.store.GetAttr(b, "PinId")
	if !va.Equal(intVal(3)) || !vb.Equal(intVal(4)) {
		t.Errorf("published values = %s, %s", va, vb)
	}
	// Checkout of a missing object leaves nothing checked out.
	if err := ws.CheckoutAt(a, 9999); err == nil {
		t.Fatal("checkout of missing object accepted")
	}
	if got := ws.CheckedOut(); len(got) != 0 {
		t.Errorf("failed CheckoutAt must not leave partial state: %v", got)
	}
	// Pins drained.
	if st := m.store.Stats().MVCC; st.Pins != 0 {
		t.Errorf("pins = %d after checkout", st.Pins)
	}
}
