package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

func gateManager(t *testing.T) *Manager {
	t.Helper()
	s, err := object.NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(s)
}

func TestPortionOverlap(t *testing.T) {
	whole := newPortion(nil)
	ab := newPortion([]string{"A", "B"})
	bc := newPortion([]string{"B", "C"})
	cd := newPortion([]string{"C", "D"})
	if !whole.overlaps(ab) || !ab.overlaps(whole) {
		t.Error("whole overlaps everything")
	}
	if !ab.overlaps(bc) {
		t.Error("AB overlaps BC")
	}
	if ab.overlaps(cd) {
		t.Error("AB must not overlap CD")
	}
	if whole.String() != "*" {
		t.Errorf("whole portion string = %q", whole.String())
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	t1 := &Txn{id: 1}
	t2 := &Txn{id: 2}
	mk := func(tx *Txn, m Mode, members []string) *request {
		return &request{txn: tx, mode: m, portion: newPortion(members)}
	}
	cases := []struct {
		name string
		a, b *request
		want bool
	}{
		{"same txn always", mk(t1, X, nil), mk(t1, X, nil), true},
		{"S-S", mk(t1, S, nil), mk(t2, S, nil), true},
		{"S-X whole", mk(t1, S, nil), mk(t2, X, nil), false},
		{"X-X whole", mk(t1, X, nil), mk(t2, X, nil), false},
		{"S(A)-X(B) disjoint", mk(t1, S, []string{"A"}), mk(t2, X, []string{"B"}), true},
		{"S(A)-X(A) overlap", mk(t1, S, []string{"A"}), mk(t2, X, []string{"A"}), false},
		{"X(A)-X(B) disjoint", mk(t1, X, []string{"A"}), mk(t2, X, []string{"B"}), true},
		{"S(A)-X(whole)", mk(t1, S, []string{"A"}), mk(t2, X, nil), false},
		{"IS-IS", mk(t1, IS, nil), mk(t2, IS, nil), true},
		{"IS-IX", mk(t1, IS, nil), mk(t2, IX, nil), true},
		{"IS-S", mk(t1, IS, nil), mk(t2, S, nil), true},
		{"IS-X whole", mk(t1, IS, nil), mk(t2, X, nil), false},
		{"IS-X portion", mk(t1, IS, nil), mk(t2, X, []string{"A"}), true},
		{"IX-S whole", mk(t1, IX, nil), mk(t2, S, nil), false},
		{"IX-S portion", mk(t1, IX, nil), mk(t2, S, []string{"A"}), true},
		{"IX-X whole", mk(t1, IX, nil), mk(t2, X, nil), false},
		{"IX-IX", mk(t1, IX, nil), mk(t2, IX, nil), true},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("%s: compatible = %v, want %v", c.name, got, c.want)
		}
		if got := compatible(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): compatible = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCovers(t *testing.T) {
	t1 := &Txn{id: 1}
	mk := func(m Mode, members []string) *request {
		return &request{txn: t1, mode: m, portion: newPortion(members)}
	}
	if !covers(mk(X, nil), mk(S, []string{"A"})) {
		t.Error("whole X covers portion S")
	}
	if !covers(mk(S, []string{"A", "B"}), mk(S, []string{"A"})) {
		t.Error("superset S covers subset S")
	}
	if covers(mk(S, []string{"A"}), mk(S, []string{"A", "B"})) {
		t.Error("subset does not cover superset")
	}
	if covers(mk(S, []string{"A"}), mk(X, []string{"A"})) {
		t.Error("S does not cover X")
	}
	if covers(mk(S, []string{"A"}), mk(S, nil)) {
		t.Error("portion does not cover whole")
	}
}

func TestConcurrentReadersSharedLock(t *testing.T) {
	m := gateManager(t)
	sur, err := m.store.NewObject(paperschema.TypePin, "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := m.Begin("")
			if _, err := tx.GetAttr(sur, "PinId"); err != nil {
				errs <- err
				return
			}
			errs <- tx.Commit()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("reader: %v", err)
		}
	}
}

func TestWriterBlocksReader(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	writer := m.Begin("")
	if err := writer.SetAttr(sur, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	readerDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		tx := m.Begin("")
		close(started)
		_, err := tx.GetAttr(sur, "PinId")
		if err == nil {
			err = tx.Commit()
		}
		readerDone <- err
	}()
	<-started
	select {
	case err := <-readerDone:
		t.Fatalf("reader finished while writer holds X: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-readerDone:
		if err != nil {
			t.Errorf("reader after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never unblocked")
	}
}

func TestDisjointPortionsDoNotConflict(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	w1 := m.Begin("")
	w2 := m.Begin("")
	if err := w1.SetAttr(sur, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	// A different attribute of the same object: disjoint portion, no block.
	done := make(chan error, 1)
	go func() { done <- w2.SetAttr(sur, "InOut", symVal("IN")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("disjoint write: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint portion write blocked")
	}
	if err := w1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := gateManager(t)
	a, _ := m.store.NewObject(paperschema.TypePin, "")
	b, _ := m.store.NewObject(paperschema.TypePin, "")
	t1 := m.Begin("")
	t2 := m.Begin("")
	if err := t1.SetAttr(a, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := t2.SetAttr(b, "PinId", intVal(2)); err != nil {
		t.Fatal(err)
	}
	// t1 waits for b (held by t2) in the background...
	t1done := make(chan error, 1)
	go func() { t1done <- t1.SetAttr(b, "PinId", intVal(3)) }()
	time.Sleep(50 * time.Millisecond)
	// ...t2 requesting a closes the cycle and must be chosen as victim.
	err := t2.SetAttr(a, "PinId", intVal(4))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	// t1 proceeds after the victim aborts.
	select {
	case err := <-t1done:
		if err != nil {
			t.Errorf("survivor: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never unblocked")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairness(t *testing.T) {
	// A queued X must not be starved by later S requests.
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	holder := m.Begin("")
	if _, err := holder.GetAttr(sur, "PinId"); err != nil {
		t.Fatal(err)
	}
	writer := m.Begin("")
	writerDone := make(chan error, 1)
	go func() { writerDone <- writer.SetAttr(sur, "PinId", intVal(9)) }()
	time.Sleep(50 * time.Millisecond)

	// A later reader wanting the same portion queues behind the writer.
	reader := m.Begin("")
	readerDone := make(chan error, 1)
	go func() {
		_, err := reader.GetAttr(sur, "PinId")
		readerDone <- err
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("late reader overtook the queued writer")
	default:
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{IS, IX, S, X} {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	if Mode(77).String() == "" {
		t.Error("unknown mode should render")
	}
}
