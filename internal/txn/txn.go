package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/object"
)

// Manager coordinates transactions over one object store.
type Manager struct {
	store  *object.Store
	locks  *lockManager
	access *AccessControl
	nextID atomic.Uint64

	// barrier, when set, blocks until every journal record enqueued so
	// far is durable (the database's group-commit tail wait) and surfaces
	// the sticky journal error. Statements call it after mutating the
	// store, outside all store locks, so transactional writes get the
	// same per-statement durability as facade mutations.
	barrier func() error
}

// NewManager creates a transaction manager. Access control defaults to
// full update rights for everyone.
func NewManager(s *object.Store) *Manager {
	return &Manager{
		store:  s,
		locks:  newLockManager(),
		access: NewAccessControl(),
	}
}

// Store exposes the underlying object store (for read-only inspection).
func (m *Manager) Store() *object.Store { return m.store }

// SetDurabilityBarrier installs the per-statement durability wait. Must
// be called before any transaction begins.
func (m *Manager) SetDurabilityBarrier(f func() error) { m.barrier = f }

// syncJournal waits for the durability barrier, if one is installed.
func (m *Manager) syncJournal() error {
	if m.barrier == nil {
		return nil
	}
	return m.barrier()
}

// Access exposes the access-control manager.
func (m *Manager) Access() *AccessControl { return m.access }

// TxnState is a transaction's lifecycle state.
type TxnState uint8

// Transaction states.
const (
	StateActive TxnState = iota
	StateCommitted
	StateAborted
)

// Txn is a strict two-phase transaction. All object access must go
// through the Txn methods, which acquire the necessary locks (including
// lock inheritance) before touching the store. A Txn is used by a single
// goroutine.
type Txn struct {
	id   uint64
	mgr  *Manager
	user string

	mu      sync.Mutex
	state   TxnState
	undo    []func() error
	deletes []domain.Surrogate // applied at commit

	// locked is written by the lock manager from whichever stripe grants a
	// request — possibly a promotion running on another transaction's
	// release path — so it has its own mutex, a leaf below the stripe
	// locks.
	lockMu sync.Mutex
	locked map[domain.Surrogate][]*request
}

// Begin starts a transaction on behalf of a user (for access control;
// "" is an anonymous full-rights user).
func (m *Manager) Begin(user string) *Txn {
	return &Txn{
		id:     m.nextID.Add(1),
		mgr:    m,
		user:   user,
		locked: make(map[domain.Surrogate][]*request),
	}
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() TxnState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// addLock records a granted request; called by the lock manager while
// holding the granting stripe's mutex.
func (t *Txn) addLock(sur domain.Surrogate, req *request) {
	t.lockMu.Lock()
	t.locked[sur] = append(t.locked[sur], req)
	t.lockMu.Unlock()
}

// HeldLocks reports the objects this transaction holds locks on, with the
// strongest mode per object (diagnostics and tests).
func (t *Txn) HeldLocks() map[domain.Surrogate]Mode {
	t.lockMu.Lock()
	defer t.lockMu.Unlock()
	out := make(map[domain.Surrogate]Mode, len(t.locked))
	for sur, reqs := range t.locked {
		var best Mode
		for _, r := range reqs {
			if r.mode > best {
				best = r.mode
			}
		}
		out[sur] = best
	}
	return out
}

func (t *Txn) active() error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	return nil
}

// lock acquires a lock respecting the access-control cap: a requested X
// on an object the user may only read is downgraded to S (§6: implicit
// locks "should allow no more operations than the access control
// admits"). An explicit write will then fail at checkAccess.
func (t *Txn) lock(sur domain.Surrogate, mode Mode, members []string) error {
	capped := t.mgr.access.CapMode(t.user, sur, mode)
	return t.mgr.locks.acquire(t, sur, capped, members)
}

func (t *Txn) checkAccess(sur domain.Surrogate) error {
	if t.mgr.access.MayUpdate(t.user, sur) {
		return nil
	}
	return fmt.Errorf("%w: user %q may not update %s", ErrLockAccess, t.user, sur)
}

// Commit applies deferred deletes, then releases all locks.
func (t *Txn) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	for _, sur := range t.deletes {
		if err := t.mgr.store.Delete(sur); err != nil {
			// A failed deferred delete aborts the transaction.
			t.state = StateAborted
			t.undoAllLocked()
			t.mgr.locks.releaseAll(t)
			return fmt.Errorf("txn: deferred delete of %s failed: %w", sur, err)
		}
	}
	t.state = StateCommitted
	t.undo = nil
	t.mgr.locks.releaseAll(t)
	// The deferred deletes above were journaled; a committed transaction
	// is only acknowledged once they are durable.
	return t.mgr.syncJournal()
}

// Abort rolls back every change and releases all locks.
func (t *Txn) Abort() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	t.state = StateAborted
	t.undoAllLocked()
	t.mgr.locks.releaseAll(t)
	// Compensating operations are journal records too: an acknowledged
	// abort means the compensation is on disk.
	return t.mgr.syncJournal()
}

func (t *Txn) undoAllLocked() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		_ = t.undo[i]() // undo errors cannot be surfaced meaningfully
	}
	t.undo = nil
}

// ---- transactional object operations ----

// GetAttr reads an attribute under lock inheritance: the attribute's
// portion is read-locked on the object and, if the value is inherited, on
// every transmitter along the resolution chain (§6: lock inheritance runs
// in the *reverse* direction of data inheritance).
func (t *Txn) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	if err := t.lockResolutionChain(sur, name, S); err != nil {
		return nil, err
	}
	return t.mgr.store.GetAttr(sur, name)
}

// Members reads a subclass under the same lock-inheritance rule.
func (t *Txn) Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	if err := t.lockResolutionChain(sur, name, S); err != nil {
		return nil, err
	}
	return t.mgr.store.Members(sur, name)
}

// lockResolutionChain locks (sur, {member}) and every transmitter the
// resolution visits. The chain comes from the store's route cache; because
// a rebind can slip in between resolving and acquiring the locks, the
// chain is re-resolved after each round of new locks until a round adds
// nothing (the locked set only grows, so the loop terminates). The chain
// carries the structure epochs of every store shard it crosses; once the
// locked set stops growing, the stamp is re-checked so a rebind that
// happened mid-acquisition (by a writer not going through this lock
// manager) forces another resolution round. The re-check is bounded:
// under continuous non-transactional structural churn we keep the locks
// covering the last chain resolved rather than livelock.
func (t *Txn) lockResolutionChain(sur domain.Surrogate, member string, mode Mode) error {
	locked := make(map[domain.Surrogate]bool, 4)
	for stale := 0; ; {
		chain, stamp, err := t.mgr.store.ResolveChainStamped(sur, member)
		if err != nil {
			return err
		}
		grew := false
		for _, cs := range chain {
			if locked[cs] {
				continue
			}
			if err := t.lock(cs, mode, []string{member}); err != nil {
				return err
			}
			locked[cs] = true
			grew = true
		}
		if !grew {
			if t.mgr.store.StampValid(stamp) || stale >= 4 {
				return nil
			}
			stale++
		}
	}
}

// SetAttr writes an attribute under an exclusive portion lock, recording
// an undo entry. Write protection for inherited attributes is enforced by
// the store.
func (t *Txn) SetAttr(sur domain.Surrogate, name string, v domain.Value) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.lock(sur, X, []string{name}); err != nil {
		return err
	}
	if err := t.checkAccess(sur); err != nil {
		return err
	}
	before, err := t.mgr.store.GetAttr(sur, name)
	if err != nil {
		return err
	}
	if err := t.mgr.store.SetAttr(sur, name, v); err != nil {
		return err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.SetAttr(sur, name, before) })
	t.mu.Unlock()
	return t.mgr.syncJournal()
}

// NewObject creates an object; creation is undone on abort.
func (t *Txn) NewObject(typeName, className string) (domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	sur, err := t.mgr.store.NewObject(typeName, className)
	if err != nil {
		return 0, err
	}
	if err := t.lock(sur, X, nil); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.Delete(sur) })
	t.mu.Unlock()
	return sur, t.mgr.syncJournal()
}

// NewSubobject creates a subobject under an IX lock on the parent and an
// X lock on the parent's subclass portion.
func (t *Txn) NewSubobject(parent domain.Surrogate, subclass string) (domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	if err := t.lock(parent, IX, nil); err != nil {
		return 0, err
	}
	if err := t.lock(parent, X, []string{subclass}); err != nil {
		return 0, err
	}
	if err := t.checkAccess(parent); err != nil {
		return 0, err
	}
	sur, err := t.mgr.store.NewSubobject(parent, subclass)
	if err != nil {
		return 0, err
	}
	if err := t.lock(sur, X, nil); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.Delete(sur) })
	t.mu.Unlock()
	return sur, t.mgr.syncJournal()
}

// Bind creates an inheritance binding; undone on abort.
func (t *Txn) Bind(relType string, inheritor, transmitter domain.Surrogate) (domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	if err := t.lock(inheritor, X, nil); err != nil {
		return 0, err
	}
	// The transmitter is read-locked: binding reads but does not change it.
	if err := t.lock(transmitter, S, nil); err != nil {
		return 0, err
	}
	if err := t.checkAccess(inheritor); err != nil {
		return 0, err
	}
	bsur, err := t.mgr.store.Bind(relType, inheritor, transmitter)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.Unbind(relType, inheritor) })
	t.mu.Unlock()
	return bsur, t.mgr.syncJournal()
}

// Relate creates a top-level relationship object; undone on abort.
func (t *Txn) Relate(relType string, parts object.Participants) (domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	if err := t.lockParticipants(parts); err != nil {
		return 0, err
	}
	sur, err := t.mgr.store.Relate(relType, parts)
	if err != nil {
		return 0, err
	}
	if err := t.lock(sur, X, nil); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.Delete(sur) })
	t.mu.Unlock()
	return sur, t.mgr.syncJournal()
}

// RelateIn creates a relationship in a subclass of a complex object.
func (t *Txn) RelateIn(owner domain.Surrogate, subrel string, parts object.Participants) (domain.Surrogate, error) {
	if err := t.active(); err != nil {
		return 0, err
	}
	if err := t.lock(owner, IX, nil); err != nil {
		return 0, err
	}
	if err := t.lock(owner, X, []string{subrel}); err != nil {
		return 0, err
	}
	if err := t.checkAccess(owner); err != nil {
		return 0, err
	}
	if err := t.lockParticipants(parts); err != nil {
		return 0, err
	}
	sur, err := t.mgr.store.RelateIn(owner, subrel, parts)
	if err != nil {
		return 0, err
	}
	if err := t.lock(sur, X, nil); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.undo = append(t.undo, func() error { return t.mgr.store.Delete(sur) })
	t.mu.Unlock()
	return sur, t.mgr.syncJournal()
}

func (t *Txn) lockParticipants(parts object.Participants) error {
	for _, v := range parts {
		switch x := v.(type) {
		case domain.Ref:
			if err := t.lock(domain.Surrogate(x), S, nil); err != nil {
				return err
			}
		case *domain.Set:
			for _, e := range x.Elems() {
				if ref, ok := e.(domain.Ref); ok {
					if err := t.lock(domain.Surrogate(ref), S, nil); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Delete marks an object for deletion at commit time (deferred, so abort
// needs no resurrection). The object is exclusively locked immediately.
func (t *Txn) Delete(sur domain.Surrogate) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.lock(sur, X, nil); err != nil {
		return err
	}
	if err := t.checkAccess(sur); err != nil {
		return err
	}
	t.mu.Lock()
	t.deletes = append(t.deletes, sur)
	t.mu.Unlock()
	return nil
}
