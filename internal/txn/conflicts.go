package txn

import (
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/object"
)

// PotentialConflict pairs two objects, one from each of two transactions'
// access sets, that are related to each other — §6: "the explicitly
// defined relationships between objects can be used to identify potential
// conflicts (two update transactions are working on objects which are
// related to each other)".
type PotentialConflict struct {
	A, B domain.Surrogate
	// Via is the relationship object (binding or ordinary relationship)
	// connecting them, or 0 for a direct parent/subobject dependency.
	Via domain.Surrogate
}

// RelatedObjects returns the objects directly related to sur: binding
// partners in both roles, co-participants of shared relationship objects,
// and the parent/subobjects. The result is sorted and duplicate-free.
func RelatedObjects(s *object.Store, sur domain.Surrogate) []domain.Surrogate {
	related := make(map[domain.Surrogate]bool)
	for _, b := range s.BindingsOfTransmitter(sur) {
		related[b.Inheritor] = true
	}
	for _, b := range s.BindingsOfInheritor(sur) {
		related[b.Transmitter] = true
	}
	if o, err := s.Get(sur); err == nil {
		if o.Parent() != 0 {
			related[o.Parent()] = true
		}
	}
	for _, pair := range relationshipPartners(s, sur) {
		related[pair] = true
	}
	delete(related, sur)
	out := make([]domain.Surrogate, 0, len(related))
	for r := range related {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// relationshipPartners finds co-participants of every relationship object
// that references sur.
func relationshipPartners(s *object.Store, sur domain.Surrogate) []domain.Surrogate {
	var out []domain.Surrogate
	for _, rel := range s.RelationshipsOf(sur) {
		for _, p := range s.ParticipantsOf(rel) {
			if p != sur {
				out = append(out, p)
			}
		}
	}
	return out
}

// PotentialConflicts cross-checks two access sets: every pair (a, b) with
// a related to b is a potential conflict worth scheduling around.
func PotentialConflicts(s *object.Store, setA, setB []domain.Surrogate) []PotentialConflict {
	inB := make(map[domain.Surrogate]bool, len(setB))
	for _, b := range setB {
		inB[b] = true
	}
	var out []PotentialConflict
	seen := make(map[[2]domain.Surrogate]bool)
	for _, a := range setA {
		if inB[a] {
			key := [2]domain.Surrogate{a, a}
			if !seen[key] {
				seen[key] = true
				out = append(out, PotentialConflict{A: a, B: a})
			}
		}
		for _, r := range RelatedObjects(s, a) {
			if inB[r] {
				key := [2]domain.Surrogate{a, r}
				if !seen[key] {
					seen[key] = true
					out = append(out, PotentialConflict{A: a, B: r})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
