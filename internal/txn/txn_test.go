package txn

import (
	"errors"
	"testing"
	"time"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/paperschema"
)

func intVal(n int64) domain.Value  { return domain.Int(n) }
func symVal(s string) domain.Value { return domain.Sym(s) }

// buildComposite creates interface -> implementation (+ a user through
// SomeOf_Gate) directly on the store, outside any transaction.
func buildComposite(t *testing.T, m *Manager) (rootI, iface, impl, user domain.Surrogate) {
	t.Helper()
	s := m.store
	must := func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
	rootI = must(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	pin := must(s.NewSubobject(rootI, "Pins"))
	if err := s.SetAttr(pin, "InOut", symVal("IN")); err != nil {
		t.Fatal(err)
	}
	iface = must(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(iface, "Length", intVal(4)); err != nil {
		t.Fatal(err)
	}
	impl = must(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(impl, "TimeBehavior", intVal(7)); err != nil {
		t.Fatal(err)
	}
	user = must(s.NewObject(paperschema.TypeTimedComposite, ""))
	if _, err := s.Bind(paperschema.RelSomeOfGate, user, impl); err != nil {
		t.Fatal(err)
	}
	return rootI, iface, impl, user
}

func TestCommitAndAbortSemantics(t *testing.T) {
	m := gateManager(t)
	tx := m.Begin("")
	sur, err := tx.NewObject(paperschema.TypePin, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetAttr(sur, "PinId", intVal(5)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !m.store.Exists(sur) {
		t.Fatal("committed object missing")
	}
	if tx.State() != StateCommitted {
		t.Error("state should be committed")
	}
	// Operations on a finished txn fail.
	if err := tx.SetAttr(sur, "PinId", intVal(6)); !errors.Is(err, ErrTxnDone) {
		t.Errorf("op after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}

	// Abort rolls back attribute writes and creations, in reverse order.
	tx2 := m.Begin("")
	sur2, err := tx2.NewObject(paperschema.TypePin, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetAttr(sur, "PinId", intVal(99)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if m.store.Exists(sur2) {
		t.Error("aborted creation must disappear")
	}
	if v, _ := m.store.GetAttr(sur, "PinId"); !v.Equal(intVal(5)) {
		t.Errorf("aborted write must restore before-image, got %s", v)
	}
	if tx2.State() != StateAborted {
		t.Error("state should be aborted")
	}
}

func TestDeferredDelete(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	tx := m.Begin("")
	if err := tx.Delete(sur); err != nil {
		t.Fatal(err)
	}
	if !m.store.Exists(sur) {
		t.Fatal("delete must be deferred to commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.store.Exists(sur) {
		t.Error("object should be deleted at commit")
	}
	// Abort discards the pending delete.
	sur2, _ := m.store.NewObject(paperschema.TypePin, "")
	tx2 := m.Begin("")
	if err := tx2.Delete(sur2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if !m.store.Exists(sur2) {
		t.Error("aborted delete must leave the object")
	}
	// A deferred delete that fails (transmitter with inheritors under
	// Restrict) aborts the commit.
	_, iface, _, _ := buildComposite(t, m)
	tx3 := m.Begin("")
	if err := tx3.Delete(iface); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err == nil {
		t.Fatal("commit with restricted delete should fail")
	}
	if tx3.State() != StateAborted {
		t.Error("failed commit should abort")
	}
	if !m.store.Exists(iface) {
		t.Error("restricted delete must not happen")
	}
}

func TestTxnBindAndRelate(t *testing.T) {
	m := gateManager(t)
	s := m.store
	rootI, _ := s.NewObject(paperschema.TypeGateInterfaceI, "")
	p1, _ := s.NewSubobject(rootI, "Pins")
	p2, _ := s.NewSubobject(rootI, "Pins")

	iface, _ := s.NewObject(paperschema.TypeGateInterface, "")
	tx := m.Begin("")
	if _, err := tx.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	// Bound within the txn: visible through it.
	pins, err := tx.Members(iface, "Pins")
	if err != nil || len(pins) != 2 {
		t.Fatalf("pins in txn = %v, %v", pins, err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Abort unbinds.
	if tr := s.TransmitterOf(iface, paperschema.RelAllOfGateInterfaceI); tr != 0 {
		t.Error("aborted bind must be undone")
	}

	// Relate under txn with undo.
	tx2 := m.Begin("")
	w, err := tx2.Relate(paperschema.TypeWire, object.Participants{
		"Pin1": domain.Ref(p1), "Pin2": domain.Ref(p2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if s.Exists(w) {
		t.Error("aborted relate must be undone")
	}

	// NewSubobject under txn.
	tx3 := m.Begin("")
	p3, err := tx3.NewSubobject(rootI, "Pins")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Abort(); err != nil {
		t.Fatal(err)
	}
	if s.Exists(p3) {
		t.Error("aborted subobject must be undone")
	}
}

func TestLockInheritance(t *testing.T) {
	// Experiment E9 (§6): accessing inherited data of a composite
	// read-locks the visible portion of the component, so a writer of
	// that portion blocks; a writer of an invisible portion does not.
	m := gateManager(t)
	_, iface, impl, _ := buildComposite(t, m)

	reader := m.Begin("")
	// Length resolves impl -> iface: both portions S-locked.
	if _, err := reader.GetAttr(impl, "Length"); err != nil {
		t.Fatal(err)
	}
	held := reader.HeldLocks()
	if held[impl] != S || held[iface] != S {
		t.Fatalf("lock inheritance: held = %v", held)
	}

	// Writer of the visible portion (iface.Length) blocks.
	writer := m.Begin("")
	blocked := make(chan error, 1)
	go func() { blocked <- writer.SetAttr(iface, "Length", intVal(9)) }()
	select {
	case err := <-blocked:
		t.Fatalf("visible-portion writer should block, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Writer of an *invisible* portion of the implementation proceeds:
	// Function is not permeable through SomeOf_Gate or the interface rel.
	writer2 := m.Begin("")
	free := make(chan error, 1)
	go func() {
		free <- writer2.SetAttr(impl, "Function", domain.NewMatrix(1, 1, domain.Bool(true)))
	}()
	select {
	case err := <-free:
		if err != nil {
			t.Fatalf("invisible-portion writer: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("invisible-portion writer blocked")
	}
	if err := writer2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Release the reader; the blocked writer proceeds.
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("writer after release: %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockInheritanceThroughChain(t *testing.T) {
	// Reading user.Length locks user, impl, iface (three-hop chain).
	m := gateManager(t)
	_, iface, impl, user := buildComposite(t, m)
	reader := m.Begin("")
	if _, err := reader.GetAttr(user, "Length"); err != nil {
		t.Fatal(err)
	}
	held := reader.HeldLocks()
	for _, sur := range []domain.Surrogate{user, impl, iface} {
		if held[sur] != S {
			t.Errorf("chain member %s not S-locked: %v", sur, held)
		}
	}
	// Members lock the chain too: user.Pins walks to rootI.
	if _, err := reader.Members(user, "Pins"); err != nil {
		t.Fatal(err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessControl(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	m.Access().Grant("eve", sur, RightRead)

	// eve cannot write the pin; alice can.
	eve := m.Begin("eve")
	if err := eve.SetAttr(sur, "PinId", intVal(1)); !errors.Is(err, ErrLockAccess) {
		t.Errorf("read-only write: %v", err)
	}
	if err := eve.Abort(); err != nil {
		t.Fatal(err)
	}
	alice := m.Begin("alice")
	if err := alice.SetAttr(sur, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	if err := alice.Commit(); err != nil {
		t.Fatal(err)
	}

	// Default rights per user.
	m.Access().GrantDefault("guest", RightRead)
	if m.Access().MayUpdate("guest", sur+1000) {
		t.Error("guest default should be read-only")
	}
	if !m.Access().MayRead("guest", sur) {
		t.Error("guest may read")
	}
	// Global per-object default (empty user).
	other, _ := m.store.NewObject(paperschema.TypePin, "")
	m.Access().Grant("", other, RightRead)
	if m.Access().MayUpdate("bob", other) {
		t.Error("global per-object right should cap bob")
	}
	if got := m.Access().RightOf("eve", sur); got != RightRead {
		t.Errorf("RightOf = %v", got)
	}
	// CapMode behaviour.
	if got := m.Access().CapMode("eve", sur, X); got != S {
		t.Errorf("CapMode(X) = %v", got)
	}
	if got := m.Access().CapMode("eve", sur, IX); got != IS {
		t.Errorf("CapMode(IX) = %v", got)
	}
	if got := m.Access().CapMode("eve", sur, S); got != S {
		t.Errorf("CapMode(S) = %v", got)
	}
	if got := m.Access().CapMode("alice", sur, X); got != X {
		t.Errorf("CapMode for updater = %v", got)
	}
}

func TestLockExpansion(t *testing.T) {
	// Experiment E10 (§6): expansion locking with access-control capping.
	m := gateManager(t)
	rootI, iface, impl, user := buildComposite(t, m)
	// The interface hierarchy is a shared "standard cell": normal users
	// may only read it.
	m.Access().Grant("designer", iface, RightRead)
	m.Access().Grant("designer", rootI, RightRead)

	tx := m.Begin("designer")
	el, err := tx.LockExpansion(user, X)
	if err != nil {
		t.Fatal(err)
	}
	if el.Root != user {
		t.Errorf("root = %v", el.Root)
	}
	held := tx.HeldLocks()
	// Own subtree exclusively locked.
	if held[user] != X {
		t.Errorf("user lock = %v", held[user])
	}
	// impl is updatable by the designer: X (capped only by rights).
	if held[impl] != X {
		t.Errorf("impl lock = %v", held[impl])
	}
	// The standard cells come out read-locked although X was requested.
	if held[iface] != S || held[rootI] != S {
		t.Errorf("standard cells: iface=%v rootI=%v", held[iface], held[rootI])
	}
	// The report reflects the caps.
	modes := map[domain.Surrogate]Mode{}
	for _, p := range el.Portions {
		modes[p.Object] = p.Mode
	}
	if modes[iface] != S || modes[impl] != X {
		t.Errorf("portion modes = %v", modes)
	}

	// A concurrent writer of the read-locked portion blocks; after the
	// expansion holder commits, it proceeds.
	w := m.Begin("")
	blocked := make(chan error, 1)
	go func() { blocked <- w.SetAttr(iface, "Length", intVal(10)) }()
	select {
	case err := <-blocked:
		t.Fatalf("writer should block on expansion portion, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("writer after expansion release: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockExpansionErrors(t *testing.T) {
	m := gateManager(t)
	tx := m.Begin("")
	if _, err := tx.LockExpansion(9999, S); err == nil {
		t.Error("expansion of missing object should fail")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LockExpansion(1, S); !errors.Is(err, ErrTxnDone) {
		t.Errorf("expansion on finished txn: %v", err)
	}
}

func TestHeldLocksStrongestMode(t *testing.T) {
	m := gateManager(t)
	sur, _ := m.store.NewObject(paperschema.TypePin, "")
	tx := m.Begin("")
	if _, err := tx.GetAttr(sur, "PinId"); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetAttr(sur, "PinId", intVal(1)); err != nil {
		t.Fatal(err)
	}
	if got := tx.HeldLocks()[sur]; got != X {
		t.Errorf("strongest mode = %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
