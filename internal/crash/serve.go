package crash

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cadcam"
	"cadcam/internal/domain"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/serve"
)

// runServeWorkload is the serve-mode round body: the same database, but
// every mutation travels through an in-process wire-protocol server —
// session framing, pipelining, the acknowledgment gap between durability
// and response, and finally a graceful drain with transactions still
// open. The serve failpoints (serve/ack-gap, serve/drain-abort) fire
// inside this path, so kill-mid-session rounds prove the protocol obeys
// the same oracle as direct writers: an acked op is in the journal, and
// an unacked one may or may not be — never the reverse.
func runServeWorkload(db *cadcam.Database, cfg Config) error {
	srv, err := serve.New(serve.Config{DB: db})
	if err != nil {
		return fmt.Errorf("crash: serve: %w", err)
	}
	reg := &registry{}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runServeWriter(db, srv, cfg, w, reg)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			srv.Shutdown(30 * time.Second)
			return err
		}
	}
	if err := drainWithOpenTxns(db, srv); err != nil {
		srv.Shutdown(30 * time.Second)
		return err
	}
	return nil
}

// drainWithOpenTxns leaves a handful of sessions mid-transaction — each
// holding a write lock — and then drains the server, so the drain path
// (and serve/drain-abort inside it) runs against real abandoned state.
// Each victim locks its own object: the point is teardown under drain,
// not a lock pile-up.
func drainWithOpenTxns(db *cadcam.Database, srv *serve.Server) error {
	const victims = 8
	for v := 0; v < victims; v++ {
		if db.Err() != nil {
			break // journal is sticky-bad; drain judges what is left
		}
		c, err := serve.DialConn(srv.Pipe(), serve.DialOptions{User: fmt.Sprintf("victim-%d", v)})
		if err != nil {
			break
		}
		// Deliberately never closed, committed or aborted: the drain
		// must reclaim all of it.
		sur, err := c.NewObject(paperschema.TypeGateInterface, "")
		if err != nil {
			continue
		}
		if _, err := c.Begin(); err != nil {
			continue
		}
		_ = c.SetAttr(sur, "Width", domain.Int(int64(v)))
	}
	if err := srv.Shutdown(30 * time.Second); err != nil {
		return fmt.Errorf("crash: serve drain: %w", err)
	}
	if st := srv.Stats(); st.Sessions != 0 {
		return fmt.Errorf("crash: serve drain left %d sessions", st.Sessions)
	}
	if p := db.Stats().MVCC.Pins; p != 0 {
		return fmt.Errorf("crash: serve drain left %d MVCC pins", p)
	}
	if lt := db.Txns().LockTableStats(); lt.Objects != 0 || lt.Granted != 0 || lt.Queued != 0 {
		return fmt.Errorf("crash: serve drain left locks: %+v", lt)
	}
	return nil
}

// serveWriter mirrors the direct writer's ack discipline over a client
// session: only auto-commit mutations are acked (their response implies
// the statement's durability barrier passed), with exactly the canonical
// journal keys the direct mix uses. Transaction blocks run unacked —
// they exercise session transactions and the drain/abort path, and
// statement inclusion for them is not claimed.
type serveWriter struct {
	c   *serve.Client
	ack *os.File
	rng *rand.Rand
	reg *registry
}

func runServeWriter(db *cadcam.Database, srv *serve.Server, cfg Config, w int, reg *registry) error {
	ackPath := filepath.Join(cfg.AckDir, fmt.Sprintf("ack-%d.log", w))
	ack, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer ack.Close()
	c, err := serve.DialConn(srv.Pipe(), serve.DialOptions{User: fmt.Sprintf("w%d", w)})
	if err != nil {
		return fmt.Errorf("crash: serve dial: %w", err)
	}
	defer c.Close()
	sw := &serveWriter{c: c, ack: ack, reg: reg,
		rng: rand.New(rand.NewSource(cfg.Seed*1000003 + int64(w)))}
	for i := 0; i < cfg.Ops; i++ {
		if db.Err() != nil {
			return nil // journal is sticky-bad; stop cleanly
		}
		if err := sw.step(); err != nil {
			if errors.Is(err, serve.ErrClientClosed) {
				return nil // session torn down under us (drain or kill)
			}
			return err
		}
	}
	return nil
}

func (w *serveWriter) acked(op *oplog.Op) error {
	_, err := fmt.Fprintf(w.ack, "%s\n", AckKey(op))
	return err
}

// fatal filters one call's error: application rejections (including the
// ack-gap downgrade) just mean "don't ack"; transport failures bubble.
func fatal(err error) error {
	if err == nil {
		return nil
	}
	var re *serve.RemoteError
	if errors.As(err, &re) || errors.Is(err, serve.ErrBadRequest) || errors.Is(err, serve.ErrServerBusy) ||
		errors.Is(err, serve.ErrDraining) {
		return nil
	}
	return err
}

func (w *serveWriter) step() error {
	c, rng, reg := w.c, w.rng, w.reg
	switch rng.Intn(10) {
	case 0:
		sur, err := c.NewObject(paperschema.TypeGateInterfaceI, "")
		if err == nil {
			reg.add(&reg.ifaceIs, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterfaceI, Out: sur})
		}
		return fatal(err)
	case 1:
		sur, err := c.NewObject(paperschema.TypeGateInterface, "")
		if err == nil {
			reg.add(&reg.ifaces, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterface, Out: sur})
		}
		return fatal(err)
	case 2:
		sur, err := c.NewObject(paperschema.TypeGateImplementation, "")
		if err == nil {
			reg.add(&reg.impls, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateImplementation, Out: sur})
		}
		return fatal(err)
	case 3:
		iface := reg.pick(rng, &reg.ifaces)
		name := [...]string{"Length", "Width"}[rng.Intn(2)]
		v := domain.Int(int64(rng.Intn(100)))
		if err := c.SetAttr(iface, name, v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: iface, Name: name, Value: v})
		} else {
			return fatal(err)
		}
	case 4:
		impl := reg.pick(rng, &reg.impls)
		v := domain.Int(int64(rng.Intn(100)))
		if err := c.SetAttr(impl, "TimeBehavior", v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: impl, Name: "TimeBehavior", Value: v})
		} else {
			return fatal(err)
		}
	case 5:
		inh, tr := reg.pick(rng, &reg.ifaces), reg.pick(rng, &reg.ifaceIs)
		sur, err := c.Bind(paperschema.RelAllOfGateInterfaceI, inh, tr)
		if err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindBind, Name: paperschema.RelAllOfGateInterfaceI, Sur: inh, Sur2: tr, Out: sur})
		}
		return fatal(err)
	case 6:
		inh, tr := reg.pick(rng, &reg.impls), reg.pick(rng, &reg.ifaces)
		sur, err := c.Bind(paperschema.RelAllOfGateInterface, inh, tr)
		if err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindBind, Name: paperschema.RelAllOfGateInterface, Sur: inh, Sur2: tr, Out: sur})
		}
		return fatal(err)
	case 7:
		rel := [...]string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface}[rng.Intn(2)]
		inh := reg.pick(rng, &reg.all)
		if err := c.Unbind(rel, inh); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindUnbind, Name: rel, Sur: inh})
		} else {
			return fatal(err)
		}
	case 8:
		sur := reg.pick(rng, &reg.all)
		if err := c.Delete(sur); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindDelete, Sur: sur})
		} else {
			return fatal(err)
		}
	case 9:
		// A session transaction: begin, write, then commit or abort.
		// Statements inside it are not acked (their inclusion story is
		// the transaction's, not the statement response's).
		if _, err := c.Begin(); err != nil {
			return fatal(err)
		}
		iface := reg.pick(rng, &reg.ifaces)
		_ = c.SetAttr(iface, "Width", domain.Int(int64(rng.Intn(100))))
		var err error
		if rng.Intn(2) == 0 {
			err = c.Commit()
		} else {
			err = c.Abort()
		}
		return fatal(err)
	}
	return nil
}
