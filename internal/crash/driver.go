package crash

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"cadcam/internal/fault"
)

// FiredMarker is printed by the worker process (followed by the total
// failpoint hit count) when it finishes without crashing, so the driver
// can tell an error-kind firing from a round where the failpoint was
// never reached.
const FiredMarker = "CRASHMATRIX-FIRED"

var firedRE = regexp.MustCompile(FiredMarker + ` (\d+)`)

// matrixPoint describes how the matrix exercises one registered
// failpoint.
type matrixPoint struct {
	name string
	// errKind: the site threads an injected error into a real error
	// path, so an error-kind round is meaningful (exit-kind rounds run
	// for every point).
	errKind bool
	// checkpoint: the site only executes during a checkpoint, so its
	// rounds run with checkpointing enabled (which in turn disables the
	// ack multiset check: checkpointed ops legitimately leave the
	// journal).
	checkpoint bool
	// repl: the site lives on the replication path, so its rounds run
	// with an in-process follower attached and, after the standard
	// verify, replay the surviving directory through a fresh follower
	// and compare it against the truncated model oracle
	// (VerifyReplication).
	repl bool
	// serve: the site lives on the wire-protocol session path, so its
	// rounds route every writer through an in-process server and end
	// with a graceful drain over open transactions (Config.Serve).
	serve bool
}

// matrixPoints must cover every registered failpoint; RunMatrix
// cross-checks against fault.Names() so adding an injection site without
// matrix coverage fails the test.
var matrixPoints = []matrixPoint{
	{name: "wal/append-error", errKind: true},
	{name: "wal/sync-error", errKind: true},
	{name: "wal/torn-write"},
	{name: "wal/partial-batch"},
	{name: "group/leader-precommit", errKind: true},
	{name: "group/leader-encoded", errKind: true},
	{name: "group/straggler-window", errKind: true},
	{name: "object/pre-journal"},
	{name: "db/checkpoint-gap", errKind: true, checkpoint: true},
	{name: "db/segment-write", errKind: true, checkpoint: true},
	{name: "db/manifest-swap", errKind: true, checkpoint: true},
	{name: "db/segment-gc", errKind: true, checkpoint: true},
	// Replication path: a follower rides along, and the exit-kind rounds
	// kill primary and follower together mid-stream. The applier-crash
	// and resync-gap rounds checkpoint so that a restarted follower must
	// resync from a real manifest, not just replay epoch 0.
	{name: "repl/send-torn", errKind: true, repl: true},
	{name: "repl/send-partial", errKind: true, repl: true},
	{name: "repl/conn-drop", errKind: true, repl: true},
	{name: "repl/applier-crash", errKind: true, repl: true, checkpoint: true},
	{name: "repl/resync-gap", errKind: true, repl: true, checkpoint: true},
	// Wire-protocol session path: writers run through server sessions,
	// so a kill in the ack gap dies after durability but before the
	// response (the client must not have acked), and a kill in the
	// drain-abort window dies mid-reclaim of abandoned transactions.
	// Both keep checkpointing off so the ack multiset check stays on.
	{name: "serve/ack-gap", errKind: true, serve: true},
	{name: "serve/drain-abort", errKind: true, serve: true},
}

// Driver runs the crash matrix: for every registered failpoint it
// launches worker processes that die (or error) at the injection site,
// then verifies the surviving directory against the model oracle.
type Driver struct {
	// BaseDir receives one subdirectory per round.
	BaseDir string
	// Seed derives every round's workload seed deterministically.
	Seed int64
	// Writers and Ops size each round's workload.
	Writers, Ops int
	// LongReaders adds that many continuous snapshot-scan goroutines to
	// every round's workload (see Config.LongReaders).
	LongReaders int
	// Command builds the worker process for a round. The driver adds the
	// config and failpoint environment itself.
	Command func() *exec.Cmd
	// Logf receives one line per round (testing.T.Logf compatible).
	Logf func(format string, args ...any)
	// ArtifactDir, when set, receives a copy of the database directory
	// and worker output of any failing round.
	ArtifactDir string
	// Filter, when set, restricts the matrix to failpoints whose name
	// matches (the coverage cross-check still spans everything; the
	// every-point-must-fire check spans only the included points).
	Filter *regexp.Regexp
}

func (d *Driver) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// round is one worker launch + verify.
type round struct {
	point   matrixPoint
	spec    string // failpoint arming spec for the child
	label   string
	expect  string // "crash" (exit-kind) or "error" (error-kind)
	checkpt bool
}

// RunMatrix enumerates crash rounds for every registered failpoint and
// runs them. Every point must fire at least once; every surviving
// directory must verify. The first failure aborts with a reproducible
// description (seed, spec, worker output).
func (d *Driver) RunMatrix() error {
	if err := d.checkCoverage(); err != nil {
		return err
	}
	var rounds []round
	included := make([]matrixPoint, 0, len(matrixPoints))
	for _, p := range matrixPoints {
		if d.Filter == nil || d.Filter.MatchString(p.name) {
			included = append(included, p)
		}
	}
	for _, p := range included {
		for _, hit := range []int{1, 7} {
			rounds = append(rounds, round{
				point:   p,
				spec:    fmt.Sprintf("%s=exit(%d)@%d", p.name, fault.DefaultExitCode, hit),
				label:   fmt.Sprintf("%s/exit@%d", p.name, hit),
				expect:  "crash",
				checkpt: p.checkpoint,
			})
		}
		if p.errKind {
			rounds = append(rounds, round{
				point:   p,
				spec:    fmt.Sprintf("%s=error(injected %s)@1", p.name, p.name),
				label:   p.name + "/error@1",
				expect:  "error",
				checkpt: p.checkpoint,
			})
		}
	}
	fired := make(map[string]bool)
	for i, r := range rounds {
		ok, err := d.runRound(i, r)
		if err != nil {
			return err
		}
		if ok {
			fired[r.point.name] = true
		}
	}
	for _, p := range included {
		if !fired[p.name] {
			return fmt.Errorf("crash: failpoint %s never fired in any round (workload too small?)", p.name)
		}
	}
	return nil
}

// checkCoverage fails if a registered failpoint has no matrix entry (or
// the matrix names a point that no longer exists).
func (d *Driver) checkCoverage() error {
	covered := make(map[string]bool, len(matrixPoints))
	for _, p := range matrixPoints {
		covered[p.name] = true
	}
	registered := make(map[string]bool)
	for _, name := range fault.Names() {
		registered[name] = true
		if !covered[name] {
			return fmt.Errorf("crash: registered failpoint %q has no crash-matrix coverage; add it to matrixPoints", name)
		}
	}
	for _, p := range matrixPoints {
		if !registered[p.name] {
			return fmt.Errorf("crash: matrixPoints names %q but no such failpoint is registered", p.name)
		}
	}
	return nil
}

// runRound runs one round, retrying with fresh seeds when the failpoint
// was simply never reached. It reports whether the point fired.
func (d *Driver) runRound(i int, r round) (fired bool, err error) {
	const attempts = 3
	for a := 0; a < attempts; a++ {
		cfg := Config{
			Dir:         filepath.Join(d.BaseDir, fmt.Sprintf("r%03d-a%d", i, a)),
			AckDir:      filepath.Join(d.BaseDir, fmt.Sprintf("r%03d-a%d-ack", i, a)),
			Seed:        d.Seed + int64(i)*7919 + int64(a)*104729,
			Writers:     d.Writers,
			Ops:         d.Ops * (a + 1), // longer workloads on retry reach rarer sites
			LongReaders: d.LongReaders,
		}
		if r.checkpt {
			cfg.CheckpointEvery = 20
		}
		cfg.Repl = r.point.repl
		cfg.Serve = r.point.serve
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return false, err
		}
		outcome, output, err := d.runWorker(cfg, r.spec)
		if err != nil {
			return false, d.fail(r, cfg, output, err)
		}
		switch outcome {
		case "crash", "error":
			vErr := Verify(cfg.Dir, cfg.AckDir, VerifyOptions{
				AckCheck: cfg.CheckpointEvery == 0,
				Unbind:   cfg.Unbind,
			})
			if vErr == nil && r.point.repl {
				// The replication half of the oracle: a fresh follower on
				// the surviving directory must reproduce the primary's
				// serial replay — in full, and truncated at an arbitrary
				// batch boundary.
				vErr = VerifyReplication(cfg.Dir, VerifyOptions{Unbind: cfg.Unbind})
			}
			if vErr != nil {
				return false, d.fail(r, cfg, output, vErr)
			}
			d.logf("crashmatrix %-34s seed=%-12d outcome=%s verify=ok", r.label, cfg.Seed, outcome)
			return true, nil
		case "clean":
			d.logf("crashmatrix %-34s seed=%-12d outcome=not-fired (attempt %d/%d)", r.label, cfg.Seed, a+1, attempts)
			// Not fired: still verify the clean run, then retry bigger.
			if vErr := Verify(cfg.Dir, cfg.AckDir, VerifyOptions{
				AckCheck: cfg.CheckpointEvery == 0,
				Unbind:   cfg.Unbind,
			}); vErr != nil {
				return false, d.fail(r, cfg, output, vErr)
			}
		}
	}
	d.logf("crashmatrix %-34s NEVER FIRED after %d attempts", r.label, attempts)
	return false, nil
}

// runWorker launches one worker process and classifies its exit:
// "crash" (died at the failpoint with the crash exit code), "error"
// (finished after the failpoint fired as an error), "clean" (finished
// without reaching the failpoint).
func (d *Driver) runWorker(cfg Config, spec string) (outcome string, output []byte, err error) {
	cmd := d.Command()
	cmd.Env = append(os.Environ(),
		EnvConfig+"="+cfg.Encode(),
		fault.EnvVar+"="+spec,
	)
	output, runErr := cmd.CombinedOutput()
	if runErr == nil {
		if m := firedRE.FindSubmatch(output); m != nil {
			if n, _ := strconv.Atoi(string(m[1])); n > 0 {
				return "error", output, nil
			}
			return "clean", output, nil
		}
		return "", output, fmt.Errorf("crash: worker exited 0 without %s marker", FiredMarker)
	}
	if ee, ok := runErr.(*exec.ExitError); ok && ee.ExitCode() == fault.DefaultExitCode {
		return "crash", output, nil
	}
	return "", output, fmt.Errorf("crash: worker failed: %w", runErr)
}

// fail preserves a failing round's evidence and wraps the error with
// everything needed to reproduce it.
func (d *Driver) fail(r round, cfg Config, output []byte, cause error) error {
	where := ""
	if d.ArtifactDir != "" {
		dst := filepath.Join(d.ArtifactDir, filepath.Base(cfg.Dir))
		if err := CopyDir(cfg.Dir, dst); err == nil {
			_ = CopyDir(cfg.AckDir, dst+"-ack")
			_ = os.WriteFile(dst+"-worker.log", output, 0o644)
			where = " artifacts=" + dst
		}
	}
	return fmt.Errorf("crash: round %s seed=%d spec=%q failed%s: %w\nworker output:\n%s",
		r.label, cfg.Seed, r.spec, where, cause, output)
}

// RunTailFuzz runs a clean in-process workload, then attacks copies of
// the resulting directory: clipping the journal at arbitrary byte
// offsets (recovery must succeed and match the oracle on the surviving
// prefix) and flipping single bytes (recovery must either fail cleanly
// or verify — never panic, never invent state that passes neither way).
func (d *Driver) RunTailFuzz(rounds int) (err error) {
	cleanDir := filepath.Join(d.BaseDir, "tailfuzz-clean")
	ackDir := cleanDir + "-ack"
	cfg := Config{Dir: cleanDir, AckDir: ackDir, Seed: d.Seed, Writers: d.Writers, Ops: d.Ops,
		LongReaders: d.LongReaders}
	if err := os.MkdirAll(cleanDir, 0o755); err != nil {
		return err
	}
	if err := RunWorkload(cfg); err != nil {
		return fmt.Errorf("crash: tail-fuzz base workload (seed=%d): %w", d.Seed, err)
	}
	if err := Verify(cleanDir, ackDir, VerifyOptions{AckCheck: true}); err != nil {
		return fmt.Errorf("crash: tail-fuzz base verify (seed=%d): %w", d.Seed, err)
	}
	walName := WALName(cleanDir)
	if walName == "" {
		return fmt.Errorf("crash: tail-fuzz: no journal file in %s", cleanDir)
	}

	rng := rand.New(rand.NewSource(d.Seed ^ 0x7a17f0))
	for i := 0; i < rounds; i++ {
		mode, dir := "clip", filepath.Join(d.BaseDir, fmt.Sprintf("tailfuzz-%03d", i))
		if i%2 == 1 {
			mode = "flip"
		}
		if err := CopyDir(cleanDir, dir); err != nil {
			return err
		}
		target := filepath.Join(dir, walName)
		var detail string
		switch mode {
		case "clip":
			n, err := ClipTail(target, rng)
			if err != nil {
				return err
			}
			detail = fmt.Sprintf("clip to %d bytes", n)
			// A prefix of the journal is always a consistent state; the
			// ack check must be off because clipping discards durable
			// records by design.
			if vErr := verifyNoPanic(dir, ackDir, VerifyOptions{}); vErr != nil {
				return fmt.Errorf("crash: tail-fuzz round %d (seed=%d, %s): %w", i, d.Seed, detail, vErr)
			}
		case "flip":
			off, err := FlipByte(target, rng)
			if err != nil {
				return err
			}
			detail = fmt.Sprintf("flip byte at %d", off)
			// A flipped byte may truncate the tail (CRC mismatch on the
			// last frame ≡ torn write), surface as a corruption error on
			// reopen, or be in already-dead bytes. Panics and silent
			// wrong states are the bugs.
			vErr := verifyNoPanic(dir, ackDir, VerifyOptions{})
			if vErr != nil && !isCleanFailure(vErr) {
				return fmt.Errorf("crash: tail-fuzz round %d (seed=%d, %s): %w", i, d.Seed, detail, vErr)
			}
		}
		d.logf("tailfuzz %-28s ok", detail)
		_ = os.RemoveAll(dir)
	}
	return nil
}

// verifyNoPanic runs Verify, converting a panic (a decoder or recovery
// crash on corrupt input) into an error that reports it as a bug.
func verifyNoPanic(dir, ackDir string, opts VerifyOptions) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC during recovery/verify: %v", r)
		}
	}()
	return Verify(dir, ackDir, opts)
}

// isCleanFailure reports whether a verify error is an acceptable
// rejection of corrupt input (an error, not a panic or divergence).
func isCleanFailure(err error) bool {
	s := err.Error()
	if regexp.MustCompile(`(?i)panic`).MatchString(s) {
		return false
	}
	// Divergence and invariant failures mean recovery *accepted* corrupt
	// input and produced a wrong state — those are bugs. Everything else
	// (scan/decode/open errors) is the decoder correctly refusing.
	for _, bad := range []string{"diverged", "differs from oracle", "violates invariants", "lost durable write"} {
		if regexp.MustCompile(regexp.QuoteMeta(bad)).MatchString(s) {
			return false
		}
	}
	return true
}
