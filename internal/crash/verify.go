package crash

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cadcam"
	"cadcam/internal/codec"
	"cadcam/internal/domain"
	"cadcam/internal/model"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// VerifyOptions tunes what Verify checks.
type VerifyOptions struct {
	// AckCheck requires every acknowledged operation to appear in the
	// journal. It must be off for rounds that checkpoint (checkpointed
	// ops leave the journal for the snapshot) and for tail-clip rounds
	// (clipping deliberately discards durable records).
	AckCheck bool
	// Unbind mirrors Config.Unbind: the delete policy the journal was
	// written under, which replay must reproduce.
	Unbind bool
}

// Verify checks a (possibly crash-interrupted) database directory for
// consistency three ways:
//
//  1. The surviving journal must replay cleanly into the model oracle —
//     every record individually applicable, creation surrogates and
//     sequence numbers deterministic.
//  2. Reopening the directory with the real recovery path must succeed,
//     pass the store's structural invariants, and produce a snapshot
//     byte-identical to the oracle's.
//  3. With AckCheck, every operation a writer observed as durable must
//     be present in the journal (multiset inclusion).
//
// Any failure is reported with enough context to reproduce from the
// workload seed.
func Verify(dir, ackDir string, opts VerifyOptions) error {
	cat := paperschema.MustGates()
	ss, err := cadcam.ScanJournal(dir)
	if err != nil {
		return fmt.Errorf("crash: scan journal: %w", err)
	}
	records := ss.Records

	m := model.New(cat)
	vs := &version.ManagerState{}
	if ss.Store != nil {
		if err := m.Load(ss.Store); err != nil {
			return fmt.Errorf("crash: load checkpoint into model: %w", err)
		}
		vs = ss.Versions
	}
	if opts.Unbind {
		m.SetPolicy(cadcam.DeleteUnbind)
	}

	journaled := make(map[string]int)
	for i, rec := range records {
		op, err := oplog.Decode(rec)
		if err != nil {
			return fmt.Errorf("crash: journal record %d/%d: decode: %w", i, len(records), err)
		}
		journaled[AckKey(op)]++
		if err := m.Apply(op); err != nil {
			return fmt.Errorf("crash: journal record %d/%d (kind %d): model replay diverged: %w",
				i, len(records), op.Kind, err)
		}
	}

	cfg := Config{Dir: dir, Unbind: opts.Unbind}
	db, err := cadcam.Open(cat, cfg.Options())
	if err != nil {
		return fmt.Errorf("crash: reopen after crash: %w", err)
	}
	defer db.Close()

	if bad := db.Store().CheckInvariants(); len(bad) != 0 {
		return fmt.Errorf("crash: recovered store violates invariants:\n  %s",
			strings.Join(bad, "\n  "))
	}

	got := wal.EncodeSnapshot(db.Store().Export(), db.Versions().Export())
	want := wal.EncodeSnapshot(m.Export(), vs)
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		return fmt.Errorf("crash: recovered snapshot (%d bytes) differs from oracle (%d bytes) at offset %d after %d journal records",
			len(got), len(want), i, len(records))
	}

	if err := verifyReads(db, m); err != nil {
		return err
	}

	if opts.AckCheck {
		if err := verifyAcks(ackDir, journaled); err != nil {
			return err
		}
	}
	return nil
}

// verifyReads sweeps every live object and compares the real resolver
// (route caches, binding chain walks) against the oracle's brute-force
// resolution for every probe name the workload touches.
func verifyReads(db *cadcam.Database, m *model.Model) error {
	cat := db.Catalog()
	attrs := []string{"Length", "Width", "TimeBehavior", "SimSlot", "PinId", "InOut"}
	classes := []string{"Pins", "SubGates"}
	for _, sur := range db.Store().Surrogates() {
		tn, err := db.TypeOf(sur)
		if err != nil {
			return fmt.Errorf("crash: TypeOf(%s): %w", sur, err)
		}
		if _, isRel := cat.RelType(tn); isRel {
			continue
		}
		if _, isInher := cat.InherRelType(tn); isInher {
			continue
		}
		for _, name := range attrs {
			gv, gerr := db.GetAttr(sur, name)
			mv, merr := m.ResolveAttr(sur, name)
			if (gerr != nil) != (merr != nil) {
				return fmt.Errorf("crash: %s(%s).%s: store err %v, oracle err %v", tn, sur, name, gerr, merr)
			}
			if gerr == nil && !bytes.Equal(encVal(gv), encVal(mv)) {
				return fmt.Errorf("crash: %s(%s).%s: store %v, oracle %v", tn, sur, name, gv, mv)
			}
		}
		for _, name := range classes {
			gm, gerr := db.Members(sur, name)
			mm, merr := m.ResolveMembers(sur, name)
			if (gerr != nil) != (merr != nil) {
				return fmt.Errorf("crash: %s(%s).%s members: store err %v, oracle err %v", tn, sur, name, gerr, merr)
			}
			if gerr == nil && !equalSurs(gm, mm) {
				return fmt.Errorf("crash: %s(%s).%s members: store %v, oracle %v", tn, sur, name, gm, mm)
			}
		}
	}
	return nil
}

func encVal(v domain.Value) []byte {
	var b codec.Buf
	b.Value(v)
	return b.Bytes()
}

func equalSurs(a, b []domain.Surrogate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyAcks checks multiset inclusion: no writer may have observed a
// durable success whose record the journal lost. A torn final line (the
// process died mid-append) is tolerated; torn interior lines are not.
func verifyAcks(ackDir string, journaled map[string]int) error {
	files, err := filepath.Glob(filepath.Join(ackDir, "ack-*.log"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	acked := make(map[string]int)
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		// Complete entries end with '\n', so the final split element is
		// either the empty remainder or a torn final append (the process
		// died mid-write); both drop.
		lines := strings.Split(string(raw), "\n")
		if len(lines) > 0 {
			lines = lines[:len(lines)-1]
		}
		for i, line := range lines {
			if _, err := hex.DecodeString(line); err != nil {
				return fmt.Errorf("crash: %s line %d: corrupt ack entry: %w", f, i+1, err)
			}
			acked[line]++
		}
	}
	for key, n := range acked {
		if journaled[key] < n {
			op := "?"
			if b, err := hex.DecodeString(key); err == nil {
				if o, err := oplog.Decode(b); err == nil {
					op = fmt.Sprintf("kind=%d sur=%s name=%q out=%s", o.Kind, o.Sur, o.Name, o.Out)
				}
			}
			return fmt.Errorf("crash: lost durable write: op {%s} acked %d time(s) but journaled %d time(s)",
				op, n, journaled[key])
		}
	}
	return nil
}
