package crash

import (
	"bytes"
	"fmt"
	"time"

	"cadcam"
	"cadcam/internal/model"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/repl"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// VerifyReplication is the primary/follower divergence oracle, run by
// the driver on the directory a replication round leaves behind (after
// the standard Verify accepted it).
//
// It replays the directory through real followers twice:
//
//  1. Full: a fresh follower must apply the entire surviving chain —
//     resyncing from the newest checkpoint manifest when the journal
//     below it was garbage-collected, exactly the path a follower that
//     was killed mid-stream takes on restart — and export a state
//     byte-identical to the model oracle's full serial replay.
//  2. Truncated: a follower paused after roughly half the records must
//     export a state byte-identical to the oracle's serial replay
//     truncated at the follower's applied sequence. Replication being
//     batch-atomic, the applied sequence always lands on a sealed batch
//     boundary — any other stopping point is a torn batch bug.
func VerifyReplication(dir string, opts VerifyOptions) error {
	cat := paperschema.MustGates()
	ss, err := cadcam.ScanJournal(dir)
	if err != nil {
		return fmt.Errorf("crash: repl verify: scan journal: %w", err)
	}
	records := ss.Records
	total := uint64(len(records))

	// oracle replays the first n chain records on top of the checkpoint
	// state — the same base a resynced follower starts from.
	oracle := func(n uint64) ([]byte, error) {
		m := model.New(cat)
		vs := &version.ManagerState{}
		if ss.Store != nil {
			if err := m.Load(ss.Store); err != nil {
				return nil, fmt.Errorf("crash: repl verify: load checkpoint into model: %w", err)
			}
			vs = ss.Versions
		}
		if opts.Unbind {
			m.SetPolicy(cadcam.DeleteUnbind)
		}
		for i := uint64(0); i < n; i++ {
			op, err := oplog.Decode(records[i])
			if err != nil {
				return nil, fmt.Errorf("crash: repl verify: record %d decode: %w", i, err)
			}
			if err := m.Apply(op); err != nil {
				return nil, fmt.Errorf("crash: repl verify: record %d: model replay: %w", i, err)
			}
		}
		return wal.EncodeSnapshot(m.Export(), vs), nil
	}

	check := func(label string, pause uint64) error {
		policy := cadcam.DeleteRestrict
		if opts.Unbind {
			policy = cadcam.DeleteUnbind
		}
		shipper := repl.NewShipper(dir, repl.ShipperConfig{})
		f, err := repl.NewFollower(repl.FollowerConfig{
			Catalog:      cat,
			Dial:         shipper.Dialer(),
			DeletePolicy: policy,
			PauseAfter:   pause,
		})
		if err != nil {
			return fmt.Errorf("crash: repl verify (%s): %w", label, err)
		}
		defer f.Close()
		if pause == 0 {
			if err := f.WaitCaughtUp(30 * time.Second); err != nil {
				return fmt.Errorf("crash: repl verify (%s): %w", label, err)
			}
		} else {
			deadline := time.Now().Add(30 * time.Second)
			for f.Applied() < pause && f.Applied() < total {
				if time.Now().After(deadline) {
					return fmt.Errorf("crash: repl verify (%s): follower stalled at %d/%d (stats %+v)",
						label, f.Applied(), total, f.Stats())
				}
				time.Sleep(time.Millisecond)
			}
		}
		st, vs, applied := f.Export()
		if pause == 0 && applied != total {
			return fmt.Errorf("crash: repl verify (%s): follower applied %d of %d chain records (stats %+v)",
				label, applied, total, f.Stats())
		}
		if applied > total {
			return fmt.Errorf("crash: repl verify (%s): follower applied %d records, chain has %d",
				label, applied, total)
		}
		got := wal.EncodeSnapshot(st, vs)
		want, err := oracle(applied)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			return fmt.Errorf("crash: repl verify (%s): replica diverged from oracle truncated at seq %d/%d: %d vs %d bytes, first difference at offset %d (stats %+v)",
				label, applied, total, len(got), len(want), i, f.Stats())
		}
		return nil
	}

	if err := check("full", 0); err != nil {
		return err
	}
	if total >= 2 {
		if err := check("truncated", total/2); err != nil {
			return err
		}
	}
	return nil
}
