// Package crash is the crash-recovery model-checking harness. A driver
// process runs a seeded multi-writer workload against a real on-disk
// database in a child process, kills the child at registered failpoints
// (or clips/flips bytes of the journal tail), reopens the directory, and
// compares the recovered store byte-for-byte against the internal/model
// oracle replayed from the same journal.
//
// The workload side doubles as an acknowledgement recorder: every
// mutation that returned success (and was therefore durable under the
// sync-per-batch configuration) appends a canonical key of its journal
// record to a per-writer ack file using an unbuffered O_APPEND write.
// Crashes kill the process, never the OS, so an acked operation must
// appear in the recovered journal — Verify checks the multiset
// inclusion.
package crash

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cadcam"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/wal"
)

// EnvConfig carries the workload configuration to the child process as
// JSON.
const EnvConfig = "CADCAM_CRASH_CFG"

// Config describes one workload run. It is JSON-encoded into the child's
// environment.
type Config struct {
	// Dir is the database directory.
	Dir string
	// AckDir receives per-writer acknowledgement logs.
	AckDir string
	// Seed derives every writer's private RNG.
	Seed int64
	// Writers is the number of concurrent mutator goroutines.
	Writers int
	// Ops is the number of operation attempts per writer.
	Ops int
	// CheckpointEvery > 0 makes writer 0 checkpoint after that many of
	// its own operation attempts.
	CheckpointEvery int
	// LongReaders is the number of concurrent snapshot-scan goroutines:
	// each continuously pins a view and walks the full component closure
	// of every visible object while the writers run, checking that the
	// pinned state never moves. They exercise the MVCC read path under
	// the same crash schedule as the writers.
	LongReaders int
	// Unbind opens the database with the DeleteUnbind policy, letting
	// transmitter deletes cascade into detaches instead of erroring.
	Unbind bool
	// Repl attaches an in-process read replica for the whole run: the
	// follower tails the journal while the writers churn (and while the
	// replication failpoints fire), and — when the workload ends with a
	// healthy journal — must converge to a state byte-identical to the
	// primary's before the process exits.
	Repl bool
	// Serve routes every writer through an in-process wire-protocol
	// server session (internal/serve) instead of direct facade calls,
	// and ends the run with a graceful drain while transactions are
	// still open — the schedule the serve failpoints live in.
	Serve bool
}

// Options returns the database options for this configuration. Verify
// must reopen with the same options: the delete policy is an Open-time
// override that journaled Delete ops were validated under.
func (c Config) Options() cadcam.Options {
	opts := cadcam.Options{Dir: c.Dir}
	if c.Unbind {
		opts.DeletePolicy = cadcam.DeleteUnbind
	}
	return opts
}

// LoadConfigEnv decodes a Config from the environment, reporting whether
// one was present.
func LoadConfigEnv() (Config, bool, error) {
	raw := os.Getenv(EnvConfig)
	if raw == "" {
		return Config{}, false, nil
	}
	var cfg Config
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		return Config{}, false, fmt.Errorf("crash: bad %s: %w", EnvConfig, err)
	}
	return cfg, true, nil
}

// Encode serializes the config for EnvConfig.
func (c Config) Encode() string {
	b, _ := json.Marshal(c)
	return string(b)
}

// RunWorkload opens the database and runs the configured writers to
// completion (or until the journal goes sticky-bad, or a failpoint kills
// the process). It is the entire child-process body of a crash-matrix
// round.
func RunWorkload(cfg Config) error {
	if cfg.Writers < 1 {
		cfg.Writers = 1
	}
	if err := os.MkdirAll(cfg.AckDir, 0o755); err != nil {
		return err
	}
	db, err := cadcam.Open(paperschema.MustGates(), cfg.Options())
	if err != nil {
		return fmt.Errorf("crash: open: %w", err)
	}
	if cfg.Serve {
		if err := runServeWorkload(db, cfg); err != nil {
			db.Close()
			return err
		}
		if db.Err() != nil {
			db.Close()
			return nil
		}
		return db.Close()
	}
	var follower *cadcam.Follower
	if cfg.Repl {
		follower, err = db.AttachFollower(cadcam.FollowerOptions{})
		if err != nil {
			db.Close()
			return fmt.Errorf("crash: attach follower: %w", err)
		}
	}
	reg := &registry{}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runWriter(db, cfg, w, reg)
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readerErrs := make([]error, cfg.LongReaders)
	for r := 0; r < cfg.LongReaders; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			readerErrs[r] = runLongReader(db, stop)
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for _, err := range append(errs, readerErrs...) {
		if err != nil {
			db.Close()
			return err
		}
	}
	if follower != nil {
		err := checkFollower(db, follower)
		follower.Close()
		if err != nil {
			db.Close()
			return err
		}
	}
	// A sticky journal error (typically an injected one) is an expected
	// workload ending: writers stopped cleanly, the directory is whatever
	// survived, and Verify judges it. Close's error would just repeat it.
	if db.Err() != nil {
		db.Close()
		return nil
	}
	return db.Close()
}

// checkFollower is the live half of the divergence oracle: with the
// writers quiescent and the journal healthy, the replica must catch up
// — recovering from any replication fault the round injected along the
// way — and export a state byte-identical to the primary's. A poisoned
// journal skips the check (the writers stopped mid-stream and the
// offline verifier judges the directory instead).
func checkFollower(db *cadcam.Database, follower *cadcam.Follower) error {
	if db.Err() != nil {
		return nil
	}
	if err := follower.WaitCaughtUp(30 * time.Second); err != nil {
		return fmt.Errorf("crash: follower never caught up: %w (stats %+v)", err, follower.Stats())
	}
	st, vs, applied := follower.Repl().Export()
	got := wal.EncodeSnapshot(st, vs)
	want := wal.EncodeSnapshot(db.Store().Export(), db.Versions().Export())
	if !bytes.Equal(got, want) {
		return fmt.Errorf("crash: replica diverged from live primary at applied seq %d (%d vs %d bytes, stats %+v)",
			applied, len(got), len(want), follower.Stats())
	}
	return nil
}

// runLongReader is the long-scan read mix: pin a snapshot view, walk
// the component closure of every object visible at the pin, re-list the
// visible set, release, repeat. The pinned set must never move while the
// writers churn — any error or shift is a snapshot-isolation bug, not an
// expected race.
func runLongReader(db *cadcam.Database, stop <-chan struct{}) error {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		v := db.SnapshotView()
		surs := v.Surrogates()
		for _, sur := range surs {
			if _, err := v.TypeOf(sur); err != nil {
				v.Release()
				return fmt.Errorf("crash: long reader: %v visible at snapshot %d but TypeOf failed: %w", sur, v.Seq(), err)
			}
			if _, err := v.VisibleComponents(sur); err != nil {
				v.Release()
				return fmt.Errorf("crash: long reader: closure of %v at snapshot %d: %w", sur, v.Seq(), err)
			}
		}
		if again := v.Surrogates(); len(again) != len(surs) {
			v.Release()
			return fmt.Errorf("crash: long reader: snapshot %d visible set moved %d -> %d during scan", v.Seq(), len(surs), len(again))
		}
		v.Release()
	}
}

// registry shares successfully created surrogates between writers so the
// operation mix can build deep structures across goroutines.
type registry struct {
	mu                                       sync.Mutex
	ifaceIs, ifaces, impls, comps, pins, all []cadcam.Surrogate
	classes                                  int
}

func (r *registry) add(list *[]cadcam.Surrogate, sur cadcam.Surrogate) {
	r.mu.Lock()
	*list = append(*list, sur)
	r.all = append(r.all, sur)
	r.mu.Unlock()
}

func (r *registry) pick(rng *rand.Rand, list *[]cadcam.Surrogate) cadcam.Surrogate {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(*list) == 0 {
		return 0
	}
	return (*list)[rng.Intn(len(*list))]
}

func runWriter(db *cadcam.Database, cfg Config, w int, reg *registry) error {
	ackPath := filepath.Join(cfg.AckDir, fmt.Sprintf("ack-%d.log", w))
	ack, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer ack.Close()
	wr := &writer{db: db, cfg: cfg, id: w, reg: reg, ack: ack,
		rng: rand.New(rand.NewSource(cfg.Seed*1000003 + int64(w)))}
	for i := 0; i < cfg.Ops; i++ {
		if db.Err() != nil {
			return nil // journal is sticky-bad; stop cleanly
		}
		if err := wr.step(i); err != nil {
			return err
		}
	}
	return nil
}

type writer struct {
	db  *cadcam.Database
	cfg Config
	id  int
	reg *registry
	ack *os.File
	rng *rand.Rand
}

// acked records a durable success: the canonical journal key (the op as
// the journal records it, with the sequence fields zeroed, hex-encoded)
// in one unbuffered append.
func (w *writer) acked(op *oplog.Op) error {
	_, err := fmt.Fprintf(w.ack, "%s\n", hex.EncodeToString(op.Encode()))
	return err
}

// AckKey canonicalizes a journal record for the multiset check: writers
// do not know the sequence numbers their ops consumed, so Seq and Num are
// zeroed on both sides.
func AckKey(op *oplog.Op) string {
	c := op.Clone()
	c.Seq = 0
	c.Num = 0
	return hex.EncodeToString(c.Encode())
}

func (w *writer) step(i int) error {
	db, rng, reg := w.db, w.rng, w.reg
	if w.id == 0 && w.cfg.CheckpointEvery > 0 && i > 0 && i%w.cfg.CheckpointEvery == 0 {
		_ = db.Checkpoint() // tolerated: checkpoint failure keeps the old epoch live
		return nil
	}
	switch rng.Intn(17) {
	case 0:
		cls := ""
		reg.mu.Lock()
		if reg.classes > 0 && rng.Intn(2) == 0 {
			cls = fmt.Sprintf("C%d", rng.Intn(reg.classes))
		}
		reg.mu.Unlock()
		if sur, err := db.NewObject(paperschema.TypeGateInterfaceI, cls); err == nil {
			reg.add(&reg.ifaceIs, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterfaceI, Name2: cls, Out: sur})
		}
	case 1:
		if sur, err := db.NewObject(paperschema.TypeGateInterface, ""); err == nil {
			reg.add(&reg.ifaces, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateInterface, Out: sur})
		}
	case 2:
		if sur, err := db.NewObject(paperschema.TypeGateImplementation, ""); err == nil {
			reg.add(&reg.impls, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeGateImplementation, Out: sur})
		}
	case 3:
		if sur, err := db.NewObject(paperschema.TypeTimedComposite, ""); err == nil {
			reg.add(&reg.comps, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewObject, Name: paperschema.TypeTimedComposite, Out: sur})
		}
	case 4:
		parent := reg.pick(rng, &reg.ifaceIs)
		if sur, err := db.NewSubobject(parent, "Pins"); err == nil {
			reg.add(&reg.pins, sur)
			return w.acked(&oplog.Op{Kind: oplog.KindNewSubobject, Sur: parent, Name: "Pins", Out: sur})
		}
	case 5:
		pin := reg.pick(rng, &reg.pins)
		name, v := "PinId", cadcam.Int(int64(rng.Intn(64)))
		if rng.Intn(2) == 0 {
			name = "InOut"
			v = cadcam.Sym([...]string{"IN", "OUT"}[rng.Intn(2)])
		}
		if err := db.SetAttr(pin, name, v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: pin, Name: name, Value: v})
		}
	case 6:
		iface := reg.pick(rng, &reg.ifaces)
		name := [...]string{"Length", "Width"}[rng.Intn(2)]
		v := cadcam.Int(int64(rng.Intn(100)))
		if rng.Intn(8) == 0 {
			v = cadcam.NullValue
		}
		if err := db.SetAttr(iface, name, v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: iface, Name: name, Value: v})
		}
	case 7:
		impl := reg.pick(rng, &reg.impls)
		v := cadcam.Int(int64(rng.Intn(100)))
		if err := db.SetAttr(impl, "TimeBehavior", v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: impl, Name: "TimeBehavior", Value: v})
		}
	case 8:
		comp := reg.pick(rng, &reg.comps)
		v := cadcam.Int(int64(rng.Intn(100)))
		if err := db.SetAttr(comp, "SimSlot", v); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindSetAttr, Sur: comp, Name: "SimSlot", Value: v})
		}
	case 9:
		inh, tr := reg.pick(rng, &reg.ifaces), reg.pick(rng, &reg.ifaceIs)
		if sur, err := db.Bind(paperschema.RelAllOfGateInterfaceI, inh, tr); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindBind, Name: paperschema.RelAllOfGateInterfaceI, Sur: inh, Sur2: tr, Out: sur})
		}
	case 10:
		inh, tr := reg.pick(rng, &reg.impls), reg.pick(rng, &reg.ifaces)
		if sur, err := db.Bind(paperschema.RelAllOfGateInterface, inh, tr); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindBind, Name: paperschema.RelAllOfGateInterface, Sur: inh, Sur2: tr, Out: sur})
		}
	case 11:
		inh, tr := reg.pick(rng, &reg.comps), reg.pick(rng, &reg.impls)
		if sur, err := db.Bind(paperschema.RelSomeOfGate, inh, tr); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindBind, Name: paperschema.RelSomeOfGate, Sur: inh, Sur2: tr, Out: sur})
		}
	case 12:
		rel := [...]string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface,
			paperschema.RelSomeOfGate}[rng.Intn(3)]
		inh := reg.pick(rng, &reg.all)
		if err := db.Unbind(rel, inh); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindUnbind, Name: rel, Sur: inh})
		}
	case 13:
		rel := [...]string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface,
			paperschema.RelSomeOfGate}[rng.Intn(3)]
		inh := reg.pick(rng, &reg.all)
		if err := db.Acknowledge(rel, inh); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindAcknowledge, Name: rel, Sur: inh})
		}
	case 14:
		sur := reg.pick(rng, &reg.all)
		if err := db.Delete(sur); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindDelete, Sur: sur})
		}
	case 15:
		p1, p2 := reg.pick(rng, &reg.pins), reg.pick(rng, &reg.pins)
		parts := cadcam.Participants{"Pin1": cadcam.RefOf(p1), "Pin2": cadcam.RefOf(p2)}
		if sur, err := db.Relate(paperschema.TypeWire, parts); err == nil {
			return w.acked(&oplog.Op{Kind: oplog.KindRelate, Name: paperschema.TypeWire,
				Parts: object.Participants(parts), Out: sur})
		}
	case 16:
		if rng.Intn(4) != 0 {
			return nil
		}
		reg.mu.Lock()
		name := fmt.Sprintf("C%d", reg.classes)
		reg.mu.Unlock()
		if err := db.DefineClass(name, paperschema.TypeGateInterfaceI); err == nil {
			reg.mu.Lock()
			reg.classes++
			reg.mu.Unlock()
			return w.acked(&oplog.Op{Kind: oplog.KindDefineClass, Name: name, Name2: paperschema.TypeGateInterfaceI})
		}
	}
	return nil
}
