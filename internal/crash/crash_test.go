package crash

import (
	"path/filepath"
	"testing"
)

// The in-process tests cover the harness's own happy path: a clean
// multi-writer workload must verify against the oracle under every
// configuration the matrix uses (plain, checkpointing, unbind policy).
// The actual crash rounds live in the root crashmatrix_test.go, which
// needs a subprocess.

func runClean(t *testing.T, cfg Config) {
	t.Helper()
	base := t.TempDir()
	cfg.Dir = filepath.Join(base, "db")
	cfg.AckDir = filepath.Join(base, "ack")
	if err := RunWorkload(cfg); err != nil {
		t.Fatalf("workload (seed=%d): %v", cfg.Seed, err)
	}
	if err := Verify(cfg.Dir, cfg.AckDir, VerifyOptions{
		AckCheck: cfg.CheckpointEvery == 0,
		Unbind:   cfg.Unbind,
	}); err != nil {
		t.Fatalf("verify (seed=%d): %v", cfg.Seed, err)
	}
}

func TestWorkloadVerifyClean(t *testing.T) {
	runClean(t, Config{Seed: 1, Writers: 4, Ops: 300})
}

func TestWorkloadVerifySingleWriter(t *testing.T) {
	runClean(t, Config{Seed: 2, Writers: 1, Ops: 500})
}

func TestWorkloadVerifyCheckpoint(t *testing.T) {
	runClean(t, Config{Seed: 3, Writers: 4, Ops: 300, CheckpointEvery: 25})
}

func TestWorkloadVerifyUnbind(t *testing.T) {
	runClean(t, Config{Seed: 4, Writers: 4, Ops: 300, Unbind: true})
}
