package crash

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
)

// WALName returns the journal filename of the newest epoch present in
// dir, or "" if none.
func WALName(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best, bestEpoch := "", uint64(0)
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil {
			if best == "" || n > bestEpoch {
				best, bestEpoch = e.Name(), n
			}
		}
	}
	return best
}

// CopyDir copies a directory tree of regular files (the database layout
// is flat, but subdirectories copy too).
func CopyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

// ClipTail truncates the file to a random length strictly shorter than
// its current size, simulating a crash that lost the journal tail at an
// arbitrary byte boundary. It returns the new length.
func ClipTail(path string, rng *rand.Rand) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() == 0 {
		return 0, nil
	}
	n := rng.Int63n(fi.Size())
	return n, os.Truncate(path, n)
}

// FlipByte flips one random bit of one random byte of the file,
// simulating a corrupt sector. It returns the chosen offset.
func FlipByte(path string, rng *rand.Rand) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() == 0 {
		return 0, nil
	}
	off := rng.Int63n(fi.Size())
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return 0, err
	}
	b[0] ^= 1 << uint(rng.Intn(8))
	if _, err := f.WriteAt(b[:], off); err != nil {
		return 0, err
	}
	return off, f.Close()
}
