package model_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cadcam/internal/codec"
	"cadcam/internal/domain"
	"cadcam/internal/model"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// TestModelMatchesStoreRandom runs a random operation mix against a real
// in-memory store while capturing its journal, replays the journal
// (encode/decode round-tripped, as recovery would see it) into the model,
// and requires byte-identical snapshots plus agreeing read resolution.
func TestModelMatchesStoreRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1989} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDiff(t, seed, 800)
		})
	}
}

func runDiff(t *testing.T, seed int64, steps int) {
	t.Helper()
	cat := paperschema.MustGates()
	st, err := object.NewStore(cat)
	if err != nil {
		t.Fatal(err)
	}
	var records [][]byte
	st.SetJournal(func(op *oplog.Op) { records = append(records, op.Encode()) })

	rng := rand.New(rand.NewSource(seed))
	w := &walker{rng: rng, st: st}
	for i := 0; i < steps; i++ {
		w.step()
	}
	if w.successes < steps/4 {
		t.Fatalf("only %d/%d operations succeeded; generator is ineffective", w.successes, steps)
	}

	m := model.New(cat)
	for i, rec := range records {
		op, err := oplog.Decode(rec)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if err := m.Apply(op); err != nil {
			t.Fatalf("record %d (kind %d): model diverged: %v", i, op.Kind, err)
		}
	}

	vs := &version.ManagerState{}
	got := wal.EncodeSnapshot(st.Export(), vs)
	want := wal.EncodeSnapshot(m.Export(), vs)
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot mismatch after %d ops: store %d bytes, model %d bytes",
			len(records), len(got), len(want))
	}

	// Read resolution must agree on every live object and probe name.
	probes := []string{"Length", "Width", "TimeBehavior", "SimSlot", "PinId", "InOut"}
	classes := []string{"Pins", "SubGates"}
	for _, sur := range st.Surrogates() {
		tn, err := st.TypeOf(sur)
		if err != nil {
			t.Fatal(err)
		}
		if _, isRel := cat.RelType(tn); isRel {
			continue
		}
		if _, isInher := cat.InherRelType(tn); isInher {
			continue
		}
		for _, name := range probes {
			gv, gerr := st.GetAttr(sur, name)
			mv, merr := m.ResolveAttr(sur, name)
			if (gerr != nil) != (merr != nil) {
				t.Fatalf("%s(%s).%s: store err %v, model err %v", tn, sur, name, gerr, merr)
			}
			if gerr == nil && !bytes.Equal(encVal(gv), encVal(mv)) {
				t.Fatalf("%s(%s).%s: store %v, model %v", tn, sur, name, gv, mv)
			}
		}
		for _, name := range classes {
			gm, gerr := st.Members(sur, name)
			mm, merr := m.ResolveMembers(sur, name)
			if (gerr != nil) != (merr != nil) {
				t.Fatalf("%s(%s).%s members: store err %v, model err %v", tn, sur, name, gerr, merr)
			}
			if gerr == nil && !equalSurs(gm, mm) {
				t.Fatalf("%s(%s).%s members: store %v, model %v", tn, sur, name, gm, mm)
			}
		}
	}
}

func encVal(v domain.Value) []byte {
	var b codec.Buf
	b.Value(v)
	return b.Bytes()
}

func equalSurs(a, b []domain.Surrogate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walker drives a random but type-aware operation mix. Errors are
// tolerated (invalid picks simply don't journal); the generator mixes
// enough valid operations to build deep inheritance chains.
type walker struct {
	rng       *rand.Rand
	st        *object.Store
	successes int

	ifaceIs, ifaces, impls, comps, pins, wires, all []domain.Surrogate
	classes                                         int
}

func (w *walker) pick(list []domain.Surrogate) domain.Surrogate {
	if len(list) == 0 {
		return 0
	}
	return list[w.rng.Intn(len(list))]
}

func (w *walker) ok(err error) bool {
	if err == nil {
		w.successes++
	}
	return err == nil
}

func (w *walker) step() {
	rng := w.rng
	switch rng.Intn(17) {
	case 0:
		cls := ""
		if w.classes > 0 && rng.Intn(2) == 0 {
			cls = fmt.Sprintf("C%d", rng.Intn(w.classes))
		}
		if sur, err := w.st.NewObject(paperschema.TypeGateInterfaceI, cls); w.ok(err) {
			w.ifaceIs = append(w.ifaceIs, sur)
			w.all = append(w.all, sur)
		}
	case 1:
		if sur, err := w.st.NewObject(paperschema.TypeGateInterface, ""); w.ok(err) {
			w.ifaces = append(w.ifaces, sur)
			w.all = append(w.all, sur)
		}
	case 2:
		if sur, err := w.st.NewObject(paperschema.TypeGateImplementation, ""); w.ok(err) {
			w.impls = append(w.impls, sur)
			w.all = append(w.all, sur)
		}
	case 3:
		if sur, err := w.st.NewObject(paperschema.TypeTimedComposite, ""); w.ok(err) {
			w.comps = append(w.comps, sur)
			w.all = append(w.all, sur)
		}
	case 4:
		if sur, err := w.st.NewSubobject(w.pick(w.ifaceIs), "Pins"); w.ok(err) {
			w.pins = append(w.pins, sur)
			w.all = append(w.all, sur)
		}
	case 5:
		pin := w.pick(w.pins)
		if rng.Intn(2) == 0 {
			w.ok(w.st.SetAttr(pin, "PinId", domain.Int(rng.Intn(64))))
		} else {
			dir := "IN"
			if rng.Intn(2) == 0 {
				dir = "OUT"
			}
			w.ok(w.st.SetAttr(pin, "InOut", domain.Sym(dir)))
		}
	case 6:
		name := "Length"
		if rng.Intn(2) == 0 {
			name = "Width"
		}
		v := domain.Value(domain.Int(rng.Intn(100)))
		if rng.Intn(8) == 0 {
			v = domain.NullValue
		}
		w.ok(w.st.SetAttr(w.pick(w.ifaces), name, v))
	case 7:
		w.ok(w.st.SetAttr(w.pick(w.impls), "TimeBehavior", domain.Int(rng.Intn(100))))
	case 8:
		w.ok(w.st.SetAttr(w.pick(w.comps), "SimSlot", domain.Int(rng.Intn(100))))
	case 9:
		_, err := w.st.Bind(paperschema.RelAllOfGateInterfaceI, w.pick(w.ifaces), w.pick(w.ifaceIs))
		w.ok(err)
	case 10:
		_, err := w.st.Bind(paperschema.RelAllOfGateInterface, w.pick(w.impls), w.pick(w.ifaces))
		w.ok(err)
	case 11:
		_, err := w.st.Bind(paperschema.RelSomeOfGate, w.pick(w.comps), w.pick(w.impls))
		w.ok(err)
	case 12:
		rel := [...]string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface,
			paperschema.RelSomeOfGate}[rng.Intn(3)]
		w.ok(w.st.Unbind(rel, w.pick(w.all)))
	case 13:
		rel := [...]string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface,
			paperschema.RelSomeOfGate}[rng.Intn(3)]
		w.ok(w.st.Acknowledge(rel, w.pick(w.all)))
	case 14:
		if rng.Intn(12) == 0 {
			w.st.SetDeletePolicy(object.DeletePolicy(rng.Intn(2)))
			w.successes++
			return
		}
		w.ok(w.st.Delete(w.pick(w.all)))
	case 15:
		p1, p2 := w.pick(w.pins), w.pick(w.pins)
		if sur, err := w.st.Relate(paperschema.TypeWire, object.Participants{
			"Pin1": domain.Ref(p1), "Pin2": domain.Ref(p2),
		}); w.ok(err) {
			w.wires = append(w.wires, sur)
			w.all = append(w.all, sur)
		}
	case 16:
		if rng.Intn(4) == 0 {
			name := fmt.Sprintf("C%d", w.classes)
			if w.ok(w.st.DefineClass(name, paperschema.TypeGateInterfaceI)) {
				w.classes++
			}
		}
	}
}
