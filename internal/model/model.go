// Package model is a deliberately naive reference implementation of the
// object store's journaled operation semantics: plain maps, no locks, no
// shards, no caches, linear scans everywhere. The crash-recovery harness
// replays a recovered journal into both the real store and this model and
// byte-compares their exported snapshots; because the two implementations
// share no mechanism beyond the schema catalog, agreement is strong
// evidence that recovery reproduced the journaled history.
//
// The model mirrors the *effects* of each operation — which objects and
// bindings exist, every attribute value, modification sequences and the
// binding bookkeeping counters — but none of the store's machinery.
// Operations in a journal all succeeded live, so any error from Apply is
// itself a divergence.
package model

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
)

// Object is the model's view of one non-binding object.
type Object struct {
	Sur          domain.Surrogate
	TypeName     string
	IsRel        bool
	Parent       domain.Surrogate
	ParentSub    string
	OwnerClass   string
	ModSeq       uint64
	Attrs        map[string]domain.Value
	Participants map[string]domain.Value
}

// Binding is the model's view of one inheritance binding, bookkeeping
// held as plain integers.
type Binding struct {
	Sur         domain.Surrogate
	RelType     string
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
	Attrs       map[string]domain.Value
	Updates     int64
	LastSeq     int64
	AckSeq      int64
}

// indexDef is the model's view of one secondary-index definition. Only
// the definition is modelled: postings are derived state the store
// rebuilds, and snapshots carry definitions only.
type indexDef struct {
	ClassName  string
	AttrName   string
	CreatedSeq uint64
}

// Model is the oracle state.
type Model struct {
	cat      *schema.Catalog
	classes  map[string]string // class name -> element type
	indexes  map[string]indexDef
	objects  map[domain.Surrogate]*Object
	bindings map[domain.Surrogate]*Binding
	nextSur  uint64
	seq      uint64
	policy   int64
}

// New creates an empty model over the same catalog as the store under
// test.
func New(cat *schema.Catalog) *Model {
	return &Model{
		cat:      cat,
		classes:  make(map[string]string),
		indexes:  make(map[string]indexDef),
		objects:  make(map[domain.Surrogate]*Object),
		bindings: make(map[domain.Surrogate]*Binding),
	}
}

// Load initializes the model from decoded snapshot records (the starting
// point of a journal replay). The bookkeeping attributes travel inside
// binding Attrs, exactly as object.Store.Import consumes them.
func (m *Model) Load(st *object.StoreState) error {
	if len(m.objects) != 0 || len(m.bindings) != 0 || len(m.classes) != 0 {
		return fmt.Errorf("model: Load needs an empty model")
	}
	for _, c := range st.Classes {
		if _, dup := m.classes[c.Name]; dup {
			return fmt.Errorf("model: duplicate class %q", c.Name)
		}
		m.classes[c.Name] = c.ElemType
	}
	for _, ix := range st.Indexes {
		if _, dup := m.indexes[ix.Name]; dup {
			return fmt.Errorf("model: duplicate index %q", ix.Name)
		}
		m.indexes[ix.Name] = indexDef{ClassName: ix.ClassName, AttrName: ix.AttrName, CreatedSeq: ix.CreatedSeq}
	}
	for _, r := range st.Objects {
		if m.taken(r.Sur) {
			return fmt.Errorf("model: duplicate surrogate %s", r.Sur)
		}
		m.objects[r.Sur] = &Object{
			Sur:          r.Sur,
			TypeName:     r.TypeName,
			IsRel:        r.IsRel,
			Parent:       r.Parent,
			ParentSub:    r.ParentSub,
			OwnerClass:   r.OwnerClass,
			ModSeq:       r.ModSeq,
			Attrs:        copyValues(r.Attrs),
			Participants: copyValues(r.Participants),
		}
	}
	for _, r := range st.Bindings {
		if m.taken(r.Sur) {
			return fmt.Errorf("model: duplicate surrogate %s", r.Sur)
		}
		attrs := copyValues(r.Attrs)
		m.bindings[r.Sur] = &Binding{
			Sur:         r.Sur,
			RelType:     r.RelType,
			Transmitter: r.Transmitter,
			Inheritor:   r.Inheritor,
			Updates:     takeInt(attrs, object.AttrTransmitterUpdates),
			LastSeq:     takeInt(attrs, object.AttrLastUpdateSeq),
			AckSeq:      takeInt(attrs, object.AttrAcknowledgedSeq),
			Attrs:       attrs,
		}
	}
	m.nextSur = st.NextSur
	m.seq = st.Seq
	return nil
}

func (m *Model) taken(sur domain.Surrogate) bool {
	_, o := m.objects[sur]
	_, b := m.bindings[sur]
	return o || b
}

func copyValues(src map[string]domain.Value) map[string]domain.Value {
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func takeInt(m map[string]domain.Value, key string) int64 {
	v, ok := m[key]
	if !ok {
		return 0
	}
	delete(m, key)
	if n, ok := v.(domain.Int); ok {
		return int64(n)
	}
	return 0
}

// Export produces the model state in the store's snapshot record form:
// classes sorted by name, objects and bindings in ascending surrogate
// order, bookkeeping re-folded into binding Attrs. Encoding this with
// wal.EncodeSnapshot must yield the same bytes as the recovered store.
func (m *Model) Export() *object.StoreState {
	st := &object.StoreState{NextSur: m.nextSur, Seq: m.seq}
	names := make([]string, 0, len(m.classes))
	for n := range m.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.Classes = append(st.Classes, object.ClassRecord{Name: n, ElemType: m.classes[n]})
	}
	ixNames := make([]string, 0, len(m.indexes))
	for n := range m.indexes {
		ixNames = append(ixNames, n)
	}
	sort.Strings(ixNames)
	for _, n := range ixNames {
		d := m.indexes[n]
		st.Indexes = append(st.Indexes, object.IndexRecord{
			Name: n, ClassName: d.ClassName, AttrName: d.AttrName, CreatedSeq: d.CreatedSeq,
		})
	}
	surs := make([]domain.Surrogate, 0, len(m.objects)+len(m.bindings))
	for s := range m.objects {
		surs = append(surs, s)
	}
	for s := range m.bindings {
		surs = append(surs, s)
	}
	sort.Slice(surs, func(i, j int) bool { return surs[i] < surs[j] })
	for _, sur := range surs {
		if b, ok := m.bindings[sur]; ok {
			attrs := copyValues(b.Attrs)
			if attrs == nil {
				attrs = make(map[string]domain.Value, 3)
			}
			attrs[object.AttrTransmitterUpdates] = domain.Int(b.Updates)
			attrs[object.AttrLastUpdateSeq] = domain.Int(b.LastSeq)
			attrs[object.AttrAcknowledgedSeq] = domain.Int(b.AckSeq)
			st.Bindings = append(st.Bindings, object.BindingRecord{
				Sur:         sur,
				RelType:     b.RelType,
				Transmitter: b.Transmitter,
				Inheritor:   b.Inheritor,
				Attrs:       attrs,
			})
			continue
		}
		o := m.objects[sur]
		st.Objects = append(st.Objects, object.ObjectRecord{
			Sur:          sur,
			TypeName:     o.TypeName,
			IsRel:        o.IsRel,
			Parent:       o.Parent,
			ParentSub:    o.ParentSub,
			OwnerClass:   o.OwnerClass,
			ModSeq:       o.ModSeq,
			Attrs:        copyValues(o.Attrs),
			Participants: copyValues(o.Participants),
		})
	}
	return st
}

// SetPolicy overrides the delete policy, mirroring the Open-time option
// (which the store applies without journaling it).
func (m *Model) SetPolicy(p object.DeletePolicy) { m.policy = int64(p) }

func (m *Model) bumpSeq(seq uint64) {
	if seq > m.seq {
		m.seq = seq
	}
}

func (m *Model) bumpSur(out domain.Surrogate) {
	if uint64(out) > m.nextSur {
		m.nextSur = uint64(out)
	}
}

// Apply executes one journaled op against the model. Journaled ops
// succeeded live, so every error is a divergence. Version-manager ops are
// not modelled; workloads meant for model checking must not use them.
func (m *Model) Apply(op *oplog.Op) error {
	switch op.Kind {
	case oplog.KindDefineClass:
		if _, dup := m.classes[op.Name]; dup {
			return fmt.Errorf("model: duplicate class %q", op.Name)
		}
		m.classes[op.Name] = op.Name2
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindNewObject:
		if op.Out == 0 || m.taken(op.Out) {
			return fmt.Errorf("model: NewObject out %s invalid", op.Out)
		}
		if _, ok := m.cat.ObjectType(op.Name); !ok {
			return fmt.Errorf("model: no type %q", op.Name)
		}
		m.objects[op.Out] = &Object{Sur: op.Out, TypeName: op.Name, OwnerClass: op.Name2}
		m.bumpSur(op.Out)
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindNewSubobject:
		po, ok := m.objects[op.Sur]
		if !ok {
			return fmt.Errorf("model: no parent %s", op.Sur)
		}
		eff, ok := m.cat.Effective(po.TypeName)
		if !ok {
			return fmt.Errorf("model: no effective type %q", po.TypeName)
		}
		sd, ok := eff.SubclassByName(op.Name)
		if !ok || sd.Inherited() {
			return fmt.Errorf("model: %s has no own subclass %q", po.TypeName, op.Name)
		}
		if op.Out == 0 || m.taken(op.Out) {
			return fmt.Errorf("model: NewSubobject out %s invalid", op.Out)
		}
		m.objects[op.Out] = &Object{
			Sur: op.Out, TypeName: sd.ElemType, Parent: op.Sur, ParentSub: op.Name,
		}
		po.ModSeq = op.Seq
		seen := make(map[visit]bool)
		m.notify(op.Sur, op.Name, op.Seq, seen)
		m.bumpSur(op.Out)
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindNewRelSubobject:
		ro, ok := m.objects[op.Sur]
		if !ok || !ro.IsRel {
			return fmt.Errorf("model: %s is not a relationship object", op.Sur)
		}
		rt, ok := m.cat.RelType(ro.TypeName)
		if !ok {
			return fmt.Errorf("model: no rel type %q", ro.TypeName)
		}
		elem := ""
		for _, sc := range rt.Subclasses {
			if sc.Name == op.Name {
				elem = sc.ElemType
				break
			}
		}
		if elem == "" {
			return fmt.Errorf("model: %s has no subclass %q", ro.TypeName, op.Name)
		}
		if op.Out == 0 || m.taken(op.Out) {
			return fmt.Errorf("model: NewRelSubobject out %s invalid", op.Out)
		}
		m.objects[op.Out] = &Object{
			Sur: op.Out, TypeName: elem, Parent: op.Sur, ParentSub: op.Name,
		}
		m.bumpSur(op.Out)
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindSetAttr:
		return m.applySetAttr(op)

	case oplog.KindRelate:
		return m.applyRelate(op, 0, "")

	case oplog.KindRelateIn:
		oo, ok := m.objects[op.Sur]
		if !ok {
			return fmt.Errorf("model: no owner %s", op.Sur)
		}
		relType, err := m.subRelType(oo, op.Name)
		if err != nil {
			return err
		}
		if err := m.applyRelate(&oplog.Op{
			Kind: oplog.KindRelate, Name: relType, Parts: op.Parts, Out: op.Out, Seq: op.Seq,
		}, op.Sur, op.Name); err != nil {
			return err
		}
		seen := make(map[visit]bool)
		m.notify(op.Sur, op.Name, op.Seq, seen)
		return nil

	case oplog.KindBind:
		if op.Out == 0 || m.taken(op.Out) {
			return fmt.Errorf("model: Bind out %s invalid", op.Out)
		}
		if m.bindingOf(op.Sur, op.Name) != nil {
			return fmt.Errorf("model: %s already bound in %s", op.Sur, op.Name)
		}
		m.bindings[op.Out] = &Binding{
			Sur: op.Out, RelType: op.Name, Transmitter: op.Sur2, Inheritor: op.Sur,
		}
		m.bumpSur(op.Out)
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindUnbind:
		b := m.bindingOf(op.Sur, op.Name)
		if b == nil {
			return fmt.Errorf("model: %s not bound in %s", op.Sur, op.Name)
		}
		delete(m.bindings, b.Sur)
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindAcknowledge:
		b := m.bindingOf(op.Sur, op.Name)
		if b == nil {
			return fmt.Errorf("model: %s not bound in %s", op.Sur, op.Name)
		}
		ack := op.Num
		if ack == 0 {
			ack = b.LastSeq
		}
		if ack > b.AckSeq {
			b.AckSeq = ack
		}
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindDelete:
		return m.applyDelete(op)

	case oplog.KindDeletePolicy:
		m.policy = op.Num
		return nil

	case oplog.KindCreateIndex:
		if _, dup := m.indexes[op.Name]; dup {
			return fmt.Errorf("model: duplicate index %q", op.Name)
		}
		if _, ok := m.classes[op.Name2]; !ok {
			return fmt.Errorf("model: index %q over unknown class %q", op.Name, op.Name2)
		}
		attr, ok := op.Value.(domain.Str)
		if !ok {
			return fmt.Errorf("model: index %q has no attribute name", op.Name)
		}
		m.indexes[op.Name] = indexDef{ClassName: op.Name2, AttrName: string(attr), CreatedSeq: op.Seq}
		m.bumpSeq(op.Seq)
		return nil

	case oplog.KindDropIndex:
		if _, ok := m.indexes[op.Name]; !ok {
			return fmt.Errorf("model: no index %q", op.Name)
		}
		delete(m.indexes, op.Name)
		m.bumpSeq(op.Seq)
		return nil

	default:
		return fmt.Errorf("model: unmodelled op kind %d", op.Kind)
	}
}

func (m *Model) applySetAttr(op *oplog.Op) error {
	if b, ok := m.bindings[op.Sur]; ok {
		// User-declared attribute of a binding relationship object; the
		// store sets modSeq too, but binding records do not export it.
		b.Attrs = setValue(b.Attrs, op.Name, op.Value)
		m.bumpSeq(op.Seq)
		return nil
	}
	o, ok := m.objects[op.Sur]
	if !ok {
		return fmt.Errorf("model: no object %s", op.Sur)
	}
	o.Attrs = setValue(o.Attrs, op.Name, op.Value)
	o.ModSeq = op.Seq
	if !o.IsRel {
		seen := make(map[visit]bool)
		m.notify(op.Sur, op.Name, op.Seq, seen)
		if o.Parent != 0 {
			m.notify(o.Parent, o.ParentSub, op.Seq, seen)
		}
	}
	m.bumpSeq(op.Seq)
	return nil
}

// setValue mirrors Object.setAttr: null deletes the key, so exported
// attribute maps never carry explicit nulls.
func setValue(attrs map[string]domain.Value, name string, v domain.Value) map[string]domain.Value {
	if domain.IsNull(v) {
		delete(attrs, name)
		return attrs
	}
	if attrs == nil {
		attrs = make(map[string]domain.Value)
	}
	attrs[name] = v
	return attrs
}

func (m *Model) applyRelate(op *oplog.Op, owner domain.Surrogate, subrel string) error {
	rt, ok := m.cat.RelType(op.Name)
	if !ok {
		return fmt.Errorf("model: no rel type %q", op.Name)
	}
	// Exactly the declared roles are kept, as relateLocked assigns them.
	parts := make(map[string]domain.Value, len(rt.Participants))
	for _, p := range rt.Participants {
		v, ok := op.Parts[p.Name]
		if !ok {
			return fmt.Errorf("model: role %q of %s not assigned", p.Name, op.Name)
		}
		parts[p.Name] = v
	}
	if op.Out == 0 || m.taken(op.Out) {
		return fmt.Errorf("model: Relate out %s invalid", op.Out)
	}
	m.objects[op.Out] = &Object{
		Sur: op.Out, TypeName: op.Name, IsRel: true,
		Parent: owner, ParentSub: subrel, Participants: parts,
	}
	m.bumpSur(op.Out)
	m.bumpSeq(op.Seq)
	return nil
}

func (m *Model) subRelType(o *Object, name string) (string, error) {
	if o.IsRel {
		if rt, ok := m.cat.RelType(o.TypeName); ok {
			for i := range rt.SubRels {
				if rt.SubRels[i].Name == name {
					return rt.SubRels[i].RelType, nil
				}
			}
		}
		return "", fmt.Errorf("model: %s has no sub-relationship %q", o.TypeName, name)
	}
	eff, ok := m.cat.Effective(o.TypeName)
	if !ok {
		return "", fmt.Errorf("model: no effective type %q", o.TypeName)
	}
	for i := range eff.Type.SubRels {
		if eff.Type.SubRels[i].Name == name {
			return eff.Type.SubRels[i].RelType, nil
		}
	}
	return "", fmt.Errorf("model: %s has no sub-relationship %q", o.TypeName, name)
}

func (m *Model) bindingOf(inheritor domain.Surrogate, relType string) *Binding {
	for _, b := range m.bindings {
		if b.Inheritor == inheritor && b.RelType == relType {
			return b
		}
	}
	return nil
}

func (m *Model) applyDelete(op *oplog.Op) error {
	// Deleting a binding's own relationship object dissolves the binding.
	if b, ok := m.bindings[op.Sur]; ok {
		delete(m.bindings, b.Sur)
		m.bumpSeq(op.Seq)
		return nil
	}
	if _, ok := m.objects[op.Sur]; !ok {
		return fmt.Errorf("model: no object %s", op.Sur)
	}
	cascade := m.collectCascade(op.Sur)
	// Policy: a cascaded transmitter with an inheritor outside the
	// cascade blocks the delete under DeleteRestrict.
	if m.policy == int64(object.DeleteRestrict) {
		for _, b := range m.bindings {
			if cascade[b.Transmitter] && !cascade[b.Inheritor] {
				return fmt.Errorf("model: %s has inheritor %s via %s", b.Transmitter, b.Inheritor, b.RelType)
			}
		}
	}
	// Parents outside the cascade lose a subclass member.
	type parentSub struct {
		parent domain.Surrogate
		sub    string
	}
	members := make([]domain.Surrogate, 0, len(cascade))
	for s := range cascade {
		members = append(members, s)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	var touched []parentSub
	for _, s := range members {
		if o := m.objects[s]; o.Parent != 0 && !cascade[o.Parent] {
			touched = append(touched, parentSub{o.Parent, o.ParentSub})
		}
	}
	// Every binding touching the cascade dissolves with it.
	for sur, b := range m.bindings {
		if cascade[b.Transmitter] || cascade[b.Inheritor] {
			delete(m.bindings, sur)
		}
	}
	for _, s := range members {
		delete(m.objects, s)
	}
	seen := make(map[visit]bool)
	for _, ps := range touched {
		if po, ok := m.objects[ps.parent]; ok {
			po.ModSeq = op.Seq
		}
		m.notify(ps.parent, ps.sub, op.Seq, seen)
	}
	m.bumpSeq(op.Seq)
	return nil
}

// collectCascade computes the dependency closure of a delete by fixpoint:
// subobjects (transitively) and relationship objects referencing anything
// in the closure. Binding objects are tracked separately and never enter
// the closure.
func (m *Model) collectCascade(root domain.Surrogate) map[domain.Surrogate]bool {
	acc := map[domain.Surrogate]bool{root: true}
	for changed := true; changed; {
		changed = false
		for sur, o := range m.objects {
			if acc[sur] {
				continue
			}
			if o.Parent != 0 && acc[o.Parent] {
				acc[sur] = true
				changed = true
				continue
			}
			if o.IsRel && participantsTouch(o.Participants, acc) {
				acc[sur] = true
				changed = true
			}
		}
	}
	return acc
}

func participantsTouch(parts map[string]domain.Value, acc map[domain.Surrogate]bool) bool {
	var touch func(v domain.Value) bool
	touch = func(v domain.Value) bool {
		switch x := v.(type) {
		case domain.Ref:
			return acc[domain.Surrogate(x)]
		case *domain.Set:
			for _, e := range x.Elems() {
				if touch(e) {
					return true
				}
			}
		}
		return false
	}
	for _, v := range parts {
		if touch(v) {
			return true
		}
	}
	return false
}

// visit cycle-breaks the notification closure per (transmitter, member).
type visit struct {
	transmitter domain.Surrogate
	member      string
}

// notify mirrors the store's update fan-out: every binding whose
// transmitter changed a permeable member bumps TransmitterUpdates and
// raises LastUpdateSeq, transitively through the inheritor. The bumps
// commute, so scan order is irrelevant to the final state.
func (m *Model) notify(transmitter domain.Surrogate, member string, seq uint64, seen map[visit]bool) {
	k := visit{transmitter, member}
	if seen[k] {
		return
	}
	seen[k] = true
	for _, b := range m.bindings {
		if b.Transmitter != transmitter {
			continue
		}
		rel, ok := m.cat.InherRelType(b.RelType)
		if !ok || !rel.Inherits(member) {
			continue
		}
		b.Updates++
		if int64(seq) > b.LastSeq {
			b.LastSeq = int64(seq)
		}
		m.notify(b.Inheritor, member, seq, seen)
	}
}
