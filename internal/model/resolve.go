package model

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
)

// ResolveAttr reads an attribute of a non-relationship object with the
// paper's resolution rule, by brute force: own attributes come from the
// object, inherited ones follow the binding chain to the live
// transmitter, or read null while unbound.
func (m *Model) ResolveAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	o, ok := m.objects[sur]
	if !ok {
		return nil, fmt.Errorf("model: no object %s", sur)
	}
	if name == "Surrogate" {
		return domain.Ref(sur), nil
	}
	if o.IsRel {
		return nil, fmt.Errorf("model: %s is a relationship object", sur)
	}
	cur := o
	for hops := 0; ; hops++ {
		if hops > len(m.bindings)+1 {
			return nil, fmt.Errorf("model: inheritance cycle at %s", cur.Sur)
		}
		eff, ok := m.cat.Effective(cur.TypeName)
		if !ok {
			return nil, fmt.Errorf("model: no effective type %q", cur.TypeName)
		}
		a, ok := eff.Attr(name)
		if !ok {
			return nil, fmt.Errorf("model: %s has no attribute %q", cur.TypeName, name)
		}
		if !a.Inherited() {
			if v, ok := cur.Attrs[name]; ok {
				return v, nil
			}
			return domain.NullValue, nil
		}
		b := m.bindingOf(cur.Sur, a.Via)
		if b == nil {
			return domain.NullValue, nil
		}
		t, ok := m.objects[b.Transmitter]
		if !ok {
			return domain.NullValue, nil
		}
		cur = t
	}
}

// ResolveMembers lists the members of a local subclass or relationship
// subclass of a non-relationship object, following inheritance for
// subclasses the object's type inherits. Membership is reconstructed by
// scanning parent links; creation order equals ascending surrogate order,
// which removal preserves.
func (m *Model) ResolveMembers(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	o, ok := m.objects[sur]
	if !ok {
		return nil, fmt.Errorf("model: no object %s", sur)
	}
	if o.IsRel {
		return nil, fmt.Errorf("model: %s is a relationship object", sur)
	}
	// Sub-relationship members shadow subclass resolution, as in
	// membersLocked: a materialized subrel class answers directly.
	if rels := m.childrenOf(sur, name, true); len(rels) != 0 {
		return rels, nil
	}
	cur := o
	for hops := 0; ; hops++ {
		if hops > len(m.bindings)+1 {
			return nil, fmt.Errorf("model: inheritance cycle at %s", cur.Sur)
		}
		eff, ok := m.cat.Effective(cur.TypeName)
		if !ok {
			return nil, fmt.Errorf("model: no effective type %q", cur.TypeName)
		}
		sd, ok := eff.SubclassByName(name)
		if !ok {
			for _, sr := range eff.Type.SubRels {
				if sr.Name == name {
					return nil, nil // declared sub-relationship, no members
				}
			}
			return nil, fmt.Errorf("model: %s has no subclass %q", cur.TypeName, name)
		}
		if !sd.Inherited() {
			return m.childrenOf(cur.Sur, name, false), nil
		}
		b := m.bindingOf(cur.Sur, sd.Via)
		if b == nil {
			return nil, nil
		}
		t, ok := m.objects[b.Transmitter]
		if !ok {
			return nil, nil
		}
		cur = t
	}
}

func (m *Model) childrenOf(parent domain.Surrogate, sub string, rel bool) []domain.Surrogate {
	var out []domain.Surrogate
	for sur, o := range m.objects {
		if o.Parent == parent && o.ParentSub == sub && o.IsRel == rel {
			out = append(out, sur)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
