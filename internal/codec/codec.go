// Package codec implements the binary serialization used by the
// persistence layer: a tag-prefixed, varint-based encoding for
// domain.Value and length-prefixed helpers for strings, surrogates and
// maps. The encoding is self-describing and stable across releases
// (tags are append-only).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"cadcam/internal/domain"
)

// Value tags. Append-only: never renumber.
const (
	tagNull   byte = 0
	tagInt    byte = 1
	tagReal   byte = 2
	tagStr    byte = 3
	tagBool   byte = 4
	tagSym    byte = 5
	tagRef    byte = 6
	tagRec    byte = 7
	tagList   byte = 8
	tagSet    byte = 9
	tagMatrix byte = 10
)

// ErrCorrupt reports undecodable input.
var ErrCorrupt = errors.New("codec: corrupt data")

// Buf is an append-only encoder buffer.
type Buf struct {
	b []byte
}

// Bytes returns the encoded bytes.
func (e *Buf) Bytes() []byte { return e.b }

// Len returns the encoded size so far.
func (e *Buf) Len() int { return len(e.b) }

// Byte appends a raw byte.
func (e *Buf) Byte(b byte) { e.b = append(e.b, b) }

// Uvarint appends an unsigned varint.
func (e *Buf) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a signed varint.
func (e *Buf) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Str appends a length-prefixed string.
func (e *Buf) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bool appends a boolean byte.
func (e *Buf) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Sur appends a surrogate.
func (e *Buf) Sur(s domain.Surrogate) { e.Uvarint(uint64(s)) }

// Value appends an encoded value.
func (e *Buf) Value(v domain.Value) {
	switch x := v.(type) {
	case nil:
		e.Byte(tagNull)
	case domain.Int:
		e.Byte(tagInt)
		e.Varint(int64(x))
	case domain.Rl:
		e.Byte(tagReal)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(x)))
		e.b = append(e.b, buf[:]...)
	case domain.Str:
		e.Byte(tagStr)
		e.Str(string(x))
	case domain.Bool:
		e.Byte(tagBool)
		e.Bool(bool(x))
	case domain.Sym:
		e.Byte(tagSym)
		e.Str(string(x))
	case domain.Ref:
		e.Byte(tagRef)
		e.Uvarint(uint64(x))
	case *domain.Rec:
		e.Byte(tagRec)
		e.Uvarint(uint64(x.Len()))
		for i := 0; i < x.Len(); i++ {
			e.Str(x.FieldName(i))
			e.Value(x.FieldValue(i))
		}
	case *domain.List:
		e.Byte(tagList)
		e.Uvarint(uint64(x.Len()))
		for _, el := range x.Elems() {
			e.Value(el)
		}
	case *domain.Set:
		e.Byte(tagSet)
		e.Uvarint(uint64(x.Len()))
		for _, el := range x.Elems() {
			e.Value(el)
		}
	case *domain.Matrix:
		e.Byte(tagMatrix)
		e.Uvarint(uint64(x.Rows()))
		e.Uvarint(uint64(x.Cols()))
		for r := 0; r < x.Rows(); r++ {
			for c := 0; c < x.Cols(); c++ {
				e.Value(x.At(r, c))
			}
		}
	default:
		if domain.IsNull(v) {
			e.Byte(tagNull)
			return
		}
		panic(fmt.Sprintf("codec: unencodable value %T", v))
	}
}

// ValueMap appends a name->value map in sorted key order.
func (e *Buf) ValueMap(m map[string]domain.Value) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Value(m[k])
	}
}

// Surs appends a slice of surrogates.
func (e *Buf) Surs(s []domain.Surrogate) {
	e.Uvarint(uint64(len(s)))
	for _, x := range s {
		e.Sur(x)
	}
}

// Reader decodes what Buf encodes.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader wraps encoded bytes.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error.
func (r *Reader) Err() error { return r.err }

// Rest reports how many undecoded bytes remain.
func (r *Reader) Rest() int { return len(r.b) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrCorrupt, r.pos)
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.pos]
	r.pos++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Sur reads a surrogate.
func (r *Reader) Sur() domain.Surrogate { return domain.Surrogate(r.Uvarint()) }

// Value reads an encoded value.
func (r *Reader) Value() domain.Value {
	if r.err != nil {
		return domain.NullValue
	}
	switch tag := r.Byte(); tag {
	case tagNull:
		return domain.NullValue
	case tagInt:
		return domain.Int(r.Varint())
	case tagReal:
		if r.pos+8 > len(r.b) {
			r.fail()
			return domain.NullValue
		}
		bits := binary.LittleEndian.Uint64(r.b[r.pos:])
		r.pos += 8
		return domain.Rl(math.Float64frombits(bits))
	case tagStr:
		return domain.Str(r.Str())
	case tagBool:
		return domain.Bool(r.Bool())
	case tagSym:
		return domain.Sym(r.Str())
	case tagRef:
		return domain.Ref(r.Uvarint())
	case tagRec:
		n := r.Uvarint()
		if r.err != nil || n > uint64(r.Rest()) {
			r.fail()
			return domain.NullValue
		}
		pairs := make([]any, 0, 2*n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			pairs = append(pairs, r.Str(), r.Value())
		}
		if r.err != nil {
			return domain.NullValue
		}
		return domain.NewRec(pairs...)
	case tagList, tagSet:
		n := r.Uvarint()
		if r.err != nil || n > uint64(r.Rest()) {
			r.fail()
			return domain.NullValue
		}
		elems := make([]domain.Value, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			elems = append(elems, r.Value())
		}
		if r.err != nil {
			return domain.NullValue
		}
		if tag == tagList {
			return domain.NewList(elems...)
		}
		return domain.NewSet(elems...)
	case tagMatrix:
		rows, cols := r.Uvarint(), r.Uvarint()
		// rows*cols wraps in uint64 for adversarial inputs (2^32 × 2^32
		// → 0), which would slip a phantom huge matrix past a
		// product-only bound; `rows > rest/cols` is the same comparison
		// without the multiply. Zero-dimension matrices are legal and
		// carry no cells, but their dimensions still must fit an int.
		const maxDim = 1<<31 - 1
		rest := uint64(r.Rest())
		if r.err != nil || rows > maxDim || cols > maxDim ||
			(rows != 0 && cols != 0 && rows > rest/cols) {
			r.fail()
			return domain.NullValue
		}
		cells := make([]domain.Value, 0, rows*cols)
		for i := uint64(0); i < rows*cols && r.err == nil; i++ {
			cells = append(cells, r.Value())
		}
		if r.err != nil {
			return domain.NullValue
		}
		return domain.NewMatrix(int(rows), int(cols), cells...)
	default:
		r.fail()
		return domain.NullValue
	}
}

// ValueMap reads a name->value map.
func (r *Reader) ValueMap() map[string]domain.Value {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(r.Rest()) {
		r.fail()
		return nil
	}
	m := make(map[string]domain.Value, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.Str()
		m[k] = r.Value()
	}
	return m
}

// Surs reads a slice of surrogates; empty decodes as nil.
func (r *Reader) Surs() []domain.Surrogate {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Rest()) {
		r.fail()
		return nil
	}
	out := make([]domain.Surrogate, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.Sur())
	}
	return out
}
