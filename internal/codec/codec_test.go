package codec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cadcam/internal/domain"
)

func roundTrip(t *testing.T, v domain.Value) domain.Value {
	t.Helper()
	var e Buf
	e.Value(v)
	r := NewReader(e.Bytes())
	got := r.Value()
	if err := r.Err(); err != nil {
		t.Fatalf("decode %s: %v", v, err)
	}
	if r.Rest() != 0 {
		t.Fatalf("decode %s: %d trailing bytes", v, r.Rest())
	}
	return got
}

func TestValueRoundTrip(t *testing.T) {
	values := []domain.Value{
		domain.NullValue,
		domain.Int(0),
		domain.Int(-12345),
		domain.Int(1 << 60),
		domain.Rl(3.25),
		domain.Rl(-0.0),
		domain.Str(""),
		domain.Str("weight carrying structure"),
		domain.Bool(true),
		domain.Bool(false),
		domain.Sym("NAND"),
		domain.Ref(42),
		domain.NewRec("X", domain.Int(1), "Y", domain.Int(2)),
		domain.NewRec(),
		domain.NewList(domain.Int(1), domain.Str("a"), domain.NullValue),
		domain.NewList(),
		domain.NewSet(domain.Int(1), domain.Int(2)),
		domain.NewSet(),
		domain.NewMatrix(2, 2, domain.Bool(true), domain.Bool(false), domain.Bool(false), domain.Bool(true)),
		domain.NewMatrix(0, 0),
		domain.NewRec("nested", domain.NewList(domain.NewSet(domain.Sym("IN")))),
	}
	for _, v := range values {
		got := roundTrip(t, v)
		if !got.Equal(v) {
			t.Errorf("round trip: %s != %s", got, v)
		}
	}
}

func TestScalarHelpers(t *testing.T) {
	var e Buf
	e.Uvarint(300)
	e.Varint(-7)
	e.Str("hagen")
	e.Bool(true)
	e.Sur(99)
	e.Surs([]domain.Surrogate{1, 2, 3})
	e.ValueMap(map[string]domain.Value{"b": domain.Int(2), "a": domain.Int(1)})

	r := NewReader(e.Bytes())
	if r.Uvarint() != 300 {
		t.Error("uvarint")
	}
	if r.Varint() != -7 {
		t.Error("varint")
	}
	if r.Str() != "hagen" {
		t.Error("str")
	}
	if !r.Bool() {
		t.Error("bool")
	}
	if r.Sur() != 99 {
		t.Error("sur")
	}
	if got := r.Surs(); len(got) != 3 || got[2] != 3 {
		t.Errorf("surs = %v", got)
	}
	m := r.ValueMap()
	if len(m) != 2 || !m["a"].Equal(domain.Int(1)) {
		t.Errorf("map = %v", m)
	}
	if r.Err() != nil || r.Rest() != 0 {
		t.Errorf("err=%v rest=%d", r.Err(), r.Rest())
	}
}

func TestEmptyMapRoundTrip(t *testing.T) {
	var e Buf
	e.ValueMap(nil)
	r := NewReader(e.Bytes())
	if m := r.ValueMap(); m != nil {
		t.Errorf("empty map = %v", m)
	}
	var e2 Buf
	e2.Surs(nil)
	r2 := NewReader(e2.Bytes())
	if s := r2.Surs(); s != nil {
		t.Errorf("empty surs = %v", s)
	}
}

func TestCorruptInput(t *testing.T) {
	bad := [][]byte{
		{},             // empty
		{255},          // unknown tag
		{1},            // int tag without payload
		{3, 10, 'a'},   // string shorter than its length
		{7, 200},       // record with absurd field count
		{8, 200},       // list with absurd length
		{10, 200, 200}, // matrix with absurd shape
		{2, 1, 2, 3},   // real with short payload
	}
	for _, b := range bad {
		r := NewReader(b)
		r.Value()
		if r.Err() == nil {
			t.Errorf("input % x should fail", b)
		}
	}
	// Truncated varint.
	r := NewReader([]byte{0x80})
	r.Uvarint()
	if r.Err() == nil {
		t.Error("truncated varint should fail")
	}
	// Reads after an error return zero values, not panic.
	if r.Str() != "" || r.Bool() || r.Sur() != 0 {
		t.Error("post-error reads should be zero")
	}
	if r.ValueMap() != nil || r.Surs() != nil {
		t.Error("post-error composite reads should be nil")
	}
}

// genValue builds a random value of bounded depth.
func genValue(r *rand.Rand, depth int) domain.Value {
	if depth <= 0 {
		switch r.Intn(7) {
		case 0:
			return domain.Int(r.Int63() - (1 << 62))
		case 1:
			return domain.Rl(r.NormFloat64() * 1e6)
		case 2:
			buf := make([]byte, r.Intn(12))
			for i := range buf {
				buf[i] = byte('a' + r.Intn(26))
			}
			return domain.Str(string(buf))
		case 3:
			return domain.Bool(r.Intn(2) == 0)
		case 4:
			return domain.Sym("SYM")
		case 5:
			return domain.Ref(domain.Surrogate(r.Uint64()))
		default:
			return domain.NullValue
		}
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		elems := make([]domain.Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return domain.NewList(elems...)
	case 1:
		n := r.Intn(4)
		elems := make([]domain.Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return domain.NewSet(elems...)
	case 2:
		return domain.NewRec("a", genValue(r, depth-1), "b", genValue(r, depth-1))
	default:
		return domain.NewMatrix(1, 2, genValue(r, depth-1), genValue(r, depth-1))
	}
}

type anyVal struct{ V domain.Value }

func (anyVal) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(anyVal{V: genValue(r, 3)})
}

// Property: every value round-trips bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a anyVal) bool {
		var e Buf
		e.Value(a.V)
		r := NewReader(e.Bytes())
		got := r.Value()
		return r.Err() == nil && r.Rest() == 0 && got.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary noise never panics.
func TestQuickNoiseNeverPanics(t *testing.T) {
	f := func(noise []byte) bool {
		r := NewReader(noise)
		_ = r.Value()
		_ = r.ValueMap()
		_ = r.Surs()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
