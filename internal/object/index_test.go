package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func surs(ss ...domain.Surrogate) []domain.Surrogate { return ss }

func sameSurs(a, b []domain.Surrogate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func probe(t *testing.T, s *Store, cls, attr string, lo, hi domain.Value) []domain.Surrogate {
	t.Helper()
	out, ok := s.IndexProbe(cls, attr, lo, hi)
	if !ok {
		t.Fatalf("IndexProbe(%s.%s): no usable index", cls, attr)
	}
	return out
}

// TestIndexOwnWrites drives the SetAttr hook: create-before-write and
// build-from-existing paths, bucket moves on overwrite, removal on null.
func TestIndexOwnWrites(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	g1 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	g2 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	set(t, s, g1, "Width", domain.Int(4))

	// Build path: g1 already has a value when the index is created.
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("gates_w", "gates", "Width"); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("duplicate index: %v", err)
	}
	if got := probe(t, s, "gates", "Width", domain.Int(4), domain.Int(4)); !sameSurs(got, surs(g1)) {
		t.Fatalf("build path: %v", got)
	}

	// Maintenance path: writes after creation.
	set(t, s, g2, "Width", domain.Int(7))
	if got := probe(t, s, "gates", "Width", domain.Int(7), domain.Int(7)); !sameSurs(got, surs(g2)) {
		t.Fatalf("maintained write: %v", got)
	}
	// Range probe spans both.
	if got := probe(t, s, "gates", "Width", domain.Int(0), nil); !sameSurs(got, surs(g1, g2)) {
		t.Fatalf("range: %v", got)
	}
	// Overwrite moves buckets.
	set(t, s, g1, "Width", domain.Int(7))
	if got := probe(t, s, "gates", "Width", domain.Int(4), domain.Int(4)); len(got) != 0 {
		t.Fatalf("stale bucket after overwrite: %v", got)
	}
	if got := probe(t, s, "gates", "Width", domain.Int(7), domain.Int(7)); !sameSurs(got, surs(g1, g2)) {
		t.Fatalf("moved bucket: %v", got)
	}
	// Cross-numeric equality: an Int bound finds Rl-valued rows and vice
	// versa (Length is Integer; use estimate over the same key space).
	if est := s.IndexEstimate("gates", "Width", domain.Rl(7), domain.Rl(7)); est != 2 {
		t.Fatalf("real-bound estimate = %d, want 2", est)
	}
	// Null deletes the posting.
	set(t, s, g1, "Width", domain.NullValue)
	if got := probe(t, s, "gates", "Width", nil, nil); !sameSurs(got, surs(g2)) {
		t.Fatalf("null should unindex: %v", got)
	}
	// Delete removes the last posting.
	if err := s.Delete(g2); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, s, "gates", "Width", nil, nil); len(got) != 0 {
		t.Fatalf("delete should unindex: %v", got)
	}
}

// TestIndexInheritedValues drives the notifier and bind/unbind hooks: an
// index over an attribute the members inherit must track transmitter
// writes, binds and unbinds.
func TestIndexInheritedValues(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("impls", paperschema.TypeGateImplementation); err != nil {
		t.Fatal(err)
	}
	i1 := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, "impls"))
	i2 := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, "impls"))
	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	set(t, s, iface, "Length", domain.Int(4))

	if err := s.CreateIndex("impls_len", "impls", "Length"); err != nil {
		t.Fatal(err)
	}
	// Unbound inheritors have null Length: nothing indexed.
	if got := probe(t, s, "impls", "Length", nil, nil); len(got) != 0 {
		t.Fatalf("unbound inheritors indexed: %v", got)
	}
	// Bind recomputes the inheritor's entry.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, i1, iface); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, i2, iface); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, s, "impls", "Length", domain.Int(4), domain.Int(4)); !sameSurs(got, surs(i1, i2)) {
		t.Fatalf("bind did not index inherited values: %v", got)
	}
	// A transmitter write re-indexes every inheritor (notifier hook).
	set(t, s, iface, "Length", domain.Int(9))
	if got := probe(t, s, "impls", "Length", domain.Int(9), domain.Int(9)); !sameSurs(got, surs(i1, i2)) {
		t.Fatalf("transmitter write not propagated: %v", got)
	}
	if got := probe(t, s, "impls", "Length", domain.Int(4), domain.Int(4)); len(got) != 0 {
		t.Fatalf("stale inherited posting: %v", got)
	}
	// Unbind drops the inherited value again.
	if err := s.Unbind(paperschema.RelAllOfGateInterface, i1); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, s, "impls", "Length", nil, nil); !sameSurs(got, surs(i2)) {
		t.Fatalf("unbind not reflected: %v", got)
	}
}

// TestIndexSnapshotProbe pins a snapshot and checks index reads at the
// pin stay put while the live index moves on.
func TestIndexSnapshotProbe(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	g1 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	g2 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	set(t, s, g1, "Width", domain.Int(1))
	set(t, s, g2, "Width", domain.Int(2))

	sn := s.Snapshot()
	defer sn.Release()

	// Mutate after the pin: move g1, delete g2.
	set(t, s, g1, "Width", domain.Int(5))
	if err := s.Delete(g2); err != nil {
		t.Fatal(err)
	}

	got, ok := sn.IndexProbe("gates", "Width", domain.Int(1), domain.Int(2))
	if !ok || !sameSurs(got, surs(g1, g2)) {
		t.Fatalf("snapshot probe = %v, %v; want both at pre-mutation values", got, ok)
	}
	if got, _ := sn.IndexProbe("gates", "Width", domain.Int(5), domain.Int(5)); len(got) != 0 {
		t.Fatalf("snapshot sees post-pin write: %v", got)
	}
	if live := probe(t, s, "gates", "Width", nil, nil); !sameSurs(live, surs(g1)) {
		t.Fatalf("live probe = %v", live)
	}

	// An index created after the pin is invisible to it: it was not
	// maintained across the pin's window.
	set(t, s, g1, "Length", domain.Int(3))
	if err := s.CreateIndex("gates_l", "gates", "Length"); err != nil {
		t.Fatal(err)
	}
	if _, ok := sn.IndexProbe("gates", "Length", nil, nil); ok {
		t.Fatal("snapshot can use an index created after the pin")
	}
	if len(sn.Indexes()) != 1 {
		t.Fatalf("snapshot index defs = %v", sn.Indexes())
	}
}

// TestIndexDropAndSweep checks drop semantics with and without pins, and
// that the sweeper reclaims interval chains and dropped definitions.
func TestIndexDropAndSweep(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	g := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	set(t, s, g, "Width", domain.Int(1))

	sn := s.Snapshot()
	if err := s.DropIndex("gates_w"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropIndex("gates_w"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	// Live probes lose the index immediately; the pin keeps it.
	if _, ok := s.IndexProbe("gates", "Width", nil, nil); ok {
		t.Fatal("dropped index still live")
	}
	if got, ok := sn.IndexProbe("gates", "Width", nil, nil); !ok || !sameSurs(got, surs(g)) {
		t.Fatalf("pinned probe after drop = %v, %v", got, ok)
	}
	sn.Release()
	s.SweepVersions()
	if n := len(s.Indexes()); n != 0 {
		t.Fatalf("%d index defs survive sweep", n)
	}
	// Recreating under the same name works after the drop.
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, s, "gates", "Width", nil, nil); !sameSurs(got, surs(g)) {
		t.Fatalf("recreated index: %v", got)
	}
}

// TestIndexExportImport round-trips index definitions through StoreState
// and checks the imported store rebuilds the postings.
func TestIndexExportImport(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	g1 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	g2 := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
	set(t, s, g1, "Width", domain.Int(4))
	set(t, s, g2, "Width", domain.Int(6))
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}

	st := s.Export()
	if len(st.Indexes) != 1 || st.Indexes[0].Name != "gates_w" {
		t.Fatalf("exported indexes = %v", st.Indexes)
	}
	s2, err := NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Import(st); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, s2, "gates", "Width", domain.Int(5), nil); !sameSurs(got, surs(g2)) {
		t.Fatalf("imported probe: %v", got)
	}
	// Maintenance continues after import.
	set(t, s2, g1, "Width", domain.Int(9))
	if got := probe(t, s2, "gates", "Width", domain.Int(5), nil); !sameSurs(got, surs(g1, g2)) {
		t.Fatalf("post-import maintenance: %v", got)
	}
}

// TestIndexEstimateAndStats sanity-checks the planner's costing probe.
func TestIndexEstimateAndStats(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("gates", paperschema.TypeSimpleGate); err != nil {
		t.Fatal(err)
	}
	var gs []domain.Surrogate
	for i := 0; i < 10; i++ {
		g := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, "gates"))
		gs = append(gs, g)
	}
	if err := s.CreateIndex("gates_w", "gates", "Width"); err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		set(t, s, g, "Width", domain.Int(int64(i%5)))
	}
	if est := s.IndexEstimate("gates", "Width", domain.Int(2), domain.Int(2)); est != 2 {
		t.Fatalf("point estimate = %d, want 2", est)
	}
	if est := s.IndexEstimate("gates", "Width", domain.Int(3), nil); est != 4 {
		t.Fatalf("range estimate = %d, want 4", est)
	}
	if est := s.IndexEstimate("gates", "Nope", nil, nil); est != -1 {
		t.Fatalf("missing index estimate = %d, want -1", est)
	}
}
