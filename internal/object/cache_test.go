package object

import (
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// TestRouteCacheHitsAndLiveness pins down the cache contract: the second
// read of an inherited attribute is a route hit, and a plain transmitter
// write neither invalidates the cache nor goes stale through it.
func TestRouteCacheHitsAndLiveness(t *testing.T) {
	s := gateStore(t)
	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	set(t, s, iface, "Length", domain.Int(9))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	get(t, s, impl, "Length") // miss: memoizes the route
	base := s.Stats()
	if base.Misses == 0 {
		t.Fatal("first inherited read should be a cache miss")
	}

	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(9)) {
		t.Fatalf("inherited read: %v", v)
	}
	after := s.Stats()
	if after.Hits != base.Hits+1 {
		t.Fatalf("second read should hit: hits %d -> %d", base.Hits, after.Hits)
	}
	if after.Epoch != base.Epoch {
		t.Fatalf("read bumped the epoch: %d -> %d", base.Epoch, after.Epoch)
	}

	// A plain write must not invalidate, and must be visible through the
	// already-memoized route (routes cache the path, never the value).
	set(t, s, iface, "Length", domain.Int(11))
	if ep := s.Stats().Epoch; ep != after.Epoch {
		t.Fatalf("SetAttr bumped the epoch: %d -> %d", after.Epoch, ep)
	}
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(11)) {
		t.Fatalf("cached route served a stale value: %v", v)
	}
}

// TestRouteCacheInvalidation walks the structural operations that must
// bump the epoch, checking each actually changes what a cached read
// resolves to.
func TestRouteCacheInvalidation(t *testing.T) {
	s := gateStore(t)
	a := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	b := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	set(t, s, a, "Length", domain.Int(1))
	set(t, s, b, "Length", domain.Int(2))

	// Null route while unbound.
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Fatalf("unbound read: %v", v)
	}
	ep0 := s.Stats().Epoch

	// Bind invalidates the memoized null route.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, a); err != nil {
		t.Fatal(err)
	}
	if ep := s.Stats().Epoch; ep == ep0 {
		t.Fatal("Bind did not bump the epoch")
	}
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(1)) {
		t.Fatalf("after bind: %v", v)
	}

	// Rebinding to a different transmitter redirects the route.
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, b); err != nil {
		t.Fatal(err)
	}
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(2)) {
		t.Fatalf("after rebind: %v", v)
	}

	// Deleting the transmitter (DeleteUnbind) kills the route.
	s.SetDeletePolicy(DeleteUnbind)
	epDel := s.Stats().Epoch
	if err := s.Delete(b); err != nil {
		t.Fatal(err)
	}
	if ep := s.Stats().Epoch; ep == epDel {
		t.Fatal("Delete did not bump the epoch")
	}
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Fatalf("route survived transmitter delete: %v", v)
	}
}

// TestRouteCacheMembersInvalidation covers the subclass-route cache: a
// memoized membership route must follow rebinds and reflect live adds.
func TestRouteCacheMembersInvalidation(t *testing.T) {
	s := gateStore(t)
	rootI := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	addPin(t, s, rootI, "IN", 1)
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if pins, err := s.Members(impl, "Pins"); err != nil || len(pins) != 1 {
		t.Fatalf("members: %v (%v)", pins, err)
	}
	// Adding a pin is a membership change on the live class — visible
	// through the cached two-hop route without any epoch bump.
	addPin(t, s, rootI, "IN", 2)
	if pins, err := s.Members(impl, "Pins"); err != nil || len(pins) != 2 {
		t.Fatalf("after add: %v (%v)", pins, err)
	}
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if pins, err := s.Members(impl, "Pins"); err != nil || len(pins) != 0 {
		t.Fatalf("route survived unbind: %v (%v)", pins, err)
	}
}
