package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
	"cadcam/internal/schema"
)

func gateStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(paperschema.MustGates())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func steelStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(paperschema.MustSteel())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustSur adapts the (Surrogate, error) return shape for call chaining:
// mustSur(t)(s.NewObject(...)).
func mustSur(t *testing.T) func(domain.Surrogate, error) domain.Surrogate {
	return func(sur domain.Surrogate, err error) domain.Surrogate {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return sur
	}
}

func set(t *testing.T, s *Store, sur domain.Surrogate, name string, v domain.Value) {
	t.Helper()
	if err := s.SetAttr(sur, name, v); err != nil {
		t.Fatalf("SetAttr(%s, %s): %v", sur, name, err)
	}
}

func get(t *testing.T, s *Store, sur domain.Surrogate, name string) domain.Value {
	t.Helper()
	v, err := s.GetAttr(sur, name)
	if err != nil {
		t.Fatalf("GetAttr(%s, %s): %v", sur, name, err)
	}
	return v
}

// addPin creates a PinType subobject with the given direction and id.
func addPin(t *testing.T, s *Store, owner domain.Surrogate, inOut string, id int64) domain.Surrogate {
	t.Helper()
	pin := mustSur(t)(s.NewSubobject(owner, "Pins"))
	set(t, s, pin, "InOut", domain.Sym(inOut))
	set(t, s, pin, "PinId", domain.Int(id))
	return pin
}

func TestNewStoreRequiresValidatedCatalog(t *testing.T) {
	if _, err := NewStore(schema.NewCatalog()); err == nil {
		t.Fatal("unvalidated catalog accepted")
	}
}

func TestObjectLifecycle(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Interfaces", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	sur := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, "Interfaces"))
	if !s.Exists(sur) {
		t.Fatal("object should exist")
	}
	if tn, _ := s.TypeOf(sur); tn != paperschema.TypeGateInterface {
		t.Errorf("TypeOf = %q", tn)
	}
	members, err := s.Class("Interfaces")
	if err != nil || len(members) != 1 || members[0] != sur {
		t.Errorf("class members = %v, %v", members, err)
	}
	// Unset attribute reads null.
	if v := get(t, s, sur, "Length"); !domain.IsNull(v) {
		t.Errorf("unset attr = %s", v)
	}
	set(t, s, sur, "Length", domain.Int(4))
	if v := get(t, s, sur, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("Length = %s", v)
	}
	// Setting null clears.
	set(t, s, sur, "Length", domain.NullValue)
	if v := get(t, s, sur, "Length"); !domain.IsNull(v) {
		t.Errorf("cleared attr = %s", v)
	}
	// Surrogate pseudo-attribute.
	if v := get(t, s, sur, "Surrogate"); !v.Equal(domain.Ref(sur)) {
		t.Errorf("Surrogate = %s", v)
	}
	if err := s.Delete(sur); err != nil {
		t.Fatal(err)
	}
	if s.Exists(sur) {
		t.Error("object should be gone")
	}
	members, _ = s.Class("Interfaces")
	if len(members) != 0 {
		t.Error("class should forget deleted member")
	}
}

func TestTypeAndClassErrors(t *testing.T) {
	s := gateStore(t)
	if _, err := s.NewObject("Ghost", ""); !errors.Is(err, ErrNoSuchType) {
		t.Errorf("unknown type: %v", err)
	}
	if _, err := s.NewObject(paperschema.TypePin, "Ghost"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("unknown class: %v", err)
	}
	if err := s.DefineClass("", ""); err == nil {
		t.Error("empty class name accepted")
	}
	if err := s.DefineClass("C", "Ghost"); !errors.Is(err, ErrNoSuchType) {
		t.Errorf("unknown elem type: %v", err)
	}
	if err := s.DefineClass("C", paperschema.TypePin); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineClass("C", ""); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := s.NewObject(paperschema.TypeGateInterface, "C"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("class elem type mismatch: %v", err)
	}
	if _, err := s.Class("Ghost"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("class lookup: %v", err)
	}
	if _, err := s.GetAttr(999, "X"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("get on missing object: %v", err)
	}
	if err := s.SetAttr(999, "X", domain.Int(1)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("set on missing object: %v", err)
	}
	if err := s.Delete(999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("delete missing: %v", err)
	}
	if _, err := s.NewSubobject(999, "Pins"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("subobject of missing: %v", err)
	}
}

func TestAttributeValidation(t *testing.T) {
	s := gateStore(t)
	g := mustSur(t)(s.NewObject(paperschema.TypeElementaryGate, ""))
	if err := s.SetAttr(g, "Length", domain.Str("four")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("wrong domain: %v", err)
	}
	if err := s.SetAttr(g, "Nonexistent", domain.Int(1)); !errors.Is(err, ErrNoSuchAttribute) {
		t.Errorf("unknown attr: %v", err)
	}
	if err := s.SetAttr(g, "Function", domain.Sym("XNOR")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("undeclared enum symbol: %v", err)
	}
	set(t, s, g, "Function", domain.Sym("NAND"))
	set(t, s, g, "GatePosition", domain.NewRec("X", domain.Int(1), "Y", domain.Int(2)))
}

func TestSimpleGateConstraints(t *testing.T) {
	// E1 prelude: the paper's SimpleGate with record-set pins.
	s := gateStore(t)
	g := mustSur(t)(s.NewObject(paperschema.TypeSimpleGate, ""))
	set(t, s, g, "Function", domain.Sym("AND"))
	set(t, s, g, "Pins", domain.NewSet(
		domain.NewRec("PinId", domain.Int(1), "InOut", domain.Sym("IN")),
		domain.NewRec("PinId", domain.Int(2), "InOut", domain.Sym("IN")),
		domain.NewRec("PinId", domain.Int(3), "InOut", domain.Sym("OUT")),
	))
	if v, err := s.CheckConstraints(g); err != nil || len(v) != 0 {
		t.Fatalf("valid gate: violations=%v err=%v", v, err)
	}
	// Remove an IN pin: the 2-IN constraint fails.
	set(t, s, g, "Pins", domain.NewSet(
		domain.NewRec("PinId", domain.Int(1), "InOut", domain.Sym("IN")),
		domain.NewRec("PinId", domain.Int(3), "InOut", domain.Sym("OUT")),
	))
	v, _ := s.CheckConstraints(g)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Object != g || v[0].Reason != "" {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestSubobjectsAndConstraints(t *testing.T) {
	s := gateStore(t)
	g := mustSur(t)(s.NewObject(paperschema.TypeElementaryGate, ""))
	addPin(t, s, g, "IN", 1)
	addPin(t, s, g, "IN", 2)
	out := addPin(t, s, g, "OUT", 3)
	if v, err := s.CheckConstraints(g); err != nil || len(v) != 0 {
		t.Fatalf("violations=%v err=%v", v, err)
	}
	members, err := s.Members(g, "Pins")
	if err != nil || len(members) != 3 {
		t.Fatalf("members = %v, %v", members, err)
	}
	po, _ := s.Get(out)
	if po.Parent() != g || po.ParentSubclass() != "Pins" {
		t.Errorf("parent linkage: %v %q", po.Parent(), po.ParentSubclass())
	}
	// Unknown subclass.
	if _, err := s.NewSubobject(g, "Ghost"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("unknown subclass: %v", err)
	}
	if _, err := s.Members(g, "Ghost"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("members of unknown subclass: %v", err)
	}
	// Deleting a pin breaks the constraint and cascades out of the class.
	if err := s.Delete(out); err != nil {
		t.Fatal(err)
	}
	members, _ = s.Members(g, "Pins")
	if len(members) != 2 {
		t.Errorf("members after delete = %v", members)
	}
	v, _ := s.CheckConstraints(g)
	if len(v) != 1 {
		t.Errorf("OUT-pin constraint should now fail: %v", v)
	}
}

func TestCascadeDelete(t *testing.T) {
	s := gateStore(t)
	g := mustSur(t)(s.NewObject(paperschema.TypeElementaryGate, ""))
	p1 := addPin(t, s, g, "IN", 1)
	p2 := addPin(t, s, g, "IN", 2)
	p3 := addPin(t, s, g, "OUT", 3)
	before := s.Len()
	if before != 4 {
		t.Fatalf("Len = %d", before)
	}
	if err := s.Delete(g); err != nil {
		t.Fatal(err)
	}
	for _, sur := range []domain.Surrogate{g, p1, p2, p3} {
		if s.Exists(sur) {
			t.Errorf("%s should be cascade-deleted", sur)
		}
	}
	if s.Len() != 0 {
		t.Errorf("Len after cascade = %d", s.Len())
	}
}
