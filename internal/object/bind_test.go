package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func TestBindValidation(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	pin := mustSur(t)(s.NewObject(paperschema.TypePin, ""))

	// Unknown relationship type.
	if _, err := s.Bind("Ghost", impl, iface); !errors.Is(err, ErrNoSuchType) {
		t.Errorf("unknown rel: %v", err)
	}
	// Wrong transmitter type.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, pin); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("wrong transmitter: %v", err)
	}
	// Inheritor type must declare inheritor-in.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, pin, iface); !errors.Is(err, ErrNotInheritor) {
		t.Errorf("undeclared inheritor: %v", err)
	}
	// Missing objects.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, 999, iface); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("missing inheritor: %v", err)
	}
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, 999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("missing transmitter: %v", err)
	}
	// Successful bind, then double bind.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); !errors.Is(err, ErrAlreadyBound) {
		t.Errorf("double bind: %v", err)
	}
}

func TestUnboundInheritorIsTypeLevelOnly(t *testing.T) {
	// §4.1 special case: an inheritor without a transmitter object
	// inherits the attribute *structure* but no values — plain
	// generalization.
	s := gateStore(t)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Errorf("unbound inherited attr = %s, want null", v)
	}
	pins, err := s.Members(impl, "Pins")
	if err != nil || len(pins) != 0 {
		t.Errorf("unbound inherited subclass = %v, %v", pins, err)
	}
	// The structure is there: unknown attributes still error.
	if _, err := s.GetAttr(impl, "Ghost"); !errors.Is(err, ErrNoSuchAttribute) {
		t.Errorf("unknown attr: %v", err)
	}
}

func TestValueInheritanceViewSemantics(t *testing.T) {
	// Experiment E2 (Figure 2): updates of the transmitter are instantly
	// visible in the inheritor; no copies anywhere.
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("inherited Length = %s", v)
	}
	set(t, s, iface, "Length", domain.Int(8))
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(8)) {
		t.Errorf("update not visible: %s", v)
	}
	// New interface pin appears in the implementation immediately.
	addPin(t, s, pinOwner(t, s, iface), "IN", 9)
	pins, _ := s.Members(impl, "Pins")
	if len(pins) != 4 {
		t.Errorf("pins = %d, want 4", len(pins))
	}
}

func TestWriteProtection(t *testing.T) {
	// §2: "the interface data must not be updated within a single
	// implementation".
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(impl, "Length", domain.Int(99)); !errors.Is(err, ErrInheritedAttribute) {
		t.Errorf("inherited attr write: %v", err)
	}
	// Even while unbound: inherited structure stays read-only.
	impl2 := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if err := s.SetAttr(impl2, "Width", domain.Int(1)); !errors.Is(err, ErrInheritedAttribute) {
		t.Errorf("unbound inherited attr write: %v", err)
	}
	// Subobject creation in an inherited subclass is refused too.
	if _, err := s.NewSubobject(impl, "Pins"); !errors.Is(err, ErrInheritedAttribute) {
		t.Errorf("inherited subclass insert: %v", err)
	}
	// Own attributes stay writable.
	set(t, s, impl, "TimeBehavior", domain.Int(17))
}

func TestInheritanceCycleRejected(t *testing.T) {
	s := gateStore(t)
	// GateInterface is itself an inheritor (in AllOf_GateInterface_I), so
	// a cycle would need an interface chain; build I1 -> G1, then try to
	// bind I1's transmitter under G1's descendants.
	i1 := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	g1 := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, g1, i1); err != nil {
		t.Fatal(err)
	}
	// Self-binding is impossible even in principle.
	g2 := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, g2, i1); err != nil {
		t.Fatal(err)
	}
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, g1); err != nil {
		t.Fatal(err)
	}
	// A hypothetical rel that would close impl -> g1 -> i1 ... -> impl
	// cannot be declared against these types, so exercise the check
	// directly: binding g1's transmitter i1 as an inheritor *of* g1 is
	// not possible (i1's type declares no inheritor-in), proving the
	// guard path via types; the surrogate-level cycle guard is covered in
	// the inherit package tests with a custom schema.
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, g1); !errors.Is(err, ErrAlreadyBound) {
		t.Errorf("rebinding: %v", err)
	}
}

func TestUnbind(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	bsur, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Exists(bsur) {
		t.Error("binding object should be a live relationship object")
	}
	if tr := s.TransmitterOf(impl, paperschema.RelAllOfGateInterface); tr != iface {
		t.Errorf("TransmitterOf = %v", tr)
	}
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if s.Exists(bsur) {
		t.Error("binding object should be gone")
	}
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Errorf("after unbind, inherited attr = %s, want null", v)
	}
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); !errors.Is(err, ErrNotBound) {
		t.Errorf("double unbind: %v", err)
	}
	if tr := s.TransmitterOf(impl, paperschema.RelAllOfGateInterface); tr != 0 {
		t.Errorf("TransmitterOf after unbind = %v", tr)
	}
}

func TestUpdateNotificationBookkeeping(t *testing.T) {
	// §2/§4.1: the relationship's attributes inform the inheritor side
	// about transmitter changes.
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	b, ok := s.BindingOf(impl, paperschema.RelAllOfGateInterface)
	if !ok {
		t.Fatal("binding missing")
	}
	if b.NeedsAdaptation() {
		t.Error("fresh binding should not need adaptation")
	}
	// Permeable update.
	set(t, s, iface, "Length", domain.Int(5))
	if !b.NeedsAdaptation() {
		t.Error("permeable update should flag adaptation")
	}
	if v, _ := s.GetAttr(b.Obj.Surrogate(), AttrTransmitterUpdates); !v.Equal(domain.Int(1)) {
		t.Errorf("TransmitterUpdates = %s", v)
	}
	// Acknowledge clears the flag.
	if err := s.Acknowledge(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if b.NeedsAdaptation() {
		t.Error("acknowledged binding should be clean")
	}
	// Subclass change (new pin) counts as a permeable update.
	addPin(t, s, pinOwner(t, s, iface), "IN", 5)
	if !b.NeedsAdaptation() {
		t.Error("subclass change should flag adaptation")
	}
	if err := s.Acknowledge("Ghost", impl); !errors.Is(err, ErrNotBound) {
		t.Errorf("acknowledge unknown: %v", err)
	}
}

func TestUpdateHooksAndChains(t *testing.T) {
	// An interface update notifies both the direct implementation binding
	// and, transitively, a composite inheriting through the
	// implementation (SomeOf_Gate).
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	user := mustSur(t)(s.NewObject(paperschema.TypeTimedComposite, ""))
	if _, err := s.Bind(paperschema.RelSomeOfGate, user, impl); err != nil {
		t.Fatal(err)
	}
	var events []UpdateEvent
	s.OnTransmitterUpdate(func(ev UpdateEvent) { events = append(events, ev) })

	set(t, s, iface, "Length", domain.Int(6))
	if len(events) != 2 {
		t.Fatalf("events = %v, want 2 (impl and user)", events)
	}
	seenInheritors := map[domain.Surrogate]bool{}
	for _, ev := range events {
		seenInheritors[ev.Inheritor] = true
		if ev.Member != "Length" {
			t.Errorf("event member = %q", ev.Member)
		}
	}
	if !seenInheritors[impl] || !seenInheritors[user] {
		t.Errorf("inheritors notified: %v", seenInheritors)
	}

	// TimeBehavior is permeable through SomeOf_Gate only: updating it on
	// the implementation notifies the user binding only.
	events = nil
	set(t, s, impl, "TimeBehavior", domain.Int(3))
	if len(events) != 1 || events[0].Inheritor != user || events[0].Member != "TimeBehavior" {
		t.Errorf("events = %+v", events)
	}
	// Function is not permeable at all: no events.
	events = nil
	set(t, s, impl, "Function", domain.NewMatrix(1, 1, domain.Bool(true)))
	if len(events) != 0 {
		t.Errorf("non-permeable update produced events: %+v", events)
	}
	// The user reads TimeBehavior through the chain.
	if v := get(t, s, user, "TimeBehavior"); !v.Equal(domain.Int(3)) {
		t.Errorf("user.TimeBehavior = %s", v)
	}
	// And Length through two hops.
	if v := get(t, s, user, "Length"); !v.Equal(domain.Int(6)) {
		t.Errorf("user.Length = %s", v)
	}
}

func TestDeletePolicies(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	// Restrict (default): deleting the transmitter is refused.
	if err := s.Delete(iface); !errors.Is(err, ErrHasInheritors) {
		t.Errorf("restrict: %v", err)
	}
	if !s.Exists(iface) {
		t.Fatal("failed delete must not remove the object")
	}
	// Unbind policy: delete succeeds and detaches the inheritor.
	var unbound []UpdateEvent
	s.OnTransmitterUpdate(func(ev UpdateEvent) {
		if ev.Unbound {
			unbound = append(unbound, ev)
		}
	})
	s.SetDeletePolicy(DeleteUnbind)
	if err := s.Delete(iface); err != nil {
		t.Fatal(err)
	}
	if len(unbound) != 1 || unbound[0].Inheritor != impl {
		t.Errorf("unbound events = %+v", unbound)
	}
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Errorf("detached inheritor should read null, got %s", v)
	}
	// Deleting the inheritor never needs a policy.
	iface2 := buildInterface(t, s, 4, 2, 2, 1)
	impl2 := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl2, iface2); err != nil {
		t.Fatal(err)
	}
	s.SetDeletePolicy(DeleteRestrict)
	if err := s.Delete(impl2); err != nil {
		t.Fatal(err)
	}
	if bs := s.BindingsOfTransmitter(iface2); len(bs) != 0 {
		t.Errorf("bindings after inheritor delete: %v", bs)
	}
}

func TestDeleteCascadeWithInternalInheritors(t *testing.T) {
	// A composite whose subobject inherits from an *internal* transmitter
	// may be deleted under Restrict: the inheritor dies with the cascade.
	s := gateStore(t)
	ff, _, nandIface, _ := buildFlipFlop(t, s)
	// nandIface is external: deleting it is restricted...
	if err := s.Delete(nandIface); !errors.Is(err, ErrHasInheritors) {
		t.Errorf("external transmitter delete: %v", err)
	}
	// ...but deleting the composite (which contains the inheritors) works.
	if err := s.Delete(ff); err != nil {
		t.Errorf("composite delete: %v", err)
	}
	// Now the interface is free.
	if err := s.Delete(nandIface); err != nil {
		t.Errorf("free transmitter delete: %v", err)
	}
}

func TestBindingsOfInheritor(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}
	m := s.BindingsOfInheritor(impl)
	if len(m) != 1 || m[paperschema.RelAllOfGateInterface] == nil {
		t.Errorf("bindings = %v", m)
	}
	if m[paperschema.RelAllOfGateInterface].Transmitter != iface {
		t.Error("wrong transmitter")
	}
}

func TestBindingSystemAttrsProtected(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	bsur, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(bsur, AttrTransmitterUpdates, domain.Int(99)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("system attr write: %v", err)
	}
	// Participants of the binding are readable.
	if v, err := s.Participant(bsur, "Transmitter"); err != nil || !v.Equal(domain.Ref(iface)) {
		t.Errorf("binding transmitter = %v, %v", v, err)
	}
}
