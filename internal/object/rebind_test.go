package object

import (
	"sync"
	"sync/atomic"
	"testing"

	"cadcam/internal/codec"
	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func encodedVal(v domain.Value) string {
	var b codec.Buf
	b.Value(v)
	return string(b.Bytes())
}

// TestRebindUnderRead hammers the lock-free read path while a writer
// flips the binding an inherited attribute resolves through. Linearized
// reads may observe the old transmitter's value, the new one's, or the
// unbound null in between — anything else (a stale mix, an error, a
// torn route) is a bug in the epoch-invalidated route cache.
func TestRebindUnderRead(t *testing.T) {
	s := gateStore(t)
	must := mustSur(t)

	t1 := must(s.NewObject(paperschema.TypeGateInterface, ""))
	t2 := must(s.NewObject(paperschema.TypeGateInterface, ""))
	set(t, s, t1, "Length", domain.Int(111))
	set(t, s, t2, "Length", domain.Int(222))

	impl := must(s.NewObject(paperschema.TypeGateImplementation, ""))
	// A second hop: comp resolves Length through impl, so comp's reads
	// cross the flapping binding one level removed.
	comp := must(s.NewObject(paperschema.TypeTimedComposite, ""))
	if _, err := s.Bind(paperschema.RelSomeOfGate, comp, impl); err != nil {
		t.Fatal(err)
	}

	allowed := map[string]bool{
		encodedVal(domain.Int(111)):  true,
		encodedVal(domain.Int(222)):  true,
		encodedVal(domain.NullValue): true,
	}

	const flips = 2000
	var done atomic.Bool
	var wg sync.WaitGroup
	readErr := make(chan error, 8)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(readThrough domain.Surrogate) {
			defer wg.Done()
			for !done.Load() {
				v, err := s.GetAttr(readThrough, "Length")
				if err != nil {
					readErr <- err
					return
				}
				if !allowed[encodedVal(v)] {
					readErr <- &domainValueError{v}
					return
				}
			}
		}([...]domain.Surrogate{impl, comp}[r%2])
	}

	for i := 0; i < flips; i++ {
		tr := t1
		if i%2 == 1 {
			tr = t2
		}
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, tr); err != nil {
			t.Fatal(err)
		}
		if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(readErr)
	for err := range readErr {
		t.Fatal(err)
	}
}

type domainValueError struct{ v domain.Value }

func (e *domainValueError) Error() string {
	return "read observed a value outside {old, new, null}: " + e.v.String()
}
