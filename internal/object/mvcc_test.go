package object

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

func TestSnapshotAttrIsolation(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	bare := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))

	sn := s.Snapshot()
	defer sn.Release()
	set(t, s, iface, "Length", domain.Int(8))

	if v, _ := sn.GetAttr(iface, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("snapshot Length = %s, want 4", v)
	}
	if v := get(t, s, iface, "Length"); !v.Equal(domain.Int(8)) {
		t.Errorf("live Length = %s, want 8", v)
	}

	// Clearing to null after the pin must not erase the pinned value.
	set(t, s, iface, "Length", domain.NullValue)
	if v, _ := sn.GetAttr(iface, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("snapshot Length after live clear = %s, want 4", v)
	}

	// An attribute first set after the pin reads null in the snapshot.
	set(t, s, bare, "Length", domain.Int(9))
	if v, err := sn.GetAttr(bare, "Length"); err != nil || !domain.IsNull(v) {
		t.Errorf("snapshot post-pin attr = %s, %v, want null", v, err)
	}

	// Unknown attributes still error with the schema's diagnosis.
	if _, err := sn.GetAttr(iface, "Ghost"); err == nil {
		t.Error("snapshot read of unknown attribute succeeded")
	}
	// Surrogate pseudo-attribute.
	if v, _ := sn.GetAttr(iface, "Surrogate"); !v.Equal(domain.Ref(iface)) {
		t.Errorf("snapshot Surrogate = %s", v)
	}
}

func TestSnapshotInheritedReadIsolation(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	sn := s.Snapshot()
	defer sn.Release()

	// Transmitter update after the pin: live view moves, snapshot stays.
	set(t, s, iface, "Length", domain.Int(8))
	if v, _ := sn.GetAttr(impl, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("snapshot inherited Length = %s, want 4", v)
	}
	if v := get(t, s, impl, "Length"); !v.Equal(domain.Int(8)) {
		t.Errorf("live inherited Length = %s, want 8", v)
	}

	// Unbind after the pin: the snapshot still resolves via the binding.
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if v, _ := sn.GetAttr(impl, "Length"); !v.Equal(domain.Int(4)) {
		t.Errorf("snapshot inherited Length after unbind = %s, want 4", v)
	}
	if v := get(t, s, impl, "Length"); !domain.IsNull(v) {
		t.Errorf("live inherited Length after unbind = %s, want null", v)
	}
	if bs := sn.BindingsOfInheritor(impl); len(bs) != 1 {
		t.Errorf("snapshot bindings after unbind = %d, want 1", len(bs))
	}
	// Inherited members resolve against the pinned binding too (the
	// interface inherits its pins from the hierarchy root in turn).
	if pins, err := sn.Members(impl, "Pins"); err != nil || len(pins) != 3 {
		t.Errorf("snapshot inherited Pins = %v, %v, want 3 members", pins, err)
	}
}

func TestSnapshotBindAfterPinInvisible(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))

	sn := s.Snapshot()
	defer sn.Release()
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	if v, _ := sn.GetAttr(impl, "Length"); !domain.IsNull(v) {
		t.Errorf("snapshot sees post-pin binding: Length = %s", v)
	}
	if bs := sn.BindingsOfInheritor(impl); len(bs) != 0 {
		t.Errorf("snapshot bindings = %d, want 0", len(bs))
	}
	if bs := sn.BindingsOfTransmitter(iface); len(bs) != 0 {
		t.Errorf("snapshot transmitter bindings = %d, want 0", len(bs))
	}
}

func TestSnapshotDeleteVisibility(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Roots", paperschema.TypeGateInterfaceI); err != nil {
		t.Fatal(err)
	}
	root := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, "Roots"))
	pin := addPin(t, s, root, "IN", 1)

	sn := s.Snapshot()
	defer sn.Release()
	if err := s.Delete(root); err != nil { // cascades into the pin
		t.Fatal(err)
	}

	if s.Exists(root) || s.Exists(pin) {
		t.Fatal("live store still has deleted objects")
	}
	if !sn.Exists(root) || !sn.Exists(pin) {
		t.Fatal("snapshot lost pinned objects")
	}
	if v, err := sn.GetAttr(pin, "PinId"); err != nil || !v.Equal(domain.Int(1)) {
		t.Errorf("snapshot PinId of cascade-deleted pin = %s, %v", v, err)
	}
	if pins, err := sn.Members(root, "Pins"); err != nil || len(pins) != 1 || pins[0] != pin {
		t.Errorf("snapshot Pins of deleted object = %v, %v", pins, err)
	}
	if ms, err := sn.Class("Roots"); err != nil || len(ms) != 1 || ms[0] != root {
		t.Errorf("snapshot class extent = %v, %v", ms, err)
	}
	if ms, _ := s.Class("Roots"); len(ms) != 0 {
		t.Errorf("live class extent = %v, want empty", ms)
	}
	surs := sn.Surrogates()
	if len(surs) != 2 {
		t.Errorf("snapshot Surrogates = %v, want the 2 pinned objects", surs)
	}
}

func TestSnapshotCreateAfterPinInvisible(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Interfaces", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	defer sn.Release()

	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, "Interfaces"))
	if sn.Exists(iface) {
		t.Error("snapshot sees post-pin object")
	}
	if _, err := sn.GetAttr(iface, "Length"); err == nil {
		t.Error("snapshot read of post-pin object succeeded")
	}
	if ms, err := sn.Class("Interfaces"); err != nil || len(ms) != 0 {
		t.Errorf("snapshot class extent = %v, %v, want empty", ms, err)
	}
	if len(sn.Surrogates()) != 0 {
		t.Errorf("snapshot Surrogates = %v, want empty", sn.Surrogates())
	}
	// A class defined after the pin does not exist in the snapshot.
	if err := s.DefineClass("Late", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Class("Late"); err == nil {
		t.Error("snapshot sees post-pin class")
	}
	for _, n := range sn.ClassNames() {
		if n == "Late" {
			t.Error("snapshot ClassNames lists post-pin class")
		}
	}
}

func TestSnapshotBookkeepingAtPin(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	bsur := mustSur(t)(s.Bind(paperschema.RelAllOfGateInterface, impl, iface))

	set(t, s, iface, "Length", domain.Int(5)) // one permeable update
	sn := s.Snapshot()
	defer sn.Release()
	set(t, s, iface, "Length", domain.Int(6)) // second, after the pin

	upd, _ := sn.GetAttr(bsur, AttrTransmitterUpdates)
	if n, _ := domain.AsInt(upd); n != 1 {
		t.Errorf("snapshot TransmitterUpdates = %d, want 1", n)
	}
	liveUpd, _ := s.GetAttr(bsur, AttrTransmitterUpdates)
	if n, _ := domain.AsInt(liveUpd); n != 2 {
		t.Errorf("live TransmitterUpdates = %d, want 2", n)
	}

	// Acknowledge after the pin: the pinned AcknowledgedSeq stays old.
	if err := s.Acknowledge(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	last, _ := sn.GetAttr(bsur, AttrLastUpdateSeq)
	ack, _ := sn.GetAttr(bsur, AttrAcknowledgedSeq)
	l, _ := domain.AsInt(last)
	a, _ := domain.AsInt(ack)
	if l == 0 || a >= l {
		t.Errorf("snapshot book = last %d ack %d, want pending (ack < last)", l, a)
	}
	liveLast, _ := s.GetAttr(bsur, AttrLastUpdateSeq)
	liveAck, _ := s.GetAttr(bsur, AttrAcknowledgedSeq)
	ll, _ := domain.AsInt(liveLast)
	la, _ := domain.AsInt(liveAck)
	if la < ll {
		t.Errorf("live book = last %d ack %d, want acknowledged", ll, la)
	}
}

func TestSnapshotExportStableUnderWrites(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Interfaces", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	iface := buildInterface(t, s, 4, 2, 2, 1)
	mustSur(t)(s.NewObject(paperschema.TypeGateInterface, "Interfaces"))
	impl := mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, impl, iface); err != nil {
		t.Fatal(err)
	}

	before := s.Export()
	sn := s.Snapshot()
	defer sn.Release()

	// The pinned export equals the live export taken at the same point.
	if got := sn.Export(); !reflect.DeepEqual(got, before) {
		t.Fatalf("snapshot export differs from live export at pin:\n got %+v\nwant %+v", got, before)
	}

	// Mutate heavily: the pinned export must not move.
	set(t, s, iface, "Length", domain.Int(9))
	mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if err := s.Unbind(paperschema.RelAllOfGateInterface, impl); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(impl); err != nil {
		t.Fatal(err)
	}
	if got := sn.Export(); !reflect.DeepEqual(got, before) {
		t.Fatalf("snapshot export moved after post-pin writes:\n got %+v\nwant %+v", got, before)
	}
}

// TestReleaseTriggersSweep checks the automatic GC path: releasing the
// last pin sweeps retained versions without an explicit SweepVersions.
func TestReleaseTriggersSweep(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	sn := s.Snapshot()
	set(t, s, iface, "Length", domain.Int(5))
	set(t, s, iface, "Length", domain.Int(6))
	if st := s.Stats().MVCC; st.Retained == 0 {
		t.Fatal("writes under a pin retained nothing")
	}
	sn.Release()
	st := s.Stats().MVCC
	if st.GCRuns == 0 || st.Reclaimed == 0 {
		t.Fatalf("release did not sweep: runs %d reclaimed %d", st.GCRuns, st.Reclaimed)
	}
	if st.ExtraVersions != 0 || st.DeadObjects != 0 {
		t.Fatalf("after release: extra %d dead %d, want 0/0", st.ExtraVersions, st.DeadObjects)
	}
}

// TestSnapshotGCReclaims drives the full retain/release cycle: a pin
// forces writers to retain version nodes and deleted objects; a sweep
// under the pin reclaims nothing; after release the sweep restores the
// single-version steady state.
func TestSnapshotGCReclaims(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	doomed := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))

	sn := s.Snapshot()
	for i := 0; i < 32; i++ {
		set(t, s, iface, "Length", domain.Int(int64(i)))
	}
	if err := s.Delete(doomed); err != nil {
		t.Fatal(err)
	}

	st := s.Stats().MVCC
	if st.Pins != 1 || st.Retained == 0 {
		t.Fatalf("under pin: pins %d retained %d, want 1 and > 0", st.Pins, st.Retained)
	}
	// The sweep must not reclaim anything a live pin can still read.
	if rec := s.SweepVersions(); rec != 0 {
		t.Fatalf("sweep under pin reclaimed %d nodes", rec)
	}
	if v, _ := sn.GetAttr(iface, "Length"); !v.Equal(domain.Int(4)) {
		t.Fatalf("pinned read after sweep = %s, want 4", v)
	}
	if !sn.Exists(doomed) {
		t.Fatal("pinned deleted object vanished under sweep")
	}

	sn.Release()
	s.SweepVersions()
	st = s.Stats().MVCC
	if st.Pins != 0 {
		t.Fatalf("pins after release = %d", st.Pins)
	}
	if st.ExtraVersions != 0 || st.DeadObjects != 0 {
		t.Fatalf("after release: extra versions %d dead objects %d, want 0/0", st.ExtraVersions, st.DeadObjects)
	}
	if st.Reclaimed == 0 {
		t.Fatal("sweep reclaimed nothing")
	}
	if st.LowWater != math.MaxUint64 {
		t.Fatalf("low water with no pins = %d", st.LowWater)
	}
	if s.Exists(doomed) {
		t.Fatal("deleted object resurrected")
	}
}

// TestSnapshotRaceTopology races snapshot pins and scans against
// structural writers: rebinds, delete cascades and class churn. Run
// with -race; the correctness check is that every snapshot read is
// internally stable (two reads of the same slot at the same pin agree).
func TestSnapshotRaceTopology(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Interfaces", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	ifaces := make([]domain.Surrogate, 4)
	impls := make([]domain.Surrogate, 4)
	for i := range ifaces {
		ifaces[i] = buildInterface(t, s, int64(4+i), 2, 2, 1)
		impls[i] = mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, impls[i], ifaces[i]); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var writers, scanners sync.WaitGroup

	// Rebinder: flips each impl between transmitters (topology churn).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for r := 0; !stop.Load(); r++ {
			im := impls[r%len(impls)]
			tr := ifaces[(r+1)%len(ifaces)]
			_ = s.Unbind(paperschema.RelAllOfGateInterface, im)
			_, _ = s.Bind(paperschema.RelAllOfGateInterface, im, tr)
		}
	}()

	// Cascade deleter: creates a hierarchy root with a pin, deletes it.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for !stop.Load() {
			sur, err := s.NewObject(paperschema.TypeGateInterfaceI, "")
			if err != nil {
				continue
			}
			if pin, err := s.NewSubobject(sur, "Pins"); err == nil {
				_ = s.SetAttr(pin, "PinId", domain.Int(1))
			}
			_ = s.Delete(sur)
		}
	}()

	// Class churner: members come and go through a database class.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for !stop.Load() {
			sur, err := s.NewObject(paperschema.TypeGateInterface, "Interfaces")
			if err != nil {
				continue
			}
			_ = s.Delete(sur)
		}
	}()

	// Attribute writers on the stable interfaces.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for r := 0; !stop.Load(); r++ {
			_ = s.SetAttr(ifaces[r%len(ifaces)], "Length", domain.Int(int64(r)))
		}
	}()

	// Snapshot scanners: pin, double-read everything, release.
	for g := 0; g < 3; g++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for i := 0; i < 60; i++ {
				sn := s.Snapshot()
				for _, sur := range sn.Surrogates() {
					v1, err1 := sn.GetAttr(sur, "Surrogate")
					v2, err2 := sn.GetAttr(sur, "Surrogate")
					if (err1 == nil) != (err2 == nil) || (err1 == nil && !v1.Equal(v2)) {
						t.Errorf("snapshot read of %s not stable: %v/%v %v/%v", sur, v1, err1, v2, err2)
					}
				}
				for _, im := range impls {
					a, e1 := sn.GetAttr(im, "Length")
					b, e2 := sn.GetAttr(im, "Length")
					if (e1 == nil) != (e2 == nil) || (e1 == nil && !a.Equal(b)) {
						t.Errorf("inherited read of %s not stable at pin %d: %v vs %v", im, sn.Seq(), a, b)
					}
				}
				m1, _ := sn.Class("Interfaces")
				m2, _ := sn.Class("Interfaces")
				if !reflect.DeepEqual(m1, m2) {
					t.Errorf("class extent not stable at pin %d: %v vs %v", sn.Seq(), m1, m2)
				}
				sn.Release()
			}
		}()
	}

	scanners.Wait()
	stop.Store(true)
	writers.Wait()

	if bad := s.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants violated after race: %v", bad)
	}
	// All pins are gone: the sweep restores steady state.
	s.SweepVersions()
	st := s.Stats().MVCC
	if st.Pins != 0 || st.ExtraVersions != 0 || st.DeadObjects != 0 {
		t.Fatalf("after race: pins %d extra %d dead %d", st.Pins, st.ExtraVersions, st.DeadObjects)
	}
}
