package object

import (
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/paperschema"
)

func evalBoolSrc(src string, env expr.Env) (bool, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return false, err
	}
	return expr.EvalBool(e, env)
}

func TestStoreEnvResolution(t *testing.T) {
	s := gateStore(t)
	iface := buildInterface(t, s, 4, 2, 2, 1)
	env := s.Env(iface)

	// Attribute lookup.
	if v, ok := env.Lookup("Length"); !ok || !v.Equal(domain.Int(4)) {
		t.Errorf("Lookup(Length) = %v, %v", v, ok)
	}
	if _, ok := env.Lookup("Ghost"); ok {
		t.Error("unknown name should not resolve")
	}
	// Subclass as collection.
	pins, ok := env.Collection("Pins")
	if !ok || len(pins) != 3 {
		t.Errorf("Collection(Pins) = %v, %v", pins, ok)
	}
	// AttrOf/CollectionOf through references.
	ref := pins[0].(domain.Ref)
	if v, ok := env.AttrOf(ref, "InOut"); !ok || !v.Equal(domain.Sym("IN")) {
		t.Errorf("AttrOf = %v, %v", v, ok)
	}
	if _, ok := env.AttrOf(domain.Ref(9999), "InOut"); ok {
		t.Error("AttrOf on missing object should fail")
	}
	if _, ok := env.CollectionOf(domain.Ref(9999), "Pins"); ok {
		t.Error("CollectionOf on missing object should fail")
	}

	// Constraint-style queries straight from the paper.
	holds, err := evalBoolSrc("count (Pins) = 2 where Pins.InOut = IN", env)
	if err != nil || !holds {
		t.Errorf("pin constraint: %v %v", holds, err)
	}
}

func TestStoreEnvOnMissingObject(t *testing.T) {
	s := gateStore(t)
	env := s.Env(9999)
	if _, ok := env.Lookup("X"); ok {
		t.Error("lookup on missing object should fail")
	}
	if _, ok := env.Collection("X"); ok {
		t.Error("collection on missing object should fail")
	}
}

func TestClassEnv(t *testing.T) {
	s := gateStore(t)
	if err := s.DefineClass("Interfaces", paperschema.TypeGateInterface); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		sur := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, "Interfaces"))
		set(t, s, sur, "Length", domain.Int(i*10))
	}
	env := s.ClassEnv()
	holds, err := evalBoolSrc("count(Interfaces) = 3", env)
	if err != nil || !holds {
		t.Errorf("count: %v %v", holds, err)
	}
	holds, err = evalBoolSrc("count(Interfaces) = 2 where Interfaces.Length >= 20", env)
	if err != nil || !holds {
		t.Errorf("filtered count: %v %v", holds, err)
	}
	holds, err = evalBoolSrc("exists i in Interfaces: i.Length = 30", env)
	if err != nil || !holds {
		t.Errorf("exists: %v %v", holds, err)
	}
	if _, ok := env.Collection("Ghost"); ok {
		t.Error("unknown class should not resolve")
	}
	if _, ok := env.Lookup("Anything"); ok {
		t.Error("class env has no scalar names")
	}
	if _, ok := env.AttrOf(domain.Ref(9999), "X"); ok {
		t.Error("AttrOf missing should fail")
	}
	if _, ok := env.CollectionOf(domain.Ref(9999), "X"); ok {
		t.Error("CollectionOf missing should fail")
	}
}

func TestSurrogateOrderingAndLen(t *testing.T) {
	s := gateStore(t)
	var created []domain.Surrogate
	for i := 0; i < 5; i++ {
		created = append(created, mustSur(t)(s.NewObject(paperschema.TypePin, "")))
	}
	got := s.Surrogates()
	if len(got) != 5 {
		t.Fatalf("Surrogates = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not ascending: %v", got)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	_ = created
}
