package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
	"cadcam/internal/schema"
)

// refCatalog declares a type with object-reference attributes, which the
// paper's schemas don't need but the model supports ("<name>: object").
func refCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	c := schema.NewCatalog()
	if err := c.AddObjectType(&schema.ObjectType{
		Name:       "Pin",
		Attributes: []schema.Attribute{{Name: "Id", Domain: domain.Integer()}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddObjectType(&schema.ObjectType{
		Name: "Probe",
		Attributes: []schema.Attribute{
			{Name: "Target", Domain: domain.ObjectRef("Pin")},
			{Name: "Any", Domain: domain.ObjectRef("")},
			{Name: "Targets", Domain: domain.SetOf(domain.ObjectRef("Pin"))},
			{Name: "Trace", Domain: domain.ListOf(domain.ObjectRef("Pin"))},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReferenceAttributes(t *testing.T) {
	s, err := NewStore(refCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	pin := mustSur(t)(s.NewObject("Pin", ""))
	probe := mustSur(t)(s.NewObject("Probe", ""))

	// Valid references of all shapes.
	set(t, s, probe, "Target", domain.Ref(pin))
	set(t, s, probe, "Any", domain.Ref(probe))
	set(t, s, probe, "Targets", domain.NewSet(domain.Ref(pin)))
	set(t, s, probe, "Trace", domain.NewList(domain.Ref(pin), domain.Ref(pin)))

	// Dangling reference.
	if err := s.SetAttr(probe, "Target", domain.Ref(9999)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling ref: %v", err)
	}
	// Wrong referent type.
	if err := s.SetAttr(probe, "Target", domain.Ref(probe)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("wrong type ref: %v", err)
	}
	// Wrong type inside a set.
	if err := s.SetAttr(probe, "Targets", domain.NewSet(domain.Ref(probe))); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("wrong type in set: %v", err)
	}
	// Dangling inside a list.
	if err := s.SetAttr(probe, "Trace", domain.NewList(domain.Ref(12345))); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling in list: %v", err)
	}
}

func TestRelationshipAttrAccess(t *testing.T) {
	s := gateStore(t)
	rootI := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	p1 := addPin(t, s, rootI, "IN", 1)
	p2 := addPin(t, s, rootI, "OUT", 2)
	w := mustSur(t)(s.Relate(paperschema.TypeWire, Participants{
		"Pin1": domain.Ref(p1), "Pin2": domain.Ref(p2),
	}))

	// Declared rel attribute: unset reads null, set/clear round-trips.
	if v, err := s.GetAttr(w, "Corners"); err != nil || !domain.IsNull(v) {
		t.Errorf("unset rel attr: %v, %v", v, err)
	}
	corners := domain.NewList(domain.NewRec("X", domain.Int(0), "Y", domain.Int(0)))
	set(t, s, w, "Corners", corners)
	if v, _ := s.GetAttr(w, "Corners"); !v.Equal(corners) {
		t.Error("rel attr set lost")
	}
	set(t, s, w, "Corners", domain.NullValue)
	if v, _ := s.GetAttr(w, "Corners"); !domain.IsNull(v) {
		t.Error("rel attr clear lost")
	}
	// Participants read through GetAttr too.
	if v, _ := s.GetAttr(w, "Pin1"); !v.Equal(domain.Ref(p1)) {
		t.Error("participant via GetAttr")
	}
	// Assigning a participant role or unknown name is refused.
	if err := s.SetAttr(w, "Pin1", domain.Ref(p2)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("participant write: %v", err)
	}
	if err := s.SetAttr(w, "Ghost", domain.Int(1)); !errors.Is(err, ErrNoSuchAttribute) {
		t.Errorf("unknown rel attr write: %v", err)
	}
	if _, err := s.GetAttr(w, "Ghost"); !errors.Is(err, ErrNoSuchAttribute) {
		t.Errorf("unknown rel attr read: %v", err)
	}
	// Wrong domain for a rel attribute.
	if err := s.SetAttr(w, "Corners", domain.Int(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("rel attr domain: %v", err)
	}
	// Surrogate pseudo-attribute on relationships.
	if v, _ := s.GetAttr(w, "Surrogate"); !v.Equal(domain.Ref(w)) {
		t.Error("rel Surrogate pseudo-attribute")
	}
}

func TestRelationshipIndexes(t *testing.T) {
	s := gateStore(t)
	rootI := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	p1 := addPin(t, s, rootI, "IN", 1)
	p2 := addPin(t, s, rootI, "OUT", 2)
	w := mustSur(t)(s.Relate(paperschema.TypeWire, Participants{
		"Pin1": domain.Ref(p1), "Pin2": domain.Ref(p2),
	}))
	rels := s.RelationshipsOf(p1)
	if len(rels) != 1 || rels[0] != w {
		t.Errorf("RelationshipsOf = %v", rels)
	}
	parts := s.ParticipantsOf(w)
	if len(parts) != 2 || parts[0] != p1 || parts[1] != p2 {
		t.Errorf("ParticipantsOf = %v", parts)
	}
	// Non-relationship and missing objects yield nil.
	if s.ParticipantsOf(p1) != nil {
		t.Error("ParticipantsOf on object should be nil")
	}
	if s.RelationshipsOf(9999) != nil && len(s.RelationshipsOf(9999)) != 0 {
		t.Error("RelationshipsOf on missing should be empty")
	}
}

func TestAccessorsAndCounters(t *testing.T) {
	s := gateStore(t)
	if s.Catalog() == nil {
		t.Error("Catalog accessor")
	}
	rootI := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	o, err := s.Get(rootI)
	if err != nil {
		t.Fatal(err)
	}
	if o.TypeName() != paperschema.TypeGateInterfaceI || o.IsRelationship() {
		t.Error("object accessors")
	}
	if _, err := s.Get(9999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Get missing: %v", err)
	}
	before := s.Seq()
	pin := addPin(t, s, rootI, "IN", 1)
	if s.Seq() <= before {
		t.Error("Seq should advance")
	}
	ms, err := s.ModSeq(pin)
	if err != nil || ms == 0 {
		t.Errorf("ModSeq = %d, %v", ms, err)
	}
	if _, err := s.ModSeq(9999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("ModSeq missing: %v", err)
	}
	if err := s.DefineClass("A", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineClass("B", ""); err != nil {
		t.Fatal(err)
	}
	names := s.ClassNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("ClassNames = %v", names)
	}
	// Class accessor methods.
	cls, _ := s.Get(rootI)
	_ = cls
}

func TestViolationString(t *testing.T) {
	v := ConstraintViolation{Object: 3, Type: "SimpleGate", Src: "count(Pins) = 1"}
	msg := v.String()
	if msg == "" || v.Reason != "" {
		t.Errorf("String = %q", msg)
	}
	v.Reason = "boom"
	if got := v.String(); got == msg {
		t.Error("reason should extend the message")
	}
}

func TestImportValidationErrors(t *testing.T) {
	s := gateStore(t)
	rootI := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	addPin(t, s, rootI, "IN", 1)
	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, rootI); err != nil {
		t.Fatal(err)
	}
	st := s.Export()

	fresh := func() *Store {
		t.Helper()
		s2, err := NewStore(paperschema.MustGates())
		if err != nil {
			t.Fatal(err)
		}
		return s2
	}
	// Valid round trip, then import into non-empty store.
	s2 := fresh()
	if err := s2.Import(st); err != nil {
		t.Fatal(err)
	}
	if err := s2.Import(st); err == nil {
		t.Error("import into non-empty store accepted")
	}
	if bad := s2.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("imported store inconsistent: %v", bad)
	}

	corrupt := func(mutate func(*StoreState)) error {
		c := *st
		c.Objects = append([]ObjectRecord(nil), st.Objects...)
		c.Bindings = append([]BindingRecord(nil), st.Bindings...)
		c.Classes = append([]ClassRecord(nil), st.Classes...)
		mutate(&c)
		return fresh().Import(&c)
	}
	if err := corrupt(func(c *StoreState) { c.Objects[0].TypeName = "Ghost" }); err == nil {
		t.Error("unknown type accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Objects = append(c.Objects, c.Objects[0]) }); err == nil {
		t.Error("duplicate surrogate accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Objects[1].Parent = 7777 }); err == nil {
		t.Error("missing parent accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Bindings[0].RelType = "Ghost" }); err == nil {
		t.Error("unknown binding rel accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Bindings[0].Transmitter = 7777 }); err == nil {
		t.Error("missing transmitter accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Bindings[0].Inheritor = 7777 }); err == nil {
		t.Error("missing inheritor accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Bindings = append(c.Bindings, c.Bindings[0]) }); err == nil {
		t.Error("duplicate binding accepted")
	}
	if err := corrupt(func(c *StoreState) { c.Objects[0].OwnerClass = "Ghost" }); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestWithExclusive(t *testing.T) {
	s := gateStore(t)
	mustSur(t)(s.NewObject(paperschema.TypePin, ""))
	var got int
	err := s.WithExclusive(func(st *StoreState) error {
		got = len(st.Objects)
		return nil
	})
	if err != nil || got != 1 {
		t.Errorf("WithExclusive: %d, %v", got, err)
	}
	wantErr := errors.New("boom")
	if err := s.WithExclusive(func(*StoreState) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("error propagation: %v", err)
	}
}

func TestWriteGuard(t *testing.T) {
	s := gateStore(t)
	pin := mustSur(t)(s.NewObject(paperschema.TypePin, ""))
	guardErr := errors.New("sealed")
	s.SetWriteGuard(func(sur domain.Surrogate) error {
		if sur == pin {
			return guardErr
		}
		return nil
	})
	if err := s.SetAttr(pin, "PinId", domain.Int(1)); !errors.Is(err, guardErr) {
		t.Errorf("guarded write: %v", err)
	}
	if err := s.Delete(pin); !errors.Is(err, guardErr) {
		t.Errorf("guarded delete: %v", err)
	}
	other := mustSur(t)(s.NewObject(paperschema.TypePin, ""))
	if err := s.SetAttr(other, "PinId", domain.Int(1)); err != nil {
		t.Errorf("unguarded write: %v", err)
	}
	s.SetWriteGuard(nil)
	if err := s.SetAttr(pin, "PinId", domain.Int(2)); err != nil {
		t.Errorf("guard removal: %v", err)
	}
}
