package object

import (
	"errors"
	"fmt"

	"cadcam/internal/domain"
)

// Sentinel errors; operations wrap them with context, so test with
// errors.Is.
var (
	// ErrNoSuchObject reports an unknown surrogate.
	ErrNoSuchObject = errors.New("object: no such object")
	// ErrNoSuchType reports an unknown type name.
	ErrNoSuchType = errors.New("object: no such type")
	// ErrNoSuchClass reports an unknown class or subclass name.
	ErrNoSuchClass = errors.New("object: no such class")
	// ErrNoSuchAttribute reports an attribute not in the effective type.
	ErrNoSuchAttribute = errors.New("object: no such attribute")
	// ErrInheritedAttribute reports a write to data the object inherits:
	// "The inherited data must not be updated in the inheritor" (§2).
	ErrInheritedAttribute = errors.New("object: attribute is inherited and read-only in the inheritor")
	// ErrTypeMismatch reports a value or object of the wrong type.
	ErrTypeMismatch = errors.New("object: type mismatch")
	// ErrAlreadyBound reports a second binding for the same inheritor and
	// inheritance relationship type.
	ErrAlreadyBound = errors.New("object: inheritor already bound in this relationship")
	// ErrNotBound reports a missing binding.
	ErrNotBound = errors.New("object: inheritor not bound in this relationship")
	// ErrInheritanceCycle reports a binding that would make value
	// inheritance cyclic at the object level.
	ErrInheritanceCycle = errors.New("object: binding would create an inheritance cycle")
	// ErrNotInheritor reports a bind attempt by a type that does not
	// declare inheritor-in for the relationship (§4.1: "it must be
	// explicitly stated that the type is an inheritor type").
	ErrNotInheritor = errors.New("object: type does not declare inheritor-in for this relationship")
	// ErrHasInheritors reports a transmitter delete under the Restrict
	// policy while inheritors are still bound to it.
	ErrHasInheritors = errors.New("object: transmitter still has bound inheritors")
	// ErrConstraint reports a violated local integrity constraint.
	ErrConstraint = errors.New("object: constraint violated")
	// ErrNotSubobject reports a subobject operation on a top-level object.
	ErrNotSubobject = errors.New("object: not a subobject")
)

func noObject(sur domain.Surrogate) error {
	return fmt.Errorf("%w: %s", ErrNoSuchObject, sur)
}
