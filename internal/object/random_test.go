package object_test

// Randomized property tests: apply long random operation sequences to a
// store and verify after every step that (a) the internal indexes stay
// consistent (CheckInvariants) and (b) replaying the emitted journal into
// a fresh store reproduces a byte-identical state snapshot.

import (
	"math/rand"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/object"
	"cadcam/internal/oplog"
	"cadcam/internal/paperschema"
	"cadcam/internal/version"
	"cadcam/internal/wal"
)

// randomDriver applies valid-ish random operations; errors from the
// store are fine (rejected ops must simply leave the store consistent).
type randomDriver struct {
	rng *rand.Rand
	s   *object.Store
}

func (d *randomDriver) pick() domain.Surrogate {
	surs := d.s.Surrogates()
	if len(surs) == 0 {
		return 0
	}
	return surs[d.rng.Intn(len(surs))]
}

// step performs one random operation; returns a label for diagnostics.
func (d *randomDriver) step() string {
	switch d.rng.Intn(16) {
	case 0:
		_, _ = d.s.NewObject(paperschema.TypeGateInterfaceI, "")
		return "new-root"
	case 1:
		_, _ = d.s.NewObject(paperschema.TypeGateInterface, "")
		return "new-iface"
	case 2:
		_, _ = d.s.NewObject(paperschema.TypeGateImplementation, "")
		return "new-impl"
	case 3:
		_, _ = d.s.NewSubobject(d.pick(), "Pins")
		return "new-pin"
	case 4:
		sur := d.pick()
		_ = d.s.SetAttr(sur, "Length", domain.Int(int64(d.rng.Intn(100))))
		return "set-length"
	case 5:
		sur := d.pick()
		_ = d.s.SetAttr(sur, "InOut", domain.Sym([]string{"IN", "OUT"}[d.rng.Intn(2)]))
		return "set-inout"
	case 6:
		rel := []string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface, paperschema.RelSomeOfGate}[d.rng.Intn(3)]
		_, _ = d.s.Bind(rel, d.pick(), d.pick())
		return "bind"
	case 7:
		rel := []string{paperschema.RelAllOfGateInterfaceI, paperschema.RelAllOfGateInterface}[d.rng.Intn(2)]
		_ = d.s.Unbind(rel, d.pick())
		return "unbind"
	case 8:
		_ = d.s.Delete(d.pick())
		return "delete"
	case 9:
		_, _ = d.s.Relate(paperschema.TypeWire, object.Participants{
			"Pin1": domain.Ref(d.pick()),
			"Pin2": domain.Ref(d.pick()),
		})
		return "relate"
	case 10:
		_ = d.s.Acknowledge(paperschema.RelAllOfGateInterface, d.pick())
		return "acknowledge"
	case 11:
		impl := d.pick()
		_, _ = d.s.RelateIn(impl, "Wires", object.Participants{
			"Pin1": domain.Ref(d.pick()),
			"Pin2": domain.Ref(d.pick()),
		})
		return "relate-in"
	case 12:
		_ = d.s.DefineClass("pool", paperschema.TypeGateImplementation)
		return "define-class"
	case 13:
		_, _ = d.s.NewObject(paperschema.TypeGateImplementation, "pool")
		return "new-pooled"
	case 14:
		attr := []string{"Length", "Width"}[d.rng.Intn(2)]
		_ = d.s.CreateIndex("ix"+attr, "pool", attr)
		return "create-index"
	default:
		_ = d.s.DropIndex([]string{"ixLength", "ixWidth"}[d.rng.Intn(2)])
		return "drop-index"
	}
}

func TestRandomOpsKeepInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1989} {
		s, err := object.NewStore(paperschema.MustGates())
		if err != nil {
			t.Fatal(err)
		}
		d := &randomDriver{rng: rand.New(rand.NewSource(seed)), s: s}
		for i := 0; i < 400; i++ {
			label := d.step()
			if i%20 == 0 { // invariants are O(n); sample
				if bad := s.CheckInvariants(); len(bad) != 0 {
					t.Fatalf("seed %d step %d (%s): %v", seed, i, label, bad)
				}
			}
		}
		if bad := s.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("seed %d final: %v", seed, bad)
		}
	}
}

func TestRandomOpsJournalReplayEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 2024} {
		s, err := object.NewStore(paperschema.MustGates())
		if err != nil {
			t.Fatal(err)
		}
		var journal []*oplog.Op
		s.SetJournal(func(op *oplog.Op) {
			// Encode/decode to exercise the persistent path.
			dec, err := oplog.Decode(op.Encode())
			if err != nil {
				t.Fatalf("encode/decode: %v", err)
			}
			journal = append(journal, dec)
		})
		d := &randomDriver{rng: rand.New(rand.NewSource(seed)), s: s}
		for i := 0; i < 400; i++ {
			d.step()
		}
		vm := version.NewManager(s)
		want := wal.EncodeSnapshot(s.Export(), vm.Export())

		s2, err := object.NewStore(paperschema.MustGates())
		if err != nil {
			t.Fatal(err)
		}
		vm2 := version.NewManager(s2)
		for i, op := range journal {
			if err := wal.Apply(op, s2, vm2, true); err != nil {
				t.Fatalf("seed %d: replaying op %d (kind %d): %v", seed, i, op.Kind, err)
			}
		}
		got := wal.EncodeSnapshot(s2.Export(), vm2.Export())
		if len(got) != len(want) {
			t.Fatalf("seed %d: snapshot sizes differ: %d vs %d (ops=%d)", seed, len(got), len(want), len(journal))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: snapshots differ at byte %d", seed, i)
			}
		}
		if bad := s2.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("seed %d: replayed store inconsistent: %v", seed, bad)
		}
	}
}

func TestInvariantsOnHandBuiltScenes(t *testing.T) {
	// The structured test scenes pass the audit too.
	s, err := object.NewStore(paperschema.MustSteel())
	if err != nil {
		t.Fatal(err)
	}
	// Build a small structure by hand (mirrors the steel tests).
	gi, _ := s.NewObject(paperschema.TypeGirderInterface, "")
	_ = s.SetAttr(gi, "Length", domain.Int(500))
	_ = s.SetAttr(gi, "Height", domain.Int(20))
	_ = s.SetAttr(gi, "Width", domain.Int(10))
	bore, _ := s.NewSubobject(gi, "Bores")
	_ = s.SetAttr(bore, "Diameter", domain.Int(10))
	st, _ := s.NewObject(paperschema.TypeStructure, "")
	g, _ := s.NewSubobject(st, "Girders")
	if _, err := s.Bind(paperschema.RelAllOfGirderIf, g, gi); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RelateIn(st, "Screwings", object.Participants{
		"Bores": domain.NewSet(domain.Ref(bore)),
	}); err != nil {
		t.Fatal(err)
	}
	if bad := s.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("steel scene: %v", bad)
	}
	// After deleting the structure the audit still passes.
	if err := s.Delete(st); err != nil {
		t.Fatal(err)
	}
	if bad := s.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("after delete: %v", bad)
	}
}
