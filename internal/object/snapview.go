package object

import (
	"fmt"
	"sort"
	"time"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Snapshot reads: every method resolves against the version chains at the
// pinned sequence point, lock-free. The methods mirror the store's locked
// read paths (mutate.go) with three substitutions:
//
//   - objects come from the shards' snapObjs maps, gated by visibleAt;
//   - binding lookups walk the snapBindIn/snapBindOut chains at the pin;
//   - attribute slots, bookkeeping, modSeq and class membership are read
//     with their at(S) accessors instead of the live head.
//
// The resolution route cache is shared with live reads on the fast path: a
// memoized route whose stamps equal the snapshot's pin-time epochs was
// valid exactly at the pin, so the snapshot may follow it and read the
// owner's slot at the pinned sequence. Slow-path resolutions are not
// memoized — they describe the pinned past, not the live present.

// obj returns the object visible at the pin, if any.
func (sn *Snapshot) obj(sur domain.Surrogate) (*Object, bool) {
	v, ok := sn.s.shardOf(sur).snapObjs.Load(sur)
	if !ok {
		return nil, false
	}
	o := v.(*Object)
	if !o.visibleAt(sn.seq) {
		return nil, false
	}
	return o, true
}

// Exists reports whether the surrogate denoted a live object at the pin.
func (sn *Snapshot) Exists(sur domain.Surrogate) bool {
	_, ok := sn.obj(sur)
	return ok
}

// TypeOf returns the type name of an object visible at the pin.
func (sn *Snapshot) TypeOf(sur domain.Surrogate) (string, error) {
	o, ok := sn.obj(sur)
	if !ok {
		return "", noObject(sur)
	}
	return o.typeName, nil
}

// Get returns the object visible at the pin. Only the immutable identity
// accessors (Surrogate, TypeName, IsRelationship, Parent, ParentSubclass)
// are meaningful on the result; attribute state must be read through the
// snapshot's own methods.
func (sn *Snapshot) Get(sur domain.Surrogate) (*Object, error) {
	o, ok := sn.obj(sur)
	if !ok {
		return nil, noObject(sur)
	}
	return o, nil
}

// ModSeq returns the object's modification sequence as of the pin.
func (sn *Snapshot) ModSeq(sur domain.Surrogate) (uint64, error) {
	o, ok := sn.obj(sur)
	if !ok {
		return 0, noObject(sur)
	}
	return o.modAt(sn.seq), nil
}

// Catalog returns the schema catalog (immutable, shared with the store).
func (sn *Snapshot) Catalog() *schema.Catalog { return sn.s.cat }

// Surrogates returns the surrogates visible at the pin, ascending.
func (sn *Snapshot) Surrogates() []domain.Surrogate { return sn.surrogatesAt() }

// bindingsIn returns the inheritor's binding set as of the pin (nil when
// it had none).
func (sn *Snapshot) bindingsIn(inheritor domain.Surrogate) map[string]*Binding {
	v, ok := sn.s.shardOf(inheritor).snapBindIn.Load(inheritor)
	if !ok {
		return nil
	}
	return v.(*ibChain).at(sn.seq)
}

// bindingsOut returns the transmitter's binding list as of the pin.
func (sn *Snapshot) bindingsOut(transmitter domain.Surrogate) []*Binding {
	v, ok := sn.s.shardOf(transmitter).snapBindOut.Load(transmitter)
	if !ok {
		return nil
	}
	return v.(*tbChain).at(sn.seq)
}

// binding finds the inheritor's binding under a relationship type as of
// the pin.
func (sn *Snapshot) binding(inheritor domain.Surrogate, relType string) *Binding {
	return sn.bindingsIn(inheritor)[relType]
}

// BindingsOfInheritor returns the bindings in which the object was the
// inheritor at the pin, keyed by relationship type name.
func (sn *Snapshot) BindingsOfInheritor(inheritor domain.Surrogate) map[string]*Binding {
	set := sn.bindingsIn(inheritor)
	out := make(map[string]*Binding, len(set))
	for k, v := range set {
		out[k] = v
	}
	return out
}

// BindingsOfTransmitter returns the bindings in which the object was the
// transmitter at the pin.
func (sn *Snapshot) BindingsOfTransmitter(transmitter domain.Surrogate) []*Binding {
	return append([]*Binding(nil), sn.bindingsOut(transmitter)...)
}

// routeValid reports whether a memoized route was valid at the pin: every
// shard its chain crosses still had its pin-time epoch when the route was
// resolved, so the route describes the pinned topology exactly.
func (sn *Snapshot) routeValid(r *route) bool {
	for _, st := range r.stamps {
		if sn.epochs[st.shard] != st.epoch {
			return false
		}
	}
	return true
}

// GetAttr reads an attribute at the pin with the same resolution rule as
// the live Store.GetAttr, entirely lock-free. A route memoized by live
// readers serves as the fast path when it matches the pin-time epochs;
// otherwise the inheritance chain is walked against the snapshot indexes.
func (sn *Snapshot) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	if r, ok := loadRoute(&sn.s.shardOf(sur).routes.attrs, sur, name); ok && sn.routeValid(r) {
		sn.s.shardOf(sur).hits.Add(1)
		if r.owner == nil {
			return domain.NullValue, nil
		}
		if b, ok := r.owner.attrMap()[name]; ok {
			if v, ok := b.at(sn.seq); ok {
				return v, nil
			}
		}
		return domain.NullValue, nil
	}
	o, ok := sn.obj(sur)
	if !ok {
		return nil, noObject(sur)
	}
	if name == "Surrogate" {
		return domain.Ref(o.sur), nil
	}
	if o.isRel {
		return sn.relAttr(o, name)
	}
	return sn.resolveAttr(o, name)
}

// resolveAttr walks the inheritance chain at the pin: bindings come from
// the snapshot index chains, values from the owner's slot at the pinned
// sequence. Mirrors resolveAttrLocked without memoization.
func (sn *Snapshot) resolveAttr(o *Object, name string) (domain.Value, error) {
	cur := o
	for {
		eff, err := sn.s.effectiveLocked(cur)
		if err != nil {
			return nil, err
		}
		a, ok := eff.Attr(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, cur.typeName, name)
		}
		if !a.Inherited() {
			if b, ok := cur.attrMap()[name]; ok {
				if v, ok := b.at(sn.seq); ok {
					return v, nil
				}
			}
			return domain.NullValue, nil
		}
		b := sn.binding(cur.sur, a.Via)
		if b == nil {
			return domain.NullValue, nil
		}
		t, ok := sn.obj(b.Transmitter)
		if !ok {
			return domain.NullValue, nil
		}
		cur = t
	}
}

// relAttr reads a relationship object's attribute at the pin: participant
// roles (immutable), the binding bookkeeping at the pinned sequence, then
// user-declared attributes. Mirrors getRelAttrLocked.
func (sn *Snapshot) relAttr(o *Object, name string) (domain.Value, error) {
	if v, ok := o.participants[name]; ok {
		return v, nil
	}
	if o.book != nil {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			upd, last, ack := o.book.at(sn.seq)
			switch name {
			case AttrTransmitterUpdates:
				return domain.Int(upd), nil
			case AttrLastUpdateSeq:
				return domain.Int(last), nil
			default:
				return domain.Int(ack), nil
			}
		}
	}
	if b, ok := o.attrMap()[name]; ok {
		if v, ok := b.at(sn.seq); ok {
			return v, nil
		}
	}
	if _, ok := sn.s.cat.RelAttr(o.typeName, name); ok {
		return domain.NullValue, nil
	}
	if _, ok := sn.s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return domain.Int(0), nil
		}
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
}

// Members lists a local subclass at the pin, following inheritance, with
// the live Members' semantics. The shared route cache serves hits that
// match the pin-time epochs.
func (sn *Snapshot) Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	if r, ok := loadRoute(&sn.s.shardOf(sur).routes.members, sur, name); ok && sn.routeValid(r) {
		sn.s.shardOf(sur).hits.Add(1)
		if r.cls == nil {
			return nil, nil
		}
		return copySurs(r.cls.membersAt(sn.seq)), nil
	}
	o, ok := sn.obj(sur)
	if !ok {
		return nil, noObject(sur)
	}
	if cls, ok := o.relMap()[name]; ok {
		return copySurs(cls.membersAt(sn.seq)), nil
	}
	if o.isRel {
		if cls, ok := o.subMap()[name]; ok {
			return copySurs(cls.membersAt(sn.seq)), nil
		}
		if sn.s.cat.RelMemberName(o.typeName, name) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	return sn.resolveMembers(o, name)
}

// resolveMembers mirrors resolveMembersLocked against the snapshot
// indexes, without memoization.
func (sn *Snapshot) resolveMembers(o *Object, name string) ([]domain.Surrogate, error) {
	cur := o
	for {
		eff, err := sn.s.effectiveLocked(cur)
		if err != nil {
			return nil, err
		}
		sd, ok := eff.SubclassByName(name)
		if !ok {
			for _, sr := range eff.Type.SubRels {
				if sr.Name == name {
					return nil, nil // declared but no members yet
				}
			}
			return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, cur.typeName, name)
		}
		if !sd.Inherited() {
			if cls, ok := cur.subMap()[name]; ok {
				return copySurs(cls.membersAt(sn.seq)), nil
			}
			return nil, nil
		}
		b := sn.binding(cur.sur, sd.Via)
		if b == nil {
			return nil, nil
		}
		t, ok := sn.obj(b.Transmitter)
		if !ok {
			return nil, nil
		}
		cur = t
	}
}

// Class lists a database-level class extent at the pin.
func (sn *Snapshot) Class(name string) ([]domain.Surrogate, error) {
	v, ok := sn.s.snapClasses.Load(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	c := v.(*Class)
	if c.createdSeq > sn.seq {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	return copySurs(c.membersAt(sn.seq)), nil
}

// ClassNames lists the database-level classes that existed at the pin,
// sorted.
func (sn *Snapshot) ClassNames() []string {
	var names []string
	sn.s.snapClasses.Range(func(k, v any) bool {
		if v.(*Class).createdSeq <= sn.seq {
			names = append(names, k.(string))
		}
		return true
	})
	sort.Strings(names)
	return names
}

func copySurs(surs []domain.Surrogate) []domain.Surrogate {
	if len(surs) == 0 {
		return nil
	}
	return append([]domain.Surrogate(nil), surs...)
}

// baseState captures the classes and counters as of the pin, lock-free.
func (sn *Snapshot) baseState() *StoreState {
	st := &StoreState{NextSur: sn.nextSur, Seq: sn.seq}
	classes := make(map[string]*Class)
	sn.s.snapClasses.Range(func(k, v any) bool {
		c := v.(*Class)
		if c.createdSeq <= sn.seq {
			classes[k.(string)] = c
		}
		return true
	})
	for _, name := range sortedNames(classes) {
		st.Classes = append(st.Classes, ClassRecord{Name: name, ElemType: classes[name].elemType})
	}
	st.Indexes = sn.s.indexRecords(sn.seq)
	return st
}

// Export captures the full store state as of the pin without taking any
// store lock. The result is byte-for-byte the state a serial replay of the
// journal truncated at the pinned sequence would export (for failure-free
// histories, whose surrogate counter never burns allocations).
func (sn *Snapshot) Export() *StoreState {
	st := sn.baseState()
	for _, sur := range sn.surrogatesAt() {
		o, _ := sn.obj(sur)
		if o.isRel && o.binding != nil {
			st.Bindings = append(st.Bindings, bindingRecord(sur, o.binding, sn.seq))
			continue
		}
		st.Objects = append(st.Objects, objectRecord(o, sn.seq))
	}
	return st
}

// ExportShards captures a partitioned export as of the pin, lock-free:
// shard i carries records iff dirty[i]; marks[i] becomes its Mark. The
// checkpointer captures marks and dirtiness under the rotation lock (see
// PinCheckpoint) and encodes the records here, with writers running.
func (sn *Snapshot) ExportShards(marks []uint64, dirty []bool) *StoreExport {
	ex := &StoreExport{Base: sn.baseState(), Shards: make([]ShardExport, len(sn.s.shards))}
	for i := range sn.s.shards {
		se := &ex.Shards[i]
		se.Mark = marks[i]
		se.Exported = dirty[i]
		if !dirty[i] {
			continue
		}
		var surs []domain.Surrogate
		sn.s.shards[i].snapObjs.Range(func(k, v any) bool {
			if v.(*Object).visibleAt(sn.seq) {
				surs = append(surs, k.(domain.Surrogate))
			}
			return true
		})
		sort.Slice(surs, func(a, b int) bool { return surs[a] < surs[b] })
		for _, sur := range surs {
			o, _ := sn.obj(sur)
			if o.isRel && o.binding != nil {
				se.Bindings = append(se.Bindings, bindingRecord(sur, o.binding, sn.seq))
				continue
			}
			se.Objects = append(se.Objects, objectRecord(o, sn.seq))
		}
	}
	return ex
}

// pinLocked registers a pin at the current sequence point. The caller
// holds all shard locks (read or write), so the pin lands between
// operations.
func (s *Store) pinLocked() *Snapshot {
	sn := &Snapshot{s: s}
	sn.refs.Store(1)
	sn.seq = s.seq.Load()
	sn.nextSur = s.nextSur.Load()
	sn.epochs = make([]uint64, len(s.shards))
	for i := range s.shards {
		sn.epochs[i] = s.shards[i].epoch.Load()
	}
	m := &s.mvcc
	m.mu.Lock()
	if m.pins == nil {
		m.pins = make(map[*Snapshot]uint64)
	}
	m.pins[sn] = sn.seq
	m.taken.Add(1)
	m.recalcLocked()
	m.mu.Unlock()
	return sn
}

// PinnedCheckpoint is what PinCheckpoint captures under the store's
// exclusive lock: a pinned snapshot plus the per-shard dirty marks and
// the dirtiness verdicts against the caller's baseline. The caller
// encodes the actual records off-lock via Snap.ExportShards(Marks-order)
// and must Release the snapshot when done.
type PinnedCheckpoint struct {
	Snap  *Snapshot
	Marks []uint64
	Dirty []bool
	// LockHoldNs is the wall time the store-exclusive lock was held:
	// inLock (journal rotation) plus the mark capture and pin. The record
	// encoding this used to cover happens off-lock on the snapshot.
	LockHoldNs int64
}

// PinCheckpoint runs inLock under every shard and stripe write lock (the
// checkpointer rotates the journal there), captures each shard's dirty
// mark and its dirtiness against baseline (nil or mismatched length:
// everything dirty), and pins a snapshot — all atomically with respect to
// mutations. Writers resume as soon as it returns; the caller exports the
// dirty shards' records from the pinned snapshot concurrently with them.
// An inLock error aborts without pinning.
func (s *Store) PinCheckpoint(baseline []uint64, inLock func() error) (*PinnedCheckpoint, error) {
	s.lockAll()
	start := time.Now()
	if err := inLock(); err != nil {
		s.unlockAll()
		return nil, err
	}
	pc := &PinnedCheckpoint{
		Marks: make([]uint64, len(s.shards)),
		Dirty: make([]bool, len(s.shards)),
	}
	full := len(baseline) != len(s.shards)
	for i := range s.shards {
		pc.Marks[i] = s.shards[i].dirty.Load()
		pc.Dirty[i] = full || pc.Marks[i] != baseline[i]
	}
	pc.Snap = s.pinLocked()
	hold := time.Since(start).Nanoseconds()
	s.unlockAll()
	pc.LockHoldNs = hold
	return pc, nil
}
