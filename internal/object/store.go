package object

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
)

// DeletePolicy controls what deleting a transmitter does to its bound
// inheritors. The paper leaves this open; both behaviours are useful.
type DeletePolicy uint8

const (
	// DeleteRestrict refuses to delete a transmitter with live inheritors.
	DeleteRestrict DeletePolicy = iota
	// DeleteUnbind detaches inheritors (they fall back to type-level
	// inheritance: structure without values) and flags them for
	// adaptation via the update hook.
	DeleteUnbind
)

// UpdateEvent describes a permeable transmitter change observed by a
// binding; hooks receive it synchronously under the store lock, so they
// must not call back into the store.
type UpdateEvent struct {
	Rel         string // inher-rel-type name
	Binding     domain.Surrogate
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
	Member      string // attribute or subclass that changed
	Seq         uint64
	// Unbound marks the transmitter-side deletion under DeleteUnbind.
	Unbound bool
}

// UpdateHook observes permeable transmitter updates (the trigger
// mechanism the paper defers to future work, §2/§4.1).
type UpdateHook func(UpdateEvent)

// Store is the object base: all objects, classes and bindings of one
// database, typed by a validated schema catalog.
type Store struct {
	mu  sync.RWMutex
	cat *schema.Catalog

	objects map[domain.Surrogate]*Object
	classes map[string]*Class

	// byInheritor indexes bindings by (inheritor, inher-rel-type).
	byInheritor map[domain.Surrogate]map[string]*Binding
	// byTransmitter indexes bindings by transmitter.
	byTransmitter map[domain.Surrogate][]*Binding
	// relsByParticipant indexes relationship objects by the objects they
	// relate, for cascading deletes (allocated lazily).
	relsByParticipant map[domain.Surrogate]map[domain.Surrogate]bool

	nextSur uint64
	seq     uint64

	deletePolicy DeletePolicy
	hooks        []UpdateHook

	// journal, when set, receives every successful mutation in execution
	// order; called under the store mutex, so it must not call back in.
	journal func(*oplog.Op)

	// guard, when set, is consulted before any mutation of an object; a
	// non-nil result vetoes the mutation. The database facade uses it to
	// write-protect frozen versions.
	guard func(sur domain.Surrogate) error

	// epoch is the structure epoch: bumped under the write lock by every
	// operation that can change a resolution route (bind, unbind, delete,
	// class materialization, definitions). Plain attribute writes never
	// bump it. See cache.go.
	epoch  atomic.Uint64
	routes routeCache

	hits, misses, invalidations atomic.Uint64
}

// NewStore creates an empty store over a validated catalog.
func NewStore(cat *schema.Catalog) (*Store, error) {
	if !cat.Validated() {
		return nil, fmt.Errorf("object: catalog must be validated")
	}
	s := &Store{
		cat:           cat,
		objects:       make(map[domain.Surrogate]*Object),
		classes:       make(map[string]*Class),
		byInheritor:   make(map[domain.Surrogate]map[string]*Binding),
		byTransmitter: make(map[domain.Surrogate][]*Binding),
	}
	s.routes.init()
	return s, nil
}

// Catalog returns the schema catalog.
func (s *Store) Catalog() *schema.Catalog { return s.cat }

// SetDeletePolicy selects the transmitter delete behaviour.
func (s *Store) SetDeletePolicy(p DeletePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletePolicy = p
	s.emit(&oplog.Op{Kind: oplog.KindDeletePolicy, Num: int64(p)})
}

// SetJournal installs the journal callback. It is invoked under the store
// mutex after every successful mutation, in execution order; it must not
// call store methods. Pass nil to disable journaling.
func (s *Store) SetJournal(fn func(*oplog.Op)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = fn
}

func (s *Store) emit(op *oplog.Op) {
	if s.journal != nil {
		s.journal(op)
	}
}

// SetWriteGuard installs a veto consulted before mutations of an object
// (attribute writes, subobject/relationship insertion, binding changes,
// deletion). Pass nil to disable.
func (s *Store) SetWriteGuard(g func(sur domain.Surrogate) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = g
}

func (s *Store) guardLocked(sur domain.Surrogate) error {
	if s.guard != nil {
		return s.guard(sur)
	}
	return nil
}

// OnTransmitterUpdate registers a hook; hooks run synchronously under the
// store lock and must not call store methods.
func (s *Store) OnTransmitterUpdate(h UpdateHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, h)
}

// Seq returns the current logical update sequence number.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// ModSeq returns the store sequence of the object's last direct mutation;
// 0 if it was never mutated since creation. Long transactions use it for
// optimistic checkin validation.
func (s *Store) ModSeq(sur domain.Surrogate) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return 0, noObject(sur)
	}
	return o.modSeq, nil
}

// DefineClass creates a database-level class holding objects of the given
// type ("" = unrestricted). Several classes may hold objects of the same
// type (§3).
func (s *Store) DefineClass(name, elemType string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return fmt.Errorf("object: class needs a name")
	}
	if _, dup := s.classes[name]; dup {
		return fmt.Errorf("object: duplicate class %q", name)
	}
	if elemType != "" {
		if _, ok := s.cat.ObjectType(elemType); !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, elemType)
		}
	}
	s.classes[name] = newClass(name, elemType)
	s.bumpEpochLocked()
	s.emit(&oplog.Op{Kind: oplog.KindDefineClass, Name: name, Name2: elemType})
	return nil
}

// Class returns the members of a database-level class.
func (s *Store) Class(name string) ([]domain.Surrogate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	return c.Members(), nil
}

// ClassNames lists database-level classes, sorted.
func (s *Store) ClassNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedNames(s.classes)
}

// NewObject creates a top-level object of the named type, optionally
// inserting it into a database-level class.
func (s *Store) NewObject(typeName, className string) (domain.Surrogate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.cat.ObjectType(typeName)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchType, typeName)
	}
	var cls *Class
	if className != "" {
		cls, ok = s.classes[className]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchClass, className)
		}
		if cls.elemType != "" && cls.elemType != typeName {
			return 0, fmt.Errorf("%w: class %q holds %q, not %q", ErrTypeMismatch, className, cls.elemType, typeName)
		}
	}
	o := s.newObjectLocked(t, false)
	if cls != nil {
		cls.add(o.sur)
		o.ownerClass = className
	}
	s.emit(&oplog.Op{Kind: oplog.KindNewObject, Name: typeName, Name2: className, Out: o.sur})
	return o.sur, nil
}

// NewSubobject creates a subobject in the named local subclass of parent.
// The member type comes from the subclass declaration; subobjects live
// and die with the parent (§3).
func (s *Store) NewSubobject(parent domain.Surrogate, subclass string) (domain.Surrogate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	po, ok := s.objects[parent]
	if !ok {
		return 0, noObject(parent)
	}
	if err := s.guardLocked(parent); err != nil {
		return 0, err
	}
	sd, cls, err := s.subclassOf(po, subclass)
	if err != nil {
		return 0, err
	}
	if sd.Inherited() {
		return 0, fmt.Errorf("%w: subclass %q is inherited from %s and read-only here",
			ErrInheritedAttribute, subclass, sd.Source)
	}
	mt, ok := s.cat.ObjectType(sd.ElemType)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchType, sd.ElemType)
	}
	o := s.newObjectLocked(mt, false)
	o.parent = parent
	o.parentSub = subclass
	cls.add(o.sur)
	s.seq++
	po.modSeq = s.seq
	// Gaining a member is a visible change of the subclass: inheritors of
	// the parent (e.g. implementations of an interface gaining a pin) are
	// informed through their binding bookkeeping.
	s.notifyLocked(parent, subclass, map[domain.Surrogate]bool{})
	s.emit(&oplog.Op{Kind: oplog.KindNewSubobject, Sur: parent, Name: subclass, Out: o.sur})
	return o.sur, nil
}

// subclassOf resolves a subclass declaration and its materialized class on
// an object, creating the class lazily for own (non-inherited) subclasses.
func (s *Store) subclassOf(o *Object, name string) (*schema.EffSubclass, *Class, error) {
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return nil, nil, err
	}
	sd, ok := eff.SubclassByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	if sd.Inherited() {
		return sd, nil, nil
	}
	cls, ok := o.subclasses[name]
	if !ok {
		cls = newClass(name, sd.ElemType)
		o.subclasses[name] = cls
		// Materializing a subclass changes what members routes must point
		// at: a route memoized before the class existed records "empty".
		s.bumpEpochLocked()
	}
	return sd, cls, nil
}

func (s *Store) effectiveLocked(o *Object) (*schema.EffectiveType, error) {
	if o.isRel {
		return nil, fmt.Errorf("%w: %q is a relationship type", ErrNoSuchType, o.typeName)
	}
	eff, ok := s.cat.Effective(o.typeName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchType, o.typeName)
	}
	return eff, nil
}

func (s *Store) newObjectLocked(t *schema.ObjectType, isRel bool) *Object {
	s.nextSur++
	o := &Object{
		sur:          domain.Surrogate(s.nextSur),
		typeName:     t.Name,
		isRel:        isRel,
		subclasses:   make(map[string]*Class),
		subrels:      make(map[string]*Class),
		participants: nil,
	}
	o.initAttrs(nil)
	s.objects[o.sur] = o
	return o
}

// Exists reports whether a surrogate denotes a live object.
func (s *Store) Exists(sur domain.Surrogate) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[sur]
	return ok
}

// TypeOf returns the type name of an object.
func (s *Store) TypeOf(sur domain.Surrogate) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return "", noObject(sur)
	}
	return o.typeName, nil
}

// Get returns the object for a surrogate. The returned *Object must be
// treated as read-only.
func (s *Store) Get(sur domain.Surrogate) (*Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return o, nil
}

// Len reports the number of live objects (including relationship objects).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Surrogates returns all live surrogates in ascending order; intended for
// iteration in tools, tests and persistence snapshots.
func (s *Store) Surrogates() []domain.Surrogate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]domain.Surrogate, 0, len(s.objects))
	for sur := range s.objects {
		out = append(out, sur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
