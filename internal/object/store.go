package object

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/fault"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
)

// fpPreJournal crashes between the shard mutation (already applied in
// memory) and the journal append. Creation and topology ops emit while
// holding every lock they mutated under, so no concurrent writer can
// journal an op depending on the lost one: recovery always sees a
// dependency-closed prefix. Exit-kind armings only — emit has no error
// channel, so an error action is evaluated and discarded.
var fpPreJournal = fault.New("object/pre-journal")

// DeletePolicy controls what deleting a transmitter does to its bound
// inheritors. The paper leaves this open; both behaviours are useful.
type DeletePolicy uint8

const (
	// DeleteRestrict refuses to delete a transmitter with live inheritors.
	DeleteRestrict DeletePolicy = iota
	// DeleteUnbind detaches inheritors (they fall back to type-level
	// inheritance: structure without values) and flags them for
	// adaptation via the update hook.
	DeleteUnbind
)

// UpdateEvent describes a permeable transmitter change observed by a
// binding. Events are collected inside the critical section (so their
// order matches the journal) and delivered after the locks are released;
// hooks may therefore call back into the store, including the mutation
// API.
type UpdateEvent struct {
	Rel         string // inher-rel-type name
	Binding     domain.Surrogate
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
	Member      string // attribute or subclass that changed
	Seq         uint64
	// Unbound marks the transmitter-side deletion under DeleteUnbind.
	Unbound bool
}

// UpdateHook observes permeable transmitter updates (the trigger
// mechanism the paper defers to future work, §2/§4.1). Hooks run after
// the emitting operation has released its locks, in store-sequence order,
// on the goroutine that performed the mutation (or one racing with it);
// they are allowed to call store methods.
type UpdateHook func(UpdateEvent)

// DefaultShards is the shard count used when none is configured.
const DefaultShards = 16

// classStripes is the fixed stripe count for database-level classes.
const classStripes = 16

// shard owns a surrogate-hashed partition of the store: its objects, the
// binding indexes keyed by surrogates it owns, a structure epoch and the
// resolution-route cache for routes rooted at its surrogates.
//
// Locking protocol (the shard-ordering invariant):
//
//   - Topology — the objects map, binding indexes, participant index,
//     class membership and parent links — is only mutated while holding
//     ALL shard write locks (and all class stripes), acquired in
//     ascending index order. Consequently, holding any ONE shard lock
//     (read or write) freezes topology store-wide, so single-shard
//     operations may follow inheritance chains through other shards
//     without further locking.
//   - Per-object data (attribute slots, modSeq) is mutated under the
//     owning object's shard write lock only; binding bookkeeping uses
//     commuting atomics and may be touched under any shard lock.
//
// This keeps the hot single-shard paths (SetAttr, reads) on one mutex
// while multi-shard structural operations serialize deterministically.
type shard struct {
	mu sync.RWMutex

	objects map[domain.Surrogate]*Object
	// byInheritor indexes bindings by (inheritor, inher-rel-type) for
	// inheritors owned by this shard.
	byInheritor map[domain.Surrogate]map[string]*Binding
	// byTransmitter indexes bindings by transmitters owned by this shard.
	byTransmitter map[domain.Surrogate][]*Binding
	// relsByParticipant indexes relationship objects by participants owned
	// by this shard, for cascading deletes.
	relsByParticipant map[domain.Surrogate]map[domain.Surrogate]bool

	// epoch is the shard's structure epoch: bumped (under all shard write
	// locks) by every structural operation that can change a resolution
	// route rooted at or passing through this shard's surrogates. Plain
	// attribute writes never bump it. See cache.go.
	epoch  atomic.Uint64
	routes routeCache

	// dirty counts logical mutations of durable state owned by this shard:
	// object and binding creation or removal, attribute writes, and binding
	// bookkeeping advances. The incremental checkpointer compares it
	// against the value captured at the last committed checkpoint to decide
	// whether the shard's snapshot segment must be re-encoded. Unlike epoch
	// it advances on plain attribute writes too, and it plays no part in
	// route invalidation. It is an atomic because cross-shard effects
	// (binding bookkeeping, acknowledgements) mutate objects owned by other
	// shards while holding only one shard lock.
	dirty atomic.Uint64

	// Snapshot-side indexes (mvcc.go). Live reads never touch them; they
	// are parallel structures a pinned Snapshot traverses lock-free:
	//
	//   snapObjs    sur -> *Object, inserted at the creating operation's
	//               commit point (createdSeq already stamped) and retained
	//               past deletion until the sweep unlinks dead entries.
	//   snapBindIn  inheritor sur -> *ibChain (versions of byInheritor)
	//   snapBindOut transmitter sur -> *tbChain (versions of byTransmitter)
	//
	// retained counts version nodes and dead objects kept alive for pins;
	// the sweep pacing compares its total against the last sweep.
	snapObjs    sync.Map
	snapBindIn  sync.Map
	snapBindOut sync.Map
	retained    atomic.Uint64

	hits, misses, invalidations atomic.Uint64

	_ [64]byte // avoid false sharing between neighbouring shards
}

// classStripe owns a name-hashed partition of the database-level classes.
// Stripe locks order after all shard locks: multi-shard operations take
// shards ascending, then stripes ascending; DefineClass and class reads
// take only the stripe.
type classStripe struct {
	mu      sync.RWMutex
	classes map[string]*Class
	_       [64]byte
}

// hookQueue decouples UpdateHook delivery from the store critical
// sections: events enqueue under the shard locks (fixing their order) and
// drain after release. dispatchMu admits one drainer at a time; an
// enqueuer that fails to grab it leaves its events to the current
// drainer, which loops until the queue stays empty.
type hookQueue struct {
	mu         sync.Mutex
	q          []UpdateEvent
	dispatchMu sync.Mutex
}

// Store is the object base: all objects, classes and bindings of one
// database, typed by a validated schema catalog. It is partitioned into
// surrogate-hashed shards; see the shard type for the locking protocol.
type Store struct {
	cat *schema.Catalog

	shards  []shard
	stripes [classStripes]classStripe
	seed    maphash.Seed

	// nextSur and seq are global atomics. seq is consumed exactly once per
	// sequenced mutation, inside the owning shard's critical section, and
	// journaled on the op (oplog.Op.Seq) so replay reproduces the same
	// assignment even when non-conflicting ops commit to the journal out
	// of counter order.
	nextSur atomic.Uint64
	seq     atomic.Uint64

	// deletePolicy is guarded by the all-shard write lock.
	deletePolicy DeletePolicy

	// hooks is swapped copy-on-write; dispatchers read it lock-free.
	hooks atomic.Pointer[[]UpdateHook]
	hookQ hookQueue

	// journal, when set, receives every successful mutation while the
	// emitting operation still holds its shard locks, so conflicting ops
	// appear in serialization order; it must not call back in.
	journal func(*oplog.Op)

	// guard, when set, is consulted before any mutation of an object; a
	// non-nil result vetoes the mutation. The database facade uses it to
	// write-protect frozen versions.
	guard func(sur domain.Surrogate) error

	// mvcc is the snapshot-pin registry and version-GC state (mvcc.go).
	mvcc mvccState
	// snapClasses mirrors the database-level classes for lock-free
	// snapshot lookup (Class.createdSeq gates visibility).
	snapClasses sync.Map
	// touched collects classes whose membership the running
	// store-exclusive operation mutates; commitClassHist publishes their
	// history versions at the operation's sequence. All-shard lock only.
	touched []*Class

	// indexes is the copy-on-write secondary-index registry (index.go).
	// Readers (the SetAttr hot path, probes) load it with one atomic read;
	// nil means no index was ever created and maintenance costs nothing.
	indexes atomic.Pointer[idxRegistry]
	// idxPend and idxRecompute queue index maintenance of the running
	// store-exclusive operation until its commit sequence is known
	// (idxCommit / idxAbort). All-shard lock only.
	idxPend      []idxPend
	idxRecompute map[domain.Surrogate]bool
}

// NewStore creates an empty store over a validated catalog with the
// default shard count.
func NewStore(cat *schema.Catalog) (*Store, error) {
	return NewStoreShards(cat, DefaultShards)
}

// NewStoreShards creates an empty store with the given number of
// surrogate-hashed shards (values < 1 fall back to the default). The
// shard count does not affect logical state, snapshots or journals — only
// how concurrent mutations contend.
func NewStoreShards(cat *schema.Catalog, shards int) (*Store, error) {
	if !cat.Validated() {
		return nil, fmt.Errorf("object: catalog must be validated")
	}
	if shards < 1 {
		shards = DefaultShards
	}
	s := &Store{cat: cat, shards: make([]shard, shards), seed: maphash.MakeSeed()}
	s.mvcc.lowA.Store(^uint64(0)) // no pins: low-water mark at infinity
	for i := range s.shards {
		sh := &s.shards[i]
		sh.objects = make(map[domain.Surrogate]*Object)
		sh.byInheritor = make(map[domain.Surrogate]map[string]*Binding)
		sh.byTransmitter = make(map[domain.Surrogate][]*Binding)
		sh.relsByParticipant = make(map[domain.Surrogate]map[domain.Surrogate]bool)
		sh.routes.init()
	}
	for i := range s.stripes {
		s.stripes[i].classes = make(map[string]*Class)
	}
	hooks := []UpdateHook(nil)
	s.hooks.Store(&hooks)
	return s, nil
}

// Shards reports the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardIndex maps a surrogate to its owning shard. Surrogates are dense
// and sequential, so a plain modulo spreads them evenly.
func (s *Store) shardIndex(sur domain.Surrogate) int {
	return int(uint64(sur) % uint64(len(s.shards)))
}

func (s *Store) shardOf(sur domain.Surrogate) *shard {
	return &s.shards[s.shardIndex(sur)]
}

// ShardIndex reports which shard owns a surrogate. Recovery uses it to
// partition journal records for parallel replay; the partitioning must
// match the store's own routing or per-shard replay order would not be
// the serialization order.
func (s *Store) ShardIndex(sur domain.Surrogate) int { return s.shardIndex(sur) }

// markDirty records a durable-state mutation of the object owning sur for
// incremental checkpointing. Callers hold at least one shard lock (not
// necessarily the owning shard's: binding bookkeeping and
// acknowledgements advance objects across shards), so the counter is an
// atomic.
func (s *Store) markDirty(sur domain.Surrogate) {
	s.shards[s.shardIndex(sur)].dirty.Add(1)
}

// stripeOf maps a class name to its stripe.
func (s *Store) stripeOf(name string) *classStripe {
	return &s.stripes[maphash.String(s.seed, name)%classStripes]
}

// lockAll acquires every shard write lock and every class stripe write
// lock in ascending order — the store-wide exclusive section used by all
// structural and multi-shard operations. Never acquire a shard or stripe
// lock while already holding a later-ordered one.
func (s *Store) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].mu.Unlock()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// rlockAll acquires every shard and stripe read lock in ascending order:
// a store-wide consistent read view (snapshots, invariant checks).
func (s *Store) rlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].mu.RUnlock()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.RUnlock()
	}
}

// obj looks an object up in its owning shard's map. Callers hold at least
// one shard lock (any shard: topology is frozen store-wide, see shard).
func (s *Store) obj(sur domain.Surrogate) (*Object, bool) {
	o, ok := s.shardOf(sur).objects[sur]
	return o, ok
}

// lookupClass finds a database-level class; callers hold the class's
// stripe lock (or all stripes).
func (s *Store) lookupClass(name string) (*Class, bool) {
	c, ok := s.stripeOf(name).classes[name]
	return c, ok
}

// Catalog returns the schema catalog.
func (s *Store) Catalog() *schema.Catalog { return s.cat }

// SetDeletePolicy selects the transmitter delete behaviour.
func (s *Store) SetDeletePolicy(p DeletePolicy) {
	s.lockAll()
	defer s.unlockAll()
	s.deletePolicy = p
	s.emit(&oplog.Op{Kind: oplog.KindDeletePolicy, Num: int64(p)})
}

// SetJournal installs the journal callback. It is invoked under the
// emitting operation's shard locks after every successful mutation, in
// serialization order for conflicting ops; it must not call store
// methods. Pass nil to disable journaling.
func (s *Store) SetJournal(fn func(*oplog.Op)) {
	s.lockAll()
	defer s.unlockAll()
	s.journal = fn
}

func (s *Store) emit(op *oplog.Op) {
	_ = fpPreJournal.Hit()
	if s.journal != nil {
		s.journal(op)
	}
}

// SetWriteGuard installs a veto consulted before mutations of an object
// (attribute writes, subobject/relationship insertion, binding changes,
// deletion). Pass nil to disable.
func (s *Store) SetWriteGuard(g func(sur domain.Surrogate) error) {
	s.lockAll()
	defer s.unlockAll()
	s.guard = g
}

func (s *Store) guardLocked(sur domain.Surrogate) error {
	if s.guard != nil {
		return s.guard(sur)
	}
	return nil
}

// OnTransmitterUpdate registers a hook. Hooks run after the triggering
// operation releases its locks and may call back into the store.
func (s *Store) OnTransmitterUpdate(h UpdateHook) {
	s.lockAll()
	defer s.unlockAll()
	next := append(append([]UpdateHook(nil), *s.hooks.Load()...), h)
	s.hooks.Store(&next)
}

// queueEvents appends events to the dispatch queue. Called while still
// holding the emitting operation's locks, so queue order matches the
// serialization (and journal) order of conflicting operations.
func (s *Store) queueEvents(evs []UpdateEvent) {
	s.hookQ.mu.Lock()
	s.hookQ.q = append(s.hookQ.q, evs...)
	s.hookQ.mu.Unlock()
}

// dispatchEvents drains the hook queue after the caller released its
// locks. Only one drainer runs at a time; if another goroutine is already
// draining it will pick up our events (it re-checks the queue after every
// batch), so failing the TryLock never strands events.
func (s *Store) dispatchEvents() {
	for {
		if !s.hookQ.dispatchMu.TryLock() {
			return
		}
		s.hookQ.mu.Lock()
		batch := s.hookQ.q
		s.hookQ.q = nil
		s.hookQ.mu.Unlock()
		if len(batch) == 0 {
			s.hookQ.dispatchMu.Unlock()
			return
		}
		hooks := *s.hooks.Load()
		for _, ev := range batch {
			for _, h := range hooks {
				h(ev)
			}
		}
		s.hookQ.dispatchMu.Unlock()
	}
}

// Seq returns the current logical update sequence number.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// PrimeReplay positions the sequence and surrogate counters just below
// the values a journaled op recorded, so re-executing it reproduces the
// original assignment even when concurrent writers journaled ops out of
// counter order. Only the single-threaded recovery path may call it.
func (s *Store) PrimeReplay(seq uint64, out domain.Surrogate) {
	if seq > 0 {
		s.seq.Store(seq - 1)
	}
	if out != 0 {
		s.nextSur.Store(uint64(out) - 1)
	}
}

// FinishReplay restores the counters to at least the maxima observed
// while replaying (gaps from ops that consumed a value but failed are
// harmless: nothing references a burned surrogate or sequence).
func (s *Store) FinishReplay(maxSeq uint64, maxSur domain.Surrogate) {
	if s.seq.Load() < maxSeq {
		s.seq.Store(maxSeq)
	}
	if s.nextSur.Load() < uint64(maxSur) {
		s.nextSur.Store(uint64(maxSur))
	}
}

// ModSeq returns the store sequence of the object's last direct mutation;
// 0 if it was never mutated since creation. Long transactions use it for
// optimistic checkin validation.
func (s *Store) ModSeq(sur domain.Surrogate) (uint64, error) {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return 0, noObject(sur)
	}
	return o.modSeq.Load(), nil
}

// DefineClass creates a database-level class holding objects of the given
// type ("" = unrestricted). Several classes may hold objects of the same
// type (§3). It locks only the class's stripe: class creation cannot
// change any memoized resolution route.
func (s *Store) DefineClass(name, elemType string) error {
	if name == "" {
		return fmt.Errorf("object: class needs a name")
	}
	st := s.stripeOf(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.classes[name]; dup {
		return fmt.Errorf("object: duplicate class %q", name)
	}
	if elemType != "" {
		if _, ok := s.cat.ObjectType(elemType); !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, elemType)
		}
	}
	c := newClass(name, elemType)
	seq := s.seq.Add(1)
	c.createdSeq = seq
	st.classes[name] = c
	s.snapClasses.Store(name, c)
	s.emit(&oplog.Op{Kind: oplog.KindDefineClass, Name: name, Name2: elemType, Seq: seq})
	return nil
}

// Class returns the members of a database-level class.
func (s *Store) Class(name string) ([]domain.Surrogate, error) {
	st := s.stripeOf(name)
	st.mu.RLock()
	defer st.mu.RUnlock()
	c, ok := st.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	return c.Members(), nil
}

// ClassSize returns the member count of a database-level class without
// materializing the extent, or -1 if no such class exists. It is the
// query planner's costing probe.
func (s *Store) ClassSize(name string) int {
	st := s.stripeOf(name)
	st.mu.RLock()
	defer st.mu.RUnlock()
	c, ok := st.classes[name]
	if !ok {
		return -1
	}
	return c.Len()
}

// ClassNames lists database-level classes, sorted.
func (s *Store) ClassNames() []string {
	var names []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for n := range st.classes {
			names = append(names, n)
		}
		st.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// NewObject creates a top-level object of the named type, optionally
// inserting it into a database-level class. Creation inserts into the
// topology maps, so it runs store-wide exclusive.
func (s *Store) NewObject(typeName, className string) (domain.Surrogate, error) {
	s.lockAll()
	defer s.unlockAll()
	t, ok := s.cat.ObjectType(typeName)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchType, typeName)
	}
	var cls *Class
	if className != "" {
		cls, ok = s.lookupClass(className)
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchClass, className)
		}
		if cls.elemType != "" && cls.elemType != typeName {
			return 0, fmt.Errorf("%w: class %q holds %q, not %q", ErrTypeMismatch, className, cls.elemType, typeName)
		}
	}
	o := s.newObjectLocked(t, false)
	if cls != nil {
		o.ownerClass = className
		s.classAdd(cls, o.sur)
	}
	seq := s.seq.Add(1)
	s.publishObj(o, seq)
	s.commitClassHist(seq)
	s.emit(&oplog.Op{Kind: oplog.KindNewObject, Name: typeName, Name2: className, Out: o.sur, Seq: seq})
	return o.sur, nil
}

// NewSubobject creates a subobject in the named local subclass of parent.
// The member type comes from the subclass declaration; subobjects live
// and die with the parent (§3).
func (s *Store) NewSubobject(parent domain.Surrogate, subclass string) (domain.Surrogate, error) {
	s.lockAll()
	dispatch, sur, err := func() (bool, domain.Surrogate, error) {
		po, ok := s.obj(parent)
		if !ok {
			return false, 0, noObject(parent)
		}
		if err := s.guardLocked(parent); err != nil {
			return false, 0, err
		}
		sd, cls, err := s.subclassOf(po, subclass)
		if err != nil {
			return false, 0, err
		}
		if sd.Inherited() {
			return false, 0, fmt.Errorf("%w: subclass %q is inherited from %s and read-only here",
				ErrInheritedAttribute, subclass, sd.Source)
		}
		mt, ok := s.cat.ObjectType(sd.ElemType)
		if !ok {
			return false, 0, fmt.Errorf("%w: %q", ErrNoSuchType, sd.ElemType)
		}
		o := s.newObjectLocked(mt, false)
		o.parent = parent
		o.parentSub = subclass
		s.classAdd(cls, o.sur)
		seq := s.seq.Add(1)
		s.publishObj(o, seq)
		s.commitClassHist(seq)
		po.pushModSeq(seq, s.ceiling())
		s.markDirty(parent)
		// Gaining a member is a visible change of the subclass: inheritors of
		// the parent (e.g. implementations of an interface gaining a pin) are
		// informed through their binding bookkeeping.
		n := notifier{s: s, seq: seq}
		n.notify(parent, subclass)
		s.emit(&oplog.Op{Kind: oplog.KindNewSubobject, Sur: parent, Name: subclass, Out: o.sur, Seq: seq})
		return n.queue(), o.sur, nil
	}()
	s.unlockAll()
	if dispatch {
		s.dispatchEvents()
	}
	return sur, err
}

// subclassOf resolves a subclass declaration and its materialized class on
// an object, creating the class lazily for own (non-inherited) subclasses.
// Callers hold all shard locks (materialization mutates topology).
func (s *Store) subclassOf(o *Object, name string) (*schema.EffSubclass, *Class, error) {
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return nil, nil, err
	}
	sd, ok := eff.SubclassByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	if sd.Inherited() {
		return sd, nil, nil
	}
	cls, ok := o.subMap()[name]
	if !ok {
		cls = newClass(name, sd.ElemType)
		o.putSub(name, cls)
		// Materializing a subclass changes what members routes must point
		// at: a route memoized before the class existed records "empty".
		// Any such route has o in its chain, so o's shard epoch covers it.
		s.bumpEpoch(s.shardOf(o.sur))
	}
	return sd, cls, nil
}

func (s *Store) effectiveLocked(o *Object) (*schema.EffectiveType, error) {
	if o.isRel {
		return nil, fmt.Errorf("%w: %q is a relationship type", ErrNoSuchType, o.typeName)
	}
	eff, ok := s.cat.Effective(o.typeName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchType, o.typeName)
	}
	return eff, nil
}

func (s *Store) newObjectLocked(t *schema.ObjectType, isRel bool) *Object {
	sur := domain.Surrogate(s.nextSur.Add(1))
	o := &Object{
		sur:          sur,
		typeName:     t.Name,
		isRel:        isRel,
		participants: nil,
	}
	o.initClasses()
	o.initAttrs(nil, 0)
	s.shardOf(sur).objects[sur] = o
	s.markDirty(sur)
	return o
}

// Exists reports whether a surrogate denotes a live object.
func (s *Store) Exists(sur domain.Surrogate) bool {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.objects[sur]
	return ok
}

// TypeOf returns the type name of an object.
func (s *Store) TypeOf(sur domain.Surrogate) (string, error) {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return "", noObject(sur)
	}
	return o.typeName, nil
}

// Get returns the object for a surrogate. The returned *Object must be
// treated as read-only.
func (s *Store) Get(sur domain.Surrogate) (*Object, error) {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return o, nil
}

// Len reports the number of live objects (including relationship objects).
func (s *Store) Len() int {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].objects)
	}
	return n
}

// Surrogates returns all live surrogates in ascending order; intended for
// iteration in tools, tests and persistence snapshots.
func (s *Store) Surrogates() []domain.Surrogate {
	s.rlockAll()
	defer s.runlockAll()
	return s.surrogatesLocked()
}
