package object

// Multi-version concurrency control: copy-on-write version chains.
//
// Every mutable slot that a snapshot reader may traverse — attribute
// slots, per-object modification sequences, binding bookkeeping, the
// binding indexes and class membership — is a chain of immutable version
// nodes stamped with the operation's global sequence number (oplog.Op.Seq).
// A Snapshot pins a store-wide sequence point S; a reader at S walks a
// chain from the head to the first node with at <= S, lock-free, while
// writers keep prepending new heads at full speed.
//
// Chains stay short without pins: a writer consults the pin ceiling (the
// highest pinned sequence) and *replaces* the head when no pin can still
// read it (head.at > ceiling), reusing the head's tail — so with zero pins
// every chain is exactly one node, the legacy in-place behaviour. With k
// live pins a slot accumulates at most one retained node per distinct pin
// sequence. A low-water-mark sweep (SweepVersions) trims retained nodes
// and unlinks deleted objects once the pins that needed them release.
//
// Correctness of "first node with at <= S": a pin's sequence S is read
// under all shard read locks, so every operation is entirely before the
// pin (seq <= S, fully published) or entirely after (seq > S). Chains may
// interleave nodes of commuting cross-shard operations out of sequence
// order, but all nodes a reader at S skips were published after its pin
// and all nodes at or below its stop point were published before it.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// ---------------------------------------------------------------------------
// Attribute slots

// aver is one version of an attribute slot. v == nil is a tombstone: the
// attribute was removed (set to null) at sequence at. prev is atomic only
// so the sweep can cut tails under a reader walking the chain; nodes are
// otherwise immutable once published.
type aver struct {
	at   uint64
	v    *domain.Value
	prev atomic.Pointer[aver]
}

// attrBox is one attribute slot: a version chain plus the memoized schema
// declaration. The head is swapped atomically so the lock-free resolution
// cache hit path (and cross-shard expression evaluation) reads a
// consistent value without synchronization, while a writer holding only
// its own shard lock publishes in place — no whole-map copy per write.
type attrBox struct {
	head atomic.Pointer[aver]
	// decl memoizes the schema declaration this slot was validated
	// against, letting repeated writes skip the effective-type lookups.
	// Accessed only under the owning shard's write lock.
	decl *schema.EffAttr
}

func newAttrBoxAt(v domain.Value, at uint64) *attrBox {
	b := &attrBox{}
	b.head.Store(&aver{at: at, v: &v})
	return b
}

// load returns the live (head) value; ok is false on a tombstone head.
func (b *attrBox) load() (domain.Value, bool) {
	h := b.head.Load()
	if h == nil || h.v == nil {
		return nil, false
	}
	return *h.v, true
}

// at returns the value visible at sequence point s (absent if the slot
// did not exist, or held a tombstone, at s). Lock-free.
func (b *attrBox) at(s uint64) (domain.Value, bool) {
	for n := b.head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= s {
			if n.v == nil {
				return nil, false
			}
			return *n.v, true
		}
	}
	return nil, false
}

// put publishes a new version stamped at. ceil is the current pin
// ceiling: the old head is kept on the chain only if a pin may still read
// it (head.at <= ceil); otherwise the new head reuses the old tail, so an
// unpinned slot never grows. Serialized by the owning shard's write lock.
// Reports whether the chain grew.
func (b *attrBox) put(at uint64, v *domain.Value, ceil uint64) bool {
	h := b.head.Load()
	n := &aver{at: at, v: v}
	grew := false
	if h != nil {
		if h.at <= ceil && h.at < at {
			n.prev.Store(h)
			grew = true
		} else {
			n.prev.Store(h.prev.Load())
		}
	}
	b.head.Store(n)
	return grew
}

// ---------------------------------------------------------------------------
// Per-object modification sequence

// mver is one retained historic modSeq value (the value IS at: modSeq is
// always set to the mutating operation's sequence).
type mver struct {
	at   uint64
	prev atomic.Pointer[mver]
}

// pushModSeq advances the object's modSeq to seq, retaining the previous
// value on the history chain while a pin may still read it. Serialized by
// the owning shard's write lock (or the all-shard lock).
func (o *Object) pushModSeq(seq, ceil uint64) bool {
	cur := o.modSeq.Load()
	grew := false
	if cur != 0 && cur <= ceil && cur < seq {
		n := &mver{at: cur}
		n.prev.Store(o.modPrev.Load())
		o.modPrev.Store(n)
		grew = true
	}
	o.modSeq.Store(seq)
	return grew
}

// modAt returns the modification sequence visible at s.
func (o *Object) modAt(s uint64) uint64 {
	if cur := o.modSeq.Load(); cur <= s {
		return cur
	}
	for n := o.modPrev.Load(); n != nil; n = n.prev.Load() {
		if n.at <= s {
			return n.at
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Binding bookkeeping

// bookNode is one version of a binding's system bookkeeping. Values are
// absolute (not deltas); concurrent cross-shard pushes converge through a
// CAS loop on the head, so the head always reflects every push published
// so far even when nodes land out of sequence order.
type bookNode struct {
	at   uint64
	upd  int64
	last int64
	ack  int64
	prev atomic.Pointer[bookNode]
}

// bindingBook holds the system bookkeeping of one inheritance binding as
// a version chain. Transmitter updates fan out across shards while the
// writer holds only its own shard lock, so pushes must commute: each push
// derives the new absolutes from the current head and retries on CAS
// failure — concurrent updates reach the same final head in any order,
// which journal replay depends on.
type bindingBook struct {
	head atomic.Pointer[bookNode]
}

// now returns the live bookkeeping values.
func (bk *bindingBook) now() (upd, last, ack int64) {
	if h := bk.head.Load(); h != nil {
		return h.upd, h.last, h.ack
	}
	return 0, 0, 0
}

// at returns the bookkeeping values visible at sequence point s.
func (bk *bindingBook) at(s uint64) (upd, last, ack int64) {
	for n := bk.head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= s {
			return n.upd, n.last, n.ack
		}
	}
	return 0, 0, 0
}

// push publishes new absolutes derived from the current head by f,
// stamped at. Keep/replace of the old head follows the same ceiling rule
// as attribute slots. Reports whether the chain grew.
func (bk *bindingBook) push(at, ceil uint64, f func(upd, last, ack int64) (int64, int64, int64)) bool {
	for {
		h := bk.head.Load()
		var upd, last, ack int64
		if h != nil {
			upd, last, ack = h.upd, h.last, h.ack
		}
		u, l, a := f(upd, last, ack)
		n := &bookNode{at: at, upd: u, last: l, ack: a}
		grew := false
		if h != nil {
			if h.at <= ceil && h.at < at {
				n.prev.Store(h)
				grew = true
			} else {
				n.prev.Store(h.prev.Load())
			}
		}
		if bk.head.CompareAndSwap(h, n) {
			return grew
		}
	}
}

// noteUpdate records one permeable transmitter update at seq.
func (bk *bindingBook) noteUpdate(seq, ceil uint64) bool {
	return bk.push(seq, ceil, func(upd, last, ack int64) (int64, int64, int64) {
		if int64(seq) > last {
			last = int64(seq)
		}
		return upd + 1, last, ack
	})
}

// acknowledge raises AcknowledgedSeq to at least ack, at op sequence seq.
func (bk *bindingBook) acknowledge(seq, ceil uint64, ack int64) bool {
	return bk.push(seq, ceil, func(u, l, a int64) (int64, int64, int64) {
		if ack > a {
			a = ack
		}
		return u, l, a
	})
}

// seed installs the base version (Import).
func (bk *bindingBook) seed(upd, last, ack int64) {
	bk.head.Store(&bookNode{at: 0, upd: upd, last: last, ack: ack})
}

// ---------------------------------------------------------------------------
// Binding indexes

// ibVer is one version of an inheritor's binding set (rel-type name ->
// binding). The set map is immutable once published.
type ibVer struct {
	at   uint64
	set  map[string]*Binding
	prev atomic.Pointer[ibVer]
}

// ibChain versions one inheritor's bindings for snapshot readers. Pushed
// under the all-shard lock (every binding mutation is store-exclusive).
type ibChain struct{ head atomic.Pointer[ibVer] }

func (c *ibChain) push(at, ceil uint64, set map[string]*Binding) bool {
	h := c.head.Load()
	n := &ibVer{at: at, set: set}
	grew := false
	if h != nil {
		if h.at <= ceil && h.at < at {
			n.prev.Store(h)
			grew = true
		} else {
			n.prev.Store(h.prev.Load())
		}
	}
	c.head.Store(n)
	return grew
}

func (c *ibChain) at(s uint64) map[string]*Binding {
	for n := c.head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= s {
			return n.set
		}
	}
	return nil
}

// tbVer / tbChain: the transmitter-side index (binding list), same rules.
type tbVer struct {
	at   uint64
	list []*Binding
	prev atomic.Pointer[tbVer]
}

type tbChain struct{ head atomic.Pointer[tbVer] }

func (c *tbChain) push(at, ceil uint64, list []*Binding) bool {
	h := c.head.Load()
	n := &tbVer{at: at, list: list}
	grew := false
	if h != nil {
		if h.at <= ceil && h.at < at {
			n.prev.Store(h)
			grew = true
		} else {
			n.prev.Store(h.prev.Load())
		}
	}
	c.head.Store(n)
	return grew
}

func (c *tbChain) at(s uint64) []*Binding {
	for n := c.head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= s {
			return n.list
		}
	}
	return nil
}

// snapPushBindIn publishes the inheritor's current binding set to its
// snapshot chain at sequence at. Callers hold all shard write locks.
func (s *Store) snapPushBindIn(inheritor domain.Surrogate, at uint64) {
	sh := s.shardOf(inheritor)
	live := sh.byInheritor[inheritor]
	ceil := s.ceiling()
	if ceil == 0 && len(live) == 0 {
		// No pin can read the old set and the new one is empty: drop the key.
		sh.snapBindIn.Delete(inheritor)
		return
	}
	set := make(map[string]*Binding, len(live))
	for k, v := range live {
		set[k] = v
	}
	v, _ := sh.snapBindIn.LoadOrStore(inheritor, &ibChain{})
	if v.(*ibChain).push(at, ceil, set) {
		sh.retained.Add(1)
	}
}

// snapPushBindOut is snapPushBindIn for the transmitter-side index.
func (s *Store) snapPushBindOut(transmitter domain.Surrogate, at uint64) {
	sh := s.shardOf(transmitter)
	live := sh.byTransmitter[transmitter]
	ceil := s.ceiling()
	if ceil == 0 && len(live) == 0 {
		sh.snapBindOut.Delete(transmitter)
		return
	}
	list := append([]*Binding(nil), live...)
	v, _ := sh.snapBindOut.LoadOrStore(transmitter, &tbChain{})
	if v.(*tbChain).push(at, ceil, list) {
		sh.retained.Add(1)
	}
}

// ---------------------------------------------------------------------------
// Class membership history

// cver is one version of a class's membership. The slice is the class's
// published COW membership slice at commit time — shared, never copied.
type cver struct {
	at      uint64
	members []domain.Surrogate
	prev    atomic.Pointer[cver]
}

// pushHist publishes the class's current membership at sequence at.
// Callers hold all shard and stripe write locks (membership only changes
// store-exclusively).
func (c *Class) pushHist(at, ceil uint64) bool {
	h := c.hist.Load()
	n := &cver{at: at, members: c.items()}
	grew := false
	if h != nil {
		if h.at <= ceil && h.at < at {
			n.prev.Store(h)
			grew = true
		} else {
			n.prev.Store(h.prev.Load())
		}
	}
	c.hist.Store(n)
	return grew
}

// membersAt returns the membership visible at s. A nil history means the
// membership never changed after the base state (creation or import), so
// the live slice is the answer for every pinnable s; an exhausted walk
// means the class was first populated after s.
func (c *Class) membersAt(s uint64) []domain.Surrogate {
	h := c.hist.Load()
	if h == nil {
		return c.items()
	}
	for n := h; n != nil; n = n.prev.Load() {
		if n.at <= s {
			return n.members
		}
	}
	return nil
}

// touchClass records a class whose membership the running store-exclusive
// operation mutates; commitClassHist publishes one history version per
// touched class at the operation's sequence. Guarded by the all-shard
// lock (single mutator).
func (s *Store) touchClass(c *Class) {
	for _, t := range s.touched {
		if t == c {
			return
		}
	}
	// First mutation since the base state: preserve the pre-import
	// membership for readers below the first explicit version. Classes
	// populated by Import get their base version seeded there; classes
	// born empty need none (an exhausted walk reads empty).
	s.touched = append(s.touched, c)
}

func (s *Store) commitClassHist(seq uint64) {
	if len(s.touched) != 0 {
		ceil := s.ceiling()
		for _, c := range s.touched {
			if c.pushHist(seq, ceil) {
				s.mvcc.classRetained.Add(1)
			}
		}
		s.touched = s.touched[:0]
	}
	s.idxCommit(seq)
}

// abortClassTouches drops the touch set after a rolled-back operation
// (the live membership was restored, so no history version is due), and
// the queued index maintenance with it.
func (s *Store) abortClassTouches() {
	s.touched = s.touched[:0]
	s.idxAbort()
}

// publishObj stamps a newly created object with its creating sequence and
// makes it visible to snapshot readers. Called at the operation's commit
// point, under the locks the creation ran under, so a snapshot pinned
// before the operation never observes it mid-flight.
func (s *Store) publishObj(o *Object, seq uint64) {
	o.createdSeq = seq
	s.shardOf(o.sur).snapObjs.Store(o.sur, o)
}

// retireObj marks an object deleted at seq for snapshot readers. With no
// live pin the snapshot entry is dropped eagerly (nothing can read it and
// any later pin sees a higher sequence); otherwise the entry stays dead
// until the sweep reclaims it. Callers hold the store-exclusive lock.
func (s *Store) retireObj(o *Object, seq uint64) {
	sh := s.shardOf(o.sur)
	if s.ceiling() == 0 {
		sh.snapObjs.Delete(o.sur)
		return
	}
	o.deletedSeq.Store(seq)
	sh.retained.Add(1)
}

// visibleAt reports whether the object existed at sequence point s.
func (o *Object) visibleAt(s uint64) bool {
	if o.createdSeq > s {
		return false
	}
	d := o.deletedSeq.Load()
	return d == 0 || d > s
}

// ---------------------------------------------------------------------------
// Snapshot pins

// mvccState is the store's pin registry and GC bookkeeping.
type mvccState struct {
	mu   sync.Mutex
	pins map[*Snapshot]uint64

	// ceilA is the highest pinned sequence (0: none) — the write-side
	// "keep the old head" test. lowA is the lowest pinned sequence
	// (MaxUint64: none) — the sweep's low-water mark.
	ceilA atomic.Uint64
	lowA  atomic.Uint64

	taken    atomic.Uint64
	released atomic.Uint64

	gcMu          sync.Mutex // admits one sweep; TryLock paces overlapping triggers
	gcRuns        atomic.Uint64
	reclaimed     atomic.Uint64
	classRetained atomic.Uint64
	sweepStamp    atomic.Uint64 // retention counter total at the last sweep
	extraGauge    atomic.Uint64 // residual non-head version nodes at the last sweep
	deadGauge     atomic.Uint64 // residual dead (deleted but pinned) objects at the last sweep
}

func (m *mvccState) recalcLocked() {
	var ceil uint64
	low := uint64(math.MaxUint64)
	for _, s := range m.pins {
		if s > ceil {
			ceil = s
		}
		if s < low {
			low = s
		}
	}
	m.ceilA.Store(ceil)
	m.lowA.Store(low)
}

// ceiling returns the highest pinned sequence (0 when nothing is pinned).
// Writers consult it on every chain put; reads are a single atomic load.
func (s *Store) ceiling() uint64 { return s.mvcc.ceilA.Load() }

// lowWater returns the lowest pinned sequence (MaxUint64 when nothing is
// pinned): versions only a lower sequence point could read are garbage.
func (s *Store) lowWater() uint64 { return s.mvcc.lowA.Load() }

// Snapshot is a pinned store-wide sequence point. All read methods
// traverse version chains lock-free at the pinned sequence; writers are
// never blocked by a live snapshot, they only retain old versions for it.
// Release the snapshot (refcounted) to let the sweep reclaim them.
type Snapshot struct {
	s       *Store
	seq     uint64
	nextSur uint64
	// epochs are the per-shard structure epochs at pin time: a memoized
	// resolution route whose stamps match them was valid exactly at the
	// pin, so snapshot reads may reuse the live route cache.
	epochs []uint64
	refs   atomic.Int64
}

// Snapshot pins the current sequence point. It briefly takes all shard
// read locks (the same order every writer uses), so the pin lands between
// operations: every op is entirely visible or entirely invisible.
func (s *Store) Snapshot() *Snapshot {
	s.rlockAll()
	sn := s.pinLocked()
	s.runlockAll()
	return sn
}

// Seq returns the pinned sequence point.
func (sn *Snapshot) Seq() uint64 { return sn.seq }

// NextSur returns the surrogate counter at the pin.
func (sn *Snapshot) NextSur() uint64 { return sn.nextSur }

// Acquire adds a reference; every Acquire needs a matching Release.
func (sn *Snapshot) Acquire() *Snapshot {
	sn.refs.Add(1)
	return sn
}

// Release drops one reference; the last release unpins the sequence point
// and, if no other pin remains, triggers a version sweep when retained
// garbage exists.
func (sn *Snapshot) Release() {
	if sn.refs.Add(-1) != 0 {
		return
	}
	s := sn.s
	m := &s.mvcc
	m.mu.Lock()
	delete(m.pins, sn)
	m.released.Add(1)
	m.recalcLocked()
	remaining := len(m.pins)
	m.mu.Unlock()
	if remaining == 0 && s.retainedTotal() != m.sweepStamp.Load() {
		s.SweepVersions()
	}
}

func (s *Store) retainedTotal() uint64 {
	n := s.mvcc.classRetained.Load() + s.idxRetainedTotal()
	for i := range s.shards {
		n += s.shards[i].retained.Load()
	}
	return n
}

// MVCCStats reports the snapshot-pin and version-chain counters.
type MVCCStats struct {
	Pins          int64  `json:"pins"`           // live pins right now
	Taken         uint64 `json:"taken"`          // snapshots pinned, lifetime
	Released      uint64 `json:"released"`       // snapshots fully released, lifetime
	Retained      uint64 `json:"retained"`       // version nodes kept alive for a pin, lifetime
	Reclaimed     uint64 `json:"reclaimed"`      // nodes and dead objects freed by sweeps
	GCRuns        uint64 `json:"gc_runs"`        // completed sweeps
	ExtraVersions uint64 `json:"extra_versions"` // non-head version nodes left after the last sweep
	DeadObjects   uint64 `json:"dead_objects"`   // deleted-but-pinned objects left after the last sweep
	LowWater      uint64 `json:"low_water"`      // current sweep low-water mark (MaxUint64: no pins)
}

func (s *Store) mvccStats() MVCCStats {
	m := &s.mvcc
	m.mu.Lock()
	pins := int64(len(m.pins))
	m.mu.Unlock()
	return MVCCStats{
		Pins:          pins,
		Taken:         m.taken.Load(),
		Released:      m.released.Load(),
		Retained:      s.retainedTotal(),
		Reclaimed:     m.reclaimed.Load(),
		GCRuns:        m.gcRuns.Load(),
		ExtraVersions: m.extraGauge.Load(),
		DeadObjects:   m.deadGauge.Load(),
		LowWater:      m.lowA.Load(),
	}
}

// ---------------------------------------------------------------------------
// Version sweep (GC)

// SweepVersions trims every version chain to the low-water mark over the
// live pins and unlinks deleted objects no pin can still see. With no
// pins it restores the single-version-per-slot steady state. It takes one
// shard write lock at a time (never the store-exclusive lock), so it runs
// concurrently with reads and with writers on other shards. Returns the
// number of reclaimed nodes/objects; 0 if another sweep is running.
func (s *Store) SweepVersions() uint64 {
	if !s.mvcc.gcMu.TryLock() {
		return 0
	}
	defer s.mvcc.gcMu.Unlock()
	stamp := s.retainedTotal()
	low := s.lowWater()
	var extras, dead, rec uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.snapObjs.Range(func(k, v any) bool {
			o := v.(*Object)
			if d := o.deletedSeq.Load(); d != 0 {
				if d <= low {
					sh.snapObjs.Delete(k)
					rec++
					return true
				}
				dead++
			}
			var tombs []string
			for name, b := range o.attrMap() {
				e, r, headDead := trimAver(&b.head, low)
				extras += e
				rec += r
				if headDead && o.deletedSeq.Load() == 0 {
					tombs = append(tombs, name)
				}
			}
			if len(tombs) > 0 {
				o.removeBoxes(tombs)
				rec += uint64(len(tombs))
			}
			e, r := trimMver(o, low)
			extras += e
			rec += r
			if o.book != nil {
				e, r := trimBook(&o.book.head, low)
				extras += e
				rec += r
			}
			for _, c := range o.subMap() {
				e, r := trimCver(&c.hist, low)
				extras += e
				rec += r
			}
			for _, c := range o.relMap() {
				e, r := trimCver(&c.hist, low)
				extras += e
				rec += r
			}
			return true
		})
		sh.snapBindIn.Range(func(k, v any) bool {
			c := v.(*ibChain)
			e, r, empty := trimIb(&c.head, low)
			extras += e
			rec += r
			if empty {
				sh.snapBindIn.Delete(k)
			}
			return true
		})
		sh.snapBindOut.Range(func(k, v any) bool {
			c := v.(*tbChain)
			e, r, empty := trimTb(&c.head, low)
			extras += e
			rec += r
			if empty {
				sh.snapBindOut.Delete(k)
			}
			return true
		})
		sh.mu.Unlock()
	}
	s.snapClasses.Range(func(k, v any) bool {
		c := v.(*Class)
		st := s.stripeOf(c.name)
		st.mu.Lock()
		e, r := trimCver(&c.hist, low)
		st.mu.Unlock()
		extras += e
		rec += r
		return true
	})
	rec += s.idxSweep(low)
	m := &s.mvcc
	m.extraGauge.Store(extras)
	m.deadGauge.Store(dead)
	m.reclaimed.Add(rec)
	m.gcRuns.Add(1)
	m.sweepStamp.Store(stamp)
	return rec
}

// trimAver cuts an attribute chain below the first node readable at low
// (every remaining pin has S >= low, so nothing deeper is reachable).
// Returns (surviving non-head nodes, reclaimed nodes, head-is-dead): the
// last result marks a single tombstone head no pin distinguishes from an
// absent slot, so the caller may drop the whole box.
func trimAver(head *atomic.Pointer[aver], low uint64) (extras, rec uint64, headDead bool) {
	h := head.Load()
	var boundary *aver
	depth := uint64(0)
	for n := h; n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
		depth++
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	if h != nil {
		for n := h.prev.Load(); n != nil; n = n.prev.Load() {
			extras++
		}
		headDead = h.v == nil && h.prev.Load() == nil && h.at <= low
	}
	_ = depth
	return extras, rec, headDead
}

func trimMver(o *Object, low uint64) (extras, rec uint64) {
	if o.modSeq.Load() <= low {
		for n := o.modPrev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		o.modPrev.Store(nil)
		return 0, rec
	}
	var boundary *mver
	for n := o.modPrev.Load(); n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	for n := o.modPrev.Load(); n != nil; n = n.prev.Load() {
		extras++
	}
	return extras, rec
}

func trimBook(head *atomic.Pointer[bookNode], low uint64) (extras, rec uint64) {
	var boundary *bookNode
	for n := head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	if h := head.Load(); h != nil {
		for n := h.prev.Load(); n != nil; n = n.prev.Load() {
			extras++
		}
	}
	return extras, rec
}

func trimCver(head *atomic.Pointer[cver], low uint64) (extras, rec uint64) {
	var boundary *cver
	for n := head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	if h := head.Load(); h != nil {
		for n := h.prev.Load(); n != nil; n = n.prev.Load() {
			extras++
		}
	}
	return extras, rec
}

func trimIb(head *atomic.Pointer[ibVer], low uint64) (extras, rec uint64, empty bool) {
	var boundary *ibVer
	for n := head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	if h := head.Load(); h != nil {
		for n := h.prev.Load(); n != nil; n = n.prev.Load() {
			extras++
		}
		empty = len(h.set) == 0 && h.prev.Load() == nil && h.at <= low
	}
	return extras, rec, empty
}

func trimTb(head *atomic.Pointer[tbVer], low uint64) (extras, rec uint64, empty bool) {
	var boundary *tbVer
	for n := head.Load(); n != nil; n = n.prev.Load() {
		if n.at <= low {
			boundary = n
			break
		}
	}
	if boundary != nil {
		for n := boundary.prev.Load(); n != nil; n = n.prev.Load() {
			rec++
		}
		boundary.prev.Store(nil)
	}
	if h := head.Load(); h != nil {
		for n := h.prev.Load(); n != nil; n = n.prev.Load() {
			extras++
		}
		empty = len(h.list) == 0 && h.prev.Load() == nil && h.at <= low
	}
	return extras, rec, empty
}

// removeBoxes drops attribute slots whose whole history is a tombstone
// (COW map swap, safe under the owning shard's write lock).
func (o *Object) removeBoxes(names []string) {
	old := o.attrMap()
	m := make(map[string]*attrBox, len(old))
	for k, b := range old {
		drop := false
		for _, n := range names {
			if n == k {
				drop = true
				break
			}
		}
		if !drop {
			m[k] = b
		}
	}
	o.attrs.Store(&m)
}

// seedSnapshotState publishes the base (at = 0) versions after an import:
// every object, binding index entry and populated class becomes visible
// to any snapshot at its imported state. Callers hold all locks.
func (s *Store) seedSnapshotState() {
	for i := range s.shards {
		sh := &s.shards[i]
		for sur, o := range sh.objects {
			sh.snapObjs.Store(sur, o)
			for _, c := range o.subMap() {
				if c.Len() > 0 && c.hist.Load() == nil {
					c.pushHist(0, 0)
				}
			}
			for _, c := range o.relMap() {
				if c.Len() > 0 && c.hist.Load() == nil {
					c.pushHist(0, 0)
				}
			}
		}
		for sur := range sh.byInheritor {
			s.snapPushBindIn(sur, 0)
		}
		for sur := range sh.byTransmitter {
			s.snapPushBindOut(sur, 0)
		}
	}
	for i := range s.stripes {
		for name, c := range s.stripes[i].classes {
			s.snapClasses.Store(name, c)
			if c.Len() > 0 && c.hist.Load() == nil {
				c.pushHist(0, 0)
			}
		}
	}
}

// surrogatesAt returns the surrogates visible at the pinned sequence, in
// ascending order.
func (sn *Snapshot) surrogatesAt() []domain.Surrogate {
	var out []domain.Surrogate
	for i := range sn.s.shards {
		sn.s.shards[i].snapObjs.Range(func(k, v any) bool {
			if v.(*Object).visibleAt(sn.seq) {
				out = append(out, k.(domain.Surrogate))
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
