package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// buildGirderInterface creates a GirderInterface with the given dimensions
// and bore diameters/lengths.
func buildGirderInterface(t *testing.T, s *Store, l, h, w int64, bores [][2]int64) domain.Surrogate {
	t.Helper()
	gi := mustSur(t)(s.NewObject(paperschema.TypeGirderInterface, ""))
	set(t, s, gi, "Length", domain.Int(l))
	set(t, s, gi, "Height", domain.Int(h))
	set(t, s, gi, "Width", domain.Int(w))
	for _, b := range bores {
		bore := mustSur(t)(s.NewSubobject(gi, "Bores"))
		set(t, s, bore, "Diameter", domain.Int(b[0]))
		set(t, s, bore, "Length", domain.Int(b[1]))
	}
	return gi
}

func buildPlateInterface(t *testing.T, s *Store, thickness int64, bores [][2]int64) domain.Surrogate {
	t.Helper()
	pi := mustSur(t)(s.NewObject(paperschema.TypePlateInterface, ""))
	set(t, s, pi, "Thickness", domain.Int(thickness))
	set(t, s, pi, "Area", domain.NewRec("Length", domain.Int(200), "Width", domain.Int(100)))
	for _, b := range bores {
		bore := mustSur(t)(s.NewSubobject(pi, "Bores"))
		set(t, s, bore, "Diameter", domain.Int(b[0]))
		set(t, s, bore, "Length", domain.Int(b[1]))
	}
	return pi
}

// buildStructure assembles the paper's Figure 5 weight-carrying structure:
// one girder and one plate (as components of the structure) screwed
// together through aligned bores with a bolt/nut pair living inside the
// screwing relationship.
func buildStructure(t *testing.T, s *Store) (st, screw domain.Surrogate) {
	t.Helper()
	gi := buildGirderInterface(t, s, 500, 20, 10, [][2]int64{{10, 20}})
	pi := buildPlateInterface(t, s, 10, [][2]int64{{10, 10}})

	bolt := mustSur(t)(s.NewObject(paperschema.TypeBolt, ""))
	set(t, s, bolt, "Length", domain.Int(40))
	set(t, s, bolt, "Diameter", domain.Int(8))
	nut := mustSur(t)(s.NewObject(paperschema.TypeNut, ""))
	set(t, s, nut, "Length", domain.Int(10))
	set(t, s, nut, "Diameter", domain.Int(8))

	st = mustSur(t)(s.NewObject(paperschema.TypeStructure, ""))
	set(t, s, st, "Designer", domain.Str("Pegels"))
	set(t, s, st, "Description", domain.Str("weight carrying structure"))

	girder := mustSur(t)(s.NewSubobject(st, "Girders"))
	if _, err := s.Bind(paperschema.RelAllOfGirderIf, girder, gi); err != nil {
		t.Fatal(err)
	}
	plate := mustSur(t)(s.NewSubobject(st, "Plates"))
	if _, err := s.Bind(paperschema.RelAllOfPlateIf, plate, pi); err != nil {
		t.Fatal(err)
	}

	gBores, err := s.Members(girder, "Bores")
	if err != nil || len(gBores) != 1 {
		t.Fatalf("girder bores = %v, %v", gBores, err)
	}
	pBores, err := s.Members(plate, "Bores")
	if err != nil || len(pBores) != 1 {
		t.Fatalf("plate bores = %v, %v", pBores, err)
	}

	screw, err = s.RelateIn(st, "Screwings", Participants{
		"Bores": domain.NewSet(domain.Ref(gBores[0]), domain.Ref(pBores[0])),
	})
	if err != nil {
		t.Fatalf("screwing: %v", err)
	}
	set(t, s, screw, "Strength", domain.Int(7))

	// The bolt and nut are subobjects *of the relationship* bound to the
	// part catalog.
	sb := mustSur(t)(s.NewRelSubobject(screw, "Bolt"))
	if _, err := s.Bind(paperschema.RelAllOfBoltType, sb, bolt); err != nil {
		t.Fatal(err)
	}
	sn := mustSur(t)(s.NewRelSubobject(screw, "Nut"))
	if _, err := s.Bind(paperschema.RelAllOfNutType, sn, nut); err != nil {
		t.Fatal(err)
	}
	return st, screw
}

func TestWeightCarryingStructure(t *testing.T) {
	// Experiment E6 (Figure 5 / §5).
	s := steelStore(t)
	st, screw := buildStructure(t, s)

	// Girder subobject reads the interface's dimensions by inheritance.
	girders, _ := s.Members(st, "Girders")
	if len(girders) != 1 {
		t.Fatal("one girder expected")
	}
	if v := get(t, s, girders[0], "Length"); !v.Equal(domain.Int(500)) {
		t.Errorf("girder Length = %s", v)
	}
	// Bolt length 40 = nut 10 + bore lengths 20+10: the ScrewingType
	// constraint family holds.
	if v, err := s.CheckConstraints(screw); err != nil || len(v) != 0 {
		t.Fatalf("screwing violations: %v err=%v", v, err)
	}
	// The structure's own constraints (where clause of Screwings) hold.
	if v, err := s.CheckConstraints(st); err != nil || len(v) != 0 {
		t.Fatalf("structure violations: %v err=%v", v, err)
	}
	if v := s.CheckAll(); len(v) != 0 {
		t.Fatalf("global violations: %v", v)
	}
}

func TestScrewingConstraintViolations(t *testing.T) {
	s := steelStore(t)
	_, screw := buildStructure(t, s)

	// Shrink a bore below the bolt diameter: "s.Diameter <= b.Diameter"
	// fails. The bore belongs to the girder interface.
	boresV, err := s.Participant(screw, "Bores")
	if err != nil {
		t.Fatal(err)
	}
	bores := boresV.(*domain.Set).Elems()
	boreSur := domain.Surrogate(bores[0].(domain.Ref))
	set(t, s, boreSur, "Diameter", domain.Int(6))
	v, _ := s.CheckConstraints(screw)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}

	// Restore, then break the bolt/nut diameter agreement. The bolt's
	// Diameter is inherited: it must change on the part, not the
	// subobject.
	set(t, s, boreSur, "Diameter", domain.Int(10))
	boltSubs, _ := s.Members(screw, "Bolt")
	if len(boltSubs) != 1 {
		t.Fatal("bolt subobject missing")
	}
	if err := s.SetAttr(boltSubs[0], "Diameter", domain.Int(9)); !errors.Is(err, ErrInheritedAttribute) {
		t.Fatalf("bolt diameter should be write-protected: %v", err)
	}
	b, ok := s.BindingOf(boltSubs[0], paperschema.RelAllOfBoltType)
	if !ok {
		t.Fatal("bolt binding missing")
	}
	set(t, s, b.Transmitter, "Diameter", domain.Int(9))
	v, _ = s.CheckConstraints(screw)
	if len(v) != 1 {
		t.Fatalf("diameter mismatch should violate: %v", v)
	}
	// Fixing the catalog part fixes every screwing that uses it.
	set(t, s, b.Transmitter, "Diameter", domain.Int(8))
	v, _ = s.CheckConstraints(screw)
	if len(v) != 0 {
		t.Fatalf("violations after fix: %v", v)
	}
}

func TestScrewingRequiresStructureBores(t *testing.T) {
	// The where restriction: screwings may only use bores of the
	// structure's own girders and plates.
	s := steelStore(t)
	st, _ := buildStructure(t, s)
	// A bore of an unrelated interface.
	other := buildGirderInterface(t, s, 100, 10, 10, [][2]int64{{12, 30}})
	otherBores, _ := s.Members(other, "Bores")
	_, err := s.RelateIn(st, "Screwings", Participants{
		"Bores": domain.NewSet(domain.Ref(otherBores[0])),
	})
	if !errors.Is(err, ErrConstraint) {
		t.Fatalf("foreign bore should violate the where clause: %v", err)
	}
}

func TestSharedPartCatalog(t *testing.T) {
	// Standard parts (bolts) are heavily shared transmitters: many
	// screwings inherit from one bolt part. One update reaches them all.
	s := steelStore(t)
	bolt := mustSur(t)(s.NewObject(paperschema.TypeBolt, ""))
	set(t, s, bolt, "Length", domain.Int(40))
	set(t, s, bolt, "Diameter", domain.Int(8))

	gi := buildGirderInterface(t, s, 500, 20, 10, [][2]int64{{10, 40}, {10, 40}, {10, 40}})
	st := mustSur(t)(s.NewObject(paperschema.TypeStructure, ""))
	girder := mustSur(t)(s.NewSubobject(st, "Girders"))
	if _, err := s.Bind(paperschema.RelAllOfGirderIf, girder, gi); err != nil {
		t.Fatal(err)
	}
	gBores, _ := s.Members(girder, "Bores")

	var boltSubs []domain.Surrogate
	for _, bore := range gBores {
		screw, err := s.RelateIn(st, "Screwings", Participants{
			"Bores": domain.NewSet(domain.Ref(bore)),
		})
		if err != nil {
			t.Fatal(err)
		}
		sb := mustSur(t)(s.NewRelSubobject(screw, "Bolt"))
		if _, err := s.Bind(paperschema.RelAllOfBoltType, sb, bolt); err != nil {
			t.Fatal(err)
		}
		boltSubs = append(boltSubs, sb)
	}
	if got := len(s.BindingsOfTransmitter(bolt)); got != 3 {
		t.Fatalf("bolt inheritors = %d", got)
	}
	set(t, s, bolt, "Diameter", domain.Int(9))
	for _, sb := range boltSubs {
		if v := get(t, s, sb, "Diameter"); !v.Equal(domain.Int(9)) {
			t.Errorf("shared update not visible at %s: %s", sb, v)
		}
	}
	// Deleting the shared part is restricted while in use.
	if err := s.Delete(bolt); !errors.Is(err, ErrHasInheritors) {
		t.Errorf("shared part delete: %v", err)
	}
}

func TestGirderInterfaceConstraint(t *testing.T) {
	// "Length < 100*Height*Width" on GirderInterface.
	s := steelStore(t)
	gi := buildGirderInterface(t, s, 500, 20, 10, nil)
	if v, _ := s.CheckConstraints(gi); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	set(t, s, gi, "Height", domain.Int(0))
	if v, _ := s.CheckConstraints(gi); len(v) != 1 {
		t.Fatal("degenerate girder should violate")
	}
}

func TestRelSubobjectErrors(t *testing.T) {
	s := steelStore(t)
	_, screw := buildStructure(t, s)
	if _, err := s.NewRelSubobject(screw, "Ghost"); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("unknown rel subclass: %v", err)
	}
	gi := mustSur(t)(s.NewObject(paperschema.TypeGirderInterface, ""))
	if _, err := s.NewRelSubobject(gi, "Bolt"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("rel subobject on non-rel: %v", err)
	}
	if _, err := s.NewRelSubobject(999, "Bolt"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("rel subobject on missing: %v", err)
	}
	// A second bolt in the same screwing violates "#s in Bolt = 1".
	sb2 := mustSur(t)(s.NewRelSubobject(screw, "Bolt"))
	_ = sb2
	v, _ := s.CheckConstraints(screw)
	if len(v) == 0 {
		t.Error("two bolts should violate the cardinality constraint")
	}
}

func TestStructureEnvQueries(t *testing.T) {
	// The Env machinery supports ad-hoc queries against an object.
	s := steelStore(t)
	st, _ := buildStructure(t, s)
	env := s.Env(st)
	holds, err := evalBoolSrc("count(Screwings) = 1 and count(Girders) = 1", env)
	if err != nil || !holds {
		t.Errorf("query: %v %v", holds, err)
	}
	holds, err = evalBoolSrc("for g in Girders: g.Length < 100*g.Height*g.Width", env)
	if err != nil || !holds {
		t.Errorf("girder bound query: %v %v", holds, err)
	}
}
