package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// Bind creates an inheritance relationship object relating inheritor to
// transmitter under the named inher-rel-type (§4.1). After a successful
// Bind, the inheritor's inherited attributes and subclasses read through
// to the transmitter's current data.
//
// Preconditions enforced:
//   - the transmitter object has exactly the relationship's transmitter
//     type;
//   - the inheritor's type declares `inheritor-in` for the relationship
//     (§4.1: inheritor types are declared explicitly);
//   - the inheritor is not already bound under this relationship type
//     (one transmitter per relationship);
//   - the binding keeps value inheritance acyclic at the object level.
//
// Bind mutates binding indexes on up to three shards (inheritor,
// transmitter, binding object), so it runs store-wide exclusive.
func (s *Store) Bind(relType string, inheritor, transmitter domain.Surrogate) (domain.Surrogate, error) {
	s.lockAll()
	defer s.unlockAll()
	rel, ok := s.cat.InherRelType(relType)
	if !ok {
		return 0, fmt.Errorf("%w: inheritance relationship %q", ErrNoSuchType, relType)
	}
	io, ok := s.obj(inheritor)
	if !ok {
		return 0, noObject(inheritor)
	}
	if err := s.guardLocked(inheritor); err != nil {
		return 0, err
	}
	to, ok := s.obj(transmitter)
	if !ok {
		return 0, noObject(transmitter)
	}
	if to.typeName != rel.Transmitter {
		return 0, fmt.Errorf("%w: transmitter %s is %q, relationship %s requires %q",
			ErrTypeMismatch, transmitter, to.typeName, relType, rel.Transmitter)
	}
	if io.isRel {
		return 0, fmt.Errorf("%w: %s is a relationship object", ErrTypeMismatch, inheritor)
	}
	it, _ := s.cat.ObjectType(io.typeName)
	if !declaresInheritorIn(it.InheritorIn, relType) {
		return 0, fmt.Errorf("%w: type %q, relationship %q", ErrNotInheritor, io.typeName, relType)
	}
	if s.bindingLocked(inheritor, relType) != nil {
		return 0, fmt.Errorf("%w: %s in %s", ErrAlreadyBound, inheritor, relType)
	}
	if inheritor == transmitter || s.reachesLocked(transmitter, inheritor) {
		return 0, fmt.Errorf("%w: %s -> %s via %s", ErrInheritanceCycle, inheritor, transmitter, relType)
	}

	sur := domain.Surrogate(s.nextSur.Add(1))
	obj := &Object{
		sur:      sur,
		typeName: relType,
		isRel:    true,
		participants: map[string]domain.Value{
			"Transmitter": domain.Ref(transmitter),
			"Inheritor":   domain.Ref(inheritor),
		},
		book: &bindingBook{},
	}
	obj.initClasses()
	obj.initAttrs(nil, 0)
	s.shardOf(sur).objects[sur] = obj
	s.markDirty(sur)
	b := &Binding{Obj: obj, Rel: rel, Transmitter: transmitter, Inheritor: inheritor}
	obj.binding = b
	ish := s.shardOf(inheritor)
	m := ish.byInheritor[inheritor]
	if m == nil {
		m = make(map[string]*Binding)
		ish.byInheritor[inheritor] = m
	}
	m[relType] = b
	tsh := s.shardOf(transmitter)
	tsh.byTransmitter[transmitter] = append(tsh.byTransmitter[transmitter], b)
	seq := s.seq.Add(1)
	s.publishObj(obj, seq)
	s.snapPushBindIn(inheritor, seq)
	s.snapPushBindOut(transmitter, seq)
	// Binding changes every route through the inheritor: null routes
	// memoized while unbound must revalidate. All such routes carry the
	// inheritor in their chain, so its shard epoch covers them.
	s.bumpEpoch(ish)
	// Inherited values the inheritor (and everything downstream) now
	// reads through the new binding enter the secondary indexes at seq.
	s.idxTouch(inheritor)
	s.idxCommit(seq)
	s.emit(&oplog.Op{Kind: oplog.KindBind, Name: relType, Sur: inheritor, Sur2: transmitter, Out: obj.sur, Seq: seq})
	return obj.sur, nil
}

func declaresInheritorIn(list []string, relType string) bool {
	for _, r := range list {
		if r == relType {
			return true
		}
	}
	return false
}

// reachesLocked reports whether `to` is reachable from `from` by walking
// transmitter edges upward (from inheritor to transmitter). The walk
// crosses shards; any held shard lock freezes the binding indexes.
func (s *Store) reachesLocked(from, to domain.Surrogate) bool {
	for _, b := range s.shardOf(from).byInheritor[from] {
		if b.Transmitter == to || s.reachesLocked(b.Transmitter, to) {
			return true
		}
	}
	return false
}

// Unbind removes the inheritor's binding under the named relationship
// type. The inheritor keeps its type-level inheritance (structure) but
// loses the transmitter's values.
func (s *Store) Unbind(relType string, inheritor domain.Surrogate) error {
	s.lockAll()
	defer s.unlockAll()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return fmt.Errorf("%w: %s in %s", ErrNotBound, inheritor, relType)
	}
	if err := s.guardLocked(inheritor); err != nil {
		return err
	}
	seq := s.seq.Add(1)
	s.removeBindingLocked(b, seq)
	s.idxCommit(seq)
	s.emit(&oplog.Op{Kind: oplog.KindUnbind, Name: relType, Sur: inheritor, Seq: seq})
	return nil
}

// removeBindingLocked dissolves a binding from both indexes and drops its
// relationship object, at the dissolving operation's sequence. Callers
// hold all shard write locks.
func (s *Store) removeBindingLocked(b *Binding, seq uint64) {
	ish := s.shardOf(b.Inheritor)
	delete(ish.byInheritor[b.Inheritor], b.Rel.Name)
	if len(ish.byInheritor[b.Inheritor]) == 0 {
		delete(ish.byInheritor, b.Inheritor)
	}
	tsh := s.shardOf(b.Transmitter)
	list := tsh.byTransmitter[b.Transmitter]
	for i, x := range list {
		if x == b {
			tsh.byTransmitter[b.Transmitter] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(tsh.byTransmitter[b.Transmitter]) == 0 {
		delete(tsh.byTransmitter, b.Transmitter)
	}
	delete(s.shardOf(b.Obj.sur).objects, b.Obj.sur)
	// Snapshot side: the binding object dies at seq; both indexes version.
	s.retireObj(b.Obj, seq)
	s.snapPushBindIn(b.Inheritor, seq)
	s.snapPushBindOut(b.Transmitter, seq)
	// The binding object disappears from its shard's durable state.
	s.markDirty(b.Obj.sur)
	// Every route resolved through this binding carries the inheritor in
	// its chain; bump that shard's epoch.
	s.bumpEpoch(ish)
	// The inheritor's inherited values changed with the route; queue its
	// index recomputation for the operation's idxCommit.
	s.idxTouch(b.Inheritor)
}

// BindingOf returns the inheritor's binding under a relationship type.
func (s *Store) BindingOf(inheritor domain.Surrogate, relType string) (*Binding, bool) {
	sh := s.shardOf(inheritor)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return nil, false
	}
	return b, true
}

// BindingsOfTransmitter returns all bindings in which the object is the
// transmitter (its inheritors).
func (s *Store) BindingsOfTransmitter(transmitter domain.Surrogate) []*Binding {
	sh := s.shardOf(transmitter)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]*Binding(nil), sh.byTransmitter[transmitter]...)
}

// BindingsOfInheritor returns all bindings in which the object is the
// inheritor, keyed by relationship type name.
func (s *Store) BindingsOfInheritor(inheritor domain.Surrogate) map[string]*Binding {
	sh := s.shardOf(inheritor)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make(map[string]*Binding, len(sh.byInheritor[inheritor]))
	for k, v := range sh.byInheritor[inheritor] {
		out[k] = v
	}
	return out
}

// bindingLocked finds the inheritor's binding; callers hold at least one
// shard lock.
func (s *Store) bindingLocked(inheritor domain.Surrogate, relType string) *Binding {
	if m, ok := s.shardOf(inheritor).byInheritor[inheritor]; ok {
		return m[relType]
	}
	return nil
}

// Acknowledge records that the inheritor side has adapted to the latest
// transmitter change: AcknowledgedSeq catches up with LastUpdateSeq on
// the binding object. It locks only the inheritor's shard; the resolved
// sequence value is journaled explicitly (op.Num), so replay reproduces
// the same acknowledgement even if a concurrent transmitter update lands
// next to it in the journal in either order.
func (s *Store) Acknowledge(relType string, inheritor domain.Surrogate) error {
	sh := s.shardOf(inheritor)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return fmt.Errorf("%w: %s in %s", ErrNotBound, inheritor, relType)
	}
	_, ack, _ := b.Obj.book.now()
	seq := s.seq.Add(1)
	if b.Obj.book.acknowledge(seq, s.ceiling(), ack) {
		s.shardOf(b.Obj.sur).retained.Add(1)
	}
	s.markDirty(b.Obj.sur)
	s.emit(&oplog.Op{Kind: oplog.KindAcknowledge, Name: relType, Sur: inheritor, Num: ack, Seq: seq})
	return nil
}

// AcknowledgeAt applies a journaled acknowledgement: AcknowledgedSeq is
// raised to at least ack, as op sequence opSeq (0 for legacy journals
// that did not record one). Recovery uses it to replay Acknowledge ops
// with the value they resolved to live.
func (s *Store) AcknowledgeAt(relType string, inheritor domain.Surrogate, ack int64, opSeq uint64) error {
	sh := s.shardOf(inheritor)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return fmt.Errorf("%w: %s in %s", ErrNotBound, inheritor, relType)
	}
	if b.Obj.book.acknowledge(opSeq, s.ceiling(), ack) {
		s.shardOf(b.Obj.sur).retained.Add(1)
	}
	s.markDirty(b.Obj.sur)
	return nil
}

// TransmitterOf resolves the transmitter an inheritor is bound to, or 0.
func (s *Store) TransmitterOf(inheritor domain.Surrogate, relType string) domain.Surrogate {
	sh := s.shardOf(inheritor)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if b := s.bindingLocked(inheritor, relType); b != nil {
		return b.Transmitter
	}
	return 0
}
