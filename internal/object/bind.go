package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// Bind creates an inheritance relationship object relating inheritor to
// transmitter under the named inher-rel-type (§4.1). After a successful
// Bind, the inheritor's inherited attributes and subclasses read through
// to the transmitter's current data.
//
// Preconditions enforced:
//   - the transmitter object has exactly the relationship's transmitter
//     type;
//   - the inheritor's type declares `inheritor-in` for the relationship
//     (§4.1: inheritor types are declared explicitly);
//   - the inheritor is not already bound under this relationship type
//     (one transmitter per relationship);
//   - the binding keeps value inheritance acyclic at the object level.
func (s *Store) Bind(relType string, inheritor, transmitter domain.Surrogate) (domain.Surrogate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rel, ok := s.cat.InherRelType(relType)
	if !ok {
		return 0, fmt.Errorf("%w: inheritance relationship %q", ErrNoSuchType, relType)
	}
	io, ok := s.objects[inheritor]
	if !ok {
		return 0, noObject(inheritor)
	}
	if err := s.guardLocked(inheritor); err != nil {
		return 0, err
	}
	to, ok := s.objects[transmitter]
	if !ok {
		return 0, noObject(transmitter)
	}
	if to.typeName != rel.Transmitter {
		return 0, fmt.Errorf("%w: transmitter %s is %q, relationship %s requires %q",
			ErrTypeMismatch, transmitter, to.typeName, relType, rel.Transmitter)
	}
	if io.isRel {
		return 0, fmt.Errorf("%w: %s is a relationship object", ErrTypeMismatch, inheritor)
	}
	it, _ := s.cat.ObjectType(io.typeName)
	if !declaresInheritorIn(it.InheritorIn, relType) {
		return 0, fmt.Errorf("%w: type %q, relationship %q", ErrNotInheritor, io.typeName, relType)
	}
	if s.bindingLocked(inheritor, relType) != nil {
		return 0, fmt.Errorf("%w: %s in %s", ErrAlreadyBound, inheritor, relType)
	}
	if inheritor == transmitter || s.reachesLocked(transmitter, inheritor) {
		return 0, fmt.Errorf("%w: %s -> %s via %s", ErrInheritanceCycle, inheritor, transmitter, relType)
	}

	s.nextSur++
	obj := &Object{
		sur:      domain.Surrogate(s.nextSur),
		typeName: relType,
		isRel:    true,
		participants: map[string]domain.Value{
			"Transmitter": domain.Ref(transmitter),
			"Inheritor":   domain.Ref(inheritor),
		},
		subclasses: make(map[string]*Class),
		subrels:    make(map[string]*Class),
	}
	obj.initAttrs(map[string]domain.Value{
		AttrTransmitterUpdates: domain.Int(0),
		AttrLastUpdateSeq:      domain.Int(0),
		AttrAcknowledgedSeq:    domain.Int(0),
	})
	s.objects[obj.sur] = obj
	b := &Binding{Obj: obj, Rel: rel, Transmitter: transmitter, Inheritor: inheritor}
	m := s.byInheritor[inheritor]
	if m == nil {
		m = make(map[string]*Binding)
		s.byInheritor[inheritor] = m
	}
	m[relType] = b
	s.byTransmitter[transmitter] = append(s.byTransmitter[transmitter], b)
	s.seq++
	// Binding changes every route through the inheritor: null routes
	// memoized while unbound must revalidate.
	s.bumpEpochLocked()
	s.emit(&oplog.Op{Kind: oplog.KindBind, Name: relType, Sur: inheritor, Sur2: transmitter, Out: obj.sur})
	return obj.sur, nil
}

func declaresInheritorIn(list []string, relType string) bool {
	for _, r := range list {
		if r == relType {
			return true
		}
	}
	return false
}

// reachesLocked reports whether `to` is reachable from `from` by walking
// transmitter edges upward (from inheritor to transmitter).
func (s *Store) reachesLocked(from, to domain.Surrogate) bool {
	for _, b := range s.byInheritor[from] {
		if b.Transmitter == to || s.reachesLocked(b.Transmitter, to) {
			return true
		}
	}
	return false
}

// Unbind removes the inheritor's binding under the named relationship
// type. The inheritor keeps its type-level inheritance (structure) but
// loses the transmitter's values.
func (s *Store) Unbind(relType string, inheritor domain.Surrogate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return fmt.Errorf("%w: %s in %s", ErrNotBound, inheritor, relType)
	}
	if err := s.guardLocked(inheritor); err != nil {
		return err
	}
	s.removeBindingLocked(b)
	s.seq++
	s.emit(&oplog.Op{Kind: oplog.KindUnbind, Name: relType, Sur: inheritor})
	return nil
}

func (s *Store) removeBindingLocked(b *Binding) {
	delete(s.byInheritor[b.Inheritor], b.Rel.Name)
	if len(s.byInheritor[b.Inheritor]) == 0 {
		delete(s.byInheritor, b.Inheritor)
	}
	list := s.byTransmitter[b.Transmitter]
	for i, x := range list {
		if x == b {
			s.byTransmitter[b.Transmitter] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.byTransmitter[b.Transmitter]) == 0 {
		delete(s.byTransmitter, b.Transmitter)
	}
	delete(s.objects, b.Obj.sur)
	// Every route resolved through this binding is now wrong.
	s.bumpEpochLocked()
}

// BindingOf returns the inheritor's binding under a relationship type.
func (s *Store) BindingOf(inheritor domain.Surrogate, relType string) (*Binding, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return nil, false
	}
	return b, true
}

// BindingsOfTransmitter returns all bindings in which the object is the
// transmitter (its inheritors).
func (s *Store) BindingsOfTransmitter(transmitter domain.Surrogate) []*Binding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Binding(nil), s.byTransmitter[transmitter]...)
}

// BindingsOfInheritor returns all bindings in which the object is the
// inheritor, keyed by relationship type name.
func (s *Store) BindingsOfInheritor(inheritor domain.Surrogate) map[string]*Binding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*Binding, len(s.byInheritor[inheritor]))
	for k, v := range s.byInheritor[inheritor] {
		out[k] = v
	}
	return out
}

func (s *Store) bindingLocked(inheritor domain.Surrogate, relType string) *Binding {
	if m, ok := s.byInheritor[inheritor]; ok {
		return m[relType]
	}
	return nil
}

// Acknowledge records that the inheritor side has adapted to the latest
// transmitter change: AcknowledgedSeq catches up with LastUpdateSeq on
// the binding object.
func (s *Store) Acknowledge(relType string, inheritor domain.Surrogate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bindingLocked(inheritor, relType)
	if b == nil {
		return fmt.Errorf("%w: %s in %s", ErrNotBound, inheritor, relType)
	}
	b.Obj.setAttr(AttrAcknowledgedSeq, b.Obj.attrMap()[AttrLastUpdateSeq])
	s.emit(&oplog.Op{Kind: oplog.KindAcknowledge, Name: relType, Sur: inheritor})
	return nil
}

// TransmitterOf resolves the transmitter an inheritor is bound to, or 0.
func (s *Store) TransmitterOf(inheritor domain.Surrogate, relType string) domain.Surrogate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b := s.bindingLocked(inheritor, relType); b != nil {
		return b.Transmitter
	}
	return 0
}
