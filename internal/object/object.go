// Package object implements the runtime of the object model: objects with
// system-managed surrogates, classes, complex objects (local subobject and
// relationship subclasses, §3), relationship objects, and the inheritance
// bindings that give composite objects and interface/implementation pairs
// their view semantics (§4).
//
// The Store is the unit of consistency: all operations go through it and
// it is safe for concurrent use. Higher layers add transactions
// (internal/txn), versioning (internal/version) and persistence
// (internal/storage).
package object

import (
	"sort"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Object is one object or relationship object. All mutation goes through
// the Store; the accessor methods here are read-only snapshots and must
// only be used while the caller is certain no concurrent mutation runs
// (the Store's public API copies what it returns).
type Object struct {
	sur      domain.Surrogate
	typeName string
	isRel    bool // relationship object (including inheritance bindings)

	// attrs points at the current attribute map. Published maps are
	// immutable: writers replace the whole map copy-on-write under the
	// store mutex, so the lock-free resolution-cache hit path can read the
	// owner's attributes without synchronization.
	attrs        atomic.Pointer[map[string]domain.Value]
	participants map[string]domain.Value // rel objects: role -> Ref or *Set
	subclasses   map[string]*Class
	subrels      map[string]*Class

	parent     domain.Surrogate // 0 for top-level objects
	parentSub  string           // subclass of the parent that holds this object
	ownerClass string           // top-level class name, "" if none

	// modSeq is the store sequence of the last direct mutation (attribute
	// write, subclass membership change); used for optimistic checkin.
	modSeq uint64
}

// attrMap returns the current attribute map; callers must treat it as
// immutable.
func (o *Object) attrMap() map[string]domain.Value {
	if p := o.attrs.Load(); p != nil {
		return *p
	}
	return nil
}

// initAttrs publishes the initial attribute map of a new object.
func (o *Object) initAttrs(m map[string]domain.Value) {
	if m == nil {
		m = make(map[string]domain.Value)
	}
	o.attrs.Store(&m)
}

// setAttr publishes a copy of the attribute map with name set (or removed
// when v is null). Callers hold the store write lock; readers see either
// the old or the new map, never a partial write.
func (o *Object) setAttr(name string, v domain.Value) {
	old := o.attrMap()
	m := make(map[string]domain.Value, len(old)+1)
	for k, x := range old {
		m[k] = x
	}
	if domain.IsNull(v) {
		delete(m, name)
	} else {
		m[name] = v
	}
	o.attrs.Store(&m)
}

// Surrogate returns the system-wide identifier.
func (o *Object) Surrogate() domain.Surrogate { return o.sur }

// TypeName returns the object's (or relationship's) type name.
func (o *Object) TypeName() string { return o.typeName }

// IsRelationship reports whether the object represents a relationship.
func (o *Object) IsRelationship() bool { return o.isRel }

// Parent returns the owning complex object's surrogate, or 0.
func (o *Object) Parent() domain.Surrogate { return o.parent }

// ParentSubclass returns the parent subclass holding this subobject.
func (o *Object) ParentSubclass() string { return o.parentSub }

// Class is an ordered set of member objects: either a database-level
// class or a local subclass of a complex object.
type Class struct {
	name     string
	elemType string
	// members points at the current membership slice. Published slices are
	// immutable: add/remove build a new slice and swap the pointer, so the
	// lock-free Members hit path can read membership without locking. The
	// index map is only touched by writers holding the store write lock.
	members atomic.Pointer[[]domain.Surrogate]
	index   map[domain.Surrogate]int
}

func newClass(name, elemType string) *Class {
	return &Class{name: name, elemType: elemType, index: make(map[domain.Surrogate]int)}
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// ElemType returns the member object type ("" for unrestricted classes).
func (c *Class) ElemType() string { return c.elemType }

// items returns the current membership slice; callers must not mutate it.
func (c *Class) items() []domain.Surrogate {
	if p := c.members.Load(); p != nil {
		return *p
	}
	return nil
}

// Len reports the member count.
func (c *Class) Len() int { return len(c.items()) }

// Members returns the member surrogates in insertion order (a copy).
func (c *Class) Members() []domain.Surrogate {
	return append([]domain.Surrogate(nil), c.items()...)
}

// Contains reports membership. Only valid under the store lock (the index
// is writer-maintained).
func (c *Class) Contains(sur domain.Surrogate) bool {
	_, ok := c.index[sur]
	return ok
}

func (c *Class) add(sur domain.Surrogate) {
	if _, dup := c.index[sur]; dup {
		return
	}
	cur := c.items()
	next := make([]domain.Surrogate, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sur
	c.index[sur] = len(cur)
	c.members.Store(&next)
}

func (c *Class) remove(sur domain.Surrogate) {
	i, ok := c.index[sur]
	if !ok {
		return
	}
	cur := c.items()
	next := make([]domain.Surrogate, 0, len(cur)-1)
	next = append(next, cur[:i]...)
	next = append(next, cur[i+1:]...)
	delete(c.index, sur)
	for j := i; j < len(next); j++ {
		c.index[next[j]] = j
	}
	c.members.Store(&next)
}

// Binding is one inheritance relationship object: it relates an inheritor
// to its transmitter under an inher-rel-type and carries the relationship
// object (with the system bookkeeping attributes and any user-declared
// attributes).
//
// System attributes maintained on the relationship object (§2: "the
// attributes of the relationship can be used" to inform about transmitter
// changes):
//
//	TransmitterUpdates — number of permeable transmitter updates so far
//	LastUpdateSeq      — store sequence number of the latest such update
//	AcknowledgedSeq    — sequence the inheritor side has adapted to
type Binding struct {
	Obj         *Object
	Rel         *schema.InherRelType
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
}

// System attribute names on binding relationship objects.
const (
	AttrTransmitterUpdates = "TransmitterUpdates"
	AttrLastUpdateSeq      = "LastUpdateSeq"
	AttrAcknowledgedSeq    = "AcknowledgedSeq"
)

// NeedsAdaptation reports whether the transmitter changed since the
// inheritor last acknowledged (the consistency-control reading of the
// binding attributes).
func (b *Binding) NeedsAdaptation() bool {
	attrs := b.Obj.attrMap()
	last, _ := domain.AsInt(attrs[AttrLastUpdateSeq])
	ack, _ := domain.AsInt(attrs[AttrAcknowledgedSeq])
	return last > ack
}

// sortedNames returns map keys in sorted order for deterministic output.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
