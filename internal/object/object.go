// Package object implements the runtime of the object model: objects with
// system-managed surrogates, classes, complex objects (local subobject and
// relationship subclasses, §3), relationship objects, and the inheritance
// bindings that give composite objects and interface/implementation pairs
// their view semantics (§4).
//
// The Store is the unit of consistency: all operations go through it and
// it is safe for concurrent use. Higher layers add transactions
// (internal/txn), versioning (internal/version), persistence
// (internal/storage) and snapshot isolation for long reads (mvcc.go).
package object

import (
	"sort"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// Object is one object or relationship object. All mutation goes through
// the Store; the accessor methods here are read-only snapshots and must
// only be used while the caller is certain no concurrent mutation runs
// (the Store's public API copies what it returns).
type Object struct {
	sur      domain.Surrogate
	typeName string
	isRel    bool // relationship object (including inheritance bindings)

	// attrs points at the current attribute slot map. Published maps are
	// immutable; adding or removing a key replaces the map copy-on-write
	// under the owning shard's lock, while writing an existing attribute
	// pushes a new version onto the slot's chain in place. Either way a
	// lock-free reader sees complete values, never partial writes.
	attrs        atomic.Pointer[map[string]*attrBox]
	participants map[string]domain.Value // rel objects: role -> Ref or *Set

	// subclasses and subrels are copy-on-write maps: a class, once
	// materialized, is never removed from them, so a snapshot reader that
	// finds a class materialized after its pin simply reads an empty
	// membership at its sequence — the same answer as not finding it.
	subclasses atomic.Pointer[map[string]*Class]
	subrels    atomic.Pointer[map[string]*Class]

	// book is the binding bookkeeping; non-nil exactly on inheritance
	// binding objects.
	book *bindingBook
	// binding backlinks the Binding on inheritance binding objects
	// (snapshot export classifies records through it); nil otherwise.
	// Set once under the all-shard lock before the object is published.
	binding *Binding

	parent     domain.Surrogate // 0 for top-level objects
	parentSub  string           // subclass of the parent that holds this object
	ownerClass string           // top-level class name, "" if none

	// modSeq is the store sequence of the last direct mutation (attribute
	// write, subclass membership change); used for optimistic checkin.
	// modPrev retains prior values for snapshot pins (see mvcc.go).
	modSeq  atomic.Uint64
	modPrev atomic.Pointer[mver]

	// createdSeq is the sequence of the creating operation, written before
	// the object is published to snapshot readers (0 for imported base
	// state). deletedSeq is set by the deleting operation; a snapshot at S
	// sees the object iff createdSeq <= S < deletedSeq.
	createdSeq uint64
	deletedSeq atomic.Uint64
}

// attrMap returns the current attribute slot map; callers must treat the
// map itself as immutable.
func (o *Object) attrMap() map[string]*attrBox {
	if p := o.attrs.Load(); p != nil {
		return *p
	}
	return nil
}

// initAttrs publishes the initial attribute map of a new object, stamped
// at the given creation sequence (0 for imported base state).
func (o *Object) initAttrs(m map[string]domain.Value, at uint64) {
	boxes := make(map[string]*attrBox, len(m))
	for k, v := range m {
		boxes[k] = newAttrBoxAt(v, at)
	}
	o.attrs.Store(&boxes)
}

// initClasses publishes empty subclass/subrel maps.
func (o *Object) initClasses() {
	sub := make(map[string]*Class)
	rel := make(map[string]*Class)
	o.subclasses.Store(&sub)
	o.subrels.Store(&rel)
}

// subMap returns the current local-subclass map (immutable; COW).
func (o *Object) subMap() map[string]*Class {
	if p := o.subclasses.Load(); p != nil {
		return *p
	}
	return nil
}

// relMap returns the current relationship-subclass map (immutable; COW).
func (o *Object) relMap() map[string]*Class {
	if p := o.subrels.Load(); p != nil {
		return *p
	}
	return nil
}

// putSub publishes a newly materialized local subclass (COW map swap,
// under the all-shard lock).
func (o *Object) putSub(name string, c *Class) {
	old := o.subMap()
	m := make(map[string]*Class, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = c
	o.subclasses.Store(&m)
}

// putSubrel publishes a newly materialized relationship subclass.
func (o *Object) putSubrel(name string, c *Class) {
	old := o.relMap()
	m := make(map[string]*Class, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = c
	o.subrels.Store(&m)
}

// attr loads one attribute's live value; the second result reports
// presence (a tombstone head reads as absent).
func (o *Object) attr(name string) (domain.Value, bool) {
	if b, ok := o.attrMap()[name]; ok {
		return b.load()
	}
	return nil, false
}

// attrValues materializes the live attribute map as plain values.
func (o *Object) attrValues() map[string]domain.Value {
	m := o.attrMap()
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(m))
	for k, b := range m {
		if v, ok := b.load(); ok {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// setAttr sets name to v at the given operation sequence. Setting an
// existing attribute pushes a version onto the slot's chain in place;
// adding a key publishes a map copy; a null value pushes a tombstone when
// a snapshot pin may still read the old value, otherwise deletes the key
// (keeping snapshots free of null entries). ceil is the current pin
// ceiling. Callers hold the owning shard's write lock. Reports how many
// version nodes were retained for pins.
func (o *Object) setAttr(name string, v domain.Value, at, ceil uint64) int {
	old := o.attrMap()
	if domain.IsNull(v) {
		b, ok := old[name]
		if !ok {
			return 0
		}
		if h := b.head.Load(); h != nil && (h.at <= ceil || h.prev.Load() != nil) {
			// A pin may read the current value — or the chain carries
			// retained tail nodes a pin still needs: tombstone the slot
			// instead of dropping the box.
			if b.put(at, nil, ceil) {
				return 1
			}
			return 0
		}
		m := make(map[string]*attrBox, len(old))
		for k, x := range old {
			if k != name {
				m[k] = x
			}
		}
		o.attrs.Store(&m)
		return 0
	}
	if b, ok := old[name]; ok {
		if b.put(at, &v, ceil) {
			return 1
		}
		return 0
	}
	m := make(map[string]*attrBox, len(old)+1)
	for k, x := range old {
		m[k] = x
	}
	m[name] = newAttrBoxAt(v, at)
	o.attrs.Store(&m)
	return 0
}

// Surrogate returns the system-wide identifier.
func (o *Object) Surrogate() domain.Surrogate { return o.sur }

// TypeName returns the object's (or relationship's) type name.
func (o *Object) TypeName() string { return o.typeName }

// IsRelationship reports whether the object represents a relationship.
func (o *Object) IsRelationship() bool { return o.isRel }

// Parent returns the owning complex object's surrogate, or 0.
func (o *Object) Parent() domain.Surrogate { return o.parent }

// ParentSubclass returns the parent subclass holding this subobject.
func (o *Object) ParentSubclass() string { return o.parentSub }

// Class is an ordered set of member objects: either a database-level
// class or a local subclass of a complex object.
type Class struct {
	name     string
	elemType string
	// members points at the current membership slice. Published slices are
	// immutable: add/remove build a new slice and swap the pointer, so the
	// lock-free Members hit path can read membership without locking. The
	// index map is only touched by writers holding the store write locks.
	members atomic.Pointer[[]domain.Surrogate]
	index   map[domain.Surrogate]int

	// hist versions the membership for snapshot readers (see mvcc.go);
	// createdSeq stamps database-level class creation.
	hist       atomic.Pointer[cver]
	createdSeq uint64
}

func newClass(name, elemType string) *Class {
	return &Class{name: name, elemType: elemType, index: make(map[domain.Surrogate]int)}
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// ElemType returns the member object type ("" for unrestricted classes).
func (c *Class) ElemType() string { return c.elemType }

// items returns the current membership slice; callers must not mutate it.
func (c *Class) items() []domain.Surrogate {
	if p := c.members.Load(); p != nil {
		return *p
	}
	return nil
}

// Len reports the member count.
func (c *Class) Len() int { return len(c.items()) }

// Members returns the member surrogates in insertion order (a copy).
func (c *Class) Members() []domain.Surrogate {
	return append([]domain.Surrogate(nil), c.items()...)
}

// Contains reports membership. Only valid under the store lock (the index
// is writer-maintained).
func (c *Class) Contains(sur domain.Surrogate) bool {
	_, ok := c.index[sur]
	return ok
}

func (c *Class) add(sur domain.Surrogate) {
	if _, dup := c.index[sur]; dup {
		return
	}
	cur := c.items()
	var next []domain.Surrogate
	if cap(cur) > len(cur) {
		// Amortized append: there is a single mutator (membership changes
		// run store-exclusive), and every published header — live readers'
		// and history versions' alike — is shorter than or equal to cur, so
		// nothing ever reads the spare slot being filled. remove always
		// allocates a fresh array, so no longer header can share this one.
		next = cur[:len(cur)+1]
	} else {
		next = make([]domain.Surrogate, len(cur)+1, 1+2*len(cur))
		copy(next, cur)
	}
	next[len(cur)] = sur
	c.index[sur] = len(cur)
	c.members.Store(&next)
}

func (c *Class) remove(sur domain.Surrogate) {
	i, ok := c.index[sur]
	if !ok {
		return
	}
	cur := c.items()
	next := make([]domain.Surrogate, 0, len(cur)-1)
	next = append(next, cur[:i]...)
	next = append(next, cur[i+1:]...)
	delete(c.index, sur)
	for j := i; j < len(next); j++ {
		c.index[next[j]] = j
	}
	c.members.Store(&next)
}

// Binding is one inheritance relationship object: it relates an inheritor
// to its transmitter under an inher-rel-type and carries the relationship
// object (with the system bookkeeping attributes and any user-declared
// attributes).
//
// System attributes maintained on the relationship object (§2: "the
// attributes of the relationship can be used" to inform about transmitter
// changes):
//
//	TransmitterUpdates — number of permeable transmitter updates so far
//	LastUpdateSeq      — store sequence number of the latest such update
//	AcknowledgedSeq    — sequence the inheritor side has adapted to
type Binding struct {
	Obj         *Object
	Rel         *schema.InherRelType
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
}

// System attribute names on binding relationship objects.
const (
	AttrTransmitterUpdates = "TransmitterUpdates"
	AttrLastUpdateSeq      = "LastUpdateSeq"
	AttrAcknowledgedSeq    = "AcknowledgedSeq"
)

// NeedsAdaptation reports whether the transmitter changed since the
// inheritor last acknowledged (the consistency-control reading of the
// binding attributes).
func (b *Binding) NeedsAdaptation() bool {
	if b.Obj.book == nil {
		return false
	}
	_, last, ack := b.Obj.book.now()
	return last > ack
}

// sortedNames returns map keys in sorted order for deterministic output.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
