// Package object implements the runtime of the object model: objects with
// system-managed surrogates, classes, complex objects (local subobject and
// relationship subclasses, §3), relationship objects, and the inheritance
// bindings that give composite objects and interface/implementation pairs
// their view semantics (§4).
//
// The Store is the unit of consistency: all operations go through it and
// it is safe for concurrent use. Higher layers add transactions
// (internal/txn), versioning (internal/version) and persistence
// (internal/storage).
package object

import (
	"sort"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/schema"
)

// attrBox is one attribute slot. The slot's value is swapped atomically so
// the lock-free resolution-cache hit path (and cross-shard expression
// evaluation) reads a consistent value without synchronization, while a
// writer holding only its own shard lock updates in place — no whole-map
// copy per write.
type attrBox struct {
	p atomic.Pointer[domain.Value]
	// decl memoizes the schema declaration this slot was validated
	// against, letting repeated writes skip the effective-type lookups.
	// Effective types are immutable once the catalog is built, and a slot
	// only ever exists for a non-inherited declared attribute. nil on
	// slots created before the declaration was resolved (Import, initial
	// attrs); backfilled by the first SetAttr. Accessed only under the
	// owning shard's write lock.
	decl *schema.EffAttr
}

func newAttrBox(v domain.Value) *attrBox {
	b := &attrBox{}
	b.p.Store(&v)
	return b
}

func (b *attrBox) load() domain.Value { return *b.p.Load() }

func (b *attrBox) store(v domain.Value) { b.p.Store(&v) }

// bindingBook holds the system bookkeeping of one inheritance binding as
// atomics. Transmitter updates fan out across shards while the writer
// holds only the transmitter's shard lock, so the counters must commute:
// updates is a plain atomic add, and the sequence fields converge by
// compare-and-swap to the maximum — concurrent updates reach the same
// final state in any order, which journal replay depends on.
type bindingBook struct {
	updates atomic.Int64
	lastSeq atomic.Int64
	ackSeq  atomic.Int64
}

// casMax raises a to at least v.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Object is one object or relationship object. All mutation goes through
// the Store; the accessor methods here are read-only snapshots and must
// only be used while the caller is certain no concurrent mutation runs
// (the Store's public API copies what it returns).
type Object struct {
	sur      domain.Surrogate
	typeName string
	isRel    bool // relationship object (including inheritance bindings)

	// attrs points at the current attribute slot map. Published maps are
	// immutable; adding or removing a key replaces the map copy-on-write
	// under the owning shard's lock, while overwriting an existing
	// attribute swaps the slot's value atomically in place. Either way a
	// lock-free reader sees complete values, never partial writes.
	attrs        atomic.Pointer[map[string]*attrBox]
	participants map[string]domain.Value // rel objects: role -> Ref or *Set
	subclasses   map[string]*Class
	subrels      map[string]*Class

	// book is the binding bookkeeping; non-nil exactly on inheritance
	// binding objects.
	book *bindingBook

	parent     domain.Surrogate // 0 for top-level objects
	parentSub  string           // subclass of the parent that holds this object
	ownerClass string           // top-level class name, "" if none

	// modSeq is the store sequence of the last direct mutation (attribute
	// write, subclass membership change); used for optimistic checkin.
	// Guarded by the owning shard's lock.
	modSeq uint64
}

// attrMap returns the current attribute slot map; callers must treat the
// map itself as immutable.
func (o *Object) attrMap() map[string]*attrBox {
	if p := o.attrs.Load(); p != nil {
		return *p
	}
	return nil
}

// initAttrs publishes the initial attribute map of a new object.
func (o *Object) initAttrs(m map[string]domain.Value) {
	boxes := make(map[string]*attrBox, len(m))
	for k, v := range m {
		boxes[k] = newAttrBox(v)
	}
	o.attrs.Store(&boxes)
}

// attr loads one attribute value; the second result reports presence.
func (o *Object) attr(name string) (domain.Value, bool) {
	if b, ok := o.attrMap()[name]; ok {
		return b.load(), true
	}
	return nil, false
}

// attrValues materializes the attribute map as plain values (snapshots).
func (o *Object) attrValues() map[string]domain.Value {
	m := o.attrMap()
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(m))
	for k, b := range m {
		out[k] = b.load()
	}
	return out
}

// setAttr sets name to v. Setting an existing attribute swaps the slot in
// place; adding a key (or removing one — a null value deletes the
// attribute, keeping snapshots free of null entries) publishes a map copy.
// Callers hold the owning shard's write lock.
func (o *Object) setAttr(name string, v domain.Value) {
	old := o.attrMap()
	if domain.IsNull(v) {
		if _, ok := old[name]; !ok {
			return
		}
		m := make(map[string]*attrBox, len(old))
		for k, x := range old {
			if k != name {
				m[k] = x
			}
		}
		o.attrs.Store(&m)
		return
	}
	if b, ok := old[name]; ok {
		b.store(v)
		return
	}
	m := make(map[string]*attrBox, len(old)+1)
	for k, x := range old {
		m[k] = x
	}
	m[name] = newAttrBox(v)
	o.attrs.Store(&m)
}

// Surrogate returns the system-wide identifier.
func (o *Object) Surrogate() domain.Surrogate { return o.sur }

// TypeName returns the object's (or relationship's) type name.
func (o *Object) TypeName() string { return o.typeName }

// IsRelationship reports whether the object represents a relationship.
func (o *Object) IsRelationship() bool { return o.isRel }

// Parent returns the owning complex object's surrogate, or 0.
func (o *Object) Parent() domain.Surrogate { return o.parent }

// ParentSubclass returns the parent subclass holding this subobject.
func (o *Object) ParentSubclass() string { return o.parentSub }

// Class is an ordered set of member objects: either a database-level
// class or a local subclass of a complex object.
type Class struct {
	name     string
	elemType string
	// members points at the current membership slice. Published slices are
	// immutable: add/remove build a new slice and swap the pointer, so the
	// lock-free Members hit path can read membership without locking. The
	// index map is only touched by writers holding the store write locks.
	members atomic.Pointer[[]domain.Surrogate]
	index   map[domain.Surrogate]int
}

func newClass(name, elemType string) *Class {
	return &Class{name: name, elemType: elemType, index: make(map[domain.Surrogate]int)}
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// ElemType returns the member object type ("" for unrestricted classes).
func (c *Class) ElemType() string { return c.elemType }

// items returns the current membership slice; callers must not mutate it.
func (c *Class) items() []domain.Surrogate {
	if p := c.members.Load(); p != nil {
		return *p
	}
	return nil
}

// Len reports the member count.
func (c *Class) Len() int { return len(c.items()) }

// Members returns the member surrogates in insertion order (a copy).
func (c *Class) Members() []domain.Surrogate {
	return append([]domain.Surrogate(nil), c.items()...)
}

// Contains reports membership. Only valid under the store lock (the index
// is writer-maintained).
func (c *Class) Contains(sur domain.Surrogate) bool {
	_, ok := c.index[sur]
	return ok
}

func (c *Class) add(sur domain.Surrogate) {
	if _, dup := c.index[sur]; dup {
		return
	}
	cur := c.items()
	next := make([]domain.Surrogate, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sur
	c.index[sur] = len(cur)
	c.members.Store(&next)
}

func (c *Class) remove(sur domain.Surrogate) {
	i, ok := c.index[sur]
	if !ok {
		return
	}
	cur := c.items()
	next := make([]domain.Surrogate, 0, len(cur)-1)
	next = append(next, cur[:i]...)
	next = append(next, cur[i+1:]...)
	delete(c.index, sur)
	for j := i; j < len(next); j++ {
		c.index[next[j]] = j
	}
	c.members.Store(&next)
}

// Binding is one inheritance relationship object: it relates an inheritor
// to its transmitter under an inher-rel-type and carries the relationship
// object (with the system bookkeeping attributes and any user-declared
// attributes).
//
// System attributes maintained on the relationship object (§2: "the
// attributes of the relationship can be used" to inform about transmitter
// changes):
//
//	TransmitterUpdates — number of permeable transmitter updates so far
//	LastUpdateSeq      — store sequence number of the latest such update
//	AcknowledgedSeq    — sequence the inheritor side has adapted to
type Binding struct {
	Obj         *Object
	Rel         *schema.InherRelType
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
}

// System attribute names on binding relationship objects.
const (
	AttrTransmitterUpdates = "TransmitterUpdates"
	AttrLastUpdateSeq      = "LastUpdateSeq"
	AttrAcknowledgedSeq    = "AcknowledgedSeq"
)

// NeedsAdaptation reports whether the transmitter changed since the
// inheritor last acknowledged (the consistency-control reading of the
// binding attributes).
func (b *Binding) NeedsAdaptation() bool {
	bk := b.Obj.book
	return bk != nil && bk.lastSeq.Load() > bk.ackSeq.Load()
}

// sortedNames returns map keys in sorted order for deterministic output.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
