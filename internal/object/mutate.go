package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// SetAttr sets an attribute on an object or relationship object.
//
// Write protection (§2): attributes that reach the object through an
// inheritance relationship are read-only here and can only change on the
// transmitter side; attempting to set them returns ErrInheritedAttribute.
//
// Every successful update of an object that is a transmitter bumps the
// bookkeeping of all bindings through which the change is visible and
// fires registered update hooks (after the lock is released),
// transitively along inheritance chains.
//
// SetAttr is the hot single-shard path: it locks only the shard owning
// sur. Chain validation and notification read other shards' topology,
// which any single shard lock freezes (see the shard type); binding
// bookkeeping on other shards advances through commuting atomics.
func (s *Store) SetAttr(sur domain.Surrogate, name string, v domain.Value) error {
	sh := s.shardOf(sur)
	sh.mu.Lock()
	dispatch, err := s.setAttrShard(sh, sur, name, v, 0)
	sh.mu.Unlock()
	if dispatch {
		s.dispatchEvents()
	}
	return err
}

// SetAttrAt applies a journaled attribute write with its recorded
// sequence number — the parallel-recovery form of SetAttr. It neither
// consumes the store's sequence counter nor journals, so recovery may
// apply per-shard partitions of the journal concurrently: each goroutine
// holds its own shard's lock, topology is frozen (structural ops are
// replay barriers), and cross-shard binding bookkeeping advances through
// commuting atomics, reproducing the live outcome regardless of the
// goroutine interleaving. Only recovery may call it.
func (s *Store) SetAttrAt(sur domain.Surrogate, name string, v domain.Value, seq uint64) error {
	sh := s.shardOf(sur)
	sh.mu.Lock()
	dispatch, err := s.setAttrShard(sh, sur, name, v, seq)
	sh.mu.Unlock()
	if dispatch {
		s.dispatchEvents()
	}
	return err
}

// setAttrShard performs an attribute write under the owning shard's lock.
// replaySeq == 0 is the live path: the write consumes a fresh sequence
// number and is journaled. replaySeq != 0 is the recovery path: the
// journaled sequence is applied verbatim and nothing is re-journaled.
func (s *Store) setAttrShard(sh *shard, sur domain.Surrogate, name string, v domain.Value, replaySeq uint64) (bool, error) {
	o, ok := sh.objects[sur]
	if !ok {
		return false, noObject(sur)
	}
	if err := s.guardLocked(sur); err != nil {
		return false, err
	}
	if o.isRel {
		return false, s.setRelAttrLocked(o, name, v, replaySeq)
	}
	// Fast path: overwriting an already-validated slot. The memoized
	// declaration proves the attribute is declared and non-inherited, so
	// only the value itself needs checking.
	if b, ok := o.attrMap()[name]; ok && b.decl != nil && !domain.IsNull(v) {
		if err := b.decl.Domain.Validate(v); err != nil {
			return false, fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
		}
		if err := s.checkRefValueLocked(b.decl.Domain, v); err != nil {
			return false, err
		}
		seq := replaySeq
		if seq == 0 {
			seq = s.seq.Add(1)
		}
		ceil := s.ceiling()
		if b.put(seq, &v, ceil) {
			sh.retained.Add(1)
		}
		if o.pushModSeq(seq, ceil) {
			sh.retained.Add(1)
		}
		s.markDirty(sur)
		s.idxOwn(o, name, v, seq)
		n := notifier{s: s, seq: seq}
		n.notify(sur, name)
		if o.parent != 0 {
			n.notify(o.parent, o.parentSub)
		}
		if replaySeq == 0 && s.journal != nil {
			s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: sur, Name: name, Value: v, Seq: seq})
		}
		return n.queue(), nil
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return false, err
	}
	a, ok := eff.Attr(name)
	if !ok {
		return false, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if a.Inherited() {
		return false, fmt.Errorf("%w: %s.%s (from %s via %s)", ErrInheritedAttribute, o.typeName, name, a.Source, a.Via)
	}
	if err := a.Domain.Validate(v); err != nil {
		return false, fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
	}
	if err := s.checkRefValueLocked(a.Domain, v); err != nil {
		return false, err
	}
	seq := replaySeq
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	ceil := s.ceiling()
	if n := o.setAttr(name, v, seq, ceil); n > 0 {
		sh.retained.Add(uint64(n))
	}
	if b, ok := o.attrMap()[name]; ok {
		b.decl = a // arm the fast path for subsequent writes
	}
	if o.pushModSeq(seq, ceil) {
		sh.retained.Add(1)
	}
	s.markDirty(sur)
	s.idxOwn(o, name, v, seq)
	n := notifier{s: s, seq: seq}
	n.notify(sur, name)
	// A subobject update also changes what the parent's subclass shows:
	// inheritors seeing the parent's subclass are informed as well.
	if o.parent != 0 {
		n.notify(o.parent, o.parentSub)
	}
	if replaySeq == 0 && s.journal != nil { // guard here so an in-memory store never allocates the op
		s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: sur, Name: name, Value: v, Seq: seq})
	}
	return n.queue(), nil
}

// setRelAttrLocked updates a user-declared attribute of a relationship
// object. Participant roles and the binding bookkeeping attributes are not
// assignable. Declaration lookups use the catalog's precomputed per-type
// indexes rather than scanning the declaration slices. replaySeq follows
// the setAttrShard convention.
func (s *Store) setRelAttrLocked(o *Object, name string, v domain.Value, replaySeq uint64) error {
	if _, ok := s.cat.RelType(o.typeName); ok {
		if s.cat.RelRole(o.typeName, name) {
			return fmt.Errorf("%w: participant role %q is fixed at creation", ErrTypeMismatch, name)
		}
	} else if _, ok := s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return fmt.Errorf("%w: %q is maintained by the system", ErrTypeMismatch, name)
		}
	} else {
		return fmt.Errorf("%w: %q", ErrNoSuchType, o.typeName)
	}
	a, ok := s.cat.RelAttr(o.typeName, name)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if err := a.Domain.Validate(v); err != nil {
		return fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
	}
	seq := replaySeq
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	ceil := s.ceiling()
	sh := s.shardOf(o.sur)
	if n := o.setAttr(name, v, seq, ceil); n > 0 {
		sh.retained.Add(uint64(n))
	}
	if o.pushModSeq(seq, ceil) {
		sh.retained.Add(1)
	}
	s.markDirty(o.sur)
	if replaySeq == 0 {
		s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: o.sur, Name: name, Value: v, Seq: seq})
	}
	return nil
}

// checkRefValueLocked verifies that object references inside v point to
// live objects of the domain's required type. Lookups may cross shards;
// the caller's shard lock freezes topology store-wide.
func (s *Store) checkRefValueLocked(d *domain.Domain, v domain.Value) error {
	if domain.IsNull(v) {
		return nil
	}
	switch x := v.(type) {
	case domain.Ref:
		ro, ok := s.obj(domain.Surrogate(x))
		if !ok {
			return fmt.Errorf("%w: reference %s", ErrNoSuchObject, x)
		}
		if want := d.ObjectType(); want != "" && ro.typeName != want {
			return fmt.Errorf("%w: reference %s is %q, want %q", ErrTypeMismatch, x, ro.typeName, want)
		}
	case *domain.Set:
		if d.Kind() == domain.KindSet {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	case *domain.List:
		if d.Kind() == domain.KindList {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GetAttr reads an attribute with the paper's resolution rule: own
// attributes come from the object itself; inherited attributes are read
// through the binding from the live transmitter (view semantics — never a
// copy), or read as null while unbound (type-level inheritance only).
//
// The hot path is lock-free: a memoized route valid against the current
// epochs of the shards it crosses names the object whose own attribute
// slot holds the value, and that slot is read live — so transmitter
// updates are visible immediately after a hit, while any structural
// change forces the locked slow path via the epoch check.
func (s *Store) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	if r, ok := s.loadAttrRoute(sur, name); ok {
		s.shardOf(sur).hits.Add(1)
		if r.owner == nil {
			return domain.NullValue, nil
		}
		if v, ok := r.owner.attr(name); ok {
			return v, nil
		}
		return domain.NullValue, nil
	}
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.getAttrLocked(o, name)
}

func (s *Store) getAttrLocked(o *Object, name string) (domain.Value, error) {
	if name == "Surrogate" {
		return domain.Ref(o.sur), nil
	}
	if o.isRel {
		return s.getRelAttrLocked(o, name)
	}
	v, _, err := s.resolveAttrLocked(o, name)
	return v, err
}

// resolveAttrLocked walks the inheritance chain iteratively, memoizing the
// route taken: either the chain ends at the object owning the attribute
// (the value is read from its live slot) or it ends unbound (the read is
// null until a Bind — which bumps the inheritor's shard epoch — changes
// that). Unknown attributes are not memoized and keep their error
// semantics. The walk crosses shards freely: the caller holds some shard
// lock, which freezes topology store-wide.
func (s *Store) resolveAttrLocked(o *Object, name string) (domain.Value, *route, error) {
	chain := []domain.Surrogate{o.sur}
	cur := o
	for {
		eff, err := s.effectiveLocked(cur)
		if err != nil {
			return nil, nil, err
		}
		a, ok := eff.Attr(name)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, cur.typeName, name)
		}
		if !a.Inherited() {
			r := s.memoAttr(o.sur, name, cur, chain)
			if v, ok := cur.attr(name); ok {
				return v, r, nil
			}
			return domain.NullValue, r, nil
		}
		b := s.bindingLocked(cur.sur, a.Via)
		if b == nil {
			r := s.memoAttr(o.sur, name, nil, chain)
			return domain.NullValue, r, nil
		}
		t, ok := s.obj(b.Transmitter)
		if !ok {
			r := s.memoAttr(o.sur, name, nil, chain)
			return domain.NullValue, r, nil
		}
		chain = append(chain, t.sur)
		cur = t
	}
}

func (s *Store) getRelAttrLocked(o *Object, name string) (domain.Value, error) {
	if v, ok := o.participants[name]; ok {
		return v, nil
	}
	if o.book != nil {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			upd, last, ack := o.book.now()
			switch name {
			case AttrTransmitterUpdates:
				return domain.Int(upd), nil
			case AttrLastUpdateSeq:
				return domain.Int(last), nil
			default:
				return domain.Int(ack), nil
			}
		}
	}
	if v, ok := o.attr(name); ok {
		return v, nil
	}
	// Verify the name is declared before returning null (O(1) via the
	// catalog's precomputed attribute index).
	if _, ok := s.cat.RelAttr(o.typeName, name); ok {
		return domain.NullValue, nil
	}
	if _, ok := s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return domain.Int(0), nil
		}
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
}

// Members returns the member surrogates of a local subclass or
// relationship subclass, following inheritance for subclasses the object's
// type inherits (the interface's Pins seen from the implementation).
//
// Like GetAttr, the hot path is lock-free: a valid members route points at
// the owner's materialized class, whose membership slice is published
// atomically. Routes exist only for names that resolve as (possibly
// inherited) subclasses; sub-relationship and relationship-object reads
// always take the locked slow path, so the route can never shadow them.
func (s *Store) Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	if r, ok := s.loadMembersRoute(sur, name); ok {
		s.shardOf(sur).hits.Add(1)
		if r.cls == nil {
			return nil, nil
		}
		return r.cls.Members(), nil
	}
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.membersLocked(o, name)
}

func (s *Store) membersLocked(o *Object, name string) ([]domain.Surrogate, error) {
	if cls, ok := o.relMap()[name]; ok {
		return cls.Members(), nil
	}
	if o.isRel {
		if cls, ok := o.subMap()[name]; ok {
			return cls.Members(), nil
		}
		if s.cat.RelMemberName(o.typeName, name) {
			return nil, nil // declared but empty
		}
		return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	r, err := s.resolveMembersLocked(o, name)
	if err != nil {
		return nil, err
	}
	if r == nil || r.cls == nil {
		return nil, nil
	}
	return r.cls.Members(), nil
}

// resolveMembersLocked walks the inheritance chain for a subclass name,
// memoizing the route to the owner's materialized class. A nil route (with
// nil error) marks a declared sub-relationship with no members yet — not
// memoized, because materializing it does not bump any epoch.
func (s *Store) resolveMembersLocked(o *Object, name string) (*route, error) {
	chain := []domain.Surrogate{o.sur}
	cur := o
	for {
		eff, err := s.effectiveLocked(cur)
		if err != nil {
			return nil, err
		}
		sd, ok := eff.SubclassByName(name)
		if !ok {
			for _, sr := range eff.Type.SubRels {
				if sr.Name == name {
					return nil, nil // declared but no members yet
				}
			}
			return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, cur.typeName, name)
		}
		if !sd.Inherited() {
			// cur's class may be nil (not materialized yet); materialization
			// bumps cur's shard epoch, invalidating this route.
			return s.memoMembers(o.sur, name, cur.subMap()[name], chain), nil
		}
		b := s.bindingLocked(cur.sur, sd.Via)
		if b == nil {
			return s.memoMembers(o.sur, name, nil, chain), nil // unbound: structure without members
		}
		t, ok := s.obj(b.Transmitter)
		if !ok {
			return s.memoMembers(o.sur, name, nil, chain), nil
		}
		chain = append(chain, t.sur)
		cur = t
	}
}

// notifier walks the inheritance fan-out from changed transmitters,
// updating binding bookkeeping and collecting UpdateEvents for every
// binding through which a change is visible. Chains re-transmit: if an
// implementation inherits Pins from its interface and a composite
// inherits Pins from the implementation, an interface update notifies
// both bindings. The walk reads binding indexes across shards (topology
// is frozen under the caller's shard lock); bookkeeping advances through
// the commuting atomics on the binding objects, so a single-shard caller
// may touch bindings owned by other shards.
type notifier struct {
	s       *Store
	seq     uint64
	unbound bool
	visited map[visitKey]bool
	events  []UpdateEvent
}

// visitKey cycle-breaks the notification walk per (transmitter, member)
// pair, not per transmitter: one operation may notify several members
// (an attribute plus the parent's subclass), and a transmitter reached
// for one member must still fan out for the other — keying by surrogate
// alone would make the outcome depend on notification order.
type visitKey struct {
	transmitter domain.Surrogate
	member      string
}

func (n *notifier) notify(transmitter domain.Surrogate, member string) {
	bindings := n.s.shardOf(transmitter).byTransmitter[transmitter]
	if len(bindings) == 0 {
		return
	}
	if n.visited == nil {
		n.visited = make(map[visitKey]bool)
	}
	k := visitKey{transmitter, member}
	if n.visited[k] {
		return
	}
	n.visited[k] = true
	for _, b := range bindings {
		if !b.Rel.Inherits(member) {
			continue
		}
		if b.Obj.book.noteUpdate(n.seq, n.s.ceiling()) {
			n.s.shardOf(b.Obj.sur).retained.Add(1)
		}
		// The bookkeeping is durable state of the binding object, which may
		// live in a shard other than the caller's: its segment must be
		// re-encoded at the next checkpoint.
		n.s.markDirty(b.Obj.sur)
		n.events = append(n.events, UpdateEvent{
			Rel:         b.Rel.Name,
			Binding:     b.Obj.sur,
			Transmitter: transmitter,
			Inheritor:   b.Inheritor,
			Member:      member,
			Seq:         n.seq,
			Unbound:     n.unbound,
		})
		// An index over the member sees the change through the inheritor.
		n.s.idxInherited(b.Inheritor, member, n.seq)
		// The inheritor's own inheritors may see the member through it.
		n.notify(b.Inheritor, member)
	}
}

// queue hands the collected events to the dispatch queue (still under the
// caller's locks, preserving order). It returns whether the caller must
// run dispatchEvents after unlocking.
func (n *notifier) queue() bool {
	if len(n.events) == 0 {
		return false
	}
	n.s.queueEvents(n.events)
	return true
}
