package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
)

// SetAttr sets an attribute on an object or relationship object.
//
// Write protection (§2): attributes that reach the object through an
// inheritance relationship are read-only here and can only change on the
// transmitter side; attempting to set them returns ErrInheritedAttribute.
//
// Every successful update of an object that is a transmitter bumps the
// bookkeeping attributes of all bindings through which the change is
// visible and fires registered update hooks, transitively along
// inheritance chains.
func (s *Store) SetAttr(sur domain.Surrogate, name string, v domain.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[sur]
	if !ok {
		return noObject(sur)
	}
	if err := s.guardLocked(sur); err != nil {
		return err
	}
	if o.isRel {
		return s.setRelAttrLocked(o, name, v)
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return err
	}
	a, ok := eff.Attr(name)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if a.Inherited() {
		return fmt.Errorf("%w: %s.%s (from %s via %s)", ErrInheritedAttribute, o.typeName, name, a.Source, a.Via)
	}
	if err := a.Domain.Validate(v); err != nil {
		return fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
	}
	if err := s.checkRefValueLocked(a.Domain, v); err != nil {
		return err
	}
	if domain.IsNull(v) {
		delete(o.attrs, name)
	} else {
		o.attrs[name] = v
	}
	s.seq++
	o.modSeq = s.seq
	s.notifyLocked(sur, name, map[domain.Surrogate]bool{})
	// A subobject update also changes what the parent's subclass shows:
	// inheritors seeing the parent's subclass are informed as well.
	if o.parent != 0 {
		s.notifyLocked(o.parent, o.parentSub, map[domain.Surrogate]bool{})
	}
	s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: sur, Name: name, Value: v})
	return nil
}

// setRelAttrLocked updates a user-declared attribute of a relationship
// object. Participant roles and the binding bookkeeping attributes are not
// assignable.
func (s *Store) setRelAttrLocked(o *Object, name string, v domain.Value) error {
	var attrs []schema.Attribute
	if rt, ok := s.cat.RelType(o.typeName); ok {
		for _, p := range rt.Participants {
			if p.Name == name {
				return fmt.Errorf("%w: participant role %q is fixed at creation", ErrTypeMismatch, name)
			}
		}
		attrs = rt.Attributes
	} else if it, ok := s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return fmt.Errorf("%w: %q is maintained by the system", ErrTypeMismatch, name)
		}
		attrs = it.Attributes
	} else {
		return fmt.Errorf("%w: %q", ErrNoSuchType, o.typeName)
	}
	for _, a := range attrs {
		if a.Name != name {
			continue
		}
		if err := a.Domain.Validate(v); err != nil {
			return fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
		}
		if domain.IsNull(v) {
			delete(o.attrs, name)
		} else {
			o.attrs[name] = v
		}
		s.seq++
		o.modSeq = s.seq
		s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: o.sur, Name: name, Value: v})
		return nil
	}
	return fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
}

// checkRefValueLocked verifies that object references inside v point to
// live objects of the domain's required type.
func (s *Store) checkRefValueLocked(d *domain.Domain, v domain.Value) error {
	if domain.IsNull(v) {
		return nil
	}
	switch x := v.(type) {
	case domain.Ref:
		ro, ok := s.objects[domain.Surrogate(x)]
		if !ok {
			return fmt.Errorf("%w: reference %s", ErrNoSuchObject, x)
		}
		if want := d.ObjectType(); want != "" && ro.typeName != want {
			return fmt.Errorf("%w: reference %s is %q, want %q", ErrTypeMismatch, x, ro.typeName, want)
		}
	case *domain.Set:
		if d.Kind() == domain.KindSet {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	case *domain.List:
		if d.Kind() == domain.KindList {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GetAttr reads an attribute with the paper's resolution rule: own
// attributes come from the object itself; inherited attributes are read
// through the binding from the live transmitter (view semantics — never a
// copy), or read as null while unbound (type-level inheritance only).
func (s *Store) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.getAttrLocked(o, name)
}

func (s *Store) getAttrLocked(o *Object, name string) (domain.Value, error) {
	if name == "Surrogate" {
		return domain.Ref(o.sur), nil
	}
	if o.isRel {
		return s.getRelAttrLocked(o, name)
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return nil, err
	}
	a, ok := eff.Attr(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if !a.Inherited() {
		if v, ok := o.attrs[name]; ok {
			return v, nil
		}
		return domain.NullValue, nil
	}
	b := s.bindingLocked(o.sur, a.Via)
	if b == nil {
		return domain.NullValue, nil
	}
	t, ok := s.objects[b.Transmitter]
	if !ok {
		return domain.NullValue, nil
	}
	return s.getAttrLocked(t, name)
}

func (s *Store) getRelAttrLocked(o *Object, name string) (domain.Value, error) {
	if v, ok := o.participants[name]; ok {
		return v, nil
	}
	if v, ok := o.attrs[name]; ok {
		return v, nil
	}
	// Verify the name is declared before returning null.
	if rt, ok := s.cat.RelType(o.typeName); ok {
		for _, a := range rt.Attributes {
			if a.Name == name {
				return domain.NullValue, nil
			}
		}
	} else if it, ok := s.cat.InherRelType(o.typeName); ok {
		for _, a := range it.Attributes {
			if a.Name == name {
				return domain.NullValue, nil
			}
		}
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return domain.Int(0), nil
		}
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
}

// Members returns the member surrogates of a local subclass or
// relationship subclass, following inheritance for subclasses the object's
// type inherits (the interface's Pins seen from the implementation).
func (s *Store) Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.membersLocked(o, name)
}

func (s *Store) membersLocked(o *Object, name string) ([]domain.Surrogate, error) {
	if cls, ok := o.subrels[name]; ok {
		return cls.Members(), nil
	}
	if o.isRel {
		if cls, ok := o.subclasses[name]; ok {
			return cls.Members(), nil
		}
		if rt, ok := s.cat.RelType(o.typeName); ok {
			for _, sc := range rt.Subclasses {
				if sc.Name == name {
					return nil, nil // declared but empty
				}
			}
			for _, sr := range rt.SubRels {
				if sr.Name == name {
					return nil, nil
				}
			}
		}
		return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return nil, err
	}
	if sd, ok := eff.SubclassByName(name); ok {
		if !sd.Inherited() {
			if cls, ok := o.subclasses[name]; ok {
				return cls.Members(), nil
			}
			return nil, nil
		}
		b := s.bindingLocked(o.sur, sd.Via)
		if b == nil {
			return nil, nil // unbound: structure without members
		}
		t, ok := s.objects[b.Transmitter]
		if !ok {
			return nil, nil
		}
		return s.membersLocked(t, name)
	}
	if eff.Type.SubRels != nil {
		for _, sr := range eff.Type.SubRels {
			if sr.Name == name {
				return nil, nil // declared but no members yet
			}
		}
	}
	return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, o.typeName, name)
}

// notifyLocked walks the inheritance fan-out from a changed transmitter,
// updating binding bookkeeping and firing hooks for every binding through
// which the change is visible. Chains re-transmit: if an implementation
// inherits Pins from its interface and a composite inherits Pins from the
// implementation, an interface update notifies both bindings.
func (s *Store) notifyLocked(transmitter domain.Surrogate, member string, visited map[domain.Surrogate]bool) {
	if visited[transmitter] {
		return
	}
	visited[transmitter] = true
	for _, b := range s.byTransmitter[transmitter] {
		if !b.Rel.Inherits(member) {
			continue
		}
		s.bumpBindingLocked(b)
		ev := UpdateEvent{
			Rel:         b.Rel.Name,
			Binding:     b.Obj.sur,
			Transmitter: transmitter,
			Inheritor:   b.Inheritor,
			Member:      member,
			Seq:         s.seq,
		}
		for _, h := range s.hooks {
			h(ev)
		}
		// The inheritor's own inheritors may see the member through it.
		s.notifyLocked(b.Inheritor, member, visited)
	}
}

func (s *Store) bumpBindingLocked(b *Binding) {
	n, _ := domain.AsInt(b.Obj.attrs[AttrTransmitterUpdates])
	b.Obj.attrs[AttrTransmitterUpdates] = domain.Int(n + 1)
	b.Obj.attrs[AttrLastUpdateSeq] = domain.Int(int64(s.seq))
}
