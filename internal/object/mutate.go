package object

import (
	"fmt"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// SetAttr sets an attribute on an object or relationship object.
//
// Write protection (§2): attributes that reach the object through an
// inheritance relationship are read-only here and can only change on the
// transmitter side; attempting to set them returns ErrInheritedAttribute.
//
// Every successful update of an object that is a transmitter bumps the
// bookkeeping attributes of all bindings through which the change is
// visible and fires registered update hooks, transitively along
// inheritance chains.
func (s *Store) SetAttr(sur domain.Surrogate, name string, v domain.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[sur]
	if !ok {
		return noObject(sur)
	}
	if err := s.guardLocked(sur); err != nil {
		return err
	}
	if o.isRel {
		return s.setRelAttrLocked(o, name, v)
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return err
	}
	a, ok := eff.Attr(name)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if a.Inherited() {
		return fmt.Errorf("%w: %s.%s (from %s via %s)", ErrInheritedAttribute, o.typeName, name, a.Source, a.Via)
	}
	if err := a.Domain.Validate(v); err != nil {
		return fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
	}
	if err := s.checkRefValueLocked(a.Domain, v); err != nil {
		return err
	}
	o.setAttr(name, v)
	s.seq++
	o.modSeq = s.seq
	s.notifyLocked(sur, name, map[domain.Surrogate]bool{})
	// A subobject update also changes what the parent's subclass shows:
	// inheritors seeing the parent's subclass are informed as well.
	if o.parent != 0 {
		s.notifyLocked(o.parent, o.parentSub, map[domain.Surrogate]bool{})
	}
	s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: sur, Name: name, Value: v})
	return nil
}

// setRelAttrLocked updates a user-declared attribute of a relationship
// object. Participant roles and the binding bookkeeping attributes are not
// assignable. Declaration lookups use the catalog's precomputed per-type
// indexes rather than scanning the declaration slices.
func (s *Store) setRelAttrLocked(o *Object, name string, v domain.Value) error {
	if _, ok := s.cat.RelType(o.typeName); ok {
		if s.cat.RelRole(o.typeName, name) {
			return fmt.Errorf("%w: participant role %q is fixed at creation", ErrTypeMismatch, name)
		}
	} else if _, ok := s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return fmt.Errorf("%w: %q is maintained by the system", ErrTypeMismatch, name)
		}
	} else {
		return fmt.Errorf("%w: %q", ErrNoSuchType, o.typeName)
	}
	a, ok := s.cat.RelAttr(o.typeName, name)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
	}
	if err := a.Domain.Validate(v); err != nil {
		return fmt.Errorf("%w: %s.%s: %v", ErrTypeMismatch, o.typeName, name, err)
	}
	o.setAttr(name, v)
	s.seq++
	o.modSeq = s.seq
	s.emit(&oplog.Op{Kind: oplog.KindSetAttr, Sur: o.sur, Name: name, Value: v})
	return nil
}

// checkRefValueLocked verifies that object references inside v point to
// live objects of the domain's required type.
func (s *Store) checkRefValueLocked(d *domain.Domain, v domain.Value) error {
	if domain.IsNull(v) {
		return nil
	}
	switch x := v.(type) {
	case domain.Ref:
		ro, ok := s.objects[domain.Surrogate(x)]
		if !ok {
			return fmt.Errorf("%w: reference %s", ErrNoSuchObject, x)
		}
		if want := d.ObjectType(); want != "" && ro.typeName != want {
			return fmt.Errorf("%w: reference %s is %q, want %q", ErrTypeMismatch, x, ro.typeName, want)
		}
	case *domain.Set:
		if d.Kind() == domain.KindSet {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	case *domain.List:
		if d.Kind() == domain.KindList {
			for _, e := range x.Elems() {
				if err := s.checkRefValueLocked(d.Elem(), e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GetAttr reads an attribute with the paper's resolution rule: own
// attributes come from the object itself; inherited attributes are read
// through the binding from the live transmitter (view semantics — never a
// copy), or read as null while unbound (type-level inheritance only).
//
// The hot path is lock-free: a memoized route valid against the current
// structure epoch names the object whose own attribute map holds the
// value, and that map is read live — so transmitter updates are visible
// immediately after a hit, while any structural change forces the locked
// slow path via the epoch check.
func (s *Store) GetAttr(sur domain.Surrogate, name string) (domain.Value, error) {
	if r, ok := s.loadAttrRoute(sur, name); ok {
		s.hits.Add(1)
		if r.owner == nil {
			return domain.NullValue, nil
		}
		if v, ok := r.owner.attrMap()[name]; ok {
			return v, nil
		}
		return domain.NullValue, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.getAttrLocked(o, name)
}

func (s *Store) getAttrLocked(o *Object, name string) (domain.Value, error) {
	if name == "Surrogate" {
		return domain.Ref(o.sur), nil
	}
	if o.isRel {
		return s.getRelAttrLocked(o, name)
	}
	v, _, err := s.resolveAttrLocked(o, name)
	return v, err
}

// resolveAttrLocked walks the inheritance chain iteratively, memoizing the
// route taken: either the chain ends at the object owning the attribute
// (the value is read from its live attribute map) or it ends unbound (the
// read is null until a Bind — which bumps the epoch — changes that).
// Unknown attributes are not memoized and keep their error semantics.
func (s *Store) resolveAttrLocked(o *Object, name string) (domain.Value, *route, error) {
	chain := []domain.Surrogate{o.sur}
	cur := o
	for {
		eff, err := s.effectiveLocked(cur)
		if err != nil {
			return nil, nil, err
		}
		a, ok := eff.Attr(name)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, cur.typeName, name)
		}
		if !a.Inherited() {
			r := s.memoAttr(o.sur, name, cur, chain)
			if v, ok := cur.attrMap()[name]; ok {
				return v, r, nil
			}
			return domain.NullValue, r, nil
		}
		b := s.bindingLocked(cur.sur, a.Via)
		if b == nil {
			r := s.memoAttr(o.sur, name, nil, chain)
			return domain.NullValue, r, nil
		}
		t, ok := s.objects[b.Transmitter]
		if !ok {
			r := s.memoAttr(o.sur, name, nil, chain)
			return domain.NullValue, r, nil
		}
		chain = append(chain, t.sur)
		cur = t
	}
}

func (s *Store) getRelAttrLocked(o *Object, name string) (domain.Value, error) {
	if v, ok := o.participants[name]; ok {
		return v, nil
	}
	if v, ok := o.attrMap()[name]; ok {
		return v, nil
	}
	// Verify the name is declared before returning null (O(1) via the
	// catalog's precomputed attribute index).
	if _, ok := s.cat.RelAttr(o.typeName, name); ok {
		return domain.NullValue, nil
	}
	if _, ok := s.cat.InherRelType(o.typeName); ok {
		switch name {
		case AttrTransmitterUpdates, AttrLastUpdateSeq, AttrAcknowledgedSeq:
			return domain.Int(0), nil
		}
	}
	return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttribute, o.typeName, name)
}

// Members returns the member surrogates of a local subclass or
// relationship subclass, following inheritance for subclasses the object's
// type inherits (the interface's Pins seen from the implementation).
//
// Like GetAttr, the hot path is lock-free: a valid members route points at
// the owner's materialized class, whose membership slice is published
// atomically. Routes exist only for names that resolve as (possibly
// inherited) subclasses; sub-relationship and relationship-object reads
// always take the locked slow path, so the route can never shadow them.
func (s *Store) Members(sur domain.Surrogate, name string) ([]domain.Surrogate, error) {
	if r, ok := s.loadMembersRoute(sur, name); ok {
		s.hits.Add(1)
		if r.cls == nil {
			return nil, nil
		}
		return r.cls.Members(), nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.membersLocked(o, name)
}

func (s *Store) membersLocked(o *Object, name string) ([]domain.Surrogate, error) {
	if cls, ok := o.subrels[name]; ok {
		return cls.Members(), nil
	}
	if o.isRel {
		if cls, ok := o.subclasses[name]; ok {
			return cls.Members(), nil
		}
		if s.cat.RelMemberName(o.typeName, name) {
			return nil, nil // declared but empty
		}
		return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, o.typeName, name)
	}
	r, err := s.resolveMembersLocked(o, name)
	if err != nil {
		return nil, err
	}
	if r == nil || r.cls == nil {
		return nil, nil
	}
	return r.cls.Members(), nil
}

// resolveMembersLocked walks the inheritance chain for a subclass name,
// memoizing the route to the owner's materialized class. A nil route (with
// nil error) marks a declared sub-relationship with no members yet — not
// memoized, because materializing it does not bump the epoch.
func (s *Store) resolveMembersLocked(o *Object, name string) (*route, error) {
	chain := []domain.Surrogate{o.sur}
	cur := o
	for {
		eff, err := s.effectiveLocked(cur)
		if err != nil {
			return nil, err
		}
		sd, ok := eff.SubclassByName(name)
		if !ok {
			for _, sr := range eff.Type.SubRels {
				if sr.Name == name {
					return nil, nil // declared but no members yet
				}
			}
			return nil, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, cur.typeName, name)
		}
		if !sd.Inherited() {
			// cur.subclasses[name] may be nil (not materialized yet);
			// materialization bumps the epoch, invalidating this route.
			return s.memoMembers(o.sur, name, cur.subclasses[name], chain), nil
		}
		b := s.bindingLocked(cur.sur, sd.Via)
		if b == nil {
			return s.memoMembers(o.sur, name, nil, chain), nil // unbound: structure without members
		}
		t, ok := s.objects[b.Transmitter]
		if !ok {
			return s.memoMembers(o.sur, name, nil, chain), nil
		}
		chain = append(chain, t.sur)
		cur = t
	}
}

// notifyLocked walks the inheritance fan-out from a changed transmitter,
// updating binding bookkeeping and firing hooks for every binding through
// which the change is visible. Chains re-transmit: if an implementation
// inherits Pins from its interface and a composite inherits Pins from the
// implementation, an interface update notifies both bindings.
func (s *Store) notifyLocked(transmitter domain.Surrogate, member string, visited map[domain.Surrogate]bool) {
	if visited[transmitter] {
		return
	}
	visited[transmitter] = true
	for _, b := range s.byTransmitter[transmitter] {
		if !b.Rel.Inherits(member) {
			continue
		}
		s.bumpBindingLocked(b)
		ev := UpdateEvent{
			Rel:         b.Rel.Name,
			Binding:     b.Obj.sur,
			Transmitter: transmitter,
			Inheritor:   b.Inheritor,
			Member:      member,
			Seq:         s.seq,
		}
		for _, h := range s.hooks {
			h(ev)
		}
		// The inheritor's own inheritors may see the member through it.
		s.notifyLocked(b.Inheritor, member, visited)
	}
}

func (s *Store) bumpBindingLocked(b *Binding) {
	old := b.Obj.attrMap()
	n, _ := domain.AsInt(old[AttrTransmitterUpdates])
	m := make(map[string]domain.Value, len(old)+2)
	for k, v := range old {
		m[k] = v
	}
	m[AttrTransmitterUpdates] = domain.Int(n + 1)
	m[AttrLastUpdateSeq] = domain.Int(int64(s.seq))
	b.Obj.initAttrs(m)
}
