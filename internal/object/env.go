package object

import (
	"cadcam/internal/domain"
	"cadcam/internal/expr"
)

// lockedEnv implements expr.Env for one object, assuming a shard lock is
// already held (any shard lock freezes topology store-wide, and attribute
// slots publish atomically, so chain walks may cross shards). It backs
// constraint checking inside store operations.
type lockedEnv struct {
	s *Store
	o *Object
}

func (e *lockedEnv) Lookup(name string) (domain.Value, bool) {
	v, err := e.s.getAttrLocked(e.o, name)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (e *lockedEnv) Collection(name string) ([]domain.Value, bool) {
	return e.s.collectionLocked(e.o, name)
}

func (e *lockedEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	o, ok := e.s.obj(domain.Surrogate(ref))
	if !ok {
		return nil, false
	}
	v, err := e.s.getAttrLocked(o, attr)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (e *lockedEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	o, ok := e.s.obj(domain.Surrogate(ref))
	if !ok {
		return nil, false
	}
	return e.s.collectionLocked(o, name)
}

// collectionLocked resolves a name as a collection on an object: a local
// subclass or sub-relationship (following inheritance), a set-of
// participant role, or a set/list-valued attribute.
func (s *Store) collectionLocked(o *Object, name string) ([]domain.Value, bool) {
	if o.isRel {
		if v, ok := o.participants[name]; ok {
			if set, isSet := v.(*domain.Set); isSet {
				return set.Elems(), true
			}
			return []domain.Value{v}, true
		}
	}
	if members, err := s.membersLocked(o, name); err == nil {
		out := make([]domain.Value, len(members))
		for i, m := range members {
			out[i] = domain.Ref(m)
		}
		return out, true
	}
	if v, err := s.getAttrLocked(o, name); err == nil {
		switch x := v.(type) {
		case *domain.Set:
			return x.Elems(), true
		case *domain.List:
			return x.Elems(), true
		}
	}
	return nil, false
}

// storeEnv is the exported Env: every call takes the object's shard read
// lock (which freezes topology store-wide, see shard), so it must not be
// used from inside store operations (use lockedEnv there). Attribute
// values read through other shards are loaded atomically per value; the
// view is not a store-wide snapshot.
type storeEnv struct {
	s   *Store
	sur domain.Surrogate
}

// Env returns an expr.Env evaluating names against the given object:
// attributes (own and inherited), local subclasses, sub-relationships and
// participant roles. Version-selection queries and user-level constraint
// checks use it.
func (s *Store) Env(sur domain.Surrogate) expr.Env {
	return &storeEnv{s: s, sur: sur}
}

func (e *storeEnv) Lookup(name string) (domain.Value, bool) {
	sh := e.s.shardOf(e.sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[e.sur]
	if !ok {
		return nil, false
	}
	return (&lockedEnv{s: e.s, o: o}).Lookup(name)
}

func (e *storeEnv) Collection(name string) ([]domain.Value, bool) {
	sh := e.s.shardOf(e.sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[e.sur]
	if !ok {
		return nil, false
	}
	return (&lockedEnv{s: e.s, o: o}).Collection(name)
}

func (e *storeEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	sh := e.s.shardOf(e.sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[e.sur]
	if !ok {
		return nil, false
	}
	return (&lockedEnv{s: e.s, o: o}).AttrOf(ref, attr)
}

func (e *storeEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	sh := e.s.shardOf(e.sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[e.sur]
	if !ok {
		return nil, false
	}
	return (&lockedEnv{s: e.s, o: o}).CollectionOf(ref, name)
}

// ClassEnv returns an expr.Env over the database-level classes, for
// queries that scan class extents (e.g. top-down version selection).
func (s *Store) ClassEnv() expr.Env { return &classEnv{s: s} }

type classEnv struct{ s *Store }

func (e *classEnv) Lookup(string) (domain.Value, bool) { return nil, false }

func (e *classEnv) Collection(name string) ([]domain.Value, bool) {
	stripe := e.s.stripeOf(name)
	stripe.mu.RLock()
	cls, ok := stripe.classes[name]
	stripe.mu.RUnlock()
	if !ok {
		return nil, false
	}
	items := cls.items()
	out := make([]domain.Value, len(items))
	for i, m := range items {
		out[i] = domain.Ref(m)
	}
	return out, true
}

func (e *classEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	sh := e.s.shardOf(domain.Surrogate(ref))
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[domain.Surrogate(ref)]
	if !ok {
		return nil, false
	}
	v, err := e.s.getAttrLocked(o, attr)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (e *classEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	sh := e.s.shardOf(domain.Surrogate(ref))
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[domain.Surrogate(ref)]
	if !ok {
		return nil, false
	}
	return e.s.collectionLocked(o, name)
}
