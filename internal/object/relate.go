package object

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
	"cadcam/internal/oplog"
	"cadcam/internal/schema"
)

// Participants carries the role assignments for a new relationship
// object: role name -> Ref (single roles) or *Set of Refs (set-of roles).
type Participants map[string]domain.Value

// Relate creates a top-level relationship object of the named type.
// Every declared role must be assigned and type-correct; the relationship
// type's constraints are checked immediately. Creation inserts into the
// new object's shard and the participant index of every referenced
// object's shard, so it runs store-wide exclusive.
func (s *Store) Relate(relType string, parts Participants) (domain.Surrogate, error) {
	s.lockAll()
	defer s.unlockAll()
	sur, err := s.relateLocked(relType, parts, 0, "")
	if err != nil {
		return 0, err
	}
	seq := s.seq.Add(1)
	if o, ok := s.obj(sur); ok {
		s.publishObj(o, seq)
	}
	s.commitClassHist(seq)
	s.emit(&oplog.Op{Kind: oplog.KindRelate, Name: relType, Parts: parts, Out: sur, Seq: seq})
	return sur, nil
}

// RelateIn creates a relationship object in a local relationship subclass
// of a complex object ("types-of-subrels:"). The subclass's where
// restriction (§3) is checked with the new relationship object in scope;
// on violation the relationship is not created.
func (s *Store) RelateIn(owner domain.Surrogate, subrel string, parts Participants) (domain.Surrogate, error) {
	s.lockAll()
	dispatch, sur, err := func() (bool, domain.Surrogate, error) {
		oo, ok := s.obj(owner)
		if !ok {
			return false, 0, noObject(owner)
		}
		if err := s.guardLocked(owner); err != nil {
			return false, 0, err
		}
		sr, err := s.subRelDefLocked(oo, subrel)
		if err != nil {
			return false, 0, err
		}
		sur, err := s.relateLocked(sr.RelType, parts, owner, subrel)
		if err != nil {
			return false, 0, err
		}
		if sr.Where != nil {
			bound := s.whereEnvLocked(oo, sr, sur)
			holds, werr := expr.EvalBool(sr.Where.E, bound)
			if werr == nil && !holds {
				werr = fmt.Errorf("%w: %s", ErrConstraint, sr.Where.Src)
			}
			if werr != nil {
				if ro, ok := s.obj(sur); ok {
					s.deleteRelLocked(ro)
				}
				// The add and remove net to no membership change.
				s.abortClassTouches()
				return false, 0, werr
			}
		}
		seq := s.seq.Add(1)
		if ro, ok := s.obj(sur); ok {
			s.publishObj(ro, seq)
		}
		s.commitClassHist(seq)
		n := notifier{s: s, seq: seq}
		n.notify(owner, subrel)
		s.emit(&oplog.Op{Kind: oplog.KindRelateIn, Sur: owner, Name: subrel, Parts: parts, Out: sur, Seq: seq})
		return n.queue(), sur, nil
	}()
	s.unlockAll()
	if dispatch {
		s.dispatchEvents()
	}
	return sur, err
}

func (s *Store) subRelDefLocked(o *Object, name string) (*schema.SubRel, error) {
	if o.isRel {
		if rt, ok := s.cat.RelType(o.typeName); ok {
			for i := range rt.SubRels {
				if rt.SubRels[i].Name == name {
					return &rt.SubRels[i], nil
				}
			}
		}
		return nil, fmt.Errorf("%w: %s has no sub-relationship %q", ErrNoSuchClass, o.typeName, name)
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return nil, err
	}
	sr := eff.Type.SubRels
	for i := range sr {
		if sr[i].Name == name {
			return &sr[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %s has no sub-relationship %q", ErrNoSuchClass, o.typeName, name)
}

// relateLocked creates the relationship object and its index entries.
// Callers hold all shard locks and assign the operation's sequence number
// after it returns (one sequence per public operation).
func (s *Store) relateLocked(relType string, parts Participants, owner domain.Surrogate, subrel string) (domain.Surrogate, error) {
	rt, ok := s.cat.RelType(relType)
	if !ok {
		return 0, fmt.Errorf("%w: relationship type %q", ErrNoSuchType, relType)
	}
	assigned := make(map[string]domain.Value, len(rt.Participants))
	for _, p := range rt.Participants {
		v, ok := parts[p.Name]
		if !ok {
			return 0, fmt.Errorf("%w: role %q of %s not assigned", ErrTypeMismatch, p.Name, relType)
		}
		if err := s.checkParticipantLocked(relType, p, v); err != nil {
			return 0, err
		}
		assigned[p.Name] = v
	}
	for name := range parts {
		if _, ok := assigned[name]; !ok {
			return 0, fmt.Errorf("%w: %s has no role %q", ErrTypeMismatch, relType, name)
		}
	}
	sur := domain.Surrogate(s.nextSur.Add(1))
	o := &Object{
		sur:          sur,
		typeName:     relType,
		isRel:        true,
		participants: assigned,
	}
	o.initClasses()
	o.initAttrs(nil, 0)
	s.shardOf(sur).objects[sur] = o
	s.markDirty(sur)
	for _, v := range assigned {
		s.indexParticipantLocked(o.sur, v)
	}
	if owner != 0 {
		oo, _ := s.obj(owner)
		cls, ok := oo.relMap()[subrel]
		if !ok {
			cls = newClass(subrel, relType)
			oo.putSubrel(subrel, cls)
		}
		s.classAdd(cls, o.sur)
		o.parent = owner
		o.parentSub = subrel
	}
	return o.sur, nil
}

func (s *Store) checkParticipantLocked(relType string, p schema.Participant, v domain.Value) error {
	checkOne := func(v domain.Value) error {
		ref, ok := v.(domain.Ref)
		if !ok {
			return fmt.Errorf("%w: role %q of %s needs an object reference, got %s",
				ErrTypeMismatch, p.Name, relType, v)
		}
		ro, ok := s.obj(domain.Surrogate(ref))
		if !ok {
			return fmt.Errorf("%w: role %q references %s", ErrNoSuchObject, p.Name, ref)
		}
		if p.Type != "" && ro.typeName != p.Type {
			return fmt.Errorf("%w: role %q of %s needs %q, got %q",
				ErrTypeMismatch, p.Name, relType, p.Type, ro.typeName)
		}
		return nil
	}
	if p.SetOf {
		set, ok := v.(*domain.Set)
		if !ok {
			return fmt.Errorf("%w: role %q of %s is set-of, got %s", ErrTypeMismatch, p.Name, relType, v)
		}
		for _, e := range set.Elems() {
			if err := checkOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	return checkOne(v)
}

// indexParticipantLocked records the reverse edge participant -> rel
// object in the participant's shard, used for cascading deletes of
// relationships whose participants disappear. Callers hold all shard
// write locks.
func (s *Store) indexParticipantLocked(rel domain.Surrogate, v domain.Value) {
	switch x := v.(type) {
	case domain.Ref:
		sur := domain.Surrogate(x)
		sh := s.shardOf(sur)
		m := sh.relsByParticipant[sur]
		if m == nil {
			m = make(map[domain.Surrogate]bool)
			sh.relsByParticipant[sur] = m
		}
		m[rel] = true
	case *domain.Set:
		for _, e := range x.Elems() {
			s.indexParticipantLocked(rel, e)
		}
	}
}

// Participant reads a role of a relationship object.
func (s *Store) Participant(rel domain.Surrogate, role string) (domain.Value, error) {
	sh := s.shardOf(rel)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[rel]
	if !ok {
		return nil, noObject(rel)
	}
	if !o.isRel {
		return nil, fmt.Errorf("%w: %s is not a relationship object", ErrTypeMismatch, rel)
	}
	v, ok := o.participants[role]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no role %q", ErrNoSuchAttribute, o.typeName, role)
	}
	return v, nil
}

// RelationshipsOf returns the relationship objects that reference sur as
// a participant, sorted by surrogate.
func (s *Store) RelationshipsOf(sur domain.Surrogate) []domain.Surrogate {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.relsByParticipant[sur]
	out := make([]domain.Surrogate, 0, len(m))
	for rel := range m {
		out = append(out, rel)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParticipantsOf returns the object surrogates a relationship object
// relates (flattening set-of roles), sorted by surrogate.
func (s *Store) ParticipantsOf(rel domain.Surrogate) []domain.Surrogate {
	sh := s.shardOf(rel)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[rel]
	if !ok || !o.isRel {
		return nil
	}
	var out []domain.Surrogate
	var collect func(v domain.Value)
	collect = func(v domain.Value) {
		switch x := v.(type) {
		case domain.Ref:
			out = append(out, domain.Surrogate(x))
		case *domain.Set:
			for _, e := range x.Elems() {
				collect(e)
			}
		}
	}
	for _, v := range o.participants {
		collect(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewRelSubobject creates a subobject inside a relationship object's local
// subclass — the bolt and nut living inside a ScrewingType relationship
// (§5). Its journal record carries the new surrogate and the operation's
// sequence number.
func (s *Store) NewRelSubobject(rel domain.Surrogate, subclass string) (domain.Surrogate, error) {
	s.lockAll()
	defer s.unlockAll()
	ro, ok := s.obj(rel)
	if !ok {
		return 0, noObject(rel)
	}
	if err := s.guardLocked(rel); err != nil {
		return 0, err
	}
	if !ro.isRel {
		return 0, fmt.Errorf("%w: %s is not a relationship object", ErrTypeMismatch, rel)
	}
	rt, ok := s.cat.RelType(ro.typeName)
	if !ok {
		return 0, fmt.Errorf("%w: %q has no subclasses", ErrNoSuchType, ro.typeName)
	}
	for _, sc := range rt.Subclasses {
		if sc.Name != subclass {
			continue
		}
		mt, ok := s.cat.ObjectType(sc.ElemType)
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchType, sc.ElemType)
		}
		o := s.newObjectLocked(mt, false)
		o.parent = rel
		o.parentSub = subclass
		cls, ok := ro.subMap()[subclass]
		if !ok {
			cls = newClass(subclass, sc.ElemType)
			ro.putSub(subclass, cls)
		}
		s.classAdd(cls, o.sur)
		seq := s.seq.Add(1)
		s.publishObj(o, seq)
		s.commitClassHist(seq)
		s.emit(&oplog.Op{Kind: oplog.KindNewRelSubobject, Sur: rel, Name: subclass, Out: o.sur, Seq: seq})
		return o.sur, nil
	}
	return 0, fmt.Errorf("%w: %s has no subclass %q", ErrNoSuchClass, ro.typeName, subclass)
}

// whereEnvLocked builds the evaluation scope for a subrel where
// restriction: names resolve first against the relationship object
// (participant roles like Pin1 or Bores, its attributes and local
// subclasses like Bolt/Nut), then against the owning complex object
// (Pins, SubGates, Girders). The relationship object is additionally
// bound under the subclass name and the relationship type name, so both
// "Pin1 in Pins" and "Wires.Pin1 in Pins" read naturally.
func (s *Store) whereEnvLocked(owner *Object, sr *schema.SubRel, rel domain.Surrogate) expr.Env {
	ro, _ := s.obj(rel)
	var env expr.Env = &overlayEnv{
		first:  &lockedEnv{s: s, o: ro},
		second: &lockedEnv{s: s, o: owner},
	}
	env = bindName(env, sr.Name, domain.Ref(rel))
	env = bindName(env, sr.RelType, domain.Ref(rel))
	return env
}

// overlayEnv resolves against first, falling back to second.
type overlayEnv struct {
	first, second expr.Env
}

func (o *overlayEnv) Lookup(name string) (domain.Value, bool) {
	if v, ok := o.first.Lookup(name); ok {
		return v, true
	}
	return o.second.Lookup(name)
}

func (o *overlayEnv) Collection(name string) ([]domain.Value, bool) {
	if c, ok := o.first.Collection(name); ok {
		return c, true
	}
	return o.second.Collection(name)
}

func (o *overlayEnv) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	if v, ok := o.first.AttrOf(ref, attr); ok {
		return v, true
	}
	return o.second.AttrOf(ref, attr)
}

func (o *overlayEnv) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	if c, ok := o.first.CollectionOf(ref, name); ok {
		return c, true
	}
	return o.second.CollectionOf(ref, name)
}

// bindName overlays a single name binding on an Env.
type nameBinding struct {
	base expr.Env
	name string
	val  domain.Value
}

func bindName(base expr.Env, name string, v domain.Value) expr.Env {
	return &nameBinding{base: base, name: name, val: v}
}

func (b *nameBinding) Lookup(name string) (domain.Value, bool) {
	if name == b.name {
		return b.val, true
	}
	return b.base.Lookup(name)
}

func (b *nameBinding) Collection(name string) ([]domain.Value, bool) {
	return b.base.Collection(name)
}

func (b *nameBinding) AttrOf(ref domain.Ref, attr string) (domain.Value, bool) {
	return b.base.AttrOf(ref, attr)
}

func (b *nameBinding) CollectionOf(ref domain.Ref, name string) ([]domain.Value, bool) {
	return b.base.CollectionOf(ref, name)
}
