package object

import (
	"errors"
	"testing"

	"cadcam/internal/domain"
	"cadcam/internal/paperschema"
)

// buildInterface creates a GateInterface with nIn inputs and nOut outputs.
// Faithful to §4.2, the pins live on a GateInterface_I hierarchy root and
// the returned GateInterface inherits them through AllOf_GateInterface_I.
func buildInterface(t *testing.T, s *Store, length, width int64, nIn, nOut int) domain.Surrogate {
	t.Helper()
	root := mustSur(t)(s.NewObject(paperschema.TypeGateInterfaceI, ""))
	id := int64(1)
	for i := 0; i < nIn; i++ {
		addPin(t, s, root, "IN", id)
		id++
	}
	for i := 0; i < nOut; i++ {
		addPin(t, s, root, "OUT", id)
		id++
	}
	iface := mustSur(t)(s.NewObject(paperschema.TypeGateInterface, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterfaceI, iface, root); err != nil {
		t.Fatal(err)
	}
	set(t, s, iface, "Length", domain.Int(length))
	set(t, s, iface, "Width", domain.Int(width))
	return iface
}

// pinOwner resolves the hierarchy root that owns an interface's pins.
func pinOwner(t *testing.T, s *Store, iface domain.Surrogate) domain.Surrogate {
	t.Helper()
	root := s.TransmitterOf(iface, paperschema.RelAllOfGateInterfaceI)
	if root == 0 {
		t.Fatal("interface has no hierarchy root")
	}
	return root
}

// buildFlipFlop reproduces Figure 1: a flip-flop implementation whose two
// NAND subgates are components (inheritors of a NAND interface), cross-
// coupled by wires that also connect to the flip-flop's external pins.
func buildFlipFlop(t *testing.T, s *Store) (ff, ffIface, nandIface domain.Surrogate, subs []domain.Surrogate) {
	t.Helper()
	// Interface of the NAND component: 2 in, 1 out.
	nandIface = buildInterface(t, s, 4, 2, 2, 1)
	// Interface of the flip-flop itself: 2 in (S,R), 2 out (Q, notQ).
	ffIface = buildInterface(t, s, 10, 6, 2, 2)

	ff = mustSur(t)(s.NewObject(paperschema.TypeGateImplementation, ""))
	if _, err := s.Bind(paperschema.RelAllOfGateInterface, ff, ffIface); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sg := mustSur(t)(s.NewSubobject(ff, "SubGates"))
		if _, err := s.Bind(paperschema.RelAllOfGateInterface, sg, nandIface); err != nil {
			t.Fatal(err)
		}
		set(t, s, sg, "GateLocation", domain.NewRec("X", domain.Int(int64(i*5)), "Y", domain.Int(0)))
		subs = append(subs, sg)
	}
	return ff, ffIface, nandIface, subs
}

func pinsOf(t *testing.T, s *Store, owner domain.Surrogate) []domain.Surrogate {
	t.Helper()
	pins, err := s.Members(owner, "Pins")
	if err != nil {
		t.Fatal(err)
	}
	return pins
}

func TestFlipFlopConstruction(t *testing.T) {
	// Experiment E1 (Figure 1).
	s := gateStore(t)
	ff, ffIface, nandIface, subs := buildFlipFlop(t, s)

	// The flip-flop sees its interface data by value inheritance.
	if v := get(t, s, ff, "Length"); !v.Equal(domain.Int(10)) {
		t.Errorf("ff.Length = %s", v)
	}
	ffPins := pinsOf(t, s, ff)
	if len(ffPins) != 4 {
		t.Fatalf("ff pins = %d, want 4 (inherited from its interface)", len(ffPins))
	}
	// Both subgates see the NAND interface pins; the *same* pins, since
	// inheritance grants a view, not a copy.
	sg0Pins := pinsOf(t, s, subs[0])
	sg1Pins := pinsOf(t, s, subs[1])
	if len(sg0Pins) != 3 || len(sg1Pins) != 3 {
		t.Fatalf("subgate pins = %d/%d, want 3/3", len(sg0Pins), len(sg1Pins))
	}
	if sg0Pins[0] != sg1Pins[0] {
		t.Error("components sharing a transmitter must see the same pin objects")
	}
	ifacePins := pinsOf(t, s, nandIface)
	if sg0Pins[0] != ifacePins[0] {
		t.Error("component pins must be the interface's own pins")
	}

	// Wire the gates: external S -> gate0 in, cross-couple outputs.
	wire := func(a, b domain.Surrogate) domain.Surrogate {
		t.Helper()
		w, err := s.RelateIn(ff, "Wires", Participants{
			"Pin1": domain.Ref(a),
			"Pin2": domain.Ref(b),
		})
		if err != nil {
			t.Fatalf("RelateIn: %v", err)
		}
		return w
	}
	w1 := wire(ffPins[0], sg0Pins[0]) // S -> NAND.in1
	wire(ffPins[1], sg1Pins[0])       // R -> NAND.in1 (shared interface pin)
	wire(sg0Pins[2], ffPins[2])       // Q out
	wire(sg1Pins[2], ffPins[3])       // notQ out

	wires, err := s.Members(ff, "Wires")
	if err != nil || len(wires) != 4 {
		t.Fatalf("wires = %v err=%v", wires, err)
	}
	// Wire participants are readable.
	if v, err := s.Participant(w1, "Pin1"); err != nil || !v.Equal(domain.Ref(ffPins[0])) {
		t.Errorf("wire Pin1 = %v, %v", v, err)
	}
	// Wires carry geometry.
	point := func(x, y int64) domain.Value {
		return domain.NewRec("X", domain.Int(x), "Y", domain.Int(y))
	}
	set(t, s, w1, "Corners", domain.NewList(point(0, 0), point(3, 0)))

	// A wire to a pin of an unrelated gate violates the where clause.
	stray := buildInterface(t, s, 2, 2, 2, 1)
	strayPins := pinsOf(t, s, stray)
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]),
		"Pin2": domain.Ref(strayPins[0]),
	}); !errors.Is(err, ErrConstraint) {
		t.Errorf("stray wire should violate the where restriction, got %v", err)
	}
	// The failed wire must not linger.
	wires, _ = s.Members(ff, "Wires")
	if len(wires) != 4 {
		t.Errorf("failed wire leaked into the subclass: %v", wires)
	}

	// Constraints hold for the whole flip-flop.
	if v := s.CheckAll(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}

	// Function matrix (truth table) on the implementation.
	set(t, s, ff, "Function", domain.NewMatrix(2, 2,
		domain.Bool(false), domain.Bool(true),
		domain.Bool(true), domain.Bool(false)))

	// Deleting the flip-flop cascades subgates and wires but leaves the
	// interfaces (independent design objects) alone.
	if err := s.Delete(ff); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(ffIface) || !s.Exists(nandIface) {
		t.Error("interfaces must survive the composite's deletion")
	}
	for _, sg := range subs {
		if s.Exists(sg) {
			t.Error("subgates must die with the composite")
		}
	}
	// The interfaces lost their inheritors; no dangling bindings remain.
	if bs := s.BindingsOfTransmitter(nandIface); len(bs) != 0 {
		t.Errorf("dangling bindings: %v", bs)
	}
}

func TestWiresAcrossNestingLevels(t *testing.T) {
	// Figure 1's point: relationships may link subobjects of different
	// nesting levels (gate pins to subgate pins).
	s := gateStore(t)
	ff, _, _, subs := buildFlipFlop(t, s)
	ffPins := pinsOf(t, s, ff)
	sgPins := pinsOf(t, s, subs[0])
	// gate pin (level 1, via interface) to subgate pin (level 2, via
	// component interface).
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]),
		"Pin2": domain.Ref(sgPins[1]),
	}); err != nil {
		t.Fatalf("cross-level wire: %v", err)
	}
}

func TestRelateValidation(t *testing.T) {
	s := gateStore(t)
	ff, _, _, _ := buildFlipFlop(t, s)
	ffPins := pinsOf(t, s, ff)
	// Missing role.
	if _, err := s.RelateIn(ff, "Wires", Participants{"Pin1": domain.Ref(ffPins[0])}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("missing role: %v", err)
	}
	// Unknown role.
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]), "Pin2": domain.Ref(ffPins[1]), "Pin3": domain.Ref(ffPins[2]),
	}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("unknown role: %v", err)
	}
	// Wrong participant type.
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]), "Pin2": domain.Ref(ff),
	}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("wrong type: %v", err)
	}
	// Dangling participant.
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]), "Pin2": domain.Ref(9999),
	}); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("dangling: %v", err)
	}
	// Non-ref value.
	if _, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]), "Pin2": domain.Int(3),
	}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("non-ref: %v", err)
	}
	// Unknown subrel and unknown rel type.
	if _, err := s.RelateIn(ff, "Ghost", nil); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("unknown subrel: %v", err)
	}
	if _, err := s.Relate("Ghost", nil); !errors.Is(err, ErrNoSuchType) {
		t.Errorf("unknown rel type: %v", err)
	}
}

func TestDeletingParticipantDeletesWire(t *testing.T) {
	s := gateStore(t)
	ff, _, nandIface, _ := buildFlipFlop(t, s)
	ffPins := pinsOf(t, s, ff)
	ifacePins := pinsOf(t, s, nandIface)
	w, err := s.RelateIn(ff, "Wires", Participants{
		"Pin1": domain.Ref(ffPins[0]),
		"Pin2": domain.Ref(ifacePins[0]),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the pin kills the wire that references it.
	if err := s.Delete(ifacePins[0]); err != nil {
		t.Fatal(err)
	}
	if s.Exists(w) {
		t.Error("wire should be deleted with its participant")
	}
	members, _ := s.Members(ff, "Wires")
	if len(members) != 0 {
		t.Errorf("wires = %v", members)
	}
}
