package object

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// Errors of the index layer.
var (
	// ErrNoSuchIndex reports an index name that is not defined.
	ErrNoSuchIndex = errors.New("object: no such index")
	// ErrIndexExists reports a duplicate index name.
	ErrIndexExists = errors.New("object: index already exists")
)

// ---- keys ----

// ikey kinds. Numbers collapse Int and Rl into one numeric key space so the
// index reproduces domain.Compare's cross-numeric equality (Int(3) = Rl(3)).
const (
	ikNum  = 1
	ikStr  = 2
	ikSym  = 3
	ikBool = 4
)

// ikey is the normalized index key of a scalar attribute value. Keys of
// different kinds never compare (mirroring domain.Compare, which errors on
// mixed kinds — such rows never satisfy the predicate either way); within a
// kind, ordering matches domain.Compare.
type ikey struct {
	kind uint8
	num  float64
	str  string
}

// indexKey normalizes a value into its index key. Null, structured values
// (sets, lists, records, matrices), references and NaN reals are not
// indexed: the probe reports them absent, exactly as a comparison predicate
// rejects them.
func indexKey(v domain.Value) (ikey, bool) {
	switch x := v.(type) {
	case domain.Int:
		return ikey{kind: ikNum, num: float64(x)}, true
	case domain.Rl:
		if math.IsNaN(float64(x)) {
			return ikey{}, false // NaN breaks map-key equality; keep it out
		}
		return ikey{kind: ikNum, num: float64(x)}, true
	case domain.Str:
		return ikey{kind: ikStr, str: string(x)}, true
	case domain.Sym:
		return ikey{kind: ikSym, str: string(x)}, true
	case domain.Bool:
		if x {
			return ikey{kind: ikBool, num: 1}, true
		}
		return ikey{kind: ikBool, num: 0}, true
	}
	return ikey{}, false
}

// inRange reports whether k lies within [lo, hi] (either bound may be
// absent). Bounds are always treated inclusively: the probe returns a
// superset of the matching rows and the planner re-applies the full
// predicate, so widening strict bounds costs a few candidates but can never
// lose a row (large Int64 keys collapse onto neighbouring float64 values;
// a strict float comparison could then exclude a true match).
func (k ikey) inRange(lo, hi *ikey) bool {
	if lo != nil {
		if k.kind != lo.kind || k.less(*lo) {
			return false
		}
	}
	if hi != nil {
		if k.kind != hi.kind || hi.less(k) {
			return false
		}
	}
	return true
}

// less orders keys of the same kind like domain.Compare.
func (k ikey) less(o ikey) bool {
	switch k.kind {
	case ikStr, ikSym:
		return k.str < o.str
	default:
		return k.num < o.num
	}
}

// ---- postings ----

// postNode is one version interval of an index posting: object sur carried
// key k from sequence added until sequence removed (0 = still live). Like
// ibChain/tbChain nodes, superseded intervals stay linked while a pinned
// snapshot could read them and are trimmed by SweepVersions. All access is
// under the owning idxPart's mutex.
type postNode struct {
	added   uint64
	removed uint64
	prev    *postNode
}

// idxPart is one partition of an index's postings, aligned with the store's
// surrogate-hashed shards so concurrent writers on different shards
// maintain disjoint partitions. buckets maps key -> sur -> newest interval;
// cur maps sur -> its live key (the O(1) handle for replacing a posting on
// overwrite).
type idxPart struct {
	mu      sync.Mutex
	buckets map[ikey]map[domain.Surrogate]*postNode
	cur     map[domain.Surrogate]ikey
	_       [64]byte // keep neighbouring partitions off one cache line
}

// attrIndex is a secondary index over one attribute of one database-level
// class, inherited values included. createdSeq/droppedSeq bound the
// sequence window in which the index was maintained: a snapshot may only be
// served by an index that covers its pin sequence.
type attrIndex struct {
	name       string
	className  string
	attrName   string
	cls        *Class
	createdSeq uint64
	// droppedSeq is atomic: DropIndex stamps it under the all-shard lock,
	// but probes read it holding only a partition mutex.
	droppedSeq atomic.Uint64
	parts      []idxPart
	// retained counts superseded interval nodes kept for pinned snapshots;
	// it feeds the sweep pacing next to the shards' own counters.
	retained atomic.Uint64
}

// dropped reports the drop sequence (0 = live).
func (ix *attrIndex) dropped() uint64 { return ix.droppedSeq.Load() }

// covers reports whether the index was maintained at sequence point s.
func (ix *attrIndex) covers(s uint64) bool {
	if ix.createdSeq > s {
		return false
	}
	d := ix.dropped()
	return d == 0 || d > s
}

// idxRegistry is the copy-on-write set of indexes. byName/byAttr/byCls hold
// only live indexes (byCls keys by class pointer: a local subclass sharing
// a database class's name must not trigger its maintenance); list holds
// dropped ones too until no pinned snapshot can read them.
type idxRegistry struct {
	byName map[string]*attrIndex
	byAttr map[string][]*attrIndex
	byCls  map[*Class][]*attrIndex
	list   []*attrIndex
}

// clone deep-copies the registry maps (not the indexes).
func (r *idxRegistry) clone() *idxRegistry {
	n := &idxRegistry{
		byName: make(map[string]*attrIndex, len(r.byName)),
		byAttr: make(map[string][]*attrIndex, len(r.byAttr)),
		byCls:  make(map[*Class][]*attrIndex, len(r.byCls)),
		list:   append([]*attrIndex(nil), r.list...),
	}
	for k, v := range r.byName {
		n.byName[k] = v
	}
	for k, v := range r.byAttr {
		n.byAttr[k] = append([]*attrIndex(nil), v...)
	}
	for k, v := range r.byCls {
		n.byCls[k] = append([]*attrIndex(nil), v...)
	}
	return n
}

// idxPend is a queued class-membership change awaiting the operation's
// commit sequence.
type idxPend struct {
	cls *Class
	sur domain.Surrogate
	add bool
}

// ---- maintenance primitives ----

// update replaces sur's posting with key k (has=false: no posting) at
// sequence seq. Writers hold their shard lock(s); the partition mutex
// orders them against concurrent probes.
func (ix *attrIndex) update(s *Store, sur domain.Surrogate, k ikey, has bool, seq uint64) {
	p := &ix.parts[s.shardIndex(sur)]
	p.mu.Lock()
	defer p.mu.Unlock()
	old, had := p.cur[sur]
	if had && has && old == k {
		return
	}
	if !had && !has {
		return
	}
	ceil := s.ceiling()
	if had {
		ix.closeLocked(p, old, sur, seq, ceil)
		delete(p.cur, sur)
	}
	if has {
		ix.openLocked(p, k, sur, seq, ceil)
		p.cur[sur] = k
	}
}

// closeLocked ends the live interval of (k, sur) at seq. With no pinned
// snapshot the whole chain is dropped eagerly; otherwise the head is
// stamped removed and retained for the sweep.
func (ix *attrIndex) closeLocked(p *idxPart, k ikey, sur domain.Surrogate, seq, ceil uint64) {
	m := p.buckets[k]
	n := m[sur]
	if n == nil {
		return
	}
	if ceil == 0 {
		ix.dropChain(n.prev)
		delete(m, sur)
		if len(m) == 0 {
			delete(p.buckets, k)
		}
		return
	}
	n.removed = seq
	ix.retained.Add(1)
}

// openLocked starts a live interval of (k, sur) at seq, stacking on any
// retained dead intervals for the same key.
func (ix *attrIndex) openLocked(p *idxPart, k ikey, sur domain.Surrogate, seq, ceil uint64) {
	m := p.buckets[k]
	if m == nil {
		m = make(map[domain.Surrogate]*postNode)
		p.buckets[k] = m
	}
	n := &postNode{added: seq}
	if old := m[sur]; old != nil {
		if ceil == 0 {
			ix.dropChain(old)
		} else {
			n.prev = old
		}
	}
	m[sur] = n
}

// dropChain uncounts a chain of retained (removed) nodes being discarded.
func (ix *attrIndex) dropChain(n *postNode) {
	for ; n != nil; n = n.prev {
		dec(&ix.retained)
	}
}

func dec(c *atomic.Uint64) {
	c.Add(^uint64(0))
}

// refresh recomputes sur's posting in ix from the live store state at seq.
// Callers hold at least the shard lock that froze the topology the
// resolution walks. Objects that no longer exist, read null, error (e.g.
// attribute undeclared for this member's type) or hold a non-scalar value
// simply have no posting — exactly the rows a comparison predicate
// rejects.
func (ix *attrIndex) refresh(s *Store, sur domain.Surrogate, seq uint64) {
	o, ok := s.obj(sur)
	if !ok || o.isRel {
		ix.update(s, sur, ikey{}, false, seq)
		return
	}
	v, ok := s.idxResolve(o, ix.attrName)
	if !ok || domain.IsNull(v) {
		ix.update(s, sur, ikey{}, false, seq)
		return
	}
	k, scalar := indexKey(v)
	ix.update(s, sur, k, scalar, seq)
}

// idxResolve walks the inheritance chain for an attribute value without
// memoizing a route: unlike resolveAttrLocked it may run for an object on
// a shard the caller does not hold (the notifier reaches inheritors
// cross-shard under the writer's single shard lock, which freezes
// topology but does not license route-map writes on other shards).
func (s *Store) idxResolve(o *Object, name string) (domain.Value, bool) {
	cur := o
	for {
		eff, err := s.effectiveLocked(cur)
		if err != nil {
			return nil, false
		}
		a, ok := eff.Attr(name)
		if !ok {
			return nil, false
		}
		if !a.Inherited() {
			if v, ok := cur.attr(name); ok {
				return v, true
			}
			return domain.NullValue, true
		}
		b := s.bindingLocked(cur.sur, a.Via)
		if b == nil {
			return domain.NullValue, true
		}
		t, ok := s.obj(b.Transmitter)
		if !ok {
			return domain.NullValue, true
		}
		cur = t
	}
}

// ---- the maintenance funnel ----

// classAdd / classRemove are the single funnel for database-level class
// membership churn: every site that previously called cls.add/cls.remove +
// touchClass goes through here, so index maintenance cannot miss a
// membership path. The index work itself is deferred to idxCommit, which
// runs at the operation's commit sequence (and is dropped wholesale by
// abortClassTouches on rollback). Callers hold the all-shard lock.
func (s *Store) classAdd(cls *Class, sur domain.Surrogate) {
	cls.add(sur)
	s.touchClass(cls)
	if reg := s.indexes.Load(); reg != nil && len(reg.byCls[cls]) > 0 {
		s.idxPend = append(s.idxPend, idxPend{cls: cls, sur: sur, add: true})
	}
}

func (s *Store) classRemove(cls *Class, sur domain.Surrogate) {
	cls.remove(sur)
	s.touchClass(cls)
	if reg := s.indexes.Load(); reg != nil && len(reg.byCls[cls]) > 0 {
		s.idxPend = append(s.idxPend, idxPend{cls: cls, sur: sur, add: false})
	}
}

// idxTouch queues an inheritor whose inherited values a structural change
// (bind, unbind, cascade delete) may have rerouted. idxCommit recomputes
// the queued objects — and everything downstream of them through the
// binding graph — at the operation's commit sequence. This mirrors the
// route cache exactly: the events that bump shard epochs are the events
// that queue recomputation, and the recomputation itself reuses the
// epoch-guarded route resolution. Callers hold the all-shard lock.
func (s *Store) idxTouch(sur domain.Surrogate) {
	if s.indexes.Load() == nil {
		return
	}
	if s.idxRecompute == nil {
		s.idxRecompute = make(map[domain.Surrogate]bool)
	}
	s.idxRecompute[sur] = true
}

// idxCommit applies all queued index maintenance at the operation's commit
// sequence: class-membership pends first, then the transitive recompute
// set. Called from commitClassHist (class-churn ops) and directly by
// Bind/Unbind (which touch no class). Runs under the all-shard lock.
func (s *Store) idxCommit(seq uint64) {
	if len(s.idxPend) == 0 && len(s.idxRecompute) == 0 {
		return
	}
	reg := s.indexes.Load()
	pends := s.idxPend
	s.idxPend = s.idxPend[:0]
	rec := s.idxRecompute
	s.idxRecompute = nil
	if reg == nil {
		return
	}
	for _, p := range pends {
		for _, ix := range reg.byCls[p.cls] {
			if p.add {
				ix.refresh(s, p.sur, seq)
			} else {
				ix.update(s, p.sur, ikey{}, false, seq)
			}
		}
	}
	if len(rec) == 0 {
		return
	}
	// Close the set downstream: an object whose inherited value changed may
	// itself transmit that value onward.
	frontier := make([]domain.Surrogate, 0, len(rec))
	for sur := range rec {
		frontier = append(frontier, sur)
	}
	for len(frontier) > 0 {
		sur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, b := range s.shardOf(sur).byTransmitter[sur] {
			if !rec[b.Inheritor] {
				rec[b.Inheritor] = true
				frontier = append(frontier, b.Inheritor)
			}
		}
	}
	for sur := range rec {
		o, ok := s.obj(sur)
		if !ok || o.isRel || o.ownerClass == "" {
			continue
		}
		for _, ix := range reg.byAttrOfClass(o.ownerClass) {
			ix.refresh(s, sur, seq)
		}
	}
}

// byAttrOfClass lists the live indexes over the named database class.
func (r *idxRegistry) byAttrOfClass(className string) []*attrIndex {
	var out []*attrIndex
	for _, ix := range r.list {
		if ix.dropped() == 0 && ix.className == className {
			out = append(out, ix)
		}
	}
	return out
}

// idxAbort drops queued index maintenance after a rolled-back operation
// (paired with abortClassTouches).
func (s *Store) idxAbort() {
	s.idxPend = s.idxPend[:0]
	s.idxRecompute = nil
}

// idxOwn maintains indexes after a direct attribute write on o (the
// single-shard SetAttr path; the caller holds o's shard lock). v is the
// validated new value.
func (s *Store) idxOwn(o *Object, name string, v domain.Value, seq uint64) {
	reg := s.indexes.Load()
	if reg == nil {
		return
	}
	for _, ix := range reg.byAttr[name] {
		if ix.className != o.ownerClass {
			continue
		}
		if domain.IsNull(v) {
			ix.update(s, o.sur, ikey{}, false, seq)
			continue
		}
		k, scalar := indexKey(v)
		ix.update(s, o.sur, k, scalar, seq)
	}
}

// idxInherited recomputes inheritor's posting for an indexed member after
// a transmitter update reached it through a binding (the notifier walk).
// The caller holds the writing shard's lock, which freezes topology
// store-wide, so the resolution walk and the posting update are ordered
// with any concurrent structural change.
func (s *Store) idxInherited(inheritor domain.Surrogate, member string, seq uint64) {
	reg := s.indexes.Load()
	if reg == nil {
		return
	}
	list := reg.byAttr[member]
	if len(list) == 0 {
		return
	}
	o, ok := s.obj(inheritor)
	if !ok || o.isRel || o.ownerClass == "" {
		return
	}
	for _, ix := range list {
		if ix.className == o.ownerClass {
			ix.refresh(s, inheritor, seq)
		}
	}
}

// ---- definition lifecycle ----

// IndexDef describes a secondary index.
type IndexDef struct {
	Name       string
	ClassName  string
	AttrName   string
	CreatedSeq uint64
}

// CreateIndex defines a secondary index over one attribute of a
// database-level class and builds it from the current members, inherited
// values included. The build runs store-wide exclusive; maintenance
// afterwards piggybacks on the mutation paths. Index definitions are
// journaled; their contents are always rebuilt, never logged.
func (s *Store) CreateIndex(name, className, attrName string) error {
	return s.createIndex(name, className, attrName, 0)
}

func (s *Store) createIndex(name, className, attrName string, replaySeq uint64) error {
	if name == "" || attrName == "" {
		return fmt.Errorf("object: index needs a name and an attribute")
	}
	s.lockAll()
	defer s.unlockAll()
	reg := s.indexes.Load()
	if reg != nil {
		if _, dup := reg.byName[name]; dup {
			return fmt.Errorf("%w: %q", ErrIndexExists, name)
		}
	}
	cls, ok := s.lookupClass(className)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchClass, className)
	}
	seq := replaySeq
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	ix := &attrIndex{
		name:       name,
		className:  className,
		attrName:   attrName,
		cls:        cls,
		createdSeq: seq,
		parts:      make([]idxPart, len(s.shards)),
	}
	for i := range ix.parts {
		ix.parts[i].buckets = make(map[ikey]map[domain.Surrogate]*postNode)
		ix.parts[i].cur = make(map[domain.Surrogate]ikey)
	}
	for _, sur := range cls.Members() {
		ix.refresh(s, sur, seq)
	}
	var next *idxRegistry
	if reg == nil {
		next = &idxRegistry{
			byName: map[string]*attrIndex{},
			byAttr: map[string][]*attrIndex{},
			byCls:  map[*Class][]*attrIndex{},
		}
	} else {
		next = reg.clone()
	}
	next.byName[name] = ix
	next.byAttr[attrName] = append(next.byAttr[attrName], ix)
	next.byCls[cls] = append(next.byCls[cls], ix)
	next.list = append(next.list, ix)
	sort.Slice(next.list, func(i, j int) bool {
		if next.list[i].name != next.list[j].name {
			return next.list[i].name < next.list[j].name
		}
		return next.list[i].createdSeq < next.list[j].createdSeq
	})
	s.indexes.Store(next)
	if replaySeq == 0 {
		s.emit(&oplog.Op{Kind: oplog.KindCreateIndex, Name: name, Name2: className, Value: domain.Str(attrName), Seq: seq})
	}
	return nil
}

// DropIndex removes a secondary index. The definition stays readable to
// snapshots pinned before the drop (they may still plan over it: the index
// was maintained for their whole window); its memory is reclaimed once no
// pin can reach it.
func (s *Store) DropIndex(name string) error {
	return s.dropIndex(name, 0)
}

func (s *Store) dropIndex(name string, replaySeq uint64) error {
	s.lockAll()
	defer s.unlockAll()
	reg := s.indexes.Load()
	if reg == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	ix, ok := reg.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	seq := replaySeq
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	ix.droppedSeq.Store(seq)
	next := reg.clone()
	delete(next.byName, name)
	next.byAttr[ix.attrName] = removeIdx(next.byAttr[ix.attrName], ix)
	if len(next.byAttr[ix.attrName]) == 0 {
		delete(next.byAttr, ix.attrName)
	}
	next.byCls[ix.cls] = removeIdx(next.byCls[ix.cls], ix)
	if len(next.byCls[ix.cls]) == 0 {
		delete(next.byCls, ix.cls)
	}
	if s.ceiling() == 0 {
		// No pin can plan over it: free the definition and postings now.
		next.list = removeIdx(next.list, ix)
	}
	s.indexes.Store(next)
	if replaySeq == 0 {
		s.emit(&oplog.Op{Kind: oplog.KindDropIndex, Name: name, Seq: seq})
	}
	return nil
}

func removeIdx(list []*attrIndex, ix *attrIndex) []*attrIndex {
	out := list[:0]
	for _, e := range list {
		if e != ix {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Indexes lists the live index definitions, sorted by name.
func (s *Store) Indexes() []IndexDef {
	reg := s.indexes.Load()
	if reg == nil {
		return nil
	}
	var out []IndexDef
	for _, ix := range reg.list {
		if ix.dropped() == 0 {
			out = append(out, IndexDef{Name: ix.name, ClassName: ix.className, AttrName: ix.attrName, CreatedSeq: ix.createdSeq})
		}
	}
	return out
}

// Indexes is the snapshot form: definitions that were live across the
// pin's sequence point, sorted by name. A dropped index stays planable
// for pins taken before the drop (it was maintained for their whole
// window).
func (sn *Snapshot) Indexes() []IndexDef {
	reg := sn.s.indexes.Load()
	if reg == nil {
		return nil
	}
	var out []IndexDef
	for _, ix := range reg.list {
		if ix.covers(sn.seq) {
			out = append(out, IndexDef{Name: ix.name, ClassName: ix.className, AttrName: ix.attrName, CreatedSeq: ix.createdSeq})
		}
	}
	return out
}

// indexFor finds a live index over (className, attrName).
func (r *idxRegistry) indexFor(className, attrName string) *attrIndex {
	for _, ix := range r.byAttr[attrName] {
		if ix.className == className {
			return ix
		}
	}
	return nil
}

// seedIndexState rebuilds index definitions (entries included) from
// imported records: the counterpart of seedSnapshotState for the index
// layer. Runs under the import's all-shard lock, after objects, classes
// and bindings are linked; postings are seeded at sequence 0, below any
// pin a reopened store can take.
func (s *Store) seedIndexState(recs []IndexRecord) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		cls, ok := s.lookupClass(r.ClassName)
		if !ok {
			return fmt.Errorf("%w: index %q over %q", ErrNoSuchClass, r.Name, r.ClassName)
		}
		reg := s.indexes.Load()
		if reg != nil {
			if _, dup := reg.byName[r.Name]; dup {
				return fmt.Errorf("%w: %q in snapshot", ErrIndexExists, r.Name)
			}
		}
		ix := &attrIndex{
			name:       r.Name,
			className:  r.ClassName,
			attrName:   r.AttrName,
			cls:        cls,
			createdSeq: r.CreatedSeq,
			parts:      make([]idxPart, len(s.shards)),
		}
		for i := range ix.parts {
			ix.parts[i].buckets = make(map[ikey]map[domain.Surrogate]*postNode)
			ix.parts[i].cur = make(map[domain.Surrogate]ikey)
		}
		for _, sur := range cls.Members() {
			ix.refresh(s, sur, 0)
		}
		var next *idxRegistry
		if reg == nil {
			next = &idxRegistry{
				byName: map[string]*attrIndex{},
				byAttr: map[string][]*attrIndex{},
				byCls:  map[*Class][]*attrIndex{},
			}
		} else {
			next = reg.clone()
		}
		next.byName[r.Name] = ix
		next.byAttr[r.AttrName] = append(next.byAttr[r.AttrName], ix)
		next.byCls[cls] = append(next.byCls[cls], ix)
		next.list = append(next.list, ix)
		s.indexes.Store(next)
	}
	return nil
}

// indexRecords exports the index definitions visible at sequence point at
// (liveSeq exports the live set), sorted by name. Lock-free: the registry
// is an atomic pointer and definitions are immutable but for the atomic
// droppedSeq.
func (s *Store) indexRecords(at uint64) []IndexRecord {
	reg := s.indexes.Load()
	if reg == nil {
		return nil
	}
	var out []IndexRecord
	for _, ix := range reg.list {
		if at == liveSeq {
			if ix.dropped() != 0 {
				continue
			}
		} else if !ix.covers(at) {
			continue
		}
		out = append(out, IndexRecord{Name: ix.name, ClassName: ix.className, AttrName: ix.attrName, CreatedSeq: ix.createdSeq})
	}
	return out
}

// ---- probes ----

// IndexProbe returns the candidate members whose indexed attribute value
// lies within [lo, hi] (nil = unbounded; bounds inclusive — see inRange)
// according to a live index over (className, attrName). The second result
// is false when no such index exists or a bound is not an indexable
// scalar. Candidates are a superset of the true matches (bounds are
// widened); callers re-apply the full predicate.
func (s *Store) IndexProbe(className, attrName string, lo, hi domain.Value) ([]domain.Surrogate, bool) {
	reg := s.indexes.Load()
	if reg == nil {
		return nil, false
	}
	ix := reg.indexFor(className, attrName)
	if ix == nil {
		return nil, false
	}
	return ix.probe(lo, hi, 0)
}

// IndexProbe is the snapshot form: it serves candidates as of the pin's
// sequence point, and only from an index that was maintained across it.
func (sn *Snapshot) IndexProbe(className, attrName string, lo, hi domain.Value) ([]domain.Surrogate, bool) {
	reg := sn.s.indexes.Load()
	if reg == nil {
		return nil, false
	}
	var ix *attrIndex
	for _, c := range reg.list {
		if c.className == className && c.attrName == attrName && c.covers(sn.seq) {
			ix = c
			break
		}
	}
	if ix == nil {
		return nil, false
	}
	return ix.probe(lo, hi, sn.seq)
}

// probe scans the partitions for keys in [lo, hi]. at == 0 reads the live
// postings; at > 0 reads the interval visible at that sequence point.
func (ix *attrIndex) probe(lo, hi domain.Value, at uint64) ([]domain.Surrogate, bool) {
	var loK, hiK *ikey
	if lo != nil && !domain.IsNull(lo) {
		k, ok := indexKey(lo)
		if !ok {
			return nil, false
		}
		loK = &k
	}
	if hi != nil && !domain.IsNull(hi) {
		k, ok := indexKey(hi)
		if !ok {
			return nil, false
		}
		hiK = &k
	}
	var out []domain.Surrogate
	for i := range ix.parts {
		p := &ix.parts[i]
		p.mu.Lock()
		for k, m := range p.buckets {
			if !k.inRange(loK, hiK) {
				continue
			}
			for sur, n := range m {
				if at == 0 {
					if n.removed == 0 {
						out = append(out, sur)
					}
					continue
				}
				for ; n != nil; n = n.prev {
					if n.added <= at && (n.removed == 0 || n.removed > at) {
						out = append(out, sur)
						break
					}
					if n.added <= at {
						break // deeper intervals are older still
					}
				}
			}
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// indexEstimate counts live candidates in range without materializing
// them; the planner's costing probe. Returns -1 when no usable index.
func (s *Store) indexEstimate(className, attrName string, lo, hi domain.Value, at uint64) int {
	reg := s.indexes.Load()
	if reg == nil {
		return -1
	}
	var ix *attrIndex
	if at == 0 {
		ix = reg.indexFor(className, attrName)
	} else {
		for _, c := range reg.list {
			if c.className == className && c.attrName == attrName && c.covers(at) {
				ix = c
				break
			}
		}
	}
	if ix == nil {
		return -1
	}
	var loK, hiK *ikey
	if lo != nil && !domain.IsNull(lo) {
		k, ok := indexKey(lo)
		if !ok {
			return -1
		}
		loK = &k
	}
	if hi != nil && !domain.IsNull(hi) {
		k, ok := indexKey(hi)
		if !ok {
			return -1
		}
		hiK = &k
	}
	total := 0
	for i := range ix.parts {
		p := &ix.parts[i]
		p.mu.Lock()
		for k, m := range p.buckets {
			if k.inRange(loK, hiK) {
				total += len(m)
			}
		}
		p.mu.Unlock()
	}
	return total
}

// IndexEstimate exposes costing for the live store (see indexEstimate).
func (s *Store) IndexEstimate(className, attrName string, lo, hi domain.Value) int {
	return s.indexEstimate(className, attrName, lo, hi, 0)
}

// IndexEstimate is the snapshot form of costing.
func (sn *Snapshot) IndexEstimate(className, attrName string, lo, hi domain.Value) int {
	return sn.s.indexEstimate(className, attrName, lo, hi, sn.seq)
}

// ---- sweep and stats ----

// idxRetainedTotal sums retained interval nodes across indexes for the
// sweep pacing.
func (s *Store) idxRetainedTotal() uint64 {
	reg := s.indexes.Load()
	if reg == nil {
		return 0
	}
	var n uint64
	for _, ix := range reg.list {
		n += ix.retained.Load()
	}
	return n
}

// idxSweep trims index postings no pinned snapshot can read: intervals
// closed at or below the low-water mark, and the whole contents of
// indexes dropped at or below it. Returns the number of nodes reclaimed.
func (s *Store) idxSweep(low uint64) uint64 {
	reg := s.indexes.Load()
	if reg == nil {
		return 0
	}
	var reclaimed uint64
	for _, ix := range reg.list {
		if d := ix.dropped(); d != 0 && d <= low {
			reclaimed += ix.clear()
			continue
		}
		reclaimed += ix.sweep(low)
	}
	return reclaimed
}

// sweep trims dead intervals from a live index. Interval chains are
// ordered newest-first and close monotonically, so the first node dead at
// the low-water mark ends the readable prefix.
func (ix *attrIndex) sweep(low uint64) uint64 {
	var reclaimed uint64
	for i := range ix.parts {
		p := &ix.parts[i]
		p.mu.Lock()
		for k, m := range p.buckets {
			for sur, n := range m {
				if n.removed != 0 && n.removed <= low {
					reclaimed += chainLen(n)
					delete(m, sur)
					continue
				}
				for ; n.prev != nil; n = n.prev {
					if q := n.prev; q.removed != 0 && q.removed <= low {
						reclaimed += chainLen(q)
						n.prev = nil
						break
					}
				}
			}
			if len(m) == 0 {
				delete(p.buckets, k)
			}
		}
		p.mu.Unlock()
	}
	if reclaimed > 0 {
		ix.retained.Add(^(reclaimed - 1))
	}
	return reclaimed
}

// clear drops all postings of a dropped index.
func (ix *attrIndex) clear() uint64 {
	var reclaimed uint64
	for i := range ix.parts {
		p := &ix.parts[i]
		p.mu.Lock()
		for _, m := range p.buckets {
			for _, n := range m {
				reclaimed += chainLen(n)
			}
		}
		p.buckets = make(map[ikey]map[domain.Surrogate]*postNode)
		p.cur = make(map[domain.Surrogate]ikey)
		p.mu.Unlock()
	}
	ix.retained.Store(0)
	return reclaimed
}

func chainLen(n *postNode) uint64 {
	var c uint64
	for ; n != nil; n = n.prev {
		c++
	}
	return c
}

// idxAudit re-derives every live index's expected postings from a fresh
// resolution of each member's attribute value and reports any divergence:
// missing or stale postings, wrong keys, and cur/bucket asymmetry. Called
// from CheckInvariants; the caller holds every shard and stripe read lock.
func (s *Store) idxAudit(report func(format string, args ...any)) {
	reg := s.indexes.Load()
	if reg == nil {
		return
	}
	for _, ix := range reg.list {
		if ix.dropped() != 0 {
			continue
		}
		want := make(map[domain.Surrogate]ikey)
		for _, sur := range ix.cls.items() {
			o, ok := s.obj(sur)
			if !ok || o.isRel {
				continue
			}
			v, ok := s.idxResolve(o, ix.attrName)
			if !ok || domain.IsNull(v) {
				continue
			}
			if k, scalar := indexKey(v); scalar {
				want[sur] = k
			}
		}
		got := make(map[domain.Surrogate]ikey)
		for i := range ix.parts {
			p := &ix.parts[i]
			p.mu.Lock()
			for sur, k := range p.cur {
				got[sur] = k
				if n := p.buckets[k][sur]; n == nil || n.removed != 0 {
					report("index %q: cur entry for %s has no live bucket node", ix.name, sur)
				}
			}
			for k, m := range p.buckets {
				for sur, n := range m {
					if n.removed == 0 {
						if ck, ok := p.cur[sur]; !ok || ck != k {
							report("index %q: live node for %s not tracked in cur", ix.name, sur)
						}
					}
				}
			}
			p.mu.Unlock()
		}
		for sur, k := range want {
			if gk, ok := got[sur]; !ok {
				report("index %q: missing posting for member %s", ix.name, sur)
			} else if gk != k {
				report("index %q: %s posted under the wrong key", ix.name, sur)
			}
		}
		for sur := range got {
			if _, ok := want[sur]; !ok {
				report("index %q: stale posting for %s", ix.name, sur)
			}
		}
	}
}

// IndexStat reports the shape of one secondary index.
type IndexStat struct {
	Name     string
	Class    string
	Attr     string
	Keys     int
	Entries  int
	Retained uint64
}

// IndexStats reports per-index sizes for the live indexes.
func (s *Store) IndexStats() []IndexStat {
	reg := s.indexes.Load()
	if reg == nil {
		return nil
	}
	var out []IndexStat
	for _, ix := range reg.list {
		if ix.dropped() != 0 {
			continue
		}
		st := IndexStat{Name: ix.name, Class: ix.className, Attr: ix.attrName, Retained: ix.retained.Load()}
		for i := range ix.parts {
			p := &ix.parts[i]
			p.mu.Lock()
			st.Keys += len(p.buckets)
			st.Entries += len(p.cur)
			p.mu.Unlock()
		}
		out = append(out, st)
	}
	return out
}
