package object

import (
	"fmt"

	"cadcam/internal/domain"
)

// CheckInvariants audits the store's internal index consistency and
// returns a description of every violation found (empty = healthy). It
// is meant for tests, fuzzing harnesses and post-recovery verification;
// it holds every shard and stripe read lock for its whole run.
//
// Invariants checked:
//
//  1. class membership is symmetric: every member of a database class
//     exists and knows its owner class, and vice versa;
//  2. parent/subclass linkage is symmetric for subobjects and local
//     relationship members;
//  3. every binding is indexed consistently by inheritor and by
//     transmitter, its endpoints exist, and its relationship object is
//     registered;
//  4. binding graphs are acyclic (value inheritance terminates);
//  5. the participant index matches the participants actually stored on
//     relationship objects, in both directions;
//  6. no allocated surrogate exceeds the allocation counter;
//  7. every object lives in the shard its surrogate hashes to;
//  8. every live secondary index agrees with a fresh resolution of each
//     member's attribute value (inherited values included).
func (s *Store) CheckInvariants() []string {
	s.rlockAll()
	defer s.runlockAll()
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// 1. database classes <-> ownerClass.
	for i := range s.stripes {
		for name, cls := range s.stripes[i].classes {
			for _, m := range cls.items() {
				o, ok := s.obj(m)
				if !ok {
					report("class %q holds dead member %s", name, m)
					continue
				}
				if o.ownerClass != name {
					report("class %q holds %s whose ownerClass is %q", name, m, o.ownerClass)
				}
			}
		}
	}
	forEachObject := func(f func(sur domain.Surrogate, o *Object)) {
		for i := range s.shards {
			for sur, o := range s.shards[i].objects {
				f(sur, o)
			}
		}
	}
	forEachObject(func(sur domain.Surrogate, o *Object) {
		if o.ownerClass != "" {
			cls, ok := s.lookupClass(o.ownerClass)
			if !ok || !cls.Contains(sur) {
				report("%s claims class %q but is not a member", sur, o.ownerClass)
			}
		}
	})

	// 2. parent/subclass symmetry.
	forEachObject(func(sur domain.Surrogate, o *Object) {
		if o.parent != 0 {
			po, ok := s.obj(o.parent)
			if !ok {
				report("%s has dead parent %s", sur, o.parent)
			} else {
				in := false
				if cls, ok := po.subMap()[o.parentSub]; ok && cls.Contains(sur) {
					in = true
				}
				if cls, ok := po.relMap()[o.parentSub]; ok && cls.Contains(sur) {
					in = true
				}
				if !in {
					report("%s claims parent %s subclass %q but is not a member", sur, o.parent, o.parentSub)
				}
			}
		}
		for name, cls := range o.subMap() {
			for _, m := range cls.items() {
				mo, ok := s.obj(m)
				if !ok {
					report("%s subclass %q holds dead member %s", sur, name, m)
					continue
				}
				if mo.parent != sur || mo.parentSub != name {
					report("%s subclass %q member %s has parent %s/%q", sur, name, m, mo.parent, mo.parentSub)
				}
			}
		}
		for name, cls := range o.relMap() {
			for _, m := range cls.items() {
				mo, ok := s.obj(m)
				if !ok {
					report("%s subrel %q holds dead member %s", sur, name, m)
					continue
				}
				if !mo.isRel {
					report("%s subrel %q member %s is not a relationship", sur, name, m)
				}
			}
		}
	})

	// 3. binding index symmetry.
	for i := range s.shards {
		for inh, m := range s.shards[i].byInheritor {
			if s.shardIndex(inh) != i {
				report("inheritor index for %s lives in shard %d, expected %d", inh, i, s.shardIndex(inh))
			}
			for rel, b := range m {
				if b.Inheritor != inh || b.Rel.Name != rel {
					report("binding index mismatch at (%s, %s)", inh, rel)
				}
				if _, ok := s.obj(b.Obj.sur); !ok {
					report("binding object %s not registered", b.Obj.sur)
				}
				if b.Obj.book == nil {
					report("binding object %s has no bookkeeping", b.Obj.sur)
				}
				if _, ok := s.obj(b.Transmitter); !ok {
					report("binding %s has dead transmitter %s", b.Obj.sur, b.Transmitter)
				}
				if _, ok := s.obj(b.Inheritor); !ok {
					report("binding %s has dead inheritor %s", b.Obj.sur, b.Inheritor)
				}
				found := false
				for _, tb := range s.shardOf(b.Transmitter).byTransmitter[b.Transmitter] {
					if tb == b {
						found = true
						break
					}
				}
				if !found {
					report("binding %s missing from transmitter index", b.Obj.sur)
				}
			}
		}
		for trans, list := range s.shards[i].byTransmitter {
			if s.shardIndex(trans) != i {
				report("transmitter index for %s lives in shard %d, expected %d", trans, i, s.shardIndex(trans))
			}
			for _, b := range list {
				if b.Transmitter != trans {
					report("transmitter index mismatch at %s", trans)
				}
				if ib := s.bindingLocked(b.Inheritor, b.Rel.Name); ib != b {
					report("binding %s missing from inheritor index", b.Obj.sur)
				}
			}
		}
	}

	// 4. acyclicity: walk transmitter edges from every inheritor.
	for i := range s.shards {
		for inh := range s.shards[i].byInheritor {
			if s.reachesLocked(inh, inh) {
				report("binding cycle through %s", inh)
			}
		}
	}

	// 5. participant index in both directions.
	for i := range s.shards {
		for part, rels := range s.shards[i].relsByParticipant {
			if s.shardIndex(part) != i {
				report("participant index for %s lives in shard %d, expected %d", part, i, s.shardIndex(part))
			}
			for rel := range rels {
				ro, ok := s.obj(rel)
				if !ok {
					report("participant index holds dead relationship %s", rel)
					continue
				}
				if !ro.isRel {
					report("participant index holds non-relationship %s", rel)
					continue
				}
				if !refersTo(ro.participants, part) {
					report("relationship %s indexed for %s but does not reference it", rel, part)
				}
			}
		}
	}
	forEachObject(func(sur domain.Surrogate, o *Object) {
		if !o.isRel || o.participants == nil {
			return
		}
		// Binding objects are indexed via byInheritor/byTransmitter, not
		// the participant index.
		if _, isInher := s.cat.InherRelType(o.typeName); isInher {
			return
		}
		var check func(v domain.Value)
		check = func(v domain.Value) {
			switch x := v.(type) {
			case domain.Ref:
				if !s.shardOf(domain.Surrogate(x)).relsByParticipant[domain.Surrogate(x)][sur] {
					report("relationship %s references %s without index entry", sur, x)
				}
			case *domain.Set:
				for _, e := range x.Elems() {
					check(e)
				}
			}
		}
		for _, v := range o.participants {
			check(v)
		}
	})

	// 6. surrogate allocation; 7. shard placement.
	next := s.nextSur.Load()
	for i := range s.shards {
		for sur := range s.shards[i].objects {
			if uint64(sur) > next {
				report("surrogate %s exceeds allocation counter %d", sur, next)
			}
			if s.shardIndex(sur) != i {
				report("%s stored in shard %d, expected %d", sur, i, s.shardIndex(sur))
			}
		}
	}

	// 8. secondary indexes match freshly-resolved attribute values.
	s.idxAudit(report)
	return bad
}

func refersTo(parts map[string]domain.Value, target domain.Surrogate) bool {
	var found bool
	var walk func(v domain.Value)
	walk = func(v domain.Value) {
		switch x := v.(type) {
		case domain.Ref:
			if domain.Surrogate(x) == target {
				found = true
			}
		case *domain.Set:
			for _, e := range x.Elems() {
				walk(e)
			}
		}
	}
	for _, v := range parts {
		walk(v)
	}
	return found
}
