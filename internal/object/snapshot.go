package object

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cadcam/internal/domain"
)

// The Export/Import API serializes store state for persistence snapshots.
// Export walks the live store; Import rebuilds an *empty* store from the
// records, reconstructing every index. Records are keyed by surrogate and
// imported in ascending surrogate order. Both forms are shard-agnostic:
// a snapshot taken from a store with one shard count imports cleanly into
// a store with another.

// ObjectRecord is the portable form of one object (or non-binding
// relationship object).
type ObjectRecord struct {
	Sur          domain.Surrogate
	TypeName     string
	IsRel        bool
	Parent       domain.Surrogate
	ParentSub    string
	OwnerClass   string
	ModSeq       uint64
	Attrs        map[string]domain.Value
	Participants map[string]domain.Value
}

// BindingRecord is the portable form of one inheritance binding. The
// system bookkeeping (TransmitterUpdates, LastUpdateSeq, AcknowledgedSeq)
// travels inside Attrs, exactly as earlier single-lock versions stored it.
type BindingRecord struct {
	Sur         domain.Surrogate
	RelType     string
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
	Attrs       map[string]domain.Value
}

// ClassRecord describes a database-level class.
type ClassRecord struct {
	Name     string
	ElemType string
}

// IndexRecord describes a secondary-index definition. Only the definition
// persists: the postings are rebuilt deterministically on import.
type IndexRecord struct {
	Name       string
	ClassName  string
	AttrName   string
	CreatedSeq uint64
}

// StoreState is a complete logical snapshot of a store.
type StoreState struct {
	Classes  []ClassRecord
	Indexes  []IndexRecord
	Objects  []ObjectRecord
	Bindings []BindingRecord
	NextSur  uint64
	Seq      uint64
}

// Export captures the store's full state under all shard read locks. The
// result shares no mutable structure with the store (values are
// deep-copied).
func (s *Store) Export() *StoreState {
	s.rlockAll()
	defer s.runlockAll()
	return s.exportLocked()
}

// WithExclusive runs f while holding every shard and stripe write lock,
// passing a consistent export. No mutation (and hence no journal append)
// can run concurrently; the checkpointer uses this to pair a snapshot
// with a log rotation atomically.
func (s *Store) WithExclusive(f func(st *StoreState) error) error {
	s.lockAll()
	defer s.unlockAll()
	return f(s.exportLocked())
}

func (s *Store) exportLocked() *StoreState {
	st := s.baseStateLocked()
	surs := s.surrogatesLocked()
	bindingSurs := s.bindingSursLocked()
	for _, sur := range surs {
		if b, isBinding := bindingSurs[sur]; isBinding {
			st.Bindings = append(st.Bindings, bindingRecord(sur, b, liveSeq))
			continue
		}
		o, _ := s.obj(sur)
		st.Objects = append(st.Objects, objectRecord(o, liveSeq))
	}
	return st
}

// liveSeq reads a version chain at its head: the live state.
const liveSeq = ^uint64(0)

// baseStateLocked captures the non-partitioned part of the state: classes
// and the global counters, no object or binding records.
func (s *Store) baseStateLocked() *StoreState {
	st := &StoreState{NextSur: s.nextSur.Load(), Seq: s.seq.Load()}
	classes := make(map[string]*Class)
	for i := range s.stripes {
		for name, cls := range s.stripes[i].classes {
			classes[name] = cls
		}
	}
	for _, name := range sortedNames(classes) {
		st.Classes = append(st.Classes, ClassRecord{Name: name, ElemType: classes[name].elemType})
	}
	st.Indexes = s.indexRecords(liveSeq)
	return st
}

// bindingSursLocked indexes every live binding by the surrogate of its
// relationship object, across all shards.
func (s *Store) bindingSursLocked() map[domain.Surrogate]*Binding {
	bindingSurs := make(map[domain.Surrogate]*Binding)
	for i := range s.shards {
		for _, list := range s.shards[i].byTransmitter {
			for _, b := range list {
				bindingSurs[b.Obj.sur] = b
			}
		}
	}
	return bindingSurs
}

// bindingRecord captures one binding as visible at sequence point at
// (liveSeq for the live state).
func bindingRecord(sur domain.Surrogate, b *Binding, at uint64) BindingRecord {
	attrs := copyBoxAttrsAt(b.Obj.attrMap(), at)
	if attrs == nil {
		attrs = make(map[string]domain.Value, 3)
	}
	upd, last, ack := b.Obj.book.at(at)
	attrs[AttrTransmitterUpdates] = domain.Int(upd)
	attrs[AttrLastUpdateSeq] = domain.Int(last)
	attrs[AttrAcknowledgedSeq] = domain.Int(ack)
	return BindingRecord{
		Sur:         sur,
		RelType:     b.Rel.Name,
		Transmitter: b.Transmitter,
		Inheritor:   b.Inheritor,
		Attrs:       attrs,
	}
}

// objectRecord captures one object as visible at sequence point at.
func objectRecord(o *Object, at uint64) ObjectRecord {
	return ObjectRecord{
		Sur:          o.sur,
		TypeName:     o.typeName,
		IsRel:        o.isRel,
		Parent:       o.parent,
		ParentSub:    o.parentSub,
		OwnerClass:   o.ownerClass,
		ModSeq:       o.modAt(at),
		Attrs:        copyBoxAttrsAt(o.attrMap(), at),
		Participants: copyAttrs(o.participants),
	}
}

// ShardExport is one shard's slice of a partitioned export. Mark is the
// shard's dirty counter at capture time; Exported reports whether the
// record slices were populated (the shard changed relative to the
// caller's baseline) or skipped because the previous segment still
// describes it exactly.
type ShardExport struct {
	Mark     uint64
	Exported bool
	Objects  []ObjectRecord
	Bindings []BindingRecord
}

// StoreExport is a partitioned snapshot of the store: the base state
// (classes and counters, cheap, always present) plus one ShardExport per
// shard. Record slices are deep copies ordered by surrogate within each
// shard, so the caller may encode them after releasing the store locks.
type StoreExport struct {
	Base   *StoreState // Classes, NextSur, Seq only — no records
	Shards []ShardExport
}

// WithExclusiveExport runs f while holding every shard and stripe write
// lock, passing a partitioned export in which only shards whose dirty
// counter moved past the caller's baseline carry records. baseline holds
// the Mark values captured by the previous committed checkpoint; nil (or
// a length mismatch, e.g. after a shard-count change) exports every
// shard. Like WithExclusive, no mutation or journal append can run
// concurrently, so the checkpointer can pair the capture with a journal
// rotation atomically — and encode the records off-lock afterwards.
func (s *Store) WithExclusiveExport(baseline []uint64, f func(ex *StoreExport) error) error {
	s.lockAll()
	defer s.unlockAll()
	ex := &StoreExport{Base: s.baseStateLocked(), Shards: make([]ShardExport, len(s.shards))}
	full := len(baseline) != len(s.shards)
	bindingSurs := s.bindingSursLocked()
	for i := range s.shards {
		sh := &s.shards[i]
		se := &ex.Shards[i]
		se.Mark = sh.dirty.Load()
		se.Exported = full || se.Mark != baseline[i]
		if !se.Exported {
			continue
		}
		surs := make([]domain.Surrogate, 0, len(sh.objects))
		for sur := range sh.objects {
			surs = append(surs, sur)
		}
		sort.Slice(surs, func(a, b int) bool { return surs[a] < surs[b] })
		for _, sur := range surs {
			if b, isBinding := bindingSurs[sur]; isBinding {
				se.Bindings = append(se.Bindings, bindingRecord(sur, b, liveSeq))
				continue
			}
			se.Objects = append(se.Objects, objectRecord(sh.objects[sur], liveSeq))
		}
	}
	return f(ex)
}

func copyAttrs(m map[string]domain.Value) map[string]domain.Value {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(m))
	for k, v := range m {
		out[k] = v.Copy()
	}
	return out
}

// copyBoxAttrsAt deep-copies the attribute values visible at sequence
// point at, skipping slots that are absent (tombstoned) there.
func copyBoxAttrsAt(m map[string]*attrBox, at uint64) map[string]domain.Value {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(m))
	for k, b := range m {
		if v, ok := b.at(at); ok {
			out[k] = v.Copy()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Import rebuilds the state into an empty store. It fails if the store
// already holds objects or if the state is inconsistent with the catalog.
func (s *Store) Import(st *StoreState) error {
	return s.ImportParallel(st, 1)
}

// importObject validates one object record and inserts the rebuilt object
// into its shard map. Safe to run concurrently for records owned by
// *different shards* while the coordinating goroutine holds all write
// locks: each worker touches only its own shards' maps, and the catalog
// lookups are read-only.
func (s *Store) importObject(r *ObjectRecord) error {
	if _, dup := s.obj(r.Sur); dup {
		return fmt.Errorf("object: duplicate surrogate %s in snapshot", r.Sur)
	}
	if r.IsRel {
		if _, ok := s.cat.RelType(r.TypeName); !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, r.TypeName)
		}
	} else if _, ok := s.cat.ObjectType(r.TypeName); !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchType, r.TypeName)
	}
	o := &Object{
		sur:          r.Sur,
		typeName:     r.TypeName,
		isRel:        r.IsRel,
		parent:       r.Parent,
		parentSub:    r.ParentSub,
		ownerClass:   r.OwnerClass,
		participants: copyAttrs(r.Participants),
	}
	o.modSeq.Store(r.ModSeq)
	o.initClasses()
	o.initAttrs(copyAttrs(r.Attrs), 0)
	s.shardOf(r.Sur).objects[r.Sur] = o
	return nil
}

// ImportParallel is Import with the object-construction phase — the deep
// copies of every attribute map, the bulk of a large import's CPU cost —
// fanned out over up to `workers` goroutines, one set of shards each
// (workers <= 0 uses GOMAXPROCS). Linking, bindings and index rebuilding
// stay serial: they cross shards. The imported state is identical to a
// serial Import's for any worker count.
func (s *Store) ImportParallel(st *StoreState, workers int) error {
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		if len(s.shards[i].objects) != 0 {
			return fmt.Errorf("object: Import needs an empty store")
		}
	}
	for _, c := range st.Classes {
		stripe := s.stripeOf(c.Name)
		if _, dup := stripe.classes[c.Name]; dup {
			return fmt.Errorf("object: duplicate class %q in snapshot", c.Name)
		}
		stripe.classes[c.Name] = newClass(c.Name, c.ElemType)
	}
	// Objects in ascending surrogate order so parents precede subobjects
	// is NOT guaranteed in general; link classes in a second pass.
	recs := append([]ObjectRecord(nil), st.Objects...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Sur < recs[j].Sur })
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 || len(recs) < 1024 {
		for i := range recs {
			if err := s.importObject(&recs[i]); err != nil {
				return err
			}
		}
	} else {
		// Partition records by owning shard; worker w handles shards
		// w, w+workers, ... so no two goroutines touch one shard map.
		byShard := make([][]int, len(s.shards))
		for i := range recs {
			si := s.shardIndex(recs[i].Sur)
			byShard[si] = append(byShard[si], i)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for si := w; si < len(byShard); si += workers {
					for _, i := range byShard[si] {
						if err := s.importObject(&recs[i]); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	// Second pass: class membership and participant index.
	for _, r := range recs {
		o, _ := s.obj(r.Sur)
		if r.OwnerClass != "" {
			cls, ok := s.lookupClass(r.OwnerClass)
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoSuchClass, r.OwnerClass)
			}
			cls.add(r.Sur)
		}
		if r.Parent != 0 {
			po, ok := s.obj(r.Parent)
			if !ok {
				return fmt.Errorf("object: snapshot parent %s missing", r.Parent)
			}
			if err := s.linkSubobjectLocked(po, o); err != nil {
				return err
			}
		}
		for _, v := range o.participants {
			s.indexParticipantLocked(o.sur, v)
		}
	}
	// Bindings. The bookkeeping attributes move from the record's attr map
	// into the binding book.
	brecs := append([]BindingRecord(nil), st.Bindings...)
	sort.Slice(brecs, func(i, j int) bool { return brecs[i].Sur < brecs[j].Sur })
	for _, r := range brecs {
		rel, ok := s.cat.InherRelType(r.RelType)
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, r.RelType)
		}
		if _, ok := s.obj(r.Transmitter); !ok {
			return fmt.Errorf("object: snapshot transmitter %s missing", r.Transmitter)
		}
		if _, ok := s.obj(r.Inheritor); !ok {
			return fmt.Errorf("object: snapshot inheritor %s missing", r.Inheritor)
		}
		attrs := copyAttrs(r.Attrs)
		if attrs == nil {
			attrs = make(map[string]domain.Value)
		}
		book := &bindingBook{}
		book.seed(takeInt(attrs, AttrTransmitterUpdates),
			takeInt(attrs, AttrLastUpdateSeq),
			takeInt(attrs, AttrAcknowledgedSeq))
		obj := &Object{
			sur:      r.Sur,
			typeName: r.RelType,
			isRel:    true,
			participants: map[string]domain.Value{
				"Transmitter": domain.Ref(r.Transmitter),
				"Inheritor":   domain.Ref(r.Inheritor),
			},
			book: book,
		}
		obj.initClasses()
		obj.initAttrs(attrs, 0)
		if _, dup := s.obj(r.Sur); dup {
			return fmt.Errorf("object: duplicate surrogate %s in snapshot", r.Sur)
		}
		s.shardOf(r.Sur).objects[r.Sur] = obj
		ish := s.shardOf(r.Inheritor)
		m := ish.byInheritor[r.Inheritor]
		if m == nil {
			m = make(map[string]*Binding)
			ish.byInheritor[r.Inheritor] = m
		}
		if _, dup := m[r.RelType]; dup {
			return fmt.Errorf("object: duplicate binding for %s in %s", r.Inheritor, r.RelType)
		}
		b := &Binding{Obj: obj, Rel: rel, Transmitter: r.Transmitter, Inheritor: r.Inheritor}
		obj.binding = b
		m[r.RelType] = b
		tsh := s.shardOf(r.Transmitter)
		tsh.byTransmitter[r.Transmitter] = append(tsh.byTransmitter[r.Transmitter], b)
	}
	s.nextSur.Store(st.NextSur)
	s.seq.Store(st.Seq)
	if err := s.seedIndexState(st.Indexes); err != nil {
		return err
	}
	s.seedSnapshotState()
	s.bumpAllEpochs()
	return nil
}

// takeInt removes an integer bookkeeping attribute from the map and
// returns its value (0 when absent or non-integer).
func takeInt(m map[string]domain.Value, key string) int64 {
	v, ok := m[key]
	if !ok {
		return 0
	}
	delete(m, key)
	if n, ok := v.(domain.Int); ok {
		return int64(n)
	}
	return 0
}

// linkSubobjectLocked re-registers a subobject in its parent's subclass
// or sub-relationship class during import.
func (s *Store) linkSubobjectLocked(parent, child *Object) error {
	name := child.parentSub
	if child.isRel {
		cls, ok := parent.relMap()[name]
		if !ok {
			cls = newClass(name, child.typeName)
			parent.putSubrel(name, cls)
		}
		cls.add(child.sur)
		return nil
	}
	cls, ok := parent.subMap()[name]
	if !ok {
		cls = newClass(name, child.typeName)
		parent.putSub(name, cls)
	}
	cls.add(child.sur)
	return nil
}
