package object

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
)

// The Export/Import API serializes store state for persistence snapshots.
// Export walks the live store; Import rebuilds an *empty* store from the
// records, reconstructing every index. Records are keyed by surrogate and
// imported in ascending surrogate order.

// ObjectRecord is the portable form of one object (or non-binding
// relationship object).
type ObjectRecord struct {
	Sur          domain.Surrogate
	TypeName     string
	IsRel        bool
	Parent       domain.Surrogate
	ParentSub    string
	OwnerClass   string
	ModSeq       uint64
	Attrs        map[string]domain.Value
	Participants map[string]domain.Value
}

// BindingRecord is the portable form of one inheritance binding.
type BindingRecord struct {
	Sur         domain.Surrogate
	RelType     string
	Transmitter domain.Surrogate
	Inheritor   domain.Surrogate
	Attrs       map[string]domain.Value
}

// ClassRecord describes a database-level class.
type ClassRecord struct {
	Name     string
	ElemType string
}

// StoreState is a complete logical snapshot of a store.
type StoreState struct {
	Classes  []ClassRecord
	Objects  []ObjectRecord
	Bindings []BindingRecord
	NextSur  uint64
	Seq      uint64
}

// Export captures the store's full state. The result shares no mutable
// structure with the store (values are deep-copied).
func (s *Store) Export() *StoreState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.exportLocked()
}

// WithExclusive runs f while holding the store's write lock, passing a
// consistent export. No mutation (and hence no journal append) can run
// concurrently; the checkpointer uses this to pair a snapshot with a log
// rotation atomically.
func (s *Store) WithExclusive(f func(st *StoreState) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f(s.exportLocked())
}

func (s *Store) exportLocked() *StoreState {
	st := &StoreState{NextSur: s.nextSur, Seq: s.seq}
	for _, name := range sortedNames(s.classes) {
		st.Classes = append(st.Classes, ClassRecord{Name: name, ElemType: s.classes[name].elemType})
	}
	surs := s.surrogatesLocked()
	bindingSurs := make(map[domain.Surrogate]*Binding)
	for _, list := range s.byTransmitter {
		for _, b := range list {
			bindingSurs[b.Obj.sur] = b
		}
	}
	for _, sur := range surs {
		if b, isBinding := bindingSurs[sur]; isBinding {
			st.Bindings = append(st.Bindings, BindingRecord{
				Sur:         sur,
				RelType:     b.Rel.Name,
				Transmitter: b.Transmitter,
				Inheritor:   b.Inheritor,
				Attrs:       copyAttrs(b.Obj.attrMap()),
			})
			continue
		}
		o := s.objects[sur]
		st.Objects = append(st.Objects, ObjectRecord{
			Sur:          sur,
			TypeName:     o.typeName,
			IsRel:        o.isRel,
			Parent:       o.parent,
			ParentSub:    o.parentSub,
			OwnerClass:   o.ownerClass,
			ModSeq:       o.modSeq,
			Attrs:        copyAttrs(o.attrMap()),
			Participants: copyAttrs(o.participants),
		})
	}
	return st
}

func copyAttrs(m map[string]domain.Value) map[string]domain.Value {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]domain.Value, len(m))
	for k, v := range m {
		out[k] = v.Copy()
	}
	return out
}

// Import rebuilds the state into an empty store. It fails if the store
// already holds objects or if the state is inconsistent with the catalog.
func (s *Store) Import(st *StoreState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.objects) != 0 {
		return fmt.Errorf("object: Import needs an empty store")
	}
	for _, c := range st.Classes {
		if _, dup := s.classes[c.Name]; dup {
			return fmt.Errorf("object: duplicate class %q in snapshot", c.Name)
		}
		s.classes[c.Name] = newClass(c.Name, c.ElemType)
	}
	// Objects in ascending surrogate order so parents precede subobjects
	// is NOT guaranteed in general; link classes in a second pass.
	recs := append([]ObjectRecord(nil), st.Objects...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Sur < recs[j].Sur })
	for _, r := range recs {
		if _, dup := s.objects[r.Sur]; dup {
			return fmt.Errorf("object: duplicate surrogate %s in snapshot", r.Sur)
		}
		if r.IsRel {
			if _, ok := s.cat.RelType(r.TypeName); !ok {
				return fmt.Errorf("%w: %q", ErrNoSuchType, r.TypeName)
			}
		} else if _, ok := s.cat.ObjectType(r.TypeName); !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, r.TypeName)
		}
		o := &Object{
			sur:          r.Sur,
			typeName:     r.TypeName,
			isRel:        r.IsRel,
			parent:       r.Parent,
			parentSub:    r.ParentSub,
			ownerClass:   r.OwnerClass,
			modSeq:       r.ModSeq,
			participants: copyAttrs(r.Participants),
			subclasses:   make(map[string]*Class),
			subrels:      make(map[string]*Class),
		}
		o.initAttrs(copyAttrs(r.Attrs))
		s.objects[r.Sur] = o
	}
	// Second pass: class membership and participant index.
	for _, r := range recs {
		o := s.objects[r.Sur]
		if r.OwnerClass != "" {
			cls, ok := s.classes[r.OwnerClass]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoSuchClass, r.OwnerClass)
			}
			cls.add(r.Sur)
		}
		if r.Parent != 0 {
			po, ok := s.objects[r.Parent]
			if !ok {
				return fmt.Errorf("object: snapshot parent %s missing", r.Parent)
			}
			if err := s.linkSubobjectLocked(po, o); err != nil {
				return err
			}
		}
		for _, v := range o.participants {
			s.indexParticipantLocked(o.sur, v)
		}
	}
	// Bindings.
	brecs := append([]BindingRecord(nil), st.Bindings...)
	sort.Slice(brecs, func(i, j int) bool { return brecs[i].Sur < brecs[j].Sur })
	for _, r := range brecs {
		rel, ok := s.cat.InherRelType(r.RelType)
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchType, r.RelType)
		}
		if _, ok := s.objects[r.Transmitter]; !ok {
			return fmt.Errorf("object: snapshot transmitter %s missing", r.Transmitter)
		}
		if _, ok := s.objects[r.Inheritor]; !ok {
			return fmt.Errorf("object: snapshot inheritor %s missing", r.Inheritor)
		}
		obj := &Object{
			sur:      r.Sur,
			typeName: r.RelType,
			isRel:    true,
			participants: map[string]domain.Value{
				"Transmitter": domain.Ref(r.Transmitter),
				"Inheritor":   domain.Ref(r.Inheritor),
			},
			subclasses: make(map[string]*Class),
			subrels:    make(map[string]*Class),
		}
		obj.initAttrs(copyAttrs(r.Attrs))
		if _, dup := s.objects[r.Sur]; dup {
			return fmt.Errorf("object: duplicate surrogate %s in snapshot", r.Sur)
		}
		s.objects[r.Sur] = obj
		b := &Binding{Obj: obj, Rel: rel, Transmitter: r.Transmitter, Inheritor: r.Inheritor}
		m := s.byInheritor[r.Inheritor]
		if m == nil {
			m = make(map[string]*Binding)
			s.byInheritor[r.Inheritor] = m
		}
		if _, dup := m[r.RelType]; dup {
			return fmt.Errorf("object: duplicate binding for %s in %s", r.Inheritor, r.RelType)
		}
		m[r.RelType] = b
		s.byTransmitter[r.Transmitter] = append(s.byTransmitter[r.Transmitter], b)
	}
	s.nextSur = st.NextSur
	s.seq = st.Seq
	s.bumpEpochLocked()
	return nil
}

// linkSubobjectLocked re-registers a subobject in its parent's subclass
// or sub-relationship class during import.
func (s *Store) linkSubobjectLocked(parent, child *Object) error {
	name := child.parentSub
	if child.isRel {
		cls, ok := parent.subrels[name]
		if !ok {
			cls = newClass(name, child.typeName)
			parent.subrels[name] = cls
		}
		cls.add(child.sur)
		return nil
	}
	cls, ok := parent.subclasses[name]
	if !ok {
		cls = newClass(name, child.typeName)
		parent.subclasses[name] = cls
	}
	cls.add(child.sur)
	return nil
}
