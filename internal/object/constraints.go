package object

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/expr"
)

// ConstraintViolation describes one failed integrity constraint.
type ConstraintViolation struct {
	Object domain.Surrogate
	Type   string
	Src    string // constraint source text
	Reason string // "" if it simply evaluated to false
}

func (v *ConstraintViolation) String() string {
	msg := fmt.Sprintf("%s (%s): %s", v.Object, v.Type, v.Src)
	if v.Reason != "" {
		msg += " [" + v.Reason + "]"
	}
	return msg
}

// CheckConstraints evaluates the local integrity constraints of one
// object: the constraints of its (effective) type and, for relationship
// objects, of the relationship type. It returns all violations, or an
// error if the object does not exist.
func (s *Store) CheckConstraints(sur domain.Surrogate) ([]ConstraintViolation, error) {
	sh := s.shardOf(sur)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[sur]
	if !ok {
		return nil, noObject(sur)
	}
	return s.checkConstraintsLocked(o), nil
}

func (s *Store) checkConstraintsLocked(o *Object) []ConstraintViolation {
	var out []ConstraintViolation
	env := &lockedEnv{s: s, o: o}
	check := func(src string, e expr.Expr) {
		holds, err := expr.EvalBool(e, env)
		switch {
		case err != nil:
			out = append(out, ConstraintViolation{Object: o.sur, Type: o.typeName, Src: src, Reason: err.Error()})
		case !holds:
			out = append(out, ConstraintViolation{Object: o.sur, Type: o.typeName, Src: src})
		}
	}
	if o.isRel {
		if rt, ok := s.cat.RelType(o.typeName); ok {
			for _, c := range rt.Constraints {
				check(c.Src, c.E)
			}
		} else if it, ok := s.cat.InherRelType(o.typeName); ok {
			for _, c := range it.Constraints {
				check(c.Src, c.E)
			}
		}
		return out
	}
	eff, err := s.effectiveLocked(o)
	if err != nil {
		return []ConstraintViolation{{Object: o.sur, Type: o.typeName, Reason: err.Error()}}
	}
	for _, c := range eff.Type.Constraints {
		check(c.Src, c.E)
	}
	// Re-check the where restrictions of local relationship members: they
	// must keep holding as the complex object evolves.
	for _, sr := range eff.Type.SubRels {
		if sr.Where == nil {
			continue
		}
		cls, ok := o.relMap()[sr.Name]
		if !ok {
			continue
		}
		for _, m := range cls.Members() {
			bound := s.whereEnvLocked(o, &sr, m)
			holds, err := expr.EvalBool(sr.Where.E, bound)
			switch {
			case err != nil:
				out = append(out, ConstraintViolation{Object: m, Type: sr.RelType, Src: sr.Where.Src, Reason: err.Error()})
			case !holds:
				out = append(out, ConstraintViolation{Object: m, Type: sr.RelType, Src: sr.Where.Src})
			}
		}
	}
	return out
}

// CheckAll checks every live object and returns all violations, sorted by
// surrogate. Intended for tests, tools and checkpoint validation.
func (s *Store) CheckAll() []ConstraintViolation {
	s.rlockAll()
	defer s.runlockAll()
	var out []ConstraintViolation
	for _, sur := range s.surrogatesLocked() {
		o, _ := s.obj(sur)
		out = append(out, s.checkConstraintsLocked(o)...)
	}
	return out
}

// surrogatesLocked returns every live surrogate across all shards in
// ascending order. Callers hold at least one shard lock (all of them for
// a consistent store-wide view).
func (s *Store) surrogatesLocked() []domain.Surrogate {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].objects)
	}
	out := make([]domain.Surrogate, 0, n)
	for i := range s.shards {
		for sur := range s.shards[i].objects {
			out = append(out, sur)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
