package object

import (
	"fmt"
	"sort"

	"cadcam/internal/domain"
	"cadcam/internal/oplog"
)

// Delete removes an object and everything that depends on it:
//
//   - all subobjects and local relationship objects, recursively ("All
//     subobjects depend on the complex object, they are deleted with the
//     complex object", §3);
//   - relationship objects in which the object (or a cascaded subobject)
//     participates;
//   - inheritance bindings in which it is the inheritor.
//
// If the object or any cascaded object is a *transmitter* with inheritors
// outside the cascade, the delete policy decides: DeleteRestrict (default)
// refuses the whole delete; DeleteUnbind detaches those inheritors and
// fires an Unbound update event for each.
//
// The whole cascade runs store-wide exclusive and consumes one sequence
// number, so replaying the journaled op reproduces the same final state
// regardless of what was interleaved with it live.
func (s *Store) Delete(sur domain.Surrogate) error {
	s.lockAll()
	dispatch, err := func() (bool, error) {
		root, ok := s.obj(sur)
		if !ok {
			return false, noObject(sur)
		}
		if err := s.guardLocked(sur); err != nil {
			return false, err
		}

		// Phase 1: collect the cascade set.
		cascade := make(map[domain.Surrogate]bool)
		s.collectCascadeLocked(root, cascade)

		// Phase 2: policy check for transmitters with external inheritors.
		// The cascade set is iterated in surrogate order throughout so the
		// chosen restrict error, the detach-event order and the removal
		// order are reproducible run to run (and match the replay oracle).
		members := sortedSurs(cascade)
		var detach []*Binding
		for _, member := range members {
			for _, b := range s.shardOf(member).byTransmitter[member] {
				if cascade[b.Inheritor] {
					continue // inheritor dies with the cascade anyway
				}
				if s.deletePolicy == DeleteRestrict {
					return false, fmt.Errorf("%w: %s has inheritor %s via %s",
						ErrHasInheritors, member, b.Inheritor, b.Rel.Name)
				}
				detach = append(detach, b)
			}
		}

		// Phase 3: apply under one sequence number. Detach external
		// inheritors first so the events see a consistent store.
		seq := s.seq.Add(1)
		n := notifier{s: s, seq: seq}
		for _, b := range detach {
			s.removeBindingLocked(b, seq)
			n.events = append(n.events, UpdateEvent{
				Rel:         b.Rel.Name,
				Binding:     b.Obj.sur,
				Transmitter: b.Transmitter,
				Inheritor:   b.Inheritor,
				Seq:         seq,
				Unbound:     true,
			})
		}
		// Subclass changes visible outside the cascade are notified after
		// the removal, like any other permeable update.
		type parentSub struct {
			parent domain.Surrogate
			sub    string
		}
		var touched []parentSub
		for _, member := range members {
			if o, ok := s.obj(member); ok && o.parent != 0 && !cascade[o.parent] {
				touched = append(touched, parentSub{o.parent, o.parentSub})
			}
		}
		for _, member := range members {
			s.removeObjectLocked(member, seq)
		}
		ceil := s.ceiling()
		for _, ps := range touched {
			if po, ok := s.obj(ps.parent); ok {
				if po.pushModSeq(seq, ceil) {
					s.shardOf(ps.parent).retained.Add(1)
				}
				s.markDirty(ps.parent)
			}
			n.notify(ps.parent, ps.sub)
		}
		s.commitClassHist(seq)
		s.emit(&oplog.Op{Kind: oplog.KindDelete, Sur: sur, Seq: seq})
		return n.queue(), nil
	}()
	s.unlockAll()
	if dispatch {
		s.dispatchEvents()
	}
	return err
}

// collectCascadeLocked gathers the object, its subobject tree, its local
// relationship objects, every relationship object referencing any of
// them, and the binding objects of cascaded inheritors.
func (s *Store) collectCascadeLocked(o *Object, acc map[domain.Surrogate]bool) {
	if acc[o.sur] {
		return
	}
	acc[o.sur] = true
	for _, cls := range o.subMap() {
		for _, m := range cls.Members() {
			if mo, ok := s.obj(m); ok {
				s.collectCascadeLocked(mo, acc)
			}
		}
	}
	for _, cls := range o.relMap() {
		for _, m := range cls.Members() {
			if mo, ok := s.obj(m); ok {
				s.collectCascadeLocked(mo, acc)
			}
		}
	}
	// Relationships referencing this object die with it.
	for rel := range s.shardOf(o.sur).relsByParticipant[o.sur] {
		if ro, ok := s.obj(rel); ok {
			s.collectCascadeLocked(ro, acc)
		}
	}
	// Binding objects where this object is the inheritor are removed with
	// it (handled in removeObjectLocked via removeBindingLocked).
}

// removeObjectLocked unlinks one object from every index, at the deleting
// operation's sequence. seq == 0 marks the rollback of an object created
// by the running operation and never published to snapshot readers (a
// failed where-restriction); such objects have no bindings to dissolve.
// Bindings are dissolved; classes and parents forget the member. Callers
// hold all shard and stripe write locks.
func (s *Store) removeObjectLocked(sur domain.Surrogate, seq uint64) {
	sh := s.shardOf(sur)
	o, ok := sh.objects[sur]
	if !ok {
		return
	}
	// Deleting a binding's own relationship object dissolves the binding
	// (equivalent to Unbind): drop it from both binding indexes.
	if o.isRel {
		if _, isInher := s.cat.InherRelType(o.typeName); isInher {
			if ref, ok := o.participants["Inheritor"].(domain.Ref); ok {
				if b := s.bindingLocked(domain.Surrogate(ref), o.typeName); b != nil && b.Obj == o {
					s.removeBindingLocked(b, seq)
				}
			}
		}
	}
	// Dissolve bindings in both roles.
	if m, ok := sh.byInheritor[sur]; ok {
		for _, b := range copyBindings(m) {
			s.removeBindingLocked(b, seq)
		}
	}
	for _, b := range append([]*Binding(nil), sh.byTransmitter[sur]...) {
		s.removeBindingLocked(b, seq)
	}
	// Forget participant index entries for this object, and the reverse
	// edges its own participants hold.
	delete(sh.relsByParticipant, sur)
	if o.isRel {
		for _, v := range o.participants {
			s.unindexParticipantLocked(sur, v)
		}
	}
	// Unlink from the owning class or parent.
	if o.ownerClass != "" {
		if cls, ok := s.lookupClass(o.ownerClass); ok {
			s.classRemove(cls, sur)
		}
	}
	if o.parent != 0 {
		if po, ok := s.obj(o.parent); ok {
			if cls, ok := po.subMap()[o.parentSub]; ok {
				s.classRemove(cls, sur)
			}
			if cls, ok := po.relMap()[o.parentSub]; ok {
				s.classRemove(cls, sur)
			}
		}
	}
	delete(sh.objects, sur)
	if seq > 0 {
		s.retireObj(o, seq)
	} else {
		// Rollback of an unpublished object: nothing to retire.
		sh.snapObjs.Delete(sur)
	}
	s.markDirty(sur)
	// Routes from or through the dead object must not be served again;
	// every such route carries sur in its chain, so its shard's epoch
	// covers them all.
	s.bumpEpoch(sh)
}

func (s *Store) unindexParticipantLocked(rel domain.Surrogate, v domain.Value) {
	switch x := v.(type) {
	case domain.Ref:
		psh := s.shardOf(domain.Surrogate(x))
		if m, ok := psh.relsByParticipant[domain.Surrogate(x)]; ok {
			delete(m, rel)
			if len(m) == 0 {
				delete(psh.relsByParticipant, domain.Surrogate(x))
			}
		}
	case *domain.Set:
		for _, e := range x.Elems() {
			s.unindexParticipantLocked(rel, e)
		}
	}
}

// deleteRelLocked removes a just-created relationship object again (used
// to roll back a failed where-restriction check). The object was never
// published to snapshot readers, so the removal carries no sequence.
func (s *Store) deleteRelLocked(o *Object) {
	s.removeObjectLocked(o.sur, 0)
}

func copyBindings(m map[string]*Binding) []*Binding {
	out := make([]*Binding, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	return out
}

func sortedSurs(set map[domain.Surrogate]bool) []domain.Surrogate {
	out := make([]domain.Surrogate, 0, len(set))
	for sur := range set {
		out = append(out, sur)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
